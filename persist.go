package unfold

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/acoustic"
	"repro/internal/am"
	"repro/internal/decoder"
	"repro/internal/lm"
	"repro/internal/task"
	"repro/internal/wfst"
)

// Model-bundle persistence: Save writes everything needed to recognize
// speech into a directory, and LoadRecognizer restores a working decoder
// without rebuilding the task. Files:
//
//	meta.json    — scorer kind, topology, dimensions, seeds
//	lexicon.txt  — word pronunciations (am.WriteLexicon format)
//	am.wfst      — acoustic transducer (wfst binary format)
//	lm.arpa      — back-off language model (ARPA text)
//	senones.bin  — senone template model (acoustic binary format)
const (
	metaFile    = "meta.json"
	lexiconFile = "lexicon.txt"
	amFile      = "am.wfst"
	lmFile      = "lm.arpa"
	senonesFile = "senones.bin"
)

// bundleMeta is the JSON header of a saved model directory.
type bundleMeta struct {
	FormatVersion  int             `json:"format_version"`
	TaskName       string          `json:"task_name"`
	Scorer         task.ScorerKind `json:"scorer"`
	ScorerSeed     int64           `json:"scorer_seed"`
	StatesPerPhone int             `json:"states_per_phone"`
	SelfLoopProb   float64         `json:"self_loop_prob"`
	Vocab          int             `json:"vocab"`
	LMOrder        int             `json:"lm_order"`
	NumSenones     int             `json:"num_senones"`
}

// Save writes the system's models into dir (created if needed). DNN/RNN
// scorer weights are regenerated from the recorded seed on load, so the
// bundle stays compact.
func (s *System) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := bundleMeta{
		FormatVersion:  1,
		TaskName:       s.Task.Spec.Name,
		Scorer:         s.Task.Spec.Scorer,
		ScorerSeed:     s.Task.Spec.Seed,
		StatesPerPhone: s.Task.AM.Topo.StatesPerPhone,
		SelfLoopProb:   s.Task.AM.Topo.SelfLoopProb,
		Vocab:          s.Task.Lex.V(),
		LMOrder:        s.Task.LM.Order,
		NumSenones:     s.Task.AM.NumSenones,
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), mb, 0o644); err != nil {
		return err
	}
	if err := writeFile(dir, lexiconFile, func(f *os.File) error {
		return am.WriteLexicon(s.Task.Lex, f)
	}); err != nil {
		return err
	}
	if err := writeFile(dir, amFile, func(f *os.File) error {
		return wfst.Write(s.Task.AM.G, f)
	}); err != nil {
		return err
	}
	if err := writeFile(dir, lmFile, func(f *os.File) error {
		return s.Task.LM.WriteARPA(f)
	}); err != nil {
		return err
	}
	return writeFile(dir, senonesFile, func(f *os.File) error {
		return acoustic.WriteSenoneModel(s.Task.Senones, f)
	})
}

func writeFile(dir, name string, write func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("unfold: writing %s: %w", name, err)
	}
	return f.Close()
}

// Recognizer is a loaded model bundle: everything needed to decode, without
// the synthetic task scaffolding (no corpus, no test set).
type Recognizer struct {
	Lex     *am.Lexicon
	AMGraph *wfst.WFST
	LMGraph *wfst.WFST
	Model   *lm.Model
	Senones *acoustic.SenoneModel
	Scorer  acoustic.Scorer
	dec     *decoder.OnTheFly
}

// LoadRecognizer restores a model bundle written by Save.
func LoadRecognizer(dir string) (*Recognizer, error) {
	mb, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	var meta bundleMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("unfold: parsing %s: %w", metaFile, err)
	}
	if meta.FormatVersion != 1 {
		return nil, fmt.Errorf("unfold: unsupported bundle version %d", meta.FormatVersion)
	}

	r := &Recognizer{}
	if err := readFile(dir, lexiconFile, func(f *os.File) error {
		var e error
		r.Lex, e = am.ReadLexicon(f)
		return e
	}); err != nil {
		return nil, err
	}
	if err := readFile(dir, amFile, func(f *os.File) error {
		var e error
		r.AMGraph, e = wfst.Read(f)
		return e
	}); err != nil {
		return nil, err
	}
	if err := readFile(dir, lmFile, func(f *os.File) error {
		var e error
		r.Model, e = lm.ReadARPA(f, meta.Vocab)
		return e
	}); err != nil {
		return nil, err
	}
	gr, err := r.Model.BuildGraph()
	if err != nil {
		return nil, err
	}
	r.LMGraph = gr.G
	if err := readFile(dir, senonesFile, func(f *os.File) error {
		var e error
		r.Senones, e = acoustic.ReadSenoneModel(f)
		return e
	}); err != nil {
		return nil, err
	}

	// Rebuild the scorer. GMMs are a pure function of the senone model;
	// DNN/RNN weights are regenerated from the recorded seed, replaying the
	// build-time rng stream (lexicon, grammar, corpus draws) so the weights
	// match... Task.Build draws from one stream, so exact DNN replay would
	// require replaying the whole build; the seed-derived sub-rng here is
	// documented as a refresh: templates (the discriminative part) are
	// loaded exactly, only the perturbation stack differs.
	switch meta.Scorer {
	case task.ScorerGMM:
		r.Scorer = acoustic.NewGMMScorer(r.Senones)
	case task.ScorerDNN:
		r.Scorer = acoustic.NewDNNScorer(r.Senones, rand.New(rand.NewSource(meta.ScorerSeed)), 0, 0)
	case task.ScorerRNN:
		r.Scorer = acoustic.NewRNNScorer(r.Senones, rand.New(rand.NewSource(meta.ScorerSeed)), 0)
	default:
		return nil, fmt.Errorf("unfold: unknown scorer kind %q in bundle", meta.Scorer)
	}

	r.dec, err = decoder.NewOnTheFly(r.AMGraph, r.LMGraph, decoder.Config{PreemptivePruning: true})
	if err != nil {
		return nil, err
	}
	return r, nil
}

func readFile(dir, name string, read func(*os.File) error) error {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := read(f); err != nil {
		return fmt.Errorf("unfold: reading %s: %w", name, err)
	}
	return nil
}

// Recognize scores and decodes one utterance.
func (r *Recognizer) Recognize(frames [][]float32) ([]int32, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	res := r.dec.Decode(r.Scorer.ScoreUtterance(frames))
	return res.Words, nil
}

// Words renders word IDs as surface forms.
func (r *Recognizer) Words(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = r.Lex.Words[id]
	}
	return out
}
