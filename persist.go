package unfold

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/acoustic"
	"repro/internal/am"
	"repro/internal/decoder"
	"repro/internal/lm"
	"repro/internal/task"
	"repro/internal/wfst"
)

// Model-bundle persistence: Save writes everything needed to recognize
// speech into a directory, and LoadRecognizer restores a working decoder
// without rebuilding the task. Files (bundle format v2):
//
//	meta.json    — scorer kind, topology, dimensions, seeds, and a SHA-256
//	               checksum per data file
//	lexicon.txt  — word pronunciations (am.WriteLexicon format)
//	am.wfst      — acoustic transducer (wfst binary format)
//	lm.arpa      — back-off language model (ARPA text)
//	senones.bin  — senone template model (acoustic binary format)
//
// Every file is written to a temp name and renamed into place, and
// meta.json is written last, so a crash mid-Save never leaves a bundle
// that LoadRecognizer would partially accept. LoadRecognizer verifies the
// checksums and runs structural validation before constructing a decoder;
// any failure is reported as a typed *BundleError, never a panic.
//
// The serving-oriented v3 flat bundle (a single zero-copy file; SaveFlat,
// LoadRecognizerFast, ConvertBundle) lives in persist_v3.go; LoadRecognizer
// dispatches between the two formats by whether the path is a directory.
// Byte-level format spec for both: docs/MODEL_STORE.md.
const (
	metaFile    = "meta.json"
	lexiconFile = "lexicon.txt"
	amFile      = "am.wfst"
	lmFile      = "lm.arpa"
	senonesFile = "senones.bin"

	// bundleVersion is the current format: v2 added per-file SHA-256
	// checksums and the feature dimension to meta.json. v1 bundles (no
	// checksums) are rejected; re-save them with this version.
	bundleVersion = 2
)

// BundleError is a typed model-bundle failure from Save or LoadRecognizer:
// a missing or unreadable file, a checksum mismatch, a parse failure, or a
// structural inconsistency between the bundle's components.
type BundleError struct {
	// File is the offending file within the bundle ("" when the failure is
	// directory-level).
	File string
	// Reason is a short machine-stable class: "io", "parse", "checksum",
	// "version", "structure", or "panic".
	Reason string
	// Cause is the underlying error, exposed via Unwrap.
	Cause error
}

// Error implements the error interface.
func (e *BundleError) Error() string {
	if e.File == "" {
		return fmt.Sprintf("unfold: bundle %s: %v", e.Reason, e.Cause)
	}
	return fmt.Sprintf("unfold: bundle file %s: %s: %v", e.File, e.Reason, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *BundleError) Unwrap() error { return e.Cause }

// bundleMeta is the JSON header of a saved model directory.
type bundleMeta struct {
	FormatVersion  int             `json:"format_version"`
	TaskName       string          `json:"task_name"`
	Scorer         task.ScorerKind `json:"scorer"`
	ScorerSeed     int64           `json:"scorer_seed"`
	StatesPerPhone int             `json:"states_per_phone"`
	SelfLoopProb   float64         `json:"self_loop_prob"`
	Vocab          int             `json:"vocab"`
	LMOrder        int             `json:"lm_order"`
	NumSenones     int             `json:"num_senones"`
	FeatDim        int             `json:"feat_dim"`
	// Checksums maps each data file name to the hex SHA-256 of its
	// contents. Written by Save, verified by LoadRecognizer. v3 bundles
	// omit it: integrity moves to the container's CRC-32s.
	Checksums map[string]string `json:"checksums,omitempty"`

	// AM and LM describe the flat graph sections of a v3 bundle (start
	// state, state count, sorted flag); nil in v2 metadata.
	AM *flatGraphMeta `json:"am_graph,omitempty"`
	LM *flatGraphMeta `json:"lm_graph,omitempty"`
}

// Save writes the system's models into dir (created if needed). DNN/RNN
// scorer weights are regenerated from the recorded seed on load, so the
// bundle stays compact. Each file lands via temp-file + rename and
// meta.json (carrying all checksums) is written last, so readers never see
// a half-written bundle.
func (s *System) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := bundleMeta{
		FormatVersion:  bundleVersion,
		TaskName:       s.Task.Spec.Name,
		Scorer:         s.Task.Spec.Scorer,
		ScorerSeed:     s.Task.Spec.Seed,
		StatesPerPhone: s.Task.AM.Topo.StatesPerPhone,
		SelfLoopProb:   s.Task.AM.Topo.SelfLoopProb,
		Vocab:          s.Task.Lex.V(),
		LMOrder:        s.Task.LM.Order,
		NumSenones:     s.Task.AM.NumSenones,
		FeatDim:        s.Task.Senones.Dim,
		Checksums:      map[string]string{},
	}
	files := []struct {
		name  string
		write func(io.Writer) error
	}{
		{lexiconFile, func(w io.Writer) error { return am.WriteLexicon(s.Task.Lex, w) }},
		{amFile, func(w io.Writer) error { return wfst.Write(s.Task.AM.G, w) }},
		{lmFile, func(w io.Writer) error { return s.Task.LM.WriteARPA(w) }},
		{senonesFile, func(w io.Writer) error { return acoustic.WriteSenoneModel(s.Task.Senones, w) }},
	}
	for _, f := range files {
		sum, err := writeFileAtomic(dir, f.name, f.write)
		if err != nil {
			return err
		}
		meta.Checksums[f.name] = sum
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	_, err = writeFileAtomic(dir, metaFile, func(w io.Writer) error {
		_, werr := w.Write(mb)
		return werr
	})
	return err
}

// writeFileAtomic writes name under dir via a temp file renamed into place
// and returns the hex SHA-256 of the written contents. A crash at any
// point leaves either the old file or no file — never a torn one.
func writeFileAtomic(dir, name string, write func(io.Writer) error) (string, error) {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	h := sha256.New()
	if err := write(io.MultiWriter(tmp, h)); err != nil {
		tmp.Close()
		return "", fmt.Errorf("unfold: writing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("unfold: writing %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Recognizer is a loaded model bundle: everything needed to decode, without
// the synthetic task scaffolding (no corpus, no test set). A v3 (flat
// bundle) load reads its graphs through the bundle mapping; release it with
// Close when done. Model is only populated by v2 loads — v3 bundles decode
// from the flat LM graph directly and keep the ARPA text as an unparsed
// section.
type Recognizer struct {
	// TaskName is the bundle's originating task, from its metadata.
	TaskName string

	Lex     *am.Lexicon
	AMGraph *wfst.WFST
	LMGraph *wfst.WFST
	Model   *lm.Model
	Senones *acoustic.SenoneModel
	Scorer  acoustic.Scorer
	dec     *decoder.OnTheFly

	recognizerFlatState
}

// LoadRecognizer restores a model bundle written by Save (a v2 directory)
// or SaveFlat (a v3 flat file); the two are distinguished by whether path
// is a directory. It never trusts the bytes on disk: v2 verifies every data
// file's SHA-256 against meta.json before parsing, v3 verifies the
// container's CRC-32s (header, table, and every section), both
// cross-validate the parsed components (WFST arc/state bounds against the
// senone and vocabulary ranges, lexicon/vocab agreement), and any failure —
// including a panic in a parser — surfaces as a typed *BundleError. For the
// O(1) trusted v3 load path see LoadRecognizerFast.
func LoadRecognizer(path string) (*Recognizer, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, &BundleError{Reason: "io", Cause: err}
	}
	if !st.IsDir() {
		return loadFlat(path, true)
	}
	return loadV2(path)
}

// loadV2 restores a v2 directory bundle.
func loadV2(dir string) (rec *Recognizer, err error) {
	defer func() {
		// Belt and braces for untrusted bytes: a panic escaping a parser
		// becomes a typed error instead of killing the process.
		if r := recover(); r != nil {
			rec, err = nil, &BundleError{Reason: "panic", Cause: fmt.Errorf("recovered: %v", r)}
		}
	}()

	mb, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, &BundleError{File: metaFile, Reason: "io", Cause: err}
	}
	var meta bundleMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, &BundleError{File: metaFile, Reason: "parse", Cause: err}
	}
	if meta.FormatVersion != bundleVersion {
		return nil, &BundleError{File: metaFile, Reason: "version",
			Cause: fmt.Errorf("bundle version %d, want %d (re-save with this release)", meta.FormatVersion, bundleVersion)}
	}
	// Bound the header's counts before any of them size an allocation.
	switch {
	case meta.Vocab < 1 || meta.Vocab > 1<<22:
		return nil, &BundleError{File: metaFile, Reason: "structure", Cause: fmt.Errorf("implausible vocab %d", meta.Vocab)}
	case meta.NumSenones < 1 || meta.NumSenones > 1<<22:
		return nil, &BundleError{File: metaFile, Reason: "structure", Cause: fmt.Errorf("implausible senone count %d", meta.NumSenones)}
	case meta.LMOrder < 1 || meta.LMOrder > 3:
		return nil, &BundleError{File: metaFile, Reason: "structure", Cause: fmt.Errorf("LM order %d outside [1,3]", meta.LMOrder)}
	case meta.FeatDim < 1 || meta.FeatDim > 1<<16:
		return nil, &BundleError{File: metaFile, Reason: "structure", Cause: fmt.Errorf("implausible feature dim %d", meta.FeatDim)}
	}

	// readVerified loads one data file, checks its recorded checksum, and
	// hands the verified bytes to the parser.
	readVerified := func(name string, parse func([]byte) error) error {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return &BundleError{File: name, Reason: "io", Cause: err}
		}
		want, ok := meta.Checksums[name]
		if !ok {
			return &BundleError{File: name, Reason: "checksum", Cause: fmt.Errorf("no checksum recorded in %s", metaFile)}
		}
		if got := sha256.Sum256(data); hex.EncodeToString(got[:]) != want {
			return &BundleError{File: name, Reason: "checksum", Cause: fmt.Errorf("SHA-256 mismatch (bundle corrupted or tampered)")}
		}
		if err := parse(data); err != nil {
			return &BundleError{File: name, Reason: "parse", Cause: err}
		}
		return nil
	}

	r := &Recognizer{TaskName: meta.TaskName}
	if err := readVerified(lexiconFile, func(b []byte) error {
		var e error
		r.Lex, e = am.ReadLexicon(bytes.NewReader(b))
		return e
	}); err != nil {
		return nil, err
	}
	if err := readVerified(amFile, func(b []byte) error {
		var e error
		r.AMGraph, e = wfst.Read(bytes.NewReader(b))
		return e
	}); err != nil {
		return nil, err
	}
	if err := readVerified(lmFile, func(b []byte) error {
		var e error
		r.Model, e = lm.ReadARPA(bytes.NewReader(b), meta.Vocab)
		return e
	}); err != nil {
		return nil, err
	}
	if err := readVerified(senonesFile, func(b []byte) error {
		var e error
		r.Senones, e = acoustic.ReadSenoneModel(bytes.NewReader(b))
		return e
	}); err != nil {
		return nil, err
	}

	if err := validateBundle(meta, r); err != nil {
		return nil, err
	}

	gr, err := r.Model.BuildGraph()
	if err != nil {
		return nil, &BundleError{File: lmFile, Reason: "structure", Cause: err}
	}
	r.LMGraph = gr.G

	// Rebuild the scorer. GMMs are a pure function of the senone model;
	// DNN/RNN weights are regenerated from the recorded seed, replaying the
	// build-time rng stream (lexicon, grammar, corpus draws) so the weights
	// match... Task.Build draws from one stream, so exact DNN replay would
	// require replaying the whole build; the seed-derived sub-rng here is
	// documented as a refresh: templates (the discriminative part) are
	// loaded exactly, only the perturbation stack differs.
	switch meta.Scorer {
	case task.ScorerGMM:
		r.Scorer = acoustic.NewGMMScorer(r.Senones)
	case task.ScorerDNN:
		r.Scorer = acoustic.NewDNNScorer(r.Senones, rand.New(rand.NewSource(meta.ScorerSeed)), 0, 0)
	case task.ScorerRNN:
		r.Scorer = acoustic.NewRNNScorer(r.Senones, rand.New(rand.NewSource(meta.ScorerSeed)), 0)
	default:
		return nil, &BundleError{File: metaFile, Reason: "structure",
			Cause: fmt.Errorf("unknown scorer kind %q", meta.Scorer)}
	}

	dec, err := decoder.NewOnTheFly(r.AMGraph, r.LMGraph, decoder.Config{PreemptivePruning: true})
	if err != nil {
		return nil, &BundleError{Reason: "structure", Cause: err}
	}
	r.dec = dec
	return r, nil
}

// validateBundle cross-checks the parsed components against each other and
// against the header — the structural half of bundle verification, catching
// corruptions that survive per-file parsing (or bundles assembled from
// mismatched halves, which checksums alone cannot see).
func validateBundle(meta bundleMeta, r *Recognizer) error {
	if got := r.Lex.V(); got != meta.Vocab {
		return &BundleError{File: lexiconFile, Reason: "structure",
			Cause: fmt.Errorf("lexicon has %d words, header says %d", got, meta.Vocab)}
	}
	if r.Lex.NumPhones < 1 {
		return &BundleError{File: lexiconFile, Reason: "structure",
			Cause: fmt.Errorf("lexicon has no phone inventory")}
	}
	if got := r.Senones.NumSenones; got != meta.NumSenones {
		return &BundleError{File: senonesFile, Reason: "structure",
			Cause: fmt.Errorf("senone model has %d senones, header says %d", got, meta.NumSenones)}
	}
	if got := r.Senones.Dim; got != meta.FeatDim {
		return &BundleError{File: senonesFile, Reason: "structure",
			Cause: fmt.Errorf("senone model dim %d, header says %d", got, meta.FeatDim)}
	}
	if !(r.Senones.Sigma > 0) { // rejects zero, negatives, and NaN
		return &BundleError{File: senonesFile, Reason: "structure",
			Cause: fmt.Errorf("non-positive model sigma %v", r.Senones.Sigma)}
	}
	// Model is only materialized by v2 loads; v3 keeps the ARPA text as an
	// unparsed section and decodes from the flat LM graph.
	if r.Model != nil {
		if got := r.Model.Order; got != meta.LMOrder {
			return &BundleError{File: lmFile, Reason: "structure",
				Cause: fmt.Errorf("ARPA order %d, header says %d", got, meta.LMOrder)}
		}
	}
	// AM arc labels must stay inside the senone and vocabulary ranges the
	// decoder will index with them (wfst.Read already bounds destinations).
	for s := wfst.StateID(0); int(s) < r.AMGraph.NumStates(); s++ {
		for i, a := range r.AMGraph.Arcs(s) {
			if int(a.In) > meta.NumSenones {
				return &BundleError{File: amFile, Reason: "structure",
					Cause: fmt.Errorf("state %d arc %d: senone label %d > %d", s, i, a.In, meta.NumSenones)}
			}
			if int(a.Out) > meta.Vocab {
				return &BundleError{File: amFile, Reason: "structure",
					Cause: fmt.Errorf("state %d arc %d: word label %d > vocab %d", s, i, a.Out, meta.Vocab)}
			}
		}
	}
	return nil
}

// Recognize scores and decodes one utterance. Frames are validated against
// the bundle's feature dimension; a mismatch returns a *DimensionError.
func (r *Recognizer) Recognize(frames [][]float32) ([]int32, error) {
	return r.RecognizeContext(context.Background(), frames)
}

// RecognizeContext is Recognize with deadline/cancellation semantics; on
// cancellation the best partial hypothesis is returned with ctx.Err().
func (r *Recognizer) RecognizeContext(ctx context.Context, frames [][]float32) ([]int32, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	if err := validateFrames(frames, r.Senones.Dim); err != nil {
		return nil, err
	}
	res, err := r.dec.DecodeContext(ctx, r.Scorer.ScoreUtterance(frames))
	return res.Words, err
}

// Words renders word IDs as surface forms.
func (r *Recognizer) Words(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = r.Lex.Words[id]
	}
	return out
}
