// Quickstart: build a small recognition task, synthesize an utterance, and
// recognize it with on-the-fly WFST composition — the whole public API in
// thirty lines.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	unfold "repro"
)

func main() {
	// Build the smallest benchmark task (a Voxforge-like system): lexicon,
	// AM and LM transducers, compressed datasets, and an acoustic scorer.
	// The benchmark default noise is calibrated for paper-level WER; dial
	// it down here so the quickstart transcript comes out clean.
	spec := unfold.KaldiVoxforge(1.0)
	spec.NoiseStd = 1.5
	sys, err := unfold.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}

	fp := sys.Footprint()
	fmt.Printf("AM  %6.1f KB  (compressed %5.1f KB)\n", float64(fp.AMBytes)/1024, float64(fp.AMCompressedBytes)/1024)
	fmt.Printf("LM  %6.1f KB  (compressed %5.1f KB)\n", float64(fp.LMBytes)/1024, float64(fp.LMCompressedBytes)/1024)

	// Synthesize an utterance for a known word sequence...
	rng := rand.New(rand.NewSource(7))
	words := []int32{3, 14, 15, 9, 26}
	frames := sys.Task.SynthesizeFrames(rng, words)
	fmt.Printf("\nsaid:       %s\n", strings.Join(sys.Words(words), " "))
	fmt.Printf("audio:      %d frames (%.2f s)\n", len(frames), float64(len(frames))/100)

	// ...and recognize it: acoustic scoring + one-pass Viterbi search that
	// composes the AM and LM graphs on the fly.
	hyp, err := sys.Recognize(frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recognized: %s\n", strings.Join(sys.Words(hyp), " "))
}
