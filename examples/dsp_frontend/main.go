// DSP front-end: recognize from an actual (synthetic) waveform instead of
// pre-made feature templates. Audio is synthesized per senone as formant
// sinusoids plus noise, run through the log-filterbank front-end
// (pre-emphasis, Hamming window, Goertzel filters at mel-spaced centers),
// scored by a GMM calibrated on that front-end's output, and decoded with
// on-the-fly WFST composition — the full Section 2 pipeline, end to end.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"repro/internal/acoustic"
	"repro/internal/decoder"
	"repro/internal/dsp"
	"repro/internal/task"

	unfold "repro"
)

func main() {
	spec := unfold.KaldiVoxforge(1.0)
	spec.TestUtterances = 1
	tk, err := task.Build(spec)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	voice, err := dsp.NewVoice(rng, tk.AM.NumSenones, dsp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	const noise = 0.3

	// "Train" the acoustic model: measure per-senone templates and the
	// residual deviation under matched noise.
	templates := voice.Templates(noise)
	sigma := measureSigma(voice, templates, noise)
	senoneModel := &acoustic.SenoneModel{
		Dim:        voice.Frontend().Dim(),
		NumSenones: tk.AM.NumSenones,
		Means:      templates,
		Sigma:      sigma,
	}
	scorer := acoustic.NewGMMScorer(senoneModel)
	fmt.Printf("front-end: %d mel filters, sigma %.2f, %d senones\n",
		voice.Frontend().Dim(), sigma, tk.AM.NumSenones)

	// Speak a sentence: words -> senone alignment -> waveform.
	words := []int32{5, 17, 2, 31}
	senones := tk.SenoneSeq(rng, words)
	wave := voice.Synthesize(rng, senones, 3, noise)
	fmt.Printf("said:       %s\n", strings.Join(wordStrings(tk, words), " "))
	fmt.Printf("audio:      %d samples (%.2f s at %d kHz)\n",
		len(wave), float64(len(wave))/16000, 16)

	// Front-end + decode.
	frames := voice.Frontend().Features(wave)
	fmt.Printf("features:   %d frames x %d dims\n", len(frames), len(frames[0]))
	dec, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		log.Fatal(err)
	}
	res := dec.Decode(scorer.ScoreUtterance(frames))
	fmt.Printf("recognized: %s\n", strings.Join(wordStrings(tk, res.Words), " "))
}

// measureSigma estimates the per-dimension residual of noisy features
// around the calibrated templates.
func measureSigma(v *dsp.Voice, templates [][]float32, noise float64) float32 {
	rng := rand.New(rand.NewSource(13))
	var sum float64
	var n int
	for s := 1; s < len(templates); s += 7 {
		wave := v.Synthesize(rng, []int32{int32(s)}, 8, noise)
		for f, row := range v.Frontend().Features(wave) {
			if f == 0 {
				continue
			}
			for d, val := range row {
				diff := float64(val - templates[s][d])
				sum += diff * diff
				n++
			}
		}
	}
	if n == 0 {
		return 1
	}
	return float32(math.Sqrt(sum / float64(n)))
}

func wordStrings(tk *task.Task, ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = tk.Lex.Words[id]
	}
	return out
}
