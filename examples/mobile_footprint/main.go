// Mobile footprint: the paper's motivating scenario. A wearable has tens of
// megabytes to spare, but the offline-composed WFST of a large-vocabulary
// recognizer exceeds a gigabyte. This example builds one task four ways —
// fully-composed, fully-composed + compression, on-the-fly, and on-the-fly
// + compression (Figure 8) — and prints what would actually fit.
package main

import (
	"fmt"
	"log"

	unfold "repro"
	"repro/internal/compress"
	"repro/internal/wfst"
)

func main() {
	sys, err := unfold.NewSystem(unfold.KaldiTedlium(1.0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building the offline composition (this is the artifact UNFOLD avoids)...")
	composed, err := sys.Composed()
	if err != nil {
		log.Fatal(err)
	}
	composed.SortByInput()
	q, err := compress.TrainQuantizer(compress.CollectWeights(composed), 0)
	if err != nil {
		log.Fatal(err)
	}
	composedComp, err := compress.EncodeComposed(composed, q)
	if err != nil {
		log.Fatal(err)
	}

	fp := sys.Footprint()
	rows := []struct {
		name  string
		bytes int64
	}{
		{"fully-composed WFST", composed.SizeBytes()},
		{"fully-composed + compression", composedComp.SizeBytes()},
		{"on-the-fly (AM + LM)", fp.OnTheFlyBytes()},
		{"on-the-fly + compression (UNFOLD)", fp.CompressedBytes()},
	}
	fmt.Printf("\n%-36s %12s %10s\n", "configuration", "size", "vs UNFOLD")
	for _, r := range rows {
		fmt.Printf("%-36s %12s %9.1fx\n",
			r.name, wfst.FormatBytes(r.bytes),
			float64(r.bytes)/float64(fp.CompressedBytes()))
	}
	fmt.Printf("\nThe recognizer itself is unchanged: same hypotheses, same accuracy —\n")
	fmt.Printf("only the memory system differs (see the equivalence tests in internal/decoder).\n")
}
