// Accelerator simulation: run the same test set through both simulated
// designs — UNFOLD and the fully-composed baseline accelerator — and print
// the microarchitectural story the paper tells: similar hypotheses and
// real-time margins, but far less DRAM traffic and energy for UNFOLD.
package main

import (
	"fmt"
	"log"

	"repro/internal/decoder"
	"repro/internal/metrics"

	unfold "repro"
)

func main() {
	spec := unfold.KaldiVoxforge(1.0)
	spec.TestUtterances = 15
	sys, err := unfold.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}

	var scores [][][]float32
	frames := 0
	for _, u := range sys.TestSet() {
		scores = append(scores, sys.Task.Scorer.ScoreUtterance(u.Frames))
		frames += len(u.Frames)
	}
	audio := metrics.AudioDuration(frames).Seconds()

	u, err := sys.NewAccelerator(decoder.Config{PreemptivePruning: true})
	if err != nil {
		log.Fatal(err)
	}
	ru, _ := u.DecodeAll(scores)

	fmt.Println("building the composed WFST for the baseline accelerator...")
	b, err := sys.NewBaselineAccelerator(decoder.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rb, _ := b.DecodeAll(scores)

	fmt.Printf("\n%-28s %14s %14s\n", "", "UNFOLD", "Reza et al.")
	row := func(name, a, c string) { fmt.Printf("%-28s %14s %14s\n", name, a, c) }
	row("decode time (ms)", fmt.Sprintf("%.3f", ru.Seconds*1e3), fmt.Sprintf("%.3f", rb.Seconds*1e3))
	row("x real time", fmt.Sprintf("%.0f", audio/ru.Seconds), fmt.Sprintf("%.0f", audio/rb.Seconds))
	row("DRAM traffic (KB)",
		fmt.Sprintf("%.1f", float64(ru.DRAMReadBytes+ru.DRAMWriteBytes)/1024),
		fmt.Sprintf("%.1f", float64(rb.DRAMReadBytes+rb.DRAMWriteBytes)/1024))
	row("energy (uJ)", fmt.Sprintf("%.1f", ru.TotalEnergyJ*1e6), fmt.Sprintf("%.1f", rb.TotalEnergyJ*1e6))
	row("avg power (mW)", fmt.Sprintf("%.1f", ru.AvgPowerW*1e3), fmt.Sprintf("%.1f", rb.AvgPowerW*1e3))
	row("area (mm^2)", fmt.Sprintf("%.1f", ru.AreaMM2), fmt.Sprintf("%.1f", rb.AreaMM2))
	row("offset table hit rate",
		fmt.Sprintf("%.1f%%", 100*float64(ru.OffsetHits)/float64(ru.OffsetHits+ru.OffsetMisses)), "-")

	fmt.Printf("\ncache miss ratios (UNFOLD): state %.2f%%, AM arc %.2f%%, LM arc %.2f%%, token %.2f%%\n",
		100*ru.Caches["State"].MissRatio(), 100*ru.Caches["AMArc"].MissRatio(),
		100*ru.Caches["LMArc"].MissRatio(), 100*ru.Caches["Token"].MissRatio())
}
