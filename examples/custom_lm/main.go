// Custom language model: the operational advantage of on-the-fly
// composition. With an offline-composed WFST, changing the grammar means
// rebuilding and re-shipping a gigabyte-scale artifact; with UNFOLD, the AM
// stays put and only the (small) LM is swapped. This example decodes the
// same audio under a trigram, a bigram, and a heavily pruned LM, rebuilding
// nothing but the language model.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/decoder"
	"repro/internal/lm"
	"repro/internal/metrics"
	"repro/internal/task"
	"repro/internal/wfst"

	unfold "repro"
)

func main() {
	spec := unfold.KaldiVoxforge(1.0)
	spec.TestUtterances = 15
	tk, err := task.Build(spec)
	if err != nil {
		log.Fatal(err)
	}

	variants := []struct {
		name string
		opts lm.TrainOptions
	}{
		{"trigram", lm.TrainOptions{Order: 3}},
		{"bigram", lm.TrainOptions{Order: 2}},
		{"trigram, pruned (min-count 4)", lm.TrainOptions{Order: 3, MinCount: 4}},
	}

	fmt.Printf("AM is fixed: %s\n\n", wfst.ComputeStats(tk.AM.G))
	for _, v := range variants {
		model, err := lm.Train(tk.Train, spec.Vocab, v.opts)
		if err != nil {
			log.Fatal(err)
		}
		graph, err := model.BuildGraph()
		if err != nil {
			log.Fatal(err)
		}
		dec, err := decoder.NewOnTheFly(tk.AM.G, graph.G, decoder.Config{PreemptivePruning: true})
		if err != nil {
			log.Fatal(err)
		}
		var acc metrics.WERAccumulator
		for _, u := range tk.Test {
			res := dec.Decode(tk.Scorer.ScoreUtterance(u.Frames))
			acc.Add(u.Words, res.Words)
		}
		fmt.Printf("%-30s LM %8s  perplexity %6.1f  WER %5.2f%%\n",
			v.name, wfst.FormatBytes(graph.G.SizeBytes()),
			model.Perplexity(tk.Train), acc.WER())
	}

	fmt.Println("\nSwapping grammars re-used the acoustic model unchanged — with an offline-")
	fmt.Println("composed recognizer each variant would be a full WFST rebuild.")
	_ = strings.Join // keep strings imported for the template below
}
