// Benchmarks: one testing.B target per paper table/figure, mapping 1:1 to
// the experiment IDs in DESIGN.md §4. They exercise the same code paths as
// cmd/unfold-experiments on a small fixture so `go test -bench=.` finishes
// quickly; run the command with -scale for paper-style sweeps.
package unfold

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/compress"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/task"
	"repro/internal/wfst"
)

type benchFixture struct {
	sys      *System
	composed *wfst.WFST
	scores   [][][]float32
}

var (
	benchOnce sync.Once
	benchFix  *benchFixture
)

func getBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	benchOnce.Do(func() {
		spec := task.Spec{
			Name:           "bench",
			Vocab:          40,
			Phones:         14,
			TrainSentences: 300,
			TestUtterances: 4,
			LMMinCount:     2,
			Seed:           2024,
		}
		sys, err := NewSystem(spec)
		if err != nil {
			panic(err)
		}
		composed, err := sys.Composed()
		if err != nil {
			panic(err)
		}
		f := &benchFixture{sys: sys, composed: composed}
		for _, u := range sys.TestSet() {
			f.scores = append(f.scores, sys.Task.Scorer.ScoreUtterance(u.Frames))
		}
		benchFix = f
	})
	return benchFix
}

func benchFrames(f *benchFixture) int64 {
	var n int64
	for _, sc := range f.scores {
		n += int64(len(sc))
	}
	return n
}

// BenchmarkFig1SoftwarePipeline measures the software decode+score split
// underlying Figure 1.
func BenchmarkFig1SoftwarePipeline(b *testing.B) {
	f := getBenchFixture(b)
	b.Run("viterbi", func(b *testing.B) {
		d, err := f.sys.NewDecoder(decoder.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Decode(f.scores[i%len(f.scores)])
		}
	})
	b.Run("acoustic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u := f.sys.TestSet()[i%len(f.scores)]
			f.sys.Task.Scorer.ScoreUtterance(u.Frames)
		}
	})
}

// BenchmarkTab1Compose measures the offline AM∘LM composition whose output
// size Table 1 reports.
func BenchmarkTab1Compose(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := wfst.Compose(f.sys.Task.AM.G, f.sys.Task.LMGraph.G, wfst.ComposeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumArcs() == 0 {
			b.Fatal("empty composition")
		}
	}
}

// BenchmarkTab2Compression measures the AM+LM compression pipeline of
// Table 2.
func BenchmarkTab2Compression(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		qa, err := compress.TrainQuantizer(compress.CollectWeights(f.sys.Task.AM.G), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := compress.EncodeAM(f.sys.Task.AM.G, qa); err != nil {
			b.Fatal(err)
		}
		ql, err := compress.TrainQuantizer(compress.CollectWeights(f.sys.Task.LMGraph.G), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := compress.EncodeLM(f.sys.Task.LMGraph, ql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Footprint measures the Price-style composed-WFST compression
// used by the Figure 8 / Table 2 baselines.
func BenchmarkFig8Footprint(b *testing.B) {
	f := getBenchFixture(b)
	if !f.composed.InSorted() {
		f.composed.SortByInput()
	}
	q, err := compress.TrainQuantizer(compress.CollectWeights(f.composed), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cc, err := compress.EncodeComposed(f.composed, q)
		if err != nil {
			b.Fatal(err)
		}
		if cc.SizeBytes() == 0 {
			b.Fatal("empty compression")
		}
	}
}

// benchUnfoldDecode runs the UNFOLD simulator over the fixture's test set.
func benchUnfoldDecode(b *testing.B, dcfg decoder.Config, cfg accel.Config) *accel.Result {
	f := getBenchFixture(b)
	var last *accel.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, err := accel.NewUnfold(cfg, dcfg, f.sys.AM, f.sys.LM, f.sys.Task.AM.NumSenones)
		if err != nil {
			b.Fatal(err)
		}
		last, _ = u.DecodeAll(f.scores)
	}
	b.SetBytes(benchFrames(f))
	return last
}

// BenchmarkFig6CacheSweep measures one point of the Figure 6 cache sweep
// (small vs default caches as sub-benches).
func BenchmarkFig6CacheSweep(b *testing.B) {
	small := accel.UnfoldConfig()
	small.StateCache.SizeBytes = 4 << 10
	small.AMArcCache.SizeBytes = 4 << 10
	small.LMArcCache.SizeBytes = 4 << 10
	small.TokenCache.SizeBytes = 4 << 10
	b.Run("4KB", func(b *testing.B) { benchUnfoldDecode(b, decoder.Config{}, small) })
	b.Run("default", func(b *testing.B) { benchUnfoldDecode(b, decoder.Config{}, accel.UnfoldConfig()) })
}

// BenchmarkFig7OffsetTable compares decode with and without the Offset
// Lookup Table (Figure 7).
func BenchmarkFig7OffsetTable(b *testing.B) {
	b.Run("with-table", func(b *testing.B) {
		benchUnfoldDecode(b, decoder.Config{Lookup: decoder.LookupMemo}, accel.UnfoldConfig())
	})
	b.Run("binary-only", func(b *testing.B) {
		benchUnfoldDecode(b, decoder.Config{Lookup: decoder.LookupBinary}, accel.UnfoldConfig())
	})
}

// BenchmarkFig9SearchEnergy runs the UNFOLD energy simulation of Figure 9.
func BenchmarkFig9SearchEnergy(b *testing.B) {
	r := benchUnfoldDecode(b, decoder.Config{PreemptivePruning: true}, accel.UnfoldConfig())
	b.ReportMetric(r.TotalEnergyJ*1e6, "uJ/testset")
}

// BenchmarkFig10PowerBreakdown exercises the per-component energy
// accounting of Figure 10.
func BenchmarkFig10PowerBreakdown(b *testing.B) {
	r := benchUnfoldDecode(b, decoder.Config{}, accel.UnfoldConfig())
	b.ReportMetric(r.AvgPowerW*1e3, "mW")
}

// BenchmarkFig11Bandwidth runs the baseline accelerator whose DRAM traffic
// Figure 11 contrasts with UNFOLD's.
func BenchmarkFig11Bandwidth(b *testing.B) {
	f := getBenchFixture(b)
	var last *accel.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fc, err := accel.NewFullyComposed(accel.BaselineConfig(), decoder.Config{}, f.composed, f.sys.Task.AM.NumSenones)
		if err != nil {
			b.Fatal(err)
		}
		last, _ = fc.DecodeAll(f.scores)
	}
	b.ReportMetric(last.BandwidthGBs(), "GB/s")
}

// BenchmarkTab5Latency measures simulated per-utterance latency (Table 5).
func BenchmarkTab5Latency(b *testing.B) {
	f := getBenchFixture(b)
	u, err := f.sys.NewAccelerator(decoder.Config{PreemptivePruning: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		_, per := u.DecodeAll(f.scores[:1])
		mean = per[0].Seconds * 1e3
	}
	b.ReportMetric(mean, "simulated-ms/utt")
}

// BenchmarkTab6WER measures the full recognition pipeline that produces
// Table 6's WER.
func BenchmarkTab6WER(b *testing.B) {
	f := getBenchFixture(b)
	b.ReportAllocs()
	var wer float64
	for i := 0; i < b.N; i++ {
		var acc metrics.WERAccumulator
		for j, u := range f.sys.TestSet() {
			hyp, err := f.sys.Recognize(u.Frames)
			if err != nil {
				b.Fatal(err)
			}
			acc.Add(f.sys.TestSet()[j].Words, hyp)
		}
		wer = acc.WER()
	}
	b.ReportMetric(wer, "WER%")
}

// BenchmarkFig12OverallTime measures the overall pipeline (scorer + search)
// of Figure 12.
func BenchmarkFig12OverallTime(b *testing.B) {
	f := getBenchFixture(b)
	d, err := f.sys.NewDecoder(decoder.Config{PreemptivePruning: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := f.sys.TestSet()[i%len(f.scores)]
		d.Decode(f.sys.Task.Scorer.ScoreUtterance(u.Frames))
	}
	b.SetBytes(benchFrames(f) / int64(len(f.scores)))
}

// BenchmarkFig13OverallEnergy exercises the overall energy accounting of
// Figure 13 (accelerated search + modelled scorer).
func BenchmarkFig13OverallEnergy(b *testing.B) {
	r := benchUnfoldDecode(b, decoder.Config{PreemptivePruning: true}, accel.UnfoldConfig())
	b.ReportMetric(r.TotalEnergyJ*1e6, "searchuJ")
}

// BenchmarkAblationPreemptivePruning compares decode with and without the
// Section 3.3 pruning.
func BenchmarkAblationPreemptivePruning(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchUnfoldDecode(b, decoder.Config{}, accel.UnfoldConfig()) })
	b.Run("on", func(b *testing.B) {
		benchUnfoldDecode(b, decoder.Config{PreemptivePruning: true}, accel.UnfoldConfig())
	})
}

// BenchmarkParallelDecode sweeps DecodePool worker counts over a replicated
// batch of utterances — the serving-throughput scaling curve. Compare
// utt/s across sub-benches; on a multi-core host 4 workers should beat 1
// by well over 1.5x (this container may be limited to fewer cores — the
// b.ReportMetric utt/s column is the number to read).
func BenchmarkParallelDecode(b *testing.B) {
	f := getBenchFixture(b)
	// Replicate the fixture's scores into a batch large enough that the
	// fan-out dominates per-batch setup.
	var scores [][][]float32
	for len(scores) < 16 {
		scores = append(scores, f.scores...)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p, err := pool.New(f.sys.Task.AM.G, f.sys.Task.LMGraph.G, pool.Config{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var last *pool.Batch
			for i := 0; i < b.N; i++ {
				last, err = p.Decode(scores)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput.UtterancesPerSec(), "utt/s")
			b.ReportMetric(100*last.Cache.HitRate(), "cache-hit-%")
		})
	}
}

// BenchmarkFrontierDecode is the before/after comparison for the
// zero-allocation token frontier: the same search run over the pooled
// tokenStore (Decode) and over the retained per-frame map frontier
// (DecodeReference). The two produce byte-identical results — the
// differential suite proves it — so every difference in ns/frame and
// allocs/frame is attributable to frontier storage. cmd/unfold-bench runs
// the same comparison and records it in BENCH_PR3.json.
func BenchmarkFrontierDecode(b *testing.B) {
	f := getBenchFixture(b)
	frames := benchFrames(f)
	for _, impl := range []struct {
		name   string
		decode func(d *decoder.OnTheFly, scores [][]float32) *decoder.Result
	}{
		{"tokenstore", func(d *decoder.OnTheFly, scores [][]float32) *decoder.Result { return d.Decode(scores) }},
		{"map-reference", func(d *decoder.OnTheFly, scores [][]float32) *decoder.Result { return d.DecodeReference(scores) }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			d, err := f.sys.NewDecoder(decoder.Config{PreemptivePruning: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var allocObjs int64
			for i := 0; i < b.N; i++ {
				for _, scores := range f.scores {
					r := impl.decode(d, scores)
					allocObjs += r.Stats.AllocObjects
				}
			}
			total := float64(b.N) * float64(frames)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/frame")
			b.ReportMetric(float64(allocObjs)/total, "allocs/frame")
		})
	}
}

// BenchmarkStreamPush measures the incremental path: one stream lifecycle
// (NewStream, Push per frame, Finish) per iteration over the fixture's first
// utterance.
func BenchmarkStreamPush(b *testing.B) {
	f := getBenchFixture(b)
	d, err := f.sys.NewDecoder(decoder.Config{})
	if err != nil {
		b.Fatal(err)
	}
	scores := f.scores[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := d.NewStream()
		for _, frame := range scores {
			if err := s.Push(frame); err != nil {
				b.Fatal(err)
			}
		}
		s.Finish()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(len(scores))), "ns/frame")
}

// BenchmarkAblationLMArcSearch compares the three LM lookup strategies of
// Section 5.1 in the software decoder.
func BenchmarkAblationLMArcSearch(b *testing.B) {
	f := getBenchFixture(b)
	for _, kind := range []decoder.LookupKind{decoder.LookupLinear, decoder.LookupBinary, decoder.LookupMemo} {
		b.Run(kind.String(), func(b *testing.B) {
			d, err := f.sys.NewDecoder(decoder.Config{Lookup: kind})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Decode(f.scores[i%len(f.scores)])
			}
		})
	}
}
