package unfold_test

import (
	"fmt"

	unfold "repro"
	"repro/internal/decoder"
	"repro/internal/task"
)

// The basic flow: build a system, recognize its own test utterances.
func ExampleNewSystem() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	u := sys.TestSet()[0]
	hyp, err := sys.Recognize(u.Frames)
	if err != nil {
		panic(err)
	}
	fmt.Println("recognized", len(hyp), "words; reference has", len(u.Words))
	// Output: recognized 6 words; reference has 6
}

// Dataset footprints: the memory story the paper is about.
func ExampleSystem_Footprint() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example-fp",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	fp := sys.Footprint()
	fmt.Println("compressed smaller than uncompressed:",
		fp.CompressedBytes() < fp.OnTheFlyBytes())
	// Output: compressed smaller than uncompressed: true
}

// Parallel batch decoding: a DecodePool fans utterances out to workers
// sharing one bounded offset cache; transcripts are byte-identical to
// sequential decoding regardless of the worker count.
func ExampleDecodePool() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example-pool",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 4,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	// Score the batch, then decode it on 4 workers.
	var scores [][][]float32
	for _, u := range sys.TestSet() {
		scores = append(scores, sys.Task.Scorer.ScoreUtterance(u.Frames))
	}
	p, err := sys.NewDecodePool(unfold.PoolConfig{Workers: 4})
	if err != nil {
		panic(err)
	}
	batch, err := p.Decode(scores)
	if err != nil {
		panic(err)
	}
	// The pool's transcripts match sequential decoding exactly.
	dec, err := sys.NewDecoder(unfold.DecoderConfig{})
	if err != nil {
		panic(err)
	}
	same := true
	for i, r := range batch.Results {
		seq := dec.Decode(scores[i])
		if fmt.Sprint(seq.Words) != fmt.Sprint(r.Words) {
			same = false
		}
	}
	fmt.Println("decoded", len(batch.Results), "utterances on", p.Workers(), "workers")
	fmt.Println("matches sequential:", same)
	fmt.Println("cache was used:", batch.Cache.Lookups() > 0)
	// Output:
	// decoded 4 utterances on 4 workers
	// matches sequential: true
	// cache was used: true
}

// Frame-synchronous batched decoding: a LaneScheduler advances concurrent
// utterances in lockstep, scoring all of them with one batched scorer call
// per frame step. It takes raw feature frames (scoring happens inside the
// lane group) and its transcripts are byte-identical to solo decoding.
func ExampleLaneScheduler() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example-lanes",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 4,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	s, err := sys.NewLaneScheduler(unfold.LaneConfig{Lanes: 2})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	// Four utterances churn through two lanes: as one drains, the next
	// joins the running group mid-flight (continuous batching).
	frames := make([][][]float32, len(sys.TestSet()))
	for i, u := range sys.TestSet() {
		frames[i] = u.Frames
	}
	batch, err := s.Decode(frames)
	if err != nil {
		panic(err)
	}
	// Lockstep batching is invisible in the output: every transcript
	// matches the solo decoder exactly.
	dec, err := sys.NewDecoder(unfold.DecoderConfig{})
	if err != nil {
		panic(err)
	}
	same := true
	for i, r := range batch.Results {
		seq := dec.Decode(sys.Task.Scorer.ScoreUtterance(frames[i]))
		if fmt.Sprint(seq.Words) != fmt.Sprint(r.Words) {
			same = false
		}
	}
	st := s.Stats()
	fmt.Println("decoded", len(batch.Results), "utterances on 2 lanes")
	fmt.Println("matches solo:", same)
	fmt.Println("shared scorer calls:", st.ScorerCallsPerFrame() < 1)
	// Output:
	// decoded 4 utterances on 2 lanes
	// matches solo: true
	// shared scorer calls: true
}

// Custom decoder configuration: tighter beam, preemptive pruning.
func ExampleSystem_NewDecoder() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example-dec",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	dec, err := sys.NewDecoder(decoder.Config{Beam: 12, PreemptivePruning: true})
	if err != nil {
		panic(err)
	}
	scores := sys.Task.Scorer.ScoreUtterance(sys.TestSet()[0].Frames)
	res := dec.Decode(scores)
	fmt.Println("reached a final state:", res.ReachedFinal)
	// Output: reached a final state: true
}
