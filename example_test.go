package unfold_test

import (
	"fmt"

	unfold "repro"
	"repro/internal/decoder"
	"repro/internal/task"
)

// The basic flow: build a system, recognize its own test utterances.
func ExampleNewSystem() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	u := sys.TestSet()[0]
	hyp, err := sys.Recognize(u.Frames)
	if err != nil {
		panic(err)
	}
	fmt.Println("recognized", len(hyp), "words; reference has", len(u.Words))
	// Output: recognized 6 words; reference has 6
}

// Dataset footprints: the memory story the paper is about.
func ExampleSystem_Footprint() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example-fp",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	fp := sys.Footprint()
	fmt.Println("compressed smaller than uncompressed:",
		fp.CompressedBytes() < fp.OnTheFlyBytes())
	// Output: compressed smaller than uncompressed: true
}

// Custom decoder configuration: tighter beam, preemptive pruning.
func ExampleSystem_NewDecoder() {
	sys, err := unfold.NewSystem(task.Spec{
		Name:           "example-dec",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		Seed:           9,
	})
	if err != nil {
		panic(err)
	}
	dec, err := sys.NewDecoder(decoder.Config{Beam: 12, PreemptivePruning: true})
	if err != nil {
		panic(err)
	}
	scores := sys.Task.Scorer.ScoreUtterance(sys.TestSet()[0].Frames)
	res := dec.Decode(scores)
	fmt.Println("reached a final state:", res.ReachedFinal)
	// Output: reached a final state: true
}
