package unfold

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/flatstore"
)

// FuzzLoadBundle replaces one bundle file with fuzzer-chosen bytes and
// asserts the loader's contract: LoadRecognizer either loads or returns a
// typed *BundleError — it never panics, never returns an untyped error, and
// never allocates unboundedly from attacker-controlled metadata (corrupt
// meta.json sizes are bounds-checked before any slice is sized).
//
// Run a short smoke regularly via `make fuzz-smoke`.
func FuzzLoadBundle(f *testing.F) {
	fx := getBundle(f)
	files := []string{"meta.json", "lexicon.txt", "am.wfst", "lm.arpa", "senones.bin"}

	// Seeds: every pristine file under every slot (so the fuzzer starts from
	// valid structures for each format), plus simple hand corruptions.
	for idx, name := range files {
		data, err := os.ReadFile(filepath.Join(fx.dir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(idx, data)
		if len(data) > 3 {
			f.Add(idx, data[:len(data)/2]) // truncation
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/3] ^= 0x40
			f.Add(idx, flipped) // bit flip
		}
	}
	f.Add(0, []byte(`{"format_version":2}`))
	f.Add(0, []byte(`{"format_version":2,"vocab":99999999,"num_senones":99999999,"lm_order":3}`))
	f.Add(2, []byte{})

	f.Fuzz(func(t *testing.T, idx int, data []byte) {
		if idx < 0 {
			idx = -idx
		}
		name := files[idx%len(files)]
		dir := t.TempDir()
		copyDir(t, fx.dir, dir)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := LoadRecognizer(dir)
		if err != nil {
			var be *BundleError
			if !errors.As(err, &be) {
				t.Fatalf("untyped error from corrupted %s: %v", name, err)
			}
			return
		}
		if rec == nil {
			t.Fatalf("nil recognizer with nil error (%s)", name)
		}
	})
}

// FuzzLoadBundleV3 feeds fuzzer-chosen bytes to the flat-bundle loader and
// asserts the same contract as FuzzLoadBundle: LoadRecognizer (full verify)
// and LoadRecognizerFast (O(1) trusted path) either load or return a typed
// *BundleError — never panic, never return an untyped error. Seeds cover a
// pristine v3 bundle plus systematic truncations and faultinject mutations
// of it, so the fuzzer starts from structurally interesting corpora rather
// than random noise.
func FuzzLoadBundleV3(f *testing.F) {
	fx := getBundle(f)
	path := filepath.Join(f.TempDir(), "seed.ufb3")
	if err := fx.sys.SaveFlat(path); err != nil {
		f.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	// Truncations at the format's boundaries: inside the header, inside the
	// section table, at a section edge, and mid-payload.
	for _, n := range []int{0, flatstore.HeaderSize / 2, flatstore.HeaderSize,
		flatstore.HeaderSize + flatstore.EntrySize/2, len(pristine) / 2, len(pristine) - 1} {
		if n <= len(pristine) {
			f.Add(pristine[:n:n])
		}
	}
	// Bit flips and structured mutations (zero runs, appends) via the fault
	// injector, at several seeds so different regions get hit.
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(faultinject.MutateBytes(rand.New(rand.NewSource(seed)), pristine))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.ufb3")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, load := range []func(string) (*Recognizer, error){LoadRecognizer, LoadRecognizerFast} {
			rec, err := load(p)
			if err != nil {
				var be *BundleError
				if !errors.As(err, &be) {
					t.Fatalf("untyped error from v3 loader: %v", err)
				}
				continue
			}
			if rec == nil {
				t.Fatal("nil recognizer with nil error")
			}
			rec.Close()
		}
	})
}
