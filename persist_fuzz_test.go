package unfold

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadBundle replaces one bundle file with fuzzer-chosen bytes and
// asserts the loader's contract: LoadRecognizer either loads or returns a
// typed *BundleError — it never panics, never returns an untyped error, and
// never allocates unboundedly from attacker-controlled metadata (corrupt
// meta.json sizes are bounds-checked before any slice is sized).
//
// Run a short smoke regularly via `make fuzz-smoke`.
func FuzzLoadBundle(f *testing.F) {
	fx := getBundle(f)
	files := []string{"meta.json", "lexicon.txt", "am.wfst", "lm.arpa", "senones.bin"}

	// Seeds: every pristine file under every slot (so the fuzzer starts from
	// valid structures for each format), plus simple hand corruptions.
	for idx, name := range files {
		data, err := os.ReadFile(filepath.Join(fx.dir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(idx, data)
		if len(data) > 3 {
			f.Add(idx, data[:len(data)/2]) // truncation
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/3] ^= 0x40
			f.Add(idx, flipped) // bit flip
		}
	}
	f.Add(0, []byte(`{"format_version":2}`))
	f.Add(0, []byte(`{"format_version":2,"vocab":99999999,"num_senones":99999999,"lm_order":3}`))
	f.Add(2, []byte{})

	f.Fuzz(func(t *testing.T, idx int, data []byte) {
		if idx < 0 {
			idx = -idx
		}
		name := files[idx%len(files)]
		dir := t.TempDir()
		copyDir(t, fx.dir, dir)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := LoadRecognizer(dir)
		if err != nil {
			var be *BundleError
			if !errors.As(err, &be) {
				t.Fatalf("untyped error from corrupted %s: %v", name, err)
			}
			return
		}
		if rec == nil {
			t.Fatalf("nil recognizer with nil error (%s)", name)
		}
	})
}
