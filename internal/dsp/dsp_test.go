package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{FrameShift: 400, FrameLen: 100}).Validate(); err == nil {
		t.Error("expected error for shift > length")
	}
	if _, err := NewFrontend(Config{NumFilters: 1}); err == nil {
		t.Error("expected error for single filter")
	}
}

// Goertzel correctness: a pure tone at a filter's center frequency must
// dominate that filter's output.
func TestGoertzelSelectsTone(t *testing.T) {
	fe, err := NewFrontend(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(fe.cfg.SampleRate)
	for _, k := range []int{2, 8, 15} {
		f := fe.centers[k]
		wave := make([]float64, 4*fe.cfg.FrameLen)
		for i := range wave {
			wave[i] = math.Sin(2 * math.Pi * f * float64(i) / rate)
		}
		feats := fe.Features(wave)
		if len(feats) == 0 {
			t.Fatal("no frames")
		}
		row := feats[1]
		best := 0
		for d := range row {
			if row[d] > row[best] {
				best = d
			}
		}
		if best != k {
			t.Errorf("tone at filter %d peaked at filter %d", k, best)
		}
	}
}

func TestNumFrames(t *testing.T) {
	fe, _ := NewFrontend(Config{})
	if fe.NumFrames(fe.cfg.FrameLen) != 1 {
		t.Error("exactly one window should give one frame")
	}
	if fe.NumFrames(10) != 0 {
		t.Error("sub-window waveform should give zero frames")
	}
	n := fe.NumFrames(fe.cfg.FrameLen + 5*fe.cfg.FrameShift)
	if n != 6 {
		t.Errorf("frames = %d, want 6", n)
	}
	if got := len(fe.Features(make([]float64, fe.cfg.FrameLen+5*fe.cfg.FrameShift))); got != 6 {
		t.Errorf("Features returned %d frames, want 6", got)
	}
}

// End-to-end discriminability: features of noisy senone audio must be
// closest to that senone's measured template for a large majority of frames.
func TestVoiceDiscriminative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v, err := NewVoice(rng, 12, Config{})
	if err != nil {
		t.Fatal(err)
	}
	templates := v.Templates(0.3)
	correct, total := 0, 0
	for s := int32(1); s <= 12; s++ {
		wave := v.Synthesize(rng, []int32{s}, 6, 0.3)
		feats := v.Frontend().Features(wave)
		for f := 1; f < len(feats)-2; f++ {
			best, bestD := 0, math.Inf(1)
			for cand := 1; cand <= 12; cand++ {
				var d float64
				for k := range feats[f] {
					diff := float64(feats[f][k] - templates[cand][k])
					d += diff * diff
				}
				if d < bestD {
					best, bestD = cand, d
				}
			}
			total++
			if int32(best) == s {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("frame template accuracy %.2f < 0.8", acc)
	}
}

func TestSynthesizeDeterministicWhenClean(t *testing.T) {
	v, err := NewVoice(rand.New(rand.NewSource(3)), 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := v.Synthesize(rand.New(rand.NewSource(1)), []int32{1, 2}, 3, 0)
	w2 := v.Synthesize(rand.New(rand.NewSource(99)), []int32{1, 2}, 3, 0)
	if len(w1) != len(w2) {
		t.Fatal("clean synthesis length differs")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("clean synthesis depends on rng")
		}
	}
}

func TestNewVoiceErrors(t *testing.T) {
	if _, err := NewVoice(rand.New(rand.NewSource(1)), 0, Config{}); err == nil {
		t.Error("expected error for zero senones")
	}
}
