// Package dsp provides the signal-processing front-end of Section 2's
// pipeline ("decoders split the input audio signal into frames of,
// typically, 10 milliseconds ... each frame is represented through a
// feature vector using signal processing techniques"): a formant-style
// waveform synthesizer standing in for recorded speech, and a
// log-filterbank feature extractor (pre-emphasis, Hamming window, Goertzel
// filterbank at mel-spaced frequencies).
//
// The template-based front-end in internal/acoustic is the default used by
// the benchmark tasks; this package is the physically-grounded alternative:
// senone templates are *measured* from clean synthesized audio rather than
// sampled, so discrimination emerges from the signal path.
package dsp

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes the front-end. Defaults mirror common ASR settings:
// 16 kHz audio, 10 ms frame shift, 25 ms analysis window.
type Config struct {
	SampleRate int // Hz; default 16000
	FrameShift int // samples between frames; default 160 (10 ms)
	FrameLen   int // analysis window length; default 400 (25 ms)
	NumFilters int // mel filterbank size = feature dimension; default 20
	PreEmph    float64
}

func (c Config) withDefaults() Config {
	if c.SampleRate == 0 {
		c.SampleRate = 16000
	}
	if c.FrameShift == 0 {
		c.FrameShift = 160
	}
	if c.FrameLen == 0 {
		c.FrameLen = 400
	}
	if c.NumFilters == 0 {
		c.NumFilters = 20
	}
	if c.PreEmph == 0 {
		c.PreEmph = 0.97
	}
	return c
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.FrameLen < c.FrameShift {
		return fmt.Errorf("dsp: frame length %d < shift %d", c.FrameLen, c.FrameShift)
	}
	if c.NumFilters < 2 {
		return fmt.Errorf("dsp: need at least 2 filters")
	}
	return nil
}

// --- Feature extraction -------------------------------------------------------

// Frontend converts waveforms to log-filterbank feature frames.
type Frontend struct {
	cfg     Config
	centers []float64 // filter center frequencies, Hz
	window  []float64 // Hamming window
}

// NewFrontend builds the extractor with mel-spaced filter centers between
// 100 Hz and 90% of Nyquist.
func NewFrontend(cfg Config) (*Frontend, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fe := &Frontend{cfg: cfg}
	lo, hi := hzToMel(100), hzToMel(0.9*float64(cfg.SampleRate)/2)
	fe.centers = make([]float64, cfg.NumFilters)
	for i := range fe.centers {
		mel := lo + (hi-lo)*float64(i)/float64(cfg.NumFilters-1)
		fe.centers[i] = melToHz(mel)
	}
	fe.window = make([]float64, cfg.FrameLen)
	for i := range fe.window {
		fe.window[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(cfg.FrameLen-1))
	}
	return fe, nil
}

func hzToMel(f float64) float64 { return 2595 * math.Log10(1+f/700) }
func melToHz(m float64) float64 { return 700 * (math.Pow(10, m/2595) - 1) }

// Dim returns the feature dimension.
func (fe *Frontend) Dim() int { return fe.cfg.NumFilters }

// NumFrames returns how many frames a waveform yields.
func (fe *Frontend) NumFrames(samples int) int {
	if samples < fe.cfg.FrameLen {
		return 0
	}
	return (samples-fe.cfg.FrameLen)/fe.cfg.FrameShift + 1
}

// Features extracts log-filterbank frames from a waveform.
func (fe *Frontend) Features(wave []float64) [][]float32 {
	n := fe.NumFrames(len(wave))
	out := make([][]float32, n)
	buf := make([]float64, fe.cfg.FrameLen)
	for f := 0; f < n; f++ {
		off := f * fe.cfg.FrameShift
		// Pre-emphasis + window.
		prev := 0.0
		if off > 0 {
			prev = wave[off-1]
		}
		for i := 0; i < fe.cfg.FrameLen; i++ {
			s := wave[off+i] - fe.cfg.PreEmph*prev
			prev = wave[off+i]
			buf[i] = s * fe.window[i]
		}
		row := make([]float32, fe.cfg.NumFilters)
		for k, fc := range fe.centers {
			row[k] = float32(math.Log(goertzelPower(buf, fc, float64(fe.cfg.SampleRate)) + 1e-10))
		}
		out[f] = row
	}
	return out
}

// goertzelPower returns the normalized spectral power of buf at frequency
// f using the Goertzel recurrence — a single-bin DFT without an FFT.
func goertzelPower(buf []float64, f, rate float64) float64 {
	w := 2 * math.Pi * f / rate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range buf {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(len(buf)*len(buf))
}

// --- Waveform synthesis ---------------------------------------------------------

// Voice maps each senone to a small set of formants (frequency + amplitude
// pairs); synthesized audio for a senone is the sum of those sinusoids plus
// noise. This is the closest synthetic stand-in for recorded phones that
// still exercises the whole front-end.
type Voice struct {
	cfg Config
	fe  *Frontend
	// freqs[s] and amps[s] are the formants of senone s (1-based).
	freqs [][]float64
	amps  [][]float64
}

// NewVoice samples a voice for numSenones senones.
func NewVoice(rng *rand.Rand, numSenones int, cfg Config) (*Voice, error) {
	cfg = cfg.withDefaults()
	fe, err := NewFrontend(cfg)
	if err != nil {
		return nil, err
	}
	if numSenones < 1 {
		return nil, fmt.Errorf("dsp: need at least one senone")
	}
	v := &Voice{cfg: cfg, fe: fe,
		freqs: make([][]float64, numSenones+1),
		amps:  make([][]float64, numSenones+1)}
	nyq := float64(cfg.SampleRate) / 2
	for s := 1; s <= numSenones; s++ {
		k := 3
		fr := make([]float64, k)
		am := make([]float64, k)
		for i := 0; i < k; i++ {
			fr[i] = 150 + rng.Float64()*(0.85*nyq-150)
			am[i] = 0.3 + rng.Float64()*0.7
		}
		v.freqs[s], v.amps[s] = fr, am
	}
	return v, nil
}

// Frontend returns the voice's matched feature extractor.
func (v *Voice) Frontend() *Frontend { return v.fe }

// Synthesize renders a senone occupancy sequence to audio: each senone
// holds for holdFrames frames of samples, with additive noise at the given
// SNR-ish level (0 = clean).
func (v *Voice) Synthesize(rng *rand.Rand, senones []int32, holdFrames int, noise float64) []float64 {
	if holdFrames < 1 {
		holdFrames = 3
	}
	samplesPer := holdFrames * v.cfg.FrameShift
	wave := make([]float64, 0, len(senones)*samplesPer+v.cfg.FrameLen)
	var tIdx int
	for _, s := range senones {
		fr, am := v.freqs[s], v.amps[s]
		for i := 0; i < samplesPer; i++ {
			t := float64(tIdx) / float64(v.cfg.SampleRate)
			var x float64
			for j := range fr {
				x += am[j] * math.Sin(2*math.Pi*fr[j]*t)
			}
			if noise > 0 {
				x += rng.NormFloat64() * noise
			}
			wave = append(wave, x)
			tIdx++
		}
	}
	// Pad so the final frames are analyzable.
	for i := 0; i < v.cfg.FrameLen; i++ {
		wave = append(wave, 0)
	}
	return wave
}

// Templates measures each senone's mean feature template under the given
// noise level — the calibration ("training") pass that replaces
// internal/acoustic's sampled templates when this front-end is used.
// Matched noise conditions matter: the broadband noise floor shifts every
// log-filterbank channel, just as real acoustic models are trained on
// representative recording conditions.
func (v *Voice) Templates(noise float64) [][]float32 {
	out := make([][]float32, len(v.freqs))
	rng := rand.New(rand.NewSource(1))
	for s := 1; s < len(v.freqs); s++ {
		tmpl := make([]float32, v.fe.Dim())
		n := 0
		for rep := 0; rep < 4; rep++ {
			wave := v.Synthesize(rng, []int32{int32(s)}, 8, noise)
			feats := v.fe.Features(wave)
			// Average the steady-state frames (skip the onset and tail).
			for f := 1; f < len(feats)-2; f++ {
				for d, val := range feats[f] {
					tmpl[d] += val
				}
				n++
			}
		}
		if n > 0 {
			for d := range tmpl {
				tmpl[d] /= float32(n)
			}
		}
		out[s] = tmpl
	}
	return out
}
