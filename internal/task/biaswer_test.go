package task

import "testing"

func TestBiasTermAccumulatorExactMatch(t *testing.T) {
	a := NewBiasTermAccumulator([]int32{2, 5})
	a.Add([]int32{1, 2, 3, 5}, []int32{1, 2, 3, 5})
	st := a.Stats()
	if st.RefTerms != 2 || st.Correct != 2 || st.Sub+st.Del+st.Ins != 0 {
		t.Fatalf("exact match miscounted: %+v", st)
	}
	if st.WER() != 0 || st.Recall() != 1 {
		t.Errorf("WER %.2f recall %.2f, want 0 and 1", st.WER(), st.Recall())
	}
}

func TestBiasTermAccumulatorOps(t *testing.T) {
	cases := []struct {
		name     string
		ref, hyp []int32
		want     BiasTermStats
	}{
		{"substituted_term", []int32{1, 2, 3}, []int32{1, 9, 3},
			BiasTermStats{RefTerms: 1, Sub: 1, Utterances: 1}},
		{"deleted_term", []int32{1, 2, 3}, []int32{1, 3},
			BiasTermStats{RefTerms: 1, Del: 1, Utterances: 1}},
		{"inserted_term", []int32{1, 3}, []int32{1, 2, 3},
			BiasTermStats{Ins: 1, Utterances: 1}},
		{"term_replaces_other_word", []int32{1, 9, 3}, []int32{1, 2, 3},
			BiasTermStats{Ins: 1, Utterances: 1}},
		{"unbiased_errors_ignored", []int32{1, 2, 3, 4}, []int32{7, 2, 8},
			BiasTermStats{RefTerms: 1, Correct: 1, Utterances: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewBiasTermAccumulator([]int32{2})
			a.Add(tc.ref, tc.hyp)
			if got := a.Stats(); got != tc.want {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestBiasTermAccumulatorAggregates(t *testing.T) {
	a := NewBiasTermAccumulator([]int32{2})
	a.Add([]int32{2, 1}, []int32{2, 1}) // correct
	a.Add([]int32{2, 1}, []int32{9, 1}) // substituted
	a.Add([]int32{1, 2}, []int32{1})    // deleted
	st := a.Stats()
	want := BiasTermStats{RefTerms: 3, Correct: 1, Sub: 1, Del: 1, Utterances: 3}
	if st != want {
		t.Fatalf("aggregate %+v, want %+v", st, want)
	}
	if w := st.WER(); w < 66.6 || w > 66.7 {
		t.Errorf("WER = %.3f, want 2/3 in percent", w)
	}
	if r := st.Recall(); r < 0.33 || r > 0.34 {
		t.Errorf("recall = %.3f, want 1/3", r)
	}
}

func TestBiasTermStatsEmptyDenominator(t *testing.T) {
	var st BiasTermStats
	if st.WER() != 0 || st.Recall() != 0 {
		t.Errorf("zero stats must report 0, got WER %.2f recall %.2f", st.WER(), st.Recall())
	}
}
