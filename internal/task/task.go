// Package task assembles the substrates into end-to-end ASR benchmark
// tasks: a synthetic lexicon and AM transducer, a corpus sampled from a
// hidden word-level Markov grammar, a back-off trigram LM trained on that
// corpus, a senone template model with a matching scorer, and train/test
// utterance sets.
//
// Four predefined tasks mirror the paper's evaluation set (Kaldi-TEDLIUM,
// Kaldi-Librispeech, Kaldi-Voxforge, EESEN-TEDLIUM) at a laptop-friendly
// scale while preserving the relative ordering of AM/LM sizes, the scorer
// kind per task, and the HMM topology (3-state for Kaldi, 1-state CTC-like
// for EESEN). Every dimension scales with Spec fields for larger runs.
package task

import (
	"fmt"
	"math/rand"

	"repro/internal/acoustic"
	"repro/internal/am"
	"repro/internal/lm"
)

// ScorerKind selects the acoustic scorer, matching the paper's per-task
// choices (Figure 1).
type ScorerKind string

const (
	// ScorerGMM selects the two-component Gaussian-mixture scorer
	// (the paper's Kaldi GMM tasks).
	ScorerGMM ScorerKind = "gmm"
	// ScorerDNN selects the emulated feed-forward network scorer
	// (the Kaldi DNN tasks).
	ScorerDNN ScorerKind = "dnn"
	// ScorerRNN selects the emulated recurrent scorer (the EESEN
	// LSTM/CTC task).
	ScorerRNN ScorerKind = "rnn"
)

// Spec fully determines a task; identical specs build identical tasks.
type Spec struct {
	Name           string
	Vocab          int
	Phones         int // excluding silence
	StatesPerPhone int
	Scorer         ScorerKind
	LMOrder        int
	LMMinCount     int // n-gram pruning threshold (drives back-off traffic)

	TrainSentences int
	TestUtterances int
	MaxSentenceLen int

	FeatDim  int
	Spread   float32 // senone template spread (discriminability)
	Sigma    float32 // senone model standard deviation
	NoiseStd float64 // synthesis noise relative to Sigma

	// SilenceProb is the chance of a silence segment between words and at
	// utterance edges.
	SilenceProb float64

	// AltPronProb gives words secondary pronunciations.
	AltPronProb float64

	// GrammarBranch sets the hidden grammar's successors per word
	// (default 2-6 random). Large values produce dense LM states with high
	// fan-out, the regime where the paper's LM arc-fetch problem bites.
	GrammarBranch int

	// ContextDependent switches the AM to left-biphone tied-state senones
	// (Section 5.3's "triphones" axis); TiedSenones sizes the inventory
	// (default 4x the context-independent count).
	ContextDependent bool
	TiedSenones      int

	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.StatesPerPhone == 0 {
		s.StatesPerPhone = 3
	}
	if s.Scorer == "" {
		s.Scorer = ScorerGMM
	}
	if s.LMOrder == 0 {
		s.LMOrder = 3
	}
	if s.LMMinCount == 0 {
		s.LMMinCount = 1
	}
	if s.MaxSentenceLen == 0 {
		s.MaxSentenceLen = 10
	}
	if s.FeatDim == 0 {
		s.FeatDim = 16
	}
	if s.Spread == 0 {
		s.Spread = 1.0
	}
	if s.Sigma == 0 {
		s.Sigma = 0.45
	}
	if s.NoiseStd == 0 {
		s.NoiseStd = 1.0
	}
	if s.SilenceProb == 0 {
		s.SilenceProb = 0.2
	}
	if s.TestUtterances == 0 {
		s.TestUtterances = 20
	}
	return s
}

// Utterance is one test item: the reference word sequence and its
// synthesized feature frames.
type Utterance struct {
	Words  []int32
	Frames [][]float32
}

// Task is a fully built benchmark task.
type Task struct {
	Spec Spec
	Lex  *am.Lexicon
	AM   *am.Graph
	// Tying is set when the task uses a context-dependent AM.
	Tying   *am.CDTying
	LM      *lm.Model
	LMGraph *lm.Graph
	Senones *acoustic.SenoneModel
	Scorer  acoustic.Scorer
	Train   [][]int32
	Test    []Utterance
}

// grammar is the hidden Markov word chain sentences are sampled from; the
// trained LM approximates it, so test sentences are in-domain.
type grammar struct {
	succ  [][]int32
	vocab int
}

func newGrammar(rng *rand.Rand, vocab, branch int) *grammar {
	g := &grammar{vocab: vocab, succ: make([][]int32, vocab+1)}
	for w := 1; w <= vocab; w++ {
		n := branch
		if n == 0 {
			n = rng.Intn(5) + 2
		}
		g.succ[w] = make([]int32, n)
		for i := range g.succ[w] {
			g.succ[w][i] = int32(rng.Intn(vocab) + 1)
		}
	}
	return g
}

func (g *grammar) sample(rng *rand.Rand, maxLen int) []int32 {
	length := rng.Intn(maxLen) + 1
	sent := make([]int32, length)
	w := int32(rng.Intn(g.vocab) + 1)
	for i := 0; i < length; i++ {
		sent[i] = w
		if rng.Float64() < 0.8 {
			w = g.succ[w][rng.Intn(len(g.succ[w]))]
		} else {
			w = int32(rng.Intn(g.vocab) + 1)
		}
	}
	return sent
}

// Build constructs the task deterministically from its spec.
func Build(spec Spec) (*Task, error) {
	spec = spec.withDefaults()
	if spec.Vocab < 2 || spec.Phones < 2 || spec.TrainSentences < 1 {
		return nil, fmt.Errorf("task: underspecified task %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	lex, err := am.GenerateLexicon(rng, am.GenerateOptions{
		Vocab:       spec.Vocab,
		Phones:      spec.Phones,
		AltPronProb: spec.AltPronProb,
	})
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", spec.Name, err)
	}
	topo := am.Topology{StatesPerPhone: spec.StatesPerPhone}
	var amGraph *am.Graph
	var tying *am.CDTying
	if spec.ContextDependent {
		n := spec.TiedSenones
		if n == 0 {
			n = 4 * topo.NumSenones(lex.NumPhones)
		}
		tying = &am.CDTying{NumSenones: n, Seed: uint64(spec.Seed) + 1}
		amGraph, err = am.BuildGraphCD(lex, topo, *tying)
	} else {
		amGraph, err = am.BuildGraph(lex, topo)
	}
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", spec.Name, err)
	}

	gram := newGrammar(rng, spec.Vocab, spec.GrammarBranch)
	train := make([][]int32, spec.TrainSentences)
	for i := range train {
		train[i] = gram.sample(rng, spec.MaxSentenceLen)
	}
	model, err := lm.Train(train, spec.Vocab, lm.TrainOptions{
		Order:    spec.LMOrder,
		MinCount: spec.LMMinCount,
	})
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", spec.Name, err)
	}
	lmGraph, err := model.BuildGraph()
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", spec.Name, err)
	}

	senones, err := acoustic.NewSenoneModel(rng, amGraph.NumSenones, spec.FeatDim, spec.Spread, spec.Sigma)
	if err != nil {
		return nil, fmt.Errorf("task %s: %w", spec.Name, err)
	}
	var scorer acoustic.Scorer
	switch spec.Scorer {
	case ScorerGMM:
		scorer = acoustic.NewGMMScorer(senones)
	case ScorerDNN:
		scorer = acoustic.NewDNNScorer(senones, rng, 0, 0)
	case ScorerRNN:
		scorer = acoustic.NewRNNScorer(senones, rng, 0)
	default:
		return nil, fmt.Errorf("task %s: unknown scorer %q", spec.Name, spec.Scorer)
	}

	t := &Task{
		Spec:    spec,
		Lex:     lex,
		AM:      amGraph,
		Tying:   tying,
		LM:      model,
		LMGraph: lmGraph,
		Senones: senones,
		Scorer:  scorer,
		Train:   train,
	}
	t.Test = make([]Utterance, spec.TestUtterances)
	for i := range t.Test {
		words := gram.sample(rng, spec.MaxSentenceLen)
		t.Test[i] = Utterance{Words: words, Frames: t.SynthesizeFrames(rng, words)}
	}
	return t, nil
}

// SenoneSeq expands a word sequence into the senone occupancy sequence of
// its forced alignment, with optional silence segments.
func (t *Task) SenoneSeq(rng *rand.Rand, words []int32) []int32 {
	topo := t.AM.Topo
	var seq []int32
	senone := func(ctx, ph int32, sub int) int32 {
		if t.Tying != nil {
			return t.Tying.Senone(ctx, ph, sub)
		}
		return topo.Senone(ph, sub)
	}
	appendPhone := func(ctx, ph int32) {
		for sub := 0; sub < topo.StatesPerPhone; sub++ {
			seq = append(seq, senone(ctx, ph, sub))
		}
	}
	maybeSilence := func() {
		if rng.Float64() < t.Spec.SilenceProb {
			appendPhone(0, t.Lex.SilencePhone())
		}
	}
	maybeSilence()
	for i, w := range words {
		if i > 0 {
			maybeSilence()
		}
		ctx := int32(0) // word-boundary context at each word start
		for _, ph := range t.Lex.Pron(w) {
			appendPhone(ctx, ph)
			ctx = ph
		}
	}
	maybeSilence()
	return seq
}

// SynthesizeFrames renders a word sequence into feature frames.
func (t *Task) SynthesizeFrames(rng *rand.Rand, words []int32) [][]float32 {
	seq := t.SenoneSeq(rng, words)
	frames, _ := t.Senones.Synthesize(rng, seq, acoustic.SynthesisOptions{NoiseStd: t.Spec.NoiseStd})
	return frames
}

// --- Predefined tasks ------------------------------------------------------

// scaleInt scales a base count, keeping a sane floor.
func scaleInt(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

// KaldiTedlium mirrors the Kaldi TED-LIUM decoder: 3-state HMMs, GMM
// scoring, a large trigram LM relative to its AM.
func KaldiTedlium(scale float64) Spec {
	return Spec{
		Name:           "KALDI-TEDLIUM",
		Vocab:          scaleInt(120, scale, 20),
		Phones:         30,
		StatesPerPhone: 3,
		Scorer:         ScorerGMM,
		TrainSentences: scaleInt(1200, scale, 100),
		LMMinCount:     2,
		NoiseStd:       2.53, // spontaneous, noisy speech: high WER (paper: 22.59%)
		Seed:           101,
	}
}

// KaldiLibrispeech mirrors the Kaldi Librispeech decoder: the largest AM of
// the Kaldi set and DNN scoring.
func KaldiLibrispeech(scale float64) Spec {
	return Spec{
		Name:           "KALDI-Librispeech",
		Vocab:          scaleInt(150, scale, 25),
		Phones:         36,
		StatesPerPhone: 3,
		Scorer:         ScorerDNN,
		TrainSentences: scaleInt(800, scale, 80),
		LMMinCount:     2,
		NoiseStd:       2.20, // read speech: lowest WER of the set (paper: 10.62%)
		Seed:           102,
	}
}

// KaldiVoxforge mirrors the Kaldi Voxforge decoder: the miniature task.
func KaldiVoxforge(scale float64) Spec {
	return Spec{
		Name:           "KALDI-Voxforge",
		Vocab:          scaleInt(50, scale, 10),
		Phones:         20,
		StatesPerPhone: 3,
		Scorer:         ScorerGMM,
		TrainSentences: scaleInt(250, scale, 50),
		NoiseStd:       2.45, // paper: 13.26%
		Seed:           103,
	}
}

// EesenTedlium mirrors the EESEN end-to-end decoder: 1-state phone models
// (CTC-style), RNN scoring, and the largest LM of the set.
func EesenTedlium(scale float64) Spec {
	return Spec{
		Name:           "EESEN-TEDLIUM",
		Vocab:          scaleInt(130, scale, 20),
		Phones:         40,
		StatesPerPhone: 1,
		Scorer:         ScorerRNN,
		TrainSentences: scaleInt(1800, scale, 150),
		LMMinCount:     2,
		NoiseStd:       2.80, // highest WER of the set (paper: 27.72%)
		Seed:           104,
	}
}

// AllSpecs returns the paper's four evaluation tasks at the given scale.
func AllSpecs(scale float64) []Spec {
	return []Spec{
		KaldiTedlium(scale),
		KaldiLibrispeech(scale),
		KaldiVoxforge(scale),
		EesenTedlium(scale),
	}
}
