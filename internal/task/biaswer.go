package task

import "fmt"

// BiasTermStats is the biased-term slice of an evaluation: the same
// Levenshtein alignment WER uses, but scored only where a biased term is
// involved. It answers the question a phrase list exists to answer — "did
// the contact name / hotword come out right?" — which aggregate WER hides
// behind all the unbiased words. Ins counts hypothesis occurrences of
// biased terms with no aligned reference counterpart: over-biasing
// (hallucinated hotwords) shows up there instead of vanishing into a
// better-looking recall.
type BiasTermStats struct {
	RefTerms   int // biased-term occurrences across the references
	Correct    int // of those, aligned to the identical hypothesis word
	Sub        int // replaced by some other word
	Del        int // dropped entirely
	Ins        int // biased terms the hypothesis invented
	Utterances int
}

// WER is the biased-term word error rate in percent:
// (Sub+Del+Ins)/RefTerms, the restricted analogue of aggregate WER.
func (s BiasTermStats) WER() float64 {
	if s.RefTerms == 0 {
		return 0
	}
	return 100 * float64(s.Sub+s.Del+s.Ins) / float64(s.RefTerms)
}

// Recall is the fraction of reference biased-term occurrences the
// hypothesis got exactly right.
func (s BiasTermStats) Recall() float64 {
	if s.RefTerms == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.RefTerms)
}

func (s BiasTermStats) String() string {
	return fmt.Sprintf("biased-term WER %.2f%% recall %.2f (%d/%d correct, %d sub, %d del, %d ins, %d utts)",
		s.WER(), s.Recall(), s.Correct, s.RefTerms, s.Sub, s.Del, s.Ins, s.Utterances)
}

// BiasTermAccumulator aggregates BiasTermStats over a test set for one
// biased-term set (word IDs, matching the decoder's output alphabet).
type BiasTermAccumulator struct {
	terms map[int32]bool
	stats BiasTermStats
}

// NewBiasTermAccumulator builds an accumulator for the given biased word
// IDs (duplicates are fine).
func NewBiasTermAccumulator(terms []int32) *BiasTermAccumulator {
	set := make(map[int32]bool, len(terms))
	for _, t := range terms {
		set[t] = true
	}
	return &BiasTermAccumulator{terms: set}
}

// Add aligns one utterance and accumulates the biased-term slice of the
// edit operations.
func (a *BiasTermAccumulator) Add(ref, hyp []int32) {
	n, m := len(ref), len(hyp)
	// Full DP with backtraces: unlike aggregate WER (which only needs the
	// operation counts), attributing errors to specific words needs the
	// alignment path. Utterances are short, so the quadratic table is cheap.
	const (
		opMatch = iota
		opSub
		opDel
		opIns
	)
	cost := make([][]int, n+1)
	from := make([][]int8, n+1)
	for i := range cost {
		cost[i] = make([]int, m+1)
		from[i] = make([]int8, m+1)
	}
	for i := 1; i <= n; i++ {
		cost[i][0], from[i][0] = i, opDel
	}
	for j := 1; j <= m; j++ {
		cost[0][j], from[0][j] = j, opIns
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if ref[i-1] == hyp[j-1] {
				cost[i][j], from[i][j] = cost[i-1][j-1], opMatch
				continue
			}
			c, op := cost[i-1][j-1]+1, int8(opSub)
			if d := cost[i-1][j] + 1; d < c {
				c, op = d, opDel
			}
			if ins := cost[i][j-1] + 1; ins < c {
				c, op = ins, opIns
			}
			cost[i][j], from[i][j] = c, op
		}
	}
	for i, j := n, m; i > 0 || j > 0; {
		switch from[i][j] {
		case opMatch:
			if a.terms[ref[i-1]] {
				a.stats.RefTerms++
				a.stats.Correct++
			}
			i, j = i-1, j-1
		case opSub:
			if a.terms[ref[i-1]] {
				a.stats.RefTerms++
				a.stats.Sub++
			} else if a.terms[hyp[j-1]] {
				// A biased term surfaced where the reference has an
				// unbiased word: over-biasing, charged as an insertion.
				a.stats.Ins++
			}
			i, j = i-1, j-1
		case opDel:
			if a.terms[ref[i-1]] {
				a.stats.RefTerms++
				a.stats.Del++
			}
			i--
		default: // opIns
			if a.terms[hyp[j-1]] {
				a.stats.Ins++
			}
			j--
		}
	}
	a.stats.Utterances++
}

// Stats returns the aggregate.
func (a *BiasTermAccumulator) Stats() BiasTermStats { return a.stats }
