package task

import (
	"math/rand"
	"testing"

	"repro/internal/wfst"
)

// tiny returns a fast-to-build spec for unit tests.
func tiny(seed int64) Spec {
	return Spec{
		Name:           "tiny",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 120,
		TestUtterances: 4,
		Seed:           seed,
	}
}

func TestBuildTiny(t *testing.T) {
	tk, err := Build(tiny(1))
	if err != nil {
		t.Fatal(err)
	}
	if tk.Lex.V() != 25 {
		t.Errorf("vocab = %d", tk.Lex.V())
	}
	if err := tk.AM.G.Validate(); err != nil {
		t.Errorf("AM: %v", err)
	}
	if err := tk.LMGraph.G.Validate(); err != nil {
		t.Errorf("LM: %v", err)
	}
	if len(tk.Test) != 4 {
		t.Errorf("test utterances = %d", len(tk.Test))
	}
	for i, u := range tk.Test {
		if len(u.Words) == 0 || len(u.Frames) == 0 {
			t.Errorf("test utterance %d empty", i)
		}
		for _, w := range u.Words {
			if w < 1 || int(w) > tk.Lex.V() {
				t.Errorf("utterance %d: word %d out of range", i, w)
			}
		}
	}
	if tk.Scorer == nil || tk.Senones == nil {
		t.Error("scorer/senones missing")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(tiny(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(tiny(7))
	if err != nil {
		t.Fatal(err)
	}
	if !wfst.Equal(a.AM.G, b.AM.G) {
		t.Error("AM graphs differ across same-spec builds")
	}
	if !wfst.Equal(a.LMGraph.G, b.LMGraph.G) {
		t.Error("LM graphs differ across same-spec builds")
	}
	if len(a.Test) != len(b.Test) {
		t.Fatal("test set sizes differ")
	}
	for i := range a.Test {
		if len(a.Test[i].Frames) != len(b.Test[i].Frames) {
			t.Fatalf("utterance %d frame counts differ", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{Vocab: 1, Phones: 5, TrainSentences: 10}); err == nil {
		t.Error("expected error for vocab 1")
	}
	s := tiny(1)
	s.Scorer = "quantum"
	if _, err := Build(s); err == nil {
		t.Error("expected error for unknown scorer")
	}
}

func TestSenoneSeqCoversWords(t *testing.T) {
	tk, err := Build(tiny(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	words := []int32{1, 2, 3}
	seq := tk.SenoneSeq(rng, words)
	minLen := 0
	for _, w := range words {
		minLen += len(tk.Lex.Pron(w)) * tk.AM.Topo.StatesPerPhone
	}
	if len(seq) < minLen {
		t.Errorf("senone seq length %d < minimum %d", len(seq), minLen)
	}
	for _, s := range seq {
		if s < 1 || int(s) > tk.AM.NumSenones {
			t.Errorf("senone %d out of range", s)
		}
	}
}

func TestPredefinedSpecsOrdering(t *testing.T) {
	specs := AllSpecs(1.0)
	if len(specs) != 4 {
		t.Fatalf("expected 4 predefined tasks, got %d", len(specs))
	}
	names := map[string]Spec{}
	for _, s := range specs {
		names[s.Name] = s
	}
	// Structural properties the paper's tasks have.
	if names["EESEN-TEDLIUM"].StatesPerPhone != 1 {
		t.Error("EESEN task must use 1-state phones")
	}
	if names["KALDI-TEDLIUM"].StatesPerPhone != 3 {
		t.Error("Kaldi task must use 3-state HMMs")
	}
	if names["KALDI-Librispeech"].Scorer != ScorerDNN {
		t.Error("Librispeech task must use the DNN scorer")
	}
	if names["EESEN-TEDLIUM"].Scorer != ScorerRNN {
		t.Error("EESEN task must use the RNN scorer")
	}
	// LM corpus ordering: EESEN-TEDLIUM largest, Voxforge smallest.
	if !(names["EESEN-TEDLIUM"].TrainSentences > names["KALDI-TEDLIUM"].TrainSentences) {
		t.Error("EESEN LM should be the largest")
	}
	if !(names["KALDI-Voxforge"].TrainSentences < names["KALDI-Librispeech"].TrainSentences) {
		t.Error("Voxforge should be the smallest task")
	}
	// Scaling respects floors.
	small := KaldiTedlium(0.001)
	if small.Vocab < 20 {
		t.Errorf("scaled vocab %d below floor", small.Vocab)
	}
}

func TestBuildAllPredefinedAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-task build in -short mode")
	}
	for _, spec := range AllSpecs(0.15) {
		spec.TestUtterances = 2
		tk, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if tk.AM.G.NumArcs() == 0 || tk.LMGraph.G.NumArcs() == 0 {
			t.Errorf("%s: empty graphs", spec.Name)
		}
	}
}

func TestContextDependentTask(t *testing.T) {
	spec := tiny(51)
	spec.ContextDependent = true
	tk, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Tying == nil {
		t.Fatal("CD task missing tying")
	}
	ci, err := Build(tiny(51))
	if err != nil {
		t.Fatal(err)
	}
	if tk.AM.NumSenones <= ci.AM.NumSenones {
		t.Errorf("CD senones %d not larger than CI %d", tk.AM.NumSenones, ci.AM.NumSenones)
	}
	// Senone sequences must stay within the tied inventory.
	rng := rand.New(rand.NewSource(1))
	for _, s := range tk.SenoneSeq(rng, []int32{1, 2, 3}) {
		if s < 1 || int(s) > tk.AM.NumSenones {
			t.Fatalf("CD senone %d out of range", s)
		}
	}
	// And the task must be end-to-end decodable.
	if len(tk.Test) == 0 || len(tk.Test[0].Frames) == 0 {
		t.Fatal("CD task produced no test audio")
	}
}
