package bitpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripSimple(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0x3FFFF, 18)
	if w.Len() != 30 {
		t.Fatalf("Len = %d, want 30", w.Len())
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(0, 3); got != 0b101 {
		t.Errorf("field0 = %#x, want 0b101", got)
	}
	if got := r.ReadBits(3, 8); got != 0xFF {
		t.Errorf("field1 = %#x, want 0xFF", got)
	}
	if got := r.ReadBits(11, 1); got != 0 {
		t.Errorf("field2 = %#x, want 0", got)
	}
	if got := r.ReadBits(12, 18); got != 0x3FFFF {
		t.Errorf("field3 = %#x, want 0x3FFFF", got)
	}
}

func TestWriteMasksHighBits(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 4) // only low 4 bits should land
	w.WriteBits(0, 4)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(0, 8); got != 0x0F {
		t.Errorf("byte = %#x, want 0x0F", got)
	}
}

func TestAlign(t *testing.T) {
	var w Writer
	w.WriteBits(1, 3)
	w.Align(8)
	if w.Len() != 8 {
		t.Fatalf("Len after Align = %d, want 8", w.Len())
	}
	w.Align(8) // already aligned: no-op
	if w.Len() != 8 {
		t.Fatalf("Len after second Align = %d, want 8", w.Len())
	}
	w.WriteBits(0x7, 3)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(8, 3); got != 0x7 {
		t.Errorf("post-align field = %#x, want 0x7", got)
	}
}

func TestFullWidth64(t *testing.T) {
	var w Writer
	const v = uint64(0xDEADBEEFCAFEBABE)
	w.WriteBits(1, 1)
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(1, 64); got != v {
		t.Errorf("64-bit field = %#x, want %#x", got, v)
	}
}

// Property: any sequence of (value, width) fields reads back exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		widths := make([]uint, count)
		vals := make([]uint64, count)
		var w Writer
		for i := 0; i < count; i++ {
			widths[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		var pos uint64
		for i := 0; i < count; i++ {
			if got := r.ReadBits(pos, widths[i]); got != vals[i] {
				return false
			}
			pos += uint64(widths[i])
		}
		return pos == w.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadPastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic reading past end")
		}
	}()
	r := NewReader([]byte{0xAB})
	r.ReadBits(4, 8)
}

func TestSizeBytes(t *testing.T) {
	var w Writer
	w.WriteBits(0, 9)
	if w.SizeBytes() != 2 {
		t.Errorf("SizeBytes = %d, want 2", w.SizeBytes())
	}
}
