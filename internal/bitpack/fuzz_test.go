package bitpack

import "testing"

// FuzzReadBits checks that arbitrary buffers never panic for in-range reads
// and that out-of-range reads always panic (the documented contract).
func FuzzReadBits(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0xAB}, uint16(0), uint8(8))
	f.Add([]byte{0x01}, uint16(7), uint8(1))
	f.Add([]byte{}, uint16(0), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(3), uint8(64))
	f.Fuzz(func(t *testing.T, buf []byte, pos uint16, n uint8) {
		width := uint(n % 65)
		r := NewReader(buf)
		inRange := uint64(pos)+uint64(width) <= r.Len()
		defer func() {
			err := recover()
			if inRange && err != nil {
				t.Fatalf("in-range read panicked: %v", err)
			}
			if !inRange && width > 0 && err == nil {
				t.Fatalf("out-of-range read (pos %d width %d len %d) did not panic",
					pos, width, r.Len())
			}
		}()
		v := r.ReadBits(uint64(pos), width)
		if width < 64 && v >= 1<<width {
			t.Fatalf("ReadBits returned %d, exceeds %d bits", v, width)
		}
	})
}
