// Package bitpack provides bit-granular writers and readers for the packed
// arc formats of the compressed WFSTs (Section 3.4 of the paper): AM arcs
// occupy 20 or 58 bits and LM arcs occupy 6, 27 or 45 bits, so byte-aligned
// encodings would waste most of the compression win.
//
// The Writer appends fields LSB-first into a growing byte buffer. The Reader
// is stateless: every read names an absolute bit position, which is what the
// binary search over fixed-width LM arcs requires.
package bitpack

import "fmt"

// Writer accumulates bit fields into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	bits uint64 // total bits written
}

// WriteBits appends the low n bits of v. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitpack: WriteBits width %d > 64", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		byteIdx := w.bits >> 3
		bitIdx := uint(w.bits & 7)
		if int(byteIdx) == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		take := 8 - bitIdx
		if uint64(take) > uint64(n) {
			take = uint(n)
		}
		w.buf[byteIdx] |= byte(v) << bitIdx
		v >>= take
		w.bits += uint64(take)
		n -= take
	}
}

// Align pads with zero bits up to the next multiple of n bits (n a power of
// two is typical, e.g. 8 for byte alignment).
func (w *Writer) Align(n uint64) {
	if n == 0 {
		return
	}
	if rem := w.bits % n; rem != 0 {
		pad := n - rem
		for pad > 64 {
			w.WriteBits(0, 64)
			pad -= 64
		}
		w.WriteBits(0, uint(pad))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() uint64 { return w.bits }

// Bytes returns the packed buffer. The final partial byte, if any, is
// zero-padded. The returned slice aliases the writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// SizeBytes returns the storage footprint in bytes (bits rounded up).
func (w *Writer) SizeBytes() int { return int((w.bits + 7) / 8) }

// Reader reads bit fields from a packed buffer at absolute positions.
type Reader struct {
	buf []byte
}

// NewReader wraps buf for random-access bit reads.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits returns the n-bit field starting at absolute bit position pos.
// n must be in [0, 64]. Reading past the end of the buffer panics, as it
// indicates a corrupted offset table rather than a recoverable condition.
func (r *Reader) ReadBits(pos uint64, n uint) uint64 {
	if n > 64 {
		panic(fmt.Sprintf("bitpack: ReadBits width %d > 64", n))
	}
	var v uint64
	var got uint
	for got < n {
		byteIdx := pos >> 3
		bitIdx := uint(pos & 7)
		if byteIdx >= uint64(len(r.buf)) {
			panic(fmt.Sprintf("bitpack: read of %d bits at bit %d past end (%d bytes)",
				n, pos-uint64(got), len(r.buf)))
		}
		take := 8 - bitIdx
		if take > n-got {
			take = n - got
		}
		chunk := uint64(r.buf[byteIdx]>>bitIdx) & ((1 << take) - 1)
		v |= chunk << got
		got += take
		pos += uint64(take)
	}
	return v
}

// Len returns the buffer length in bits.
func (r *Reader) Len() uint64 { return uint64(len(r.buf)) * 8 }

// Bytes returns the underlying packed buffer. The slice aliases the
// reader's storage (serializers write it verbatim); callers must not
// modify it.
func (r *Reader) Bytes() []byte { return r.buf }
