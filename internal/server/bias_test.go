package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	unfold "repro"
	"repro/internal/bias"
	"repro/internal/decoder"
)

// biasOracle decodes frames through a private solo decoder carrying the
// same machine the server compiles for (phrases, bonus) — the ground truth
// every biased HTTP response must reproduce byte-for-byte.
func biasOracle(t *testing.T, sys *unfold.System, phrases []string, bonus float32, frames [][]float32) *decoder.Result {
	t.Helper()
	dec, err := decoder.NewOnTheFly(sys.Task.AM.G, sys.Task.LMGraph.G, decoder.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(phrases) > 0 {
		m, err := bias.Compile(phrases, bonus, newWordLookup(sys.Task.Lex.Words))
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.SetBias(m); err != nil {
			t.Fatal(err)
		}
	}
	return dec.Decode(sys.Task.Scorer.ScoreUtterance(frames))
}

// postRecognize marshals req and returns the recorder.
func postRecognize(t *testing.T, s *Server, req recognizeRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	return rec
}

// refPhrases returns utterance utt's reference words as single-word bias
// phrases — guaranteed in-lexicon, so the machine always has match arcs.
func refPhrases(sys *unfold.System, utt int) []string {
	return sys.Words(sys.TestSet()[utt].Words)
}

// TestRecognizeBiasIdentity checks the no-bias contract at the HTTP
// boundary: an omitted bias block, an empty one, and a tenant-only one all
// produce responses identical to each other (the tenant-only run decodes
// through its own cache partition, which must not change a single word or
// cost — offsets are a pure function of the LM graph).
func TestRecognizeBiasIdentity(t *testing.T) {
	for _, lanes := range []int{0, 2} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			s := newLoadedServer(t, Config{Workers: 2, Lanes: lanes})
			defer s.Close()
			defer s.DrainModel(DefaultModel)
			sys := getSystem(t)

			var req recognizeRequest
			for _, u := range sys.TestSet() {
				req.Utterances = append(req.Utterances, utteranceRequest{Frames: u.Frames})
			}
			decode := func(b *biasRequest) recognizeResponse {
				t.Helper()
				req.Bias = b
				rec := postRecognize(t, s, req)
				if rec.Code != http.StatusOK {
					t.Fatalf("recognize: %d %s", rec.Code, rec.Body.String())
				}
				var resp recognizeResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatal(err)
				}
				return resp
			}

			base := decode(nil)
			for name, b := range map[string]*biasRequest{
				"empty_block": {},
				"tenant_only": {Tenant: "acme"},
			} {
				got := decode(b)
				for i := range base.Results {
					if fmt.Sprint(got.Results[i].Words) != fmt.Sprint(base.Results[i].Words) ||
						got.Results[i].Cost != base.Results[i].Cost {
						t.Errorf("%s utt %d: diverged from the unbiased decode", name, i)
					}
				}
			}
		})
	}
}

// TestRecognizeBiasMatchesSoloOracle posts biased batches on both decode
// backends and checks every transcript against a private solo decoder
// carrying the identical machine, then checks the compiler-cache telemetry:
// the first request is a miss, the repeat a hit, and the per-tenant series
// appear under the tenant label.
func TestRecognizeBiasMatchesSoloOracle(t *testing.T) {
	for _, lanes := range []int{0, 2} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			s := newLoadedServer(t, Config{Workers: 2, Lanes: lanes})
			defer s.Close()
			defer s.DrainModel(DefaultModel)
			sys := getSystem(t)

			phrases := refPhrases(sys, 0)
			var req recognizeRequest
			for _, u := range sys.TestSet() {
				req.Utterances = append(req.Utterances, utteranceRequest{Frames: u.Frames})
			}
			req.Bias = &biasRequest{Tenant: "acme", Phrases: phrases}
			for round := 0; round < 2; round++ {
				rec := postRecognize(t, s, req)
				if rec.Code != http.StatusOK {
					t.Fatalf("round %d: %d %s", round, rec.Code, rec.Body.String())
				}
				var resp recognizeResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatal(err)
				}
				for i, u := range sys.TestSet() {
					want := biasOracle(t, sys, phrases, DefaultBiasBonus, u.Frames)
					if fmt.Sprint(resp.Results[i].Words) != fmt.Sprint(want.Words) ||
						resp.Results[i].Cost != float64(want.Cost) {
						t.Errorf("round %d utt %d: biased server decode diverged from the solo oracle", round, i)
					}
				}
			}

			mrec := httptest.NewRecorder()
			s.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			out := mrec.Body.String()
			if v := metricValue(out, "unfold_bias_requests_total"); v != 2 {
				t.Errorf("unfold_bias_requests_total = %g, want 2", v)
			}
			if v := metricValue(out, `unfold_bias_compile_cache_misses_total{model="default"}`); v != 1 {
				t.Errorf("compile cache misses = %g, want 1 (second request must hit)", v)
			}
			if v := metricValue(out, `unfold_bias_compile_cache_hits_total{model="default"}`); v != 1 {
				t.Errorf("compile cache hits = %g, want 1", v)
			}
			if !strings.Contains(out, `unfold_bias_tenant_compile_hits_total`) ||
				!strings.Contains(out, `tenant="acme"`) {
				t.Errorf("per-tenant compile series missing from /metrics:\n%s", grepLines(out, "unfold_bias"))
			}
			// The tenant's offset-cache partition must carry the decode
			// traffic on whichever backend served it.
			sched := "pool"
			if lanes > 0 {
				sched = "lanes"
			}
			if !strings.Contains(out, fmt.Sprintf(`unfold_bias_l2_tenant_hits_total{sched=%q,tenant="acme"}`, sched)) &&
				!strings.Contains(out, fmt.Sprintf(`unfold_bias_l2_tenant_hits_total{tenant="acme",sched=%q}`, sched)) {
				t.Errorf("tenant partition series missing for sched=%s:\n%s", sched, grepLines(out, "unfold_bias_l2"))
			}
		})
	}
}

// grepLines filters a /metrics dump to lines containing sub, for error
// messages.
func grepLines(out, sub string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, sub) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestRecognizeBadBias checks the structured 400 on a bias block the
// compiler rejects (negative bonus), and that the decode never ran.
func TestRecognizeBadBias(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	defer s.Close()
	sys := getSystem(t)

	req := recognizeRequest{
		Utterances: []utteranceRequest{{Frames: sys.TestSet()[0].Frames}},
		Bias:       &biasRequest{Tenant: "acme", Phrases: refPhrases(sys, 0), Bonus: -3},
	}
	rec := postRecognize(t, s, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad bias: got %d %s, want 400", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Reason != "bad_bias" {
		t.Errorf("reason = %q, want bad_bias", eb.Reason)
	}
}

// TestStreamBias drives a chunked NDJSON stream whose first line carries
// the bias block, on both the solo and the lane backends, and checks the
// final transcript against the solo biased oracle. On the solo path it also
// checks the stream decoder read offsets through the tenant's partition.
func TestStreamBias(t *testing.T) {
	for _, lanes := range []int{0, 2} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			s := newLoadedServer(t, Config{Workers: 1, Lanes: lanes})
			defer s.Close()
			defer s.DrainModel(DefaultModel)
			sys := getSystem(t)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			u := sys.TestSet()[0]
			phrases := refPhrases(sys, 0)
			want := biasOracle(t, sys, phrases, DefaultBiasBonus, u.Frames)

			var body bytes.Buffer
			enc := json.NewEncoder(&body)
			half := len(u.Frames) / 2
			enc.Encode(streamChunk{Frames: u.Frames[:half], Bias: &biasRequest{Tenant: "acme", Phrases: phrases}})
			enc.Encode(streamChunk{Frames: u.Frames[half:]})
			resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", &body)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("stream: %d %s", resp.StatusCode, b)
			}
			var last streamUpdate
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
					t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
				}
			}
			if !last.Final || last.Error != "" {
				t.Fatalf("stream did not finish cleanly: %+v", last)
			}
			if fmt.Sprint(last.Words) != fmt.Sprint(want.Words) || last.Cost != float64(want.Cost) {
				t.Errorf("biased stream diverged from the solo oracle: got %v cost %g, want %v cost %g",
					last.Words, last.Cost, want.Words, float64(want.Cost))
			}

			m, release, ok := s.resolveModel(httptest.NewRecorder(), DefaultModel)
			if !ok {
				t.Fatal("model not servable after stream")
			}
			defer release()
			if lanes == 0 {
				if got := m.streamTenants.Tenants(); got != 1 {
					t.Errorf("solo stream tenant partitions = %d, want 1", got)
				}
			} else if got := m.lanes.TenantCaches().Tenants(); got != 1 {
				t.Errorf("lane tenant partitions = %d, want 1", got)
			}
		})
	}
}

// TestStreamBadBias checks a rejected bias block on the first stream line
// answers a clean 400 before any NDJSON output is committed.
func TestStreamBadBias(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	defer s.Close()
	sys := getSystem(t)

	var body bytes.Buffer
	json.NewEncoder(&body).Encode(streamChunk{
		Frames: sys.TestSet()[0].Frames[:2],
		Bias:   &biasRequest{Phrases: refPhrases(sys, 0), Bonus: -1},
	})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream", &body))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("got %d %s, want 400", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Reason != "bad_bias" {
		t.Errorf("reason = %q, want bad_bias", eb.Reason)
	}
}
