package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// saveBundle writes the shared fixture system as a v3 flat bundle and
// returns its path.
func saveBundle(t testing.TB) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.ufb3")
	if err := getSystem(t).SaveFlat(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// postModel registers a bundle under name via POST /v1/models and returns
// the response code and decoded body.
func postModel(t *testing.T, s *Server, name, path string) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(modelsAddRequest{Name: name, Path: path})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/models", bytes.NewReader(body)))
	var out map[string]any
	json.Unmarshal(rec.Body.Bytes(), &out)
	return rec.Code, out
}

// recognizeOn posts one utterance against the named model and returns the
// status code and response body bytes.
func recognizeOn(t *testing.T, s *Server, model string, frames [][]float32) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(recognizeRequest{
		Utterances: []utteranceRequest{{Frames: frames}},
		Model:      model,
	})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	return rec.Code, rec.Body.Bytes()
}

// TestModelAddRecognizeDrain walks the registry's whole lifecycle over
// HTTP: hot-add a v3 bundle, decode against it by name, watch it in
// /healthz and /v1/models and /metrics, then drain it and check it stops
// resolving with a structured 404.
func TestModelAddRecognizeDrain(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 2})
	sys := getSystem(t)
	u := sys.TestSet()[0]
	want, err := sys.Recognize(u.Frames)
	if err != nil {
		t.Fatal(err)
	}

	code, body := postModel(t, s, "alt", saveBundle(t))
	if code != http.StatusOK {
		t.Fatalf("add model: %d %v", code, body)
	}
	if body["state"] != modelReady {
		t.Errorf("added model state %v, want ready", body["state"])
	}

	// The bundle decodes byte-identically to the task it was saved from.
	code, respBytes := recognizeOn(t, s, "alt", u.Frames)
	if code != http.StatusOK {
		t.Fatalf("recognize on alt: %d %s", code, respBytes)
	}
	var resp recognizeResponse
	if err := json.Unmarshal(respBytes, &resp); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resp.Results[0].Words) != fmt.Sprint(want) {
		t.Errorf("bundle-model words %v != reference %v", resp.Results[0].Words, want)
	}

	// Query-parameter selection hits the same model.
	body2, _ := json.Marshal(recognizeRequest{Utterances: []utteranceRequest{{Frames: u.Frames}}})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize?model=alt", bytes.NewReader(body2)))
	if rec.Code != http.StatusOK {
		t.Errorf("query-param model selection: %d %s", rec.Code, rec.Body.String())
	}

	// /v1/models and /healthz list both models with states.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	var list struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 {
		t.Fatalf("model list %v, want default+alt", list.Models)
	}
	for _, mi := range list.Models {
		if mi.State != modelReady {
			t.Errorf("model %s state %s, want ready", mi.Name, mi.State)
		}
		if mi.ResidentBytes <= 0 {
			t.Errorf("model %s resident bytes %d, want > 0", mi.Name, mi.ResidentBytes)
		}
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Models) != 2 || h.Task != "server-test" {
		t.Errorf("healthz models %v task %q", h.Models, h.Task)
	}

	// Per-model telemetry is on /metrics.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, wantMetric := range []string{
		`unfold_model_resident_bytes{model="alt"}`,
		`unfold_model_load_seconds{model="alt"}`,
		`unfold_model_resident_bytes{model="default"}`,
	} {
		if !strings.Contains(rec.Body.String(), wantMetric) {
			t.Errorf("metrics missing %s", wantMetric)
		}
	}

	// Drain: the model stops resolving immediately.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/models/alt", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("drain: %d %s", rec.Code, rec.Body.String())
	}
	code, respBytes = recognizeOn(t, s, "alt", u.Frames)
	if code != http.StatusNotFound {
		t.Fatalf("recognize on drained model: %d, want 404", code)
	}
	var e errorBody
	if err := json.Unmarshal(respBytes, &e); err != nil || e.Reason != "unknown_model" || e.Error == "" {
		t.Errorf("404 body not structured: %s", respBytes)
	}

	// Draining an unknown model is a structured 404 too.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/models/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("drain unknown: %d, want 404", rec.Code)
	}
}

// TestUnknownModel404Shape pins the 404 body shape for an unknown model on
// both decode routes: a structured errorBody with reason unknown_model.
func TestUnknownModel404Shape(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	u := getSystem(t).TestSet()[0]

	code, body := recognizeOn(t, s, "missing", u.Frames)
	if code != http.StatusNotFound {
		t.Fatalf("recognize unknown model: %d, want 404", code)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("404 body not JSON: %s", body)
	}
	if e.Reason != "unknown_model" || !strings.Contains(e.Error, "missing") {
		t.Errorf("404 body %+v, want reason unknown_model naming the model", e)
	}

	// Stream: model on the first NDJSON line.
	line, _ := json.Marshal(streamChunk{Model: "missing", Frames: u.Frames[:1]})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream", bytes.NewReader(line)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("stream unknown model: %d, want 404", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Reason != "unknown_model" {
		t.Errorf("stream 404 body not structured: %s", rec.Body.String())
	}
}

// TestStreamModelSelection streams against a hot-added bundle model, with
// the selector on the first NDJSON line, and checks the final transcript
// matches the task path.
func TestStreamModelSelection(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	sys := getSystem(t)
	if code, body := postModel(t, s, "alt", saveBundle(t)); code != http.StatusOK {
		t.Fatalf("add model: %d %v", code, body)
	}
	u := sys.TestSet()[0]
	want, err := sys.Recognize(u.Frames)
	if err != nil {
		t.Fatal(err)
	}

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	half := len(u.Frames) / 2
	enc.Encode(streamChunk{Model: "alt", Frames: u.Frames[:half]})
	enc.Encode(streamChunk{Frames: u.Frames[half:]})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream", &in))
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body.String())
	}
	var final streamUpdate
	for _, lineText := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		if err := json.Unmarshal([]byte(lineText), &final); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", lineText, err)
		}
	}
	if !final.Final || final.Error != "" {
		t.Fatalf("missing clean final line: %+v", final)
	}
	if fmt.Sprint(final.Words) != fmt.Sprint(want) {
		t.Errorf("streamed bundle words %v != reference %v", final.Words, want)
	}
}

// TestModelBudget rejects a load that would exceed the configured resident
// budget with a structured 507, without disturbing the loaded model.
func TestModelBudget(t *testing.T) {
	s := New(Config{Workers: 1, ModelBudget: 1024}) // far below any bundle
	if err := s.Load(getSystem(t)); err == nil {
		t.Fatal("system load under a 1KB budget should fail")
	}

	path := saveBundle(t)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Room for the task model plus one mapped bundle, with slack — but not
	// for a second bundle.
	fp := getSystem(t).Footprint()
	s = New(Config{Workers: 1, ModelBudget: fp.AMBytes + fp.LMBytes + st.Size() + st.Size()/2})
	if err := s.Load(getSystem(t)); err != nil {
		t.Fatal(err)
	}
	if code, _ := postModel(t, s, "fits", path); code != http.StatusOK {
		t.Fatalf("bundle within budget rejected: %d", code)
	}
	code, body := postModel(t, s, "overflow", path)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget load: %d %v, want 507", code, body)
	}
	if body["reason"] != "model_budget" {
		t.Errorf("budget rejection reason %v, want model_budget", body["reason"])
	}
	// The failed load left no entry behind.
	for _, mi := range s.Models() {
		if mi.Name == "overflow" && mi.State != modelFailed {
			t.Errorf("over-budget model present as %s", mi.State)
		}
	}
}

// TestModelSwapUnderLoad hot-swaps the model a pool of clients is decoding
// against, then drains it, asserting no request ever sees a 5xx and the
// old generation's resources are released (the registry converges to the
// remaining models).
func TestModelSwapUnderLoad(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 2})
	sys := getSystem(t)
	frames := sys.TestSet()[0].Frames
	if len(frames) > 30 {
		frames = frames[:30]
	}
	pathA, pathB := saveBundle(t), saveBundle(t)
	if code, body := postModel(t, s, "hot", pathA); code != http.StatusOK {
		t.Fatalf("initial add: %d %v", code, body)
	}

	stop := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				code, body := recognizeOn(t, s, "hot", frames)
				switch code {
				case http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable,
					http.StatusTooManyRequests, http.StatusRequestTimeout:
					// 404/503 are legitimate after the final drain below.
				default:
					t.Errorf("swap load saw %d: %s", code, body)
				}
			}
		}()
	}
	// Swap generations every ~100ms while the clients hammer the name.
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{pathB, pathA}
		for i := 0; time.Now().Before(stop); i++ {
			if code, body := postModel(t, s, "hot", paths[i%2]); code != http.StatusOK {
				t.Errorf("swap %d failed: %d %v", i, code, body)
			}
			time.Sleep(100 * time.Millisecond)
		}
		// Final act: drain the name entirely.
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/models/hot", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("final drain: %d", rec.Code)
		}
	}()
	wg.Wait()

	// In-flight references have all been released, so the drained
	// generation must be gone; only the default model remains.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		models := s.Models()
		if len(models) == 1 && models[0].Name == DefaultModel {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("registry did not converge after drain: %+v", s.Models())
}

// TestTestsetPerModel checks ?model= on /v1/testset: the default task
// model serves frames, a bundle model answers a structured 404 (bundles
// carry no evaluation data).
func TestTestsetPerModel(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	if code, body := postModel(t, s, "alt", saveBundle(t)); code != http.StatusOK {
		t.Fatalf("add model: %d %v", code, body)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/testset?model=alt", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("bundle-model testset: %d, want 404", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Reason != "no_testset" {
		t.Errorf("testset 404 body not structured: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/testset?model=default", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("default-model testset: %d", rec.Code)
	}
}

// TestModelAddRejects pins the admin route's error paths: bad JSON,
// missing fields, and an unloadable path, each with a structured body.
func TestModelAddRejects(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"badjson", "{", http.StatusBadRequest},
		{"missing", `{"name":"x"}`, http.StatusBadRequest},
		{"nopath", `{"name":"x","path":"/does/not/exist.ufb3"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/models", strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("%s: %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not structured: %s", tc.name, rec.Body.String())
		}
	}
	// Wrong method on the collection: the method-aware mux answers 405.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/v1/models", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/models: %d, want 405", rec.Code)
	}
}

// discard drains and closes a response body (keeps httptest servers tidy
// in the soak's registry churn).
func discard(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
