package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/acoustic"
	"repro/internal/decoder"
	"repro/internal/pool"
)

// utteranceRequest is one utterance's feature frames.
type utteranceRequest struct {
	Frames [][]float32 `json:"frames"`
}

// recognizeRequest is the /v1/recognize body: a batch of utterances, an
// optional decode deadline as a Go duration string ("2s", "750ms"; the
// X-Unfold-Timeout header is the fallback when the field is empty), and an
// optional model name (the ?model= query parameter is the fallback; empty
// selects the default model).
type recognizeRequest struct {
	Utterances []utteranceRequest `json:"utterances"`
	Timeout    string             `json:"timeout,omitempty"`
	Model      string             `json:"model,omitempty"`
	// Bias, when present, decodes the batch as AM ∘ LM ∘ Bias with the
	// tenant's compiled phrase machine and a tenant-partitioned offset
	// cache. See docs/BIASING.md.
	Bias *biasRequest `json:"bias,omitempty"`
}

// compatibleContentType reports whether an explicitly-set Content-Type can
// carry the JSON bodies the decode routes accept. Requests without the
// header are taken at face value (curl one-liners and existing clients
// omit it), so only an explicit wrong type earns a 415.
func compatibleContentType(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json" || mt == "application/x-ndjson" ||
		mt == "text/json" || strings.HasSuffix(mt, "+json")
}

// recognizeResult is one utterance's transcript.
type recognizeResult struct {
	Words          []int32 `json:"words"`
	Text           string  `json:"text"`
	Cost           float64 `json:"cost"`
	Frames         int     `json:"frames"`
	Rescues        int64   `json:"rescues,omitempty"`
	SearchFailures int64   `json:"search_failures,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// recognizeResponse is the /v1/recognize reply. Degraded is the ladder
// level the batch decoded at (absent when full quality), so a client can
// tell a pressure-narrowed transcript from a full-search one.
type recognizeResponse struct {
	Results    []recognizeResult `json:"results"`
	Degraded   int               `json:"degraded,omitempty"`
	Throughput struct {
		UttPerSec    float64 `json:"utt_per_sec"`
		FramesPerSec float64 `json:"frames_per_sec"`
		RTF          float64 `json:"rtf"`
		CacheHitRate float64 `json:"cache_hit_rate"`
	} `json:"throughput"`
}

// checkDims validates every frame row against the acoustic model's feature
// dimension so a malformed request fails with a 400, not a panic deep in
// the scorer.
func checkDims(frames [][]float32, dim int) error {
	for i, f := range frames {
		if len(f) != dim {
			return fmt.Errorf("frame %d has dim %d, want %d", i, len(f), dim)
		}
	}
	return nil
}

// handleRecognize decodes a batch of utterances through the worker pool,
// behind the admission gate: validation is free and happens first, then the
// request claims an execution slot (queueing behind at most MaxQueue
// waiters, shedding with a structured 429 past that), decodes at the
// degradation level the current queue depth selects, and frees its slot the
// moment its deadline fires — an expired request never occupies a worker.
// On the classic path frames are scored sequentially (scorers are not
// concurrency-safe) and the searches fan out across the pool; with
// Config.Lanes the raw frames go to the model's lane scheduler, which
// scores them batched across all concurrently decoding utterances.
func (s *Server) handleRecognize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "error"
	defer func() { s.observeLatency("/v1/recognize", outcome, start) }()

	if r.Method != http.MethodPost {
		outcome = "invalid"
		s.fail(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && !compatibleContentType(ct) {
		outcome = "invalid"
		s.fail(w, http.StatusUnsupportedMediaType, "content_type", fmt.Sprintf("cannot decode %q; send application/json", ct))
		return
	}
	if s.draining.Load() {
		outcome = "unavailable"
		s.failRetry(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	if s.models.empty() {
		outcome = "unavailable"
		s.failRetry(w, http.StatusServiceUnavailable, "not_loaded", "model not loaded")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Admission.MaxBodyBytes)
	var req recognizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		outcome = "invalid"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.fail(w, http.StatusBadRequest, "bad_json", "bad JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		req.Model = r.URL.Query().Get("model")
	}
	m, releaseModel, ok := s.resolveModel(w, req.Model)
	if !ok {
		outcome = "invalid"
		return
	}
	// The reference pins the model's graphs (for a v3 bundle, the memory
	// mapping) until the batch is done; a drain waits on it.
	defer releaseModel()
	if len(req.Utterances) == 0 {
		outcome = "invalid"
		s.fail(w, http.StatusBadRequest, "empty_batch", "no utterances")
		return
	}
	dim := m.dim()
	for i, u := range req.Utterances {
		if len(u.Frames) == 0 {
			outcome = "invalid"
			s.fail(w, http.StatusBadRequest, "empty_utterance", fmt.Sprintf("utterance %d is empty", i))
			return
		}
		if err := checkDims(u.Frames, dim); err != nil {
			outcome = "invalid"
			s.fail(w, http.StatusBadRequest, "bad_dims", fmt.Sprintf("utterance %d: %v", i, err))
			return
		}
	}
	tb, berr := s.tenantBias(m, req.Bias)
	if berr != nil {
		outcome = "invalid"
		s.fail(w, http.StatusBadRequest, "bad_bias", badBias(berr))
		return
	}
	timeout, err := s.admit.parseTimeout(r, req.Timeout)
	if err != nil {
		outcome = "invalid"
		s.fail(w, http.StatusBadRequest, "bad_timeout", err.Error())
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	release, aerr := s.admit.acquire(ctx)
	if aerr != nil {
		switch {
		case errors.Is(aerr, errShed):
			outcome = "shed"
			s.shed(w, "/v1/recognize")
		case errors.Is(aerr, context.DeadlineExceeded):
			outcome = "deadline"
			s.fail(w, http.StatusRequestTimeout, "deadline", "deadline expired before a decode slot was free")
		default:
			// Client went away while queued; nobody is listening for a body.
			outcome = "canceled"
		}
		return
	}
	defer release()

	// Sample the pressure controller once per request: the level the queue
	// depth selects now is the operating point for this whole batch.
	level := s.admit.level()
	var preset *decoder.SearchPreset
	if level > 0 {
		pr := s.cfg.Decoder.DegradedPreset(level)
		preset = &pr
		s.degradedTotal.Inc()
	}

	var batch *pool.Batch
	if m.lanes != nil {
		// Lane path: hand the raw frames to the scheduler — scoring happens
		// inside the lane group, batched across whatever utterances share
		// the lockstep group at each frame, including other requests'.
		frames := make([][][]float32, len(req.Utterances))
		for i, u := range req.Utterances {
			frames[i] = u.Frames
		}
		batch, _ = m.lanes.DecodeBiasContext(ctx, frames, preset, tb)
	} else {
		// Scoring happens under the execution slot — it is real CPU work,
		// and admitting it unbounded would defeat the gate.
		scores := make([][][]float32, len(req.Utterances))
		for i, u := range req.Utterances {
			scores[i] = m.score(u.Frames)
		}
		batch, _ = m.pool.DecodeBiasContext(ctx, scores, preset, tb)
	}
	if cerr := ctx.Err(); cerr != nil {
		if errors.Is(cerr, context.DeadlineExceeded) {
			outcome = "deadline"
			s.fail(w, http.StatusRequestTimeout, "deadline", "decode exceeded the request deadline")
		} else {
			outcome = "canceled"
		}
		return
	}
	// Feed the supervisor: enough consecutive whole-batch search failures
	// quarantine the model (see supervisor.go); any success resets.
	s.models.noteBatch(m, batch.Errors)
	outcome = "ok"
	resp := recognizeResponse{Results: make([]recognizeResult, len(batch.Results)), Degraded: level}
	for i, res := range batch.Results {
		out := &resp.Results[i]
		if batch.Errors[i] != nil {
			out.Error = batch.Errors[i].Error()
		}
		if res == nil {
			continue
		}
		out.Words = res.Words
		out.Text = m.words(res.Words)
		out.Cost = float64(res.Cost)
		out.Frames = res.Stats.Frames
		out.Rescues = res.Stats.Rescues
		out.SearchFailures = res.Stats.SearchFailures
	}
	resp.Throughput.UttPerSec = batch.Throughput.UtterancesPerSec()
	resp.Throughput.FramesPerSec = batch.Throughput.FramesPerSec()
	resp.Throughput.RTF = batch.Throughput.RTF()
	resp.Throughput.CacheHitRate = batch.Throughput.CacheHitRate()
	writeJSON(w, http.StatusOK, resp)
}

// streamChunk is one NDJSON input line on /v1/stream: a chunk of feature
// frames to append to the utterance. Model on the first line selects the
// model for the whole stream (the ?model= query parameter is the
// fallback); later lines ignore it.
type streamChunk struct {
	Frames [][]float32 `json:"frames"`
	Model  string      `json:"model,omitempty"`
	// Bias on the first line biases the whole stream (like Model, later
	// lines ignore it): the utterance decodes as AM ∘ LM ∘ Bias over the
	// tenant's compiled phrase machine and partitioned offset cache.
	Bias *biasRequest `json:"bias,omitempty"`
}

// streamUpdate is the NDJSON reply line emitted after each chunk (and, with
// Final set, after the stream ends).
type streamUpdate struct {
	Words  []int32 `json:"words"`
	Text   string  `json:"text"`
	Frames int     `json:"frames"`
	Final  bool    `json:"final,omitempty"`
	// Populated on the final line only.
	Cost           float64 `json:"cost,omitempty"`
	Rescues        int64   `json:"rescues,omitempty"`
	SearchFailures int64   `json:"search_failures,omitempty"`
	Degraded       int     `json:"degraded,omitempty"`
	Error          string  `json:"error,omitempty"`
	// Reason is the machine-matchable token on mid-stream error records
	// ("stall", "bad_dims", "deadline", "search"), mirroring errorBody's
	// Reason for errors that happen after the 200 header is committed.
	Reason string `json:"reason,omitempty"`
}

// streamSender owns all response writes for one /v1/stream connection: a
// dedicated writer goroutine drains a bounded buffer so a client that stops
// reading cannot block the decode loop. Partial updates are latest-wins —
// when the buffer fills, the oldest queued partial is dropped (counted
// under unfold_server_stream_partials_dropped_total) — and final records
// are enqueued blocking, so they are never lost to the policy. With
// Config.Stream.WriteTimeout set, each write carries a deadline; a write
// that misses it (or fails outright — the client is gone) cancels the
// stream's context so the decode stops doing work nobody will read.
type streamSender struct {
	srv     *Server
	enc     *json.Encoder
	flusher http.Flusher
	rc      *http.ResponseController
	timeout time.Duration
	cancel  context.CancelFunc

	ch   chan streamUpdate
	done chan struct{}
	once sync.Once
	err  error // first write error; written by run, read only after done
}

func (s *Server) newStreamSender(w http.ResponseWriter, cancel context.CancelFunc) *streamSender {
	flusher, _ := w.(http.Flusher)
	sn := &streamSender{
		srv:     s,
		enc:     json.NewEncoder(w),
		flusher: flusher,
		rc:      http.NewResponseController(w),
		timeout: s.cfg.Stream.WriteTimeout,
		cancel:  cancel,
		ch:      make(chan streamUpdate, s.cfg.Stream.SendBuffer),
		done:    make(chan struct{}),
	}
	go sn.run()
	return sn
}

func (sn *streamSender) run() {
	defer close(sn.done)
	for u := range sn.ch {
		if sn.err != nil {
			continue // drain: the connection is dead, the decode canceled
		}
		if sn.timeout > 0 {
			// ErrNotSupported (test recorders) deliberately ignored.
			sn.rc.SetWriteDeadline(time.Now().Add(sn.timeout))
		}
		if err := sn.enc.Encode(u); err != nil {
			sn.err = err
			if errors.Is(err, os.ErrDeadlineExceeded) {
				sn.srv.streamsStalled.Inc()
			}
			sn.cancel()
			continue
		}
		if sn.flusher != nil {
			sn.flusher.Flush()
		}
	}
}

// partial enqueues a partial update, dropping the oldest queued one when
// the client has let the buffer fill.
func (sn *streamSender) partial(u streamUpdate) {
	for {
		select {
		case sn.ch <- u:
			return
		default:
		}
		select {
		case <-sn.ch:
			sn.srv.partialsDropped.Inc()
		default:
		}
	}
}

// final enqueues a terminal record (blocking — never dropped), stops the
// writer, and reports the first write error, if any.
func (sn *streamSender) final(u streamUpdate) error {
	sn.ch <- u
	sn.stop()
	return sn.err
}

// stop ends the writer goroutine after the queue drains. Idempotent; safe
// to defer alongside an explicit final.
func (sn *streamSender) stop() {
	sn.once.Do(func() {
		close(sn.ch)
		<-sn.done
	})
}

// streamEngine abstracts the two decode backends behind /v1/stream: a
// private solo decoder (scoring chunk-by-chunk under the model's scorer
// lock) or a lane in the model's shared lane scheduler (scoring batched
// across connections). abort releases whatever the engine holds on early
// exits; it is idempotent and safe after finish.
type streamEngine interface {
	push(frames [][]float32) error
	partial() []int32
	finish() (*decoder.Result, error)
	abort()
}

// soloStreamEngine is the classic per-connection path: a private decoder
// over the model's shared stream cache.
type soloStreamEngine struct {
	m      *model
	stream *decoder.Stream
}

func (e *soloStreamEngine) push(frames [][]float32) error {
	// Score the chunk (serialized per model: scorers are stateful) and
	// push the rows one frame at a time, as a live frontend would. A dead
	// search is not an error — Push no-ops and Finish reports the best
	// partial with SearchFailures set.
	for _, row := range e.m.score(frames) {
		if err := e.stream.Push(row); err != nil {
			return err
		}
	}
	return nil
}

func (e *soloStreamEngine) partial() []int32                 { return e.stream.Partial() }
func (e *soloStreamEngine) finish() (*decoder.Result, error) { return e.stream.Finish(), nil }
func (e *soloStreamEngine) abort()                           {}

// pipeStreamEngine is the score-ahead solo path (Config.Decoder.Lookahead >
// 0 with a window-capable scorer): a private Pipeline scores up to k frames
// ahead of this connection's search, whole windows per scorer call, without
// taking the model scorer lock — window state is private per pipeline, so
// concurrent streams batch their own dense work independently. Results are
// byte-identical to the solo engine at lookahead 0.
type pipeStreamEngine struct {
	p *decoder.Pipeline
	s *decoder.PipeStream
}

func (e *pipeStreamEngine) push(frames [][]float32) error { return e.s.Push(frames) }
func (e *pipeStreamEngine) partial() []int32              { return e.s.Partial() }
func (e *pipeStreamEngine) finish() (*decoder.Result, error) {
	res, err := e.s.Finish()
	e.p.Close()
	return res, err
}
func (e *pipeStreamEngine) abort() { e.p.Close() }

// laneStreamEngine rides one lane of the model's scheduler: every push
// joins the frame-synchronous lockstep group, so this stream's dense
// scoring shares matrix work with every other in-flight utterance.
type laneStreamEngine struct{ h *pool.LaneHandle }

func (e *laneStreamEngine) push(frames [][]float32) error    { return e.h.Push(frames) }
func (e *laneStreamEngine) partial() []int32                 { return e.h.Partial() }
func (e *laneStreamEngine) finish() (*decoder.Result, error) { return e.h.Finish() }
func (e *laneStreamEngine) abort()                           { e.h.Close() }

// handleStream runs an incremental decode over a chunked NDJSON exchange:
// each request line carries feature frames, each response line the current
// best partial hypothesis, flushed immediately so the client sees the
// transcript grow while it is still sending audio. EOF on the request body
// finalizes the utterance; cancellation (client disconnect, context
// deadline) aborts it and counts toward unfold_server_streams_aborted_total.
//
// On the classic path each stream gets a private decoder — construction
// borrows the shared graphs, so it is cheap — but all streams share one
// bounded offset cache, so concurrent connections warm each other's offset
// lookups. With Config.Lanes the stream occupies a lane of the model's
// scheduler instead, advancing in lockstep with the other decodes.
//
// Frames are scored chunk-by-chunk. Frame-stateless scorers (the GMM
// default) produce transcripts identical to batch /v1/recognize. The
// emulated recurrent scorer differs by path: the solo path resets its
// temporal state at chunk boundaries (the trade-off a real streaming
// frontend makes), while a lane carries persistent per-utterance scorer
// state, matching the batch decode exactly.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	outcome := "error"
	defer func() { s.observeLatency("/v1/stream", outcome, begin) }()

	if r.Method != http.MethodPost {
		outcome = "invalid"
		s.fail(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && !compatibleContentType(ct) {
		outcome = "invalid"
		s.fail(w, http.StatusUnsupportedMediaType, "content_type", fmt.Sprintf("cannot decode %q; send application/x-ndjson", ct))
		return
	}
	if s.draining.Load() {
		outcome = "unavailable"
		s.failRetry(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	if s.models.empty() {
		outcome = "unavailable"
		s.failRetry(w, http.StatusServiceUnavailable, "not_loaded", "model not loaded")
		return
	}
	timeout, err := s.admit.parseTimeout(r, "")
	if err != nil {
		outcome = "invalid"
		s.fail(w, http.StatusBadRequest, "bad_timeout", err.Error())
		return
	}
	// Streams are long-lived, so there is no queue: past MaxStreams the
	// honest answer is an immediate shed, not minutes of head-of-line wait.
	releaseStream, ok := s.admit.acquireStream()
	if !ok {
		outcome = "shed"
		s.shed(w, "/v1/stream")
		return
	}
	defer releaseStream()

	// The stream context is always cancelable: the sender cancels it when
	// the client stops reading, the watchdog when it stops sending.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	rc := http.NewResponseController(w)
	watchdog := s.cfg.Stream.Watchdog

	// Peek the first NDJSON line before any response bytes: it may carry
	// the model selector, and resolving the model up front lets an unknown
	// name answer a clean 404 instead of failing mid-stream. The watchdog
	// covers the peek too — a client that sends headers and then nothing
	// gets a 408, not a parked goroutine. (SetReadDeadline errors are
	// ignored: test recorders don't support deadlines and don't need them.)
	if watchdog > 0 {
		rc.SetReadDeadline(time.Now().Add(watchdog))
	}
	in := json.NewDecoder(r.Body)
	var first streamChunk
	firstErr := in.Decode(&first)
	if firstErr != nil && !errors.Is(firstErr, io.EOF) {
		if errors.Is(firstErr, os.ErrDeadlineExceeded) {
			outcome = "stalled"
			s.streamsStalled.Inc()
			s.fail(w, http.StatusRequestTimeout, "stall", fmt.Sprintf("no frames within %s", watchdog))
			return
		}
		outcome = "invalid"
		s.fail(w, http.StatusBadRequest, "bad_json", "bad NDJSON first line: "+firstErr.Error())
		return
	}
	name := first.Model
	if name == "" {
		name = r.URL.Query().Get("model")
	}
	m, releaseModel, ok := s.resolveModel(w, name)
	if !ok {
		outcome = "invalid"
		return
	}
	// The reference pins the model's graphs (for a v3 bundle, the memory
	// mapping) for the stream's whole life; a drain waits on it.
	defer releaseModel()

	tb, berr := s.tenantBias(m, first.Bias)
	if berr != nil {
		outcome = "invalid"
		s.fail(w, http.StatusBadRequest, "bad_bias", badBias(berr))
		return
	}

	// The pressure level at connection time sets this stream's operating
	// point; the preset is private to the connection either way — installed
	// on a per-connection decoder, or scoped to this stream's lane.
	level := s.admit.level()
	var preset *decoder.SearchPreset
	if level > 0 {
		pr := s.cfg.Decoder.DegradedPreset(level)
		preset = &pr
		s.degradedTotal.Inc()
	}
	var eng streamEngine
	if m.lanes != nil {
		// Blocks until a lane slot frees up (honouring ctx) — streams past
		// the lane count queue here rather than degrading the lockstep group.
		h, err := m.lanes.OpenLaneBias(ctx, preset, tb)
		if err != nil {
			if ctx.Err() != nil {
				outcome = "canceled"
				return
			}
			outcome = "unavailable"
			s.failRetry(w, http.StatusServiceUnavailable, "model_not_ready", err.Error())
			return
		}
		eng = &laneStreamEngine{h: h}
	} else {
		dcfg := s.cfg.Decoder
		dcfg.OffsetCache = m.streamCache
		if tb != nil {
			// A tenant-scoped stream reads offsets through its own partition,
			// mirroring the pool/lane isolation: a hot tenant's churn cannot
			// evict the tenantless (or another tenant's) working set.
			if l2 := m.streamTenants.Partition(tb.Tenant); l2 != nil {
				dcfg.OffsetCache = l2
			}
		}
		dcfg.Telemetry = s.ptel.Decoder
		ws, window := m.scorer().(acoustic.WindowScorer)
		if dcfg.Lookahead > 0 && !window {
			// Window-incapable scorer: fall back to the synchronous engine
			// rather than failing the connection.
			dcfg.Lookahead = 0
		}
		dec, err := decoder.NewOnTheFly(m.amGraph(), m.lmGraph(), dcfg)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		if preset != nil {
			dec.SetSearchPreset(*preset)
		}
		if tb != nil && tb.Machine != nil {
			if err := dec.SetBias(tb.Machine); err != nil {
				// The machine compiled but cannot compose with this model's
				// graphs (state-count guardrails): still a client problem.
				outcome = "invalid"
				s.fail(w, http.StatusBadRequest, "bad_bias", badBias(err))
				return
			}
		}
		if dcfg.Lookahead > 0 {
			p, err := decoder.NewPipeline(dec, ws)
			if err != nil {
				s.fail(w, http.StatusInternalServerError, "internal", err.Error())
				return
			}
			eng = &pipeStreamEngine{p: p, s: p.NewStream()}
		} else {
			eng = &soloStreamEngine{m: m, stream: dec.NewStream()}
		}
	}
	// Runs on every exit path; a lane is released even when the client
	// vanishes mid-utterance. No-op after a completed finish.
	defer eng.abort()

	s.streamsActive.Add(1)
	s.streamsGauge.Inc()
	defer func() {
		s.streamsActive.Add(-1)
		s.streamsGauge.Dec()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	// HTTP/1.x servers drain the unread request body before the first
	// response flush; a streaming exchange needs concurrent read and write
	// or the two sides deadlock, each waiting for the other. The error is
	// ignored deliberately: transports that don't support the switch
	// (HTTP/2, test recorders) are already full-duplex or in-memory.
	rc.EnableFullDuplex()
	// Every response write goes through the sender: bounded latest-wins
	// buffer, per-write deadlines, cancel-on-dead-client. It is stopped
	// exactly once — by a final record on each normal exit, or by the
	// deferred stop on early returns.
	sn := s.newStreamSender(w, cancel)
	defer sn.stop()
	dim := m.dim()
	frames := 0

	// The peeked first line is the first chunk; later iterations read from
	// the wire (a clean EOF on the peek skips straight to finalization —
	// json.Decoder keeps returning io.EOF).
	chunk, haveChunk := first, firstErr == nil
	for {
		if cerr := ctx.Err(); cerr != nil {
			if errors.Is(cerr, context.DeadlineExceeded) {
				// The stream outlived its decode deadline: tell the client
				// on the wire it is already reading, then stop.
				outcome = "deadline"
				sn.final(streamUpdate{Final: true, Degraded: level, Reason: "deadline", Error: "stream exceeded its decode deadline"})
			} else {
				outcome = "canceled"
			}
			s.streamsAborted.Inc()
			return
		}
		if !haveChunk {
			if watchdog > 0 {
				rc.SetReadDeadline(time.Now().Add(watchdog))
			}
			chunk = streamChunk{}
			if err := in.Decode(&chunk); err != nil {
				if errors.Is(err, io.EOF) {
					break // client finished sending; finalize below
				}
				if errors.Is(err, os.ErrDeadlineExceeded) {
					// The frame clock stalled: the client holds the
					// connection open but stopped sending. Cancel the decode
					// and say why in a structured final record on the wire
					// the client is (nominally) still reading.
					outcome = "stalled"
					s.streamsStalled.Inc()
					s.streamsAborted.Inc()
					sn.final(streamUpdate{Final: true, Reason: "stall",
						Error: fmt.Sprintf("no frames within %s: frame clock stalled, decode canceled", watchdog)})
					return
				}
				// Mid-stream read failure: disconnect or canceled request.
				outcome = "canceled"
				s.streamsAborted.Inc()
				return
			}
		}
		haveChunk = false
		if err := checkDims(chunk.Frames, dim); err != nil {
			outcome = "invalid"
			sn.final(streamUpdate{Final: true, Reason: "bad_dims", Error: err.Error()})
			return
		}
		if err := eng.push(chunk.Frames); err != nil {
			if ctx.Err() != nil {
				// A lane push interrupted by cancellation: loop back so the
				// top-of-loop check classifies it (deadline vs disconnect).
				continue
			}
			// A decode failure mid-stream is model-sickness evidence, same
			// as a whole-batch failure on /v1/recognize.
			s.models.noteDecodeFailure(m)
			sn.final(streamUpdate{Final: true, Reason: "search", Error: err.Error()})
			return
		}
		frames += len(chunk.Frames)
		words := eng.partial()
		sn.partial(streamUpdate{Words: words, Text: m.words(words), Frames: frames})
	}

	res, ferr := eng.finish()
	if ferr != nil {
		if ctx.Err() != nil {
			// Cancellation raced the finalization.
			outcome = "canceled"
			s.streamsAborted.Inc()
			return
		}
		// A lane fault (recovered frontier or scorer panic): structured
		// final record, counted against the model like any decode failure.
		s.models.noteDecodeFailure(m)
		sn.final(streamUpdate{Final: true, Reason: "search", Error: ferr.Error()})
		return
	}
	s.models.noteDecodeSuccess(m)
	outcome = "ok"
	if sn.final(streamUpdate{
		Words:          res.Words,
		Text:           m.words(res.Words),
		Frames:         res.Stats.Frames,
		Final:          true,
		Cost:           float64(res.Cost),
		Rescues:        res.Stats.Rescues,
		SearchFailures: res.Stats.SearchFailures,
		Degraded:       level,
	}) != nil {
		outcome = "canceled"
		s.streamsAborted.Inc()
	}
}

// testsetItem describes one held-out utterance.
type testsetItem struct {
	Utt    int         `json:"utt"`
	Ref    string      `json:"ref"`
	Frames int         `json:"frames"`
	Data   [][]float32 `json:"data,omitempty"`
}

// handleTestset exposes a model's held-out utterances so a client (or the
// runbook's curl examples) has real frames to send: GET /v1/testset lists
// references, GET /v1/testset?utt=N includes utterance N's frames, and
// ?model= selects the model. Bundle-loaded models carry no evaluation
// data, so they answer 404.
func (s *Server) handleTestset(w http.ResponseWriter, r *http.Request) {
	m, releaseModel, ok := s.resolveModel(w, r.URL.Query().Get("model"))
	if !ok {
		return
	}
	defer releaseModel()
	test := m.testSet()
	if test == nil {
		s.fail(w, http.StatusNotFound, "no_testset",
			fmt.Sprintf("model %q was loaded from a bundle and carries no test set", m.name))
		return
	}
	if q := r.URL.Query().Get("utt"); q != "" {
		i, err := strconv.Atoi(q)
		if err != nil || i < 0 || i >= len(test) {
			s.fail(w, http.StatusBadRequest, "bad_utt", fmt.Sprintf("utt must be in [0,%d)", len(test)))
			return
		}
		u := test[i]
		writeJSON(w, http.StatusOK, testsetItem{
			Utt: i, Ref: m.words(u.Words), Frames: len(u.Frames), Data: u.Frames,
		})
		return
	}
	items := make([]testsetItem, len(test))
	for i, u := range test {
		items[i] = testsetItem{Utt: i, Ref: m.words(u.Words), Frames: len(u.Frames)}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(test), "utterances": items})
}
