package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/decoder"
)

// utteranceRequest is one utterance's feature frames.
type utteranceRequest struct {
	Frames [][]float32 `json:"frames"`
}

// recognizeRequest is the /v1/recognize body: a batch of utterances.
type recognizeRequest struct {
	Utterances []utteranceRequest `json:"utterances"`
}

// recognizeResult is one utterance's transcript.
type recognizeResult struct {
	Words          []int32 `json:"words"`
	Text           string  `json:"text"`
	Cost           float64 `json:"cost"`
	Frames         int     `json:"frames"`
	Rescues        int64   `json:"rescues,omitempty"`
	SearchFailures int64   `json:"search_failures,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// recognizeResponse is the /v1/recognize reply.
type recognizeResponse struct {
	Results    []recognizeResult `json:"results"`
	Throughput struct {
		UttPerSec    float64 `json:"utt_per_sec"`
		FramesPerSec float64 `json:"frames_per_sec"`
		RTF          float64 `json:"rtf"`
		CacheHitRate float64 `json:"cache_hit_rate"`
	} `json:"throughput"`
}

// checkDims validates every frame row against the acoustic model's feature
// dimension so a malformed request fails with a 400, not a panic deep in
// the scorer.
func checkDims(frames [][]float32, dim int) error {
	for i, f := range frames {
		if len(f) != dim {
			return fmt.Errorf("frame %d has dim %d, want %d", i, len(f), dim)
		}
	}
	return nil
}

// handleRecognize decodes a batch of utterances through the worker pool:
// frames are scored sequentially (scorers are not concurrency-safe), the
// searches fan out across workers, and cancellation of the request context
// propagates into the per-frame checks of every in-flight search.
func (s *Server) handleRecognize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	sys, p, _ := s.system()
	if sys == nil {
		httpError(w, http.StatusServiceUnavailable, "model not loaded")
		return
	}
	var req recognizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Utterances) == 0 {
		httpError(w, http.StatusBadRequest, "no utterances")
		return
	}
	dim := sys.Task.Senones.Dim
	scores := make([][][]float32, len(req.Utterances))
	for i, u := range req.Utterances {
		if len(u.Frames) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("utterance %d is empty", i))
			return
		}
		if err := checkDims(u.Frames, dim); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("utterance %d: %v", i, err))
			return
		}
		scores[i] = s.score(sys, u.Frames)
	}
	batch, err := p.DecodeContext(r.Context(), scores)
	if batch == nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp := recognizeResponse{Results: make([]recognizeResult, len(batch.Results))}
	for i, res := range batch.Results {
		out := &resp.Results[i]
		if batch.Errors[i] != nil {
			out.Error = batch.Errors[i].Error()
		}
		if res == nil {
			continue
		}
		out.Words = res.Words
		out.Text = text(sys, res.Words)
		out.Cost = float64(res.Cost)
		out.Frames = res.Stats.Frames
		out.Rescues = res.Stats.Rescues
		out.SearchFailures = res.Stats.SearchFailures
	}
	resp.Throughput.UttPerSec = batch.Throughput.UtterancesPerSec()
	resp.Throughput.FramesPerSec = batch.Throughput.FramesPerSec()
	resp.Throughput.RTF = batch.Throughput.RTF()
	resp.Throughput.CacheHitRate = batch.Throughput.CacheHitRate()
	writeJSON(w, http.StatusOK, resp)
}

// streamChunk is one NDJSON input line on /v1/stream: a chunk of feature
// frames to append to the utterance.
type streamChunk struct {
	Frames [][]float32 `json:"frames"`
}

// streamUpdate is the NDJSON reply line emitted after each chunk (and, with
// Final set, after the stream ends).
type streamUpdate struct {
	Words  []int32 `json:"words"`
	Text   string  `json:"text"`
	Frames int     `json:"frames"`
	Final  bool    `json:"final,omitempty"`
	// Populated on the final line only.
	Cost           float64 `json:"cost,omitempty"`
	Rescues        int64   `json:"rescues,omitempty"`
	SearchFailures int64   `json:"search_failures,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// handleStream runs an incremental decode over a chunked NDJSON exchange:
// each request line carries feature frames, each response line the current
// best partial hypothesis, flushed immediately so the client sees the
// transcript grow while it is still sending audio. EOF on the request body
// finalizes the utterance; cancellation (client disconnect, context
// deadline) aborts it and counts toward unfold_server_streams_aborted_total.
//
// Each stream gets a private decoder — construction borrows the shared
// graphs, so it is cheap — but all streams share one bounded offset cache,
// so concurrent connections warm each other's offset lookups.
//
// Frames are scored chunk-by-chunk. Frame-stateless scorers (the GMM
// default) produce transcripts identical to batch /v1/recognize; the
// emulated recurrent scorer resets its temporal state at chunk boundaries,
// which is exactly the trade-off a real streaming frontend makes.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	sys, _, cache := s.system()
	if sys == nil {
		httpError(w, http.StatusServiceUnavailable, "model not loaded")
		return
	}
	dcfg := s.cfg.Decoder
	dcfg.OffsetCache = cache
	dcfg.Telemetry = s.ptel.Decoder
	dec, err := decoder.NewOnTheFly(sys.Task.AM.G, sys.Task.LMGraph.G, dcfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	s.streamsActive.Add(1)
	s.streamsGauge.Inc()
	defer func() {
		s.streamsActive.Add(-1)
		s.streamsGauge.Dec()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	// HTTP/1.x servers drain the unread request body before the first
	// response flush; a streaming exchange needs concurrent read and write
	// or the two sides deadlock, each waiting for the other. The error is
	// ignored deliberately: transports that don't support the switch
	// (HTTP/2, test recorders) are already full-duplex or in-memory.
	http.NewResponseController(w).EnableFullDuplex()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	stream := dec.NewStream()
	dim := sys.Task.Senones.Dim
	frames := 0

	in := json.NewDecoder(r.Body)
	for {
		if r.Context().Err() != nil {
			s.streamsAborted.Inc()
			return
		}
		var chunk streamChunk
		if err := in.Decode(&chunk); err != nil {
			if errors.Is(err, io.EOF) {
				break // client finished sending; finalize below
			}
			// Mid-stream read failure: disconnect or canceled request.
			s.streamsAborted.Inc()
			return
		}
		if err := checkDims(chunk.Frames, dim); err != nil {
			enc.Encode(streamUpdate{Final: true, Error: err.Error()})
			return
		}
		// Score the chunk (serialized: scorers are stateful) and push the
		// rows one frame at a time, exactly as a live frontend would.
		for _, row := range s.score(sys, chunk.Frames) {
			if err := stream.Push(row); err != nil {
				enc.Encode(streamUpdate{Final: true, Error: err.Error()})
				return
			}
			frames++
		}
		words := stream.Partial()
		enc.Encode(streamUpdate{Words: words, Text: text(sys, words), Frames: frames})
		if flusher != nil {
			flusher.Flush()
		}
	}

	res := stream.Finish()
	enc.Encode(streamUpdate{
		Words:          res.Words,
		Text:           text(sys, res.Words),
		Frames:         res.Stats.Frames,
		Final:          true,
		Cost:           float64(res.Cost),
		Rescues:        res.Stats.Rescues,
		SearchFailures: res.Stats.SearchFailures,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// testsetItem describes one held-out utterance.
type testsetItem struct {
	Utt    int         `json:"utt"`
	Ref    string      `json:"ref"`
	Frames int         `json:"frames"`
	Data   [][]float32 `json:"data,omitempty"`
}

// handleTestset exposes the task's held-out utterances so a client (or the
// runbook's curl examples) has real frames to send: GET /v1/testset lists
// references, GET /v1/testset?utt=N includes utterance N's frames.
func (s *Server) handleTestset(w http.ResponseWriter, r *http.Request) {
	sys, _, _ := s.system()
	if sys == nil {
		httpError(w, http.StatusServiceUnavailable, "model not loaded")
		return
	}
	test := sys.TestSet()
	if q := r.URL.Query().Get("utt"); q != "" {
		i, err := strconv.Atoi(q)
		if err != nil || i < 0 || i >= len(test) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("utt must be in [0,%d)", len(test)))
			return
		}
		u := test[i]
		writeJSON(w, http.StatusOK, testsetItem{
			Utt: i, Ref: text(sys, u.Words), Frames: len(u.Frames), Data: u.Frames,
		})
		return
	}
	items := make([]testsetItem, len(test))
	for i, u := range test {
		items[i] = testsetItem{Utt: i, Ref: text(sys, u.Words), Frames: len(u.Frames)}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(test), "utterances": items})
}
