package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// -soak stretches TestSoakMixedLoadWithDrain; `make race-soak` runs it at
// 20s under the race detector, the default keeps it inside unit-test
// budget for `make check`.
var soakDuration = flag.Duration("soak", 2*time.Second, "wall time for the mixed-load soak test")

// TestSoakMixedLoadWithDrain is the lifecycle stress for the serving stack:
// concurrent /v1/recognize and /v1/stream clients run against a saturated
// two-worker pool, and halfway through the server takes the SIGTERM path —
// BeginDrain, then http.Server.Shutdown — exactly as cmd/unfold-serve wires
// it. The invariants:
//
//   - no accepted request is dropped: every 200 carries a complete,
//     error-free decode; every final stream line is well-formed,
//   - rejections stay structured: 429/408/503 only, never a 5xx,
//   - the drain completes: Shutdown returns without error inside its grace
//     window (a stuck worker or leaked admission slot would hang it),
//   - nothing races — run under -race via `make race-soak`.
func TestSoakMixedLoadWithDrain(t *testing.T) {
	duration := *soakDuration
	if testing.Short() {
		duration = 500 * time.Millisecond
	}
	s := newLoadedServer(t, Config{
		Workers: 2,
		Admission: AdmissionConfig{
			MaxConcurrent: 2,
			MaxQueue:      4,
			MaxStreams:    4,
			DegradeLow:    1,
			DegradeHigh:   3,
		},
	})
	sys := getSystem(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	frames := sys.TestSet()[0].Frames
	if len(frames) > 40 {
		frames = frames[:40]
	}
	reqBody, _ := json.Marshal(recognizeRequest{
		Utterances: []utteranceRequest{{Frames: frames}},
		Timeout:    "2s",
	})

	var (
		drained                 atomic.Bool
		oks, rejects, streamsOK atomic.Int64
		stop                    = time.Now().Add(duration)
		wg                      sync.WaitGroup
	)

	allowedReject := func(code int) bool {
		return code == http.StatusTooManyRequests ||
			code == http.StatusRequestTimeout ||
			code == http.StatusServiceUnavailable
	}

	// Batch clients: hammer /v1/recognize until the clock runs out; once
	// the drain starts, transport errors (Shutdown closing connections) are
	// a legitimate way for the loop to end.
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				resp, err := client.Post(base+"/v1/recognize", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					if !drained.Load() {
						t.Errorf("transport error before drain: %v", err)
					}
					return
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					var r recognizeResponse
					if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
						t.Errorf("accepted request dropped: unreadable 200 body: %v", err)
					} else {
						for i, res := range r.Results {
							if res.Error != "" {
								t.Errorf("accepted request utt %d carried error %q", i, res.Error)
							}
						}
						oks.Add(1)
					}
				case allowedReject(resp.StatusCode):
					rejects.Add(1)
					io.Copy(io.Discard, resp.Body)
				default:
					t.Errorf("unexpected status %d under soak", resp.StatusCode)
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
		}()
	}

	// Stream clients: two-chunk NDJSON exchanges, each expecting a
	// well-formed final line when admitted.
	half := len(frames) / 2
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				pr, pw := io.Pipe()
				req, _ := http.NewRequest(http.MethodPost, base+"/v1/stream", pr)
				go func() {
					enc := json.NewEncoder(pw)
					enc.Encode(streamChunk{Frames: frames[:half]})
					enc.Encode(streamChunk{Frames: frames[half:]})
					pw.Close()
				}()
				resp, err := client.Do(req)
				if err != nil {
					if !drained.Load() {
						t.Errorf("stream transport error before drain: %v", err)
					}
					return
				}
				if resp.StatusCode != http.StatusOK {
					if !allowedReject(resp.StatusCode) {
						t.Errorf("unexpected stream status %d", resp.StatusCode)
					}
					rejects.Add(1)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue
				}
				sc := bufio.NewScanner(resp.Body)
				var final streamUpdate
				sawFinal := false
				for sc.Scan() {
					if err := json.Unmarshal(sc.Bytes(), &final); err != nil {
						t.Errorf("bad NDJSON line under soak: %q", sc.Text())
						break
					}
					if final.Final {
						sawFinal = true
					}
				}
				if sawFinal && final.Error == "" {
					if final.Frames != len(frames) {
						t.Errorf("final stream line has %d frames, want %d", final.Frames, len(frames))
					}
					streamsOK.Add(1)
				} else if !drained.Load() && (!sawFinal || final.Error != "") {
					t.Errorf("accepted stream dropped before drain: final=%v err=%q scan=%v", sawFinal, final.Error, sc.Err())
				}
				resp.Body.Close()
			}
		}()
	}

	// Registry churn: one client hot-adds, decodes against, swaps, and
	// drains a side model the whole time, so the soak exercises add/swap/
	// drain racing the decode routes (and, under -race, the refcounted
	// close against in-flight readers).
	bundle := saveBundle(t)
	wg.Add(1)
	go func() {
		defer wg.Done()
		postBody, _ := json.Marshal(modelsAddRequest{Name: "soak-side", Path: bundle})
		sideReq, _ := json.Marshal(recognizeRequest{
			Utterances: []utteranceRequest{{Frames: frames}},
			Timeout:    "2s",
			Model:      "soak-side",
		})
		for time.Now().Before(stop) {
			resp, err := client.Post(base+"/v1/models", "application/json", bytes.NewReader(postBody))
			if err != nil {
				if !drained.Load() {
					t.Errorf("model add transport error before drain: %v", err)
				}
				return
			}
			if resp.StatusCode != http.StatusOK && !drained.Load() {
				t.Errorf("model add failed under soak: %d", resp.StatusCode)
			}
			discard(resp)
			if resp, err = client.Post(base+"/v1/recognize", "application/json", bytes.NewReader(sideReq)); err != nil {
				if !drained.Load() {
					t.Errorf("side-model decode transport error before drain: %v", err)
				}
				return
			}
			// Any structured status is fine here (the side model may be
			// mid-swap); the batch clients assert the strict invariants.
			discard(resp)
			dreq, _ := http.NewRequest(http.MethodDelete, base+"/v1/models/soak-side", nil)
			if resp, err = client.Do(dreq); err != nil {
				if !drained.Load() {
					t.Errorf("model drain transport error before drain: %v", err)
				}
				return
			}
			discard(resp)
		}
	}()

	// Mid-flight, take the SIGTERM path.
	shutdownDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(duration / 2)
		s.BeginDrain()
		drained.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()

	wg.Wait()
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("drain did not complete cleanly: %v", err)
		}
	case <-time.After(35 * time.Second):
		t.Fatal("Shutdown hung: leaked admission slot or stuck worker")
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}

	if oks.Load() == 0 || streamsOK.Load() == 0 {
		t.Errorf("soak did no real work: %d batch oks, %d stream oks", oks.Load(), streamsOK.Load())
	}
	t.Logf("soak: %d batch ok, %d streams ok, %d structured rejects over %v",
		oks.Load(), streamsOK.Load(), rejects.Load(), duration)
}
