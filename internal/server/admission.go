package server

import (
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds the work the server accepts, so a traffic burst
// larger than the decode capacity degrades gracefully — queue, then narrow
// the search, then shed with a structured 429 — instead of stacking
// goroutines until latency or memory collapses. The zero value selects
// serving-friendly defaults for every field.
type AdmissionConfig struct {
	// MaxConcurrent is how many batch decode requests may run at once.
	// Default: the pool worker count (one request per worker keeps every
	// worker busy without queueing inside the pool).
	MaxConcurrent int
	// MaxQueue bounds how many admitted-but-waiting batch requests may sit
	// behind the MaxConcurrent executing ones. A request arriving with the
	// queue full is shed. Default 16.
	MaxQueue int
	// MaxStreams caps concurrent /v1/stream connections; excess streams are
	// shed immediately (streams are long-lived, so queueing them only
	// converts overload into latency). Default 32.
	MaxStreams int
	// DefaultTimeout is the decode deadline applied when a request does not
	// carry its own `timeout` field or header. 0 (the default) applies
	// none — the request is bounded by its own context only.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts; larger requests are
	// clamped, not rejected. Default 2m.
	MaxTimeout time.Duration
	// RetryAfter is the backoff hint attached to every shed response (the
	// Retry-After header and retry_after_seconds body field). Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies; larger requests fail with 413.
	// Default 64 MiB.
	MaxBodyBytes int64
	// DegradeLow and DegradeHigh are the queue-depth watermarks of the
	// pressure controller. At or below DegradeLow requests decode at full
	// quality; between the watermarks the decode steps down the
	// DegradedPreset ladder; at or above DegradeHigh it runs at the deepest
	// configured level. Defaults: MaxQueue/4 and 3*MaxQueue/4.
	DegradeLow  int
	DegradeHigh int
	// DegradeLevels is the depth of the degradation ladder (see
	// decoder.Config.DegradedPreset). Default 2; negative disables
	// degradation entirely (requests are full quality until shed).
	DegradeLevels int
}

// withDefaults fills the zero fields; workers is the resolved pool size.
func (c AdmissionConfig) withDefaults(workers int) AdmissionConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 32
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DegradeLevels == 0 {
		c.DegradeLevels = 2
	}
	if c.DegradeLow <= 0 {
		c.DegradeLow = c.MaxQueue / 4
	}
	if c.DegradeHigh <= 0 {
		c.DegradeHigh = 3 * c.MaxQueue / 4
	}
	if c.DegradeHigh <= c.DegradeLow {
		c.DegradeHigh = c.DegradeLow + 1
	}
	return c
}

// errShed is returned by acquire when the wait queue is full; the handler
// turns it into a structured 429.
var errShed = errors.New("server overloaded: request queue full")

// admitter is the server's admission gate: a fixed set of execution slots
// with a bounded FIFO wait queue in front (batch requests), plus a hard cap
// on concurrent streams. All methods are safe for concurrent use.
type admitter struct {
	cfg     AdmissionConfig
	slots   chan struct{} // capacity MaxConcurrent; a held token = one executing request
	streams chan struct{} // capacity MaxStreams
	queued  atomic.Int64  // requests blocked waiting for a slot
}

func newAdmitter(cfg AdmissionConfig) *admitter {
	return &admitter{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		streams: make(chan struct{}, cfg.MaxStreams),
	}
}

// acquire claims an execution slot, queueing behind at most MaxQueue other
// waiters. It returns the release func, errShed when the queue is full, or
// ctx.Err() when the request's deadline or client connection ends the wait
// — in every failure case the caller has nothing to release, so shed and
// expired work never occupies a pool worker.
func (a *admitter) acquire(ctx interface {
	Done() <-chan struct{}
	Err() error
}) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		return nil, errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admitter) release() { <-a.slots }

// acquireStream claims a stream slot without queueing; ok is false when the
// server is already carrying MaxStreams connections.
func (a *admitter) acquireStream() (func(), bool) {
	select {
	case a.streams <- struct{}{}:
		return func() { <-a.streams }, true
	default:
		return nil, false
	}
}

// depth is the current wait-queue depth.
func (a *admitter) depth() int { return int(a.queued.Load()) }

// level maps the current queue depth onto the degradation ladder: 0 at or
// below the low watermark, DegradeLevels at or above the high one, linear
// (rounding up) in between. Sampled when a request starts decoding, so the
// level always reflects live pressure.
func (a *admitter) level() int {
	return a.levelAt(a.depth())
}

// levelAt is level for an explicit depth (unit-testable).
func (a *admitter) levelAt(d int) int {
	levels := a.cfg.DegradeLevels
	if levels <= 0 {
		return 0
	}
	low, high := a.cfg.DegradeLow, a.cfg.DegradeHigh
	switch {
	case d <= low:
		return 0
	case d >= high:
		return levels
	}
	span := high - low
	return ((d-low)*levels + span - 1) / span
}

// timeoutHeader carries a per-request decode deadline as a Go duration
// string (e.g. "2s", "750ms"); the JSON `timeout` field takes precedence on
// /v1/recognize.
const timeoutHeader = "X-Unfold-Timeout"

// parseTimeout resolves a request's decode deadline: the body field if set,
// else the header, else DefaultTimeout; client values are clamped to
// MaxTimeout. An unparsable or non-positive value is an error (the caller
// answers 400 rather than guessing).
func (a *admitter) parseTimeout(r *http.Request, field string) (time.Duration, error) {
	raw := field
	if raw == "" {
		raw = r.Header.Get(timeoutHeader)
	}
	if raw == "" {
		return a.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, errors.New("timeout must be a duration like \"2s\" or \"750ms\"")
	}
	if d <= 0 {
		return 0, errors.New("timeout must be positive")
	}
	if d > a.cfg.MaxTimeout {
		d = a.cfg.MaxTimeout
	}
	return d, nil
}
