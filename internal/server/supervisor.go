package server

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/flatstore"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// This file is the model supervisor: the self-healing half of the registry
// (docs/ROBUSTNESS.md). The registry owns admission and refcounts; the
// supervisor owns sickness. A model that keeps failing decodes, or whose
// bundle stops re-verifying, is quarantined — it drains traffic immediately
// while every other model keeps serving — and a per-model reload loop tries
// to bring a fresh generation up under jittered exponential backoff. A model
// that exhausts its reload budget goes permanently failed (resources
// released, entry kept visible so /healthz and /v1/models can say why).
//
// Every transition is observable: unfold_model_quarantines_total and
// unfold_model_reload_attempts_total count them, and
// unfold_model_consecutive_failures tracks the failure score live.

// SupervisorConfig tunes quarantine and recovery. The zero value enables
// supervision with the defaults below; set QuarantineThreshold negative to
// disable failure-score quarantines entirely.
type SupervisorConfig struct {
	// QuarantineThreshold is how many consecutive whole-batch decode
	// failures quarantine a model. Default 3; negative disables.
	QuarantineThreshold int
	// ReloadBackoff is the delay before the first reload attempt; attempt n
	// waits ReloadBackoff<<(n-1), jittered ±25%, capped at ReloadBackoffMax.
	// Default 500ms.
	ReloadBackoff time.Duration
	// ReloadBackoffMax caps the backoff. Default 30s.
	ReloadBackoffMax time.Duration
	// ReloadBudget is how many reload attempts a quarantined model gets
	// before it is marked permanently failed. Default 6; negative means
	// unlimited.
	ReloadBudget int
	// HealthInterval is how often resident bundles are cheaply re-verified
	// (header+table CRC over the mapping — O(1), no payload reads). 0
	// disables the periodic pass; Server.CheckModels runs one on demand
	// either way. The CLI default is 10s.
	HealthInterval time.Duration
	// Seed drives the backoff jitter, so chaos tests replay identical
	// schedules. Default 1.
	Seed int64
	// ReloadHook, if set, runs before each reload attempt; returning an
	// error fails that attempt. The fault-injection harness uses it to
	// script reload outcomes.
	ReloadHook func(model string, attempt int) error
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.ReloadBackoff <= 0 {
		c.ReloadBackoff = 500 * time.Millisecond
	}
	if c.ReloadBackoffMax <= 0 {
		c.ReloadBackoffMax = 30 * time.Second
	}
	if c.ReloadBudget == 0 {
		c.ReloadBudget = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// supervisor is the registry-side state: one per registry, shared by every
// model's reload loop.
type supervisor struct {
	cfg  SupervisorConfig
	stop chan struct{} // closed by Server.Close; ends every reload loop
	wg   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

func newSupervisor(cfg SupervisorConfig) *supervisor {
	cfg = cfg.withDefaults()
	return &supervisor{
		cfg:  cfg,
		stop: make(chan struct{}),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// backoff computes the jittered delay before reload attempt n (1-based):
// base<<(n-1) capped at the max, scaled by a seeded factor in [0.75, 1.25).
func (sv *supervisor) backoff(attempt int) time.Duration {
	d := sv.cfg.ReloadBackoff
	for i := 1; i < attempt && d < sv.cfg.ReloadBackoffMax; i++ {
		d *= 2
	}
	if d > sv.cfg.ReloadBackoffMax {
		d = sv.cfg.ReloadBackoffMax
	}
	sv.rngMu.Lock()
	f := 0.75 + 0.5*sv.rng.Float64()
	sv.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// close ends every reload loop and waits for them.
func (sv *supervisor) close() {
	select {
	case <-sv.stop:
	default:
		close(sv.stop)
	}
	sv.wg.Wait()
}

// Per-model supervision instruments, get-or-create so the series appear on
// the first transition.
func (g *modelRegistry) quarantineCounter(name string) *telemetry.Counter {
	return g.reg.Counter("unfold_model_quarantines_total",
		"Times the model was quarantined, by model.", telemetry.L("model", name))
}

func (g *modelRegistry) reloadCounter(name string) *telemetry.Counter {
	return g.reg.Counter("unfold_model_reload_attempts_total",
		"Reload attempts for the model, by model.", telemetry.L("model", name))
}

func (g *modelRegistry) failScoreGauge(name string) *telemetry.Gauge {
	return g.reg.Gauge("unfold_model_consecutive_failures",
		"Consecutive whole-batch decode failures, by model.", telemetry.L("model", name))
}

// noteBatch classifies one completed batch for the supervisor. A batch
// counts against the model only when every utterance failed AND at least
// one failure came from the decode itself (not a cancellation — a client
// hitting its own deadline says nothing about model health). Any decoded
// utterance resets the score; an all-canceled batch is neutral.
func (g *modelRegistry) noteBatch(m *model, errs []*pool.DecodeError) {
	allFailed := len(errs) > 0
	modelFault := false
	for _, e := range errs {
		if e == nil {
			allFailed = false
			break
		}
		if e.Stage != pool.StageCanceled {
			modelFault = true
		}
	}
	switch {
	case allFailed && modelFault:
		g.noteDecodeFailure(m)
	case !allFailed:
		g.noteDecodeSuccess(m)
	}
}

// noteDecodeFailure scores one whole-batch decode failure against a model
// and quarantines it at the threshold. Callers classify: only batches where
// every utterance failed, at least one of them in the search itself (not a
// cancellation), count — a client hitting its own deadline is not evidence
// the model is sick.
func (g *modelRegistry) noteDecodeFailure(m *model) {
	if g.sup.cfg.QuarantineThreshold < 0 {
		return
	}
	m.mu.Lock()
	if m.state != modelReady {
		m.mu.Unlock()
		return
	}
	m.consecFails++
	fails := m.consecFails
	trip := fails >= g.sup.cfg.QuarantineThreshold
	if trip {
		g.quarantineLocked(m, fmt.Sprintf("%d consecutive decode failures", fails))
	}
	m.mu.Unlock()
	g.failScoreGauge(m.name).Set(float64(fails))
	if trip {
		g.quarantineCounter(m.name).Inc()
	}
}

// noteDecodeSuccess resets a model's failure score: consecutive means
// consecutive.
func (g *modelRegistry) noteDecodeSuccess(m *model) {
	m.mu.Lock()
	changed := m.consecFails != 0
	m.consecFails = 0
	m.mu.Unlock()
	if changed {
		g.failScoreGauge(m.name).Set(0)
	}
}

// quarantine moves a ready model to quarantined for the given reason (a
// health-check verdict, as opposed to the failure score) and starts its
// reload loop.
func (g *modelRegistry) quarantine(m *model, reason string) {
	m.mu.Lock()
	if m.state != modelReady {
		m.mu.Unlock()
		return
	}
	g.quarantineLocked(m, reason)
	m.mu.Unlock()
	g.quarantineCounter(m.name).Inc()
}

// quarantineLocked flips the state and spawns the reload loop. Caller holds
// m.mu and has verified state == modelReady.
func (g *modelRegistry) quarantineLocked(m *model, reason string) {
	m.state = modelQuarantined
	m.quarantines++
	m.err = reason
	g.sup.wg.Add(1)
	go g.reloadLoop(m)
}

// stillQuarantined reports whether m is still the registry's current entry
// for its name and still quarantined — a drain, delete, or competing swap
// ends the reload loop.
func (g *modelRegistry) stillQuarantined(m *model) bool {
	g.mu.Lock()
	current := g.models[m.name] == m
	g.mu.Unlock()
	if !current {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == modelQuarantined
}

// reloadLoop tries to replace a quarantined model with a freshly-built
// generation: jittered exponential backoff between attempts, a budget after
// which the model goes permanently failed, and a pre-flight disk check so a
// bundle that is still rotten on disk fails fast without a full load.
func (g *modelRegistry) reloadLoop(m *model) {
	defer g.sup.wg.Done()
	for attempt := 1; ; attempt++ {
		if g.sup.cfg.ReloadBudget >= 0 && attempt > g.sup.cfg.ReloadBudget {
			g.failModel(m, fmt.Sprintf("reload budget exhausted after %d attempts: %s", attempt-1, m.lastErr()))
			return
		}
		select {
		case <-time.After(g.sup.backoff(attempt)):
		case <-g.sup.stop:
			return
		}
		if !g.stillQuarantined(m) {
			return
		}
		m.mu.Lock()
		m.reloadAttempts++
		m.mu.Unlock()
		g.reloadCounter(m.name).Inc()
		if err := g.tryReload(m, attempt); err != nil {
			m.mu.Lock()
			m.err = fmt.Sprintf("reload attempt %d: %v", attempt, err)
			m.mu.Unlock()
			continue
		}
		return
	}
}

// tryReload runs one reload attempt: hook, disk pre-flight, rebuild,
// install.
func (g *modelRegistry) tryReload(m *model, attempt int) error {
	if hook := g.sup.cfg.ReloadHook; hook != nil {
		if err := hook(m.name, attempt); err != nil {
			return err
		}
	}
	if m.srcPath != "" {
		// O(1) read of the on-disk header: if the file is still damaged, a
		// full load would fail anyway — skip it.
		if err := flatstore.CheckHeader(m.srcPath); err != nil {
			return fmt.Errorf("bundle still unhealthy on disk: %w", err)
		}
	}
	if m.rebuild == nil {
		return fmt.Errorf("model has no rebuild path")
	}
	nm, err := m.rebuild()
	if err != nil {
		return err
	}
	if !g.installReloaded(m, nm) {
		// Something replaced or drained the sick entry while we rebuilt;
		// the new generation is redundant.
		nm.mu.Lock()
		nm.closeLocked()
		nm.mu.Unlock()
	}
	return nil
}

// installReloaded atomically swaps a rebuilt generation in over the sick
// one, provided the sick one is still current and still quarantined. The
// old generation drains and closes as its in-flight references finish.
func (g *modelRegistry) installReloaded(old, nm *model) bool {
	g.mu.Lock()
	if g.models[old.name] != old {
		g.mu.Unlock()
		return false
	}
	old.mu.Lock()
	if old.state != modelQuarantined {
		old.mu.Unlock()
		g.mu.Unlock()
		return false
	}
	quarantines, attempts := old.quarantines, old.reloadAttempts
	old.mu.Unlock()
	nm.mu.Lock()
	nm.state = modelReady
	// The new generation inherits the sick one's history: /v1/models keeps
	// telling the whole story across heals.
	nm.quarantines = quarantines
	nm.reloadAttempts = attempts
	nm.mu.Unlock()
	g.models[old.name] = nm
	g.mu.Unlock()

	g.reg.Gauge("unfold_model_resident_bytes", "Model bytes pinned in memory, by model.",
		telemetry.L("model", nm.name)).Set(float64(nm.resident))
	g.reg.Gauge("unfold_model_load_seconds", "Wall time the model's last load took, by model.",
		telemetry.L("model", nm.name)).Set(nm.loadSeconds)
	g.failScoreGauge(nm.name).Set(0)
	g.drainModel(old)
	return true
}

// failModel is the end of the line: the entry stays visible (so operators
// can see why) but never serves again, and its resources are released as
// soon as the last in-flight reference finishes.
func (g *modelRegistry) failModel(m *model, reason string) {
	m.mu.Lock()
	if m.state == modelDraining || m.closed {
		m.mu.Unlock()
		return
	}
	m.state = modelFailed
	m.err = reason
	m.resident = 0
	if m.refs == 0 {
		m.closeLocked()
	}
	m.mu.Unlock()
	g.reg.Gauge("unfold_model_resident_bytes", "Model bytes pinned in memory, by model.",
		telemetry.L("model", m.name)).Set(0)
}

// checkAll is the health pass behind Server.CheckModels and the periodic
// ticker: every ready model backed by a bundle gets an O(1) in-place
// re-verify (header+table CRC over the mapping, read faults contained); a
// failure quarantines the model. Returns the names quarantined by this
// pass.
func (g *modelRegistry) checkAll() []string {
	g.mu.Lock()
	models := make([]*model, 0, len(g.models))
	for _, m := range g.models {
		models = append(models, m)
	}
	g.mu.Unlock()
	var sick []string
	for _, m := range models {
		m.mu.Lock()
		ready := m.state == modelReady
		rec := m.rec
		m.mu.Unlock()
		if !ready || rec == nil {
			continue
		}
		if err := rec.Recheck(false); err != nil {
			g.quarantine(m, "health check: "+err.Error())
			sick = append(sick, m.name)
		}
	}
	return sick
}

// lastErr snapshots the model's recorded error under its lock.
func (m *model) lastErr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}
