package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestAdmissionDefaults pins the zero-value policy: every knob gets a
// serving-friendly default and the watermarks stay ordered.
func TestAdmissionDefaults(t *testing.T) {
	c := AdmissionConfig{}.withDefaults(3)
	if c.MaxConcurrent != 3 {
		t.Errorf("MaxConcurrent = %d, want pool size 3", c.MaxConcurrent)
	}
	if c.MaxQueue != 16 || c.MaxStreams != 32 || c.DegradeLevels != 2 {
		t.Errorf("defaults off: %+v", c)
	}
	if c.DegradeLow >= c.DegradeHigh {
		t.Errorf("watermarks unordered: low %d high %d", c.DegradeLow, c.DegradeHigh)
	}
	// Degenerate explicit watermarks are repaired, not obeyed.
	c = AdmissionConfig{DegradeLow: 5, DegradeHigh: 5}.withDefaults(1)
	if c.DegradeHigh <= c.DegradeLow {
		t.Errorf("equal watermarks not repaired: %+v", c)
	}
}

// TestDegradeLevelMapping tables the pressure controller: depth below the
// low watermark is full quality, above the high one is the deepest level,
// in between it interpolates rounding up (pressure errs toward shedding
// work early, not late).
func TestDegradeLevelMapping(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxQueue: 16, DegradeLow: 4, DegradeHigh: 12, DegradeLevels: 4}.withDefaults(2))
	cases := []struct{ depth, want int }{
		{0, 0}, {4, 0},
		{5, 1}, {6, 1},
		{8, 2},
		{11, 4}, // (11-4)*4/8 = 3.5, rounds up
		{12, 4}, {16, 4},
	}
	for _, tc := range cases {
		if got := a.levelAt(tc.depth); got != tc.want {
			t.Errorf("levelAt(%d) = %d, want %d", tc.depth, got, tc.want)
		}
	}
	// Disabled ladder: always full quality.
	off := newAdmitter(AdmissionConfig{DegradeLevels: -1}.withDefaults(2))
	if got := off.levelAt(1000); got != 0 {
		t.Errorf("disabled ladder level = %d, want 0", got)
	}
}

// TestAdmitterQueueAndShed drives the gate directly: slots fill, the queue
// absorbs exactly MaxQueue waiters, the next request sheds, and releases
// hand slots to waiters.
func TestAdmitterQueueAndShed(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 2}.withDefaults(1))

	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Two waiters fit in the queue.
	type got struct {
		release func()
		err     error
	}
	results := make(chan got, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := a.acquire(context.Background())
			results <- got{r, err}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.depth() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := a.depth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}

	// The third waiter is shed immediately, without blocking.
	if _, err := a.acquire(context.Background()); err != errShed {
		t.Fatalf("over-queue acquire err = %v, want errShed", err)
	}

	// A waiter with an expiring context leaves the queue with its error.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// The queue is full, so this one sheds too — drain one waiter first.
	release()
	first := <-results
	if first.err != nil {
		t.Fatalf("queued waiter failed: %v", first.err)
	}
	if _, err := a.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("expired waiter err = %v, want DeadlineExceeded", err)
	}

	// Unwind: release the held slot, the remaining waiter gets it.
	first.release()
	second := <-results
	if second.err != nil {
		t.Fatalf("second waiter failed: %v", second.err)
	}
	second.release()
	if d := a.depth(); d != 0 {
		t.Errorf("queue depth after drain = %d, want 0", d)
	}
}

// TestParseTimeout tables the deadline resolution: body field beats header,
// clamping, defaults, and rejection of garbage.
func TestParseTimeout(t *testing.T) {
	a := newAdmitter(AdmissionConfig{DefaultTimeout: 5 * time.Second, MaxTimeout: time.Minute}.withDefaults(1))
	cases := []struct {
		name    string
		field   string
		header  string
		want    time.Duration
		wantErr bool
	}{
		{"default", "", "", 5 * time.Second, false},
		{"field", "2s", "", 2 * time.Second, false},
		{"header", "", "750ms", 750 * time.Millisecond, false},
		{"field_beats_header", "2s", "9s", 2 * time.Second, false},
		{"clamped", "10m", "", time.Minute, false},
		{"garbage", "soon", "", 0, true},
		{"negative", "-1s", "", 0, true},
		{"zero", "0s", "", 0, true},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodPost, "/v1/recognize", nil)
		if tc.header != "" {
			r.Header.Set(timeoutHeader, tc.header)
		}
		d, err := a.parseTimeout(r, tc.field)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && d != tc.want {
			t.Errorf("%s: timeout = %v, want %v", tc.name, d, tc.want)
		}
	}
}

// errorCounter reads unfold_server_errors_total{reason}: registration is
// get-or-create, so re-registering hands back the live counter.
func errorCounter(s *Server, reason string) int64 {
	return s.reg.Counter("unfold_server_errors_total", "", telemetry.L("reason", reason)).Value()
}

// TestRecognizeErrorTable walks every request-validation failure through
// /v1/recognize and asserts all three contract surfaces at once: the status
// code, the structured error body (message plus machine-readable reason),
// and the per-reason telemetry increment.
func TestRecognizeErrorTable(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1, Admission: AdmissionConfig{MaxBodyBytes: 2048}})
	big := `{"utterances":[{"frames":[[` + strings.Repeat("1,", 4096) + `1]]}]}`
	cases := []struct {
		name        string
		method      string
		contentType string
		body        string
		wantCode    int
		wantReason  string
	}{
		{"method", http.MethodGet, "", "", http.StatusMethodNotAllowed, "method"},
		{"content_type", http.MethodPost, "text/csv", "{}", http.StatusUnsupportedMediaType, "content_type"},
		{"bad_json", http.MethodPost, "application/json", "{", http.StatusBadRequest, "bad_json"},
		{"truncated_json", http.MethodPost, "", `{"utterances":[{"frames":[[1`, http.StatusBadRequest, "bad_json"},
		{"body_too_large", http.MethodPost, "application/json", big, http.StatusRequestEntityTooLarge, "body_too_large"},
		{"empty_batch", http.MethodPost, "", `{"utterances":[]}`, http.StatusBadRequest, "empty_batch"},
		{"empty_utterance", http.MethodPost, "", `{"utterances":[{"frames":[]}]}`, http.StatusBadRequest, "empty_utterance"},
		{"bad_dims", http.MethodPost, "", `{"utterances":[{"frames":[[1,2]]}]}`, http.StatusBadRequest, "bad_dims"},
		{"bad_timeout", http.MethodPost, "", `{"utterances":[{"frames":[[` + strings.Repeat("1,", 15) + `1]]}],"timeout":"soon"}`, http.StatusBadRequest, "bad_timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := errorCounter(s, tc.wantReason)
			req := httptest.NewRequest(tc.method, "/v1/recognize", strings.NewReader(tc.body))
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.wantCode {
				t.Errorf("status = %d, want %d (%s)", rec.Code, tc.wantCode, rec.Body.String())
			}
			var e errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body not JSON: %s", rec.Body.String())
			}
			if e.Error == "" || e.Reason != tc.wantReason {
				t.Errorf("error body = %+v, want reason %q and a message", e, tc.wantReason)
			}
			if after := errorCounter(s, tc.wantReason); after != before+1 {
				t.Errorf("errors_total{reason=%q} = %d, want %d", tc.wantReason, after, before+1)
			}
		})
	}

	// bad_dims note: a valid-looking timeout on a bad request must not mask
	// the validation error ordering — validation always precedes admission,
	// so none of the rejects above consumed a slot or queued.
	if d := s.admit.depth(); d != 0 {
		t.Errorf("queue depth after rejects = %d, want 0", d)
	}
}

// TestRecognizeTimeoutDeadline posts a batch with a deadline far too short
// for the decode and checks the request fails as 408 with the deadline
// reason — and that the worker slot comes back (the next full-deadline
// request succeeds).
func TestRecognizeTimeoutDeadline(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	sys := getSystem(t)

	post := func(timeout string) *httptest.ResponseRecorder {
		body, _ := json.Marshal(recognizeRequest{
			Utterances: []utteranceRequest{{Frames: sys.TestSet()[0].Frames}},
			Timeout:    timeout,
		})
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
		return rec
	}

	rec := post("1ns")
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("1ns deadline: got %d %s, want 408", rec.Code, rec.Body.String())
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Reason != "deadline" {
		t.Errorf("deadline body = %s, want reason=deadline", rec.Body.String())
	}

	if rec = post(""); rec.Code != http.StatusOK {
		t.Errorf("decode after expired request: got %d, want 200 (slot leaked?)", rec.Code)
	}
}

// TestStreamShedsPastCap fills the stream slots and checks the next
// connection is shed with the full 429 contract: Retry-After header,
// structured body, per-route shed counter.
func TestStreamShedsPastCap(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1, Admission: AdmissionConfig{MaxStreams: 2}})

	// Occupy both stream slots directly — the handler path is exercised by
	// the release check below and the soak test.
	r1, ok1 := s.admit.acquireStream()
	r2, ok2 := s.admit.acquireStream()
	if !ok1 || !ok2 {
		t.Fatal("could not fill stream slots")
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream", strings.NewReader("")))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-cap stream: got %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Reason != "overloaded" || e.RetryAfterSeconds <= 0 {
		t.Errorf("shed body = %s, want overloaded with retry hint", rec.Body.String())
	}
	if got := s.shedTotal["/v1/stream"].Value(); got != 1 {
		t.Errorf("shed_total{/v1/stream} = %d, want 1", got)
	}

	// Freeing a slot re-opens the gate.
	r1()
	r2()
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream", strings.NewReader("")))
	if rec.Code != http.StatusOK {
		t.Errorf("stream after release: got %d, want 200 empty-stream final", rec.Code)
	}
}
