package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// overloadOutcomes tallies what a fleet of clients saw.
type overloadOutcomes struct {
	mu        sync.Mutex
	ok        int
	okLatency []time.Duration
	shed      int
	deadline  int
	degraded  int
	other     map[int]int // status -> count, for anything unexpected
	fiveXX    int
}

func (o *overloadOutcomes) record(status int, latency time.Duration, degraded int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case status == http.StatusOK:
		o.ok++
		o.okLatency = append(o.okLatency, latency)
		if degraded > 0 {
			o.degraded++
		}
	case status == http.StatusTooManyRequests:
		o.shed++
	case status == http.StatusRequestTimeout:
		o.deadline++
	default:
		if o.other == nil {
			o.other = map[int]int{}
		}
		o.other[status]++
		if status >= 500 {
			o.fiveXX++
		}
	}
}

func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// waitUntil polls cond to true with a hard deadline; admission state
// transitions are fast, so the 5s bound only ever trips on a real hang.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOverloadSheddingAndDegradation is the acceptance test for the load
// management layer, in two phases.
//
// Phase 1 pins the admission outcomes deterministically: with every
// execution slot held (exactly the state two long decodes produce) and the
// queue filled by real requests, the next request MUST shed with a
// structured 429, the episode MUST be scrape-visible on /metrics, and the
// queued requests MUST decode degraded once slots free — no scheduler race
// decides whether overload "happened".
//
// Phase 2 drives a closed-loop client fleet several times the pool
// capacity with per-request deadlines and must observe
//
//   - zero 5xx — every rejection is a structured 429 (Retry-After header
//     plus machine-readable body) or a 408 deadline,
//   - a bounded accepted p99: the per-request deadline caps how long any
//     accepted decode can take, so p99 of the 200s stays under
//     deadline + scheduling slack,
//   - the episode on /metrics mid-run, and full quality restored once
//     load clears.
func TestOverloadSheddingAndDegradation(t *testing.T) {
	s := newLoadedServer(t, Config{
		Workers: 2,
		Admission: AdmissionConfig{
			MaxConcurrent: 2,
			MaxQueue:      4,
			DegradeLow:    1,
			DegradeHigh:   3,
			DegradeLevels: 2,
		},
	})
	sys := getSystem(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One short utterance keeps each decode fast, so the fleet drives many
	// admission decisions per second instead of a few long decodes.
	frames := sys.TestSet()[0].Frames
	if len(frames) > 40 {
		frames = frames[:40]
	}
	const deadline = 2 * time.Second
	body, _ := json.Marshal(recognizeRequest{
		Utterances: []utteranceRequest{{Frames: frames}},
		Timeout:    deadline.String(),
	})

	// ---- Phase 1: deterministic saturation -----------------------------
	// Hold both execution slots, then fill the wait queue with real
	// requests whose generous deadline outlives the whole phase.
	longBody, _ := json.Marshal(recognizeRequest{
		Utterances: []utteranceRequest{{Frames: frames}},
		Timeout:    "30s",
	})
	for i := 0; i < s.admit.cfg.MaxConcurrent; i++ {
		s.admit.slots <- struct{}{}
	}
	queuedResp := make(chan *http.Response, s.admit.cfg.MaxQueue)
	var qwg sync.WaitGroup
	for i := 0; i < s.admit.cfg.MaxQueue; i++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			resp, err := http.Post(ts.URL+"/v1/recognize", "application/json", bytes.NewReader(longBody))
			if err != nil {
				t.Errorf("queued request failed: %v", err)
				return
			}
			queuedResp <- resp
		}()
	}
	waitUntil(t, "queue to fill", func() bool { return s.admit.depth() == s.admit.cfg.MaxQueue })

	// The queue is full, so the next arrival must be shed — structured.
	resp, err := http.Post(ts.URL+"/v1/recognize", "application/json", bytes.NewReader(longBody))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request into a full queue: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var shedBody errorBody
	if err := json.NewDecoder(resp.Body).Decode(&shedBody); err != nil || shedBody.Reason != "overloaded" || shedBody.RetryAfterSeconds <= 0 {
		t.Errorf("429 body malformed: %v %+v", err, shedBody)
	}
	resp.Body.Close()

	// The saturated episode is scrape-visible while it is happening.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, name := range []string{
		"unfold_server_queue_depth 4",
		"unfold_server_queue_capacity 4",
		"unfold_server_degrade_level 2",
		`unfold_server_shed_total{route="/v1/recognize"} 1`,
	} {
		if !strings.Contains(string(mb), name) {
			t.Errorf("saturated /metrics missing %q", name)
		}
	}

	// Free the slots: the queued requests start decoding while the queue
	// behind them is still deep, so the first dequeuers sample a pressure
	// level above zero and must come back marked degraded.
	for i := 0; i < s.admit.cfg.MaxConcurrent; i++ {
		<-s.admit.slots
	}
	qwg.Wait()
	close(queuedResp)
	degradedQueued := 0
	for resp := range queuedResp {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued request finished %d, want 200", resp.StatusCode)
		}
		var r recognizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Errorf("queued 200 with unreadable body: %v", err)
		}
		resp.Body.Close()
		if r.Degraded > 0 {
			degradedQueued++
		}
	}
	if degradedQueued == 0 {
		t.Error("pressure controller never engaged: no queued request decoded degraded")
	}

	// ---- Phase 2: closed-loop fleet ------------------------------------
	// 16 closed-loop clients against 2 slots + 4 queue spots is a sustained
	// >4x overload: at any instant at least 10 clients are over capacity.
	const clients = 16
	duration := 2 * time.Second
	if testing.Short() {
		duration = 500 * time.Millisecond
	}

	var out overloadOutcomes
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	var midMetrics atomic.Pointer[string]
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/recognize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("transport error under overload: %v", err)
					return
				}
				var r recognizeResponse
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
						t.Errorf("200 with unreadable body: %v", err)
					}
				} else if resp.StatusCode == http.StatusTooManyRequests {
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					var e errorBody
					if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Reason != "overloaded" {
						t.Errorf("429 body malformed: %v %+v", err, e)
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
				out.record(resp.StatusCode, time.Since(start), r.Degraded)
			}
		}()
	}

	// Mid-run, scrape /metrics so the test proves the episode is observable
	// while it is happening, not only after.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(duration / 2)
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Errorf("mid-run metrics scrape failed: %v", err)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		str := string(b)
		midMetrics.Store(&str)
	}()
	wg.Wait()

	if out.fiveXX > 0 || len(out.other) > 0 {
		t.Fatalf("unexpected statuses under overload: %v (5xx: %d)", out.other, out.fiveXX)
	}
	if out.ok == 0 {
		t.Fatal("no request succeeded under overload; gate starved the pool")
	}
	// Shedding and degradation are pinned deterministically by phase 1;
	// whether the closed-loop fleet also trips them depends on scheduler
	// interleaving (on one CPU fast decodes can drain the queue between
	// arrivals), so here they are reported, not required.
	t.Logf("fleet outcomes: ok=%d shed=%d deadline=%d degraded=%d",
		out.ok, out.shed, out.deadline, out.degraded)
	p99 := percentile(out.okLatency, 0.99)
	if bound := deadline + time.Second; p99 > bound {
		t.Errorf("accepted p99 = %v, want < %v (deadline + slack)", p99, bound)
	}

	if m := midMetrics.Load(); m == nil {
		t.Error("mid-run metrics scrape missing")
	} else {
		for _, name := range []string{
			"unfold_server_queue_depth", "unfold_server_queue_capacity 4",
			"unfold_server_degrade_level", `unfold_server_shed_total{route="/v1/recognize"}`,
			"unfold_server_degraded_total",
			`unfold_server_request_seconds_count{route="/v1/recognize",outcome="ok"}`,
		} {
			if !strings.Contains(*m, name) {
				t.Errorf("mid-run metrics missing %q", name)
			}
		}
	}

	// Load has cleared: the very next request runs full quality again.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-overload decode: %d %s", rec.Code, rec.Body.String())
	}
	var r recognizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Degraded != 0 {
		t.Errorf("quality not restored after load cleared: degraded=%d", r.Degraded)
	}
	want, err := sys.Recognize(frames)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r.Results[0].Words) != fmt.Sprint(want) {
		t.Errorf("post-overload transcript %v != reference %v", r.Results[0].Words, want)
	}
}

// TestDrainRejectsNewDecodes checks BeginDrain turns the decode routes away
// with structured 503s (reason draining) while /metrics stays up for the
// final scrape.
func TestDrainRejectsNewDecodes(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	s.BeginDrain()

	for _, route := range []string{"/v1/recognize", "/v1/stream"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, route, strings.NewReader("{}")))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s during drain: %d, want 503", route, rec.Code)
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Reason != "draining" {
			t.Errorf("%s drain body = %s, want reason=draining", route, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("metrics during drain: %d, want 200", rec.Code)
	}
}
