package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	unfold "repro"
	"repro/internal/task"
)

var (
	fixOnce sync.Once
	fixSys  *unfold.System
)

// getSystem builds one small recognizer shared by every test in the
// package (construction compresses both graphs, so it is the slow part).
func getSystem(t testing.TB) *unfold.System {
	t.Helper()
	fixOnce.Do(func() {
		sys, err := unfold.NewSystem(task.Spec{
			Name:           "server-test",
			Vocab:          30,
			Phones:         12,
			TrainSentences: 250,
			TestUtterances: 4,
			LMMinCount:     2,
			Seed:           42,
		})
		if err != nil {
			panic(err)
		}
		fixSys = sys
	})
	return fixSys
}

// newLoadedServer builds a ready server over the shared fixture.
func newLoadedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.Load(getSystem(t)); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHealthzLifecycle walks the probe through its three states: loading
// (no model), ok, draining.
func TestHealthzLifecycle(t *testing.T) {
	s := New(Config{})
	get := func() (int, healthResponse) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var h healthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			t.Fatalf("healthz body not JSON: %v", err)
		}
		return rec.Code, h
	}

	code, h := get()
	if code != http.StatusServiceUnavailable || h.Status != "loading" {
		t.Errorf("unloaded: got %d %q, want 503 loading", code, h.Status)
	}

	if err := s.Load(getSystem(t)); err != nil {
		t.Fatal(err)
	}
	code, h = get()
	if code != http.StatusOK || h.Status != "ok" {
		t.Errorf("loaded: got %d %q, want 200 ok", code, h.Status)
	}
	if h.Task != "server-test" || h.Workers.Total <= 0 {
		t.Errorf("health body missing model info: %+v", h)
	}

	s.BeginDrain()
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Errorf("draining: got %d %q, want 503 draining", code, h.Status)
	}
}

// TestRecognizeBatch posts the whole test set and checks the transcripts
// against the sequential reference path, then checks that the decode left
// its trace in /metrics.
func TestRecognizeBatch(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 2})
	sys := getSystem(t)

	var req recognizeRequest
	for _, u := range sys.TestSet() {
		req.Utterances = append(req.Utterances, utteranceRequest{Frames: u.Frames})
	}
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("recognize: %d %s", rec.Code, rec.Body.String())
	}
	var resp recognizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(sys.TestSet()) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(sys.TestSet()))
	}
	for i, u := range sys.TestSet() {
		want, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Results[i].Words; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("utt %d: server words %v != sequential %v", i, got, want)
		}
		if resp.Results[i].Error != "" {
			t.Errorf("utt %d: unexpected error %q", i, resp.Results[i].Error)
		}
		if resp.Results[i].Text == "" {
			t.Errorf("utt %d: empty text", i)
		}
	}
	if resp.Throughput.FramesPerSec <= 0 {
		t.Errorf("throughput not populated: %+v", resp.Throughput)
	}

	// The batch must be visible on the metrics endpoint.
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		"unfold_pool_batches_total 1",
		"unfold_decoder_decodes_total 4",
		"unfold_decoder_frames_total",
		`unfold_server_requests_total{route="/v1/recognize"} 1`,
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRecognizeRejects pins the error paths: wrong method, bad JSON, empty
// batch, and a feature-dimension mismatch.
func TestRecognizeRejects(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"badjson", http.MethodPost, "{", http.StatusBadRequest},
		{"empty", http.MethodPost, `{"utterances":[]}`, http.StatusBadRequest},
		{"emptyutt", http.MethodPost, `{"utterances":[{"frames":[]}]}`, http.StatusBadRequest},
		{"dim", http.MethodPost, `{"utterances":[{"frames":[[1,2]]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(tc.method, "/v1/recognize", strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("%s: got %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		var e map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, rec.Body.String())
		}
	}
}

// TestStreamLive drives a chunked NDJSON stream over a real HTTP server and
// checks the tentpole acceptance criterion end to end: partial hypotheses
// arrive while the client is still sending, /metrics shows live decoder
// counters mid-stream, and the final transcript matches the batch path.
func TestStreamLive(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	sys := getSystem(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Stream the whole test set as one long utterance: long enough that
	// LM back-off traffic shows up in the mid-stream metrics check.
	var frames [][]float32
	for _, u := range sys.TestSet() {
		frames = append(frames, u.Frames...)
	}
	want, err := sys.Recognize(frames)
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	enc := json.NewEncoder(pw)

	// Send the first half before the request even completes: the server
	// reads the body incrementally.
	half := len(frames) / 2
	go enc.Encode(streamChunk{Frames: frames[:half]})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	readUpdate := func() streamUpdate {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var up streamUpdate
		if err := json.Unmarshal(sc.Bytes(), &up); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return up
	}

	up := readUpdate()
	if up.Final || up.Frames != half {
		t.Errorf("first update: final=%v frames=%d, want partial at %d", up.Final, up.Frames, half)
	}

	// Mid-stream the utterance is in flight: the live gauge must show it,
	// and the decoder counters published per-Push must already be nonzero.
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	metricsOut := string(mbody)
	if !strings.Contains(metricsOut, "unfold_server_streams_active 1") {
		t.Errorf("mid-stream metrics missing live stream gauge")
	}
	for _, name := range []string{
		"unfold_decoder_frames_total", "unfold_decoder_lm_fetches_total",
		"unfold_decoder_backoff_hops_total", "unfold_decoder_frontier_tokens_count",
	} {
		if v := metricValue(metricsOut, name); v <= 0 {
			t.Errorf("mid-stream metric %s = %g, want > 0", name, v)
		}
	}

	// Second half, then EOF to finalize.
	if err := enc.Encode(streamChunk{Frames: frames[half:]}); err != nil {
		t.Fatal(err)
	}
	up = readUpdate()
	if up.Final || up.Frames != len(frames) {
		t.Errorf("second update: final=%v frames=%d, want partial at %d", up.Final, up.Frames, len(frames))
	}
	pw.Close()

	fin := readUpdate()
	if !fin.Final {
		t.Fatalf("expected final line, got %+v", fin)
	}
	if fmt.Sprint(fin.Words) != fmt.Sprint(want) {
		t.Errorf("stream words %v != batch %v", fin.Words, want)
	}
	if fin.Frames != len(frames) || fin.Cost == 0 {
		t.Errorf("final line incomplete: %+v", fin)
	}

	// After the stream ends the gauge must settle back to zero.
	if v := s.streamsGauge.Value(); v != 0 {
		t.Errorf("streams gauge after finish = %g, want 0", v)
	}
	if s.streamsAborted.Value() != 0 {
		t.Errorf("clean stream counted as aborted")
	}
}

// metricValue extracts an unlabeled sample value from exposition text.
func metricValue(out, name string) float64 {
	for _, line := range strings.Split(out, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v
		}
	}
	return -1
}

// TestStreamCancelMidUtterance disconnects a client halfway through an
// utterance and checks the server aborts the stream: the aborted counter
// increments and the live gauge returns to zero.
func TestStreamCancelMidUtterance(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	sys := getSystem(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := sys.TestSet()[0]
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/stream", pr)

	go json.NewEncoder(pw).Encode(streamChunk{Frames: u.Frames[:len(u.Frames)/2]})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no partial before cancel: %v", sc.Err())
	}

	// Client walks away mid-utterance: cancel the request with the body
	// pipe still open, so the server sees a broken read, not a clean EOF.
	cancel()
	resp.Body.Close()
	defer pw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.streamsAborted.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.streamsAborted.Value(); got != 1 {
		t.Fatalf("aborted counter = %d, want 1", got)
	}
	for s.streamsGauge.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := s.streamsGauge.Value(); v != 0 {
		t.Errorf("streams gauge after abort = %g, want 0", v)
	}
}

// TestTestsetEndpoint checks the demo-data endpoint: listing, fetching one
// utterance with frames, and range validation.
func TestTestsetEndpoint(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	sys := getSystem(t)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/testset", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	var list struct {
		Count      int           `json:"count"`
		Utterances []testsetItem `json:"utterances"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != len(sys.TestSet()) || len(list.Utterances) != list.Count {
		t.Errorf("list count %d, want %d", list.Count, len(sys.TestSet()))
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/testset?utt=0", nil))
	var item testsetItem
	if err := json.Unmarshal(rec.Body.Bytes(), &item); err != nil {
		t.Fatal(err)
	}
	if len(item.Data) != len(sys.TestSet()[0].Frames) || item.Ref == "" {
		t.Errorf("item missing frames or ref: frames=%d ref=%q", len(item.Data), item.Ref)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/testset?utt=99", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range utt: %d, want 400", rec.Code)
	}
}

// TestDebugEndpoints checks the pprof and span-ring wiring, including the
// DisablePprof switch.
func TestDebugEndpoints(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index: %d", rec.Code)
	}

	// A decode leaves a span in the ring.
	sys := getSystem(t)
	body, _ := json.Marshal(recognizeRequest{Utterances: []utteranceRequest{{Frames: sys.TestSet()[0].Frames}}})
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("recognize: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/spans", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"decode"`) {
		t.Errorf("spans endpoint missing decode span: %d %s", rec.Code, rec.Body.String())
	}

	noPprof := New(Config{DisablePprof: true})
	rec = httptest.NewRecorder()
	noPprof.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("disabled pprof: %d, want 404", rec.Code)
	}
}
