package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Registry failure-path tests: the less-traveled lifecycle edges the chaos
// suite doesn't exercise end-to-end.

// TestLoadFailureVisibleInHealthz: a load that fails leaves a diagnosable
// failed entry — /healthz stays 200 (the default model is fine) but lists
// the carcass with its error — and the name can be reclaimed by a
// successful load afterwards.
func TestLoadFailureVisibleInHealthz(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	defer s.Close()

	// A real file that is not a bundle: the loader fails after the
	// placeholder is installed, so the failure is recorded, not vanished.
	bad := filepath.Join(t.TempDir(), "junk.ufb3")
	if err := os.WriteFile(bad, []byte("not a bundle at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, body := postModel(t, s, "broken", bad)
	if code != http.StatusBadRequest || body["reason"] != "load_failed" {
		t.Fatalf("bad bundle load: %d %v, want 400 load_failed", code, body)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz with one failed and one ready model: %d", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	var foundFailed bool
	for _, mi := range h.Models {
		if mi.Name == "broken" {
			foundFailed = mi.State == modelFailed && mi.Error != ""
		}
	}
	if !foundFailed {
		t.Fatalf("healthz does not show the failed load: %+v", h.Models)
	}

	// Decoding against the carcass is a retryable structured 503.
	code, respBytes := recognizeOn(t, s, "broken", getSystem(t).TestSet()[0].Frames)
	var e errorBody
	if code != http.StatusServiceUnavailable || json.Unmarshal(respBytes, &e) != nil || e.Reason != "model_not_ready" {
		t.Errorf("failed-model decode: %d %s", code, respBytes)
	}

	// The name is reclaimable: a good load replaces the carcass.
	if code, body := postModel(t, s, "broken", saveBundle(t)); code != http.StatusOK {
		t.Fatalf("reclaim failed name: %d %v", code, body)
	}
	if mi, ok := findModel(s, "broken"); !ok || mi.State != modelReady {
		t.Errorf("reclaimed model: %+v", mi)
	}
}

// TestSwapWhileDraining: a model can be re-added under a name that is
// mid-drain with requests still pinning the old generation; the new
// generation serves immediately and the old one closes when released.
func TestSwapWhileDraining(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1})
	defer s.Close()
	if code, body := postModel(t, s, "hot", saveBundle(t)); code != http.StatusOK {
		t.Fatalf("add: %d %v", code, body)
	}

	// Pin the current generation as an in-flight request would.
	old, release, st, _ := s.models.acquire("hot")
	if st != statusOK {
		t.Fatal("hot not servable")
	}
	if err := s.DrainModel("hot"); err != nil {
		t.Fatal(err)
	}
	// Draining with a live reference: not closed yet, and not servable.
	if _, _, st, _ := s.models.acquire("hot"); st != statusNotReady {
		t.Fatalf("draining model acquire status %v, want not-ready", st)
	}

	// Re-add under the same name while the old generation still drains.
	if code, body := postModel(t, s, "hot", saveBundle(t)); code != http.StatusOK {
		t.Fatalf("re-add while draining: %d %v", code, body)
	}
	if code, _ := recognizeOn(t, s, "hot", getSystem(t).TestSet()[0].Frames); code != http.StatusOK {
		t.Errorf("new generation not serving: %d", code)
	}

	// The old generation closes only when its last reference goes.
	old.mu.Lock()
	closedEarly := old.closed
	old.mu.Unlock()
	if closedEarly {
		t.Error("draining generation closed while referenced")
	}
	release()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		old.mu.Lock()
		closed := old.closed
		old.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("old generation never closed after release")
}

// TestBudget507Shape pins the over-budget response contract: 507, reason
// model_budget, a Retry-After header (draining frees budget), and the hint
// mirrored in the body.
func TestBudget507Shape(t *testing.T) {
	path := saveBundle(t)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fp := getSystem(t).Footprint()
	s := New(Config{Workers: 1, ModelBudget: fp.AMBytes + fp.LMBytes + st.Size()/2})
	defer s.Close()
	if err := s.Load(getSystem(t)); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(modelsAddRequest{Name: "big", Path: path})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/models", strings.NewReader(string(body))))
	if rec.Code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget: %d %s, want 507", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("507 carries no Retry-After header")
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Reason != "model_budget" || e.RetryAfterSeconds <= 0 || e.Error == "" {
		t.Errorf("507 body %+v, want model_budget with a backoff hint", e)
	}
}

// TestRetryAfterOnNotLoaded: the empty-server 503 is retryable too.
func TestRetryAfterOnNotLoaded(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", strings.NewReader(`{}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty server: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("not_loaded 503 carries no Retry-After header")
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Reason != "not_loaded" || e.RetryAfterSeconds <= 0 {
		t.Errorf("not_loaded body %s", rec.Body.String())
	}
}
