package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	unfold "repro"
	"repro/internal/task"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden /v1/recognize fixtures")

// goldenScale mirrors internal/experiments/golden_test.go: the four
// evaluation tasks at quarter scale, four held-out utterances each.
const (
	goldenScale      = 0.25
	goldenUtterances = 4
)

// goldenRecognize is the recorded wire contract for one task: the exact
// response body /v1/recognize produced, minus the wall-time-dependent
// throughput block.
type goldenRecognize struct {
	Task     string            `json:"task"`
	Results  []recognizeResult `json:"results"`
	Degraded int               `json:"degraded"`
}

func goldenPath(taskName string) string {
	return filepath.Join("testdata", "golden_recognize_"+taskName+".json")
}

// TestGoldenRecognizeResponses replays the four evaluation tasks through
// the full HTTP path — request JSON in, response JSON out — against
// committed fixtures. Everything semantically meaningful must match the
// fixture exactly (words, surface text, frame counts, rescue/failure
// stats, degraded level 0), costs to 1e-3; throughput is excluded as
// wall-time noise. This pins the wire contract the same way the
// experiments package pins the decoder: an intentional change re-records
// with -update and shows up as a reviewable fixture diff — in particular,
// the load-management layer at rest must leave every byte of the decode
// path untouched.
func TestGoldenRecognizeResponses(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay builds four systems; skipped in -short")
	}
	for _, spec := range task.AllSpecs(goldenScale) {
		spec.TestUtterances = goldenUtterances
		t.Run(spec.Name, func(t *testing.T) {
			sys, err := unfold.NewSystem(spec)
			if err != nil {
				t.Fatal(err)
			}
			s := New(Config{Workers: 2})
			if err := s.Load(sys); err != nil {
				t.Fatal(err)
			}

			var req recognizeRequest
			for _, u := range sys.TestSet() {
				req.Utterances = append(req.Utterances, utteranceRequest{Frames: u.Frames})
			}
			body, _ := json.Marshal(req)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("recognize: %d %s", rec.Code, rec.Body.String())
			}
			var resp recognizeResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			got := goldenRecognize{Task: spec.Name, Results: resp.Results, Degraded: resp.Degraded}

			path := goldenPath(spec.Name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run `go test ./internal/server -run Golden -update`): %v", err)
			}
			var want goldenRecognize
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			compareGoldenResponse(t, got, want)
		})
	}
}

func compareGoldenResponse(t *testing.T, got, want goldenRecognize) {
	t.Helper()
	if got.Degraded != want.Degraded {
		t.Errorf("degraded: got %d, fixture %d", got.Degraded, want.Degraded)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, fixture has %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		g, w := got.Results[i], want.Results[i]
		if fmtWords(g.Words) != fmtWords(w.Words) {
			t.Errorf("utt %d words: got %v, fixture %v", i, g.Words, w.Words)
		}
		if g.Text != w.Text {
			t.Errorf("utt %d text: got %q, fixture %q", i, g.Text, w.Text)
		}
		if math.Abs(g.Cost-w.Cost) > 1e-3 {
			t.Errorf("utt %d cost: got %v, fixture %v", i, g.Cost, w.Cost)
		}
		if g.Frames != w.Frames || g.Rescues != w.Rescues || g.SearchFailures != w.SearchFailures {
			t.Errorf("utt %d stats: got {frames %d rescues %d failures %d}, fixture {%d %d %d}",
				i, g.Frames, g.Rescues, g.SearchFailures, w.Frames, w.Rescues, w.SearchFailures)
		}
		if g.Error != w.Error {
			t.Errorf("utt %d error: got %q, fixture %q", i, g.Error, w.Error)
		}
	}
}

func fmtWords(w []int32) string {
	b, _ := json.Marshal(w)
	return string(b)
}
