package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pool"
)

// The chaos suite: deterministic, seeded fault injection against a
// multi-model server, asserting the blast-radius invariants from
// docs/ROBUSTNESS.md — one sick model (or one misbehaving client) never
// affects another model's requests, every transition is observable, and a
// healed model comes back on its own.

// chaosSupervisor is the fast-recovery tuning the suite runs under: real
// backoff shape, millisecond scale, fixed seed.
func chaosSupervisor() SupervisorConfig {
	return SupervisorConfig{
		ReloadBackoff:    5 * time.Millisecond,
		ReloadBackoffMax: 25 * time.Millisecond,
		ReloadBudget:     200,
		Seed:             7,
	}
}

// findModel snapshots one model's registry row.
func findModel(s *Server, name string) (modelInfo, bool) {
	for _, mi := range s.Models() {
		if mi.Name == name {
			return mi, true
		}
	}
	return modelInfo{}, false
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosIsolationAndHeal is the headline invariant: corrupt model A's
// bundle on disk after load AND park a stalled client on model B's stream
// route, then prove (1) concurrent requests against B never see a 5xx,
// (2) A is quarantined with a retryable 503, (3) after the disk heals, A
// recovers by itself, and (4) every transition shows up in /v1/models and
// /metrics, with the watchdog reaping the stalled client.
func TestChaosIsolationAndHeal(t *testing.T) {
	s := newLoadedServer(t, Config{
		Workers:    2,
		Supervisor: chaosSupervisor(),
		Stream:     StreamConfig{Watchdog: 200 * time.Millisecond, WriteTimeout: 200 * time.Millisecond},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	path := saveBundle(t)
	if code, body := postModel(t, s, "victim", path); code != http.StatusOK {
		t.Fatalf("add victim: %d %v", code, body)
	}
	frames := getSystem(t).TestSet()[0].Frames
	if len(frames) > 30 {
		frames = frames[:30]
	}

	recognizeHTTP := func(model string) (*http.Response, errorBody) {
		body, _ := json.Marshal(recognizeRequest{
			Utterances: []utteranceRequest{{Frames: frames}}, Model: model,
		})
		resp, err := http.Post(ts.URL+"/v1/recognize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("recognize %s: %v", model, err)
		}
		var e errorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		return resp, e
	}

	// Park a stalled client on the default model's stream route: one valid
	// chunk, then silence, with more body promised.
	line, _ := json.Marshal(streamChunk{Frames: frames[:2]})
	line = append(line, '\n')
	stall, err := faultinject.StallStream(ts.URL, "/v1/stream", line)
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()

	// Corrupt the victim's bundle in place. The mapping is MAP_SHARED, so
	// the resident health check sees the damage too.
	sab := &faultinject.Saboteur{Path: path}
	if err := sab.Corrupt(42); err != nil {
		t.Fatal(err)
	}
	sick := s.CheckModels()
	if len(sick) != 1 || sick[0] != "victim" {
		t.Fatalf("CheckModels quarantined %v, want [victim]", sick)
	}
	if mi, _ := findModel(s, "victim"); mi.State != modelQuarantined || mi.Quarantines != 1 {
		t.Fatalf("victim after check: %+v", mi)
	}
	// A second pass is a no-op: already quarantined models are skipped.
	if again := s.CheckModels(); len(again) != 0 {
		t.Errorf("second CheckModels pass quarantined %v", again)
	}

	// Blast radius: the default model keeps serving 200s while the victim
	// is quarantined and a stalled stream client squats on a connection.
	for i := 0; i < 10; i++ {
		if resp, e := recognizeHTTP(""); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy model request %d: %d %+v", i, resp.StatusCode, e)
		}
	}
	// The sick model answers a retryable structured 503, not a 5xx crash.
	resp, e := recognizeHTTP("victim")
	if resp.StatusCode != http.StatusServiceUnavailable || e.Reason != "model_not_ready" {
		t.Fatalf("quarantined model: %d %+v, want 503 model_not_ready", resp.StatusCode, e)
	}
	if resp.Header.Get("Retry-After") == "" || e.RetryAfterSeconds <= 0 {
		t.Errorf("quarantined 503 carries no backoff hint: %+v", e)
	}

	// Reload attempts run against the still-corrupt file and fail at the
	// disk pre-flight; the attempt counter proves the loop is alive.
	waitFor(t, 5*time.Second, "a failed reload attempt", func() bool {
		mi, _ := findModel(s, "victim")
		return mi.ReloadAttempts >= 1 && mi.State == modelQuarantined
	})

	// Heal the disk: the next attempt passes pre-flight, rebuilds, and
	// swaps a fresh generation in with no operator involvement.
	if err := sab.Heal(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "victim to recover", func() bool {
		mi, _ := findModel(s, "victim")
		return mi.State == modelReady
	})
	if resp, e := recognizeHTTP("victim"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healed model: %d %+v", resp.StatusCode, e)
	}
	if mi, _ := findModel(s, "victim"); mi.Quarantines != 1 || mi.ReloadAttempts < 1 {
		t.Errorf("healed model lost its history: %+v", mi)
	}

	// The watchdog reaps the stalled stream client.
	waitFor(t, 5*time.Second, "the stall watchdog", func() bool {
		return s.streamsStalled.Value() >= 1 && s.streamsActive.Load() == 0
	})

	// Every transition is on /metrics.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		`unfold_model_quarantines_total{model="victim"} 1`,
		`unfold_model_reload_attempts_total{model="victim"}`,
		`unfold_model_consecutive_failures{model="victim"}`,
		`unfold_server_stream_stalls_total 1`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestChaosReloadBudgetExhausted never heals the disk: the reload loop must
// burn its budget and park the model in the terminal failed state — entry
// visible with the reason, resources released, delete still working.
func TestChaosReloadBudgetExhausted(t *testing.T) {
	sup := chaosSupervisor()
	sup.ReloadBudget = 3
	s := newLoadedServer(t, Config{Workers: 1, Supervisor: sup})
	defer s.Close()

	path := saveBundle(t)
	if code, body := postModel(t, s, "victim", path); code != http.StatusOK {
		t.Fatalf("add victim: %d %v", code, body)
	}
	sab := &faultinject.Saboteur{Path: path}
	if err := sab.Corrupt(13); err != nil {
		t.Fatal(err)
	}
	if sick := s.CheckModels(); len(sick) != 1 {
		t.Fatalf("CheckModels quarantined %v", sick)
	}

	waitFor(t, 10*time.Second, "budget exhaustion", func() bool {
		mi, _ := findModel(s, "victim")
		return mi.State == modelFailed
	})
	mi, _ := findModel(s, "victim")
	if !strings.Contains(mi.Error, "budget") || mi.ReloadAttempts != 3 {
		t.Errorf("failed model: %+v, want budget-exhaustion error after 3 attempts", mi)
	}
	if mi.ResidentBytes != 0 {
		t.Errorf("failed model still reports %d resident bytes", mi.ResidentBytes)
	}
	// Requests against it are structured 503s; the default model is fine.
	code, body := recognizeOn(t, s, "victim", getSystem(t).TestSet()[0].Frames)
	var e errorBody
	if code != http.StatusServiceUnavailable || json.Unmarshal(body, &e) != nil || e.Reason != "model_not_ready" {
		t.Errorf("failed-model request: %d %s", code, body)
	}
	if code, _ := recognizeOn(t, s, "", getSystem(t).TestSet()[0].Frames); code != http.StatusOK {
		t.Errorf("default model collateral damage: %d", code)
	}

	// DELETE clears the carcass; a second DELETE is a clean 404.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/models/victim", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete failed model: %d %s", rec.Code, rec.Body.String())
	}
	if _, ok := findModel(s, "victim"); ok {
		t.Error("failed model still listed after delete")
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/models/victim", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", rec.Code)
	}
}

// TestChaosScriptedReloadFailures drives the ReloadHook seam: the first two
// reload attempts are scripted to fail, the third succeeds, and the
// attempt counter records all three.
func TestChaosScriptedReloadFailures(t *testing.T) {
	sup := chaosSupervisor()
	sup.ReloadHook = faultinject.FailReloads(2)
	s := newLoadedServer(t, Config{Workers: 1, Supervisor: sup})
	defer s.Close()
	if code, body := postModel(t, s, "flappy", saveBundle(t)); code != http.StatusOK {
		t.Fatalf("add: %d %v", code, body)
	}

	// Quarantine by hand (the disk is healthy; the scripted failures are in
	// the hook).
	m, release, st, _ := s.models.acquire("flappy")
	if st != statusOK {
		t.Fatal("flappy not servable")
	}
	release()
	s.models.quarantine(m, "scripted chaos")

	waitFor(t, 10*time.Second, "recovery through scripted failures", func() bool {
		mi, _ := findModel(s, "flappy")
		return mi.State == modelReady
	})
	if mi, _ := findModel(s, "flappy"); mi.ReloadAttempts != 3 {
		t.Errorf("reload attempts %d, want 3 (two scripted failures + one success)", mi.ReloadAttempts)
	}
}

// TestDecodeFailureScoring pins the supervisor's failure arithmetic:
// search failures count, cancellations are neutral, any success resets,
// and the threshold quarantines — after which the model heals itself (a
// task model's rebuild always succeeds).
func TestDecodeFailureScoring(t *testing.T) {
	sup := chaosSupervisor()
	sup.QuarantineThreshold = 3
	s := newLoadedServer(t, Config{Workers: 1, Supervisor: sup})
	defer s.Close()
	m, release, st, _ := s.models.acquire(DefaultModel)
	if st != statusOK {
		t.Fatal("default not servable")
	}
	release()

	searchFail := []*pool.DecodeError{{Utterance: 0, Stage: pool.StageSearch, Cause: errors.New("beam collapsed")}}
	canceled := []*pool.DecodeError{{Utterance: 0, Stage: pool.StageCanceled, Cause: context.Canceled}}
	partial := []*pool.DecodeError{nil, {Utterance: 1, Stage: pool.StageSearch, Cause: errors.New("one bad")}}

	s.models.noteBatch(m, searchFail)
	s.models.noteBatch(m, searchFail)
	if mi, _ := findModel(s, DefaultModel); mi.ConsecutiveFailures != 2 {
		t.Fatalf("score after two failures: %+v", mi)
	}
	// An all-canceled batch is neutral: neither counts nor resets.
	s.models.noteBatch(m, canceled)
	if mi, _ := findModel(s, DefaultModel); mi.ConsecutiveFailures != 2 {
		t.Fatalf("score after canceled batch: %+v", mi)
	}
	// A batch with any decoded utterance resets the score.
	s.models.noteBatch(m, partial)
	if mi, _ := findModel(s, DefaultModel); mi.ConsecutiveFailures != 0 {
		t.Fatalf("score after partial success: %+v", mi)
	}

	// Three consecutive failures trip the threshold; /healthz flips while
	// the only model is quarantined, then recovers.
	s.models.noteBatch(m, searchFail)
	s.models.noteBatch(m, searchFail)
	s.models.noteBatch(m, searchFail)
	if s.models.anyReady() {
		// The millisecond-scale reload may already have healed it; that is
		// success too, checked below.
		t.Log("model already healed by the time we looked")
	}
	waitFor(t, 10*time.Second, "self-heal after quarantine", func() bool {
		mi, _ := findModel(s, DefaultModel)
		return mi.State == modelReady && mi.Quarantines == 1
	})
	if mi, _ := findModel(s, DefaultModel); mi.ConsecutiveFailures != 0 {
		t.Errorf("healed model keeps a failure score: %+v", mi)
	}
}

// TestQuarantineDisabled: a negative threshold turns failure-score
// quarantines off — the score still ticks for observability, but the model
// stays ready.
func TestQuarantineDisabled(t *testing.T) {
	sup := chaosSupervisor()
	sup.QuarantineThreshold = -1
	s := newLoadedServer(t, Config{Workers: 1, Supervisor: sup})
	defer s.Close()
	m, release, st, _ := s.models.acquire(DefaultModel)
	if st != statusOK {
		t.Fatal("default not servable")
	}
	release()
	searchFail := []*pool.DecodeError{{Utterance: 0, Stage: pool.StageSearch, Cause: errors.New("boom")}}
	for i := 0; i < 10; i++ {
		s.models.noteBatch(m, searchFail)
	}
	if mi, _ := findModel(s, DefaultModel); mi.State != modelReady {
		t.Errorf("threshold -1 still quarantined: %+v", mi)
	}
}

// TestChaosBackoffDeterminism pins the jitter schedule: two supervisors
// with the same seed produce identical backoff sequences, a different seed
// a different one, and the sequence respects base, doubling, and cap.
func TestChaosBackoffDeterminism(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		sv := newSupervisor(SupervisorConfig{
			ReloadBackoff: 100 * time.Millisecond, ReloadBackoffMax: time.Second, Seed: seed,
		})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = sv.backoff(i + 1)
		}
		return out
	}
	a, b := seq(7), seq(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(seq(8)) {
		t.Errorf("different seeds produced the same schedule")
	}
	for i, d := range a {
		base := 100 * time.Millisecond << uint(i)
		if base > time.Second {
			base = time.Second
		}
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if d < lo || d > hi {
			t.Errorf("attempt %d backoff %v outside [%v,%v]", i+1, d, lo, hi)
		}
	}
}

// TestStreamPartialDropNeverDropsFinal floods a stream with chunks against
// a tiny send buffer via an in-memory recorder (which never blocks, so this
// pins the bookkeeping rather than timing): the final record must always
// arrive intact, whatever happened to intermediate partials.
func TestStreamSlowClientKeepsFinal(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1, Stream: StreamConfig{SendBuffer: 1}})
	defer s.Close()
	u := getSystem(t).TestSet()[0]

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	// Many tiny chunks: each produces a partial update.
	for i := 0; i+2 <= len(u.Frames); i += 2 {
		enc.Encode(streamChunk{Frames: u.Frames[i : i+2]})
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream", &in))
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var final streamUpdate
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if !final.Final || final.Error != "" {
		t.Fatalf("last line is not a clean final record: %+v", final)
	}
}

// TestStreamWatchdogStall runs the stalled-client injector against a live
// server and checks the structured mid-stream error record: the server
// cancels the decode, answers with reason "stall" on the wire, and frees
// the stream slot.
func TestStreamWatchdogStall(t *testing.T) {
	s := newLoadedServer(t, Config{
		Workers: 1,
		Stream:  StreamConfig{Watchdog: 150 * time.Millisecond, WriteTimeout: 150 * time.Millisecond},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := getSystem(t).TestSet()[0]
	line, _ := json.Marshal(streamChunk{Frames: u.Frames[:2]})
	line = append(line, '\n')
	stall, err := faultinject.StallStream(ts.URL, "/v1/stream", line)
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()

	waitFor(t, 5*time.Second, "watchdog to reap the stall", func() bool {
		return s.streamsStalled.Value() >= 1
	})
	waitFor(t, 5*time.Second, "stream slot release", func() bool {
		return s.streamsActive.Load() == 0
	})
	// The model reference was released: a drain of the default model
	// converges instead of waiting on the dead stream.
	if err := s.DrainModel(DefaultModel); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "drain convergence", func() bool {
		return len(s.Models()) == 0
	})
}
