// Package server implements the unfold-serve HTTP frontend: a streaming
// speech-recognition service over the on-the-fly decoder with the
// observability surface a production deployment needs — Prometheus
// /metrics backed by internal/telemetry, a /healthz readiness probe
// (model loaded, worker liveness, drain state), net/http/pprof, and a
// /debug/spans ring of recent decode traces.
//
// The decode paths reuse the repo's serving machinery wholesale: batch
// recognition fans out through a pool.DecodePool; streaming recognition
// runs a decoder.Stream per connection, with all stream decoders sharing
// one bounded ShardedLRU offset cache so word recurrence across
// connections keeps the cache warm (the paper's Offset Lookup Table
// locality, at the fleet level). With Config.Lanes set, both decode
// routes instead attach to a per-model pool.LaneScheduler: concurrent
// utterances advance in frame-synchronous lockstep through one batched
// scorer call per step (continuous batching — requests join and leave
// the running group mid-flight), with identical transcripts and the
// unfold_lane_{active,joins_total,drains_total} instruments tracking the
// churn. Telemetry is threaded through every path via the nil-safe
// seams, so everything /metrics shows during a live decode — frontier
// sizes, back-off walks, cache hits — is the decoder's own accounting,
// not server-side estimation.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	unfold "repro"
	"repro/internal/bias"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Config sizes the server. The zero value selects sensible defaults for
// every field.
type Config struct {
	// Workers is the DecodePool size for batch /v1/recognize requests
	// (defaults to GOMAXPROCS, per pool.Config).
	Workers int
	// Lanes, when > 0, builds a frame-synchronous lane scheduler per model
	// and routes /v1/recognize and /v1/stream through it: up to Lanes
	// utterances advance in lockstep through one batched scorer call per
	// frame, joining and leaving the group mid-flight (continuous
	// batching), instead of queueing for whole pool workers. Transcripts
	// are byte-identical to the worker-pool paths. Size it at or above the
	// expected decode concurrency — utterances past the lane count queue
	// for a free slot. 0 (the default) keeps the classic paths.
	Lanes int
	// Decoder configures the beam search for both the pool workers and the
	// per-connection stream decoders. OffsetCache and Telemetry are
	// overwritten by the server's own wiring; leave them nil.
	Decoder decoder.Config
	// StreamCacheEntries bounds the offset cache shared by all stream
	// decoders. Default 1<<16.
	StreamCacheEntries int
	// SpanCapacity is the size of the /debug/spans ring. Default 128.
	SpanCapacity int
	// DisablePprof removes the net/http/pprof handlers (for deployments
	// that must not expose profiling endpoints).
	DisablePprof bool
	// Admission bounds accepted work: execution slots, a bounded wait
	// queue, the degradation watermarks, and per-request deadline policy.
	// The zero value enables load management with the AdmissionConfig
	// defaults (MaxConcurrent tracks the pool worker count).
	Admission AdmissionConfig
	// ModelBudget caps the summed resident bytes of every registered model
	// (a swap holds both generations until the old one drains, and counts
	// both). 0 disables the budget.
	ModelBudget int64
	// Supervisor tunes the self-healing model lifecycle: quarantine
	// thresholds, reload backoff and budget, and the periodic bundle
	// re-verify. The zero value supervises with defaults (no periodic
	// ticker; CheckModels still works on demand).
	Supervisor SupervisorConfig
	// Stream tunes per-connection resilience on /v1/stream: write deadlines
	// for stalled readers, a chunk-gap watchdog, and the bounded
	// latest-wins partial-update buffer.
	Stream StreamConfig
}

// StreamConfig bounds how long a single /v1/stream connection can hold
// server resources while its client misbehaves.
type StreamConfig struct {
	// WriteTimeout bounds each response write; a client that stops reading
	// for longer aborts the stream (its decode is canceled). 0 disables.
	WriteTimeout time.Duration
	// Watchdog bounds the gap between request chunks — the stream's frame
	// clock. A client that stalls longer gets a structured mid-stream error
	// record and its decode is canceled. 0 disables (the library default;
	// unfold-serve defaults to 60s).
	Watchdog time.Duration
	// SendBuffer bounds the queue of pending partial updates per
	// connection. When a slow client lets it fill, older partials are
	// dropped (latest wins) — final updates are never dropped. Default 4.
	SendBuffer int
}

func (c Config) withDefaults() Config {
	if c.StreamCacheEntries <= 0 {
		c.StreamCacheEntries = 1 << 16
	}
	if c.SpanCapacity <= 0 {
		c.SpanCapacity = 128
	}
	if c.Stream.SendBuffer <= 0 {
		c.Stream.SendBuffer = 4
	}
	return c
}

// Server is the HTTP recognition frontend. Construct with New, install a
// model with Load, and serve Handler. All methods are safe for concurrent
// use.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	ptel   *pool.Telemetry
	mux    *http.ServeMux
	start  time.Time

	// models is the named-model registry behind every decode route:
	// refcounted resolution, hot add/swap/drain, and the memory budget.
	// Scorer serialization lives per model (scorers keep per-utterance
	// scratch state and are not concurrency-safe; distinct models score
	// concurrently).
	models *modelRegistry

	// sup owns the self-healing lifecycle: quarantine, backoff reloads, the
	// periodic bundle re-verify. Closed (with its goroutines) by Close.
	sup *supervisor

	draining atomic.Bool

	streamsActive atomic.Int64

	// admit is the load-management gate every decode route passes through.
	admit *admitter

	// Server-level instruments.
	requestsByPath  map[string]*telemetry.Counter
	streamsGauge    *telemetry.Gauge
	streamsAborted  *telemetry.Counter
	streamsStalled  *telemetry.Counter
	partialsDropped *telemetry.Counter
	shedTotal       map[string]*telemetry.Counter
	degradedTotal   *telemetry.Counter
	biasCompiles    *telemetry.Counter
}

// New builds an unloaded server: every route is installed and /healthz
// reports "loading" until Load succeeds. The registry and tracer are
// created here and exposed via Registry/Tracer for callers that publish
// additional instruments (the CLI's accelerator export, tests).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) // mirror pool.Config's default
	}
	cfg.Admission = cfg.Admission.withDefaults(workers)
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(cfg.SpanCapacity)
	sup := newSupervisor(cfg.Supervisor)
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		tracer: tracer,
		ptel:   pool.NewTelemetry(reg, tracer),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		admit:  newAdmitter(cfg.Admission),
		sup:    sup,
		models: newModelRegistry(reg, cfg.ModelBudget, sup),
	}
	s.streamsGauge = reg.Gauge("unfold_server_streams_active", "Streaming decodes in flight.")
	s.streamsAborted = reg.Counter("unfold_server_streams_aborted_total", "Streams ended by cancellation or client disconnect.")
	s.streamsStalled = reg.Counter("unfold_server_stream_stalls_total", "Streams aborted by the frame-clock watchdog or a write timeout.")
	s.partialsDropped = reg.Counter("unfold_server_stream_partials_dropped_total", "Partial updates dropped because a slow client let the send buffer fill.")
	s.requestsByPath = map[string]*telemetry.Counter{}
	for _, route := range []string{"/v1/recognize", "/v1/stream", "/v1/testset", "/v1/models", "/healthz", "/metrics"} {
		s.requestsByPath[route] = reg.Counter("unfold_server_requests_total", "HTTP requests by route.", telemetry.L("route", route))
	}

	// Load-management instruments: live pressure (queue depth against its
	// capacity, current ladder level) plus the shed/degrade totals the
	// overload runbook alerts on.
	reg.GaugeFunc("unfold_server_queue_depth", "Batch requests waiting for an execution slot.",
		func() float64 { return float64(s.admit.depth()) })
	reg.GaugeFunc("unfold_server_queue_capacity", "Admission wait-queue capacity.",
		func() float64 { return float64(cfg.Admission.MaxQueue) })
	reg.GaugeFunc("unfold_server_degrade_level", "Degradation ladder level new decodes start at.",
		func() float64 { return float64(s.admit.level()) })
	s.shedTotal = map[string]*telemetry.Counter{}
	for _, route := range []string{"/v1/recognize", "/v1/stream"} {
		s.shedTotal[route] = reg.Counter("unfold_server_shed_total", "Requests shed by admission control, by route.", telemetry.L("route", route))
	}
	s.degradedTotal = reg.Counter("unfold_server_degraded_total", "Decodes run at a degraded search preset.")
	s.biasCompiles = reg.Counter("unfold_bias_requests_total", "Decode requests that carried a bias phrase list.")

	// Process-level gauges: the serving view of the paper's memory
	// footprint claim, plus liveness basics.
	reg.GaugeFunc("unfold_process_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("unfold_process_heap_live_bytes", "Live heap bytes (runtime/metrics).",
		func() float64 { return float64(metrics.ReadMemoryFootprint().HeapLiveBytes) })
	reg.GaugeFunc("unfold_process_heap_goal_bytes", "GC heap-size target.",
		func() float64 { return float64(metrics.ReadMemoryFootprint().HeapGoalBytes) })
	reg.GaugeFunc("unfold_process_goroutines", "Live goroutines.",
		func() float64 { return float64(metrics.ReadMemoryFootprint().Goroutines) })

	// Periodic model health pass: a cheap O(1) re-verify of every resident
	// bundle, quarantining the sick ones. Off by default in the library
	// (tests drive CheckModels synchronously); unfold-serve turns it on.
	if iv := sup.cfg.HealthInterval; iv > 0 {
		sup.wg.Add(1)
		go func() {
			defer sup.wg.Done()
			t := time.NewTicker(iv)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.models.checkAll()
				case <-sup.stop:
					return
				}
			}
		}()
	}

	s.routes()
	return s
}

// CheckModels runs one synchronous health pass: every ready bundle-backed
// model is cheaply re-verified in place, and failures are quarantined (the
// reload loop starts immediately). Returns the names quarantined by this
// pass. The chaos suite drives this directly for determinism; production
// runs it on Config.Supervisor.HealthInterval.
func (s *Server) CheckModels() []string { return s.models.checkAll() }

// Close stops the supervisor — the periodic health pass and every model's
// reload loop — and waits for them. The HTTP handler stays functional
// (models keep serving); Close is about goroutine hygiene on shutdown and
// in tests.
func (s *Server) Close() { s.sup.close() }

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Tracer returns the server's span tracer.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Load installs a recognizer system as the default model: it builds the
// model's batch DecodePool and stream cache, then marks the server ready.
// Loading under an existing name hot-swaps: new requests resolve the new
// generation immediately, the old one drains and closes in the background.
func (s *Server) Load(sys *unfold.System) error {
	return s.LoadSystem(DefaultModel, sys)
}

// LoadSystem registers a task-built system under a model name.
func (s *Server) LoadSystem(name string, sys *unfold.System) error {
	fp := sys.Footprint()
	commit, abort, err := s.models.beginLoad(name, fp.AMBytes+fp.LMBytes)
	if err != nil {
		return err
	}
	m, err := s.buildSystemModel(name, sys)
	if err != nil {
		abort(err)
		return err
	}
	commit(m)
	return nil
}

// buildSystemModel constructs (but does not install) a servable model from
// an in-memory system. It is also the rebuild path the supervisor uses to
// recover a quarantined task model: the graphs live on the heap and cannot
// rot, but a fresh decode pool sheds whatever state drove the failures.
func (s *Server) buildSystemModel(name string, sys *unfold.System) (*model, error) {
	start := time.Now()
	p, err := sys.NewDecodePool(pool.Config{
		Workers:   s.cfg.Workers,
		Decoder:   s.cfg.Decoder,
		Telemetry: s.ptel,
	})
	if err != nil {
		return nil, err
	}
	var lanes *pool.LaneScheduler
	if s.cfg.Lanes > 0 {
		lanes, err = pool.NewLaneScheduler(sys.Task.AM.G, sys.Task.LMGraph.G, sys.Task.Scorer, pool.LaneConfig{
			Lanes:     s.cfg.Lanes,
			Decoder:   s.cfg.Decoder,
			Telemetry: s.ptel,
		})
		if err != nil {
			return nil, err
		}
	}
	fp := sys.Footprint()
	comp := bias.NewCompiler(newWordLookup(sys.Task.Lex.Words), bias.CompilerConfig{})
	s.observeBiasCompiler(name, comp)
	return &model{
		name:          name,
		task:          sys.Task.Spec.Name,
		sys:           sys,
		pool:          p,
		lanes:         lanes,
		streamCache:   pool.NewShardedLRU(s.cfg.StreamCacheEntries, 16),
		biasComp:      comp,
		streamTenants: pool.NewTenantCaches(pool.TenantPartitionConfig{}),
		resident:      fp.AMBytes + fp.LMBytes,
		loadSeconds:   loadSecondsSince(start),
		rebuild:       func() (*model, error) { return s.buildSystemModel(name, sys) },
	}, nil
}

// LoadBundle registers a model bundle from disk under a name — the hot-add
// path behind POST /v1/models. verify selects the fully-checked loader
// (per-section CRCs plus structural validation) over the O(1) mapped fast
// path; serve untrusted bundles verified. The budget check uses the file
// size (which IS the resident size for a mapped v3 bundle) before any load
// work happens.
func (s *Server) LoadBundle(name, path string, verify bool) error {
	estimate := int64(0)
	if st, err := os.Stat(path); err == nil && !st.IsDir() {
		estimate = st.Size()
	}
	commit, abort, err := s.models.beginLoad(name, estimate)
	if err != nil {
		return err
	}
	m, err := s.buildBundleModel(name, path, verify)
	if err != nil {
		abort(err)
		return err
	}
	commit(m)
	return nil
}

// buildBundleModel constructs (but does not install) a servable model from
// a bundle on disk. The supervisor's reload loop calls it again — with the
// remembered path and verify mode — to build the replacement generation for
// a quarantined model.
func (s *Server) buildBundleModel(name, path string, verify bool) (*model, error) {
	start := time.Now()
	load := unfold.LoadRecognizerFast
	if verify {
		load = unfold.LoadRecognizer
	}
	rec, err := load(path)
	if err != nil {
		return nil, err
	}
	p, err := pool.New(rec.AMGraph, rec.LMGraph, pool.Config{
		Workers:   s.cfg.Workers,
		Decoder:   s.cfg.Decoder,
		Telemetry: s.ptel,
	})
	if err != nil {
		rec.Close()
		return nil, err
	}
	var lanes *pool.LaneScheduler
	if s.cfg.Lanes > 0 {
		lanes, err = pool.NewLaneScheduler(rec.AMGraph, rec.LMGraph, rec.Scorer, pool.LaneConfig{
			Lanes:     s.cfg.Lanes,
			Decoder:   s.cfg.Decoder,
			Telemetry: s.ptel,
		})
		if err != nil {
			rec.Close()
			return nil, err
		}
	}
	comp := bias.NewCompiler(newWordLookup(rec.Lex.Words), bias.CompilerConfig{})
	s.observeBiasCompiler(name, comp)
	return &model{
		name:          name,
		task:          rec.TaskName,
		rec:           rec,
		pool:          p,
		lanes:         lanes,
		streamCache:   pool.NewShardedLRU(s.cfg.StreamCacheEntries, 16),
		biasComp:      comp,
		streamTenants: pool.NewTenantCaches(pool.TenantPartitionConfig{}),
		resident:      rec.ResidentBytes(),
		loadSeconds:   loadSecondsSince(start),
		srcPath:       path,
		srcVerify:     verify,
		rebuild:       func() (*model, error) { return s.buildBundleModel(name, path, verify) },
	}, nil
}

// DrainModel removes a model from routing; its resources (including a v3
// bundle's memory mapping) are released when the last in-flight request
// over it finishes.
func (s *Server) DrainModel(name string) error { return s.models.drain(name) }

// Models snapshots the registry for tests and embedding callers.
func (s *Server) Models() []modelInfo { return s.models.list() }

// BeginDrain flips /healthz to 503 so load balancers stop routing new
// work, while in-flight requests keep running — call on SIGTERM, then
// http.Server.Shutdown to wait for the drain.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes installs every endpoint.
func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", s.counted("/metrics", s.reg.Handler()))
	s.mux.Handle("/debug/spans", s.tracer.Handler())
	s.mux.Handle("/v1/recognize", s.counted("/v1/recognize", http.HandlerFunc(s.handleRecognize)))
	s.mux.Handle("/v1/stream", s.counted("/v1/stream", http.HandlerFunc(s.handleStream)))
	s.mux.Handle("/v1/testset", s.counted("/v1/testset", http.HandlerFunc(s.handleTestset)))
	s.mux.Handle("GET /v1/models", s.counted("/v1/models", http.HandlerFunc(s.handleModelsList)))
	s.mux.Handle("POST /v1/models", s.counted("/v1/models", http.HandlerFunc(s.handleModelsAdd)))
	s.mux.Handle("DELETE /v1/models/{name}", s.counted("/v1/models", http.HandlerFunc(s.handleModelsDrain)))
	if !s.cfg.DisablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// counted wraps h with the per-route request counter.
func (s *Server) counted(route string, h http.Handler) http.Handler {
	c := s.requestsByPath[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		h.ServeHTTP(w, r)
	})
}

// healthResponse is the /healthz JSON body. Task and the Workers block
// describe the default model (kept for probe compatibility); Models lists
// every registered model with its lifecycle state.
type healthResponse struct {
	Status        string  `json:"status"`
	Task          string  `json:"task,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Workers       struct {
		Total int `json:"total"`
		Busy  int `json:"busy"`
	} `json:"workers"`
	StreamsActive int64       `json:"streams_active"`
	Decodes       int64       `json:"decodes_total"`
	HeapLiveBytes uint64      `json:"heap_live_bytes"`
	Models        []modelInfo `json:"models,omitempty"`
	Load          struct {
		QueueDepth    int   `json:"queue_depth"`
		QueueCapacity int   `json:"queue_capacity"`
		DegradeLevel  int   `json:"degrade_level"`
		Shed          int64 `json:"shed_total"`
	} `json:"load"`
}

// handleHealthz reports readiness: 200 only when a model bundle is loaded
// and the server is not draining. The body carries worker liveness (pool
// size and how many are mid-utterance) and headline load figures either
// way, so an unhealthy probe is still diagnosable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requestsByPath["/healthz"].Inc()
	var resp healthResponse
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Draining = s.draining.Load()
	resp.StreamsActive = s.streamsActive.Load()
	resp.HeapLiveBytes = metrics.ReadMemoryFootprint().HeapLiveBytes
	resp.Load.QueueDepth = s.admit.depth()
	resp.Load.QueueCapacity = s.cfg.Admission.MaxQueue
	resp.Load.DegradeLevel = s.admit.level()
	for _, c := range s.shedTotal {
		resp.Load.Shed += c.Value()
	}

	resp.Models = s.models.list()
	for _, mi := range resp.Models {
		if mi.Name == DefaultModel {
			resp.Task = mi.Task
		}
	}
	if m, release, st, _ := s.models.acquire(DefaultModel); st == statusOK {
		resp.Workers.Total = m.pool.Workers()
		release()
	}
	resp.Workers.Busy = int(s.ptel.WorkersBusy.Value())
	resp.Decodes = s.ptel.Decoder.Decodes.Value() + s.ptel.Decoder.Streams.Value()

	code := http.StatusOK
	switch {
	case !s.models.anyReady():
		resp.Status = "loading"
		code = http.StatusServiceUnavailable
	case resp.Draining:
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	default:
		resp.Status = "ok"
	}
	writeJSON(w, code, resp)
}

// resolveModel acquires the request's model — the explicit name, or the
// default — and writes the structured error itself when the model is not
// servable: 404 unknown_model for a named miss, 503 not_loaded /
// model_not_ready otherwise. Callers must invoke the release exactly once
// when it is non-nil.
func (s *Server) resolveModel(w http.ResponseWriter, name string) (*model, func(), bool) {
	explicit := name != ""
	if !explicit {
		name = DefaultModel
	}
	m, release, st, detail := s.models.acquire(name)
	switch st {
	case statusOK:
		return m, release, true
	case statusUnknown:
		if !explicit {
			s.failRetry(w, http.StatusServiceUnavailable, "not_loaded", "model not loaded")
		} else {
			s.fail(w, http.StatusNotFound, "unknown_model", detail)
		}
	default:
		s.failRetry(w, http.StatusServiceUnavailable, "model_not_ready", detail)
	}
	return nil, nil, false
}

// writeJSON writes v as a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// errorBody is the structured error reply on the decode routes: a
// human-readable message, a machine-matchable reason token, and — on shed
// responses — the backoff hint mirrored from the Retry-After header.
type errorBody struct {
	Error             string  `json:"error"`
	Reason            string  `json:"reason,omitempty"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// fail rejects a request with a structured error and counts it under
// unfold_server_errors_total{reason}.
func (s *Server) fail(w http.ResponseWriter, code int, reason, msg string) {
	s.reg.Counter("unfold_server_errors_total", "Requests rejected, by reason.", telemetry.L("reason", reason)).Inc()
	writeJSON(w, code, errorBody{Error: msg, Reason: reason})
}

// failRetry is fail for retryable conditions (503 not-ready/draining, 507
// budget): the response carries a Retry-After header and mirrors the hint
// in the body, so clients and load balancers back off instead of
// hammering a model that is mid-reload.
func (s *Server) failRetry(w http.ResponseWriter, code int, reason, msg string) {
	retry := s.cfg.Admission.RetryAfter
	secs := int(retry.Seconds() + 0.999)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.reg.Counter("unfold_server_errors_total", "Requests rejected, by reason.", telemetry.L("reason", reason)).Inc()
	writeJSON(w, code, errorBody{Error: msg, Reason: reason, RetryAfterSeconds: retry.Seconds()})
}

// shed answers an over-capacity request: 429 with a Retry-After header and
// the same hint in the body, counted per route. The hint is the configured
// constant — under a sustained overload there is no honest queue-time
// estimate, and a fixed short backoff spreads the retry wave.
func (s *Server) shed(w http.ResponseWriter, route string) {
	s.shedTotal[route].Inc()
	retry := s.cfg.Admission.RetryAfter
	secs := int(retry.Seconds() + 0.999)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, errorBody{
		Error:             "server overloaded: request queue full, retry later",
		Reason:            "overloaded",
		RetryAfterSeconds: retry.Seconds(),
	})
}

// requestBuckets spans 1ms..8s exponentially — decode latencies from a
// trivial utterance to a deadline-bounded worst case.
var requestBuckets = telemetry.ExpBuckets(0.001, 2, 14)

// observeLatency records one request's wall time under
// unfold_server_request_seconds{route,outcome}. Registration is
// get-or-create, so the series appears the first time an outcome occurs.
func (s *Server) observeLatency(route, outcome string, start time.Time) {
	s.reg.Histogram("unfold_server_request_seconds", "Request latency by route and outcome.",
		requestBuckets, telemetry.L("route", route), telemetry.L("outcome", outcome)).
		Observe(time.Since(start).Seconds())
}

// modelsAddRequest is the POST /v1/models body: register (or hot-swap) a
// bundle from disk under a name. Verify selects the fully-checked loader
// over the O(1) mapped fast path.
type modelsAddRequest struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Verify bool   `json:"verify,omitempty"`
}

// handleModelsList answers GET /v1/models with every registered model.
func (s *Server) handleModelsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.models.list()})
}

// handleModelsAdd hot-adds (or hot-swaps) a bundle: the new generation
// serves the next request; a replaced one drains and closes in the
// background. Budget rejections answer 507 so a deploy tool can tell
// "would not fit" from "bundle is broken" (400).
func (s *Server) handleModelsAdd(w http.ResponseWriter, r *http.Request) {
	var req modelsAddRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad_json", "bad JSON: "+err.Error())
		return
	}
	if req.Name == "" || req.Path == "" {
		s.fail(w, http.StatusBadRequest, "missing_field", "name and path are required")
		return
	}
	if err := s.LoadBundle(req.Name, req.Path, req.Verify); err != nil {
		var be *budgetError
		if errors.As(err, &be) {
			// Retryable: draining a model (or waiting for a swapped-out
			// generation to finish draining) frees budget.
			s.failRetry(w, http.StatusInsufficientStorage, "model_budget", err.Error())
			return
		}
		s.fail(w, http.StatusBadRequest, "load_failed", err.Error())
		return
	}
	for _, mi := range s.models.list() {
		if mi.Name == req.Name {
			writeJSON(w, http.StatusOK, mi)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": req.Name, "state": modelReady})
}

// handleModelsDrain answers DELETE /v1/models/{name}: the model stops
// resolving immediately and its resources are released once the last
// in-flight request over it finishes.
func (s *Server) handleModelsDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.models.drain(name); err != nil {
		s.fail(w, http.StatusNotFound, "unknown_model", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "state": modelDraining})
}
