package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	unfold "repro"
	"repro/internal/acoustic"
	"repro/internal/bias"
	"repro/internal/pool"
	"repro/internal/telemetry"
	"repro/internal/wfst"
)

// DefaultModel is the registry name Load installs under; requests that
// carry no model selector resolve to it.
const DefaultModel = "default"

// Model lifecycle states as reported by /healthz and /v1/models.
const (
	modelLoading = "loading"
	modelReady   = "ready"
	// modelQuarantined drains traffic from a sick model (failed re-verify or
	// too many consecutive decode failures) while its reload loop tries to
	// bring a fresh generation up; other models keep serving.
	modelQuarantined = "quarantined"
	modelDraining    = "draining"
	// modelFailed is terminal: the reload budget is exhausted (or a load
	// never succeeded). The entry stays visible so /healthz can say why, but
	// its resources are released.
	modelFailed = "failed"
)

// model is one servable entry: a task-built System or a bundle-loaded
// Recognizer, plus the per-model serving machinery (decode pool, stream
// offset cache, scorer lock). Everything except the lifecycle fields is
// immutable once the model reaches the ready state.
type model struct {
	name string
	task string

	sys *unfold.System     // task path; nil for bundle loads
	rec *unfold.Recognizer // bundle path; nil for task loads

	pool        *pool.DecodePool
	streamCache *pool.ShardedLRU
	// biasComp compiles per-tenant phrase lists into bias machines over
	// this model's lexicon, with the tenant-keyed LRU in front so a stable
	// phrase list compiles once per profile edit, not once per request.
	biasComp *bias.Compiler
	// streamTenants partitions the solo/pipe stream paths' offset-cache
	// traffic per tenant, mirroring what the pool and lane scheduler do
	// internally for their own caches. Tenantless streams keep using
	// streamCache.
	streamTenants *pool.TenantCaches
	// lanes, when non-nil (Config.Lanes > 0), is the frame-synchronous
	// lane scheduler the decode routes use instead of the pool and the
	// per-connection stream decoders. It owns the model's acoustic scorer:
	// while it is live, score must not run concurrently with lane decodes
	// (the handlers route exclusively through lanes when it is set).
	lanes *pool.LaneScheduler

	// scorerMu serializes this model's acoustic scorer: scorers keep
	// per-utterance scratch state and are not concurrency-safe. Distinct
	// models score concurrently; the search fans out through the pool
	// either way.
	scorerMu sync.Mutex

	resident    int64
	loadSeconds float64

	// Reload provenance: where the bundle came from and how to build a
	// replacement generation, used by the supervisor's reload loop. rebuild
	// returns a fresh, uninstalled model (never touches the registry).
	srcPath   string
	srcVerify bool
	rebuild   func() (*model, error)

	// mu guards the lifecycle below. refs counts in-flight requests
	// reading through the model's graphs; a draining model is closed (and
	// its bundle mapping released) only when the last one finishes.
	mu     sync.Mutex
	state  string
	refs   int
	closed bool // resources released (guards double-close; orthogonal to state for failed models)
	err    string

	// Supervision score-keeping (see supervisor.go).
	consecFails    int
	reloadAttempts int
	quarantines    int
}

func (m *model) amGraph() *wfst.WFST {
	if m.sys != nil {
		return m.sys.Task.AM.G
	}
	return m.rec.AMGraph
}

func (m *model) lmGraph() *wfst.WFST {
	if m.sys != nil {
		return m.sys.Task.LMGraph.G
	}
	return m.rec.LMGraph
}

// dim is the acoustic feature dimension requests are validated against.
func (m *model) dim() int {
	if m.sys != nil {
		return m.sys.Task.Senones.Dim
	}
	return m.rec.Senones.Dim
}

// scorer exposes the model's acoustic scorer. Callers that bypass score()
// — the score-ahead pipeline path — must confine themselves to the
// WindowScorer surface, whose per-caller state makes it safe without the
// scorer lock.
func (m *model) scorer() acoustic.Scorer {
	if m.sys != nil {
		return m.sys.Task.Scorer
	}
	return m.rec.Scorer
}

// score runs the model's acoustic scorer under its scorer lock.
func (m *model) score(frames [][]float32) [][]float32 {
	m.scorerMu.Lock()
	defer m.scorerMu.Unlock()
	if m.sys != nil {
		return m.sys.Task.Scorer.ScoreUtterance(frames)
	}
	return m.rec.Scorer.ScoreUtterance(frames)
}

// words renders word IDs as a space-joined surface string.
func (m *model) words(ids []int32) string {
	if m.sys != nil {
		return strings.Join(m.sys.Words(ids), " ")
	}
	return strings.Join(m.rec.Words(ids), " ")
}

// testSet returns the model's held-out utterances; bundle-loaded models
// carry none (a v3 bundle stores models, not evaluation data).
func (m *model) testSet() []unfold.Utterance {
	if m.sys != nil {
		return m.sys.TestSet()
	}
	return nil
}

// closeLocked releases the model's resources. Called with m.mu held, with
// refs == 0; the closed flag guards re-entry. Failed models keep their
// state (the entry stays diagnosable); everything else becomes "closed".
func (m *model) closeLocked() {
	if m.closed {
		return
	}
	m.closed = true
	if m.state != modelFailed {
		m.state = "closed"
	}
	if m.lanes != nil {
		// Stops the scheduler's runner goroutine and waits for it; any
		// straggler lane fails with ErrLaneSchedulerClosed. Safe under
		// m.mu: the runner never touches the model or the registry.
		m.lanes.Close()
	}
	if m.rec != nil {
		m.rec.Close()
	}
}

// budgetError marks a load rejected by the memory budget, so the HTTP
// layer can answer 507 instead of a generic load failure.
type budgetError struct{ msg string }

func (e *budgetError) Error() string { return e.msg }

// modelStatus classifies a failed acquire.
type modelStatus int

const (
	statusOK modelStatus = iota
	statusUnknown
	statusNotReady // loading, draining, or failed
)

// modelRegistry is the named-model table behind the serving routes. It
// owns admission to models (refcounted acquire/release), hot add and swap
// (install replaces atomically; the old generation drains and closes in
// the background), drain, and the memory budget.
type modelRegistry struct {
	reg    *telemetry.Registry
	budget int64 // resident-bytes budget across all models; 0 = unlimited
	sup    *supervisor

	mu     sync.Mutex
	models map[string]*model
}

func newModelRegistry(reg *telemetry.Registry, budget int64, sup *supervisor) *modelRegistry {
	return &modelRegistry{reg: reg, budget: budget, sup: sup, models: make(map[string]*model)}
}

// acquire resolves name to a ready model and takes a reference on it; the
// caller must invoke the returned release exactly once after its last read
// through the model's graphs. The second return is nil when the model is
// not servable, with the status and a human-readable detail.
func (g *modelRegistry) acquire(name string) (*model, func(), modelStatus, string) {
	g.mu.Lock()
	m, ok := g.models[name]
	g.mu.Unlock()
	if !ok {
		return nil, nil, statusUnknown, fmt.Sprintf("unknown model %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != modelReady {
		detail := fmt.Sprintf("model %q is %s", name, m.state)
		if m.err != "" {
			detail += ": " + m.err
		}
		return nil, nil, statusNotReady, detail
	}
	m.refs++
	var once sync.Once
	return m, func() { once.Do(func() { g.release(m) }) }, statusOK, ""
}

// release drops one reference; the last release on a draining model closes
// it and removes it from the table (unless a swap already replaced it), and
// the last release on a failed model releases its resources while keeping
// the entry visible.
func (g *modelRegistry) release(m *model) {
	m.mu.Lock()
	m.refs--
	shouldClose := m.refs == 0 && !m.closed && (m.state == modelDraining || m.state == modelFailed)
	remove := false
	if shouldClose {
		remove = m.state == modelDraining
		m.closeLocked()
	}
	m.mu.Unlock()
	if remove {
		g.remove(m)
	}
}

// remove deletes m from the table if it is still the current entry for its
// name (a swap may have replaced it already) and zeroes its gauges.
func (g *modelRegistry) remove(m *model) {
	g.mu.Lock()
	if g.models[m.name] == m {
		delete(g.models, m.name)
	}
	g.mu.Unlock()
	g.reg.Gauge("unfold_model_resident_bytes", "Model bytes pinned in memory, by model.",
		telemetry.L("model", m.name)).Set(0)
}

// beginLoad installs a loading placeholder so /healthz and /v1/models show
// the model while its bundle is read, and enforces the memory budget using
// the caller's size estimate. The returned commit promotes the entry to
// ready (publishing its telemetry); abort marks it failed with the error.
func (g *modelRegistry) beginLoad(name string, estimate int64) (commit func(*model), abort func(error), err error) {
	g.mu.Lock()
	if cur, ok := g.models[name]; ok {
		cur.mu.Lock()
		state := cur.state
		cur.mu.Unlock()
		if state == modelLoading {
			g.mu.Unlock()
			return nil, nil, fmt.Errorf("model %q is already loading", name)
		}
	}
	if g.budget > 0 {
		// A swap holds both generations resident until the old one drains,
		// so the outgoing entry still counts against the budget.
		total := estimate
		for _, m := range g.models {
			total += m.resident
		}
		if total > g.budget {
			g.mu.Unlock()
			return nil, nil, &budgetError{fmt.Sprintf("loading %q (%d bytes) would exceed the model budget (%d of %d bytes in use)",
				name, estimate, total-estimate, g.budget)}
		}
	}
	prev := g.models[name]
	placeholder := &model{name: name, state: modelLoading, resident: estimate}
	g.models[name] = placeholder
	g.mu.Unlock()

	commit = func(m *model) {
		m.state = modelReady
		g.mu.Lock()
		g.models[name] = m
		g.mu.Unlock()
		g.reg.Gauge("unfold_model_resident_bytes", "Model bytes pinned in memory, by model.",
			telemetry.L("model", name)).Set(float64(m.resident))
		g.reg.Gauge("unfold_model_load_seconds", "Wall time the model's last load took, by model.",
			telemetry.L("model", name)).Set(m.loadSeconds)
		if prev != nil {
			g.drainModel(prev)
		}
	}
	abort = func(loadErr error) {
		placeholder.mu.Lock()
		placeholder.state = modelFailed
		placeholder.resident = 0
		placeholder.err = loadErr.Error()
		placeholder.mu.Unlock()
	}
	return commit, abort, nil
}

// drain marks the named model draining: it stops resolving for new
// requests immediately and is closed (bundle mapping released) when the
// last in-flight request finishes. Draining the only ready model flips
// /healthz back to "loading".
func (g *modelRegistry) drain(name string) error {
	g.mu.Lock()
	m, ok := g.models[name]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("unknown model %q", name)
	}
	g.drainModel(m)
	return nil
}

func (g *modelRegistry) drainModel(m *model) {
	m.mu.Lock()
	if m.state == modelDraining || m.state == "closed" {
		m.mu.Unlock()
		return
	}
	if m.closed {
		// A failed model whose resources are already gone: draining it just
		// drops the entry from the table.
		m.state = modelDraining
		m.mu.Unlock()
		g.remove(m)
		return
	}
	m.state = modelDraining
	idle := m.refs == 0
	if idle {
		m.closeLocked()
	}
	m.mu.Unlock()
	if idle {
		g.remove(m)
	}
}

// anyReady reports whether at least one model is servable.
func (g *modelRegistry) anyReady() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.models {
		m.mu.Lock()
		ready := m.state == modelReady
		m.mu.Unlock()
		if ready {
			return true
		}
	}
	return false
}

// empty reports whether no model was ever installed (distinguishes the
// never-loaded 503 from an unknown-model 404).
func (g *modelRegistry) empty() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.models) == 0
}

// modelInfo is one row of /v1/models and the per-model /healthz map.
type modelInfo struct {
	Name          string  `json:"name"`
	State         string  `json:"state"`
	Task          string  `json:"task,omitempty"`
	ResidentBytes int64   `json:"resident_bytes"`
	LoadSeconds   float64 `json:"load_seconds,omitempty"`
	Mapped        bool    `json:"mapped,omitempty"`
	Error         string  `json:"error,omitempty"`
	// Supervision counters: how often this entry has been quarantined, how
	// many reload attempts its loops have made, and the live consecutive
	// decode-failure score.
	Quarantines         int `json:"quarantines,omitempty"`
	ReloadAttempts      int `json:"reload_attempts,omitempty"`
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
}

// list snapshots every model sorted by name.
func (g *modelRegistry) list() []modelInfo {
	g.mu.Lock()
	models := make([]*model, 0, len(g.models))
	for _, m := range g.models {
		models = append(models, m)
	}
	g.mu.Unlock()
	sort.Slice(models, func(i, j int) bool { return models[i].name < models[j].name })
	out := make([]modelInfo, len(models))
	for i, m := range models {
		m.mu.Lock()
		out[i] = modelInfo{
			Name:                m.name,
			State:               m.state,
			Task:                m.task,
			ResidentBytes:       m.resident,
			LoadSeconds:         m.loadSeconds,
			Mapped:              m.rec != nil && !m.closed && m.rec.Mapped(),
			Error:               m.err,
			Quarantines:         m.quarantines,
			ReloadAttempts:      m.reloadAttempts,
			ConsecutiveFailures: m.consecFails,
		}
		m.mu.Unlock()
	}
	return out
}

// loadSecondsSince rounds a load duration for display.
func loadSecondsSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Second)
}
