package server

import (
	"fmt"

	"repro/internal/bias"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// DefaultBiasBonus is the per-word bonus applied when a bias block omits
// (or zeroes) the bonus field — strong enough to promote a competitive
// phrase without drowning the acoustic evidence on the repo's tasks.
const DefaultBiasBonus = 4.0

// biasRequest is the optional bias block on /v1/recognize and the first
// /v1/stream line: a tenant identity plus that tenant's phrase list. The
// phrases compile (through the model's cached compiler) into a bias
// machine, and the whole decode runs as AM ∘ LM ∘ Bias with the tenant's
// offset-cache traffic partitioned away from other tenants. An omitted
// block decodes exactly as before the bias feature existed.
type biasRequest struct {
	// Tenant keys the compiled-machine cache and the offset-cache
	// partition. Empty is allowed (the machine still applies) but forfeits
	// both kinds of tenant isolation.
	Tenant string `json:"tenant,omitempty"`
	// Phrases are surface-form word sequences to boost ("play back",
	// "acme support line"). Words outside the model's lexicon are skipped.
	Phrases []string `json:"phrases"`
	// Bonus is the per-matched-word score credit (tropical weight
	// subtracted per word, so larger favors the phrase more strongly).
	// Omitted or 0 selects DefaultBiasBonus; negative is rejected.
	Bonus float32 `json:"bonus,omitempty"`
}

// newWordLookup builds a bias.Lookup over an ID-indexed word list (first
// occurrence wins for duplicate surface forms).
func newWordLookup(words []string) bias.Lookup {
	idx := make(map[string]int32, len(words))
	for i, w := range words {
		if _, ok := idx[w]; !ok {
			idx[w] = int32(i)
		}
	}
	return func(word string) (int32, bool) {
		id, ok := idx[word]
		return id, ok
	}
}

// tenantBias resolves a request's bias block into the pool-level tenant
// assignment: nil in, nil out (the byte-identical no-bias path); otherwise
// the machine comes from the model's compiler cache and the tenant's
// compile-cache counters are published. A compile failure is a client
// error (bad phrase list), reported as a 400 by the caller.
func (s *Server) tenantBias(m *model, b *biasRequest) (*pool.TenantBias, error) {
	if b == nil {
		return nil, nil
	}
	if b.Tenant == "" && len(b.Phrases) == 0 {
		return nil, nil
	}
	if len(b.Phrases) == 0 {
		// Tenant-only: partitioned cache, two-layer search.
		return &pool.TenantBias{Tenant: b.Tenant}, nil
	}
	bonus := b.Bonus
	if bonus == 0 {
		bonus = DefaultBiasBonus
	}
	machine, err := m.biasComp.Get(b.Tenant, b.Phrases, bonus)
	if err != nil {
		return nil, err
	}
	s.biasCompiles.Inc()
	s.observeBiasTenant(m, b.Tenant)
	return &pool.TenantBias{Tenant: b.Tenant, Machine: machine}, nil
}

// observeBiasCompiler publishes a model's compiled-machine cache counters
// under unfold_bias_compile_cache_*{model}. Called at model build; a
// hot-swap re-registers the callbacks against the new generation's
// compiler.
func (s *Server) observeBiasCompiler(name string, comp *bias.Compiler) {
	ml := telemetry.L("model", name)
	s.reg.CounterFunc("unfold_bias_compile_cache_hits_total", "Bias compiler cache hits, by model.",
		func() float64 { return float64(comp.Stats().Hits) }, ml)
	s.reg.CounterFunc("unfold_bias_compile_cache_misses_total", "Bias compiler cache misses (fresh compiles), by model.",
		func() float64 { return float64(comp.Stats().Misses) }, ml)
	s.reg.CounterFunc("unfold_bias_compile_cache_evictions_total", "Compiled bias machines evicted from the cache, by model.",
		func() float64 { return float64(comp.Stats().Evictions) }, ml)
	s.reg.GaugeFunc("unfold_bias_compile_cache_entries", "Compiled bias machines resident in the cache, by model.",
		func() float64 { return float64(comp.Stats().Entries) }, ml)
}

// observeBiasTenant lazily registers one tenant's compile-cache hit/miss
// callbacks the first time that tenant sends a bias block. Cardinality is
// bounded by the compiler's own TenantStats cap: tenants past it aggregate
// under the bias.OverflowTenant series instead of growing /metrics without
// bound. Registration is idempotent (the registry dedups by name+labels).
func (s *Server) observeBiasTenant(m *model, tenant string) {
	comp := m.biasComp
	if _, tracked := comp.TenantCountersFor(tenant); !tracked {
		tenant = bias.OverflowTenant
	}
	name := tenant
	ml, tl := telemetry.L("model", m.name), telemetry.L("tenant", tenant)
	s.reg.CounterFunc("unfold_bias_tenant_compile_hits_total", "Bias compiler cache hits, by model and tenant.",
		func() float64 { tc, _ := comp.TenantCountersFor(name); return float64(tc.Hits) }, ml, tl)
	s.reg.CounterFunc("unfold_bias_tenant_compile_misses_total", "Bias compiler cache misses, by model and tenant.",
		func() float64 { tc, _ := comp.TenantCountersFor(name); return float64(tc.Misses) }, ml, tl)
}

// badBias formats a compile failure for the structured 400.
func badBias(err error) string { return fmt.Sprintf("bias block rejected: %v", err) }
