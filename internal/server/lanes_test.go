package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLanesRecognizeMatchesSolo runs /v1/recognize on a lane-enabled server
// and checks the tentpole determinism claim at the HTTP boundary: every
// transcript is identical to the sequential solo path, and the lane churn
// shows up under the unfold_lane_* instruments.
func TestLanesRecognizeMatchesSolo(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1, Lanes: 3})
	defer s.DrainModel(DefaultModel)
	sys := getSystem(t)

	var req recognizeRequest
	for _, u := range sys.TestSet() {
		req.Utterances = append(req.Utterances, utteranceRequest{Frames: u.Frames})
	}
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("recognize: %d %s", rec.Code, rec.Body.String())
	}
	var resp recognizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(sys.TestSet()) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(sys.TestSet()))
	}
	for i, u := range sys.TestSet() {
		want, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Results[i].Words; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("utt %d: lane server words %v != sequential %v", i, got, want)
		}
		if resp.Results[i].Error != "" {
			t.Errorf("utt %d: unexpected error %q", i, resp.Results[i].Error)
		}
	}
	if resp.Throughput.FramesPerSec <= 0 {
		t.Errorf("throughput not populated: %+v", resp.Throughput)
	}

	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	metricsOut := mrec.Body.String()
	n := float64(len(sys.TestSet()))
	if v := metricValue(metricsOut, "unfold_lane_joins_total"); v != n {
		t.Errorf("unfold_lane_joins_total = %g, want %g", v, n)
	}
	if v := metricValue(metricsOut, "unfold_lane_drains_total"); v != n {
		t.Errorf("unfold_lane_drains_total = %g, want %g", v, n)
	}
	if v := metricValue(metricsOut, "unfold_lane_active"); v != 0 {
		t.Errorf("unfold_lane_active = %g, want 0 after the batch drained", v)
	}
}

// TestLanesStreamMixedWithBatch drives a chunked /v1/stream while a batch
// /v1/recognize lands mid-utterance on the same lane group — continuous
// batching through the HTTP frontend. Both must come out byte-identical to
// their solo references, and the group must drain to lane_active 0.
func TestLanesStreamMixedWithBatch(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1, Lanes: 2})
	defer s.DrainModel(DefaultModel)
	sys := getSystem(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	frames := sys.TestSet()[0].Frames
	want, err := sys.Recognize(frames)
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	enc := json.NewEncoder(pw)
	half := len(frames) / 2
	go enc.Encode(streamChunk{Frames: frames[:half]})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	readUpdate := func() streamUpdate {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var up streamUpdate
		if err := json.Unmarshal(sc.Bytes(), &up); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return up
	}

	up := readUpdate()
	if up.Final || up.Frames != half {
		t.Errorf("first update: final=%v frames=%d, want partial at %d", up.Final, up.Frames, half)
	}

	// The stream holds one lane; the batch joins the other mid-utterance.
	var breq recognizeRequest
	for _, u := range sys.TestSet()[1:] {
		breq.Utterances = append(breq.Utterances, utteranceRequest{Frames: u.Frames})
	}
	body, _ := json.Marshal(breq)
	bres, err := http.Post(ts.URL+"/v1/recognize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bbody, _ := io.ReadAll(bres.Body)
	bres.Body.Close()
	if bres.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream recognize: %d %s", bres.StatusCode, bbody)
	}
	var brsp recognizeResponse
	if err := json.Unmarshal(bbody, &brsp); err != nil {
		t.Fatal(err)
	}
	for i, u := range sys.TestSet()[1:] {
		bwant, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if got := brsp.Results[i].Words; fmt.Sprint(got) != fmt.Sprint(bwant) {
			t.Errorf("batch utt %d: lane server words %v != sequential %v", i, got, bwant)
		}
	}

	// Second half, then EOF to finalize the stream.
	if err := enc.Encode(streamChunk{Frames: frames[half:]}); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	final := readUpdate()
	for !final.Final {
		final = readUpdate()
	}
	if final.Error != "" {
		t.Fatalf("final carries error: %q", final.Error)
	}
	if fmt.Sprint(final.Words) != fmt.Sprint(want) {
		t.Errorf("stream final %v != sequential %v", final.Words, want)
	}
	if final.Frames != len(frames) {
		t.Errorf("final frames = %d, want %d", final.Frames, len(frames))
	}

	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	metricsOut := string(mbody)
	if v := metricValue(metricsOut, "unfold_lane_active"); v != 0 {
		t.Errorf("unfold_lane_active = %g, want 0 after stream + batch drained", v)
	}
	joins := metricValue(metricsOut, "unfold_lane_joins_total")
	drains := metricValue(metricsOut, "unfold_lane_drains_total")
	if joins != drains || joins != float64(len(sys.TestSet())) {
		t.Errorf("lane churn joins=%g drains=%g, want both %d", joins, drains, len(sys.TestSet()))
	}
	if !strings.Contains(metricsOut, "unfold_server_requests_total") {
		t.Errorf("metrics missing request counters")
	}
}

// TestLanesModelDrainClosesScheduler checks the lifecycle seam: draining a
// lane-enabled model stops its scheduler, and a request after the drain gets
// the standard not-loaded answer rather than touching a closed scheduler.
func TestLanesModelDrainClosesScheduler(t *testing.T) {
	s := newLoadedServer(t, Config{Workers: 1, Lanes: 2})
	sys := getSystem(t)

	if err := s.DrainModel(DefaultModel); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(recognizeRequest{Utterances: []utteranceRequest{{Frames: sys.TestSet()[0].Frames}}})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/recognize", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain recognize: got %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
}
