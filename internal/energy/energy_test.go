package energy

import "testing"

func TestSRAMScaling(t *testing.T) {
	// Energy and leakage must grow monotonically with capacity.
	sizes := []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20}
	for i := 1; i < len(sizes); i++ {
		if SRAMReadPJ(sizes[i]) <= SRAMReadPJ(sizes[i-1]) {
			t.Errorf("read energy not monotone at %d bytes", sizes[i])
		}
		if SRAMLeakageMW(sizes[i]) <= SRAMLeakageMW(sizes[i-1]) {
			t.Errorf("leakage not monotone at %d bytes", sizes[i])
		}
		if SRAMAreaMM2(sizes[i]) <= SRAMAreaMM2(sizes[i-1]) {
			t.Errorf("area not monotone at %d bytes", sizes[i])
		}
	}
	// Sub-linear (sqrt) scaling: 4x capacity must cost < 4x read energy.
	if SRAMReadPJ(1<<20) >= 4*SRAMReadPJ(1<<18) {
		t.Error("read energy scaling is not sub-linear")
	}
	// Writes cost more than reads.
	if SRAMWritePJ(64<<10) <= SRAMReadPJ(64<<10) {
		t.Error("write energy should exceed read energy")
	}
}

func TestDRAMVsSRAMGap(t *testing.T) {
	// The paper's premise: a DRAM byte costs an order of magnitude more than
	// an on-chip access. A 64-byte line from DRAM vs a 64 KB SRAM read:
	dramLine := float64(64) * DRAMEnergyPerBytePJ
	sram := SRAMReadPJ(64 << 10)
	if dramLine < 10*sram {
		t.Errorf("DRAM line (%.0f pJ) not >> SRAM access (%.1f pJ)", dramLine, sram)
	}
}

func TestAreaBudget(t *testing.T) {
	// UNFOLD's SRAM inventory (Table 3) plus logic should land near the
	// paper's 21.5 mm^2.
	var a float64 = PipelineAreaMM2
	for _, kb := range []int64{256, 512, 32, 128, 64, 576, 192} {
		a += SRAMAreaMM2(kb << 10)
	}
	if a < 15 || a > 28 {
		t.Errorf("UNFOLD area model %.1f mm^2 far from paper's 21.5", a)
	}
}

func TestConversions(t *testing.T) {
	if Joules(1e12) != 1 {
		t.Error("Joules conversion wrong")
	}
	if MilliJoules(1e9) != 1 {
		t.Error("MilliJoules conversion wrong")
	}
	if LeakageJoules(1000, 2) != 2 {
		t.Errorf("LeakageJoules(1000 mW, 2 s) = %v, want 2 J", LeakageJoules(1000, 2))
	}
}

func TestGPUModelConstants(t *testing.T) {
	if GPUAvgPowerW <= 0 || GPUSpeedupVsGo <= 0 {
		t.Error("GPU model constants must be positive")
	}
}
