// Package energy provides the analytic energy, power and area models the
// accelerator simulator charges against. The paper used Synopsys Design
// Compiler (32 nm), CACTI for SRAM structures and Micron's LPDDR4 power
// model; none of those are available here, so this package substitutes
// published-magnitude analytic models with every constant in one place.
//
// All comparisons in the paper are *relative* (UNFOLD vs the fully-composed
// baseline vs a mobile GPU), and both simulated designs are charged from the
// same constants, so ratios track activity factors (cache misses, DRAM
// traffic, pipeline operations) exactly as in the paper.
package energy

import "math"

// --- SRAM (CACTI-like scaling at a 32 nm-class node) -----------------------

// SRAMReadPJ returns the energy of one read access to an SRAM array of the
// given capacity. Energy grows roughly with the square root of capacity
// (bitline/wordline length), anchored at ~5 pJ for a 32 KB array.
func SRAMReadPJ(capacityBytes int64) float64 {
	kb := float64(capacityBytes) / 1024
	return 1.0 + 0.7*math.Sqrt(kb)
}

// SRAMWritePJ returns the energy of one write access (slightly above read).
func SRAMWritePJ(capacityBytes int64) float64 { return 1.15 * SRAMReadPJ(capacityBytes) }

// SRAMLeakageMW returns the static power of an SRAM array.
func SRAMLeakageMW(capacityBytes int64) float64 {
	return 0.035 * float64(capacityBytes) / 1024
}

// SRAMAreaMM2 returns the area of an SRAM array. ~0.011 mm²/KB at 32 nm
// reproduces the paper's 21.5 mm² total for UNFOLD's ~1.8 MB of SRAM plus
// pipeline logic.
func SRAMAreaMM2(capacityBytes int64) float64 {
	return 0.011 * float64(capacityBytes) / 1024
}

// --- Pipeline logic ---------------------------------------------------------

// Per-operation dynamic energies for the accelerator datapath.
const (
	FPAddPJ      = 0.9 // one floating-point add (likelihood evaluation)
	FPCmpPJ      = 0.4 // one floating-point compare (pruning)
	PipelineOpPJ = 1.2 // generic pipeline-stage operation (issue, hash, AGU)
)

// PipelineLeakageMW is the static power of the accelerator's logic.
const PipelineLeakageMW = 18

// PipelineAreaMM2 is the area of the non-SRAM logic (issuers, FP units,
// memory controller).
const PipelineAreaMM2 = 1.9

// --- DRAM (LPDDR4-class, after Micron's power model) ------------------------

const (
	// DRAMEnergyPerBytePJ covers activate+read/write+IO per byte moved.
	DRAMEnergyPerBytePJ = 55
	// DRAMBackgroundMW is standby + refresh power for the 8 GB device.
	DRAMBackgroundMW = 70
)

// --- Mobile GPU reference (Tegra X1-class) ----------------------------------

// The paper measures a Tegra X1 running CUDA decoders via the board's power
// rails. We model it as a fixed average power applied to the measured
// software decode time, scaled by GPUSpeedupVsGo — the assumed speedup of a
// tuned CUDA kernel over our single-threaded Go reference on the same work.
const (
	GPUAvgPowerW   = 4.5
	GPUSpeedupVsGo = 4.0
)

// --- Aggregation helpers ------------------------------------------------------

// Joules converts picojoules to joules.
func Joules(pj float64) float64 { return pj * 1e-12 }

// MilliJoules converts picojoules to millijoules.
func MilliJoules(pj float64) float64 { return pj * 1e-9 }

// LeakageJoules returns the energy of a static power draw (mW) over a
// duration in seconds.
func LeakageJoules(mw, seconds float64) float64 { return mw * 1e-3 * seconds }
