// Disk-level and transport-level injectors for the self-healing serving
// harness (docs/ROBUSTNESS.md): in-place bundle corruption that heals, read
// faults on an io.ReaderAt seam, scheduled reload failures, and a stalled
// streaming client. Like everything in this package they are deterministic
// functions of their seed and never read global randomness.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Post-load bundle corruption (in place, reversible)

// Saboteur corrupts a file in place and can restore it — the "bundle rots
// on disk after load" fault. Because the serving mapping is MAP_SHARED, an
// in-place write is visible both to a fresh open (the reload path) and
// through the existing mapping (the resident re-verify path).
//
// Corrupt targets the container's header region (the first Window bytes):
// that deterministically fails the O(1) header CRC re-check without
// touching section payloads, so in-flight decodes over the mapping stay
// well-defined while the health check trips. Heal restores the exact
// original bytes, after which both re-verify and reload succeed again.
type Saboteur struct {
	// Path is the file to damage.
	Path string
	// Window bounds corruption to the first Window bytes (default 44 — the
	// v3 header up to, but excluding, its CRC field, so the stored checksum
	// stays intact and the mismatch is unambiguous).
	Window int

	mu       sync.Mutex
	original []byte // the bytes Corrupt overwrote, nil when healthy
	offset   int64
}

// Corrupt flips seed-chosen bits inside the window and remembers the
// originals. Corrupting an already-corrupt file is an error — Heal first.
func (s *Saboteur) Corrupt(seed int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.original != nil {
		return fmt.Errorf("faultinject: %s is already corrupted", s.Path)
	}
	window := s.Window
	if window <= 0 {
		window = 44
	}
	f, err := os.OpenFile(s.Path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < int64(window) {
		window = int(st.Size())
	}
	if window == 0 {
		return fmt.Errorf("faultinject: %s is empty", s.Path)
	}
	rng := rand.New(rand.NewSource(seed))
	off := int64(rng.Intn(window))
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	s.original = []byte{buf[0]}
	s.offset = off
	buf[0] ^= byte(1 << uint(rng.Intn(8)))
	if _, err := f.WriteAt(buf, off); err != nil {
		s.original = nil
		return err
	}
	return f.Sync()
}

// Heal restores the bytes Corrupt overwrote. Healing a healthy file is a
// no-op.
func (s *Saboteur) Heal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.original == nil {
		return nil
	}
	f, err := os.OpenFile(s.Path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(s.original, s.offset); err != nil {
		return err
	}
	s.original = nil
	return f.Sync()
}

// Corrupted reports whether the file currently carries an unhealed fault.
func (s *Saboteur) Corrupted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.original != nil
}

// ---------------------------------------------------------------------------
// Read-path faults (io.ReaderAt seam)

// FlakyReaderAt wraps an io.ReaderAt and fails the FailAt-th read — the
// transient I/O error a health check over a dying disk sees. Counters are
// atomic so one wrapper may be shared.
type FlakyReaderAt struct {
	Inner io.ReaderAt
	// FailAt, if positive, makes exactly the FailAt-th ReadAt fail.
	FailAt int64
	// Err is the error returned (default a generic injected-fault error).
	Err error

	reads atomic.Int64
}

// ReadAt implements io.ReaderAt with the scheduled failure.
func (f *FlakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if n := f.reads.Add(1); f.FailAt > 0 && n == f.FailAt {
		if f.Err != nil {
			return 0, f.Err
		}
		return 0, fmt.Errorf("faultinject: injected read fault at read %d (off %d)", n, off)
	}
	return f.Inner.ReadAt(p, off)
}

// Reads reports how many ReadAt calls have been observed.
func (f *FlakyReaderAt) Reads() int64 { return f.reads.Load() }

// SlowReaderAt wraps an io.ReaderAt with a fixed per-read delay — the
// "disk is dragging" fault used to prove health checks stay off the decode
// hot path.
type SlowReaderAt struct {
	Inner io.ReaderAt
	Delay time.Duration
}

// ReadAt implements io.ReaderAt with the configured stall.
func (s *SlowReaderAt) ReadAt(p []byte, off int64) (int, error) {
	d := s.Delay
	if d == 0 {
		d = time.Millisecond
	}
	time.Sleep(d)
	return s.Inner.ReadAt(p, off)
}

// ---------------------------------------------------------------------------
// Reload failures (supervisor seam)

// FailReloads returns a hook for server.SupervisorConfig.ReloadHook that
// fails the first n reload attempts per model and then lets them through —
// the "replacement bundle is also broken for a while" fault that exercises
// backoff and the retry budget.
func FailReloads(n int) func(model string, attempt int) error {
	var mu sync.Mutex
	failed := map[string]int{}
	return func(model string, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		if failed[model] < n {
			failed[model]++
			return fmt.Errorf("faultinject: injected reload failure %d/%d for %s", failed[model], n, model)
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// Stalled streaming client

// StalledStream is an open connection to a /v1/stream endpoint whose client
// has gone silent: it sent one NDJSON chunk, promised more (Content-Length
// overshoots what was written), and will neither send nor read again. The
// server side sits blocked reading the request body and, once its partial
// updates fill the kernel buffers, blocked writing — exactly the client
// that pins a decoder forever on a server without watchdogs.
type StalledStream struct {
	conn net.Conn
}

// StallStream dials target (an http:// base URL), starts a streaming
// request on path carrying firstLine as its only body bytes, and returns
// the half-dead connection. Close tears it down.
func StallStream(target, path string, firstLine []byte) (*StalledStream, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		return nil, err
	}
	// Promise more body than is sent: the server's next chunk read blocks
	// until its read deadline (the stream watchdog) fires.
	req := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/x-ndjson\r\nContent-Length: %d\r\n\r\n",
		path, u.Host, len(firstLine)+1<<20)
	if _, err := conn.Write(append([]byte(req), firstLine...)); err != nil {
		conn.Close()
		return nil, err
	}
	return &StalledStream{conn: conn}, nil
}

// Close ends the stall, releasing the server-side connection.
func (s *StalledStream) Close() error { return s.conn.Close() }
