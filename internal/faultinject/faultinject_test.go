package faultinject

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// stubCache is a minimal OffsetCache for wrapper tests.
type stubCache struct{ m map[uint64]int32 }

func newStub() *stubCache { return &stubCache{m: map[uint64]int32{}} }

func (c *stubCache) Get(key uint64) (int32, bool) { v, ok := c.m[key]; return v, ok }
func (c *stubCache) Put(key uint64, idx int32)    { c.m[key] = idx }
func (c *stubCache) Reset()                       { c.m = map[uint64]int32{} }

// stubScorer returns constant finite scores so poison is attributable.
type stubScorer struct{ senones int }

func (s *stubScorer) ScoreUtterance(frames [][]float32) [][]float32 {
	out := make([][]float32, len(frames))
	for f := range frames {
		row := make([]float32, s.senones+1)
		for i := range row {
			row[i] = -1
		}
		out[f] = row
	}
	return out
}
func (s *stubScorer) FLOPsPerFrame() float64 { return 1 }
func (s *stubScorer) Name() string           { return "stub" }

// TestMutateBytesDeterministic: the same seed must produce the same
// corruption — the property that makes fault-test failures reproducible.
func TestMutateBytesDeterministic(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	for seed := int64(0); seed < 20; seed++ {
		a := MutateBytes(rand.New(rand.NewSource(seed)), data)
		b := MutateBytes(rand.New(rand.NewSource(seed)), data)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: mutations differ", seed)
		}
		if bytes.Equal(a, data) && len(a) == len(data) {
			t.Errorf("seed %d: mutation is a no-op", seed)
		}
	}
	if out := MutateBytes(rand.New(rand.NewSource(1)), nil); len(out) == 0 {
		t.Error("empty input should grow, not stay empty")
	}
}

// TestCorruptBundlePicksDeterministically: same seed, same file, same bytes.
func TestCorruptBundlePicksDeterministically(t *testing.T) {
	mk := func(t *testing.T) string {
		dir := t.TempDir()
		for _, n := range []string{"a.bin", "b.txt", "c.json"} {
			if err := os.WriteFile(filepath.Join(dir, n), []byte("content of "+n), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	d1, d2 := mk(t), mk(t)
	f1, err := CorruptBundle(d1, 7)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CorruptBundle(d2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("seed 7 corrupted %s and %s", f1, f2)
	}
	b1, _ := os.ReadFile(filepath.Join(d1, f1))
	b2, _ := os.ReadFile(filepath.Join(d2, f2))
	if !bytes.Equal(b1, b2) {
		t.Error("same seed produced different corrupted bytes")
	}
}

// TestNaNScorerInjects: poison appears at seeded positions, is NaN by
// default, and two runs with the same seed poison identically.
func TestNaNScorerInjects(t *testing.T) {
	frames := make([][]float32, 200)
	for i := range frames {
		frames[i] = []float32{0}
	}
	count := func(s *NaNScorer) int {
		var n int
		for _, row := range s.ScoreUtterance(frames) {
			for _, v := range row {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					n++
				}
			}
		}
		return n
	}
	s := &NaNScorer{Inner: &stubScorer{senones: 40}, Seed: 3}
	n1 := count(s)
	if n1 == 0 {
		t.Fatal("no poison injected over 200 frames at default rate")
	}
	s2 := &NaNScorer{Inner: &stubScorer{senones: 40}, Seed: 3}
	if n2 := count(s2); n2 != n1 {
		t.Errorf("same seed poisoned %d then %d entries", n1, n2)
	}
	inf := &NaNScorer{Inner: &stubScorer{senones: 40}, Seed: 3, Fault: FaultNegInf, Rate: 1}
	rows := inf.ScoreUtterance(frames[:5])
	var sawInf bool
	for _, row := range rows {
		for _, v := range row {
			if math.IsInf(float64(v), -1) {
				sawInf = true
			}
			if math.IsNaN(float64(v)) {
				t.Fatal("FaultNegInf injected NaN")
			}
		}
	}
	if !sawInf {
		t.Error("rate 1.0 injected nothing")
	}
	if inf.Name() != "stub+fault" || inf.FLOPsPerFrame() != 1 {
		t.Error("delegation broken")
	}
}

// TestFlakyCachePanicsOnSchedule: the PanicAt-th operation panics, once.
func TestFlakyCachePanicsOnSchedule(t *testing.T) {
	c := &FlakyCache{Inner: newStub(), PanicAt: 3}
	c.Put(1, 10)
	c.Get(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("operation 3 did not panic")
			}
		}()
		c.Get(1)
	}()
	// Past the scheduled op, the cache behaves normally again.
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Errorf("post-panic Get = %d,%v", v, ok)
	}
	if c.Ops() != 4 {
		t.Errorf("ops = %d, want 4", c.Ops())
	}
}

// TestFlakyCacheDropsWrites: every DropEvery-th Put is discarded.
func TestFlakyCacheDropsWrites(t *testing.T) {
	c := &FlakyCache{Inner: newStub(), DropEvery: 2}
	for i := uint64(0); i < 10; i++ {
		c.Put(i, int32(i))
	}
	var present int
	for i := uint64(0); i < 10; i++ {
		if _, ok := c.Get(i); ok {
			present++
		}
	}
	if present != 5 {
		t.Errorf("%d of 10 writes survived, want 5", present)
	}
}

// TestSlowCacheStalls: the scheduled stall actually takes wall time and
// values flow through unchanged.
func TestSlowCacheStalls(t *testing.T) {
	c := &SlowCache{Inner: newStub(), Delay: 5 * time.Millisecond, Every: 10}
	c.Put(9, 90)
	start := time.Now()
	for i := 0; i < 20; i++ {
		if v, ok := c.Get(9); !ok || v != 90 {
			t.Fatalf("Get = %d,%v", v, ok)
		}
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("20 gets with 2 scheduled stalls took only %v", d)
	}
}
