// Package faultinject provides deterministic, seedable fault injectors for
// the robustness test harness: byte-level bundle corruption, scorer NaN/Inf
// bursts, and cache-layer failures (panics, dropped writes, slow lookups).
//
// Every injector is a pure function of its seed, so a failing fault test
// reproduces with the same seed — the injectors never read global
// randomness or the clock. They exist to prove the fault-tolerance
// contract: every injected fault must surface as a typed error or a
// recovered result, never an escaped panic or a hung batch.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/acoustic"
	"repro/internal/decoder"
)

// ---------------------------------------------------------------------------
// Byte-level corruption (model bundles, serialized graphs)

// MutateBytes returns a corrupted copy of data: one of bit-flip, byte
// overwrite, truncation, zero-run, or growth, chosen and placed by rng.
// Empty input grows by a few random bytes.
func MutateBytes(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return randBytes(rng, rng.Intn(16)+1)
	}
	switch rng.Intn(5) {
	case 0: // single bit flip
		i := rng.Intn(len(out))
		out[i] ^= 1 << uint(rng.Intn(8))
	case 1: // byte overwrite
		out[rng.Intn(len(out))] = byte(rng.Intn(256))
	case 2: // truncation
		out = out[:rng.Intn(len(out))]
	case 3: // zero a run
		i := rng.Intn(len(out))
		n := rng.Intn(len(out)-i) + 1
		for j := i; j < i+n; j++ {
			out[j] = 0
		}
	default: // append garbage
		out = append(out, randBytes(rng, rng.Intn(64)+1)...)
	}
	return out
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// CorruptFile rewrites path with a seed-determined mutation of its
// contents.
func CorruptFile(path string, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	return os.WriteFile(path, MutateBytes(rng, data), 0o644)
}

// CorruptBundle corrupts one seed-chosen regular file inside a model-bundle
// directory and reports which file it hit. Directory listing order is
// normalized, so the same seed always corrupts the same file the same way.
func CorruptBundle(dir string, seed int64) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("faultinject: no regular files in %s", dir)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	name := names[rng.Intn(len(names))]
	if err := CorruptFile(filepath.Join(dir, name), rng.Int63()); err != nil {
		return "", err
	}
	return name, nil
}

// ---------------------------------------------------------------------------
// Scorer faults (NaN / Inf bursts)

// ScoreFault selects the poison value a NaNScorer injects.
type ScoreFault int

const (
	// FaultNaN injects IEEE NaN — the classic "untrained frame" failure.
	FaultNaN ScoreFault = iota
	// FaultPosInf injects +Inf (an impossibly good score).
	FaultPosInf
	// FaultNegInf injects -Inf (an impossibly bad score).
	FaultNegInf
)

func (f ScoreFault) value() float32 {
	switch f {
	case FaultPosInf:
		return float32(math.Inf(1))
	case FaultNegInf:
		return float32(math.Inf(-1))
	default:
		return float32(math.NaN())
	}
}

// NaNScorer wraps an acoustic.Scorer and poisons a seed-determined subset
// of score entries with NaN or Inf bursts — the fault a numerically
// misbehaving acoustic model feeds the search. Like all scorers it is not
// safe for concurrent use.
type NaNScorer struct {
	Inner acoustic.Scorer
	// Rate is the per-frame probability of starting a burst (default 0.05).
	Rate float64
	// Burst is how many consecutive senone entries a burst poisons
	// (default 8).
	Burst int
	// Fault selects the poison value.
	Fault ScoreFault
	// Seed makes the injection deterministic per scorer instance.
	Seed int64
}

// ScoreUtterance scores via the wrapped scorer, then applies the poison
// schedule (acoustic.Scorer interface).
func (s *NaNScorer) ScoreUtterance(frames [][]float32) [][]float32 {
	out := s.Inner.ScoreUtterance(frames)
	rate := s.Rate
	if rate == 0 {
		rate = 0.05
	}
	burst := s.Burst
	if burst == 0 {
		burst = 8
	}
	rng := rand.New(rand.NewSource(s.Seed))
	poison := s.Fault.value()
	for _, row := range out {
		if rng.Float64() >= rate || len(row) < 2 {
			continue
		}
		start := rng.Intn(len(row)-1) + 1 // senone IDs are 1-based
		for i := start; i < start+burst && i < len(row); i++ {
			row[i] = poison
		}
	}
	return out
}

// FLOPsPerFrame delegates to the wrapped scorer (acoustic.Scorer interface).
func (s *NaNScorer) FLOPsPerFrame() float64 { return s.Inner.FLOPsPerFrame() }

// Name labels the scorer in reports (acoustic.Scorer interface).
func (s *NaNScorer) Name() string { return s.Inner.Name() + "+fault" }

// ---------------------------------------------------------------------------
// Cache faults (offset-lookup layer)

// FlakyCache wraps a decoder.OffsetCache with failure modes: a one-shot
// panic after a fixed number of operations (exercising worker panic
// isolation) and periodic dropped writes (exercising the invariant that
// cache contents never change results). Counters are atomic so one
// FlakyCache may be shared across pool workers.
type FlakyCache struct {
	Inner decoder.OffsetCache
	// PanicAt, if positive, makes exactly the PanicAt-th operation panic.
	PanicAt int64
	// DropEvery, if positive, silently discards every DropEvery-th Put.
	DropEvery int64

	ops  atomic.Int64
	puts atomic.Int64
}

// Get implements decoder.OffsetCache, panicking on the scheduled operation.
func (c *FlakyCache) Get(key uint64) (int32, bool) {
	c.tick()
	return c.Inner.Get(key)
}

// Put implements decoder.OffsetCache, dropping scheduled writes.
func (c *FlakyCache) Put(key uint64, idx int32) {
	c.tick()
	if c.DropEvery > 0 && c.puts.Add(1)%c.DropEvery == 0 {
		return
	}
	c.Inner.Put(key, idx)
}

// Reset implements decoder.OffsetCache.
func (c *FlakyCache) Reset() { c.Inner.Reset() }

// Ops reports how many cache operations have been observed.
func (c *FlakyCache) Ops() int64 { return c.ops.Load() }

func (c *FlakyCache) tick() {
	if n := c.ops.Add(1); c.PanicAt > 0 && n == c.PanicAt {
		panic(fmt.Sprintf("faultinject: injected cache failure at op %d", n))
	}
}

// SlowCache wraps a decoder.OffsetCache and sleeps on a fixed schedule —
// the "stuck worker" fault used to prove cancellation still returns
// promptly when decode work drags.
type SlowCache struct {
	Inner decoder.OffsetCache
	// Delay is the sleep applied every Every-th Get (default 1ms / 100).
	Delay time.Duration
	Every int64

	gets atomic.Int64
}

// Get implements decoder.OffsetCache with scheduled stalls.
func (c *SlowCache) Get(key uint64) (int32, bool) {
	every := c.Every
	if every == 0 {
		every = 100
	}
	if c.gets.Add(1)%every == 0 {
		d := c.Delay
		if d == 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
	return c.Inner.Get(key)
}

// Put implements decoder.OffsetCache.
func (c *SlowCache) Put(key uint64, idx int32) { c.Inner.Put(key, idx) }

// Reset implements decoder.OffsetCache.
func (c *SlowCache) Reset() { c.Inner.Reset() }
