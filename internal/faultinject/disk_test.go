package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSaboteurCorruptHeal proves the corrupt/heal cycle is exact: the same
// seed damages the same byte, the damage is confined to the window, and
// Heal restores the original file bit-for-bit.
func TestSaboteurCorruptHeal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle")
	orig := bytes.Repeat([]byte{0xAB}, 256)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	sab := &Saboteur{Path: path, Window: 44}

	if sab.Corrupted() {
		t.Fatal("fresh saboteur reports corrupted")
	}
	if err := sab.Corrupt(7); err != nil {
		t.Fatal(err)
	}
	if !sab.Corrupted() {
		t.Fatal("Corrupt did not mark the file corrupted")
	}
	damaged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range orig {
		if damaged[i] != orig[i] {
			diffs++
			if i >= 44 {
				t.Errorf("corruption at offset %d, outside the 44-byte window", i)
			}
		}
	}
	if diffs != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diffs)
	}

	// Double-corrupt is refused; the original bytes must not be lost.
	if err := sab.Corrupt(8); err == nil {
		t.Error("second Corrupt without Heal succeeded")
	}

	if err := sab.Heal(); err != nil {
		t.Fatal(err)
	}
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, orig) {
		t.Error("Heal did not restore the original bytes")
	}
	if sab.Corrupted() {
		t.Error("healed saboteur still reports corrupted")
	}
	// Healing a healthy file is a no-op.
	if err := sab.Heal(); err != nil {
		t.Error(err)
	}

	// Determinism: the same seed flips the same byte again.
	if err := sab.Corrupt(7); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(path)
	if !bytes.Equal(again, damaged) {
		t.Error("same seed produced different corruption")
	}
}

// TestFlakyAndSlowReaders exercises the io.ReaderAt wrappers: the scheduled
// failure fires exactly once at the configured read, and the slow wrapper
// still returns correct bytes.
func TestFlakyAndSlowReaders(t *testing.T) {
	base := bytes.NewReader([]byte("0123456789"))
	custom := errors.New("disk on fire")
	fr := &FlakyReaderAt{Inner: base, FailAt: 2, Err: custom}

	buf := make([]byte, 4)
	if _, err := fr.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := fr.ReadAt(buf, 0); !errors.Is(err, custom) {
		t.Fatalf("read 2: %v, want the injected error", err)
	}
	if _, err := fr.ReadAt(buf, 2); err != nil || string(buf) != "2345" {
		t.Fatalf("read 3: %q %v", buf, err)
	}
	if fr.Reads() != 3 {
		t.Errorf("reads %d, want 3", fr.Reads())
	}

	sr := &SlowReaderAt{Inner: base, Delay: 5 * time.Millisecond}
	start := time.Now()
	if _, err := sr.ReadAt(buf, 6); err != nil || string(buf) != "6789" {
		t.Fatalf("slow read: %q %v", buf, err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("slow read returned before its delay")
	}
}

// TestFailReloads checks the reload-hook factory fails exactly the first n
// attempts per model, independently across models.
func TestFailReloads(t *testing.T) {
	hook := FailReloads(2)
	for attempt := 1; attempt <= 2; attempt++ {
		if err := hook("a", attempt); err == nil {
			t.Errorf("a attempt %d should fail", attempt)
		}
	}
	if err := hook("a", 3); err != nil {
		t.Errorf("a attempt 3: %v", err)
	}
	// A different model has its own budget.
	if err := hook("b", 1); err == nil {
		t.Error("b attempt 1 should fail")
	}
}
