package compress

import (
	"bytes"
	"testing"

	"repro/internal/wfst"
)

func encodeTestAM(t *testing.T) *AM {
	t.Helper()
	tk := buildTestTask(t, 11)
	c, err := EncodeAM(tk.AM.G, trainQ(t, tk.AM.G))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func encodeTestLM(t *testing.T) *LM {
	t.Helper()
	tk := buildTestTask(t, 11)
	gr, err := tk.LM.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	gr.G.SortByInput()
	c, err := EncodeLM(gr, trainQ(t, gr.G))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAMSerialRoundTrip(t *testing.T) {
	c := encodeTestAM(t)
	var buf bytes.Buffer
	if err := WriteAM(c, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAM(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Start() != c.Start() || got.NumStates() != c.NumStates() || got.NumArcs() != c.NumArcs() {
		t.Fatalf("shape changed: %d/%d/%d vs %d/%d/%d",
			got.Start(), got.NumStates(), got.NumArcs(), c.Start(), c.NumStates(), c.NumArcs())
	}
	if got.ShortArcs != c.ShortArcs || got.NormalArcs != c.NormalArcs {
		t.Fatal("format mix changed")
	}
	if !wfst.Equal(got.Decompress(), c.Decompress()) {
		t.Fatal("round trip changed the decompressed transducer")
	}
	// Re-serialization is byte-identical: the write is a pure function of
	// the model, which the CI format-compat job relies on.
	var buf2 bytes.Buffer
	if err := WriteAM(got, &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization differs")
	}
}

func TestLMSerialRoundTrip(t *testing.T) {
	c := encodeTestLM(t)
	var buf bytes.Buffer
	if err := WriteLM(c, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLM(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.V != c.V || got.NumStates() != c.NumStates() || got.NumArcs() != c.NumArcs() {
		t.Fatal("shape changed")
	}
	if !wfst.Equal(got.Decompress(), c.Decompress()) {
		t.Fatal("round trip changed the decompressed transducer")
	}
	for s := wfst.StateID(0); int(s) < got.NumStates(); s++ {
		if got.StateBitOffset(s) != c.StateBitOffset(s) {
			t.Fatalf("state %d bit offset changed", s)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteLM(got, &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization differs")
	}
}

// TestSerialAliasesInput confirms the read models decode through the caller's
// buffer rather than a copy — the property that makes packed sections free to
// keep resident when the bundle is mapped.
func TestSerialAliasesInput(t *testing.T) {
	c := encodeTestAM(t)
	var buf bytes.Buffer
	if err := WriteAM(c, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got, err := ReadAM(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The arc stream is the trailing dataLen bytes of the payload; it must
	// share backing storage with raw, not be a copy.
	stream := got.data.Bytes()
	if len(stream) == 0 || &stream[0] != &raw[len(raw)-len(stream)] {
		t.Fatal("arc stream does not alias the input buffer")
	}
}

// TestSerialRejectsCorruption sweeps truncations and targeted field
// corruption; every case must fail with an error, never panic.
func TestSerialRejectsCorruption(t *testing.T) {
	am := encodeTestAM(t)
	lmc := encodeTestLM(t)
	var amBuf, lmBuf bytes.Buffer
	if err := WriteAM(am, &amBuf); err != nil {
		t.Fatal(err)
	}
	if err := WriteLM(lmc, &lmBuf); err != nil {
		t.Fatal(err)
	}

	for name, run := range map[string]func([]byte) error{
		"am": func(b []byte) error { _, err := ReadAM(b); return err },
		"lm": func(b []byte) error { _, err := ReadLM(b); return err },
	} {
		raw := amBuf.Bytes()
		if name == "lm" {
			raw = lmBuf.Bytes()
		}
		for n := 0; n < len(raw); n += 13 {
			if err := run(raw[:n:n]); err == nil {
				t.Errorf("%s: truncation to %d bytes accepted", name, n)
			}
		}
		// Trailing garbage.
		if err := run(append(append([]byte(nil), raw...), 0xAB)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
		// Absurd centroid count.
		bad := append([]byte(nil), raw...)
		bad[0], bad[1] = 0xFF, 0xFF
		if err := run(bad); err == nil {
			t.Errorf("%s: oversized centroid count accepted", name)
		}
	}

	// AM: corrupt a state bit offset so the verification decode must catch it.
	raw := append([]byte(nil), amBuf.Bytes()...)
	stateTable := 4 + 4*len(am.Q.Centroids) + 4 + 4 + 8 + 8
	last := stateTable + (am.NumStates()-1)*16
	raw[last+7] = 0xFF // top byte of the final state's bitOff
	if _, err := ReadAM(raw); err == nil {
		t.Error("am: corrupt state offset accepted")
	}

	// LM: corrupt a state offset; the exact-extent check must catch it.
	raw = append([]byte(nil), lmBuf.Bytes()...)
	stateTable = 4 + 4*len(lmc.Q.Centroids) + 4 + 4 + 8
	raw[stateTable+16] ^= 0x01 // state 1 bitOff
	if _, err := ReadLM(raw); err == nil {
		t.Error("lm: corrupt state offset accepted")
	}
}
