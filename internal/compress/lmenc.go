package compress

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/lm"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// LM arc formats (Section 3.4):
//
//   - state 0 (unigram state): one arc per vocabulary word in word-ID order;
//     the destination is implied (state = word ID), so only the 6-bit weight
//     index is stored.
//   - other states: fixed-width 45-bit arcs (18-bit word, 21-bit destination,
//     6-bit weight), sorted by word ID for binary search, followed by one
//     27-bit back-off arc (21-bit destination, 6-bit weight) stored last,
//     exactly as the paper lays it out.
const (
	lmWordBits = 18
	lmDestBits = 21

	lmUnigramBits = WeightBits                           // 6
	lmNgramBits   = lmWordBits + lmDestBits + WeightBits // 45
	lmBackoffBits = lmDestBits + WeightBits              // 27
)

type lmState struct {
	bitOff     uint64
	narcs      uint32 // word arcs only (excludes the back-off arc)
	hasBackoff bool
	final      semiring.Weight
}

// LM is the compressed language-model transducer. It supports the two
// hardware access patterns: O(1) unigram fetch by word ID and binary search
// over a state's fixed-width arcs with a terminal back-off fetch.
type LM struct {
	Q      *Quantizer
	V      int
	states []lmState
	data   *bitpack.Reader
	nArcs  int
}

// EncodeLM compresses an LM graph built by lm.Model.BuildGraph, relying on
// its state-numbering invariants (state 0 = unigram state with one arc per
// word in order; every other state has a back-off arc).
func EncodeLM(gr *lm.Graph, q *Quantizer) (*LM, error) {
	g := gr.G
	if g.NumStates() >= 1<<lmDestBits {
		return nil, fmt.Errorf("compress: LM has %d states, format limit %d", g.NumStates(), 1<<lmDestBits)
	}
	if gr.V >= 1<<lmWordBits {
		return nil, fmt.Errorf("compress: vocabulary %d exceeds %d bits", gr.V, lmWordBits)
	}
	c := &LM{Q: q, V: gr.V, states: make([]lmState, g.NumStates()), nArcs: g.NumArcs()}
	var w bitpack.Writer

	// State 0: verify and encode the unigram layout.
	arcs0 := g.Arcs(0)
	if len(arcs0) != gr.V {
		return nil, fmt.Errorf("compress: state 0 has %d arcs, want %d", len(arcs0), gr.V)
	}
	c.states[0] = lmState{bitOff: 0, narcs: uint32(gr.V), final: g.Final(0)}
	for i, a := range arcs0 {
		if a.In != int32(i+1) || a.Next != wfst.StateID(i+1) {
			return nil, fmt.Errorf("compress: state 0 arc %d violates the unigram layout", i)
		}
		w.WriteBits(uint64(q.Encode(a.W)), lmUnigramBits)
	}

	for s := wfst.StateID(1); int(s) < g.NumStates(); s++ {
		rec := lmState{bitOff: w.Len(), final: g.Final(s)}
		var backoff *wfst.Arc
		for _, a := range g.Arcs(s) {
			if a.In == wfst.Epsilon {
				if backoff != nil {
					return nil, fmt.Errorf("compress: state %d has two back-off arcs", s)
				}
				bo := a
				backoff = &bo
				continue
			}
			w.WriteBits(uint64(uint32(a.In)), lmWordBits)
			w.WriteBits(uint64(uint32(a.Next)), lmDestBits)
			w.WriteBits(uint64(q.Encode(a.W)), WeightBits)
			rec.narcs++
		}
		if backoff == nil {
			return nil, fmt.Errorf("compress: state %d lacks a back-off arc", s)
		}
		w.WriteBits(uint64(uint32(backoff.Next)), lmDestBits)
		w.WriteBits(uint64(q.Encode(backoff.W)), WeightBits)
		rec.hasBackoff = true
		c.states[s] = rec
	}
	c.data = bitpack.NewReader(w.Bytes())
	return c, nil
}

// NumStates returns the state count.
func (c *LM) NumStates() int { return len(c.states) }

// NumArcs returns the arc count including back-off arcs.
func (c *LM) NumArcs() int { return c.nArcs }

// Final returns the final (end-of-sentence) weight of s.
func (c *LM) Final(s wfst.StateID) semiring.Weight { return c.states[s].final }

// NumWordArcs returns the number of word-labelled arcs at s.
func (c *LM) NumWordArcs(s wfst.StateID) int { return int(c.states[s].narcs) }

// arcAt decodes word arc i of state s (s > 0).
func (c *LM) arcAt(s wfst.StateID, i uint32) (word int32, dest wfst.StateID, wIdx uint8, bitOff uint64) {
	bitOff = c.states[s].bitOff + uint64(i)*lmNgramBits
	word = int32(c.data.ReadBits(bitOff, lmWordBits))
	dest = wfst.StateID(c.data.ReadBits(bitOff+lmWordBits, lmDestBits))
	wIdx = uint8(c.data.ReadBits(bitOff+lmWordBits+lmDestBits, WeightBits))
	return
}

// FindArc performs the hardware Arc Issuer's lookup at state s for word.
// For state 0 it is a direct index (the unigram trick); otherwise a binary
// search over the fixed-width arcs. probe, if non-nil, receives the bit
// offset of every arc record touched — the accelerator turns these into
// LM Arc Cache accesses.
func (c *LM) FindArc(s wfst.StateID, word int32, probe func(bitOff uint64, bits uint)) (wfst.Arc, bool) {
	if word < 1 || int(word) > c.V {
		return wfst.Arc{}, false
	}
	if s == 0 {
		off := uint64(word-1) * lmUnigramBits
		if probe != nil {
			probe(off, lmUnigramBits)
		}
		wIdx := uint8(c.data.ReadBits(off, lmUnigramBits))
		return wfst.Arc{In: word, Out: word, W: c.Q.Decode(wIdx), Next: wfst.StateID(word)}, true
	}
	lo, hi := uint32(0), c.states[s].narcs
	for lo < hi {
		mid := (lo + hi) / 2
		wd, dest, wIdx, off := c.arcAt(s, mid)
		if probe != nil {
			probe(off, lmNgramBits)
		}
		switch {
		case wd == word:
			return wfst.Arc{In: word, Out: word, W: c.Q.Decode(wIdx), Next: dest}, true
		case wd < word:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return wfst.Arc{}, false
}

// BackoffArc returns state s's back-off arc; ok is false at the unigram
// state. probe reports the fetch like FindArc.
func (c *LM) BackoffArc(s wfst.StateID, probe func(bitOff uint64, bits uint)) (wfst.Arc, bool) {
	if s == 0 || !c.states[s].hasBackoff {
		return wfst.Arc{}, false
	}
	off := c.states[s].bitOff + uint64(c.states[s].narcs)*lmNgramBits
	if probe != nil {
		probe(off, lmBackoffBits)
	}
	dest := wfst.StateID(c.data.ReadBits(off, lmDestBits))
	wIdx := uint8(c.data.ReadBits(off+lmDestBits, WeightBits))
	return wfst.Arc{In: wfst.Epsilon, Out: wfst.Epsilon, W: c.Q.Decode(wIdx), Next: dest}, true
}

// StateBitOffset exposes the arc-stream address of s for the accelerator.
func (c *LM) StateBitOffset(s wfst.StateID) uint64 { return c.states[s].bitOff }

// ArcAtOffset decodes the 45-bit n-gram arc at an absolute bit offset —
// the fetch performed after an Offset Lookup Table hit, which skips the
// binary search entirely.
func (c *LM) ArcAtOffset(bitOff uint64) wfst.Arc {
	word := int32(c.data.ReadBits(bitOff, lmWordBits))
	dest := wfst.StateID(c.data.ReadBits(bitOff+lmWordBits, lmDestBits))
	wIdx := uint8(c.data.ReadBits(bitOff+lmWordBits+lmDestBits, WeightBits))
	return wfst.Arc{In: word, Out: word, W: c.Q.Decode(wIdx), Next: dest}
}

// UnigramBitOffset returns the bit offset of word's unigram arc (state 0).
func (c *LM) UnigramBitOffset(word int32) uint64 {
	return uint64(word-1) * lmUnigramBits
}

// FindArcLinear is the linear-scan lookup the paper reports as a 10x
// slowdown; kept as the ablation baseline. probe reports every arc fetched.
func (c *LM) FindArcLinear(s wfst.StateID, word int32, probe func(bitOff uint64, bits uint)) (wfst.Arc, bool) {
	if word < 1 || int(word) > c.V {
		return wfst.Arc{}, false
	}
	if s == 0 {
		return c.FindArc(s, word, probe)
	}
	for i := uint32(0); i < c.states[s].narcs; i++ {
		wd, dest, wIdx, off := c.arcAt(s, i)
		if probe != nil {
			probe(off, lmNgramBits)
		}
		if wd == word {
			return wfst.Arc{In: word, Out: word, W: c.Q.Decode(wIdx), Next: dest}, true
		}
		if wd > word {
			return wfst.Arc{}, false
		}
	}
	return wfst.Arc{}, false
}

// Decompress reconstructs the LM WFST with quantized weights, arcs
// input-sorted (back-off arc first, as the in-memory convention has it).
func (c *LM) Decompress() *wfst.WFST {
	b := wfst.NewBuilder()
	for range c.states {
		b.AddState()
	}
	b.SetStart(0)
	for s := wfst.StateID(0); int(s) < len(c.states); s++ {
		if !semiring.IsZero(c.states[s].final) {
			b.SetFinal(s, c.states[s].final)
		}
		if s == 0 {
			for wd := int32(1); wd <= int32(c.V); wd++ {
				a, _ := c.FindArc(0, wd, nil)
				b.AddArc(0, a)
			}
			continue
		}
		if bo, ok := c.BackoffArc(s, nil); ok {
			b.AddArc(s, bo)
		}
		for i := uint32(0); i < c.states[s].narcs; i++ {
			wd, dest, wIdx, _ := c.arcAt(s, i)
			b.AddArc(s, wfst.Arc{In: wd, Out: wd, W: c.Q.Decode(wIdx), Next: dest})
		}
	}
	g := b.MustBuild()
	g.SortByInput()
	return g
}

// SizeBytes reports the compressed footprint: 8-byte state records, packed
// arcs, centroid table.
func (c *LM) SizeBytes() int64 {
	var bits int64 = int64(c.V) * lmUnigramBits
	for _, s := range c.states[1:] {
		bits += int64(s.narcs) * lmNgramBits
		if s.hasBackoff {
			bits += lmBackoffBits
		}
	}
	return int64(len(c.states))*8 + (bits+7)/8 + c.Q.TableBytes()
}
