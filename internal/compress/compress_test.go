package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lm"
	"repro/internal/semiring"
	"repro/internal/task"
	"repro/internal/wfst"
)

func buildTestTask(t testing.TB, seed int64) *task.Task {
	t.Helper()
	tk, err := task.Build(task.Spec{
		Name:           "cmp-test",
		Vocab:          30,
		Phones:         12,
		TrainSentences: 250,
		TestUtterances: 2,
		LMMinCount:     2,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func trainQ(t testing.TB, g *wfst.WFST) *Quantizer {
	t.Helper()
	q, err := TrainQuantizer(CollectWeights(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// --- Quantizer -------------------------------------------------------------

func TestQuantizerBasics(t *testing.T) {
	weights := make([]semiring.Weight, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = semiring.Weight(rng.Float32() * 20)
	}
	q, err := TrainQuantizer(weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Centroids) > NumCentroids {
		t.Fatalf("%d centroids > %d", len(q.Centroids), NumCentroids)
	}
	for i := 1; i < len(q.Centroids); i++ {
		if q.Centroids[i] < q.Centroids[i-1] {
			t.Fatal("centroids not sorted")
		}
	}
	// With 64 clusters over a 20-unit range, max error must be small.
	if e := q.MaxError(weights); e > 0.5 {
		t.Errorf("max quantization error %.3f too large", e)
	}
	if q.TableBytes() > 256 {
		t.Errorf("centroid table %d bytes > 256", q.TableBytes())
	}
}

func TestQuantizerFewDistinctValues(t *testing.T) {
	weights := []semiring.Weight{1, 1, 2, 2, 3}
	q, err := TrainQuantizer(weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range weights {
		if got := q.Decode(q.Encode(w)); got != w {
			t.Errorf("Decode(Encode(%v)) = %v", w, got)
		}
	}
}

func TestQuantizerRejectsAllInfinite(t *testing.T) {
	if _, err := TrainQuantizer([]semiring.Weight{semiring.Zero}, 0); err == nil {
		t.Error("expected error for all-infinite weights")
	}
}

// Property: Encode always returns the nearest centroid.
func TestQuantizerNearestProperty(t *testing.T) {
	weights := make([]semiring.Weight, 500)
	rng := rand.New(rand.NewSource(2))
	for i := range weights {
		weights[i] = semiring.Weight(rng.NormFloat64() * 5)
	}
	q, err := TrainQuantizer(weights, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float32) bool {
		w := semiring.Weight(raw)
		if math.IsNaN(float64(raw)) || math.IsInf(float64(raw), 0) {
			return true
		}
		got := q.Decode(q.Encode(w))
		for _, c := range q.Centroids {
			d1 := math.Abs(float64(got - w))
			d2 := math.Abs(float64(semiring.Weight(c) - w))
			if d2 < d1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- AM format --------------------------------------------------------------

func TestAMRoundTrip(t *testing.T) {
	tk := buildTestTask(t, 3)
	g := tk.AM.G
	q := trainQ(t, g)
	c, err := EncodeAM(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != g.NumStates() || c.NumArcs() != g.NumArcs() {
		t.Fatalf("shape mismatch: %d/%d states, %d/%d arcs",
			c.NumStates(), g.NumStates(), c.NumArcs(), g.NumArcs())
	}
	dec := c.Decompress()
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Structure identical; weights within quantization error.
	maxErr := semiring.Weight(q.MaxError(CollectWeights(g))) + 1e-6
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		ga, da := g.Arcs(s), dec.Arcs(s)
		if len(ga) != len(da) {
			t.Fatalf("state %d: %d vs %d arcs", s, len(ga), len(da))
		}
		for i := range ga {
			if ga[i].In != da[i].In || ga[i].Out != da[i].Out || ga[i].Next != da[i].Next {
				t.Fatalf("state %d arc %d: %+v vs %+v", s, i, ga[i], da[i])
			}
			if !semiring.ApproxEqual(ga[i].W, da[i].W, maxErr) {
				t.Fatalf("state %d arc %d weight: %v vs %v", s, i, ga[i].W, da[i].W)
			}
		}
	}
}

func TestAMCompressionRatioAndMix(t *testing.T) {
	tk := buildTestTask(t, 4)
	g := tk.AM.G
	q := trainQ(t, g)
	c, err := EncodeAM(g, q)
	if err != nil {
		t.Fatal(err)
	}
	// The format's premise (Section 3.4): most AM arcs fit the 20-bit form.
	if frac := float64(c.ShortArcs) / float64(c.NumArcs()); frac < 0.7 {
		t.Errorf("short-format arcs only %.1f%%", 100*frac)
	}
	ratio := float64(g.SizeBytes()) / float64(c.SizeBytes())
	if ratio < 3 {
		t.Errorf("AM compression ratio %.2fx < 3x", ratio)
	}
	t.Logf("AM: %d -> %d bytes (%.1fx), %d short / %d normal arcs",
		g.SizeBytes(), c.SizeBytes(), ratio, c.ShortArcs, c.NormalArcs)
}

func TestAMVisitArcsOffsetsMonotone(t *testing.T) {
	tk := buildTestTask(t, 5)
	q := trainQ(t, tk.AM.G)
	c, err := EncodeAM(tk.AM.G, q)
	if err != nil {
		t.Fatal(err)
	}
	for s := wfst.StateID(0); int(s) < c.NumStates(); s++ {
		last := uint64(0)
		first := true
		c.VisitArcs(s, func(_ wfst.Arc, off uint64, bits uint) bool {
			if !first && off <= last {
				t.Fatalf("state %d: non-monotone arc offsets", s)
			}
			if bits != 20 && bits != 58 {
				t.Fatalf("state %d: arc width %d", s, bits)
			}
			first, last = false, off
			return true
		})
	}
}

func TestEncodeAMFieldOverflow(t *testing.T) {
	b := wfst.NewBuilder()
	s0 := b.AddState()
	b.SetStart(s0)
	b.SetFinal(s0, semiring.One)
	b.AddArc(s0, wfst.Arc{In: 1 << 13, Out: 0, W: 1, Next: s0}) // senone too wide
	g := b.MustBuild()
	q, _ := TrainQuantizer([]semiring.Weight{1}, 0)
	if _, err := EncodeAM(g, q); err == nil {
		t.Error("expected senone overflow error")
	}
}

// --- LM format --------------------------------------------------------------

func buildLMGraph(t testing.TB, seed int64) *lm.Graph {
	t.Helper()
	tk := buildTestTask(t, seed)
	gr, err := tk.LM.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestLMRoundTrip(t *testing.T) {
	gr := buildLMGraph(t, 6)
	q := trainQ(t, gr.G)
	c, err := EncodeLM(gr, q)
	if err != nil {
		t.Fatal(err)
	}
	dec := c.Decompress()
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	if dec.NumStates() != gr.G.NumStates() || dec.NumArcs() != gr.G.NumArcs() {
		t.Fatalf("shape mismatch after round trip")
	}
	maxErr := semiring.Weight(q.MaxError(CollectWeights(gr.G))) + 1e-6
	for s := wfst.StateID(0); int(s) < gr.G.NumStates(); s++ {
		ga, da := gr.G.Arcs(s), dec.Arcs(s)
		if len(ga) != len(da) {
			t.Fatalf("state %d arc count", s)
		}
		for i := range ga {
			if ga[i].In != da[i].In || ga[i].Next != da[i].Next {
				t.Fatalf("state %d arc %d: %+v vs %+v", s, i, ga[i], da[i])
			}
			if !semiring.ApproxEqual(ga[i].W, da[i].W, maxErr) {
				t.Fatalf("state %d arc %d weight", s, i)
			}
		}
	}
}

// FindArc on the packed LM must agree with binary search on the original.
func TestLMFindArcAgainstReference(t *testing.T) {
	gr := buildLMGraph(t, 7)
	q := trainQ(t, gr.G)
	c, err := EncodeLM(gr, q)
	if err != nil {
		t.Fatal(err)
	}
	for s := wfst.StateID(0); int(s) < gr.G.NumStates(); s++ {
		for wd := int32(1); wd <= int32(gr.V); wd++ {
			refIdx, refOK := gr.G.FindArc(s, wd, nil)
			got, ok := c.FindArc(s, wd, nil)
			if ok != refOK {
				t.Fatalf("state %d word %d: found %v want %v", s, wd, ok, refOK)
			}
			if ok {
				ref := gr.G.Arcs(s)[refIdx]
				if got.Next != ref.Next {
					t.Fatalf("state %d word %d: dest %d want %d", s, wd, got.Next, ref.Next)
				}
			}
		}
		refBo, refHas := gr.G.BackoffArc(s)
		bo, has := c.BackoffArc(s, nil)
		if has != refHas {
			t.Fatalf("state %d: backoff presence %v want %v", s, has, refHas)
		}
		if has && bo.Next != refBo.Next {
			t.Fatalf("state %d: backoff dest %d want %d", s, bo.Next, refBo.Next)
		}
	}
}

func TestLMProbesAreBounded(t *testing.T) {
	gr := buildLMGraph(t, 8)
	q := trainQ(t, gr.G)
	c, err := EncodeLM(gr, q)
	if err != nil {
		t.Fatal(err)
	}
	// Binary search probes <= ceil(log2(narcs))+1; unigram lookups = 1.
	for s := wfst.StateID(0); int(s) < c.NumStates(); s++ {
		for wd := int32(1); wd <= int32(gr.V); wd++ {
			probes := 0
			c.FindArc(s, wd, func(uint64, uint) { probes++ })
			n := c.NumWordArcs(s)
			if s == 0 {
				if probes != 1 {
					t.Fatalf("unigram lookup took %d probes", probes)
				}
				continue
			}
			bound := 1
			for 1<<bound < n+1 {
				bound++
			}
			if probes > bound+1 {
				t.Fatalf("state %d (%d arcs): %d probes > bound %d", s, n, probes, bound)
			}
		}
	}
}

func TestLMCompressionRatio(t *testing.T) {
	gr := buildLMGraph(t, 9)
	q := trainQ(t, gr.G)
	c, err := EncodeLM(gr, q)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(gr.G.SizeBytes()) / float64(c.SizeBytes())
	if ratio < 2 {
		t.Errorf("LM compression ratio %.2fx < 2x", ratio)
	}
	t.Logf("LM: %d -> %d bytes (%.1fx)", gr.G.SizeBytes(), c.SizeBytes(), ratio)
}

// --- Composed format ---------------------------------------------------------

func TestComposedRoundTripAndRatio(t *testing.T) {
	tk := buildTestTask(t, 10)
	g, err := wfst.Compose(tk.AM.G, tk.LMGraph.G, wfst.ComposeOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	g.SortByInput()
	q := trainQ(t, g)
	c, err := EncodeComposed(g, q)
	if err != nil {
		t.Fatal(err)
	}
	dec := c.Decompress()
	if dec.NumStates() != g.NumStates() || dec.NumArcs() != g.NumArcs() {
		t.Fatal("composed round trip changed shape")
	}
	maxErr := semiring.Weight(q.MaxError(CollectWeights(g))) + 1e-6
	for s := wfst.StateID(0); int(s) < g.NumStates(); s += 97 { // sample states
		ga, da := g.Arcs(s), dec.Arcs(s)
		for i := range ga {
			if ga[i].In != da[i].In || ga[i].Out != da[i].Out || ga[i].Next != da[i].Next {
				t.Fatalf("state %d arc %d mismatch", s, i)
			}
			if !semiring.ApproxEqual(ga[i].W, da[i].W, maxErr) {
				t.Fatalf("state %d arc %d weight", s, i)
			}
		}
	}
	ratio := float64(g.SizeBytes()) / float64(c.SizeBytes())
	if ratio < 2 {
		t.Errorf("composed compression ratio %.2fx < 2x", ratio)
	}
	t.Logf("composed: %s -> %s (%.1fx)",
		wfst.FormatBytes(g.SizeBytes()), wfst.FormatBytes(c.SizeBytes()), ratio)
}

// The paper's headline (Table 2): compressed on-the-fly datasets are much
// smaller than the compressed fully-composed WFST.
func TestOnTheFlyBeatsComposedCompression(t *testing.T) {
	tk := buildTestTask(t, 11)
	composed, err := wfst.Compose(tk.AM.G, tk.LMGraph.G, wfst.ComposeOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	composed.SortByInput()
	qc := trainQ(t, composed)
	cc, err := EncodeComposed(composed, qc)
	if err != nil {
		t.Fatal(err)
	}
	qa := trainQ(t, tk.AM.G)
	ca, err := EncodeAM(tk.AM.G, qa)
	if err != nil {
		t.Fatal(err)
	}
	ql := trainQ(t, tk.LMGraph.G)
	cl, err := EncodeLM(tk.LMGraph, ql)
	if err != nil {
		t.Fatal(err)
	}
	otf := ca.SizeBytes() + cl.SizeBytes()
	if otf*4 > cc.SizeBytes() {
		t.Errorf("compressed OTF %d not ≪ compressed composed %d", otf, cc.SizeBytes())
	}
	t.Logf("compressed: OTF %s vs composed %s (%.1fx)",
		wfst.FormatBytes(otf), wfst.FormatBytes(cc.SizeBytes()),
		float64(cc.SizeBytes())/float64(otf))
}
