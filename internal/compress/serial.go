package compress

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bitpack"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Serialization of the packed models — the byte layout of the v3 bundle's
// am-packed and lm-packed sections (docs/MODEL_STORE.md §4). The bitpack arc
// stream is stored verbatim; only the state table and quantizer need an
// explicit encoding, fixed-width little-endian throughout:
//
//	AM section: u32 K, K×f32 centroids, i32 start, u32 numStates,
//	            u64 shortArcs, u64 normalArcs,
//	            numStates × {u64 bitOff, u32 narcs, f32 final},
//	            u64 dataBytes, data
//	LM section: u32 K, K×f32 centroids, u32 V, u32 numStates, u64 nArcs,
//	            numStates × {u64 bitOff, u32 narcs|backoff<<31, f32 final},
//	            u64 dataBytes, data
//
// The in-memory packed state records use wider fields than the paper's
// 40-bit layout for simplicity; SizeBytes still reports the paper's figure.
// On read, the arc stream aliases the input buffer (a mapped bundle
// section), so the compressed model costs no heap beyond its state table.

// lmBackoffFlag marks hasBackoff in the serialized narcs word. Word-arc
// counts are bounded by the 18-bit vocabulary, so bit 31 is always free.
const lmBackoffFlag = uint32(1) << 31

// WriteAM serializes the packed acoustic model.
func WriteAM(c *AM, w io.Writer) error {
	bw := &binWriter{w: w}
	bw.u32(uint32(len(c.Q.Centroids)))
	for _, cent := range c.Q.Centroids {
		bw.f32(cent)
	}
	bw.u32(uint32(int32(c.start)))
	bw.u32(uint32(len(c.states)))
	bw.u64(uint64(c.ShortArcs))
	bw.u64(uint64(c.NormalArcs))
	for _, s := range c.states {
		bw.u64(s.bitOff)
		bw.u32(s.narcs)
		bw.f32(float32(s.final))
	}
	data := c.data.Bytes()
	bw.u64(uint64(len(data)))
	bw.raw(data)
	return bw.err
}

// ReadAM deserializes a packed acoustic model from a section payload. The
// arc stream aliases data, which must stay valid (and unmodified) for the
// model's lifetime. The state table is validated and the arc stream decoded
// once to confirm it is well-formed, so a successful ReadAM never panics on
// later access; the cost is O(arcs), which is why packed sections are
// parsed on demand rather than on the serving load path.
func ReadAM(data []byte) (c *AM, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("compress: am-packed decode: %v", r)
		}
	}()
	br := &binReader{buf: data}
	k := br.u32()
	if k == 0 || k > NumCentroids {
		return nil, fmt.Errorf("compress: am-packed has %d centroids, want 1..%d", k, NumCentroids)
	}
	q := &Quantizer{Centroids: make([]float32, k)}
	for i := range q.Centroids {
		q.Centroids[i] = br.f32()
	}
	c = &AM{Q: q, start: wfst.StateID(int32(br.u32()))}
	nStates := br.u32()
	shortArcs := br.u64()
	normalArcs := br.u64()
	if br.err == nil && uint64(nStates) > uint64(br.remaining())/16 {
		return nil, fmt.Errorf("compress: am-packed state count %d exceeds payload", nStates)
	}
	c.states = make([]amState, nStates)
	var prevOff uint64
	var arcTotal uint64
	for i := range c.states {
		s := amState{bitOff: br.u64(), narcs: br.u32(), final: semiring.Weight(br.f32())}
		if br.err == nil && s.bitOff < prevOff {
			return nil, fmt.Errorf("compress: am-packed state %d bit offset %d precedes previous %d", i, s.bitOff, prevOff)
		}
		prevOff = s.bitOff
		arcTotal += uint64(s.narcs)
		c.states[i] = s
	}
	dataLen := br.u64()
	stream := br.bytes(dataLen)
	if br.err != nil {
		return nil, fmt.Errorf("compress: am-packed truncated: %w", br.err)
	}
	if br.remaining() != 0 {
		return nil, fmt.Errorf("compress: am-packed has %d trailing bytes", br.remaining())
	}
	if arcTotal != shortArcs+normalArcs || arcTotal > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("compress: am-packed arc counts disagree (%d state arcs, %d+%d header)", arcTotal, shortArcs, normalArcs)
	}
	c.nArcs = int(arcTotal)
	c.ShortArcs = int(shortArcs)
	c.NormalArcs = int(normalArcs)
	c.data = bitpack.NewReader(stream)
	// Verification decode: walk every state's arcs once. ReadBits panics on
	// an out-of-range fetch; the deferred recover converts that to an error.
	var short, normal int
	for s := wfst.StateID(0); int(s) < len(c.states); s++ {
		pos := c.states[s].bitOff
		c.VisitArcs(s, func(_ wfst.Arc, _ uint64, bits uint) bool {
			if bits == amShortBits {
				short++
			} else {
				normal++
			}
			pos += uint64(bits)
			return true
		})
		if pos > c.data.Len() {
			return nil, fmt.Errorf("compress: am-packed state %d arcs run past the stream", s)
		}
	}
	if short != c.ShortArcs || normal != c.NormalArcs {
		return nil, fmt.Errorf("compress: am-packed format mix %d/%d, header says %d/%d", short, normal, c.ShortArcs, c.NormalArcs)
	}
	return c, nil
}

// WriteLM serializes the packed language model.
func WriteLM(c *LM, w io.Writer) error {
	bw := &binWriter{w: w}
	bw.u32(uint32(len(c.Q.Centroids)))
	for _, cent := range c.Q.Centroids {
		bw.f32(cent)
	}
	bw.u32(uint32(c.V))
	bw.u32(uint32(len(c.states)))
	bw.u64(uint64(c.nArcs))
	for _, s := range c.states {
		nf := s.narcs
		if s.hasBackoff {
			nf |= lmBackoffFlag
		}
		bw.u64(s.bitOff)
		bw.u32(nf)
		bw.f32(float32(s.final))
	}
	data := c.data.Bytes()
	bw.u64(uint64(len(data)))
	bw.raw(data)
	return bw.err
}

// ReadLM deserializes a packed language model from a section payload. The
// arc stream aliases data. Unlike the AM's variable-width stream, every LM
// state's extent is computable from its record (narcs×45 + 27 bits), so
// validation is exact arithmetic in O(states) and no decode pass is needed.
func ReadLM(data []byte) (*LM, error) {
	br := &binReader{buf: data}
	k := br.u32()
	if k == 0 || k > NumCentroids {
		return nil, fmt.Errorf("compress: lm-packed has %d centroids, want 1..%d", k, NumCentroids)
	}
	q := &Quantizer{Centroids: make([]float32, k)}
	for i := range q.Centroids {
		q.Centroids[i] = br.f32()
	}
	c := &LM{Q: q, V: int(br.u32())}
	nStates := br.u32()
	nArcs := br.u64()
	if br.err == nil && uint64(nStates) > uint64(br.remaining())/16 {
		return nil, fmt.Errorf("compress: lm-packed state count %d exceeds payload", nStates)
	}
	c.states = make([]lmState, nStates)
	for i := range c.states {
		off := br.u64()
		nf := br.u32()
		c.states[i] = lmState{
			bitOff:     off,
			narcs:      nf &^ lmBackoffFlag,
			hasBackoff: nf&lmBackoffFlag != 0,
			final:      semiring.Weight(br.f32()),
		}
	}
	dataLen := br.u64()
	stream := br.bytes(dataLen)
	if br.err != nil {
		return nil, fmt.Errorf("compress: lm-packed truncated: %w", br.err)
	}
	if br.remaining() != 0 {
		return nil, fmt.Errorf("compress: lm-packed has %d trailing bytes", br.remaining())
	}
	if nArcs > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("compress: lm-packed arc count %d out of range", nArcs)
	}
	c.nArcs = int(nArcs)
	c.data = bitpack.NewReader(stream)
	if nStates == 0 {
		return nil, fmt.Errorf("compress: lm-packed has no states")
	}
	if c.V < 0 || uint32(c.V) != c.states[0].narcs {
		return nil, fmt.Errorf("compress: lm-packed unigram state has %d arcs, vocabulary is %d", c.states[0].narcs, c.V)
	}
	// Exact extent check: each state's arcs must lie inside the stream and
	// start where the previous state's ended.
	want := uint64(c.V) * lmUnigramBits
	if c.states[0].bitOff != 0 || c.states[0].hasBackoff {
		return nil, fmt.Errorf("compress: lm-packed unigram state record malformed")
	}
	for i, s := range c.states[1:] {
		if s.bitOff != want {
			return nil, fmt.Errorf("compress: lm-packed state %d at bit %d, expected %d", i+1, s.bitOff, want)
		}
		want += uint64(s.narcs) * lmNgramBits
		if s.hasBackoff {
			want += lmBackoffBits
		}
	}
	if want > c.data.Len() {
		return nil, fmt.Errorf("compress: lm-packed arcs need %d bits, stream has %d", want, c.data.Len())
	}
	return c, nil
}

// binWriter writes fixed-width little-endian fields, latching the first
// error so call sites stay linear.
type binWriter struct {
	w   io.Writer
	err error
}

func (b *binWriter) raw(p []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(p)
	}
}

func (b *binWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.raw(buf[:])
}

func (b *binWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.raw(buf[:])
}

func (b *binWriter) f32(v float32) { b.u32(math.Float32bits(v)) }

// binReader reads fixed-width little-endian fields from a buffer, latching
// an error on truncation instead of panicking.
type binReader struct {
	buf []byte
	off int
	err error
}

func (b *binReader) remaining() int { return len(b.buf) - b.off }

func (b *binReader) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	if n < 0 || b.remaining() < n {
		b.err = fmt.Errorf("need %d bytes at offset %d, have %d", n, b.off, b.remaining())
		return nil
	}
	p := b.buf[b.off : b.off+n]
	b.off += n
	return p
}

func (b *binReader) u32() uint32 {
	if p := b.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (b *binReader) u64() uint64 {
	if p := b.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (b *binReader) f32() float32 { return math.Float32frombits(b.u32()) }

// bytes returns the next n bytes, aliasing the input buffer.
func (b *binReader) bytes(n uint64) []byte {
	if b.err == nil && n > uint64(b.remaining()) {
		b.err = fmt.Errorf("need %d bytes at offset %d, have %d", n, b.off, b.remaining())
		return nil
	}
	return b.take(int(n))
}
