// Package compress implements the paper's Section 3.4 dataset compression:
// 64-centroid K-means quantization of arc weights (32 -> 6 bits), the
// packed AM arc format of Figure 5 (20-bit arcs with a 2-bit destination
// tag, 58-bit arcs otherwise), the variable-width LM arc format (6-bit
// unigram arcs, 45-bit n-gram arcs, 27-bit back-off arcs), and a
// Price-et-al-style compressor for fully-composed WFSTs used as the
// Table 2 comparison baseline.
package compress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/semiring"
)

// WeightBits is the quantized weight width: 64 clusters, per the paper.
const WeightBits = 6

// NumCentroids is the K-means cluster count.
const NumCentroids = 1 << WeightBits

// Quantizer maps float32 weights to 6-bit centroid indices. The centroid
// table is the 256-byte SRAM structure the accelerator adds (Section 3.4).
type Quantizer struct {
	Centroids []float32 // sorted ascending, length <= NumCentroids
}

// TrainQuantizer runs 1-D K-means (Lloyd's algorithm with quantile
// initialization) over the finite weights. Infinite weights are excluded;
// they are represented structurally (absence of finality), not by index.
func TrainQuantizer(weights []semiring.Weight, iters int) (*Quantizer, error) {
	var vals []float64
	for _, w := range weights {
		if !semiring.IsZero(w) {
			vals = append(vals, float64(w))
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("compress: no finite weights to quantize")
	}
	sort.Float64s(vals)
	k := NumCentroids
	if k > len(vals) {
		k = len(vals)
	}
	// Quantile init.
	cents := make([]float64, k)
	for i := range cents {
		cents[i] = vals[(2*i+1)*len(vals)/(2*k)]
	}
	if iters == 0 {
		iters = 12
	}
	counts := make([]int, k)
	sums := make([]float64, k)
	for it := 0; it < iters; it++ {
		for i := range counts {
			counts[i], sums[i] = 0, 0
		}
		// vals sorted and cents sorted: sweep assignment.
		ci := 0
		for _, v := range vals {
			for ci+1 < k && math.Abs(cents[ci+1]-v) <= math.Abs(cents[ci]-v) {
				ci++
			}
			// ci may need to move back for the next value only if values
			// decreased, which they cannot (sorted), so this is safe.
			counts[ci]++
			sums[ci] += v
		}
		moved := false
		for i := range cents {
			if counts[i] > 0 {
				nc := sums[i] / float64(counts[i])
				if nc != cents[i] {
					cents[i] = nc
					moved = true
				}
			}
		}
		sort.Float64s(cents)
		ci = 0
		if !moved {
			break
		}
	}
	q := &Quantizer{Centroids: make([]float32, k)}
	for i, c := range cents {
		q.Centroids[i] = float32(c)
	}
	return q, nil
}

// Encode returns the index of the nearest centroid (binary search).
func (q *Quantizer) Encode(w semiring.Weight) uint8 {
	v := float32(w)
	lo, hi := 0, len(q.Centroids)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if q.Centroids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first centroid >= v; the best is lo or lo-1.
	if lo > 0 && v-q.Centroids[lo-1] <= q.Centroids[lo]-v {
		return uint8(lo - 1)
	}
	return uint8(lo)
}

// Decode returns the centroid value for an index.
func (q *Quantizer) Decode(idx uint8) semiring.Weight {
	return semiring.Weight(q.Centroids[idx])
}

// MaxError returns the largest quantization error over a weight sample.
func (q *Quantizer) MaxError(weights []semiring.Weight) float64 {
	var worst float64
	for _, w := range weights {
		if semiring.IsZero(w) {
			continue
		}
		e := math.Abs(float64(q.Decode(q.Encode(w)) - w))
		if e > worst {
			worst = e
		}
	}
	return worst
}

// TableBytes is the centroid SRAM table size: 64 float32 entries.
func (q *Quantizer) TableBytes() int64 { return int64(len(q.Centroids)) * 4 }
