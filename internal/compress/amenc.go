package compress

import (
	"fmt"

	"repro/internal/bitpack"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// AM arc format (paper Figure 5). Fields are written LSB-first in the order
// phoneme, weight, tag; normal-format arcs append word and destination.
const (
	amPhoneBits = 12
	amTagBits   = 2
	amWordBits  = 18
	amDestBits  = 20

	amShortBits  = amPhoneBits + WeightBits + amTagBits  // 20
	amNormalBits = amShortBits + amWordBits + amDestBits // 58

	tagNormal   = 0b00
	tagBackward = 0b01 // destination = state - 1
	tagForward  = 0b10 // destination = state + 1
	tagSelfLoop = 0b11
)

// amState is the per-state record: bit offset of the first arc, arc count,
// and the final weight. AM arcs are only ever decoded sequentially
// (Section 3.4), so the stored record is just a 40-bit first-arc offset —
// the arc count is implied by the next state's offset; narcs is kept in
// memory for convenience but not counted in SizeBytes.
type amState struct {
	bitOff uint64
	narcs  uint32
	final  semiring.Weight
}

// AM is a compressed acoustic-model transducer supporting sequential
// per-state arc decoding, exactly the access pattern of the hardware Arc
// Issuer (AM arcs of a state are always explored in order, Section 3.4).
type AM struct {
	Q      *Quantizer
	start  wfst.StateID
	states []amState
	data   *bitpack.Reader
	nArcs  int
	// ShortArcs / NormalArcs report the format mix (compression analysis).
	ShortArcs, NormalArcs int
}

// EncodeAM compresses an AM transducer. It fails if any field exceeds its
// format width (senone >= 2^12, word >= 2^18, state >= 2^20).
func EncodeAM(g *wfst.WFST, q *Quantizer) (*AM, error) {
	if g.NumStates() >= 1<<amDestBits {
		return nil, fmt.Errorf("compress: AM has %d states, format limit %d", g.NumStates(), 1<<amDestBits)
	}
	var w bitpack.Writer
	c := &AM{Q: q, start: g.Start(), states: make([]amState, g.NumStates()), nArcs: g.NumArcs()}
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		c.states[s] = amState{bitOff: w.Len(), narcs: uint32(len(g.Arcs(s))), final: g.Final(s)}
		for _, a := range g.Arcs(s) {
			if a.In >= 1<<amPhoneBits {
				return nil, fmt.Errorf("compress: senone %d exceeds %d bits", a.In, amPhoneBits)
			}
			if a.Out >= 1<<amWordBits {
				return nil, fmt.Errorf("compress: word %d exceeds %d bits", a.Out, amWordBits)
			}
			tag := uint64(tagNormal)
			if a.Out == wfst.Epsilon {
				switch a.Next {
				case s:
					tag = tagSelfLoop
				case s + 1:
					tag = tagForward
				case s - 1:
					tag = tagBackward
				}
			}
			w.WriteBits(uint64(uint32(a.In)), amPhoneBits)
			w.WriteBits(uint64(q.Encode(a.W)), WeightBits)
			w.WriteBits(tag, amTagBits)
			if tag == tagNormal {
				w.WriteBits(uint64(uint32(a.Out)), amWordBits)
				w.WriteBits(uint64(uint32(a.Next)), amDestBits)
				c.NormalArcs++
			} else {
				c.ShortArcs++
			}
		}
	}
	c.data = bitpack.NewReader(w.Bytes())
	return c, nil
}

// Start returns the initial state.
func (c *AM) Start() wfst.StateID { return c.start }

// NumStates returns the state count.
func (c *AM) NumStates() int { return len(c.states) }

// NumArcs returns the arc count.
func (c *AM) NumArcs() int { return c.nArcs }

// Final returns the final weight of s.
func (c *AM) Final(s wfst.StateID) semiring.Weight { return c.states[s].final }

// ArcsBitOffset returns the bit address of state s's first arc, for the
// accelerator's address map.
func (c *AM) ArcsBitOffset(s wfst.StateID) uint64 { return c.states[s].bitOff }

// VisitArcs decodes state s's arcs sequentially, invoking visit with each
// arc, its bit offset and its encoded width. Decoding stops early if visit
// returns false. Weights are dequantized through the centroid table.
func (c *AM) VisitArcs(s wfst.StateID, visit func(a wfst.Arc, bitOff uint64, bits uint) bool) {
	pos := c.states[s].bitOff
	for i := uint32(0); i < c.states[s].narcs; i++ {
		in := int32(c.data.ReadBits(pos, amPhoneBits))
		wIdx := uint8(c.data.ReadBits(pos+amPhoneBits, WeightBits))
		tag := c.data.ReadBits(pos+amPhoneBits+WeightBits, amTagBits)
		a := wfst.Arc{In: in, W: c.Q.Decode(wIdx)}
		bits := uint(amShortBits)
		switch tag {
		case tagSelfLoop:
			a.Next = s
		case tagForward:
			a.Next = s + 1
		case tagBackward:
			a.Next = s - 1
		default:
			a.Out = int32(c.data.ReadBits(pos+amShortBits, amWordBits))
			a.Next = wfst.StateID(c.data.ReadBits(pos+amShortBits+amWordBits, amDestBits))
			bits = amNormalBits
		}
		if !visit(a, pos, bits) {
			return
		}
		pos += uint64(bits)
	}
}

// Arcs materializes state s's arcs (test/convenience path).
func (c *AM) Arcs(s wfst.StateID) []wfst.Arc {
	out := make([]wfst.Arc, 0, c.states[s].narcs)
	c.VisitArcs(s, func(a wfst.Arc, _ uint64, _ uint) bool {
		out = append(out, a)
		return true
	})
	return out
}

// Decompress reconstructs the transducer (weights quantized) — the
// round-trip oracle for tests and the input for quantized-WER checks.
func (c *AM) Decompress() *wfst.WFST {
	b := wfst.NewBuilder()
	for range c.states {
		b.AddState()
	}
	b.SetStart(c.start)
	for s := wfst.StateID(0); int(s) < len(c.states); s++ {
		if !semiring.IsZero(c.states[s].final) {
			b.SetFinal(s, c.states[s].final)
		}
		for _, a := range c.Arcs(s) {
			b.AddArc(s, a)
		}
	}
	return b.MustBuild()
}

// amStateBytes is the packed state record width: a 40-bit first-arc offset.
const amStateBytes = 5

// SizeBytes reports the compressed footprint under the paper's layout:
// 5 bytes per state record (40-bit arc offset; counts are implied by
// sequential decoding), the packed arc stream, and the centroid table.
func (c *AM) SizeBytes() int64 {
	arcBits := int64(c.ShortArcs)*amShortBits + int64(c.NormalArcs)*amNormalBits
	return int64(len(c.states))*amStateBytes + (arcBits+7)/8 + c.Q.TableBytes()
}
