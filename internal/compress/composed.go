package compress

import (
	"encoding/binary"
	"fmt"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Composed is a compressed fully-composed WFST in the style of Price et al.
// [23] — the Table 2 baseline the paper compares its on-the-fly compression
// against: 6-bit quantized weights, delta-coded input labels within a
// state's sorted arc list, zigzag-delta destinations relative to the source
// state, and varint output labels (usually epsilon).
type Composed struct {
	Q       *Quantizer
	start   wfst.StateID
	offsets []uint32 // byte offset of each state's arc block
	narcs   []uint32
	finals  []semiring.Weight
	stream  []byte
	total   int
}

// EncodeComposed compresses a fully-composed search graph. Arcs are sorted
// by input label per state as a side effect of encoding order; the graph
// itself is not modified.
func EncodeComposed(g *wfst.WFST, q *Quantizer) (*Composed, error) {
	c := &Composed{
		Q:       q,
		start:   g.Start(),
		offsets: make([]uint32, g.NumStates()),
		narcs:   make([]uint32, g.NumStates()),
		finals:  make([]semiring.Weight, g.NumStates()),
		total:   g.NumArcs(),
	}
	var buf [binary.MaxVarintLen64]byte
	stream := make([]byte, 0, g.NumArcs()*5)
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		if len(stream) > 1<<31 {
			return nil, fmt.Errorf("compress: composed stream exceeds 2 GiB")
		}
		c.offsets[s] = uint32(len(stream))
		c.narcs[s] = uint32(len(g.Arcs(s)))
		c.finals[s] = g.Final(s)
		prevIn := int32(0)
		for _, a := range g.Arcs(s) {
			if a.In < prevIn {
				return nil, fmt.Errorf("compress: state %d arcs not input-sorted", s)
			}
			n := binary.PutUvarint(buf[:], uint64(a.In-prevIn))
			stream = append(stream, buf[:n]...)
			prevIn = a.In
			n = binary.PutUvarint(buf[:], uint64(a.Out))
			stream = append(stream, buf[:n]...)
			n = binary.PutVarint(buf[:], int64(a.Next)-int64(s))
			stream = append(stream, buf[:n]...)
			stream = append(stream, byte(q.Encode(a.W)))
		}
	}
	c.stream = stream
	return c, nil
}

// Decompress reconstructs the graph with quantized weights.
func (c *Composed) Decompress() *wfst.WFST {
	b := wfst.NewBuilder()
	for range c.offsets {
		b.AddState()
	}
	b.SetStart(c.start)
	for s := wfst.StateID(0); int(s) < len(c.offsets); s++ {
		if !semiring.IsZero(c.finals[s]) {
			b.SetFinal(s, c.finals[s])
		}
		pos := int(c.offsets[s])
		prevIn := int32(0)
		for i := uint32(0); i < c.narcs[s]; i++ {
			d, n := binary.Uvarint(c.stream[pos:])
			pos += n
			in := prevIn + int32(d)
			prevIn = in
			out, n := binary.Uvarint(c.stream[pos:])
			pos += n
			dd, n := binary.Varint(c.stream[pos:])
			pos += n
			wIdx := c.stream[pos]
			pos++
			b.AddArc(s, wfst.Arc{
				In:   in,
				Out:  int32(out),
				W:    c.Q.Decode(wIdx),
				Next: wfst.StateID(int64(s) + dd),
			})
		}
	}
	g := b.MustBuild()
	g.SortByInput()
	return g
}

// NumArcs returns the arc count.
func (c *Composed) NumArcs() int { return c.total }

// SizeBytes reports the compressed footprint: a 4-byte state record (offset
// indexing à la Price's chunked state table), the varint arc stream, and
// the centroid table.
func (c *Composed) SizeBytes() int64 {
	return int64(len(c.offsets))*4 + int64(len(c.stream)) + c.Q.TableBytes()
}

// CollectWeights gathers every arc weight in a transducer — the training
// set for the K-means quantizer.
func CollectWeights(g *wfst.WFST) []semiring.Weight {
	out := make([]semiring.Weight, 0, g.NumArcs())
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		for _, a := range g.Arcs(s) {
			out = append(out, a.W)
		}
	}
	return out
}
