package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpts runs experiments at the smallest scale: Quick restricts
// multi-task experiments to the Voxforge-like task, and the scale floor
// keeps graphs small enough for fast composition.
func tinyOpts(buf *bytes.Buffer) Options {
	return Options{
		Scale:      0.05, // floors kick in: ~10-word vocabulary
		Utterances: 3,
		Quick:      true,
		Out:        buf,
	}
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	desc := Describe()
	for _, id := range ids {
		if desc[id] == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig999", Options{Out: &buf}); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// Each experiment must run end-to-end at tiny scale and produce output
// containing its header. This is the harness's integration test.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness integration test skipped in -short mode")
	}
	wantFragment := map[string]string{
		"fig1":   "Figure 1",
		"tab1":   "Table 1",
		"tab2":   "Table 2",
		"fig6":   "Figure 6",
		"fig7":   "Figure 7",
		"fig8":   "Figure 8",
		"fig9":   "Figure 9",
		"fig10":  "Figure 10",
		"fig11":  "Figure 11",
		"tab5":   "Table 5",
		"tab6":   "Table 6",
		"fig12":  "Figure 12",
		"fig13":  "Figure 13",
		"prune":  "preemptive pruning",
		"search": "arc-fetch",
		"equiv":  "Oracle",
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			opt := tinyOpts(&buf)
			if err := Run(id, opt); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := buf.String()
			if frag := wantFragment[id]; frag != "" && !strings.Contains(out, frag) {
				t.Errorf("%s output missing %q:\n%s", id, frag, out)
			}
			if len(out) < 50 {
				t.Errorf("%s produced almost no output", id)
			}
		})
	}
}

func TestQuickModeRestrictsTasks(t *testing.T) {
	quick := defaultSpecs(Options{Scale: 1, Quick: true})
	full := defaultSpecs(Options{Scale: 1})
	if len(quick) != 1 || len(full) != 4 {
		t.Errorf("quick=%d full=%d tasks", len(quick), len(full))
	}
	if quick[0].Name != "KALDI-Voxforge" {
		t.Errorf("quick mode picked %s", quick[0].Name)
	}
}

func TestBundleCachesComposition(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts(&buf).withDefaults()
	b, err := buildBundle(defaultSpecs(opt)[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := b.compose()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.compose()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("composition not cached")
	}
	if b.audioSeconds() <= 0 {
		t.Error("no audio in bundle")
	}
}
