package experiments

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/system"
)

// Fig1 reproduces Figure 1: the execution-time split between the Viterbi
// search and the acoustic scorer (GMM/DNN/RNN) in the software decoder.
// Both components are measured as real wall time of this repository's
// implementations.
func Fig1(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 1: software execution-time breakdown (Viterbi vs scorer)")
	fmt.Fprintf(opt.Out, "%-20s %-8s %12s %12s %10s\n", "Task", "Scorer", "Viterbi", "Acoustic", "Viterbi %")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		vit, _, err := b.softwareDecodeTime()
		if err != nil {
			return err
		}
		ac := b.scorerTime()
		fmt.Fprintf(opt.Out, "%-20s %-8s %12s %12s %9.1f%%\n",
			spec.Name, b.tk.Scorer.Name(), vit.Round(1e5), ac.Round(1e5),
			100*vit.Seconds()/(vit.Seconds()+ac.Seconds()))
	}
	fmt.Fprintln(opt.Out, "\nPaper: Viterbi is >78% of Kaldi time and >55% of EESEN time on a Tegra X1.")
	fmt.Fprintln(opt.Out, "Note: our miniature scorers are cheaper relative to search than production GMM/DNN/LSTM")
	fmt.Fprintln(opt.Out, "models, so the Viterbi share here is an upper-bound sanity check, not a calibrated split.")
	return nil
}

// Tab6 reproduces Table 6: the word error rate per task, decoded by the
// UNFOLD simulator (functional emulation), plus the fully-composed result
// to confirm the compression/on-the-fly machinery adds no material loss.
func Tab6(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Table 6: word error rate (%)")
	fmt.Fprintf(opt.Out, "%-20s %10s %14s %10s %12s\n",
		"Task", "UNFOLD", "FC(optimized)", "FC(exact)", "Quant delta")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		u, err := b.unfoldAccel(preemptive())
		if err != nil {
			return err
		}
		_, perU := u.DecodeAll(b.scores)
		base, err := b.baselineAccel(decoder.Config{})
		if err != nil {
			return err
		}
		_, perB := base.DecodeAll(b.scores)
		raw, err := b.compose()
		if err != nil {
			return err
		}
		exact, err := decoder.NewComposed(raw, decoder.Config{})
		if err != nil {
			return err
		}
		var wu, wb, we metrics.WERAccumulator
		for i := range b.refs {
			wu.Add(b.refs[i], perU[i].Words)
			wb.Add(b.refs[i], perB[i].Words)
			we.Add(b.refs[i], exact.Decode(b.scores[i]).Words)
		}
		fmt.Fprintf(opt.Out, "%-20s %9.2f%% %13.2f%% %9.2f%% %+11.2f\n",
			spec.Name, wu.WER(), wb.WER(), we.WER(), wu.WER()-we.WER())
	}
	fmt.Fprintln(opt.Out, "\nPaper: 22.59 (TEDLIUM-Kaldi), 10.62 (Librispeech), 13.26 (Voxforge), 27.72 (TEDLIUM-EESEN);")
	fmt.Fprintln(opt.Out, "on-the-fly + quantization changes WER by < 0.01%. FC(exact) decodes the raw composition")
	fmt.Fprintln(opt.Out, "with float weights — the quant delta isolates the 6-bit weight effect; FC(optimized) is")
	fmt.Fprintln(opt.Out, "the pushed+minimized graph the baseline accelerator ships, whose beam behaviour differs.")
	return nil
}

// Fig12 reproduces Figure 12: overall ASR decoding time per second of
// speech (scorer on the GPU model + Viterbi on each platform).
func Fig12(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 12: overall ASR decoding time per 1 s of speech (ms)")
	fmt.Fprintf(opt.Out, "%-20s %12s %12s %12s\n", "Task", "GPU-only", "Reza et al.", "UNFOLD")
	var sumG, sumB, sumU float64
	n := 0
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		audio := b.audioSeconds()
		frames := int(audio * 100)
		swVit, _, err := b.softwareDecodeTime()
		if err != nil {
			return err
		}
		gm := system.GPUModel{}
		gpuScorer := gm.ScoreSeconds(b.tk.Scorer, frames)
		gpuVit := swVit.Seconds() / energy.GPUSpeedupVsGo

		base, err := b.baselineAccel(decoder.Config{})
		if err != nil {
			return err
		}
		rb, _ := base.DecodeAll(b.scores)
		u, err := b.unfoldAccel(preemptive())
		if err != nil {
			return err
		}
		ru, _ := u.DecodeAll(b.scores)

		// GPU and accelerator work on batches in parallel (Section 5.2);
		// system.Pipeline computes the two-stage makespan.
		repB, err := system.Pipeline(gm, b.tk.Scorer, frames, 100, rb.Seconds, rb.TotalEnergyJ)
		if err != nil {
			return err
		}
		repU, err := system.Pipeline(gm, b.tk.Scorer, frames, 100, ru.Seconds, ru.TotalEnergyJ)
		if err != nil {
			return err
		}
		gpuOnly := (gpuScorer + gpuVit) / audio * 1e3
		withBase := repB.PipelineSeconds / audio * 1e3
		withUnfold := repU.PipelineSeconds / audio * 1e3
		sumG += gpuOnly
		sumB += withBase
		sumU += withUnfold
		n++
		fmt.Fprintf(opt.Out, "%-20s %12.2f %12.2f %12.2f\n", spec.Name, gpuOnly, withBase, withUnfold)
	}
	fmt.Fprintf(opt.Out, "%-20s %12.2f %12.2f %12.2f\n", "Average",
		sumG/float64(n), sumB/float64(n), sumU/float64(n))
	fmt.Fprintln(opt.Out, "\nPaper: accelerated configs are ~3.4x faster than GPU-only and within a few ms of each other.")
	return nil
}

// Fig13 reproduces Figure 13: overall ASR energy per second of speech.
func Fig13(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 13: overall ASR energy per 1 s of speech (mJ)")
	fmt.Fprintf(opt.Out, "%-20s %12s %12s %12s\n", "Task", "GPU-only", "Reza et al.", "UNFOLD")
	var sumG, sumB, sumU float64
	n := 0
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		audio := b.audioSeconds()
		frames := int(audio * 100)
		swVit, _, err := b.softwareDecodeTime()
		if err != nil {
			return err
		}
		gm := system.GPUModel{}
		gpuScorerJ := gm.ScoreEnergyJ(b.tk.Scorer, frames)
		gpuVitJ := swVit.Seconds() / energy.GPUSpeedupVsGo * energy.GPUAvgPowerW

		base, err := b.baselineAccel(decoder.Config{})
		if err != nil {
			return err
		}
		rb, _ := base.DecodeAll(b.scores)
		u, err := b.unfoldAccel(preemptive())
		if err != nil {
			return err
		}
		ru, _ := u.DecodeAll(b.scores)

		gpuOnly := (gpuScorerJ + gpuVitJ) / audio * 1e3
		withBase := (gpuScorerJ + rb.TotalEnergyJ) / audio * 1e3
		withUnfold := (gpuScorerJ + ru.TotalEnergyJ) / audio * 1e3
		sumG += gpuOnly
		sumB += withBase
		sumU += withUnfold
		n++
		fmt.Fprintf(opt.Out, "%-20s %12.2f %12.2f %12.2f\n", spec.Name, gpuOnly, withBase, withUnfold)
	}
	fmt.Fprintf(opt.Out, "%-20s %12.2f %12.2f %12.2f\n", "Average",
		sumG/float64(n), sumB/float64(n), sumU/float64(n))
	fmt.Fprintln(opt.Out, "\nPaper: both accelerated configs save ~1.5x vs GPU-only; the scorer dominates once the")
	fmt.Fprintln(opt.Out, "search is accelerated, which is why UNFOLD and the baseline look similar end-to-end.")
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
