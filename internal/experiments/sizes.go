package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/wfst"
)

// Tab1 reproduces Table 1: sizes of the individual AM and LM WFSTs versus
// the fully-composed WFST, per task. It also reports the scorer sizes
// (Figure 2's extra series).
func Tab1(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Table 1: AM / LM / fully-composed WFST sizes")
	fmt.Fprintf(opt.Out, "%-20s %12s %12s %14s %14s %10s %10s\n",
		"Task", "AM WFST", "LM WFST", "Composed", "(raw)", "Ratio", "Scorer")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		raw, err := b.compose()
		if err != nil {
			return err
		}
		composed, err := b.composeOpt()
		if err != nil {
			return err
		}
		am := b.tk.AM.G.SizeBytes()
		lm := b.tk.LMGraph.G.SizeBytes()
		comp := composed.SizeBytes()
		fmt.Fprintf(opt.Out, "%-20s %12s %12s %14s %14s %9.1fx %10s\n",
			spec.Name,
			wfst.FormatBytes(am), wfst.FormatBytes(lm), wfst.FormatBytes(comp),
			wfst.FormatBytes(raw.SizeBytes()),
			float64(comp)/float64(am+lm),
			wfst.FormatBytes(acoustic.SizeBytes(b.tk.Scorer)))
	}
	fmt.Fprintln(opt.Out, "\nPaper (MB): TEDLIUM 33/66/1090, Librispeech 40/59/496, Voxforge 2.8/2.3/37, EESEN 34/102/1226")
	fmt.Fprintln(opt.Out, "(ratios 5-11x). Composed = weight-pushed + minimized, the deployable form Kaldi ships;")
	fmt.Fprintln(opt.Out, "(raw) = the unoptimized multiplicative composition (see the `minimize` ablation).")
	return nil
}

// Tab2 reproduces Table 2: compressed dataset sizes for on-the-fly
// composition versus the compressed fully-composed WFST.
func Tab2(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Table 2: compressed WFST sizes (on-the-fly vs fully-composed)")
	fmt.Fprintf(opt.Out, "%-20s %16s %18s %10s\n", "Task", "On-the-fly+Comp", "FullyComposed+Comp", "Ratio")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		cc, err := b.composeCompressed()
		if err != nil {
			return err
		}
		otf := b.cam.SizeBytes() + b.clm.SizeBytes()
		fmt.Fprintf(opt.Out, "%-20s %16s %18s %9.1fx\n",
			spec.Name, wfst.FormatBytes(otf), wfst.FormatBytes(cc.SizeBytes()),
			float64(cc.SizeBytes())/float64(otf))
	}
	fmt.Fprintln(opt.Out, "\nPaper (MB): on-the-fly 32.39/21.32/1.33/39.35 vs fully-composed 269.78/136.82/9.38/414.28 (8.8x avg).")
	return nil
}

// Fig8 reproduces Figure 8: the four dataset configurations per task.
func Fig8(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 8: dataset sizes across configurations")
	fmt.Fprintf(opt.Out, "%-20s %14s %16s %12s %14s %8s\n",
		"Task", "FullyComposed", "FullyComp+Comp", "On-the-fly", "OnTheFly+Comp", "Total")
	var totalFC, totalOTFC int64
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		composed, err := b.composeOpt()
		if err != nil {
			return err
		}
		cc, err := b.composeCompressed()
		if err != nil {
			return err
		}
		fc := composed.SizeBytes()
		fccomp := cc.SizeBytes()
		otf := b.tk.AM.G.SizeBytes() + b.tk.LMGraph.G.SizeBytes()
		otfc := b.cam.SizeBytes() + b.clm.SizeBytes()
		totalFC += fc
		totalOTFC += otfc
		fmt.Fprintf(opt.Out, "%-20s %14s %16s %12s %14s %7.0fx\n",
			spec.Name, wfst.FormatBytes(fc), wfst.FormatBytes(fccomp),
			wfst.FormatBytes(otf), wfst.FormatBytes(otfc),
			float64(fc)/float64(otfc))
	}
	fmt.Fprintf(opt.Out, "\nOverall reduction FullyComposed -> OnTheFly+Comp: %.0fx (paper: 31x average, 23.3x-34.7x range).\n",
		float64(totalFC)/float64(totalOTFC))
	return nil
}
