package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/task"
	"repro/internal/wfst"
)

// CDep contrasts context-independent and context-dependent (left-biphone,
// tied-state) acoustic models — the "basephones, triphones..." axis the
// paper's Section 5.3 claims UNFOLD supports by swapping the AM WFST. The
// graph topology and all decoder machinery are unchanged; only the senone
// labelling and the acoustic-score vector grow.
func CDep(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Ablation: context-independent vs context-dependent acoustic models")
	fmt.Fprintf(opt.Out, "%-20s %-6s %10s %10s %12s %10s\n",
		"Task", "AM", "Senones", "AM size", "Scorer size", "WER")
	specs := defaultSpecs(opt)
	base := specs[0]
	for _, cd := range []bool{false, true} {
		spec := base
		spec.ContextDependent = cd
		spec.Name = base.Name
		tk, err := task.Build(spec)
		if err != nil {
			return err
		}
		dec, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
		if err != nil {
			return err
		}
		var acc metrics.WERAccumulator
		for _, u := range tk.Test {
			r := dec.Decode(tk.Scorer.ScoreUtterance(u.Frames))
			acc.Add(u.Words, r.Words)
		}
		kind := "CI"
		if cd {
			kind = "CD"
		}
		fmt.Fprintf(opt.Out, "%-20s %-6s %10d %10s %12s %9.2f%%\n",
			spec.Name, kind, tk.AM.NumSenones,
			wfst.FormatBytes(tk.AM.G.SizeBytes()),
			wfst.FormatBytes(acoustic.SizeBytes(tk.Scorer)),
			acc.WER())
	}
	fmt.Fprintln(opt.Out, "\nThe AM graph is byte-identical in shape; only senone labels and the")
	fmt.Fprintln(opt.Out, "acoustic-score vector change — the paper's point that the same hardware")
	fmt.Fprintln(opt.Out, "serves any acoustic model by swapping the WFSTs.")
	return nil
}
