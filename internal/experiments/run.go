package experiments

import (
	"fmt"
	"sort"
)

// registry maps experiment IDs to runners, in the paper's order.
var registry = []struct {
	ID    string
	Desc  string
	Run   func(Options) error
	Heavy bool // requires offline composition of every task
}{
	{"fig1", "Figure 1: Viterbi vs scorer execution-time split", Fig1, false},
	{"tab1", "Table 1: AM/LM/composed WFST sizes", Tab1, true},
	{"tab2", "Table 2: compressed sizes, on-the-fly vs composed", Tab2, true},
	{"fig6", "Figure 6: cache miss ratio vs capacity", Fig6, false},
	{"fig7", "Figure 7: offset lookup table size sweep", Fig7, false},
	{"fig8", "Figure 8: dataset sizes across configurations", Fig8, true},
	{"fig9", "Figure 9: search energy per second of speech", Fig9, true},
	{"fig10", "Figure 10: accelerator power breakdown", Fig10, true},
	{"fig11", "Figure 11: memory bandwidth by stream", Fig11, true},
	{"tab5", "Table 5: decode latency per utterance", Tab5, true},
	{"tab6", "Table 6: word error rate", Tab6, true},
	{"fig12", "Figure 12: overall ASR decode time", Fig12, true},
	{"fig13", "Figure 13: overall ASR energy", Fig13, true},
	{"prune", "Preemptive pruning ablation (Section 3.3)", Prune, false},
	{"search", "LM arc-fetch strategy ablation (Section 5.1)", Search, true},
	{"equiv", "On-the-fly vs composed equivalence oracle", Equiv, true},
	{"minimize", "Bisimulation minimization of the composed WFST", MinimizeExp, true},
	{"twopass", "One-pass vs two-pass on-the-fly decoding (Section 6)", TwoPassExp, false},
	{"cdep", "Context-independent vs context-dependent AM (Section 5.3)", CDep, false},
	{"tradeoff", "Cache-budget trade-off sweep (Section 4 methodology)", Tradeoff, false},
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Describe returns a map of ID to description.
func Describe() map[string]string {
	out := make(map[string]string, len(registry))
	for _, e := range registry {
		out[e.ID] = e.Desc
	}
	return out
}

// Run executes one experiment by ID, or every experiment for "all".
func Run(id string, opt Options) error {
	opt = opt.withDefaults()
	if id == "all" {
		for _, e := range registry {
			if err := e.Run(opt); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	for _, e := range registry {
		if e.ID == id {
			return e.Run(opt)
		}
	}
	known := IDs()
	sort.Strings(known)
	return fmt.Errorf("unknown experiment %q (known: %v, plus \"all\")", id, known)
}
