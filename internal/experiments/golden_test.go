package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/decoder"
	"repro/internal/pool"
	"repro/internal/task"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden decode fixtures")

// goldenScale sizes the fixture tasks: large enough that all four evaluation
// tasks exercise back-off, pruning and multi-hundred-frame utterances, small
// enough that the replay stays in unit-test budget.
const goldenScale = 0.25

const goldenUtterances = 4

// goldenUtt is one recorded decode: the exact hypothesis and its cost.
type goldenUtt struct {
	Words        []int32 `json:"words"`
	WordEnds     []int32 `json:"word_ends"`
	Cost         float64 `json:"cost"`
	ReachedFinal bool    `json:"reached_final"`
}

// goldenFile is the fixture for one (task, decoder config) pair.
type goldenFile struct {
	Task       string      `json:"task"`
	Config     string      `json:"config"`
	Utterances []goldenUtt `json:"utterances"`
}

// goldenConfigs are the decoder configurations the fixtures pin down: the
// paper's default search and its preemptive-pruning variant.
var goldenConfigs = []struct {
	name string
	cfg  decoder.Config
}{
	{"default", decoder.Config{}},
	{"preemptive", decoder.Config{PreemptivePruning: true}},
}

func goldenPath(taskName, cfgName string) string {
	return filepath.Join("testdata", fmt.Sprintf("golden_%s_%s.json", taskName, cfgName))
}

func decodeGolden(t *testing.T, tk *task.Task, cfg decoder.Config) []goldenUtt {
	t.Helper()
	d, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []goldenUtt
	for _, u := range tk.Test {
		r := d.Decode(tk.Scorer.ScoreUtterance(u.Frames))
		out = append(out, goldenUtt{
			Words:        r.Words,
			WordEnds:     r.WordEnds,
			Cost:         float64(r.Cost),
			ReachedFinal: r.ReachedFinal,
		})
	}
	return out
}

// TestGoldenDecodes replays the four evaluation tasks of the experiment
// harness against committed fixtures: word sequences, word end frames and
// finality must match exactly, costs to 1e-3. The fixtures were recorded
// from the decoder and double as a cross-machine regression net — any change
// to search semantics (pruning order, tie-breaking, LM resolution) shows up
// as a fixture diff that must be reviewed, not silently re-recorded. Run
// with -update to re-record after an intentional change.
func TestGoldenDecodes(t *testing.T) {
	for _, spec := range task.AllSpecs(goldenScale) {
		spec.TestUtterances = goldenUtterances
		tk, err := task.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, gc := range goldenConfigs {
			path := goldenPath(spec.Name, gc.name)
			t.Run(spec.Name+"/"+gc.name, func(t *testing.T) {
				got := decodeGolden(t, tk, gc.cfg)
				if *updateGolden {
					data, err := json.MarshalIndent(goldenFile{
						Task: spec.Name, Config: gc.name, Utterances: got,
					}, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture (run `go test ./internal/experiments -run Golden -update`): %v", err)
				}
				var want goldenFile
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatal(err)
				}
				compareGolden(t, got, want.Utterances)
			})
		}
	}
}

// decodeGoldenLanes decodes the task's test set through a lane scheduler
// narrower than the batch, so utterances join and leave the running group
// mid-flight — the continuous-batching shape the server uses.
func decodeGoldenLanes(t *testing.T, tk *task.Task, cfg decoder.Config) []goldenUtt {
	t.Helper()
	s, err := pool.NewLaneScheduler(tk.AM.G, tk.LMGraph.G, tk.Scorer, pool.LaneConfig{Lanes: 3, Decoder: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := make([][][]float32, len(tk.Test))
	for i, u := range tk.Test {
		frames[i] = u.Frames
	}
	b, err := s.Decode(frames)
	if err != nil {
		t.Fatal(err)
	}
	var out []goldenUtt
	for i, r := range b.Results {
		if b.Errors[i] != nil {
			t.Fatalf("utt %d failed in lanes: %v", i, b.Errors[i])
		}
		out = append(out, goldenUtt{
			Words:        r.Words,
			WordEnds:     r.WordEnds,
			Cost:         float64(r.Cost),
			ReachedFinal: r.ReachedFinal,
		})
	}
	return out
}

// TestGoldenDecodesLanes replays the same four evaluation tasks through the
// batched lane group and holds the results to the *solo* fixtures — no lane
// testdata exists on purpose. Frame-synchronous batching must be invisible
// in the output: same words, same end frames, same costs, under both pinned
// search configurations, even though the utterances share scorer calls and
// churn through a 3-lane group.
func TestGoldenDecodesLanes(t *testing.T) {
	if *updateGolden {
		t.Skip("lane decodes assert against the solo fixtures; nothing to update")
	}
	for _, spec := range task.AllSpecs(goldenScale) {
		spec.TestUtterances = goldenUtterances
		tk, err := task.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, gc := range goldenConfigs {
			path := goldenPath(spec.Name, gc.name)
			t.Run(spec.Name+"/"+gc.name, func(t *testing.T) {
				got := decodeGoldenLanes(t, tk, gc.cfg)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture (run `go test ./internal/experiments -run Golden -update`): %v", err)
				}
				var want goldenFile
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatal(err)
				}
				compareGolden(t, got, want.Utterances)
			})
		}
	}
}

// decodeGoldenPipelined decodes the task's test set through a score-ahead
// Pipeline at the given lookahead depth.
func decodeGoldenPipelined(t *testing.T, tk *task.Task, cfg decoder.Config, lookahead int) []goldenUtt {
	t.Helper()
	cfg.Lookahead = lookahead
	d, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := decoder.NewPipeline(d, tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var out []goldenUtt
	for _, u := range tk.Test {
		r := p.Decode(u.Frames)
		out = append(out, goldenUtt{
			Words:        r.Words,
			WordEnds:     r.WordEnds,
			Cost:         float64(r.Cost),
			ReachedFinal: r.ReachedFinal,
		})
	}
	return out
}

// TestGoldenDecodesPipelined replays the four evaluation tasks through the
// asynchronous score-ahead pipeline and holds the results to the *solo*
// fixtures — like the lane replay, no pipeline testdata exists on purpose.
// Scoring ahead of the search must be invisible in the output at every
// lookahead depth: same words, same end frames, same costs, under both
// pinned search configurations.
func TestGoldenDecodesPipelined(t *testing.T) {
	if *updateGolden {
		t.Skip("pipelined decodes assert against the solo fixtures; nothing to update")
	}
	for _, spec := range task.AllSpecs(goldenScale) {
		spec.TestUtterances = goldenUtterances
		tk, err := task.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, gc := range goldenConfigs {
			path := goldenPath(spec.Name, gc.name)
			for _, k := range []int{4, 16} {
				t.Run(fmt.Sprintf("%s/%s/k%d", spec.Name, gc.name, k), func(t *testing.T) {
					got := decodeGoldenPipelined(t, tk, gc.cfg, k)
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing fixture (run `go test ./internal/experiments -run Golden -update`): %v", err)
					}
					var want goldenFile
					if err := json.Unmarshal(data, &want); err != nil {
						t.Fatal(err)
					}
					compareGolden(t, got, want.Utterances)
				})
			}
		}
	}
}

func compareGolden(t *testing.T, got, want []goldenUtt) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d utterances, fixture has %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !equalI32(g.Words, w.Words) {
			t.Errorf("utt %d words: got %v, fixture %v", i, g.Words, w.Words)
		}
		if !equalI32(g.WordEnds, w.WordEnds) {
			t.Errorf("utt %d word ends: got %v, fixture %v", i, g.WordEnds, w.WordEnds)
		}
		if math.Abs(g.Cost-w.Cost) > 1e-3 {
			t.Errorf("utt %d cost: got %v, fixture %v", i, g.Cost, w.Cost)
		}
		if g.ReachedFinal != w.ReachedFinal {
			t.Errorf("utt %d finality: got %v, fixture %v", i, g.ReachedFinal, w.ReachedFinal)
		}
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
