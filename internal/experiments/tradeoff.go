package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/decoder"
)

// Tradeoff reproduces the paper's Section 4 methodology step: "We evaluated
// different sizes of the accelerator's memory components, and selected the
// configuration that provides the best trade-off considering performance,
// area and energy consumption." It sweeps the SRAM budget around the
// shipped UNFOLD configuration and prints the performance/area/energy
// surface that justifies Table 3.
func Tradeoff(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Methodology: cache-budget trade-off (Section 4 / Table 3)")
	specs := defaultSpecs(opt)
	b, err := buildBundle(specs[0], opt)
	if err != nil {
		return err
	}
	audio := b.audioSeconds()

	type point struct {
		name   string
		scale  float64
		offset int
	}
	points := []point{
		{"1/128 caches", 1.0 / 128, 32 << 10},
		{"1/32 caches", 1.0 / 32, 32 << 10},
		{"1/8 caches", 0.125, 32 << 10},
		{"1/4 caches", 0.25, 32 << 10},
		{"1/2 caches", 0.5, 32 << 10},
		{"Table 3 (shipped)", 1, 32 << 10},
		{"2x caches", 2, 32 << 10},
		{"Table 3, no offset tbl", 1, 0},
	}
	fmt.Fprintf(opt.Out, "%-24s %10s %12s %12s %12s\n",
		"Configuration", "Area mm2", "xRealTime", "Energy uJ", "Power mW")
	for _, p := range points {
		cfg := accel.UnfoldConfig()
		cfg.StateCache.SizeBytes = scaleCache(cfg.StateCache.SizeBytes, p.scale)
		cfg.AMArcCache.SizeBytes = scaleCache(cfg.AMArcCache.SizeBytes, p.scale)
		cfg.LMArcCache.SizeBytes = scaleCache(cfg.LMArcCache.SizeBytes, p.scale)
		cfg.TokenCache.SizeBytes = scaleCache(cfg.TokenCache.SizeBytes, p.scale)
		if p.offset == 0 {
			cfg.OffsetEntries = 0
		}
		dcfg := preemptive()
		if p.offset == 0 {
			// Without the table the Arc Issuer falls back to binary search.
			dcfg.Lookup = decoder.LookupBinary
		}
		u, err := accel.NewUnfold(cfg, dcfg, b.cam, b.clm, b.tk.AM.NumSenones)
		if err != nil {
			return err
		}
		r, _ := u.DecodeAll(b.scores)
		fmt.Fprintf(opt.Out, "%-24s %10.1f %12.0f %12.2f %12.1f\n",
			p.name, r.AreaMM2, audio/r.Seconds, r.TotalEnergyJ*1e6, r.AvgPowerW*1e3)
	}
	fmt.Fprintln(opt.Out, "\nBelow the dataset working set, shrinking caches costs time and DRAM energy;")
	fmt.Fprintln(opt.Out, "above it they only add area and leakage. The knee position scales with the")
	fmt.Fprintln(opt.Out, "dataset: at paper-scale (GB models) it sits at the Table 3 sizes, at our")
	fmt.Fprintln(opt.Out, "scale roughly 100x lower — consistent with the Figure 6 capacity curves.")
	return nil
}

// scaleCache scales a cache size, keeping it a power-of-two-set geometry.
func scaleCache(bytes int, scale float64) int {
	v := int(float64(bytes) * scale)
	// Round to the next power of two at least one line*assoc big.
	p := 1 << 10
	for p < v {
		p <<= 1
	}
	return p
}
