package experiments

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// MinimizeExp quantifies how much of the composition blow-up (Table 1) is
// recoverable by bisimulation minimization — the part of Kaldi's
// determinize+minimize pipeline this repository implements. The paper's
// composed WFSTs are ~10x their components *after* that pipeline; our raw
// compositions are 100x+, and this experiment shows minimization closing
// part of the gap while preserving decoding results exactly.
func MinimizeExp(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Ablation: weight pushing + bisimulation minimization of the composed WFST")
	fmt.Fprintf(opt.Out, "%-20s %12s %12s %12s %10s %12s %10s\n",
		"Task", "Composed", "Minimized", "Push+Min", "Shrink", "vs AM+LM", "Equal")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		composed, err := b.compose()
		if err != nil {
			return err
		}
		minimized := wfst.Minimize(composed)
		if err := minimized.Validate(); err != nil {
			return fmt.Errorf("%s: minimized graph invalid: %w", spec.Name, err)
		}
		pushMin, err := b.composeOpt()
		if err != nil {
			return err
		}

		// Decoding equivalence: the minimized graph must produce the same
		// hypotheses as the raw composition.
		dc, err := decoder.NewComposed(composed, decoder.Config{})
		if err != nil {
			return err
		}
		dm, err := decoder.NewComposed(minimized, decoder.Config{})
		if err != nil {
			return err
		}
		equal := 0
		for _, sc := range b.scores {
			rc := dc.Decode(sc)
			rm := dm.Decode(sc)
			if equalWords(rc.Words, rm.Words) && semiring.ApproxEqual(rc.Cost, rm.Cost, 0.05) {
				equal++
			}
		}

		comp := float64(b.tk.AM.G.SizeBytes() + b.tk.LMGraph.G.SizeBytes())
		fmt.Fprintf(opt.Out, "%-20s %12s %12s %12s %9.1fx %11.1fx %7d/%d\n",
			spec.Name,
			wfst.FormatBytes(composed.SizeBytes()),
			wfst.FormatBytes(minimized.SizeBytes()),
			wfst.FormatBytes(pushMin.SizeBytes()),
			float64(composed.SizeBytes())/float64(pushMin.SizeBytes()),
			float64(pushMin.SizeBytes())/comp,
			equal, len(b.scores))
		if equal != len(b.scores) {
			return fmt.Errorf("%s: minimization changed decoding results", spec.Name)
		}
	}
	fmt.Fprintln(opt.Out, "\nKaldi additionally determinizes and pushes output labels, which explains the")
	fmt.Fprintln(opt.Out, "remaining gap to the paper's ~10x composed-to-component ratios.")
	return nil
}
