package experiments

import (
	"fmt"
	"time"

	"repro/internal/decoder"
	"repro/internal/metrics"
)

// TwoPassExp contrasts the paper's chosen one-pass on-the-fly strategy with
// the two-pass alternative of the related-work section ([17]): a unigram
// first pass producing an N-best lattice, rescored by the full LM after the
// utterance ends. The paper argues two-pass inflates response latency
// because rescoring cannot begin until the final frame; this experiment
// measures both accuracy and the latency structure.
func TwoPassExp(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Ablation: one-pass vs two-pass on-the-fly decoding")
	fmt.Fprintf(opt.Out, "%-20s %10s %10s %12s %12s %10s\n",
		"Task", "1-pass WER", "2-pass WER", "1-pass ms", "2-pass ms", "Cands")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		one, err := decoder.NewOnTheFly(b.tk.AM.G, b.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
		if err != nil {
			return err
		}
		two, err := decoder.NewTwoPass(b.tk.AM.G, b.tk.LMGraph.G, decoder.Config{}, 8)
		if err != nil {
			return err
		}
		var w1, w2 metrics.WERAccumulator
		var t1, t2 time.Duration
		var cands int
		for i, sc := range b.scores {
			start := time.Now()
			r1 := one.Decode(sc)
			t1 += time.Since(start)
			start = time.Now()
			r2 := two.Decode(sc)
			t2 += time.Since(start)
			w1.Add(b.refs[i], r1.Words)
			w2.Add(b.refs[i], r2.Words)
			cands += r2.Candidates
		}
		fmt.Fprintf(opt.Out, "%-20s %9.2f%% %9.2f%% %12.2f %12.2f %10.1f\n",
			spec.Name, w1.WER(), w2.WER(),
			float64(t1.Milliseconds()), float64(t2.Milliseconds()),
			float64(cands)/float64(len(b.scores)))
	}
	fmt.Fprintln(opt.Out, "\nThe structural difference the paper cares about: the one-pass decoder emits its")
	fmt.Fprintln(opt.Out, "result as the last frame arrives, while the two-pass rescoring step serializes")
	fmt.Fprintln(opt.Out, "after the full utterance — the response-latency penalty of [17].")
	return nil
}
