package experiments

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/decoder"
	"repro/internal/energy"
)

// Fig6 reproduces Figure 6: miss ratio versus capacity for the UNFOLD
// caches (State, AM Arc, LM Arc, Token).
func Fig6(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 6: cache miss ratio vs capacity (UNFOLD)")
	specs := defaultSpecs(opt)
	b, err := buildBundle(specs[0], opt)
	if err != nil {
		return err
	}
	// The paper sweeps 32 KB - 1 MB against GB-scale datasets; our datasets
	// are ~two orders of magnitude smaller, so the sweep starts at 1 KB to
	// expose the same capacity knee.
	sizes := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 128 << 10}
	fmt.Fprintf(opt.Out, "%-10s %10s %10s %10s %10s\n", "Capacity", "State", "AMArc", "LMArc", "Token")
	for _, sz := range sizes {
		cfg := accel.UnfoldConfig()
		cfg.StateCache.SizeBytes = sz
		cfg.AMArcCache.SizeBytes = sz
		cfg.LMArcCache.SizeBytes = sz
		cfg.TokenCache.SizeBytes = sz
		u, err := accel.NewUnfold(cfg, preemptive(), b.cam, b.clm, b.tk.AM.NumSenones)
		if err != nil {
			return err
		}
		r, _ := u.DecodeAll(b.scores)
		fmt.Fprintf(opt.Out, "%-10s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			fmtKB(sz),
			100*r.Caches["State"].MissRatio(), 100*r.Caches["AMArc"].MissRatio(),
			100*r.Caches["LMArc"].MissRatio(), 100*r.Caches["Token"].MissRatio())
	}
	fmt.Fprintln(opt.Out, "\nPaper: State/Arc caches fall below 1% by 1 MB; Token stays ~12% (compulsory misses).")
	return nil
}

func fmtKB(sz int) string {
	if sz >= 1<<20 {
		return fmt.Sprintf("%dMB", sz>>20)
	}
	return fmt.Sprintf("%dKB", sz>>10)
}

// Fig7 reproduces Figure 7: Offset Lookup Table capacity versus miss ratio
// and speedup.
func Fig7(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 7: Offset Lookup Table size vs miss ratio and speedup")
	spec, stress, dcfg := lmStressSpec(opt)
	b, err := buildBundle(spec, stress)
	if err != nil {
		return err
	}
	// Reference: plain binary search (no table).
	binCfg := dcfg
	binCfg.Lookup = decoder.LookupBinary
	binCfg.PreemptivePruning = true
	bin, err := b.unfoldAccel(binCfg)
	if err != nil {
		return err
	}
	rBin, _ := bin.DecodeAll(b.scores)

	// Our LM visits far fewer distinct (state, word) pairs than a 200K-word
	// system, so the sweep starts at tiny table sizes to expose conflict
	// behaviour; compulsory misses set the floor.
	memoCfg := dcfg
	memoCfg.PreemptivePruning = true
	fmt.Fprintf(opt.Out, "%-10s %12s %12s\n", "Entries", "MissRatio", "Speedup")
	for _, entries := range []int{8, 32, 128, 512, 2 << 10, 8 << 10, 32 << 10} {
		cfg := accel.UnfoldConfig()
		cfg.OffsetEntries = entries
		u, err := accel.NewUnfold(cfg, memoCfg, b.cam, b.clm, b.tk.AM.NumSenones)
		if err != nil {
			return err
		}
		r, _ := u.DecodeAll(b.scores)
		miss := 0.0
		if r.OffsetHits+r.OffsetMisses > 0 {
			miss = float64(r.OffsetMisses) / float64(r.OffsetHits+r.OffsetMisses)
		}
		fmt.Fprintf(opt.Out, "%-10d %11.1f%% %11.2fx\n",
			entries, 100*miss, float64(rBin.Cycles)/float64(r.Cycles))
	}
	fmt.Fprintln(opt.Out, "\nPaper: miss ratio falls from ~55% to ~25% and speedup grows to ~1.3x across table sizes;")
	fmt.Fprintln(opt.Out, "the chosen 32K-entry table costs 192 KB.")
	return nil
}

// Fig9 reproduces Figure 9: Viterbi-search energy per second of speech on
// the GPU-class platform, the fully-composed baseline, and UNFOLD.
func Fig9(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 9: Viterbi search energy per 1 s of speech (mJ)")
	fmt.Fprintf(opt.Out, "%-20s %12s %12s %12s %14s\n", "Task", "GPU-model", "Reza et al.", "UNFOLD", "UNFOLD saving")
	var sumB, sumU float64
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		audio := b.audioSeconds()

		swTime, _, err := b.softwareDecodeTime()
		if err != nil {
			return err
		}
		gpuJ := swTime.Seconds() / energy.GPUSpeedupVsGo * energy.GPUAvgPowerW

		base, err := b.baselineAccel(decoder.Config{})
		if err != nil {
			return err
		}
		rb, _ := base.DecodeAll(b.scores)
		u, err := b.unfoldAccel(preemptive())
		if err != nil {
			return err
		}
		ru, _ := u.DecodeAll(b.scores)

		sumB += rb.TotalEnergyJ / audio
		sumU += ru.TotalEnergyJ / audio
		fmt.Fprintf(opt.Out, "%-20s %11.2f %12.4f %12.4f %13.1f%%\n",
			spec.Name, 1e3*gpuJ/audio, 1e3*rb.TotalEnergyJ/audio, 1e3*ru.TotalEnergyJ/audio,
			100*(1-ru.TotalEnergyJ/rb.TotalEnergyJ))
	}
	fmt.Fprintf(opt.Out, "\nAverage UNFOLD saving vs baseline: %.1f%% (paper: 28%% average, 2.5%%-77%% range).\n",
		100*(1-sumU/sumB))
	return nil
}

// Fig10 reproduces Figure 10: the power breakdown of both accelerators.
func Fig10(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 10: power breakdown (mW)")
	specs := defaultSpecs(opt)
	b, err := buildBundle(specs[0], opt)
	if err != nil {
		return err
	}
	u, err := b.unfoldAccel(preemptive())
	if err != nil {
		return err
	}
	ru, _ := u.DecodeAll(b.scores)
	base, err := b.baselineAccel(decoder.Config{})
	if err != nil {
		return err
	}
	rb, _ := base.DecodeAll(b.scores)

	keys := map[string]bool{}
	for k := range ru.EnergyJ {
		keys[k] = true
	}
	for k := range rb.EnergyJ {
		keys[k] = true
	}
	var ordered []string
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	fmt.Fprintf(opt.Out, "%-14s %12s %12s\n", "Component", "UNFOLD", "Reza et al.")
	for _, k := range ordered {
		fmt.Fprintf(opt.Out, "%-14s %11.2f %12.2f\n",
			k, 1e3*ru.EnergyJ[k]/ru.Seconds, 1e3*rb.EnergyJ[k]/rb.Seconds)
	}
	fmt.Fprintf(opt.Out, "%-14s %11.2f %12.2f\n", "TOTAL", 1e3*ru.AvgPowerW, 1e3*rb.AvgPowerW)
	fmt.Fprintf(opt.Out, "\nOffset table share of UNFOLD power: %.1f%% (paper: ~5%%).\n",
		100*ru.EnergyJ["OffsetTable"]/ru.TotalEnergyJ)
	fmt.Fprintf(opt.Out, "Area: UNFOLD %.1f mm^2 vs baseline %.1f mm^2 (paper: 21.5 mm^2, 16%% smaller).\n",
		ru.AreaMM2, rb.AreaMM2)
	return nil
}

// Fig11 reproduces Figure 11: DRAM bandwidth usage split by stream.
func Fig11(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Figure 11: memory bandwidth usage (MB/s), STATES/ARCS/TOKENS split")
	fmt.Fprintf(opt.Out, "%-20s %-12s %10s %10s %10s %10s %10s\n",
		"Task", "Design", "States", "Arcs", "Tokens", "Total", "Acoustic")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		base, err := b.baselineAccel(decoder.Config{})
		if err != nil {
			return err
		}
		rb, _ := base.DecodeAll(b.scores)
		u, err := b.unfoldAccel(preemptive())
		if err != nil {
			return err
		}
		ru, _ := u.DecodeAll(b.scores)
		for _, row := range []struct {
			name string
			r    *accel.Result
		}{{"Reza et al.", rb}, {"UNFOLD", ru}} {
			mbs := func(stream string) float64 {
				return float64(row.r.DRAMByStream[stream]) / row.r.Seconds / 1e6
			}
			// Total follows the paper's accounting (the three WFST/token
			// streams); the acoustic-score DMA is reported separately.
			fmt.Fprintf(opt.Out, "%-20s %-12s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
				spec.Name, row.name,
				mbs(accel.StreamStates), mbs(accel.StreamArcs), mbs(accel.StreamTokens),
				mbs(accel.StreamStates)+mbs(accel.StreamArcs)+mbs(accel.StreamTokens),
				mbs(accel.StreamAcoustic))
		}
	}
	fmt.Fprintln(opt.Out, "\nPaper: UNFOLD cuts bandwidth by 71% on average (2.8x on EESEN-TEDLIUM, 7.4 -> 2.6 GB/s).")
	return nil
}

// Tab5 reproduces Table 5: per-utterance decode latency (max and average)
// on the three platforms.
func Tab5(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Table 5: decoding time per utterance (ms)")
	fmt.Fprintf(opt.Out, "%-20s %21s %21s %21s\n", "", "GPU-model", "Reza et al.", "UNFOLD")
	fmt.Fprintf(opt.Out, "%-20s %10s %10s %10s %10s %10s %10s\n",
		"Task", "Max", "Avg", "Max", "Avg", "Max", "Avg")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		_, swPer, err := b.softwareDecodeTime()
		if err != nil {
			return err
		}
		base, err := b.baselineAccel(decoder.Config{})
		if err != nil {
			return err
		}
		_, perB := base.DecodeAll(b.scores)
		u, err := b.unfoldAccel(preemptive())
		if err != nil {
			return err
		}
		_, perU := u.DecodeAll(b.scores)

		maxAvg := func(vals []float64) (mx, avg float64) {
			for _, v := range vals {
				avg += v
				if v > mx {
					mx = v
				}
			}
			return mx, avg / float64(len(vals))
		}
		var gpu, bb, uu []float64
		for i := range b.scores {
			gpu = append(gpu, swPer[i].Seconds()*1e3/energy.GPUSpeedupVsGo)
			bb = append(bb, perB[i].Seconds*1e3)
			uu = append(uu, perU[i].Seconds*1e3)
		}
		gm, ga := maxAvg(gpu)
		bm, ba := maxAvg(bb)
		um, ua := maxAvg(uu)
		fmt.Fprintf(opt.Out, "%-20s %10.2f %10.2f %10.3f %10.3f %10.3f %10.3f\n",
			spec.Name, gm, ga, bm, ba, um, ua)
	}
	fmt.Fprintln(opt.Out, "\nPaper (avg ms): GPU 450-1412; Reza 15.5-76.7; UNFOLD 4.2-111.6.")
	return nil
}
