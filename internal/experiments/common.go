// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic tasks (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
// Each experiment has a stable ID ("fig9", "tab1", "prune", ...) runnable
// via cmd/unfold-experiments or the root-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/accel"
	"repro/internal/compress"
	"repro/internal/decoder"
	"repro/internal/task"
	"repro/internal/wfst"
)

// Options configures a harness run.
type Options struct {
	// Scale multiplies task sizes (1.0 = defaults).
	Scale float64
	// Utterances overrides the per-task test-set size (0 = task default).
	Utterances int
	// Quick restricts "all"-style experiments to a single task where noted.
	Quick bool
	// MaxComposeStates guards the offline composition (0 = 30M).
	MaxComposeStates int
	Out              io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.MaxComposeStates == 0 {
		o.MaxComposeStates = 30_000_000
	}
	return o
}

// bundle is one task with everything the experiments need, built lazily.
type bundle struct {
	tk     *task.Task
	cam    *compress.AM
	clm    *compress.LM
	scores [][][]float32
	refs   [][]int32

	composed     *wfst.WFST // raw composition (exact oracle weights)
	composedOpt  *wfst.WFST // weight-pushed + minimized (the deployed form)
	composedComp *compress.Composed
	opt          Options
}

// bundleCache shares built bundles (and their cached compositions) across
// experiments within one process — `-exp all` composes each task once.
var bundleCache = map[string]*bundle{}

func buildBundle(spec task.Spec, opt Options) (*bundle, error) {
	if opt.Utterances > 0 {
		spec.TestUtterances = opt.Utterances
	}
	cacheKey := fmt.Sprintf("%+v", spec)
	if b, ok := bundleCache[cacheKey]; ok {
		return b, nil
	}
	tk, err := task.Build(spec)
	if err != nil {
		return nil, err
	}
	qa, err := compress.TrainQuantizer(compress.CollectWeights(tk.AM.G), 0)
	if err != nil {
		return nil, err
	}
	cam, err := compress.EncodeAM(tk.AM.G, qa)
	if err != nil {
		return nil, err
	}
	ql, err := compress.TrainQuantizer(compress.CollectWeights(tk.LMGraph.G), 0)
	if err != nil {
		return nil, err
	}
	clm, err := compress.EncodeLM(tk.LMGraph, ql)
	if err != nil {
		return nil, err
	}
	b := &bundle{tk: tk, cam: cam, clm: clm, opt: opt}
	for _, u := range tk.Test {
		b.scores = append(b.scores, tk.Scorer.ScoreUtterance(u.Frames))
		b.refs = append(b.refs, u.Words)
	}
	bundleCache[cacheKey] = b
	return b, nil
}

// compose builds (and caches) the offline composition.
func (b *bundle) compose() (*wfst.WFST, error) {
	if b.composed == nil {
		g, err := wfst.Compose(b.tk.AM.G, b.tk.LMGraph.G,
			wfst.ComposeOptions{MaxStates: b.opt.MaxComposeStates})
		if err != nil {
			return nil, fmt.Errorf("%s: composing: %w", b.tk.Spec.Name, err)
		}
		b.composed = g
	}
	return b.composed, nil
}

// composeOpt builds (and caches) the weight-pushed, minimized composition —
// the form a deployed fully-composed recognizer ships (Kaldi's HCLG is
// determinized, minimized and pushed), and therefore the dataset the
// baseline accelerator is simulated against.
func (b *bundle) composeOpt() (*wfst.WFST, error) {
	if b.composedOpt == nil {
		g, err := b.compose()
		if err != nil {
			return nil, err
		}
		pushed, _ := wfst.PushWeights(g)
		b.composedOpt = wfst.Minimize(pushed)
	}
	return b.composedOpt, nil
}

// composeCompressed builds (and caches) the Price-style compressed form of
// the optimized composed WFST.
func (b *bundle) composeCompressed() (*compress.Composed, error) {
	if b.composedComp == nil {
		g, err := b.composeOpt()
		if err != nil {
			return nil, err
		}
		if !g.InSorted() {
			g.SortByInput()
		}
		q, err := compress.TrainQuantizer(compress.CollectWeights(g), 0)
		if err != nil {
			return nil, err
		}
		cc, err := compress.EncodeComposed(g, q)
		if err != nil {
			return nil, err
		}
		b.composedComp = cc
	}
	return b.composedComp, nil
}

// unfoldAccel constructs the UNFOLD simulator with the paper's defaults.
func (b *bundle) unfoldAccel(dcfg decoder.Config) (*accel.Unfold, error) {
	return accel.NewUnfold(accel.UnfoldConfig(), dcfg, b.cam, b.clm, b.tk.AM.NumSenones)
}

// baselineAccel constructs the fully-composed simulator over the optimized
// (pushed + minimized) graph, as a deployed baseline would ship.
func (b *bundle) baselineAccel(dcfg decoder.Config) (*accel.FullyComposed, error) {
	g, err := b.composeOpt()
	if err != nil {
		return nil, err
	}
	return accel.NewFullyComposed(accel.BaselineConfig(), dcfg, g, b.tk.AM.NumSenones)
}

// audioSeconds returns the audio time represented by the test set.
func (b *bundle) audioSeconds() float64 {
	frames := 0
	for _, sc := range b.scores {
		frames += len(sc)
	}
	return float64(frames) * 0.010
}

// defaultSpecs returns the benchmark set honoring Quick mode.
func defaultSpecs(opt Options) []task.Spec {
	specs := task.AllSpecs(opt.Scale)
	if opt.Quick {
		return specs[2:3] // Voxforge: the small task
	}
	return specs
}

// preemptive is the paper's default decoder configuration for UNFOLD.
func preemptive() decoder.Config {
	return decoder.Config{PreemptivePruning: true}
}

// --- Output helpers ----------------------------------------------------------

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

func mb(bytes int64) float64 { return float64(bytes) / (1 << 20) }

// softwareDecodeTime measures the wall-clock time of the software
// on-the-fly decoder over the bundle's test set — the basis for the mobile
// GPU platform model (see internal/energy).
func (b *bundle) softwareDecodeTime() (time.Duration, []time.Duration, error) {
	d, err := decoder.NewOnTheFly(b.tk.AM.G, b.tk.LMGraph.G, decoder.Config{})
	if err != nil {
		return 0, nil, err
	}
	var total time.Duration
	per := make([]time.Duration, len(b.scores))
	for i, sc := range b.scores {
		start := time.Now()
		d.Decode(sc)
		per[i] = time.Since(start)
		total += per[i]
	}
	return total, per, nil
}

// scorerTime measures acoustic-scoring wall time over the test set.
func (b *bundle) scorerTime() time.Duration {
	start := time.Now()
	for _, u := range b.tk.Test {
		b.tk.Scorer.ScoreUtterance(u.Frames)
	}
	return time.Since(start)
}
