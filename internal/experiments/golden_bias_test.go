package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bias"
	"repro/internal/decoder"
	"repro/internal/task"
)

// goldenBiasBonus is the per-word bonus the biased fixtures are recorded
// at: strong enough that an in-reference phrase list visibly pulls the
// hypothesis, weak enough that out-of-reference phrases cannot hallucinate
// terms the acoustics never support.
const goldenBiasBonus = 4.0

// biasVariants are the three recorded conditions per task. "no-bias" is a
// decoder that never had SetBias called (the byte-identity anchor),
// "bias-hit" biases the reference vocabulary of the test set itself, and
// "bias-miss" biases in-lexicon words that appear in no reference — the
// fixture pins down that a miss changes nothing it shouldn't.
var biasVariants = []string{"no-bias", "bias-hit", "bias-miss"}

func goldenBiasPath(taskName, variant string) string {
	return filepath.Join("testdata", fmt.Sprintf("golden_bias_%s_%s.json", taskName, variant))
}

// biasTermSets derives the two deterministic phrase lists: every distinct
// reference word (with its IDs, for the biased-term scorer) and up to four
// lexicon words that appear neither in any reference nor anywhere in the
// unbiased hypotheses — so if one of them shows up under bias-miss, the
// bias machine put it there, not the baseline's own decoding errors.
func biasTermSets(tk *task.Task, noBias []goldenUtt) (hit []string, hitIDs []int32, miss []string, missIDs []int32) {
	used := map[int32]bool{}
	for _, u := range tk.Test {
		for _, id := range u.Words {
			if !used[id] {
				used[id] = true
				hit = append(hit, tk.Lex.Words[id])
				hitIDs = append(hitIDs, id)
			}
		}
	}
	for _, u := range noBias {
		for _, id := range u.Words {
			used[id] = true
		}
	}
	for id := 1; id < len(tk.Lex.Words) && len(miss) < 4; id++ {
		if !used[int32(id)] {
			miss = append(miss, tk.Lex.Words[id])
			missIDs = append(missIDs, int32(id))
		}
	}
	return hit, hitIDs, miss, missIDs
}

// decodeGoldenBias decodes the test set with the given phrase list
// installed (nil phrases = plain two-layer decode).
func decodeGoldenBias(t *testing.T, tk *task.Task, phrases []string) []goldenUtt {
	t.Helper()
	d, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, decoder.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(phrases) > 0 {
		lookup := func(w string) (int32, bool) {
			for id, s := range tk.Lex.Words {
				if s == w {
					return int32(id), true
				}
			}
			return 0, false
		}
		m, err := bias.Compile(phrases, goldenBiasBonus, lookup)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SetBias(m); err != nil {
			t.Fatal(err)
		}
	}
	var out []goldenUtt
	for _, u := range tk.Test {
		r := d.Decode(tk.Scorer.ScoreUtterance(u.Frames))
		out = append(out, goldenUtt{
			Words:        r.Words,
			WordEnds:     r.WordEnds,
			Cost:         float64(r.Cost),
			ReachedFinal: r.ReachedFinal,
		})
	}
	return out
}

// TestGoldenBiasedDecodes records and replays biased decodes for two
// evaluation tasks under the three bias conditions, with the same -update
// convention as the other golden fixtures. Beyond fixture equality it
// asserts the semantics the fixtures exist to freeze:
//
//   - no-bias matches the task's existing solo "default" fixture byte for
//     byte (SetBias never called ≡ the pre-bias decoder);
//   - bias-hit makes the biased terms win: biased-term recall (the
//     internal/task metric) is at least the no-bias recall, every
//     hypothesis surfaces at least one biased term, and no utterance's
//     cost got worse than no-bias (a matched bonus can only help a path);
//   - bias-miss never hallucinates: the missed terms appear in no
//     hypothesis, and biased-term stats against them count zero
//     insertions.
func TestGoldenBiasedDecodes(t *testing.T) {
	specs := task.AllSpecs(goldenScale)[:2]
	for _, spec := range specs {
		spec.TestUtterances = goldenUtterances
		tk, err := task.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		hit, hitIDs, miss, missIDs := biasTermSets(tk, decodeGoldenBias(t, tk, nil))
		if len(miss) == 0 {
			t.Fatalf("task %s: every lexicon word is in the references; cannot build a bias-miss list", spec.Name)
		}
		phrasesFor := map[string][]string{"no-bias": nil, "bias-hit": hit, "bias-miss": miss}
		decoded := map[string][]goldenUtt{}
		for _, variant := range biasVariants {
			path := goldenBiasPath(spec.Name, variant)
			t.Run(spec.Name+"/"+variant, func(t *testing.T) {
				got := decodeGoldenBias(t, tk, phrasesFor[variant])
				decoded[variant] = got
				if *updateGolden {
					data, err := json.MarshalIndent(goldenFile{
						Task: spec.Name, Config: variant, Utterances: got,
					}, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture (run `go test ./internal/experiments -run GoldenBiased -update`): %v", err)
				}
				var want goldenFile
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatal(err)
				}
				compareGolden(t, got, want.Utterances)
			})
		}

		// Cross-variant semantics (independent of the fixtures on disk, so
		// they hold during -update re-records too).
		t.Run(spec.Name+"/semantics", func(t *testing.T) {
			noBias, hitRes, missRes := decoded["no-bias"], decoded["bias-hit"], decoded["bias-miss"]
			soloPath := goldenPath(spec.Name, "default")
			if data, err := os.ReadFile(soloPath); err == nil {
				var solo goldenFile
				if err := json.Unmarshal(data, &solo); err != nil {
					t.Fatal(err)
				}
				compareGolden(t, noBias, solo.Utterances)
			} else if !*updateGolden {
				t.Errorf("solo fixture %s unreadable: %v", soloPath, err)
			}

			base := task.NewBiasTermAccumulator(hitIDs)
			biased := task.NewBiasTermAccumulator(hitIDs)
			for i, u := range tk.Test {
				base.Add(u.Words, noBias[i].Words)
				biased.Add(u.Words, hitRes[i].Words)
				if hitRes[i].Cost > noBias[i].Cost+1e-3 {
					t.Errorf("utt %d: bias-hit cost %v worse than no-bias %v", i, hitRes[i].Cost, noBias[i].Cost)
				}
				won := false
				for _, w := range hitRes[i].Words {
					for _, id := range hitIDs {
						if w == id {
							won = true
						}
					}
				}
				if !won {
					t.Errorf("utt %d: no biased term in the bias-hit hypothesis %v", i, hitRes[i].Words)
				}
			}
			if biased.Stats().Recall() < base.Stats().Recall() {
				t.Errorf("bias-hit recall %.3f below no-bias recall %.3f: %v vs %v",
					biased.Stats().Recall(), base.Stats().Recall(), biased.Stats(), base.Stats())
			}

			missAcc := task.NewBiasTermAccumulator(missIDs)
			for i, u := range tk.Test {
				missAcc.Add(u.Words, missRes[i].Words)
				for _, w := range missRes[i].Words {
					for _, id := range missIDs {
						if w == id {
							t.Errorf("utt %d: bias-miss hallucinated term %d into %v", i, id, missRes[i].Words)
						}
					}
				}
			}
			if st := missAcc.Stats(); st.Ins != 0 || st.RefTerms != 0 {
				t.Errorf("bias-miss stats not clean: %v", st)
			}
		})
	}
}
