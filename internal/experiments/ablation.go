package experiments

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/semiring"
	"repro/internal/task"
)

// Prune reproduces the Section 3.3 claims: preemptive back-off pruning
// discards ~22.5% of back-off hypotheses and speeds decoding by ~16.3%.
func Prune(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Ablation: preemptive pruning (paper: 22.5% hypotheses pruned, 16.3% speedup)")
	fmt.Fprintf(opt.Out, "%-20s %12s %12s %12s\n", "Task", "Pruned", "of fetches", "Speedup")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		off, err := b.unfoldAccel(decoder.Config{})
		if err != nil {
			return err
		}
		rOff, _ := off.DecodeAll(b.scores)
		on, err := b.unfoldAccel(decoder.Config{PreemptivePruning: true})
		if err != nil {
			return err
		}
		rOn, _ := on.DecodeAll(b.scores)
		frac := 0.0
		if rOn.Dec.LMFetches > 0 {
			frac = float64(rOn.Dec.PreemptivePruned) / float64(rOn.Dec.LMFetches)
		}
		fmt.Fprintf(opt.Out, "%-20s %12d %11.1f%% %11.3fx\n",
			spec.Name, rOn.Dec.PreemptivePruned, 100*frac,
			float64(rOff.Cycles)/float64(rOn.Cycles))
	}
	return nil
}

// lmStressSpec builds a task whose LM is dense enough to pressure the arc
// fetch path the way a 200K-word system does (LM states with thousands of
// arcs): a large bigram model over a high-branching grammar, 1-state phone
// models so word boundaries — and hence LM fetches — are frequent, and a
// wide beam keeping many boundary hypotheses alive. No offline composition
// is needed; only UNFOLD variants run on it.
func lmStressSpec(opt Options) (task.Spec, Options, decoder.Config) {
	spec := task.Spec{
		Name:           "LM-STRESS",
		Vocab:          int(200 * opt.Scale),
		Phones:         40,
		StatesPerPhone: 1,
		Scorer:         task.ScorerGMM,
		LMOrder:        2,
		LMMinCount:     1,
		GrammarBranch:  60,
		TrainSentences: int(8000 * opt.Scale),
		MaxSentenceLen: 12,
		NoiseStd:       1.8,
		Seed:           777,
	}
	if spec.Vocab < 100 {
		spec.Vocab = 100
	}
	if spec.TrainSentences < 2000 {
		spec.TrainSentences = 2000
	}
	stress := opt
	if stress.Utterances == 0 {
		stress.Utterances = 30
	}
	dcfg := decoder.Config{Beam: 26, MaxActive: 20000, Lookup: decoder.LookupMemo}
	return spec, stress, dcfg
}

// Search reproduces the Section 5.1 LM arc-fetch ablation: linear search
// (paper: 10x slowdown), binary search (3x), and the Offset Lookup Table
// (1.18x over the composed baseline). Our LM fan-out is orders of magnitude
// below a 200K-word system's, so magnitudes are compressed; the experiment
// reports slowdowns relative to the offset-table configuration, whose
// ordering must match the paper's.
func Search(opt Options) error {
	opt = opt.withDefaults()
	spec, stress, dcfg := lmStressSpec(opt)
	header(opt.Out, "Ablation: LM arc-fetch strategy (slowdown vs offset-table config)")
	b, err := buildBundle(spec, stress)
	if err != nil {
		return err
	}
	fmt.Fprintf(opt.Out, "task %s: vocab %d, LM %d states / %d arcs\n\n",
		spec.Name, spec.Vocab, b.tk.LMGraph.G.NumStates(), b.tk.LMGraph.G.NumArcs())
	fmt.Fprintf(opt.Out, "%-12s %12s %14s %12s\n", "Strategy", "Slowdown", "Probes/fetch", "Cycles")
	var memoCycles uint64
	for _, kind := range []decoder.LookupKind{decoder.LookupMemo, decoder.LookupBinary, decoder.LookupLinear} {
		cfg := dcfg
		cfg.Lookup = kind
		cfg.PreemptivePruning = true
		u, err := b.unfoldAccel(cfg)
		if err != nil {
			return err
		}
		r, _ := u.DecodeAll(b.scores)
		if kind == decoder.LookupMemo {
			memoCycles = r.Cycles
		}
		perFetch := 0.0
		if r.Dec.LMFetches > 0 {
			perFetch = float64(r.Dec.LMProbes) / float64(r.Dec.LMFetches)
		}
		fmt.Fprintf(opt.Out, "%-12s %11.2fx %14.1f %12d\n",
			kind, float64(r.Cycles)/float64(memoCycles), perFetch, r.Cycles)
	}
	fmt.Fprintln(opt.Out, "\nPaper (vs composed baseline): 10x linear, 3x binary, 1.18x with the offset table;")
	fmt.Fprintln(opt.Out, "magnitudes compress at our scale, the ordering must not.")
	return nil
}

// Equiv verifies the correctness oracle across the full pipeline: the
// software on-the-fly decoder against the software fully-composed decoder.
func Equiv(opt Options) error {
	opt = opt.withDefaults()
	header(opt.Out, "Oracle: on-the-fly decode == fully-composed decode")
	for _, spec := range defaultSpecs(opt) {
		b, err := buildBundle(spec, opt)
		if err != nil {
			return err
		}
		composed, err := b.compose()
		if err != nil {
			return err
		}
		dc, err := decoder.NewComposed(composed, decoder.Config{})
		if err != nil {
			return err
		}
		do, err := decoder.NewOnTheFly(b.tk.AM.G, b.tk.LMGraph.G, decoder.Config{})
		if err != nil {
			return err
		}
		match, total := 0, 0
		for _, sc := range b.scores {
			rc := dc.Decode(sc)
			ro := do.Decode(sc)
			total++
			if equalWords(rc.Words, ro.Words) && semiring.ApproxEqual(rc.Cost, ro.Cost, 0.05) {
				match++
			}
		}
		fmt.Fprintf(opt.Out, "%-20s %d/%d utterances identical\n", spec.Name, match, total)
		if match != total {
			return fmt.Errorf("%s: equivalence oracle failed (%d/%d)", spec.Name, match, total)
		}
	}
	return nil
}

func equalWords(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
