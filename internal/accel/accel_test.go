package accel

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/semiring"
	"repro/internal/task"
	"repro/internal/wfst"
)

type fixture struct {
	tk       *task.Task
	composed *wfst.WFST
	cam      *compress.AM
	clm      *compress.LM
	scores   [][][]float32
}

var cached *fixture

func getFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	tk, err := task.Build(task.Spec{
		Name:           "accel-test",
		Vocab:          30,
		Phones:         12,
		TrainSentences: 250,
		TestUtterances: 5,
		LMMinCount:     2,
		Seed:           77,
	})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := wfst.Compose(tk.AM.G, tk.LMGraph.G, wfst.ComposeOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	qa, err := compress.TrainQuantizer(compress.CollectWeights(tk.AM.G), 0)
	if err != nil {
		t.Fatal(err)
	}
	cam, err := compress.EncodeAM(tk.AM.G, qa)
	if err != nil {
		t.Fatal(err)
	}
	ql, err := compress.TrainQuantizer(compress.CollectWeights(tk.LMGraph.G), 0)
	if err != nil {
		t.Fatal(err)
	}
	clm, err := compress.EncodeLM(tk.LMGraph, ql)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{tk: tk, composed: composed, cam: cam, clm: clm}
	for _, u := range tk.Test {
		f.scores = append(f.scores, tk.Scorer.ScoreUtterance(u.Frames))
	}
	cached = f
	return f
}

// The UNFOLD simulator is also a functional emulator (Section 4): its
// hypotheses must match the software on-the-fly decoder run over the
// decompressed (weight-quantized) graphs.
func TestUnfoldMatchesSoftwareDecoder(t *testing.T) {
	f := getFixture(t)
	u, err := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	if err != nil {
		t.Fatal(err)
	}
	amQ := f.cam.Decompress()
	lmQ := f.clm.Decompress()
	sw, err := decoder.NewOnTheFly(amQ, lmQ, decoder.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, per := u.DecodeAll(f.scores)
	for i, sc := range f.scores {
		ref := sw.Decode(sc)
		if len(ref.Words) != len(per[i].Words) {
			t.Fatalf("utt %d: accel %v vs software %v", i, per[i].Words, ref.Words)
		}
		for j := range ref.Words {
			if ref.Words[j] != per[i].Words[j] {
				t.Fatalf("utt %d word %d differs", i, j)
			}
		}
		if !semiring.ApproxEqual(ref.Cost, per[i].Cost, 0.05) {
			t.Errorf("utt %d: cost %v vs %v", i, per[i].Cost, ref.Cost)
		}
	}
}

// The baseline simulator must match the software composed decoder exactly
// (same graph, unquantized).
func TestBaselineMatchesSoftwareDecoder(t *testing.T) {
	f := getFixture(t)
	b, err := NewFullyComposed(BaselineConfig(), decoder.Config{}, f.composed, f.tk.AM.NumSenones)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := decoder.NewComposed(f.composed, decoder.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, per := b.DecodeAll(f.scores)
	for i, sc := range f.scores {
		ref := sw.Decode(sc)
		if len(ref.Words) != len(per[i].Words) {
			t.Fatalf("utt %d: accel %v vs software %v", i, per[i].Words, ref.Words)
		}
		for j := range ref.Words {
			if ref.Words[j] != per[i].Words[j] {
				t.Fatalf("utt %d word %d differs", i, j)
			}
		}
		if !semiring.ApproxEqual(ref.Cost, per[i].Cost, 1e-3) {
			t.Errorf("utt %d: cost %v vs %v", i, per[i].Cost, ref.Cost)
		}
	}
}

// Quantization must not change hypotheses materially (paper: < 0.01% WER).
func TestQuantizationWERImpactSmall(t *testing.T) {
	f := getFixture(t)
	u, _ := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	b, _ := NewFullyComposed(BaselineConfig(), decoder.Config{}, f.composed, f.tk.AM.NumSenones)
	_, perU := u.DecodeAll(f.scores)
	_, perB := b.DecodeAll(f.scores)
	var wu, wb metrics.WERAccumulator
	for i := range f.scores {
		wu.Add(f.tk.Test[i].Words, perU[i].Words)
		wb.Add(f.tk.Test[i].Words, perB[i].Words)
	}
	if diff := wu.WER() - wb.WER(); diff > 3 || diff < -3 {
		t.Errorf("quantized WER %.2f%% vs exact %.2f%% — gap too large", wu.WER(), wb.WER())
	}
}

// The paper's central memory claim: UNFOLD moves far fewer DRAM bytes than
// the fully-composed baseline, and spends less total energy.
func TestUnfoldReducesMemoryTrafficAndEnergy(t *testing.T) {
	f := getFixture(t)
	u, _ := NewUnfold(UnfoldConfig(), decoder.Config{PreemptivePruning: true}, f.cam, f.clm, f.tk.AM.NumSenones)
	b, _ := NewFullyComposed(BaselineConfig(), decoder.Config{}, f.composed, f.tk.AM.NumSenones)
	ru, _ := u.DecodeAll(f.scores)
	rb, _ := b.DecodeAll(f.scores)

	tu := ru.DRAMReadBytes + ru.DRAMWriteBytes
	tb := rb.DRAMReadBytes + rb.DRAMWriteBytes
	if tu >= tb {
		t.Errorf("UNFOLD DRAM bytes %d >= baseline %d", tu, tb)
	}
	if ru.TotalEnergyJ >= rb.TotalEnergyJ {
		t.Errorf("UNFOLD energy %.3e J >= baseline %.3e J", ru.TotalEnergyJ, rb.TotalEnergyJ)
	}
	t.Logf("DRAM bytes: UNFOLD %d vs baseline %d (%.1fx); energy %.3e vs %.3e J",
		tu, tb, float64(tb)/float64(tu), ru.TotalEnergyJ, rb.TotalEnergyJ)
}

func TestRealTimeMargin(t *testing.T) {
	f := getFixture(t)
	u, _ := NewUnfold(UnfoldConfig(), decoder.Config{PreemptivePruning: true}, f.cam, f.clm, f.tk.AM.NumSenones)
	ru, per := u.DecodeAll(f.scores)
	audio := metrics.AudioDuration(ru.Frames).Seconds()
	if ru.Seconds >= audio {
		t.Errorf("not real time: %.4fs processing for %.2fs audio", ru.Seconds, audio)
	}
	t.Logf("UNFOLD: %.0fx real time, %.2f mW avg power, %.1f mm^2",
		audio/ru.Seconds, ru.AvgPowerW*1e3, ru.AreaMM2)
	for i, p := range per {
		if p.Cycles == 0 || p.Frames == 0 {
			t.Errorf("utterance %d has empty timing", i)
		}
	}
}

func TestOffsetTableEffective(t *testing.T) {
	f := getFixture(t)
	memo, _ := NewUnfold(UnfoldConfig(), decoder.Config{Lookup: decoder.LookupMemo}, f.cam, f.clm, f.tk.AM.NumSenones)
	bin, _ := NewUnfold(UnfoldConfig(), decoder.Config{Lookup: decoder.LookupBinary}, f.cam, f.clm, f.tk.AM.NumSenones)
	lin, _ := NewUnfold(UnfoldConfig(), decoder.Config{Lookup: decoder.LookupLinear}, f.cam, f.clm, f.tk.AM.NumSenones)
	rm, _ := memo.DecodeAll(f.scores)
	rb, _ := bin.DecodeAll(f.scores)
	rl, _ := lin.DecodeAll(f.scores)
	if rm.OffsetHits == 0 {
		t.Error("offset table never hit")
	}
	if rm.Dec.LMProbes >= rb.Dec.LMProbes {
		t.Errorf("memo probes %d >= binary probes %d", rm.Dec.LMProbes, rb.Dec.LMProbes)
	}
	if rb.Dec.LMProbes >= rl.Dec.LMProbes {
		t.Errorf("binary probes %d >= linear probes %d", rb.Dec.LMProbes, rl.Dec.LMProbes)
	}
	// The paper's ordering: linear slowest, then binary, then offset table.
	if !(rm.Cycles <= rb.Cycles && rb.Cycles <= rl.Cycles) {
		t.Errorf("cycle ordering violated: memo %d, binary %d, linear %d",
			rm.Cycles, rb.Cycles, rl.Cycles)
	}
}

func TestPreemptivePruningSpeedsUpAccel(t *testing.T) {
	f := getFixture(t)
	on, _ := NewUnfold(UnfoldConfig(), decoder.Config{PreemptivePruning: true}, f.cam, f.clm, f.tk.AM.NumSenones)
	off, _ := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	ron, _ := on.DecodeAll(f.scores)
	roff, _ := off.DecodeAll(f.scores)
	if ron.Dec.PreemptivePruned == 0 {
		t.Error("preemptive pruning never fired")
	}
	if ron.Dec.LMProbes > roff.Dec.LMProbes {
		t.Errorf("pruning increased probes: %d > %d", ron.Dec.LMProbes, roff.Dec.LMProbes)
	}
}

func TestCacheMissRatiosSane(t *testing.T) {
	f := getFixture(t)
	u, _ := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	r, _ := u.DecodeAll(f.scores)
	for name, cs := range r.Caches {
		if name == "LMArc" && cs.Accesses == 0 {
			t.Errorf("LM arc cache untouched")
		}
		mr := cs.MissRatio()
		if mr < 0 || mr > 1 {
			t.Errorf("%s: miss ratio %v", name, mr)
		}
	}
	if r.Caches["State"].Accesses == 0 || r.Caches["AMArc"].Accesses == 0 || r.Caches["Token"].Accesses == 0 {
		t.Error("cache access counters missing")
	}
}

func TestSmallerCachesMissMore(t *testing.T) {
	f := getFixture(t)
	big := UnfoldConfig()
	small := UnfoldConfig()
	small.AMArcCache.SizeBytes = 1 << 10
	ub, _ := NewUnfold(big, decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	us, _ := NewUnfold(small, decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	rbig, _ := ub.DecodeAll(f.scores)
	rsmall, _ := us.DecodeAll(f.scores)
	if rsmall.Caches["AMArc"].MissRatio() < rbig.Caches["AMArc"].MissRatio() {
		t.Errorf("1KB cache misses less (%.4f) than 512KB (%.4f)",
			rsmall.Caches["AMArc"].MissRatio(), rbig.Caches["AMArc"].MissRatio())
	}
}

func TestEnergyBreakdownAndArea(t *testing.T) {
	f := getFixture(t)
	u, _ := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	b, _ := NewFullyComposed(BaselineConfig(), decoder.Config{}, f.composed, f.tk.AM.NumSenones)
	ru, _ := u.DecodeAll(f.scores)
	rb, _ := b.DecodeAll(f.scores)
	for _, key := range []string{"StateCache", "ArcCache", "TokenCache", "Hashes", "Pipeline", "MainMemory"} {
		if ru.EnergyJ[key] <= 0 {
			t.Errorf("UNFOLD energy component %s = %v", key, ru.EnergyJ[key])
		}
		if rb.EnergyJ[key] <= 0 {
			t.Errorf("baseline energy component %s = %v", key, rb.EnergyJ[key])
		}
	}
	if ru.EnergyJ["OffsetTable"] <= 0 {
		t.Error("UNFOLD missing offset-table energy")
	}
	if _, ok := rb.EnergyJ["OffsetTable"]; ok {
		t.Error("baseline should have no offset table")
	}
	// The paper: UNFOLD's area is ~16% smaller than the baseline's.
	if ru.AreaMM2 >= rb.AreaMM2 {
		t.Errorf("UNFOLD area %.1f >= baseline %.1f", ru.AreaMM2, rb.AreaMM2)
	}
	t.Logf("area: UNFOLD %.1f mm^2 vs baseline %.1f mm^2", ru.AreaMM2, rb.AreaMM2)
}

func TestAccelDeterministic(t *testing.T) {
	f := getFixture(t)
	u1, _ := NewUnfold(UnfoldConfig(), decoder.Config{PreemptivePruning: true}, f.cam, f.clm, f.tk.AM.NumSenones)
	u2, _ := NewUnfold(UnfoldConfig(), decoder.Config{PreemptivePruning: true}, f.cam, f.clm, f.tk.AM.NumSenones)
	r1, _ := u1.DecodeAll(f.scores)
	r2, _ := u2.DecodeAll(f.scores)
	if r1.Cycles != r2.Cycles || r1.DRAMReadBytes != r2.DRAMReadBytes || r1.Dec != r2.Dec {
		t.Error("UNFOLD simulation is nondeterministic")
	}
}

func TestNewErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := NewUnfold(UnfoldConfig(), decoder.Config{}, nil, f.clm, 10); err == nil {
		t.Error("expected error for nil AM")
	}
	if _, err := NewUnfold(BaselineConfig(), decoder.Config{}, f.cam, f.clm, 10); err == nil {
		t.Error("expected error for config without LM cache")
	}
	if _, err := NewFullyComposed(BaselineConfig(), decoder.Config{}, nil, 10); err == nil {
		t.Error("expected error for nil graph")
	}
}

func TestBandwidthSplit(t *testing.T) {
	f := getFixture(t)
	u, _ := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	r, _ := u.DecodeAll(f.scores)
	var sum uint64
	for _, b := range r.DRAMByStream {
		sum += b
	}
	if sum != r.DRAMReadBytes+r.DRAMWriteBytes {
		t.Errorf("stream split %d != total %d", sum, r.DRAMReadBytes+r.DRAMWriteBytes)
	}
	if r.DRAMByStream[StreamAcoustic] == 0 {
		t.Error("no acoustic-score DMA traffic")
	}
	if r.BandwidthGBs() <= 0 {
		t.Error("no bandwidth")
	}
}

func TestHashOverflowSpillsToDRAM(t *testing.T) {
	f := getFixture(t)
	cfg := UnfoldConfig()
	cfg.HashEntries = 4 // absurdly small: force overflow every frame
	u, _ := NewUnfold(cfg, decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	r, _ := u.DecodeAll(f.scores)
	if r.OverflowTokens == 0 {
		t.Fatal("tiny hash table never overflowed")
	}
	big, _ := NewUnfold(UnfoldConfig(), decoder.Config{}, f.cam, f.clm, f.tk.AM.NumSenones)
	rb, _ := big.DecodeAll(f.scores)
	if rb.OverflowTokens != 0 {
		t.Errorf("32K-entry hash table overflowed %d times on a tiny task", rb.OverflowTokens)
	}
	if r.DRAMWriteBytes <= rb.DRAMWriteBytes {
		t.Error("overflow did not add DRAM write traffic")
	}
	if r.Cycles <= rb.Cycles {
		t.Error("overflow did not cost cycles")
	}
}

// The shipped configurations must match the paper's Table 3.
func TestConfigsMatchTable3(t *testing.T) {
	u := UnfoldConfig()
	if u.FreqHz != 800e6 {
		t.Errorf("UNFOLD frequency %v, want 800 MHz", u.FreqHz)
	}
	if u.StateCache.SizeBytes != 256<<10 || u.StateCache.Assoc != 4 {
		t.Errorf("UNFOLD state cache %+v", u.StateCache)
	}
	if u.AMArcCache.SizeBytes != 512<<10 || u.AMArcCache.Assoc != 8 {
		t.Errorf("UNFOLD AM arc cache %+v", u.AMArcCache)
	}
	if u.LMArcCache.SizeBytes != 32<<10 || u.TokenCache.SizeBytes != 128<<10 {
		t.Errorf("UNFOLD LM/token caches %+v %+v", u.LMArcCache, u.TokenCache)
	}
	if u.OffsetEntries != 32<<10 || u.HashBytes != 576<<10 || u.MemInflight != 32 {
		t.Errorf("UNFOLD offset/hash/meminflight %d %d %d", u.OffsetEntries, u.HashBytes, u.MemInflight)
	}
	// 32K entries x 6 bytes = 192 KB, the paper's offset-table budget.
	if u.OffsetEntries*OffsetEntryBytes != 192<<10 {
		t.Errorf("offset table bytes %d, want 192 KB", u.OffsetEntries*OffsetEntryBytes)
	}
	b := BaselineConfig()
	if b.FreqHz != 600e6 {
		t.Errorf("baseline frequency %v, want 600 MHz", b.FreqHz)
	}
	if b.StateCache.SizeBytes != 512<<10 || b.AMArcCache.SizeBytes != 1<<20 ||
		b.TokenCache.SizeBytes != 512<<10 || b.HashBytes != 768<<10 {
		t.Errorf("baseline caches %+v %+v %+v hash %d", b.StateCache, b.AMArcCache, b.TokenCache, b.HashBytes)
	}
	if b.LMArcCache.SizeBytes != 0 || b.OffsetEntries != 0 {
		t.Error("baseline must have no LM cache or offset table")
	}
}
