package accel

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestResultPublishTo checks the simulator → registry export: counters
// accumulate across results, gauges track the latest, and labeled series
// (DRAM streams, caches, energy components) appear in the exposition.
func TestResultPublishTo(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := &Result{
		Frames:         100,
		Cycles:         5000,
		OffsetHits:     40,
		OffsetMisses:   10,
		OverflowTokens: 2,
		DRAMReadBytes:  1 << 20,
		DRAMWriteBytes: 1 << 18,
		DRAMByStream:   map[string]uint64{StreamArcs: 1 << 19, StreamTokens: 1 << 17},
		Caches:         map[string]CacheStats{"state": {Accesses: 100, Misses: 7, Writes: 3}},
		EnergyJ:        map[string]float64{"DRAM": 0.5, "SRAM": 0.25},
		AvgPowerW:      0.462,
		AreaMM2:        24.5,
	}
	r.PublishTo(reg)
	r.PublishTo(reg) // counters accumulate, gauges overwrite

	var sb strings.Builder
	reg.WriteTo(&sb)
	out := sb.String()
	for _, line := range []string{
		"unfold_accel_frames_total 200",
		"unfold_accel_cycles_total 10000",
		"unfold_accel_offset_hits_total 80",
		`unfold_accel_dram_bytes_total{dir="read"} 2097152`,
		`unfold_accel_dram_stream_bytes_total{stream="ARCS"} 1048576`,
		`unfold_accel_cache_misses_total{cache="state"} 14`,
		`unfold_accel_energy_joules{component="DRAM"} 0.5`,
		"unfold_accel_power_watts 0.462",
		"unfold_accel_area_mm2 24.5",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q\n%s", line, out)
		}
	}

	// Nil-safety both ways.
	r.PublishTo(nil)
	(*Result)(nil).PublishTo(reg)
}
