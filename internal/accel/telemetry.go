package accel

import (
	"sort"

	"repro/internal/telemetry"
)

// PublishTo exports a simulation Result into a telemetry registry — the
// same counters the paper's Figures 8–13 are built from (cycles, offset
// lookup table hits, DRAM traffic by stream, SRAM cache behaviour, and the
// per-component energy breakdown), rendered as the serving stack's
// /metrics families so simulated and software runs are comparable on one
// dashboard. Repeated calls accumulate counters (simulation campaigns sum)
// and overwrite gauges (power and area describe the design, not the run).
// A nil registry or nil result is a no-op.
func (r *Result) PublishTo(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.Counter("unfold_accel_frames_total", "Frames decoded by the simulated accelerator.").Add(int64(r.Frames))
	reg.Counter("unfold_accel_cycles_total", "Simulated accelerator cycles.").Add(int64(r.Cycles))
	reg.Counter("unfold_accel_offset_hits_total", "Offset Lookup Table hits.").Add(int64(r.OffsetHits))
	reg.Counter("unfold_accel_offset_misses_total", "Offset Lookup Table misses.").Add(int64(r.OffsetMisses))
	reg.Counter("unfold_accel_overflow_tokens_total", "Tokens spilled past the hash-table ways.").Add(int64(r.OverflowTokens))
	reg.Counter("unfold_accel_dram_bytes_total", "DRAM traffic.", telemetry.L("dir", "read")).Add(int64(r.DRAMReadBytes))
	reg.Counter("unfold_accel_dram_bytes_total", "DRAM traffic.", telemetry.L("dir", "write")).Add(int64(r.DRAMWriteBytes))
	for _, stream := range sortedKeys(r.DRAMByStream) {
		reg.Counter("unfold_accel_dram_stream_bytes_total", "DRAM traffic by stream.",
			telemetry.L("stream", stream)).Add(int64(r.DRAMByStream[stream]))
	}
	for _, name := range sortedKeys(r.Caches) {
		st := r.Caches[name]
		l := telemetry.L("cache", name)
		reg.Counter("unfold_accel_cache_accesses_total", "SRAM cache accesses.", l).Add(int64(st.Accesses))
		reg.Counter("unfold_accel_cache_misses_total", "SRAM cache misses.", l).Add(int64(st.Misses))
		reg.Counter("unfold_accel_cache_writes_total", "SRAM cache writes.", l).Add(int64(st.Writes))
	}
	for _, comp := range sortedKeys(r.EnergyJ) {
		reg.Gauge("unfold_accel_energy_joules", "Energy by component for the last simulation.",
			telemetry.L("component", comp)).Set(r.EnergyJ[comp])
	}
	reg.Gauge("unfold_accel_power_watts", "Average power of the last simulation.").Set(r.AvgPowerW)
	reg.Gauge("unfold_accel_area_mm2", "Modelled die area.").Set(r.AreaMM2)
}

// sortedKeys returns m's keys in sorted order so exposition series are
// registered deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
