// Package accel is a cycle-approximate simulator of the two hardware
// designs the paper evaluates: UNFOLD (on-the-fly AM∘LM composition over
// the compressed datasets, with an Offset Lookup Table and preemptive
// back-off pruning) and the fully-composed Viterbi accelerator of Yazdani
// et al. MICRO-49 ("Reza et al."), which searches one offline-composed
// WFST.
//
// The simulator executes the real decode (it is also a functional emulator,
// like the paper's; Section 4) while charging pipeline cycles and driving
// set-associative cache models plus a DRAM channel, producing every
// quantity the evaluation section plots: per-cache miss ratios (Fig 6),
// Offset Lookup Table behaviour (Fig 7), search energy (Fig 9), power
// breakdown (Fig 10), memory bandwidth by stream (Fig 11), and decode time
// (Table 5).
package accel

// CacheConfig describes one set-associative cache.
type CacheConfig struct {
	SizeBytes int
	Assoc     int
	LineBytes int
}

// Config mirrors the paper's Table 3 accelerator parameters.
type Config struct {
	Name   string
	FreqHz float64

	StateCache CacheConfig
	AMArcCache CacheConfig // the unified Arc Cache in the baseline design
	LMArcCache CacheConfig // zero-size in the baseline design
	TokenCache CacheConfig

	AcousticBufBytes int
	HashBytes        int
	HashEntries      int

	// OffsetEntries is the Offset Lookup Table size (0 disables it; the
	// baseline design has none). Each entry is 6 bytes (valid + 24-bit tag
	// + 23-bit offset).
	OffsetEntries int

	// MemInflight is the memory controller's in-flight request capacity
	// (the memory-level parallelism bound).
	MemInflight int
	// DRAMLatencyCycles is the average miss-to-data latency in core cycles.
	DRAMLatencyCycles int
	// DRAMBytesPerCycle is the channel bandwidth at the core clock.
	DRAMBytesPerCycle float64
}

// Timing constants: issue costs per pipeline operation, in cycles. The
// pipeline is modelled as fully overlapped with memory (the frame's cycle
// count is the max of compute and DRAM time) plus a fixed per-frame
// synchronization overhead.
const (
	cyclesPerToken     = 2 // State Issuer: fetch + prune check
	cyclesPerArc       = 1 // Arc Issuer / Likelihood Evaluation, pipelined
	cyclesPerProbe     = 2 // one binary-search probe (AGU + fetch + compare)
	cyclesPerBackoff   = 2 // back-off arc fetch + weight apply + threshold check
	cyclesOffsetLookup = 1 // Offset Lookup Table probe
	cyclesPerNewToken  = 2 // Token Issuer: hash insert + lattice write
	cyclesPerFrame     = 32
)

// OffsetEntryBytes is the SRAM cost of one Offset Lookup Table entry.
const OffsetEntryBytes = 6

// UnfoldConfig returns the paper's UNFOLD configuration (Table 3, left).
func UnfoldConfig() Config {
	return Config{
		Name:       "UNFOLD",
		FreqHz:     800e6,
		StateCache: CacheConfig{SizeBytes: 256 << 10, Assoc: 4, LineBytes: 64},
		AMArcCache: CacheConfig{SizeBytes: 512 << 10, Assoc: 8, LineBytes: 64},
		LMArcCache: CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64},
		TokenCache: CacheConfig{SizeBytes: 128 << 10, Assoc: 2, LineBytes: 64},

		AcousticBufBytes: 64 << 10,
		HashBytes:        576 << 10,
		HashEntries:      32 << 10,
		OffsetEntries:    32 << 10,

		MemInflight:       32,
		DRAMLatencyCycles: 120, // ~150 ns at 800 MHz
		DRAMBytesPerCycle: 16,  // ~12.8 GB/s LPDDR4 channel
	}
}

// BaselineConfig returns the fully-composed accelerator of Yazdani et al.
// (Table 3, right): bigger caches, a single unified Arc Cache, no LM cache
// and no Offset Lookup Table, at 600 MHz.
func BaselineConfig() Config {
	return Config{
		Name:       "Reza et al.",
		FreqHz:     600e6,
		StateCache: CacheConfig{SizeBytes: 512 << 10, Assoc: 4, LineBytes: 64},
		AMArcCache: CacheConfig{SizeBytes: 1 << 20, Assoc: 4, LineBytes: 64},
		TokenCache: CacheConfig{SizeBytes: 512 << 10, Assoc: 2, LineBytes: 64},

		AcousticBufBytes: 64 << 10,
		HashBytes:        768 << 10,
		HashEntries:      32 << 10,

		MemInflight:       32,
		DRAMLatencyCycles: 90, // same ~150 ns at 600 MHz
		DRAMBytesPerCycle: 21, // same channel at the slower core clock
	}
}
