package accel

import (
	"fmt"

	"repro/internal/energy"
)

// CacheStats is the per-cache activity record.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
	Writes   uint64
}

// MissRatio returns misses/accesses (0 for an untouched cache).
func (s CacheStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// cache is a set-associative LRU cache model at line granularity.
type cache struct {
	name     string
	cfg      CacheConfig
	sets     [][]uint64 // tags per way; ^uint64(0) = invalid
	lineBits uint
	setMask  uint64
	stats    CacheStats
}

func newCache(name string, cfg CacheConfig) *cache {
	if cfg.SizeBytes == 0 {
		return nil
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 4
	}
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Assoc
	if nSets == 0 {
		nSets = 1
	}
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("accel: cache %s: %d sets not a power of two", name, nSets))
	}
	c := &cache{name: name, cfg: cfg, sets: make([][]uint64, nSets), setMask: uint64(nSets - 1)}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	c.lineBits = lb
	for i := range c.sets {
		ways := make([]uint64, cfg.Assoc)
		for w := range ways {
			ways[w] = ^uint64(0)
		}
		c.sets[i] = ways
	}
	return c
}

// access touches one byte range; every distinct line touched is one cache
// access. It returns the number of line misses. Writes are modelled
// write-allocate (the Token Cache's behaviour for lattice output).
func (c *cache) access(addr uint64, size uint64, write bool) (misses int) {
	if c == nil || size == 0 {
		return 0
	}
	first := addr >> c.lineBits
	last := (addr + size - 1) >> c.lineBits
	for line := first; line <= last; line++ {
		c.stats.Accesses++
		if write {
			c.stats.Writes++
		}
		set := c.sets[line&c.setMask]
		hit := -1
		for w, tag := range set {
			if tag == line {
				hit = w
				break
			}
		}
		if hit >= 0 {
			// Move to front (LRU position 0).
			copy(set[1:hit+1], set[:hit])
			set[0] = line
			continue
		}
		c.stats.Misses++
		misses++
		copy(set[1:], set[:len(set)-1])
		set[0] = line
	}
	return misses
}

// accessEnergy and leakage charge the energy model.
func (c *cache) dynamicPJ() float64 {
	if c == nil {
		return 0
	}
	reads := float64(c.stats.Accesses - c.stats.Writes)
	return reads*energy.SRAMReadPJ(int64(c.cfg.SizeBytes)) +
		float64(c.stats.Writes)*energy.SRAMWritePJ(int64(c.cfg.SizeBytes))
}

func (c *cache) leakageMW() float64 {
	if c == nil {
		return 0
	}
	return energy.SRAMLeakageMW(int64(c.cfg.SizeBytes))
}

func (c *cache) statsOrZero() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return c.stats
}

// offsetTable models the direct-mapped Offset Lookup Table (Section 3.1):
// indexed by XOR of LM state and word ID, storing a tag and the resolved
// arc offset of a previous binary search.
type offsetTable struct {
	entries []offsetEntry
	mask    uint64
	hits    uint64
	misses  uint64
}

type offsetEntry struct {
	valid bool
	key   uint64
	off   uint64
}

func newOffsetTable(entries int) *offsetTable {
	if entries == 0 {
		return nil
	}
	if entries&(entries-1) != 0 {
		panic("accel: offset table entries must be a power of two")
	}
	return &offsetTable{entries: make([]offsetEntry, entries), mask: uint64(entries - 1)}
}

func (t *offsetTable) index(lmState uint64, word uint64) uint64 {
	return (lmState ^ word) & t.mask
}

// lookup probes the table; on hit it returns the stored arc offset.
func (t *offsetTable) lookup(lmState, word uint64) (uint64, bool) {
	if t == nil {
		return 0, false
	}
	e := t.entries[t.index(lmState, word)]
	key := lmState<<20 | word
	if e.valid && e.key == key {
		t.hits++
		return e.off, true
	}
	t.misses++
	return 0, false
}

// insert stores the result of a completed binary search.
func (t *offsetTable) insert(lmState, word, off uint64) {
	if t == nil {
		return
	}
	t.entries[t.index(lmState, word)] = offsetEntry{valid: true, key: lmState<<20 | word, off: off}
}

func (t *offsetTable) hitRatio() float64 {
	if t == nil || t.hits+t.misses == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.hits+t.misses)
}

func (t *offsetTable) sizeBytes() int64 {
	if t == nil {
		return 0
	}
	return int64(len(t.entries)) * OffsetEntryBytes
}
