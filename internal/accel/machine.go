package accel

import (
	"repro/internal/decoder"
	"repro/internal/energy"
	"repro/internal/semiring"
)

// Memory-map region bases. Regions are disjoint so one physical address
// space serves all streams, as in the real design.
const (
	baseAMStates uint64 = 0x0000_0000
	baseAMArcs   uint64 = 0x1000_0000
	baseLMStates uint64 = 0x2000_0000
	baseLMArcs   uint64 = 0x3000_0000
	baseStates   uint64 = baseAMStates // composed baseline reuses the state region
	baseArcs     uint64 = baseAMArcs
	baseTokens   uint64 = 0x4000_0000
	baseAcoustic uint64 = 0x5000_0000
)

// Stream classes for the Figure 11 bandwidth split.
const (
	StreamStates   = "STATES"
	StreamArcs     = "ARCS"
	StreamTokens   = "TOKENS"
	StreamAcoustic = "ACOUSTIC"
)

// Result is the simulator output for one utterance.
type Result struct {
	Words        []int32
	Cost         semiring.Weight
	ReachedFinal bool
	Frames       int

	Cycles  uint64
	Seconds float64

	Dec decoder.Stats

	Caches         map[string]CacheStats
	OffsetHits     uint64
	OffsetMisses   uint64
	OverflowTokens uint64
	DRAMReadBytes  uint64
	DRAMWriteBytes uint64
	DRAMByStream   map[string]uint64

	// EnergyJ is the per-component energy breakdown (Figure 10 categories).
	EnergyJ      map[string]float64
	TotalEnergyJ float64
	AvgPowerW    float64
	AreaMM2      float64
}

// BandwidthGBs returns achieved DRAM bandwidth in GB/s.
func (r *Result) BandwidthGBs() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.DRAMReadBytes+r.DRAMWriteBytes) / r.Seconds / 1e9
}

// machine carries the shared microarchitectural state: caches, the offset
// table, DRAM counters and the timing model.
type machine struct {
	cfg Config

	state  *cache
	amArc  *cache
	lmArc  *cache
	token  *cache
	offtab *offsetTable

	// Totals.
	cycles         uint64
	dramReadBytes  uint64
	dramWriteBytes uint64
	byStream       map[string]uint64
	hashAccesses   uint64
	acousticReads  uint64
	fpOps          uint64
	pipeOps        uint64

	// Per-frame accumulators, reset by frameBarrier.
	frameCompute uint64
	frameMisses  uint64
	frameBytes   uint64
	frameTokens  uint64

	// overflowTokens counts tokens that exceeded the hash table's capacity
	// within one frame and spilled to the main-memory Overflow Buffer
	// (Section 3.2: "handling collisions and overflows ... as described in
	// the fully-composed design").
	overflowTokens uint64
}

func newMachine(cfg Config) *machine {
	return &machine{
		cfg:      cfg,
		state:    newCache("State", cfg.StateCache),
		amArc:    newCache("AMArc", cfg.AMArcCache),
		lmArc:    newCache("LMArc", cfg.LMArcCache),
		token:    newCache("Token", cfg.TokenCache),
		offtab:   newOffsetTable(cfg.OffsetEntries),
		byStream: make(map[string]uint64),
	}
}

// touch sends an access through a cache and charges DRAM for the misses.
func (m *machine) touch(c *cache, stream string, addr, size uint64, write bool) {
	misses := c.access(addr, size, write)
	if misses > 0 {
		bytes := uint64(misses) * uint64(c.cfg.LineBytes)
		m.frameMisses += uint64(misses)
		m.frameBytes += bytes
		m.byStream[stream] += bytes
		if write {
			m.dramWriteBytes += bytes
		} else {
			m.dramReadBytes += bytes
		}
	}
}

// compute charges pipeline cycles and generic pipeline-op energy.
func (m *machine) compute(cycles uint64) {
	m.frameCompute += cycles
	m.pipeOps += cycles
}

// overflowEntryBytes is the size of one spilled token record.
const overflowEntryBytes = 16

// noteTokenInsert tracks hash-table occupancy within a frame; inserts past
// the table's capacity spill to the DRAM Overflow Buffer, paying a write
// plus extra pipeline work.
func (m *machine) noteTokenInsert() {
	m.frameTokens++
	if m.frameTokens > uint64(m.cfg.HashEntries) {
		m.overflowTokens++
		m.frameBytes += overflowEntryBytes
		m.frameMisses++
		m.dramWriteBytes += overflowEntryBytes
		m.byStream[StreamTokens] += overflowEntryBytes
		m.compute(4)
	}
}

// acousticFrame models the per-frame DMA of acoustic scores from the shared
// main-memory buffer the GPU writes (Section 5.2) into the on-chip
// Acoustic Likelihood Buffer.
func (m *machine) acousticFrame(senones int) {
	bytes := uint64(senones) * 4
	m.frameBytes += bytes
	m.frameMisses += (bytes + uint64(64) - 1) / 64
	m.dramReadBytes += bytes
	m.byStream[StreamAcoustic] += bytes
}

// frameBarrier closes a frame: the pipeline overlaps compute with memory,
// so the frame costs the max of compute cycles and DRAM cycles (bounded by
// both latency×MLP and bandwidth), plus a fixed synchronization overhead.
func (m *machine) frameBarrier() {
	latencyBound := m.frameMisses * uint64(m.cfg.DRAMLatencyCycles) / uint64(m.cfg.MemInflight)
	bwBound := uint64(float64(m.frameBytes) / m.cfg.DRAMBytesPerCycle)
	dram := latencyBound
	if bwBound > dram {
		dram = bwBound
	}
	c := m.frameCompute
	if dram > c {
		c = dram
	}
	m.cycles += c + cyclesPerFrame
	m.frameCompute, m.frameMisses, m.frameBytes, m.frameTokens = 0, 0, 0, 0
}

// finalize computes the energy/power/area summary into a Result.
func (m *machine) finalize(res *Result) {
	res.Cycles = m.cycles
	res.Seconds = float64(m.cycles) / m.cfg.FreqHz
	res.Caches = map[string]CacheStats{
		"State": m.state.statsOrZero(),
		"AMArc": m.amArc.statsOrZero(),
		"LMArc": m.lmArc.statsOrZero(),
		"Token": m.token.statsOrZero(),
	}
	if m.offtab != nil {
		res.OffsetHits, res.OffsetMisses = m.offtab.hits, m.offtab.misses
	}
	res.OverflowTokens = m.overflowTokens
	res.DRAMReadBytes = m.dramReadBytes
	res.DRAMWriteBytes = m.dramWriteBytes
	res.DRAMByStream = m.byStream

	sec := res.Seconds
	e := map[string]float64{}
	e["StateCache"] = energy.Joules(m.state.dynamicPJ()) + energy.LeakageJoules(m.state.leakageMW(), sec)
	arcDyn := m.amArc.dynamicPJ() + m.lmArc.dynamicPJ()
	arcLeak := m.amArc.leakageMW() + m.lmArc.leakageMW()
	e["ArcCache"] = energy.Joules(arcDyn) + energy.LeakageJoules(arcLeak, sec)
	e["TokenCache"] = energy.Joules(m.token.dynamicPJ()) + energy.LeakageJoules(m.token.leakageMW(), sec)
	e["Hashes"] = energy.Joules(float64(m.hashAccesses)*energy.SRAMReadPJ(int64(m.cfg.HashBytes))) +
		energy.LeakageJoules(energy.SRAMLeakageMW(int64(m.cfg.HashBytes)), sec)
	acbDyn := float64(m.acousticReads) * energy.SRAMReadPJ(int64(m.cfg.AcousticBufBytes))
	pipeDyn := float64(m.pipeOps)*energy.PipelineOpPJ + float64(m.fpOps)*energy.FPAddPJ
	e["Pipeline"] = energy.Joules(pipeDyn+acbDyn) +
		energy.LeakageJoules(energy.PipelineLeakageMW+energy.SRAMLeakageMW(int64(m.cfg.AcousticBufBytes)), sec)
	if m.offtab != nil {
		probes := float64(m.offtab.hits + m.offtab.misses)
		e["OffsetTable"] = energy.Joules(probes*energy.SRAMReadPJ(m.offtab.sizeBytes())) +
			energy.LeakageJoules(energy.SRAMLeakageMW(m.offtab.sizeBytes()), sec)
	}
	e["MainMemory"] = energy.Joules(float64(m.dramReadBytes+m.dramWriteBytes)*energy.DRAMEnergyPerBytePJ) +
		energy.LeakageJoules(energy.DRAMBackgroundMW, sec)
	res.EnergyJ = e
	for _, v := range e {
		res.TotalEnergyJ += v
	}
	if sec > 0 {
		res.AvgPowerW = res.TotalEnergyJ / sec
	}
	res.AreaMM2 = m.areaMM2()
}

// areaMM2 sums the design's SRAM and logic area.
func (m *machine) areaMM2() float64 {
	a := energy.PipelineAreaMM2
	for _, c := range []*cache{m.state, m.amArc, m.lmArc, m.token} {
		if c != nil {
			a += energy.SRAMAreaMM2(int64(c.cfg.SizeBytes))
		}
	}
	a += energy.SRAMAreaMM2(int64(m.cfg.HashBytes))
	a += energy.SRAMAreaMM2(int64(m.cfg.AcousticBufBytes))
	if m.offtab != nil {
		a += energy.SRAMAreaMM2(m.offtab.sizeBytes())
	}
	return a
}

// bitSpan converts a (bit offset, bit width) field into the byte address
// range it occupies.
func bitSpan(base, bitOff uint64, bits uint) (addr, size uint64) {
	addr = base + bitOff/8
	end := base + (bitOff+uint64(bits)+7)/8
	return addr, end - addr
}
