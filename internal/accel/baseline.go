package accel

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// FullyComposed simulates the baseline accelerator of Yazdani et al.
// MICRO-49: a Viterbi search over one offline-composed WFST stored
// uncompressed in main memory (8-byte state records, 16-byte arcs), with a
// unified Arc Cache and no LM machinery.
type FullyComposed struct {
	cfg     Config
	dcfg    decoder.Config
	g       *wfst.WFST
	senones int
}

// NewFullyComposed builds the baseline simulator over a composed graph.
func NewFullyComposed(cfg Config, dcfg decoder.Config, g *wfst.WFST, senones int) (*FullyComposed, error) {
	if g == nil || g.Start() == wfst.NoState {
		return nil, fmt.Errorf("accel: baseline needs a composed graph")
	}
	return &FullyComposed{cfg: cfg, dcfg: withDecoderDefaults(dcfg), g: g, senones: senones}, nil
}

// DecodeAll decodes a batch of utterances on a warm machine and returns the
// aggregate result plus per-utterance timings.
func (b *FullyComposed) DecodeAll(utts [][][]float32) (*Result, []UttResult) {
	m := newMachine(b.cfg)
	agg := &Result{}
	var per []UttResult
	for _, scores := range utts {
		startCycles := m.cycles
		words, cost, final, dec := b.decodeOne(m, scores)
		agg.Frames += len(scores)
		addStats(&agg.Dec, dec)
		uc := m.cycles - startCycles
		per = append(per, UttResult{
			Words: words, Cost: cost, ReachedFinal: final,
			Frames: len(scores), Cycles: uc, Seconds: float64(uc) / b.cfg.FreqHz,
		})
	}
	if n := len(per); n > 0 {
		last := per[n-1]
		agg.Words, agg.Cost, agg.ReachedFinal = last.Words, last.Cost, last.ReachedFinal
	}
	m.finalize(agg)
	return agg, per
}

func (b *FullyComposed) decodeOne(m *machine, scores [][]float32) ([]int32, semiring.Weight, bool, decoder.Stats) {
	cfg := b.dcfg
	g := b.g
	st := decoder.Stats{Frames: len(scores)}
	lat := &hwLattice{}

	cur := map[uint64]tok{uint64(g.Start()): {semiring.One, -1}}
	b.epsClosure(m, cur, lat, &st)

	for f := range scores {
		m.acousticFrame(b.senones)
		_, cut := hwBeamPrune(cur, cfg.Beam, cfg.MaxActive)
		st.TokensBeamCut += cut
		st.TokensExpanded += int64(len(cur))
		next := make(map[uint64]tok, 2*len(cur))
		frame := scores[f]
		for k, t := range cur {
			s := wfst.StateID(k)
			m.hashAccesses++
			m.compute(cyclesPerToken)
			m.fpOps++
			m.touch(m.state, StreamStates, baseStates+uint64(s)*8, 8, false)
			arcBase := uint64(g.ArcIndexBase(s))
			for i, a := range g.Arcs(s) {
				if a.In == wfst.Epsilon {
					continue
				}
				m.touch(m.amArc, StreamArcs, baseArcs+(arcBase+uint64(i))*wfst.ArcBytes, wfst.ArcBytes, false)
				m.compute(cyclesPerArc)
				m.acousticReads++
				m.fpOps += 2
				st.ArcsTraversed++
				c := t.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
				latIdx := t.lat
				if a.Out != wfst.Epsilon {
					latIdx = lat.add(a.Out, t.lat)
					addrT := baseTokens + uint64(len(lat.words)-1)*latticeEntryBytes
					m.touch(m.token, StreamTokens, addrT, latticeEntryBytes, true)
					st.LatticeEntries++
				}
				b.relax(m, next, uint64(a.Next), c, latIdx, &st)
			}
		}
		b.epsClosure(m, next, lat, &st)
		if len(next) == 0 {
			return b.finish(m, cur, lat, st)
		}
		cur = next
		m.frameBarrier()
	}
	return b.finish(m, cur, lat, st)
}

func (b *FullyComposed) relax(m *machine, next map[uint64]tok, k uint64, c semiring.Weight, latIdx int32, st *decoder.Stats) bool {
	old, ok := next[k]
	m.hashAccesses++
	if !ok {
		next[k] = tok{c, latIdx}
		m.hashAccesses++
		m.noteTokenInsert()
		m.compute(cyclesPerNewToken)
		st.TokensCreated++
		return true
	}
	m.fpOps++
	if c < old.cost {
		next[k] = tok{c, latIdx}
		m.hashAccesses++
		return true
	}
	return false
}

func (b *FullyComposed) epsClosure(m *machine, active map[uint64]tok, lat *hwLattice, st *decoder.Stats) {
	queue := make([]uint64, 0, len(active))
	for k := range active {
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		t, ok := active[k]
		if !ok {
			continue
		}
		s := wfst.StateID(k)
		arcBase := uint64(b.g.ArcIndexBase(s))
		for i, a := range b.g.Arcs(s) {
			if a.In != wfst.Epsilon {
				continue
			}
			m.touch(m.amArc, StreamArcs, baseArcs+(arcBase+uint64(i))*wfst.ArcBytes, wfst.ArcBytes, false)
			m.compute(cyclesPerArc)
			st.EpsTraversed++
			c := t.cost + a.W
			latIdx := t.lat
			if a.Out != wfst.Epsilon {
				latIdx = lat.add(a.Out, t.lat)
				addrT := baseTokens + uint64(len(lat.words)-1)*latticeEntryBytes
				m.touch(m.token, StreamTokens, addrT, latticeEntryBytes, true)
				st.LatticeEntries++
			}
			if b.relax(m, active, uint64(a.Next), c, latIdx, st) {
				queue = append(queue, uint64(a.Next))
			}
		}
	}
}

func (b *FullyComposed) finish(m *machine, active map[uint64]tok, lat *hwLattice, st decoder.Stats) ([]int32, semiring.Weight, bool, decoder.Stats) {
	bestCost := semiring.Zero
	bestLat := int32(-1)
	reached := false
	anyCost, anyLat := semiring.Zero, int32(-1)
	for k, t := range active {
		s := wfst.StateID(k)
		if fw := b.g.Final(s); !semiring.IsZero(fw) {
			c := t.cost + fw
			if c < bestCost {
				bestCost, bestLat, reached = c, t.lat, true
			}
		}
		if t.cost < anyCost {
			anyCost, anyLat = t.cost, t.lat
		}
	}
	if !reached {
		bestCost, bestLat = anyCost, anyLat
	}
	m.frameBarrier()
	if semiring.IsZero(bestCost) {
		return nil, semiring.Zero, false, st
	}
	return lat.backtrace(bestLat), bestCost, reached, st
}
