package accel

import (
	"fmt"
	"sort"

	"repro/internal/compress"
	"repro/internal/decoder"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Unfold simulates the paper's accelerator: on-the-fly composition over the
// compressed AM and LM datasets with the Offset Lookup Table and optional
// preemptive back-off pruning.
type Unfold struct {
	cfg     Config
	dcfg    decoder.Config
	am      *compress.AM
	lm      *compress.LM
	senones int
}

// UttResult is the per-utterance slice of a batch decode (Table 5 latency).
type UttResult struct {
	Words        []int32
	Cost         semiring.Weight
	ReachedFinal bool
	Frames       int
	Cycles       uint64
	Seconds      float64
}

// NewUnfold builds the UNFOLD simulator. senones is the acoustic-score
// vector length (drives the per-frame score DMA).
func NewUnfold(cfg Config, dcfg decoder.Config, am *compress.AM, lm *compress.LM, senones int) (*Unfold, error) {
	if am == nil || lm == nil {
		return nil, fmt.Errorf("accel: UNFOLD needs compressed AM and LM")
	}
	if cfg.LMArcCache.SizeBytes == 0 {
		return nil, fmt.Errorf("accel: UNFOLD config needs an LM arc cache")
	}
	return &Unfold{cfg: cfg, dcfg: withDecoderDefaults(dcfg), am: am, lm: lm, senones: senones}, nil
}

// withDecoderDefaults mirrors decoder.Config defaulting (unexported there).
func withDecoderDefaults(c decoder.Config) decoder.Config {
	if c.Beam == 0 {
		c.Beam = 24
	}
	if c.MaxActive == 0 {
		c.MaxActive = 3000
	}
	if c.AcousticScale == 0 {
		c.AcousticScale = 0.8
	}
	return c
}

// tok/lattice mirror the software decoder's structures; the lattice models
// the compact word-lattice records the Token Issuer writes to main memory.
type tok struct {
	cost semiring.Weight
	lat  int32
}

type hwLattice struct {
	words []int32
	prev  []int32
}

func (l *hwLattice) add(word, prev int32) int32 {
	l.words = append(l.words, word)
	l.prev = append(l.prev, prev)
	return int32(len(l.words) - 1)
}

func (l *hwLattice) backtrace(idx int32) []int32 {
	var rev []int32
	for i := idx; i >= 0; i = l.prev[i] {
		rev = append(rev, l.words[i])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// latticeEntryBytes is the size of one compact lattice record ([22]).
const latticeEntryBytes = 8

// DecodeAll decodes a batch of utterances on a warm machine (caches and the
// Offset Lookup Table persist across utterances, as in hardware) and
// returns the aggregate result plus per-utterance timings.
func (u *Unfold) DecodeAll(utts [][][]float32) (*Result, []UttResult) {
	m := newMachine(u.cfg)
	agg := &Result{}
	var per []UttResult
	for _, scores := range utts {
		startCycles := m.cycles
		words, cost, final, dec := u.decodeOne(m, scores)
		agg.Frames += len(scores)
		addStats(&agg.Dec, dec)
		uc := m.cycles - startCycles
		per = append(per, UttResult{
			Words: words, Cost: cost, ReachedFinal: final,
			Frames: len(scores), Cycles: uc, Seconds: float64(uc) / u.cfg.FreqHz,
		})
	}
	if n := len(per); n > 0 {
		last := per[n-1]
		agg.Words, agg.Cost, agg.ReachedFinal = last.Words, last.Cost, last.ReachedFinal
	}
	m.finalize(agg)
	return agg, per
}

func addStats(dst *decoder.Stats, s decoder.Stats) {
	dst.Frames += s.Frames
	dst.TokensExpanded += s.TokensExpanded
	dst.TokensCreated += s.TokensCreated
	dst.TokensBeamCut += s.TokensBeamCut
	dst.ArcsTraversed += s.ArcsTraversed
	dst.EpsTraversed += s.EpsTraversed
	dst.LMFetches += s.LMFetches
	dst.LMProbes += s.LMProbes
	dst.BackoffHops += s.BackoffHops
	dst.MemoHits += s.MemoHits
	dst.MemoMisses += s.MemoMisses
	dst.PreemptivePruned += s.PreemptivePruned
	dst.LatticeEntries += s.LatticeEntries
}

func (u *Unfold) decodeOne(m *machine, scores [][]float32) ([]int32, semiring.Weight, bool, decoder.Stats) {
	cfg := u.dcfg
	st := decoder.Stats{Frames: len(scores)}
	lat := &hwLattice{}
	key := func(am, lm wfst.StateID) uint64 { return uint64(uint32(am))<<32 | uint64(uint32(lm)) }

	cur := map[uint64]tok{key(u.am.Start(), 0): {semiring.One, -1}}
	u.epsClosure(m, cur, lat, &st)

	keys := make([]uint64, 0, 64)
	for f := range scores {
		m.acousticFrame(u.senones)
		_, cut := hwBeamPrune(cur, cfg.Beam, cfg.MaxActive)
		st.TokensBeamCut += cut
		st.TokensExpanded += int64(len(cur))
		next := make(map[uint64]tok, 2*len(cur))
		frame := scores[f]

		keys = keys[:0]
		for k := range cur {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		runningBest := semiring.Zero
		thr := func() semiring.Weight {
			if semiring.IsZero(runningBest) {
				return semiring.Zero
			}
			return runningBest + cfg.Beam
		}

		for _, k := range keys {
			t := cur[k]
			amS := wfst.StateID(k >> 32)
			lmS := wfst.StateID(uint32(k))
			// State Issuer: hash read + AM state record fetch + prune check.
			m.hashAccesses++
			m.compute(cyclesPerToken)
			m.fpOps++
			m.touch(m.state, StreamStates, baseAMStates+uint64(amS)*5, 5, false)

			u.am.VisitArcs(amS, func(a wfst.Arc, bitOff uint64, bits uint) bool {
				if a.In == wfst.Epsilon {
					return true
				}
				addr, size := bitSpan(baseAMArcs, bitOff, bits)
				m.touch(m.amArc, StreamArcs, addr, size, false)
				m.compute(cyclesPerArc)
				m.acousticReads++
				m.fpOps += 2
				st.ArcsTraversed++
				c := t.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
				lmNext, latIdx := lmS, t.lat
				if a.Out != wfst.Epsilon {
					var ok bool
					var lmW semiring.Weight
					lmNext, lmW, ok = u.resolve(m, lmS, a.Out, c, thr(), &st)
					if !ok {
						return true
					}
					c += lmW
					latIdx = lat.add(a.Out, t.lat)
					addrT := baseTokens + uint64(len(lat.words)-1)*latticeEntryBytes
					m.touch(m.token, StreamTokens, addrT, latticeEntryBytes, true)
					st.LatticeEntries++
				}
				u.relax(m, next, key(a.Next, lmNext), c, latIdx, &st)
				if c < runningBest {
					runningBest = c
				}
				return true
			})
		}
		u.epsClosure(m, next, lat, &st)
		if len(next) == 0 {
			return u.finish(m, cur, lat, st)
		}
		cur = next
		m.frameBarrier()
	}
	words, cost, final, st2 := u.finish(m, cur, lat, st)
	return words, cost, final, st2
}

// relax inserts or improves a token, charging Token Issuer work.
func (u *Unfold) relax(m *machine, next map[uint64]tok, k uint64, c semiring.Weight, latIdx int32, st *decoder.Stats) bool {
	old, ok := next[k]
	m.hashAccesses++ // hash probe
	if !ok {
		next[k] = tok{c, latIdx}
		m.hashAccesses++ // insert
		m.noteTokenInsert()
		m.compute(cyclesPerNewToken)
		st.TokensCreated++
		return true
	}
	m.fpOps++ // compare
	if c < old.cost {
		next[k] = tok{c, latIdx}
		m.hashAccesses++ // update
		return true
	}
	return false
}

// resolve performs the hardware LM arc fetch with back-off (Sections 3.1
// and 3.3), charging offset-table probes, binary-search fetches through the
// LM Arc Cache, and preemptive pruning checks.
func (u *Unfold) resolve(m *machine, s wfst.StateID, word int32, base, thr semiring.Weight, st *decoder.Stats) (wfst.StateID, semiring.Weight, bool) {
	st.LMFetches++
	acc := semiring.One
	for hops := 0; hops < 16; hops++ {
		// LM state record fetch (shared State Cache, Section 3.1).
		m.touch(m.state, StreamStates, baseLMStates+uint64(s)*8, 8, false)
		a, found := u.findArc(m, s, word, st)
		if found {
			return a.Next, acc + a.W, true
		}
		bo, ok := u.lm.BackoffArc(s, func(off uint64, bits uint) {
			addr, size := bitSpan(baseLMArcs, off, bits)
			m.touch(m.lmArc, StreamArcs, addr, size, false)
		})
		if !ok {
			return wfst.NoState, semiring.Zero, false
		}
		m.compute(cyclesPerBackoff)
		m.fpOps += 2
		st.BackoffHops++
		acc += bo.W
		s = bo.Next
		if u.dcfg.PreemptivePruning && base+acc > thr {
			st.PreemptivePruned++
			return wfst.NoState, semiring.Zero, false
		}
	}
	return wfst.NoState, semiring.Zero, false
}

// findArc locates word's arc at LM state s under the configured lookup
// strategy, modelling the Offset Lookup Table for LookupMemo.
func (u *Unfold) findArc(m *machine, s wfst.StateID, word int32, st *decoder.Stats) (wfst.Arc, bool) {
	probe := func(off uint64, bits uint) {
		addr, size := bitSpan(baseLMArcs, off, bits)
		m.touch(m.lmArc, StreamArcs, addr, size, false)
		m.compute(cyclesPerProbe)
		st.LMProbes++
	}
	switch u.dcfg.Lookup {
	case decoder.LookupLinear:
		return u.lm.FindArcLinear(s, word, probe)
	case decoder.LookupBinary:
		return u.lm.FindArc(s, word, probe)
	default: // LookupMemo: Offset Lookup Table in front of binary search.
		if s == 0 {
			// Unigram arcs are directly indexed; no search, no table entry.
			return u.lm.FindArc(s, word, probe)
		}
		if m.offtab != nil {
			m.compute(cyclesOffsetLookup)
			if off, hit := m.offtab.lookup(uint64(uint32(s)), uint64(uint32(word))); hit {
				st.MemoHits++
				addr, size := bitSpan(baseLMArcs, off, 45)
				m.touch(m.lmArc, StreamArcs, addr, size, false)
				m.compute(cyclesPerArc)
				return u.lm.ArcAtOffset(off), true
			}
			st.MemoMisses++
		}
		var lastOff uint64
		var probed bool
		a, ok := u.lm.FindArc(s, word, func(off uint64, bits uint) {
			lastOff, probed = off, true
			probe(off, bits)
		})
		if ok && probed && m.offtab != nil {
			m.offtab.insert(uint64(uint32(s)), uint64(uint32(word)), lastOff)
		}
		return a, ok
	}
}

// epsClosure relaxes the AM's non-emitting arcs (word-end loop-backs).
func (u *Unfold) epsClosure(m *machine, active map[uint64]tok, lat *hwLattice, st *decoder.Stats) {
	queue := make([]uint64, 0, len(active))
	for k := range active {
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		t, ok := active[k]
		if !ok {
			continue
		}
		amS := wfst.StateID(k >> 32)
		lmS := wfst.StateID(uint32(k))
		u.am.VisitArcs(amS, func(a wfst.Arc, bitOff uint64, bits uint) bool {
			if a.In != wfst.Epsilon {
				return true
			}
			addr, size := bitSpan(baseAMArcs, bitOff, bits)
			m.touch(m.amArc, StreamArcs, addr, size, false)
			m.compute(cyclesPerArc)
			st.EpsTraversed++
			c := t.cost + a.W
			nk := uint64(uint32(a.Next))<<32 | uint64(uint32(lmS))
			if u.relax(m, active, nk, c, t.lat, st) {
				queue = append(queue, nk)
			}
			return true
		})
	}
}

func (u *Unfold) finish(m *machine, active map[uint64]tok, lat *hwLattice, st decoder.Stats) ([]int32, semiring.Weight, bool, decoder.Stats) {
	bestCost := semiring.Zero
	bestLat := int32(-1)
	reached := false
	anyCost, anyLat := semiring.Zero, int32(-1)
	for k, t := range active {
		amS := wfst.StateID(k >> 32)
		lmS := wfst.StateID(uint32(k))
		fa, fl := u.am.Final(amS), u.lm.Final(lmS)
		if !semiring.IsZero(fa) && !semiring.IsZero(fl) {
			c := t.cost + fa + fl
			if c < bestCost {
				bestCost, bestLat, reached = c, t.lat, true
			}
		}
		if t.cost < anyCost {
			anyCost, anyLat = t.cost, t.lat
		}
	}
	if !reached {
		bestCost, bestLat = anyCost, anyLat
	}
	m.frameBarrier()
	if semiring.IsZero(bestCost) {
		return nil, semiring.Zero, false, st
	}
	return lat.backtrace(bestLat), bestCost, reached, st
}

// hwBeamPrune mirrors the software decoder's pruning (deterministic).
func hwBeamPrune(active map[uint64]tok, beam semiring.Weight, maxActive int) (semiring.Weight, int64) {
	if len(active) == 0 {
		return semiring.Zero, 0
	}
	best := semiring.Zero
	for _, t := range active {
		if t.cost < best {
			best = t.cost
		}
	}
	thr := best + beam
	var cut int64
	for k, t := range active {
		if t.cost > thr {
			delete(active, k)
			cut++
		}
	}
	if maxActive > 0 && len(active) > maxActive {
		type kt struct {
			k uint64
			c semiring.Weight
		}
		all := make([]kt, 0, len(active))
		for k, t := range active {
			all = append(all, kt{k, t.cost})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c < all[j].c
			}
			return all[i].k < all[j].k
		})
		for _, e := range all[maxActive:] {
			delete(active, e.k)
			cut++
		}
		thr = all[maxActive-1].c
	}
	return thr, cut
}
