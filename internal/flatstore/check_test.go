package flatstore

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

// TestCheckHeaderDisk re-verifies a healthy bundle on disk, then damages it
// in place and checks the failure taxonomy: header-region corruption trips
// the CRC, truncation trips the size check.
func TestCheckHeaderDisk(t *testing.T) {
	path, _ := writeTestBundle(t)
	if err := CheckHeader(path); err != nil {
		t.Fatalf("healthy bundle: %v", err)
	}

	// Flip one byte inside the covered header region.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), raw...)
	damaged[9] ^= 0x40
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	err = CheckHeader(path)
	var fe *Error
	if !errors.As(err, &fe) || fe.Reason != "checksum" {
		t.Fatalf("corrupted header: %v, want *Error{checksum}", err)
	}

	// Truncation is caught by the size cross-check before any CRC work.
	if err := os.WriteFile(path, raw[:len(raw)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckHeader(path); err == nil {
		t.Fatal("truncated bundle passed CheckHeader")
	}

	if err := CheckHeader(path + ".missing"); !errors.As(err, &fe) || fe.Reason != "io" {
		t.Fatalf("missing file: %v, want *Error{io}", err)
	}
}

// failAfterReader fails every ReadAt past the first n calls — a stand-in
// for the fault-injection wrappers that live outside this package.
type failAfterReader struct {
	raw   []byte
	ok    int
	reads int
}

func (f *failAfterReader) ReadAt(p []byte, off int64) (int, error) {
	f.reads++
	if f.reads > f.ok {
		return 0, fmt.Errorf("injected read fault at read %d", f.reads)
	}
	copy(p, f.raw[off:])
	return len(p), nil
}

// TestCheckHeaderReaderFaults drives the io.ReaderAt seam: read failures on
// the header and on the table surface as *Error{io}, not panics.
func TestCheckHeaderReaderFaults(t *testing.T) {
	path, _ := writeTestBundle(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for okReads := 0; okReads <= 1; okReads++ {
		err := CheckHeaderReader(&failAfterReader{raw: raw, ok: okReads}, int64(len(raw)))
		var fe *Error
		if !errors.As(err, &fe) || fe.Reason != "io" {
			t.Errorf("with %d good reads: %v, want *Error{io}", okReads, err)
		}
	}
	// Both reads succeeding re-verifies clean.
	if err := CheckHeaderReader(&failAfterReader{raw: raw, ok: 2}, int64(len(raw))); err != nil {
		t.Errorf("healthy reader: %v", err)
	}
}

// TestRecheckDetectsInPlaceMutation opens a bundle over a heap buffer,
// mutates the buffer under it — the serving analogue is MAP_SHARED making
// on-disk damage visible through the mapping — and checks the cheap pass
// catches header damage and the full pass catches payload damage.
func TestRecheckDetectsInPlaceMutation(t *testing.T) {
	path, _ := writeTestBundle(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenBytes(raw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recheck(false); err != nil {
		t.Fatalf("healthy recheck: %v", err)
	}
	if err := b.Recheck(true); err != nil {
		t.Fatalf("healthy full recheck: %v", err)
	}

	// Mutate a payload byte: the cheap pass stays clean (it only covers the
	// header and table), the full pass trips the section CRC.
	var secOff int
	for _, s := range b.sections {
		if s.kind == SectionLexicon {
			secOff = int(s.offset)
		}
	}
	raw[secOff] ^= 0x01
	if err := b.Recheck(false); err != nil {
		t.Errorf("cheap recheck should not read payloads: %v", err)
	}
	var fe *Error
	if err := b.Recheck(true); !errors.As(err, &fe) || fe.Reason != "checksum" {
		t.Errorf("full recheck after payload mutation: %v, want *Error{checksum}", err)
	}
	raw[secOff] ^= 0x01

	// Mutate a header byte: the cheap pass trips, and the error names the
	// checksum remembered at open.
	raw[9] ^= 0x40
	if err := b.Recheck(false); !errors.As(err, &fe) || fe.Reason != "checksum" {
		t.Errorf("cheap recheck after header mutation: %v, want *Error{checksum}", err)
	}
	raw[9] ^= 0x40

	// Damage to the stored CRC field is outside the hashed range, so the
	// in-place pass (which compares against the value remembered at open)
	// stays clean — but a fresh open, the reload path, rejects it.
	raw[HeaderSize-1] ^= 0xFF
	if _, err := OpenBytes(raw, Options{}); err == nil {
		t.Error("OpenBytes accepted a bundle with a damaged stored CRC")
	}
	raw[HeaderSize-1] ^= 0xFF

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Recheck(false); err == nil {
		t.Error("recheck on a closed bundle should fail")
	}
}
