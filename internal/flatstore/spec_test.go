package flatstore_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/flatstore"
	"repro/internal/wfst"
)

// This file is the spec-conformance test for docs/MODEL_STORE.md: it
// constructs bundle bytes by hand, straight from the documented layout —
// no flatstore.Writer involved — and requires the reader to accept them.
// If the document and the implementation ever disagree, this test is the
// alarm. Keep the literals in sync with the spec, not with the code.

// specSection is one section to lay out per MODEL_STORE.md §2.
type specSection struct {
	kind    uint32
	payload []byte
}

// buildSpecBundle assembles a bundle exactly as §2 describes: 48-byte
// header, 32-byte table entries immediately after it, payloads 16-byte
// aligned, CRC-32/IEEE section checksums in the table, and a header
// checksum over header[0:44] plus the whole table. Unlike the reference
// writer it does NOT reserve a max-size table gap — offsets are explicit,
// so a minimal layout is equally valid and proves readers honor them.
func buildSpecBundle(sections []specSection) []byte {
	const (
		headerSize = 48
		entrySize  = 32
		align      = 16
	)
	tableLen := len(sections) * entrySize
	// Compute payload offsets: first 16-byte boundary after the table.
	offsets := make([]uint64, len(sections))
	off := uint64(headerSize + tableLen)
	for i, s := range sections {
		if pad := (align - off%align) % align; pad != 0 {
			off += pad
		}
		offsets[i] = off
		off += uint64(len(s.payload))
	}
	fileSize := off

	buf := make([]byte, fileSize)
	// Header (§2.1).
	binary.LittleEndian.PutUint32(buf[0:4], 0x33424655) // "UFB3"
	binary.LittleEndian.PutUint32(buf[4:8], 3)          // version
	binary.LittleEndian.PutUint32(buf[8:12], 0)         // flags
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(sections)))
	binary.LittleEndian.PutUint64(buf[16:24], fileSize)
	binary.LittleEndian.PutUint64(buf[24:32], headerSize) // table offset
	// buf[32:44] reserved, zero.

	// Section table (§2.2) and payloads.
	for i, s := range sections {
		e := buf[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:4], s.kind)
		binary.LittleEndian.PutUint64(e[8:16], offsets[i])
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(e[24:28], crc32.ChecksumIEEE(s.payload))
		copy(buf[offsets[i]:], s.payload)
	}

	// Header CRC (§2.1): header[0:44] ++ table, one continuous stream.
	h := crc32.NewIEEE()
	h.Write(buf[:headerSize-4])
	h.Write(buf[headerSize : headerSize+tableLen])
	binary.LittleEndian.PutUint32(buf[headerSize-4:headerSize], h.Sum32())
	return buf
}

// flatState emits one §4.2 state record.
func flatState(arcBegin uint32, final float32) []byte {
	rec := make([]byte, 8)
	binary.LittleEndian.PutUint32(rec[0:4], arcBegin)
	binary.LittleEndian.PutUint32(rec[4:8], math.Float32bits(final))
	return rec
}

// flatArc emits one §4.2 arc record.
func flatArc(in, out int32, w float32, next int32) []byte {
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(in))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(out))
	binary.LittleEndian.PutUint32(rec[8:12], math.Float32bits(w))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(next))
	return rec
}

var inf32 = float32(math.Inf(1))

// TestSpecConformance opens a hand-built bundle with full verification
// and checks every documented property end to end.
func TestSpecConformance(t *testing.T) {
	meta := []byte(`{"format_version":3}`)
	// A 2-state graph per §4.2: state 0 has one arc to state 1; state 1 is
	// final with weight 0. The worked-example arc from the spec.
	states := bytes.Join([][]byte{
		flatState(0, inf32), // state 0: arcs [0,1), non-final
		flatState(1, 0),     // state 1: arcs [1,1), final weight 0
		flatState(1, inf32), // sentinel: arcBegin == arc count
	}, nil)
	arcs := flatArc(677, 5438, -2.5, 1)

	data := buildSpecBundle([]specSection{
		{kind: 1, payload: meta},   // meta
		{kind: 2, payload: states}, // am-states
		{kind: 3, payload: arcs},   // am-arcs
	})

	b, err := flatstore.OpenBytes(data, flatstore.Options{VerifySections: true})
	if err != nil {
		t.Fatalf("spec-built bundle rejected: %v", err)
	}
	defer b.Close()

	if got, _ := b.Section(flatstore.SectionMeta); !bytes.Equal(got, meta) {
		t.Errorf("meta section = %q, want %q", got, meta)
	}
	kinds := b.Kinds()
	want := []flatstore.SectionKind{flatstore.SectionMeta, flatstore.SectionAMStates, flatstore.SectionAMArcs}
	if len(kinds) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("Kinds()[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}

	// The graph sections must decode through the zero-copy constructor and
	// yield exactly the documented arc.
	sb, _ := b.Section(flatstore.SectionAMStates)
	ab, _ := b.Section(flatstore.SectionAMArcs)
	g, err := wfst.NewFromFlat(0, 2, sb, ab, false)
	if err != nil {
		t.Fatalf("spec-built graph rejected: %v", err)
	}
	got := g.Arcs(0)
	if len(got) != 1 {
		t.Fatalf("state 0 has %d arcs, want 1", len(got))
	}
	a := got[0]
	if a.In != 677 || a.Out != 5438 || float32(a.W) != -2.5 || a.Next != 1 {
		t.Errorf("decoded arc %+v, want {In:677 Out:5438 W:-2.5 Next:1}", a)
	}
	if len(g.Arcs(1)) != 0 {
		t.Errorf("state 1 should have no arcs")
	}
	if math.IsInf(float64(g.Final(0)), 1) == false {
		t.Errorf("state 0 should be non-final, got %v", g.Final(0))
	}
	if g.Final(1) != 0 {
		t.Errorf("state 1 final = %v, want 0", g.Final(1))
	}
}

// TestSpecWorkedExamples pins the literal hex from MODEL_STORE.md §4.2
// so the document's byte strings cannot rot.
func TestSpecWorkedExamples(t *testing.T) {
	wantArc := []byte{
		0xa5, 0x02, 0x00, 0x00, // in = 677
		0x3e, 0x15, 0x00, 0x00, // out = 5438
		0x00, 0x00, 0x20, 0xc0, // w = -2.5f
		0x62, 0x60, 0x01, 0x00, // next = 90210
	}
	if got := flatArc(677, 5438, -2.5, 90210); !bytes.Equal(got, wantArc) {
		t.Errorf("worked arc example:\n got %x\nspec %x", got, wantArc)
	}
	wantState := []byte{0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
	if got := flatState(3, 0); !bytes.Equal(got, wantState) {
		t.Errorf("worked state example:\n got %x\nspec %x", got, wantState)
	}
	wantSentinel := []byte{0x07, 0x01, 0x00, 0x00, 0x00, 0x00, 0x80, 0x7f}
	if got := flatState(263, inf32); !bytes.Equal(got, wantSentinel) {
		t.Errorf("worked sentinel example:\n got %x\nspec %x", got, wantSentinel)
	}
}

// TestSpecCorruptionRejected flips one payload byte and one header byte
// of a spec-built bundle and requires the documented failure reasons.
func TestSpecCorruptionRejected(t *testing.T) {
	build := func() []byte {
		return buildSpecBundle([]specSection{
			{kind: 1, payload: []byte(`{"format_version":3}`)},
		})
	}

	data := build()
	data[len(data)-1] ^= 0xFF // payload corruption
	if _, err := flatstore.OpenBytes(data, flatstore.Options{VerifySections: true}); err == nil {
		t.Error("payload corruption passed full verification")
	} else if fe, ok := err.(*flatstore.Error); !ok || fe.Reason != "checksum" {
		t.Errorf("payload corruption reason = %v, want checksum", err)
	}
	// The O(1) open must NOT notice payload corruption — that is the
	// documented trust trade-off.
	if _, err := flatstore.OpenBytes(data, flatstore.Options{}); err != nil {
		t.Errorf("O(1) open should skip payload checksums, got %v", err)
	}

	data = build()
	data[16] ^= 0xFF // header file-size field
	if _, err := flatstore.OpenBytes(data, flatstore.Options{}); err == nil {
		t.Error("header corruption passed the O(1) open")
	}
}
