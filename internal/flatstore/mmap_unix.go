//go:build unix

package flatstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and returns the mapping plus its
// unmap function. Mapping a zero-length file is invalid; such files are
// shorter than the header and rejected later, so return a descriptive error
// here instead of calling mmap.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("flatstore: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
