package flatstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeTestBundle builds a bundle with a few sections of varied sizes and
// returns its path plus the payloads by kind.
func writeTestBundle(t *testing.T) (string, map[SectionKind][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.ufb3")
	payloads := map[SectionKind][]byte{
		SectionMeta:     []byte(`{"format_version":3}`),
		SectionAMStates: bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 5),
		SectionAMArcs:   bytes.Repeat([]byte{9}, 16*7),
		SectionLexicon:  []byte("a\nb\nc\n"),
	}
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []SectionKind{SectionMeta, SectionAMStates, SectionAMArcs, SectionLexicon} {
		p := payloads[k]
		if err := w.AddSection(k, func(out io.Writer) error {
			// Write in two chunks so streamed CRC accumulation is exercised.
			if _, err := out.Write(p[:len(p)/2]); err != nil {
				return err
			}
			_, err := out.Write(p[len(p)/2:])
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, payloads
}

func openBoth(t *testing.T, path string, opts Options) []*Bundle {
	t.Helper()
	mapped, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	noMap := opts
	noMap.DisableMmap = true
	heap, err := Open(path, noMap)
	if err != nil {
		t.Fatal(err)
	}
	if heap.Mapped() {
		t.Fatal("DisableMmap bundle reports Mapped")
	}
	return []*Bundle{mapped, heap}
}

func TestRoundTrip(t *testing.T) {
	path, payloads := writeTestBundle(t)
	for _, b := range openBoth(t, path, Options{VerifySections: true}) {
		for k, want := range payloads {
			got, ok := b.Section(k)
			if !ok {
				t.Fatalf("section %s missing", k)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("section %s: got %q want %q", k, got, want)
			}
		}
		if _, ok := b.Section(SectionARPA); ok {
			t.Fatal("absent section reported present")
		}
		if _, err := b.MustSection(SectionARPA); err == nil {
			t.Fatal("MustSection on absent section did not error")
		}
		if err := b.VerifySections(); err != nil {
			t.Fatal(err)
		}
		if b.SizeBytes() <= 0 {
			t.Fatal("non-positive SizeBytes")
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSectionAlignment(t *testing.T) {
	path, _ := writeTestBundle(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenBytes(raw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := binary.LittleEndian.Uint32(raw[12:16])
	tableOff := binary.LittleEndian.Uint64(raw[24:32])
	for i := uint32(0); i < count; i++ {
		off := binary.LittleEndian.Uint64(raw[tableOff+uint64(i)*EntrySize+8:])
		if off%Align != 0 {
			t.Fatalf("section %d offset %d not %d-aligned", i, off, Align)
		}
	}
	if len(b.Kinds()) != int(count) {
		t.Fatalf("Kinds() returned %d entries, table has %d", len(b.Kinds()), count)
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "dup.ufb3"))
	if err != nil {
		t.Fatal(err)
	}
	one := func(out io.Writer) error { _, err := out.Write([]byte{1}); return err }
	if err := w.AddSection(SectionMeta, one); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSection(SectionMeta, one); err == nil {
		t.Fatal("duplicate AddSection accepted")
	}
}

func TestEmptyBundleRejected(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "empty.ufb3"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close with no sections succeeded")
	}
}

func TestWriterAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ufb3")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddSection(SectionMeta, func(io.Writer) error {
		return errors.New("payload producer failed")
	}); err == nil {
		t.Fatal("failing payload accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write left a file at the target path")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

// corrupt applies f to a copy of the bundle bytes and asserts OpenBytes
// fails with a *Error carrying the wanted reason.
func corrupt(t *testing.T, raw []byte, wantReason string, f func([]byte)) {
	t.Helper()
	bad := append([]byte(nil), raw...)
	f(bad)
	_, err := OpenBytes(bad, Options{VerifySections: true})
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("want *Error, got %v", err)
	}
	if fe.Reason != wantReason {
		t.Fatalf("reason %q, want %q (err: %v)", fe.Reason, wantReason, fe)
	}
}

func TestOpenBytesRejectsCorruption(t *testing.T) {
	path, _ := writeTestBundle(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt(t, raw, "magic", func(b []byte) { b[0] ^= 0xFF })
	corrupt(t, raw, "version", func(b []byte) { b[4] = 99 })
	corrupt(t, raw, "header", func(b []byte) {
		binary.LittleEndian.PutUint32(b[12:16], 0) // zero section count
	})
	corrupt(t, raw, "header", func(b []byte) {
		binary.LittleEndian.PutUint64(b[16:24], uint64(len(b))+1) // wrong fileSize
	})
	corrupt(t, raw, "header", func(b []byte) {
		binary.LittleEndian.PutUint64(b[24:32], uint64(len(b))) // table out of bounds
	})
	corrupt(t, raw, "checksum", func(b []byte) { b[HeaderSize] ^= 0x01 }) // table bit-flip
	corrupt(t, raw, "checksum", func(b []byte) { b[len(b)-1] ^= 0x80 })   // payload bit-flip

	// Bounds violation with a recomputed header CRC, so it gets past the
	// checksum and must be caught by the explicit range check.
	bad := append([]byte(nil), raw...)
	tableOff := binary.LittleEndian.Uint64(bad[24:32])
	binary.LittleEndian.PutUint64(bad[tableOff+16:], uint64(len(bad))) // first section length = file size
	count := binary.LittleEndian.Uint32(bad[12:16])
	h := crc32.New(crcTable)
	h.Write(bad[:HeaderSize-4])
	h.Write(bad[tableOff : tableOff+uint64(count)*EntrySize])
	binary.LittleEndian.PutUint32(bad[HeaderSize-4:], h.Sum32())
	_, err = OpenBytes(bad, Options{})
	var fe *Error
	if !errors.As(err, &fe) || fe.Reason != "bounds" {
		t.Fatalf("want bounds error, got %v", err)
	}

	// Truncations at every interesting boundary must fail typed, not panic.
	for _, n := range []int{0, 3, HeaderSize - 1, HeaderSize, HeaderSize + EntrySize - 1, len(raw) - 1} {
		_, err := OpenBytes(raw[:n], Options{VerifySections: true})
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if !errors.As(err, &fe) {
			t.Fatalf("truncation to %d: want *Error, got %v", n, err)
		}
	}
}

// TestOpenBytesNeverPanics sweeps every single-byte truncation of a small
// bundle plus every single-bit flip of its header region.
func TestOpenBytesNeverPanics(t *testing.T) {
	path, _ := writeTestBundle(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(raw); n += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation to %d: %v", n, r)
				}
			}()
			b, err := OpenBytes(raw[:n:n], Options{VerifySections: true})
			if err == nil {
				b.Close()
			}
		}()
	}
	for bit := 0; bit < headerReserve*8 && bit < len(raw)*8; bit++ {
		bad := append([]byte(nil), raw...)
		bad[bit/8] ^= 1 << (bit % 8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit flip %d: %v", bit, r)
				}
			}()
			b, err := OpenBytes(bad, Options{VerifySections: true})
			if err == nil {
				b.Close()
			}
		}()
	}
}

func TestErrorStringsAndUnwrap(t *testing.T) {
	cause := errors.New("boom")
	e := &Error{Section: SectionAMArcs, Reason: "checksum", Cause: cause}
	if !errors.Is(e, cause) {
		t.Fatal("Unwrap lost the cause")
	}
	if s := e.Error(); s == "" {
		t.Fatal("empty error string")
	}
	if got := SectionKind(99).String(); got != "kind-99" {
		t.Fatalf("unknown kind string %q", got)
	}
}

func TestCloseInvalidatesAndIsIdempotent(t *testing.T) {
	path, _ := writeTestBundle(t)
	b, err := Open(path, Options{DisableMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}
