package flatstore

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"runtime/debug"
)

// This file is the post-load integrity surface: cheap O(1) re-verification
// of a bundle that has already passed Open, used by the serving layer's
// periodic model health checks (docs/ROBUSTNESS.md). Two failure classes
// are contained here:
//
//   - bit rot / in-place mutation of the file after load (the mapping is
//     MAP_SHARED, so on-disk damage is visible through it), caught by
//     re-running the header+table CRC against the value remembered at Open;
//   - read faults on the mapping itself (the backing file truncated or the
//     device gone), converted from a fatal signal into a typed *Error via
//     runtime/debug.SetPanicOnFault.
//
// Both surface as *Error and never crash the process: one sick mapping must
// not take down a server hosting other models.

// CheckHeader re-verifies the header and section table of the bundle at
// path with O(1) disk reads — no section payloads are touched. It is the
// disk-side half of a model health check: where (*Bundle).Recheck sees the
// pages already mapped, CheckHeader reads the file as a fresh open would,
// so it also catches damage to a bundle that is about to be reloaded.
func CheckHeader(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return &Error{Reason: "io", Cause: err}
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return &Error{Reason: "io", Cause: err}
	}
	return CheckHeaderReader(f, st.Size())
}

// CheckHeaderReader is CheckHeader over an arbitrary io.ReaderAt — the seam
// the fault-injection harness wraps with flaky and slow readers. Read
// errors surface as *Error{Reason:"io"}; corruption as the same taxonomy
// OpenBytes uses ("header", "checksum", ...).
func CheckHeaderReader(r io.ReaderAt, size int64) error {
	hdr := make([]byte, HeaderSize)
	if size < HeaderSize {
		return errf(0, "header", "file is %d bytes, shorter than the %d-byte header", size, HeaderSize)
	}
	if _, err := r.ReadAt(hdr, 0); err != nil {
		return &Error{Reason: "io", Cause: err}
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != Magic {
		return errf(0, "magic", "bad magic %#08x, want %#08x (%q)", m, Magic, "UFB3")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return errf(0, "version", "format version %d, reader supports %d", v, Version)
	}
	count := binary.LittleEndian.Uint32(hdr[12:16])
	fileSize := binary.LittleEndian.Uint64(hdr[16:24])
	tableOff := binary.LittleEndian.Uint64(hdr[24:32])
	if count == 0 || count > maxSections {
		return errf(0, "header", "section count %d outside [1,%d]", count, maxSections)
	}
	if fileSize != uint64(size) {
		return errf(0, "header", "header says %d bytes, file has %d", fileSize, size)
	}
	tableLen := uint64(count) * EntrySize
	if tableOff < HeaderSize || tableOff+tableLen > uint64(size) {
		return errf(0, "header", "section table [%d,%d) out of bounds", tableOff, tableOff+tableLen)
	}
	table := make([]byte, tableLen)
	if _, err := r.ReadAt(table, int64(tableOff)); err != nil {
		return &Error{Reason: "io", Cause: err}
	}
	h := crc32.New(crcTable)
	h.Write(hdr[:HeaderSize-4])
	h.Write(table)
	if got, want := h.Sum32(), binary.LittleEndian.Uint32(hdr[HeaderSize-4:HeaderSize]); got != want {
		return errf(0, "checksum", "header checksum %#08x, stored %#08x", got, want)
	}
	return nil
}

// Recheck re-verifies an open bundle in place. The cheap pass (full=false)
// recomputes the header and section-table CRC over the mapping and compares
// it to the checksum remembered at Open — O(1) work that detects any
// mutation of the header region, including of the stored CRC itself. With
// full=true every section payload CRC is re-verified as well (O(file),
// reads every mapped page).
//
// A read fault while touching the mapping (file truncated under the map,
// device failure) is converted into *Error{Reason:"fault"} instead of
// killing the process.
func (b *Bundle) Recheck(full bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errf(0, "fault", "read fault during re-verify: %v", r)
		}
	}()
	old := debug.SetPanicOnFault(true)
	defer debug.SetPanicOnFault(old)

	if b.data == nil {
		return errf(0, "io", "bundle is closed")
	}
	h := crc32.New(crcTable)
	h.Write(b.data[:HeaderSize-4])
	h.Write(b.data[b.tableOff : b.tableOff+uint64(len(b.sections))*EntrySize])
	if got := h.Sum32(); got != b.headerCRC {
		return errf(0, "checksum", "header checksum %#08x, was %#08x at open", got, b.headerCRC)
	}
	if full {
		return b.VerifySections()
	}
	return nil
}
