package flatstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Options controls how a bundle is opened.
type Options struct {
	// DisableMmap forces the portable io.ReaderAt path: the file is read
	// into the heap instead of memory-mapped. Used on platforms without
	// mmap and by tests that must exercise the fallback.
	DisableMmap bool
	// VerifySections additionally checks every section's CRC-32 at open,
	// making Open O(file size). Without it Open verifies only the header
	// and table checksum — O(1) — which is the serving default for bundles
	// the operator trusts.
	VerifySections bool
}

// Bundle is an open flat bundle. Section byte slices returned by Section
// alias the mapping (or the heap copy on the fallback path) and are only
// valid until Close.
type Bundle struct {
	data     []byte
	sections []section
	munmap   func() error // nil when data is heap-owned
	size     int64

	// Remembered at open for Recheck: where the table sits and what the
	// header+table CRC was when the bundle was verified good.
	tableOff  uint64
	headerCRC uint32
}

// Open maps (or, with Options.DisableMmap or on platforms without mmap,
// reads) the bundle at path and verifies its header and section table.
func Open(path string, opts Options) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &Error{Reason: "io", Cause: err}
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, &Error{Reason: "io", Cause: err}
	}
	var data []byte
	var unmap func() error
	if !opts.DisableMmap {
		data, unmap, err = mapFile(f, st.Size())
		if err != nil {
			// Mapping can fail for legitimate reasons (resource limits,
			// unusual filesystems); fall back to reading the file.
			data, unmap = nil, nil
		}
	}
	if data == nil {
		data = make([]byte, st.Size())
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, st.Size()), data); err != nil {
			return nil, &Error{Reason: "io", Cause: err}
		}
	}
	b, err := OpenBytes(data, opts)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	b.munmap = unmap
	return b, nil
}

// OpenBytes parses a bundle already resident in memory. The returned
// Bundle aliases data; the caller must keep it valid and unmodified until
// Close. This is the entry point fuzzers and the spec-conformance test use.
func OpenBytes(data []byte, opts Options) (*Bundle, error) {
	if len(data) < HeaderSize {
		return nil, errf(0, "header", "file is %d bytes, shorter than the %d-byte header", len(data), HeaderSize)
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != Magic {
		return nil, errf(0, "magic", "bad magic %#08x, want %#08x (%q)", m, Magic, "UFB3")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, errf(0, "version", "format version %d, reader supports %d", v, Version)
	}
	count := binary.LittleEndian.Uint32(data[12:16])
	fileSize := binary.LittleEndian.Uint64(data[16:24])
	tableOff := binary.LittleEndian.Uint64(data[24:32])
	if count == 0 || count > maxSections {
		return nil, errf(0, "header", "section count %d outside [1,%d]", count, maxSections)
	}
	if fileSize != uint64(len(data)) {
		return nil, errf(0, "header", "header says %d bytes, file has %d", fileSize, len(data))
	}
	tableLen := uint64(count) * EntrySize
	if tableOff < HeaderSize || tableOff+tableLen > uint64(len(data)) {
		return nil, errf(0, "header", "section table [%d,%d) out of bounds", tableOff, tableOff+tableLen)
	}
	table := data[tableOff : tableOff+tableLen]
	h := crc32.New(crcTable)
	h.Write(data[:HeaderSize-4])
	h.Write(table)
	if got, want := h.Sum32(), binary.LittleEndian.Uint32(data[HeaderSize-4:HeaderSize]); got != want {
		return nil, errf(0, "checksum", "header checksum %#08x, stored %#08x", got, want)
	}
	b := &Bundle{data: data, size: int64(len(data)), sections: make([]section, count),
		tableOff: tableOff, headerCRC: binary.LittleEndian.Uint32(data[HeaderSize-4 : HeaderSize])}
	for i := range b.sections {
		e := table[i*EntrySize:]
		s := section{
			kind:   SectionKind(binary.LittleEndian.Uint32(e[0:4])),
			offset: binary.LittleEndian.Uint64(e[8:16]),
			length: binary.LittleEndian.Uint64(e[16:24]),
			crc:    binary.LittleEndian.Uint32(e[24:28]),
		}
		if s.offset%Align != 0 {
			return nil, errf(s.kind, "table", "offset %d not %d-byte aligned", s.offset, Align)
		}
		if s.offset > uint64(len(data)) || s.length > uint64(len(data))-s.offset {
			return nil, errf(s.kind, "bounds", "section [%d,%d) exceeds file size %d", s.offset, s.offset+s.length, len(data))
		}
		for _, prev := range b.sections[:i] {
			if prev.kind == s.kind {
				return nil, errf(s.kind, "table", "duplicate section")
			}
		}
		b.sections[i] = s
	}
	if opts.VerifySections {
		if err := b.VerifySections(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Section returns the raw bytes of the section with the given kind and
// whether it is present. The slice aliases the bundle's mapping: it is
// read-only and valid only until Close.
func (b *Bundle) Section(kind SectionKind) ([]byte, bool) {
	for _, s := range b.sections {
		if s.kind == kind {
			return b.data[s.offset : s.offset+s.length : s.offset+s.length], true
		}
	}
	return nil, false
}

// MustSection is Section for required sections: a typed *Error is returned
// when the section is absent.
func (b *Bundle) MustSection(kind SectionKind) ([]byte, error) {
	p, ok := b.Section(kind)
	if !ok {
		return nil, errf(kind, "section", "section missing")
	}
	return p, nil
}

// Kinds lists the section kinds present, in file order.
func (b *Bundle) Kinds() []SectionKind {
	out := make([]SectionKind, len(b.sections))
	for i, s := range b.sections {
		out[i] = s.kind
	}
	return out
}

// SectionLen returns the payload length of a section, or -1 if absent.
func (b *Bundle) SectionLen(kind SectionKind) int64 {
	for _, s := range b.sections {
		if s.kind == kind {
			return int64(s.length)
		}
	}
	return -1
}

// VerifySections checks every section's CRC-32 against the table. This is
// the O(file) integrity pass; Open without Options.VerifySections defers it.
func (b *Bundle) VerifySections() error {
	for _, s := range b.sections {
		if got := crc32.Checksum(b.data[s.offset:s.offset+s.length], crcTable); got != s.crc {
			return errf(s.kind, "checksum", "section checksum %#08x, stored %#08x", got, s.crc)
		}
	}
	return nil
}

// SizeBytes returns the bundle file size — with mmap, also the upper bound
// on resident memory the model can pin.
func (b *Bundle) SizeBytes() int64 { return b.size }

// Mapped reports whether the bundle reads through a memory mapping (false
// on the heap-fallback path).
func (b *Bundle) Mapped() bool { return b.munmap != nil }

// Close releases the mapping or heap copy. Every slice previously returned
// by Section becomes invalid; with mmap, touching one afterwards faults.
// Callers that hand sections to a decoder must drain it first (the server
// registry's drain state exists for exactly this).
func (b *Bundle) Close() error {
	if b.munmap != nil {
		err := b.munmap()
		b.munmap = nil
		b.data = nil
		if err != nil {
			return &Error{Reason: "io", Cause: fmt.Errorf("munmap: %w", err)}
		}
		return nil
	}
	b.data = nil
	return nil
}
