//go:build !unix

package flatstore

import (
	"fmt"
	"os"
)

// mapFile always fails on platforms without a wired mmap implementation;
// Open then falls back to reading the file into the heap, which preserves
// every Bundle semantics except shared page-cache residency.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("flatstore: mmap not supported on this platform")
}
