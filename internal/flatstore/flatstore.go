// Package flatstore implements the v3 flat model-bundle container: a single
// mmap-friendly file holding the recognizer's datasets as aligned,
// checksummed byte sections that readers use in place — the zero-copy
// serving format specified in docs/MODEL_STORE.md.
//
// The container knows nothing about WFSTs or acoustic models; it stores
// opaque sections identified by a kind tag. The structure is:
//
//	header        48 bytes, fixed width
//	section table SectionCount × 32-byte entries
//	padding       to the first 16-byte boundary
//	section data  each section 16-byte aligned, CRC-32 checksummed
//
// Opening a bundle verifies the header and table in O(1) work; per-section
// payload checksums are verified only on request (VerifySections), so a
// trusted bundle loads in constant time regardless of model size while an
// untrusted one can still be fully checked. See docs/MODEL_STORE.md for the
// byte-level layout, the trust model, and forward-compatibility rules.
package flatstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Format constants. Every multi-byte field in the container is
// little-endian; see docs/MODEL_STORE.md §2.
const (
	// Magic is the 4-byte file signature, "UFB3" in ASCII.
	Magic = uint32('U') | uint32('F')<<8 | uint32('B')<<16 | uint32('3')<<24
	// Version is the container format version this package reads and writes.
	Version = 3
	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 48
	// EntrySize is the per-section table entry length in bytes.
	EntrySize = 32
	// Align is the alignment of every section's data offset. 16 bytes keeps
	// any fixed-width record layout (8-byte flat states, 16-byte flat arcs)
	// naturally aligned inside a page-aligned mapping.
	Align = 16
	// maxSections bounds the table a header may declare, so a corrupt count
	// cannot size a large allocation before the table checksum is checked.
	maxSections = 1024
)

// SectionKind tags a section's contents. Kinds are stable format ABI:
// values are never reused, and readers must skip kinds they do not know
// (forward compatibility; docs/MODEL_STORE.md §5).
type SectionKind uint32

const (
	// SectionMeta is the JSON bundle metadata (scorer kind, dimensions,
	// graph start states — the fields persist.go's bundleMeta defines).
	SectionMeta SectionKind = 1
	// SectionAMStates is the acoustic-model WFST's flat state table
	// (wfst.FlatStateBytes records, including the sentinel).
	SectionAMStates SectionKind = 2
	// SectionAMArcs is the acoustic-model WFST's flat arc table.
	SectionAMArcs SectionKind = 3
	// SectionLMStates is the language-model WFST's flat state table.
	SectionLMStates SectionKind = 4
	// SectionLMArcs is the language-model WFST's flat arc table.
	SectionLMArcs SectionKind = 5
	// SectionLexicon is the pronunciation lexicon (am.WriteLexicon text).
	SectionLexicon SectionKind = 6
	// SectionSenones is the senone template model (acoustic binary format).
	SectionSenones SectionKind = 7
	// SectionAMPacked is the compressed acoustic model: the verbatim
	// internal/compress AM encoding (quantizer table, packed state records,
	// 20/58-bit bitpack arc stream).
	SectionAMPacked SectionKind = 8
	// SectionLMPacked is the compressed language model: the verbatim
	// internal/compress LM encoding (6/45/27-bit bitpack arc stream).
	SectionLMPacked SectionKind = 9
	// SectionARPA is the back-off language model as ARPA text, kept so a v3
	// bundle remains self-contained for re-pruning and v2 interchange. Not
	// read on the serving load path.
	SectionARPA SectionKind = 10
)

// String names a section kind for error messages and tool output.
func (k SectionKind) String() string {
	switch k {
	case SectionMeta:
		return "meta"
	case SectionAMStates:
		return "am-states"
	case SectionAMArcs:
		return "am-arcs"
	case SectionLMStates:
		return "lm-states"
	case SectionLMArcs:
		return "lm-arcs"
	case SectionLexicon:
		return "lexicon"
	case SectionSenones:
		return "senones"
	case SectionAMPacked:
		return "am-packed"
	case SectionLMPacked:
		return "lm-packed"
	case SectionARPA:
		return "lm-arpa"
	default:
		return fmt.Sprintf("kind-%d", uint32(k))
	}
}

// Error is a typed flat-bundle failure. Reason is a short machine-stable
// class ("io", "magic", "version", "header", "table", "checksum",
// "section", "bounds"); Section names the offending section when the
// failure is section-scoped.
type Error struct {
	Section SectionKind
	Reason  string
	Cause   error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Section != 0 {
		return fmt.Sprintf("flatstore: section %s: %s: %v", e.Section, e.Reason, e.Cause)
	}
	return fmt.Sprintf("flatstore: %s: %v", e.Reason, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *Error) Unwrap() error { return e.Cause }

func errf(section SectionKind, reason, format string, args ...any) *Error {
	return &Error{Section: section, Reason: reason, Cause: fmt.Errorf(format, args...)}
}

// section is one parsed table entry.
type section struct {
	kind   SectionKind
	offset uint64
	length uint64
	crc    uint32
}

// crcTable is the polynomial every container checksum uses (CRC-32/IEEE,
// the common zlib/gzip polynomial).
var crcTable = crc32.IEEETable

// Writer assembles a bundle file. Sections are streamed in call order;
// Close finalizes the header and table and atomically renames the file
// into place, so a crash mid-write never leaves a partial bundle under the
// target name.
type Writer struct {
	f        *os.File
	path     string // final path (f is the temp file)
	off      uint64
	sections []section
	err      error
}

// Create starts writing a bundle at path via a temp file in the same
// directory.
func Create(path string) (*Writer, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, &Error{Reason: "io", Cause: err}
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, &Error{Reason: "io", Cause: err}
	}
	return &Writer{f: f, path: path, off: HeaderSize}, nil
}

// AddSection appends one section whose payload is produced by write. The
// payload is checksummed as it streams; offsets and alignment are handled
// here. Sections must be added before Close; duplicate kinds are rejected.
func (w *Writer) AddSection(kind SectionKind, write func(io.Writer) error) error {
	if w.err != nil {
		return w.err
	}
	for _, s := range w.sections {
		if s.kind == kind {
			return w.fail(errf(kind, "section", "duplicate section"))
		}
	}
	if len(w.sections) == 0 {
		// Data offsets depend on the final table size, unknown until Close.
		// Rather than buffering payloads, reserve one fixed gap for the
		// header plus a maxSections-entry table; Close writes the real table
		// into it and the zero tail is dead space readers never touch
		// (offsets are explicit).
		if _, err := w.f.Write(make([]byte, headerReserve)); err != nil {
			return w.fail(&Error{Reason: "io", Cause: err})
		}
		w.off = headerReserve
	}
	if pad := (Align - w.off%Align) % Align; pad != 0 {
		if _, err := w.f.Write(make([]byte, pad)); err != nil {
			return w.fail(&Error{Reason: "io", Cause: err})
		}
		w.off += pad
	}
	h := crc32.New(crcTable)
	cw := &countingWriter{w: io.MultiWriter(w.f, h)}
	if err := write(cw); err != nil {
		return w.fail(&Error{Section: kind, Reason: "io", Cause: err})
	}
	w.sections = append(w.sections, section{kind: kind, offset: w.off, length: cw.n, crc: h.Sum32()})
	w.off += cw.n
	return nil
}

// headerReserve is the fixed space Close's header and table are written
// into: enough for maxSections entries, so AddSection never needs to move
// data. A bundle has ~10 sections; the ~32 KB ceiling is noise next to the
// datasets.
const headerReserve = HeaderSize + maxSections*EntrySize

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
		w.f.Close()
		os.Remove(w.f.Name())
	}
	return w.err
}

// Close finalizes the bundle: it writes the header and section table,
// syncs, and renames the temp file onto the target path. On error the temp
// file is removed and the target is untouched.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if len(w.sections) == 0 {
		return w.fail(&Error{Reason: "section", Cause: fmt.Errorf("bundle has no sections")})
	}
	fileSize := w.off
	table := make([]byte, len(w.sections)*EntrySize)
	for i, s := range w.sections {
		e := table[i*EntrySize:]
		binary.LittleEndian.PutUint32(e[0:4], uint32(s.kind))
		binary.LittleEndian.PutUint64(e[8:16], s.offset)
		binary.LittleEndian.PutUint64(e[16:24], s.length)
		binary.LittleEndian.PutUint32(e[24:28], s.crc)
	}
	hdr := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint32(hdr[8:12], 0) // flags: none defined yet
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(w.sections)))
	binary.LittleEndian.PutUint64(hdr[16:24], fileSize)
	binary.LittleEndian.PutUint64(hdr[24:32], HeaderSize) // table offset
	h := crc32.New(crcTable)
	h.Write(hdr[:HeaderSize-4])
	h.Write(table)
	binary.LittleEndian.PutUint32(hdr[HeaderSize-4:], h.Sum32())
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return w.fail(&Error{Reason: "io", Cause: err})
	}
	if _, err := w.f.WriteAt(table, HeaderSize); err != nil {
		return w.fail(&Error{Reason: "io", Cause: err})
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(&Error{Reason: "io", Cause: err})
	}
	if err := w.f.Close(); err != nil {
		w.err = &Error{Reason: "io", Cause: err}
		os.Remove(w.f.Name())
		return w.err
	}
	if err := os.Rename(w.f.Name(), w.path); err != nil {
		w.err = &Error{Reason: "io", Cause: err}
		os.Remove(w.f.Name())
		return w.err
	}
	w.err = &Error{Reason: "io", Cause: fmt.Errorf("writer closed")} // block reuse
	return nil
}
