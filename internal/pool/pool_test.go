package pool

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/decoder"
	"repro/internal/task"
)

// poolFixture builds a small task once; tests construct pools on top.
type poolFixture struct {
	tk     *task.Task
	scores [][][]float32
}

var (
	fixOnce sync.Once
	fix     *poolFixture
)

func getFixture(t testing.TB) *poolFixture {
	t.Helper()
	fixOnce.Do(func() {
		tk, err := task.Build(task.Spec{
			Name:           "pool-test",
			Vocab:          30,
			Phones:         12,
			TrainSentences: 250,
			TestUtterances: 8,
			LMMinCount:     2, // force back-off traffic through the cache
			Seed:           42,
		})
		if err != nil {
			panic(err)
		}
		f := &poolFixture{tk: tk}
		for _, u := range tk.Test {
			f.scores = append(f.scores, tk.Scorer.ScoreUtterance(u.Frames))
		}
		fix = f
	})
	return fix
}

// TestDecodePoolMatchesSequential is the engine's core property: a pool
// with any worker count produces byte-identical transcripts (and equal
// costs) to a plain sequential OnTheFly decoder, because cache contents
// never influence an offset lookup's answer.
func TestDecodePoolMatchesSequential(t *testing.T) {
	f := getFixture(t)
	seq, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*decoder.Result, len(f.scores))
	for i, sc := range f.scores {
		want[i] = seq.Decode(sc)
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
				Workers:   workers,
				L1Entries: 64,  // small enough to exercise L1 conflict misses
				L2Entries: 256, // small enough to exercise LRU eviction
				L2Shards:  4,
				Decoder:   decoder.Config{PreemptivePruning: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Two rounds: cold cache and warm (possibly evicting) cache
			// must both match the sequential transcripts.
			for round := 0; round < 2; round++ {
				batch, err := p.Decode(f.scores)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch.Results) != len(want) {
					t.Fatalf("round %d: %d results, want %d", round, len(batch.Results), len(want))
				}
				for i, r := range batch.Results {
					if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) {
						t.Fatalf("round %d utt %d: pool %v vs sequential %v", round, i, r.Words, want[i].Words)
					}
					if r.Cost != want[i].Cost {
						t.Errorf("round %d utt %d: cost %v vs %v", round, i, r.Cost, want[i].Cost)
					}
				}
			}
		})
	}
}

// TestDecodePoolThroughputAndCache sanity-checks the batch aggregates: all
// frames accounted for, wall time positive, and a warm second batch hitting
// the cache harder than the cold first one.
func TestDecodePoolThroughputAndCache(t *testing.T) {
	f := getFixture(t)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	var frames int
	for _, sc := range f.scores {
		frames += len(sc)
	}
	if cold.Throughput.Frames != frames {
		t.Errorf("throughput frames %d, want %d", cold.Throughput.Frames, frames)
	}
	if cold.Throughput.Utterances != len(f.scores) {
		t.Errorf("throughput utts %d, want %d", cold.Throughput.Utterances, len(f.scores))
	}
	if cold.Throughput.Wall <= 0 || cold.Throughput.UtterancesPerSec() <= 0 {
		t.Errorf("non-positive wall/rate: %+v", cold.Throughput)
	}
	if cold.Cache.Lookups() == 0 {
		t.Fatal("no cache lookups recorded; memo path not exercised")
	}
	warm, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	// Counters are cumulative; the second batch's incremental hit rate must
	// beat the cold batch's (every offset seen in batch 1 is resident).
	inc := warm.Cache
	incHits := (inc.L1Hits + inc.L2Hits) - (cold.Cache.L1Hits + cold.Cache.L2Hits)
	incLookups := inc.Lookups() - cold.Cache.Lookups()
	if incLookups <= 0 {
		t.Fatal("warm batch recorded no lookups")
	}
	if float64(incHits)/float64(incLookups) <= cold.Cache.HitRate() {
		t.Errorf("warm hit rate %.3f not above cold %.3f",
			float64(incHits)/float64(incLookups), cold.Cache.HitRate())
	}
	if p.Workers() != 4 {
		t.Errorf("Workers() = %d, want 4", p.Workers())
	}
}

// TestDecodePoolConcurrentBatches overlaps many Decode calls on one pool —
// the serving pattern, one small batch per HTTP request — and checks that
// worker checkout keeps every result byte-identical to a sequential decode.
// Run under -race this is the pool's overlap-safety proof.
func TestDecodePoolConcurrentBatches(t *testing.T) {
	f := getFixture(t)
	want := make([][]int32, len(f.scores))
	seq, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		want[i] = seq.Decode(sc).Words
	}

	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 6
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				utt := (c + r) % len(f.scores)
				b, err := p.Decode(f.scores[utt : utt+1])
				if err != nil || b.Failed() != 0 {
					errCh <- fmt.Errorf("caller %d round %d: err=%v failed=%d", c, r, err, b.Failed())
					return
				}
				if fmt.Sprint(b.Results[0].Words) != fmt.Sprint(want[utt]) {
					errCh <- fmt.Errorf("caller %d round %d: utt %d diverged from sequential", c, r, utt)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every worker must be back on the free list.
	if got := len(p.idle); got != p.Workers() {
		t.Errorf("free list holds %d workers after quiescence, want %d", got, p.Workers())
	}
}

// TestDecodePoolPreset checks the degraded-preset path: a preset batch
// matches a pool configured at that operating point, and the very next
// full-quality batch on the same workers is byte-identical to sequential —
// presets never leak across batches.
func TestDecodePoolPreset(t *testing.T) {
	f := getFixture(t)
	preset := decoder.Config{}.DegradedPreset(2)
	oracle, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2,
		Decoder: decoder.Config{Beam: preset.Beam, MaxActive: preset.MaxActive}})
	if err != nil {
		t.Fatal(err)
	}
	wantDeg, err := oracle.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	full1, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := p.DecodePresetContext(context.Background(), f.scores, &preset)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.scores {
		if fmt.Sprint(deg.Results[i].Words) != fmt.Sprint(wantDeg.Results[i].Words) {
			t.Errorf("utt %d: preset batch %v != equivalently configured pool %v",
				i, deg.Results[i].Words, wantDeg.Results[i].Words)
		}
	}
	full2, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.scores {
		if fmt.Sprint(full2.Results[i].Words) != fmt.Sprint(full1.Results[i].Words) {
			t.Errorf("utt %d: full-quality decode changed after a preset batch", i)
		}
	}
}

// TestShardedLRUEviction checks bounded capacity, LRU order, and counters
// on a single shard (capacity 4, 1 shard → strict global LRU).
func TestShardedLRUEviction(t *testing.T) {
	c := NewShardedLRU(4, 1)
	if c.Capacity() != 4 {
		t.Fatalf("capacity %d, want 4", c.Capacity())
	}
	for i := uint64(0); i < 4; i++ {
		c.Put(i, int32(i))
	}
	if c.Len() != 4 {
		t.Fatalf("len %d, want 4", c.Len())
	}
	// Touch key 0 so key 1 is now LRU; insert key 4 → evicts 1.
	if v, ok := c.Get(0); !ok || v != 0 {
		t.Fatalf("get 0 = %d,%v", v, ok)
	}
	c.Put(4, 40)
	if _, ok := c.Get(1); ok {
		t.Error("key 1 should have been evicted")
	}
	if v, ok := c.Get(0); !ok || v != 0 {
		t.Errorf("key 0 lost: %d,%v", v, ok)
	}
	if v, ok := c.Get(4); !ok || v != 40 {
		t.Errorf("key 4 lost: %d,%v", v, ok)
	}
	if c.Len() != 4 {
		t.Errorf("len %d after eviction, want 4", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions %d, want 1", st.Evictions)
	}
	if st.L2Hits == 0 || st.L2Misses == 0 {
		t.Errorf("counters not moving: %+v", st)
	}
	// Updating a resident key must not grow the cache or evict.
	c.Put(0, 99)
	if v, _ := c.Get(0); v != 99 {
		t.Errorf("update lost: %d", v)
	}
	if c.Len() != 4 || c.Stats().Evictions != 1 {
		t.Errorf("update disturbed residency: len %d evict %d", c.Len(), c.Stats().Evictions)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("len %d after reset", c.Len())
	}
}

// TestTieredCachePromotion checks the L1/L2 interplay: write-through,
// L2-hit promotion into L1, and Reset clearing only the private layer.
func TestTieredCachePromotion(t *testing.T) {
	shared := NewShardedLRU(64, 2)
	a := NewTieredCache(8, shared)
	b := NewTieredCache(8, shared)
	a.Put(7, 70)
	// b has never seen key 7: first Get must come from the shared layer...
	if v, ok := b.Get(7); !ok || v != 70 {
		t.Fatalf("b.Get(7) = %d,%v; want shared hit", v, ok)
	}
	// ...and be promoted, so the second Get is an L1 hit.
	before := b.Stats().L1Hits
	if v, ok := b.Get(7); !ok || v != 70 {
		t.Fatalf("b.Get(7) second = %d,%v", v, ok)
	}
	if b.Stats().L1Hits != before+1 {
		t.Errorf("promotion missed: L1 hits %d, want %d", b.Stats().L1Hits, before+1)
	}
	// Reset drops a's L1 but the shared entry survives.
	a.Reset()
	if v, ok := a.Get(7); !ok || v != 70 {
		t.Errorf("a.Get(7) after Reset = %d,%v; want shared hit", v, ok)
	}
	// L1-only mode (nil shared) still behaves as a bounded cache.
	solo := NewTieredCache(4, nil)
	solo.Put(1, 10)
	if v, ok := solo.Get(1); !ok || v != 10 {
		t.Errorf("solo.Get(1) = %d,%v", v, ok)
	}
	if _, ok := solo.Get(2); ok {
		t.Error("solo.Get(2) hit on empty slot")
	}
}

// TestShardedLRUConcurrent hammers one shared cache from many goroutines
// with overlapping key ranges; run under -race this is the pool's memory
// safety proof. Values are derived from keys so any torn or misfiled entry
// is detected, not just data races.
func TestShardedLRUConcurrent(t *testing.T) {
	c := NewShardedLRU(1<<10, 8)
	const goroutines = 16
	const opsPerG = 20_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g)*2654435761 + 1
			for i := 0; i < opsPerG; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				// Use high bits: an LCG's low bits cycle with tiny periods.
				key := (rng >> 20) % 4096 // 4x capacity → constant eviction pressure
				if (rng>>40)&1 == 0 {
					c.Put(key, int32(key*3))
				} else if v, ok := c.Get(key); ok && v != int32(key*3) {
					panic(fmt.Sprintf("key %d returned %d, want %d", key, v, int32(key*3)))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Fatalf("cache over capacity: %d > %d", c.Len(), c.Capacity())
	}
	st := c.Stats()
	if st.L2Hits == 0 || st.L2Misses == 0 || st.Evictions == 0 {
		t.Errorf("hammer did not exercise all paths: %+v", st)
	}
}

// TestTieredCacheHammer drives several workers' tiered caches against one
// shared LRU concurrently — the exact sharing shape DecodePool sets up —
// so -race covers the promotion and write-through paths too.
func TestTieredCacheHammer(t *testing.T) {
	shared := NewShardedLRU(512, 4)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tc := NewTieredCache(32, shared) // private to this goroutine
			rng := uint64(w)*40503 + 7
			for i := 0; i < 10_000; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				key := (rng >> 20) % 2048
				if v, ok := tc.Get(key); ok {
					if v != int32(key+1) {
						panic(fmt.Sprintf("key %d returned %d", key, v))
					}
				} else {
					tc.Put(key, int32(key+1))
				}
			}
		}(w)
	}
	wg.Wait()
	if shared.Len() > shared.Capacity() {
		t.Fatalf("shared cache over capacity: %d > %d", shared.Len(), shared.Capacity())
	}
}
