// Package pool provides the concurrent batch-decoding engine: a DecodePool
// fans utterances out to worker goroutines, each owning a private on-the-fly
// decoder, while all workers share one bounded, sharded, LRU offset-lookup
// cache. It is the serving-scale incarnation of the paper's Offset Lookup
// Table: the hardware table is a small shared SRAM warmed by word
// recurrence across utterances; here the shared layer is a mutex-per-shard
// LRU warmed by word recurrence across *workers*, fronted by a tiny
// per-worker direct-mapped L1 so the common case takes no lock at all.
//
// Cache contents never affect transcripts — an offset lookup is a pure
// function of the LM graph — so a DecodePool with any worker count produces
// byte-identical results to sequential decoding. That determinism is
// asserted by this package's tests.
package pool

import (
	"fmt"
	"sync"
)

// noEntry marks an empty intrusive-list link or map slot.
const noEntry = int32(-1)

// lruEntry is one resident key/value pair threaded on a shard's recency
// list via slice-index links (no per-entry allocation).
type lruEntry struct {
	key        uint64
	val        int32
	prev, next int32
}

// lruShard is one independently locked slice of the shared cache.
type lruShard struct {
	mu   sync.Mutex
	idx  map[uint64]int32 // key -> entry slot
	ent  []lruEntry       // fixed-capacity arena
	head int32            // most recently used
	tail int32            // least recently used; evicted first
	used int32            // slots in use (grows to len(ent), then evicts)

	hits, misses, evictions int64
}

// ShardedLRU is a bounded, concurrency-safe offset-lookup cache: capacity
// is split evenly over power-of-two shards, each with its own mutex and
// recency list, so workers contend only when they hash to the same shard.
// It is the shared L2 of the pool's two-layer cache; it also implements
// decoder.OffsetCache directly for callers that want a bounded cache
// without the per-worker layer.
type ShardedLRU struct {
	shards []lruShard
	mask   uint64
}

// NewShardedLRU builds a cache holding at most capacity entries across
// shards locks (shards is rounded up to a power of two; both arguments fall
// back to defaults when zero or negative: 1<<16 entries over 16 shards).
func NewShardedLRU(capacity, shards int) *ShardedLRU {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	c := &ShardedLRU{shards: make([]lruShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = lruShard{
			idx:  make(map[uint64]int32, per),
			ent:  make([]lruEntry, per),
			head: noEntry,
			tail: noEntry,
		}
	}
	return c
}

// shardFor picks the shard by a Fibonacci hash of the key's high entropy
// bits, so adjacent LM states spread across locks.
func (c *ShardedLRU) shardFor(key uint64) *lruShard {
	h := key * 0x9E3779B97F4A7C15
	return &c.shards[(h>>48)&c.mask]
}

// Get returns the cached arc index for key, promoting it to most recently
// used. Safe for concurrent use.
func (c *ShardedLRU) Get(key uint64) (int32, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.idx[key]
	if !ok {
		s.misses++
		return 0, false
	}
	s.hits++
	s.moveToFront(slot)
	return s.ent[slot].val, true
}

// Put inserts or refreshes key, evicting the shard's least recently used
// entry when the shard is full. Safe for concurrent use.
func (c *ShardedLRU) Put(key uint64, val int32) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.idx[key]; ok {
		s.ent[slot].val = val
		s.moveToFront(slot)
		return
	}
	var slot int32
	if int(s.used) < len(s.ent) {
		slot = s.used
		s.used++
	} else {
		slot = s.tail
		delete(s.idx, s.ent[slot].key)
		s.unlink(slot)
		s.evictions++
	}
	s.ent[slot] = lruEntry{key: key, val: val, prev: noEntry, next: s.head}
	if s.head != noEntry {
		s.ent[s.head].prev = slot
	}
	s.head = slot
	if s.tail == noEntry {
		s.tail = slot
	}
	s.idx[key] = slot
}

// Reset empties every shard, preserving capacity. Counters are kept so a
// long-running pool's hit rates remain cumulative.
func (c *ShardedLRU) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.idx = make(map[uint64]int32, len(s.ent))
		s.head, s.tail, s.used = noEntry, noEntry, 0
		s.mu.Unlock()
	}
}

// Len reports the resident entry count across all shards.
func (c *ShardedLRU) Len() int {
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.idx)
		s.mu.Unlock()
	}
	return n
}

// Capacity reports the maximum resident entry count.
func (c *ShardedLRU) Capacity() int {
	return len(c.shards) * len(c.shards[0].ent)
}

// Stats snapshots the cumulative hit/miss/eviction counters summed over
// shards, reported in the pool's L2 columns.
func (c *ShardedLRU) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.L2Hits += s.hits
		st.L2Misses += s.misses
		st.Evictions += s.evictions
		s.mu.Unlock()
	}
	return st
}

// NumShards reports the shard (lock-stripe) count.
func (c *ShardedLRU) NumShards() int { return len(c.shards) }

// ShardStats snapshots one shard's cumulative hit/miss/eviction counters —
// the per-shard view telemetry exports so lock-stripe imbalance (every
// worker hammering one hot shard) is visible, not averaged away. Safe for
// concurrent use; out-of-range shards read as zero.
func (c *ShardedLRU) ShardStats(shard int) (hits, misses, evictions int64) {
	if shard < 0 || shard >= len(c.shards) {
		return 0, 0, 0
	}
	s := &c.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}

// moveToFront makes slot the shard's most recently used entry. Caller holds
// the shard lock.
func (s *lruShard) moveToFront(slot int32) {
	if s.head == slot {
		return
	}
	s.unlink(slot)
	s.ent[slot].prev = noEntry
	s.ent[slot].next = s.head
	if s.head != noEntry {
		s.ent[s.head].prev = slot
	}
	s.head = slot
	if s.tail == noEntry {
		s.tail = slot
	}
}

// unlink detaches slot from the recency list. Caller holds the shard lock.
func (s *lruShard) unlink(slot int32) {
	e := &s.ent[slot]
	if e.prev != noEntry {
		s.ent[e.prev].next = e.next
	}
	if e.next != noEntry {
		s.ent[e.next].prev = e.prev
	}
	if s.head == slot {
		s.head = e.next
	}
	if s.tail == slot {
		s.tail = e.prev
	}
	e.prev, e.next = noEntry, noEntry
}

// CacheStats aggregates the two-layer cache counters: L1 is the per-worker
// direct-mapped front, L2 the shared sharded LRU behind it. A miss in both
// layers costs one binary search in the LM graph's sorted arc array.
type CacheStats struct {
	// L1Hits counts lookups answered by a worker's private direct map.
	L1Hits int64
	// L1Misses counts lookups that fell through to the shared layer.
	L1Misses int64
	// L2Hits counts shared-LRU hits (including promotions into an L1).
	L2Hits int64
	// L2Misses counts lookups that missed both layers.
	L2Misses int64
	// Evictions counts entries displaced from the shared LRU by capacity.
	Evictions int64
}

// Lookups is the total offset-cache probe count (L1 hits plus L1 misses).
func (s CacheStats) Lookups() int64 { return s.L1Hits + s.L1Misses }

// HitRate is the fraction of lookups answered by either layer, in [0,1].
func (s CacheStats) HitRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.L1Hits+s.L2Hits) / float64(n)
}

// Add accumulates another snapshot's counters into s.
func (s *CacheStats) Add(o CacheStats) {
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.Evictions += o.Evictions
}

// String renders the counters like the pool's CLI report line.
func (s CacheStats) String() string {
	return fmt.Sprintf("offset cache: %.1f%% hit (L1 %d, L2 %d / %d lookups), %d evictions",
		100*s.HitRate(), s.L1Hits, s.L2Hits, s.Lookups(), s.Evictions)
}
