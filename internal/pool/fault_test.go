package pool

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/decoder"
	"repro/internal/faultinject"
)

// sequentialResults decodes the fixture sequentially — the ground truth
// every fault test compares surviving utterances against.
func sequentialResults(t *testing.T, f *poolFixture) []*decoder.Result {
	t.Helper()
	seq, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*decoder.Result, len(f.scores))
	for i, sc := range f.scores {
		out[i] = seq.Decode(sc)
	}
	return out
}

// TestDecodePoolIsolatesPanic corrupts one utterance's score matrix so the
// search reads out of range, and checks the batch contract: that utterance
// carries a StageSearch DecodeError, every other utterance is byte-identical
// to a sequential decode, and the pool survives for the next batch.
func TestDecodePoolIsolatesPanic(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	const bad = 3
	scores := make([][][]float32, len(f.scores))
	copy(scores, f.scores)
	// Rows of length 1 hold only the epsilon slot; any senone read panics.
	corrupt := make([][]float32, len(f.scores[bad]))
	for i := range corrupt {
		corrupt[i] = []float32{0}
	}
	scores[bad] = corrupt

	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2, Decoder: decoder.Config{PreemptivePruning: true}})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Decode(scores)
	if err != nil {
		t.Fatalf("batch error %v; panics must stay per-utterance", err)
	}
	if batch.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1; errors: %v", batch.Failed(), batch.Errors)
	}
	derr := batch.Errors[bad]
	if derr == nil || derr.Stage != StageSearch || derr.Utterance != bad {
		t.Fatalf("Errors[%d] = %v, want StageSearch", bad, derr)
	}
	var as *DecodeError
	if !errors.As(error(derr), &as) {
		t.Error("DecodeError does not satisfy errors.As")
	}
	if batch.Search.Panics != 1 {
		t.Errorf("Search.Panics = %d, want 1", batch.Search.Panics)
	}
	for i, r := range batch.Results {
		if i == bad {
			continue
		}
		if batch.Errors[i] != nil {
			t.Errorf("utt %d: unexpected error %v", i, batch.Errors[i])
		}
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) || r.Cost != want[i].Cost {
			t.Errorf("utt %d diverged from sequential after panic elsewhere", i)
		}
	}
	// The worker that recovered must decode the next batch normally.
	again, err := p.Decode(f.scores)
	if err != nil || again.Failed() != 0 {
		t.Fatalf("pool poisoned after panic: err=%v failed=%d", err, again.Failed())
	}
	for i, r := range again.Results {
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) {
			t.Errorf("utt %d diverged on the batch after a panic", i)
		}
	}
}

// TestDecodePoolFlakyCachePanic injects a cache-layer panic through the
// WrapCache seam: exactly one utterance fails, the rest match sequential.
func TestDecodePoolFlakyCachePanic(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
		Workers: 1,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			return &faultinject.FlakyCache{Inner: c, PanicAt: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Failed() != 1 {
		t.Fatalf("Failed() = %d, want exactly 1 (the op-1 panic)", batch.Failed())
	}
	for i, e := range batch.Errors {
		if e != nil {
			if e.Stage != StageSearch {
				t.Errorf("utt %d stage %q, want %q", i, e.Stage, StageSearch)
			}
			continue
		}
		if fmt.Sprint(batch.Results[i].Words) != fmt.Sprint(want[i].Words) {
			t.Errorf("utt %d diverged from sequential", i)
		}
	}
}

// TestDecodePoolLossyCacheIsHarmless drops every third cache write and
// checks the engine's determinism invariant end to end: cache contents never
// change transcripts, only probe counts.
func TestDecodePoolLossyCacheIsHarmless(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
		Workers: 2,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			return &faultinject.FlakyCache{Inner: c, DropEvery: 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	if n := batch.Failed(); n != 0 {
		t.Fatalf("lossy cache produced %d errors", n)
	}
	for i, r := range batch.Results {
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) || r.Cost != want[i].Cost {
			t.Errorf("utt %d: lossy cache changed the result", i)
		}
	}
}

// TestDecodePoolCancelBeforeStart: an already-canceled context returns
// immediately with every utterance marked StageCanceled and ctx.Err().
func TestDecodePoolCancelBeforeStart(t *testing.T) {
	f := getFixture(t)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	batch, err := p.DecodeContext(ctx, f.scores)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-canceled batch took %v", d)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batch == nil || len(batch.Errors) != len(f.scores) {
		t.Fatal("batch not index-aligned")
	}
	for i, e := range batch.Errors {
		if e == nil || e.Stage != StageCanceled || !errors.Is(e, context.Canceled) {
			t.Errorf("utt %d error = %v, want StageCanceled wrapping context.Canceled", i, e)
		}
	}
	if batch.Search.Canceled != int64(len(f.scores)) {
		t.Errorf("Search.Canceled = %d, want %d", batch.Search.Canceled, len(f.scores))
	}
}

// TestDecodePoolCancelMidBatch slows the cache down, expires the deadline
// mid-decode, and checks the liveness contract: the call returns within
// ~100ms of the deadline (per-frame cancellation checks), results stay
// index-aligned, finished utterances keep sequential-identical transcripts,
// and interrupted ones carry StageCanceled errors.
func TestDecodePoolCancelMidBatch(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	// Replicate the fixture so the batch cannot finish inside the deadline.
	var scores [][][]float32
	for r := 0; r < 30; r++ {
		scores = append(scores, f.scores...)
	}
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
		Workers: 2,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			return &faultinject.SlowCache{Inner: c, Delay: time.Millisecond, Every: 50}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const deadline = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	batch, err := p.DecodeContext(ctx, scores)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded (batch finished too fast to cancel?)", err)
	}
	if elapsed > deadline+100*time.Millisecond {
		t.Errorf("returned %v after the deadline, want <100ms", elapsed-deadline)
	}
	if len(batch.Results) != len(scores) || len(batch.Errors) != len(scores) {
		t.Fatal("batch not index-aligned")
	}
	if batch.Search.Canceled == 0 {
		t.Error("no utterances recorded as canceled")
	}
	for i := range scores {
		switch e := batch.Errors[i]; {
		case e == nil:
			// Finished before the deadline: must match sequential exactly.
			w := want[i%len(want)]
			if fmt.Sprint(batch.Results[i].Words) != fmt.Sprint(w.Words) {
				t.Errorf("utt %d finished but diverged from sequential", i)
			}
		case e.Stage != StageCanceled:
			t.Errorf("utt %d stage %q, want %q", i, e.Stage, StageCanceled)
		}
	}
}
