package pool

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/decoder"
	"repro/internal/faultinject"
)

// sequentialResults decodes the fixture sequentially — the ground truth
// every fault test compares surviving utterances against.
func sequentialResults(t *testing.T, f *poolFixture) []*decoder.Result {
	t.Helper()
	seq, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*decoder.Result, len(f.scores))
	for i, sc := range f.scores {
		out[i] = seq.Decode(sc)
	}
	return out
}

// TestDecodePoolIsolatesPanic corrupts one utterance's score matrix so the
// search reads out of range, and checks the batch contract: that utterance
// carries a StageSearch DecodeError, every other utterance is byte-identical
// to a sequential decode, and the pool survives for the next batch.
func TestDecodePoolIsolatesPanic(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	const bad = 3
	scores := make([][][]float32, len(f.scores))
	copy(scores, f.scores)
	// Rows of length 1 hold only the epsilon slot; any senone read panics.
	corrupt := make([][]float32, len(f.scores[bad]))
	for i := range corrupt {
		corrupt[i] = []float32{0}
	}
	scores[bad] = corrupt

	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2, Decoder: decoder.Config{PreemptivePruning: true}})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Decode(scores)
	if err != nil {
		t.Fatalf("batch error %v; panics must stay per-utterance", err)
	}
	if batch.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1; errors: %v", batch.Failed(), batch.Errors)
	}
	derr := batch.Errors[bad]
	if derr == nil || derr.Stage != StageSearch || derr.Utterance != bad {
		t.Fatalf("Errors[%d] = %v, want StageSearch", bad, derr)
	}
	var as *DecodeError
	if !errors.As(error(derr), &as) {
		t.Error("DecodeError does not satisfy errors.As")
	}
	if batch.Search.Panics != 1 {
		t.Errorf("Search.Panics = %d, want 1", batch.Search.Panics)
	}
	for i, r := range batch.Results {
		if i == bad {
			continue
		}
		if batch.Errors[i] != nil {
			t.Errorf("utt %d: unexpected error %v", i, batch.Errors[i])
		}
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) || r.Cost != want[i].Cost {
			t.Errorf("utt %d diverged from sequential after panic elsewhere", i)
		}
	}
	// The worker that recovered must decode the next batch normally.
	again, err := p.Decode(f.scores)
	if err != nil || again.Failed() != 0 {
		t.Fatalf("pool poisoned after panic: err=%v failed=%d", err, again.Failed())
	}
	for i, r := range again.Results {
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) {
			t.Errorf("utt %d diverged on the batch after a panic", i)
		}
	}
}

// TestDecodePoolFlakyCachePanic injects a cache-layer panic through the
// WrapCache seam: exactly one utterance fails, the rest match sequential.
func TestDecodePoolFlakyCachePanic(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
		Workers: 1,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			return &faultinject.FlakyCache{Inner: c, PanicAt: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Failed() != 1 {
		t.Fatalf("Failed() = %d, want exactly 1 (the op-1 panic)", batch.Failed())
	}
	for i, e := range batch.Errors {
		if e != nil {
			if e.Stage != StageSearch {
				t.Errorf("utt %d stage %q, want %q", i, e.Stage, StageSearch)
			}
			continue
		}
		if fmt.Sprint(batch.Results[i].Words) != fmt.Sprint(want[i].Words) {
			t.Errorf("utt %d diverged from sequential", i)
		}
	}
}

// TestDecodePoolLossyCacheIsHarmless drops every third cache write and
// checks the engine's determinism invariant end to end: cache contents never
// change transcripts, only probe counts.
func TestDecodePoolLossyCacheIsHarmless(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
		Workers: 2,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			return &faultinject.FlakyCache{Inner: c, DropEvery: 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	if n := batch.Failed(); n != 0 {
		t.Fatalf("lossy cache produced %d errors", n)
	}
	for i, r := range batch.Results {
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) || r.Cost != want[i].Cost {
			t.Errorf("utt %d: lossy cache changed the result", i)
		}
	}
}

// TestDecodePoolCancelBeforeStart: an already-canceled context returns
// immediately with every utterance marked StageCanceled and ctx.Err().
func TestDecodePoolCancelBeforeStart(t *testing.T) {
	f := getFixture(t)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	batch, err := p.DecodeContext(ctx, f.scores)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-canceled batch took %v", d)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if batch == nil || len(batch.Errors) != len(f.scores) {
		t.Fatal("batch not index-aligned")
	}
	for i, e := range batch.Errors {
		if e == nil || e.Stage != StageCanceled || !errors.Is(e, context.Canceled) {
			t.Errorf("utt %d error = %v, want StageCanceled wrapping context.Canceled", i, e)
		}
	}
	if batch.Search.Canceled != int64(len(f.scores)) {
		t.Errorf("Search.Canceled = %d, want %d", batch.Search.Canceled, len(f.scores))
	}
}

// TestDecodePoolCancelMidBatch slows the cache down, expires the deadline
// mid-decode, and checks the liveness contract: the call returns within
// ~100ms of the deadline (per-frame cancellation checks), results stay
// index-aligned, finished utterances keep sequential-identical transcripts,
// and interrupted ones carry StageCanceled errors.
func TestDecodePoolCancelMidBatch(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	// Replicate the fixture so the batch cannot finish inside the deadline.
	var scores [][][]float32
	for r := 0; r < 30; r++ {
		scores = append(scores, f.scores...)
	}
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{
		Workers: 2,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			return &faultinject.SlowCache{Inner: c, Delay: time.Millisecond, Every: 50}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const deadline = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	batch, err := p.DecodeContext(ctx, scores)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded (batch finished too fast to cancel?)", err)
	}
	if elapsed > deadline+100*time.Millisecond {
		t.Errorf("returned %v after the deadline, want <100ms", elapsed-deadline)
	}
	if len(batch.Results) != len(scores) || len(batch.Errors) != len(scores) {
		t.Fatal("batch not index-aligned")
	}
	if batch.Search.Canceled == 0 {
		t.Error("no utterances recorded as canceled")
	}
	for i := range scores {
		switch e := batch.Errors[i]; {
		case e == nil:
			// Finished before the deadline: must match sequential exactly.
			w := want[i%len(want)]
			if fmt.Sprint(batch.Results[i].Words) != fmt.Sprint(w.Words) {
				t.Errorf("utt %d finished but diverged from sequential", i)
			}
		case e.Stage != StageCanceled:
			t.Errorf("utt %d stage %q, want %q", i, e.Stage, StageCanceled)
		}
	}
}

// ---------------------------------------------------------------------------
// Lane-scheduler fault wall: seeded churn fuzzing, cancel-one-lane liveness,
// and the race-detector soak behind `make lanes-soak`.

var lanesSoak = flag.Duration("lanes-soak", 2*time.Second, "wall time for the lane churn soak (make lanes-soak runs 20s)")

// laneSequentialOnce caches the fixture's sequential ground truth — the
// oracle every churn order is compared against.
var (
	laneWantOnce sync.Once
	laneWant     []*decoder.Result
)

func laneSequential(t *testing.T, f *poolFixture) []*decoder.Result {
	laneWantOnce.Do(func() {
		seq, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
		if err != nil {
			panic(err)
		}
		out := make([]*decoder.Result, len(f.scores))
		for i, sc := range f.scores {
			out[i] = seq.Decode(sc)
		}
		laneWant = out
	})
	return laneWant
}

// checkLaneResult compares one lane outcome against the sequential oracle.
func checkLaneResult(t *testing.T, tag string, utt int, res *decoder.Result, want []*decoder.Result) {
	t.Helper()
	if res == nil {
		t.Errorf("%s utt %d: nil result", tag, utt)
		return
	}
	w := want[utt]
	if fmt.Sprint(res.Words) != fmt.Sprint(w.Words) || res.Cost != w.Cost || res.ReachedFinal != w.ReachedFinal {
		t.Errorf("%s utt %d diverged: (%v, %v, %v), want (%v, %v, %v)",
			tag, utt, res.Words, res.Cost, res.ReachedFinal, w.Words, w.Cost, w.ReachedFinal)
	}
}

// FuzzLaneSchedule drives a lane scheduler through seeded join/leave/cancel
// churn: a random interleaving of single-utterance batches, chunked streamed
// lanes, and lanes canceled mid-flight (by context or by Close), over a
// random lane width. The invariants under every admission order: every
// utterance that completes is byte-identical to its solo decode, canceled
// lanes fail with StageCanceled and nothing else, and when the dust settles
// no slot, decoder, or queue entry has leaked (joins == drains, all slots
// free).
func FuzzLaneSchedule(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		fx := getFixture(t)
		want := laneSequential(t, fx)
		rng := rand.New(rand.NewSource(int64(seed)))
		width := 1 + rng.Intn(4)
		s, err := NewLaneScheduler(fx.tk.AM.G, fx.tk.LMGraph.G, fx.tk.Scorer, LaneConfig{
			Lanes:   width,
			Decoder: decoder.Config{PreemptivePruning: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		ops := 4 + rng.Intn(9)
		var wg sync.WaitGroup
		for op := 0; op < ops; op++ {
			utt := rng.Intn(len(fx.tk.Test))
			mode := rng.Intn(4)
			chunk := 1 + rng.Intn(9)
			cancelAfter := rng.Intn(3)
			closeNotCancel := rng.Intn(2) == 0
			wg.Add(1)
			switch mode {
			case 0: // single-utterance batch
				go func() {
					defer wg.Done()
					b, err := s.Decode([][][]float32{fx.tk.Test[utt].Frames})
					if err != nil || b.Failed() != 0 {
						t.Errorf("batch utt %d: err=%v errors=%v", utt, err, b.Errors)
						return
					}
					checkLaneResult(t, "batch", utt, b.Results[0], want)
				}()
			case 1: // streamed lane, chunked pushes, clean finish
				go func() {
					defer wg.Done()
					h, err := s.OpenLane(context.Background(), nil)
					if err != nil {
						t.Errorf("stream utt %d: open: %v", utt, err)
						return
					}
					frames := fx.tk.Test[utt].Frames
					for off := 0; off < len(frames); off += chunk {
						end := off + chunk
						if end > len(frames) {
							end = len(frames)
						}
						if err := h.Push(frames[off:end]); err != nil {
							t.Errorf("stream utt %d: push: %v", utt, err)
							return
						}
					}
					res, err := h.Finish()
					if err != nil {
						t.Errorf("stream utt %d: finish: %v", utt, err)
						return
					}
					checkLaneResult(t, "stream", utt, res, want)
				}()
			default: // lane canceled mid-flight
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					h, err := s.OpenLane(ctx, nil)
					if err != nil {
						// Legal only if the cancellation raced admission.
						var derr *DecodeError
						if !errors.As(err, &derr) || derr.Stage != StageCanceled {
							t.Errorf("cancel utt %d: open: %v", utt, err)
						}
						return
					}
					frames := fx.tk.Test[utt].Frames
					for c := 0; c <= cancelAfter && c*chunk < len(frames); c++ {
						end := (c + 1) * chunk
						if end > len(frames) {
							end = len(frames)
						}
						if err := h.Push(frames[c*chunk : end]); err != nil {
							break // already failed: fine, it must still unblock
						}
					}
					if closeNotCancel {
						h.Close()
						return
					}
					cancel()
					if _, err := h.Finish(); err != nil {
						var derr *DecodeError
						if !errors.As(err, &derr) || derr.Stage != StageCanceled {
							t.Errorf("cancel utt %d: finish: %v, want StageCanceled", utt, err)
						}
					}
				}()
			}
		}
		wg.Wait()
		if !s.Quiesced() {
			t.Error("scheduler leaked a slot or queue entry after churn")
		}
		if st := s.Stats(); st.Joins != st.Drains {
			t.Errorf("token leak: joins %d != drains %d", st.Joins, st.Drains)
		}
	})
}

// TestLaneSchedulerCancelOneLaneMidBatch is the lane liveness contract: with
// a streamed lane and a saturating batch sharing the group, canceling just
// the stream's context releases its slot within a bounded wait (the runner
// checks every lane's context each frame step), the stream's Finish returns
// its partial result with a StageCanceled error, and the batch — which never
// saw the cancellation — completes with every utterance byte-identical to a
// sequential decode.
func TestLaneSchedulerCancelOneLaneMidBatch(t *testing.T) {
	f := getFixture(t)
	want := laneSequential(t, f)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   2,
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := s.OpenLane(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Push(f.tk.Test[0].Frames[:3]); err != nil {
		t.Fatal(err)
	}

	// Saturate the rest of the group: 3x the fixture, batched concurrently.
	var utts [][][]float32
	var wantIdx []int
	for r := 0; r < 3; r++ {
		for i, u := range f.tk.Test {
			utts = append(utts, u.Frames)
			wantIdx = append(wantIdx, i)
		}
	}
	var wg sync.WaitGroup
	var batch *Batch
	var batchErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch, batchErr = s.Decode(utts)
	}()

	// Cancel only the stream, mid-batch. Finish must return promptly even
	// though the group is saturated with the batch's work.
	cancel()
	start := time.Now()
	res, ferr := h.Finish()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("canceled lane took %v to release, want prompt", waited)
	}
	var derr *DecodeError
	if !errors.As(ferr, &derr) || derr.Stage != StageCanceled || !errors.Is(ferr, context.Canceled) {
		t.Errorf("Finish after cancel: %v, want StageCanceled wrapping context.Canceled", ferr)
	}
	if res == nil || res.Stats.Frames > 3 {
		t.Errorf("canceled lane result %+v, want partial over <= 3 consumed frames", res)
	}

	wg.Wait()
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if n := batch.Failed(); n != 0 {
		t.Fatalf("cancellation leaked into the batch: %d failures: %v", n, batch.Errors)
	}
	for i, r := range batch.Results {
		checkLaneResult(t, "batch", wantIdx[i], r, want)
	}
	if !s.Quiesced() {
		t.Error("scheduler not quiesced")
	}
}

// TestSoakLaneChurn is the lane scheduler's endurance pass (make lanes-soak;
// `make race` runs its 2s short mode): several goroutines hammer one
// scheduler with mixed batches, chunked streams and mid-flight cancels for
// the soak duration, under -race in both entry points. Every completed
// utterance must match the sequential oracle, and the scheduler must end
// quiesced with join/drain accounting balanced.
func TestSoakLaneChurn(t *testing.T) {
	f := getFixture(t)
	want := laneSequential(t, f)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   4,
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.Now().Add(*lanesSoak)
	var done, canceled atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for time.Now().Before(deadline) {
				utt := rng.Intn(len(f.tk.Test))
				switch rng.Intn(3) {
				case 0: // small batch
					n := 1 + rng.Intn(3)
					var utts [][][]float32
					var idx []int
					for i := 0; i < n; i++ {
						u := (utt + i) % len(f.tk.Test)
						utts = append(utts, f.tk.Test[u].Frames)
						idx = append(idx, u)
					}
					b, err := s.Decode(utts)
					if err != nil || b.Failed() != 0 {
						t.Errorf("soak batch: err=%v errors=%v", err, b.Errors)
						return
					}
					for i, r := range b.Results {
						checkLaneResult(t, "soak batch", idx[i], r, want)
					}
					done.Add(int64(n))
				case 1: // chunked stream
					h, err := s.OpenLane(context.Background(), nil)
					if err != nil {
						t.Errorf("soak stream open: %v", err)
						return
					}
					frames := f.tk.Test[utt].Frames
					chunk := 1 + rng.Intn(8)
					for off := 0; off < len(frames); off += chunk {
						end := off + chunk
						if end > len(frames) {
							end = len(frames)
						}
						if err := h.Push(frames[off:end]); err != nil {
							t.Errorf("soak stream push: %v", err)
							return
						}
						_ = h.Partial()
					}
					res, err := h.Finish()
					if err != nil {
						t.Errorf("soak stream finish: %v", err)
						return
					}
					checkLaneResult(t, "soak stream", utt, res, want)
					done.Add(1)
				default: // canceled stream
					ctx, cancel := context.WithCancel(context.Background())
					h, err := s.OpenLane(ctx, nil)
					if err != nil {
						cancel()
						continue
					}
					_ = h.Push(f.tk.Test[utt].Frames[:1+rng.Intn(5)])
					if rng.Intn(2) == 0 {
						cancel()
						_, _ = h.Finish()
					} else {
						h.Close()
					}
					cancel()
					canceled.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if !s.Quiesced() {
		t.Error("scheduler leaked a slot after the soak")
	}
	st := s.Stats()
	if st.Joins != st.Drains {
		t.Errorf("join/drain imbalance after soak: %+v", st)
	}
	t.Logf("lane churn soak: %d utterances decoded, %d canceled, %d joins, scorer calls/frame %.3f",
		done.Load(), canceled.Load(), st.Joins, st.ScorerCallsPerFrame())
}
