package pool

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bias"
	"repro/internal/decoder"
)

var biasSoak = flag.Duration("bias-soak", 2*time.Second, "wall time for the tenant-churn bias soak (make bias-soak runs 20s)")

// TestSoakBiasTenantChurn is the biased-decoding endurance pass (make
// bias-soak; a 2s slice of it rides in make race): six client goroutines
// hammer one lane scheduler with Zipf-distributed tenants — each tenant
// carrying its own bias machine — mixed with tenantless traffic and
// mid-flight cancellations, far more tenants than MaxTenants partitions so
// the tenant-level LRU churns the whole time. Under the race detector this
// exercises every cross-thread seam the tenant layer added: per-lane
// SetBias/SetShared installs racing batch submission, partition creation
// and drop racing concurrent Partition calls, and TenantStats scrapes
// racing live decodes. The correctness bar never drops: every completed
// utterance is byte-identical to its tenant's solo biased oracle.
func TestSoakBiasTenantChurn(t *testing.T) {
	f := getFixture(t)
	const tenants = 12
	machines := make([]*bias.Machine, tenants)
	oracle := make([][]*decoder.Result, tenants+1) // [tenants] = tenantless
	solo, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	decodeAll := func() []*decoder.Result {
		res := make([]*decoder.Result, len(f.scores))
		for i, sc := range f.scores {
			res[i] = solo.Decode(sc)
		}
		return res
	}
	for ti := 0; ti < tenants; ti++ {
		machines[ti] = tenantMachine(t, f, ti, 0.5+float32(ti)*0.25)
		if err := solo.SetBias(machines[ti]); err != nil {
			t.Fatal(err)
		}
		oracle[ti] = decodeAll()
	}
	solo.ClearBias()
	oracle[tenants] = decodeAll()

	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   4,
		Tenants: TenantPartitionConfig{Entries: 256, Shards: 2, MaxTenants: 4},
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	check := func(tag string, ti, utt int, res *decoder.Result) {
		w := oracle[ti][utt]
		if res == nil {
			t.Errorf("%s tenant %d utt %d: nil result", tag, ti, utt)
			return
		}
		if fmt.Sprint(res.Words) != fmt.Sprint(w.Words) || res.Cost != w.Cost || res.ReachedFinal != w.ReachedFinal {
			t.Errorf("%s tenant %d utt %d diverged from its solo biased oracle", tag, ti, utt)
		}
	}

	deadline := time.Now().Add(*biasSoak)
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 1))
			zipf := rand.NewZipf(rng, 1.3, 1, tenants-1)
			for time.Now().Before(deadline) {
				utt := rng.Intn(len(f.tk.Test))
				ti := tenants // tenantless
				var tb *TenantBias
				if rng.Intn(4) != 0 {
					ti = int(zipf.Uint64())
					tb = &TenantBias{Tenant: fmt.Sprintf("tenant-%d", ti), Machine: machines[ti]}
				}
				switch rng.Intn(4) {
				case 0: // scrape racing decodes
					_ = s.TenantCaches().TenantStats()
					_ = s.CacheStats()
				case 1: // chunked biased stream
					h, err := s.OpenLaneBias(context.Background(), nil, tb)
					if err != nil {
						t.Errorf("soak stream open: %v", err)
						return
					}
					frames := f.tk.Test[utt].Frames
					chunk := 1 + rng.Intn(8)
					for off := 0; off < len(frames); off += chunk {
						end := off + chunk
						if end > len(frames) {
							end = len(frames)
						}
						if err := h.Push(frames[off:end]); err != nil {
							t.Errorf("soak stream push: %v", err)
							return
						}
						_ = h.Partial()
					}
					res, err := h.Finish()
					if err != nil {
						t.Errorf("soak stream finish: %v", err)
						return
					}
					check("stream", ti, utt, res)
					done.Add(1)
				case 2: // canceled biased stream: liveness only
					ctx, cancel := context.WithCancel(context.Background())
					h, err := s.OpenLaneBias(ctx, nil, tb)
					if err != nil {
						cancel()
						continue
					}
					_ = h.Push(f.tk.Test[utt].Frames[:1+rng.Intn(5)])
					if rng.Intn(2) == 0 {
						cancel()
						_, _ = h.Finish()
					} else {
						h.Close()
					}
					cancel()
				default: // small biased batch
					n := 1 + rng.Intn(3)
					var utts [][][]float32
					var idx []int
					for i := 0; i < n; i++ {
						u := (utt + i) % len(f.tk.Test)
						utts = append(utts, f.tk.Test[u].Frames)
						idx = append(idx, u)
					}
					b, err := s.DecodeBiasContext(context.Background(), utts, nil, tb)
					if err != nil || b.Failed() != 0 {
						t.Errorf("soak batch: err=%v errors=%v", err, b.Errors)
						return
					}
					for i, r := range b.Results {
						check("batch", ti, idx[i], r)
					}
					done.Add(int64(n))
				}
			}
		}(w)
	}
	wg.Wait()
	if done.Load() == 0 {
		t.Fatal("soak completed no utterances")
	}
	if !s.Quiesced() {
		t.Error("scheduler leaked a slot or queue entry after tenant churn")
	}
	if st := s.Stats(); st.Joins != st.Drains {
		t.Errorf("slot leak: joins %d != drains %d", st.Joins, st.Drains)
	}
	tc := s.TenantCaches()
	if tc.Dropped() == 0 {
		t.Error("tenant-level LRU never churned; soak was meant to exceed MaxTenants")
	}
	if tc.Tenants() > 4 {
		t.Errorf("resident partitions %d exceed MaxTenants 4", tc.Tenants())
	}
	t.Logf("bias soak: %d utterances over %d tenants, %d partitions dropped", done.Load(), tenants, tc.Dropped())
}
