package pool

import (
	"container/list"
	"sync"

	"repro/internal/bias"
)

// TenantBias is a decode's tenant assignment: which tenant the work runs on
// behalf of, and (optionally) the bias machine compiled from that tenant's
// phrase list. A nil *TenantBias is the tenantless path — plain two-layer
// search over the shared offset cache, byte-identical to a pool that has
// never seen a tenant.
type TenantBias struct {
	// Tenant routes the decode's shared-layer (L2) offset-cache traffic
	// into the tenant's private partition, so its churn cannot evict other
	// tenants' entries. Empty routes to the shared partition-free L2 — the
	// exact path tenantless traffic always took.
	Tenant string
	// Machine, when non-nil, is installed on every worker or lane slot the
	// decode uses (decoder.SetBias), turning the search into the three-way
	// AM ∘ LM ∘ Bias composition. nil decodes two-layer under the tenant's
	// cache partition only.
	Machine *bias.Machine
}

// TenantPartitionConfig sizes the per-tenant L2 partitions. The zero value
// selects serving-friendly defaults for every field.
type TenantPartitionConfig struct {
	// Entries is each tenant partition's LRU capacity — the per-tenant
	// floor: a cold tenant keeps at least this many of its own entries
	// resident no matter how hard any other tenant churns. Default 2048.
	Entries int
	// Shards is each partition's lock-striping factor. Tenant partitions
	// see one tenant's traffic at a time, so they need far less striping
	// than the pool-wide LRU. Default 4.
	Shards int
	// MaxTenants caps how many tenant partitions stay resident; the least
	// recently used partition (tenant, not entry) is dropped beyond that.
	// Default 64.
	MaxTenants int
}

func (c TenantPartitionConfig) withDefaults() TenantPartitionConfig {
	if c.Entries <= 0 {
		c.Entries = 2048
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	return c
}

// tenantPart is one resident tenant partition.
type tenantPart struct {
	tenant string
	lru    *ShardedLRU
}

// TenantCaches partitions the pool's shared offset cache by tenant: each
// named tenant gets a private ShardedLRU of Entries capacity, so eviction
// pressure in a partition comes only from that tenant's own traffic — a
// Zipf-hot tenant churning millions of keys cannot push a cold tenant's
// entries out (tenant_test.go pins the fairness bound down).
//
// Offset-cache entries are a pure function of the LM graph — the same key
// maps to the same arc offset for every tenant — so partitioning never
// changes decode results; it is purely a capacity-fairness mechanism, and
// wrong routing costs at most a redundant binary search. That is also why
// the per-worker L1 stays shared across tenants: a promoted entry remains
// valid no matter which tenant's partition it came from.
//
// The set of resident partitions is itself an LRU capped at MaxTenants, so
// unbounded tenant cardinality cannot grow memory without limit; dropping a
// partition costs the dropped tenant a cold start, never correctness.
type TenantCaches struct {
	cfg TenantPartitionConfig

	mu      sync.Mutex
	parts   map[string]*list.Element // tenant → element whose Value is *tenantPart
	order   *list.List               // front = most recently used tenant
	dropped uint64

	// onCreate, when non-nil, runs after a new partition is created (outside
	// the lock) — the telemetry hook that registers the tenant's per-partition
	// counter callbacks. Set via Observe before traffic starts.
	onCreate func(tenant string, lru *ShardedLRU)
}

// NewTenantCaches builds an empty partition set.
func NewTenantCaches(cfg TenantPartitionConfig) *TenantCaches {
	return &TenantCaches{
		cfg:   cfg.withDefaults(),
		parts: make(map[string]*list.Element),
		order: list.New(),
	}
}

// Observe installs the partition-creation hook (telemetry registration).
// Call before decode traffic; replaces any previous hook.
func (t *TenantCaches) Observe(fn func(tenant string, lru *ShardedLRU)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onCreate = fn
	t.mu.Unlock()
}

// Partition returns tenant's private L2, creating it on first use and
// dropping the least recently used partition when the resident set exceeds
// MaxTenants. The empty tenant returns nil: tenantless traffic belongs on
// the pool's shared LRU, not in a partition.
func (t *TenantCaches) Partition(tenant string) *ShardedLRU {
	if t == nil || tenant == "" {
		return nil
	}
	t.mu.Lock()
	if e, ok := t.parts[tenant]; ok {
		t.order.MoveToFront(e)
		lru := e.Value.(*tenantPart).lru
		t.mu.Unlock()
		return lru
	}
	p := &tenantPart{tenant: tenant, lru: NewShardedLRU(t.cfg.Entries, t.cfg.Shards)}
	t.parts[tenant] = t.order.PushFront(p)
	for t.order.Len() > t.cfg.MaxTenants {
		back := t.order.Back()
		delete(t.parts, back.Value.(*tenantPart).tenant)
		t.order.Remove(back)
		t.dropped++
	}
	hook := t.onCreate
	t.mu.Unlock()
	if hook != nil {
		hook(tenant, p.lru)
	}
	return p.lru
}

// Tenants reports the resident partition count.
func (t *TenantCaches) Tenants() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}

// Dropped reports how many partitions the tenant-level LRU has evicted.
func (t *TenantCaches) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TenantStats snapshots every resident partition's L2 counters, keyed by
// tenant — the per-tenant hit/miss/eviction visibility the fairness test
// and /metrics build on. Dropped partitions take their history with them.
func (t *TenantCaches) TenantStats() map[string]CacheStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	parts := make([]*tenantPart, 0, t.order.Len())
	for e := t.order.Front(); e != nil; e = e.Next() {
		parts = append(parts, e.Value.(*tenantPart))
	}
	t.mu.Unlock()
	out := make(map[string]CacheStats, len(parts))
	for _, p := range parts {
		out[p.tenant] = p.lru.Stats()
	}
	return out
}

// Reset empties every resident partition's entries (hit/miss counters keep
// accumulating, as in ShardedLRU.Reset), keeping the partitions themselves
// resident — the tenant-side leg of a pool-wide cold start.
func (t *TenantCaches) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	parts := make([]*tenantPart, 0, t.order.Len())
	for e := t.order.Front(); e != nil; e = e.Next() {
		parts = append(parts, e.Value.(*tenantPart))
	}
	t.mu.Unlock()
	for _, p := range parts {
		p.lru.Reset()
	}
}

// Stats aggregates all resident partitions — the tenant-side contribution
// to a pool's CacheStats.
func (t *TenantCaches) Stats() CacheStats {
	var agg CacheStats
	for _, st := range t.TenantStats() {
		agg.Add(st)
	}
	return agg
}
