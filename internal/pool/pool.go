package pool

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/wfst"
)

// Config sizes a DecodePool. The zero value selects serving-friendly
// defaults for every field.
type Config struct {
	// Workers is the number of decoding goroutines; each owns one
	// on-the-fly decoder and one TieredCache. Defaults to GOMAXPROCS.
	Workers int
	// L1Entries is each worker's direct-mapped cache size in entries
	// (rounded up to a power of two). Default 512.
	L1Entries int
	// L2Entries bounds the shared LRU across all workers. Default 1<<16 —
	// the bounded replacement for the seed decoder's unbounded memo map.
	L2Entries int
	// L2Shards is the shared LRU's lock-striping factor (rounded up to a
	// power of two). Default 16.
	L2Shards int
	// Decoder configures each worker's beam search. Its OffsetCache field
	// is overwritten with the pool's tiered cache; leave it nil.
	Decoder decoder.Config
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.L1Entries <= 0 {
		c.L1Entries = 512
	}
	if c.L2Entries <= 0 {
		c.L2Entries = 1 << 16
	}
	if c.L2Shards <= 0 {
		c.L2Shards = 16
	}
	return c
}

// worker is one decoding lane: a private decoder over a private L1 cache.
type worker struct {
	dec   *decoder.OnTheFly
	cache *TieredCache
}

// DecodePool fans batches of scored utterances out to a fixed set of
// workers that share one bounded offset-lookup cache. Construction is
// cheap relative to the graphs (the workers borrow the caller's AM/LM), so
// a pool can be long-lived and reused across batches — the shared cache
// stays warm, which is exactly the locality the paper's Offset Lookup
// Table exploits across utterances.
//
// Decode calls must not overlap: workers are stateful. Results are
// deterministic and identical to sequential decoding for any worker count.
type DecodePool struct {
	cfg     Config
	shared  *ShardedLRU
	workers []worker

	mu   sync.Mutex // guards against overlapping Decode calls
	busy bool
}

// New builds a pool of cfg.Workers decoders over the AM and LM graphs (the
// same pair NewOnTheFly takes; the LM must be input-sorted).
func New(amGraph, lmGraph *wfst.WFST, cfg Config) (*DecodePool, error) {
	cfg = cfg.withDefaults()
	shared := NewShardedLRU(cfg.L2Entries, cfg.L2Shards)
	p := &DecodePool{cfg: cfg, shared: shared, workers: make([]worker, cfg.Workers)}
	for i := range p.workers {
		tc := NewTieredCache(cfg.L1Entries, shared)
		dcfg := cfg.Decoder
		dcfg.OffsetCache = tc
		d, err := decoder.NewOnTheFly(amGraph, lmGraph, dcfg)
		if err != nil {
			return nil, fmt.Errorf("pool: worker %d: %w", i, err)
		}
		p.workers[i] = worker{dec: d, cache: tc}
	}
	return p, nil
}

// Workers reports the pool's worker count.
func (p *DecodePool) Workers() int { return len(p.workers) }

// Batch is the result of one DecodePool.Decode call.
type Batch struct {
	// Results holds one decode result per input utterance, index-aligned
	// with the scores passed to Decode.
	Results []*decoder.Result
	// Throughput aggregates the batch: utterances/sec, frames/sec,
	// aggregate RTF and cache hit rate over the batch's wall time.
	Throughput metrics.Throughput
	// Decoder sums the per-utterance search statistics.
	Decoder decoder.Stats
	// Cache snapshots the two-layer cache counters, cumulative over the
	// pool's lifetime (long-lived pools keep their cache warm).
	Cache CacheStats
}

// Decode runs the batch: scores[i] is utterance i's acoustic score matrix
// (as produced by acoustic.Scorer.ScoreUtterance). Utterances are dealt to
// workers dynamically, so long and short utterances balance; the result
// order matches the input order regardless of which worker decoded what.
func (p *DecodePool) Decode(scores [][][]float32) (*Batch, error) {
	p.mu.Lock()
	if p.busy {
		p.mu.Unlock()
		return nil, fmt.Errorf("pool: overlapping Decode calls on one DecodePool")
	}
	p.busy = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.busy = false
		p.mu.Unlock()
	}()

	start := time.Now()
	results := make([]*decoder.Result, len(scores))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := range p.workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for i := range jobs {
				results[i] = w.dec.Decode(scores[i])
			}
		}(p.workers[w])
	}
	for i := range scores {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	b := &Batch{Results: results}
	for _, r := range results {
		b.Decoder.Add(r.Stats)
	}
	b.Cache = p.CacheStats()
	b.Throughput = metrics.Throughput{
		Utterances:   len(scores),
		Frames:       b.Decoder.Frames,
		Wall:         time.Since(start),
		CacheHits:    b.Cache.L1Hits + b.Cache.L2Hits,
		CacheLookups: b.Cache.Lookups(),
	}
	return b, nil
}

// CacheStats merges the shared LRU's counters with every worker's L1
// counters. Call between Decode calls (workers must be idle).
func (p *DecodePool) CacheStats() CacheStats {
	st := p.shared.Stats()
	for i := range p.workers {
		st.Add(p.workers[i].cache.Stats())
	}
	return st
}

// ResetCache empties both layers — the shared LRU and every worker's L1 —
// for cold-cache measurements. Call between Decode calls.
func (p *DecodePool) ResetCache() {
	p.shared.Reset()
	for i := range p.workers {
		p.workers[i].cache.Reset()
	}
}
