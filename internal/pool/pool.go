package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/wfst"
)

// Config sizes a DecodePool. The zero value selects serving-friendly
// defaults for every field.
type Config struct {
	// Workers is the number of decoding goroutines; each owns one
	// on-the-fly decoder and one TieredCache. Defaults to GOMAXPROCS.
	Workers int
	// L1Entries is each worker's direct-mapped cache size in entries
	// (rounded up to a power of two). Default 512.
	L1Entries int
	// L2Entries bounds the shared LRU across all workers. Default 1<<16 —
	// the bounded replacement for the seed decoder's unbounded memo map.
	L2Entries int
	// L2Shards is the shared LRU's lock-striping factor (rounded up to a
	// power of two). Default 16.
	L2Shards int
	// Tenants sizes the per-tenant L2 partitions DecodeBiasContext routes
	// tenant traffic through (see TenantCaches). The zero value selects the
	// defaults; tenantless pools never allocate a partition.
	Tenants TenantPartitionConfig
	// Decoder configures each worker's beam search. Its OffsetCache field
	// is overwritten with the pool's tiered cache; leave it nil.
	Decoder decoder.Config
	// Telemetry, when non-nil, publishes pool observability — worker
	// utilization, batch throughput and fault classes, the two-layer cache
	// counters (live per-shard L2 callbacks, per-batch L1 deltas) — and
	// threads its shared decoder instrument set into every worker. nil (the
	// default) disables all telemetry work; results are identical either
	// way. Build one with NewTelemetry.
	Telemetry *Telemetry
	// WrapCache, when non-nil, wraps each worker's tiered cache before it
	// is handed to the decoder. This is the fault-injection seam
	// internal/faultinject uses to simulate cache-layer failures (panics,
	// dropped writes, slow lookups); production pools leave it nil. Cache
	// contents never change results, so a lossy wrapper costs only probes.
	WrapCache func(decoder.OffsetCache) decoder.OffsetCache
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.L1Entries <= 0 {
		c.L1Entries = 512
	}
	if c.L2Entries <= 0 {
		c.L2Entries = 1 << 16
	}
	if c.L2Shards <= 0 {
		c.L2Shards = 16
	}
	c.Tenants = c.Tenants.withDefaults()
	return c
}

// worker is one decoding lane: a private decoder over a private L1 cache.
type worker struct {
	dec   *decoder.OnTheFly
	cache *TieredCache
}

// DecodePool fans batches of scored utterances out to a fixed set of
// workers that share one bounded offset-lookup cache. Construction is
// cheap relative to the graphs (the workers borrow the caller's AM/LM), so
// a pool can be long-lived and reused across batches — the shared cache
// stays warm, which is exactly the locality the paper's Offset Lookup
// Table exploits across utterances.
//
// Decode calls may overlap: each call checks workers out of a free list,
// so concurrent batches split the pool between them instead of corrupting
// worker state (a serving frontend issues one small batch per request).
// Results are deterministic and identical to sequential decoding for any
// worker count and any interleaving — each utterance is decoded whole by
// one worker, and the shared cache never changes results.
type DecodePool struct {
	cfg     Config
	shared  *ShardedLRU
	tenants *TenantCaches
	workers []worker
	// idle is the worker free list: it holds the index of every worker not
	// currently checked out by a Decode call.
	idle chan int

	// telMu serializes the telemetry L1 snapshot across overlapping batches;
	// lastL1 is the cumulative per-worker advance already published.
	telMu  sync.Mutex
	lastL1 CacheStats
}

// New builds a pool of cfg.Workers decoders over the AM and LM graphs (the
// same pair NewOnTheFly takes; the LM must be input-sorted).
func New(amGraph, lmGraph *wfst.WFST, cfg Config) (*DecodePool, error) {
	cfg = cfg.withDefaults()
	shared := NewShardedLRU(cfg.L2Entries, cfg.L2Shards)
	p := &DecodePool{cfg: cfg, shared: shared, tenants: NewTenantCaches(cfg.Tenants), workers: make([]worker, cfg.Workers)}
	for i := range p.workers {
		tc := NewTieredCache(cfg.L1Entries, shared)
		dcfg := cfg.Decoder
		dcfg.OffsetCache = tc
		dcfg.Telemetry = cfg.Telemetry.decoderTelemetry()
		if cfg.WrapCache != nil {
			dcfg.OffsetCache = cfg.WrapCache(tc)
		}
		d, err := decoder.NewOnTheFly(amGraph, lmGraph, dcfg)
		if err != nil {
			return nil, fmt.Errorf("pool: worker %d: %w", i, err)
		}
		p.workers[i] = worker{dec: d, cache: tc}
	}
	p.idle = make(chan int, cfg.Workers)
	for i := range p.workers {
		p.idle <- i
	}
	cfg.Telemetry.observePool(p)
	cfg.Telemetry.observeTenants(p.tenants, "pool")
	return p, nil
}

// checkout claims up to want workers: it blocks (honouring ctx) until at
// least one is free, then greedily grabs any further idle workers without
// waiting — a batch running alongside others takes what it can get and the
// dealing loop balances utterances over it.
func (p *DecodePool) checkout(ctx context.Context, want int) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ids := make([]int, 0, want)
	select {
	case id := <-p.idle:
		ids = append(ids, id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	for len(ids) < want {
		select {
		case id := <-p.idle:
			ids = append(ids, id)
		default:
			return ids, nil
		}
	}
	return ids, nil
}

// Workers reports the pool's worker count.
func (p *DecodePool) Workers() int { return len(p.workers) }

// Batch is the result of one DecodePool.Decode call.
type Batch struct {
	// Results holds one decode result per input utterance, index-aligned
	// with the scores passed to Decode.
	Results []*decoder.Result
	// Throughput aggregates the batch: utterances/sec, frames/sec,
	// aggregate RTF and cache hit rate over the batch's wall time.
	Throughput metrics.Throughput
	// Decoder sums the per-utterance search statistics.
	Decoder decoder.Stats
	// Cache snapshots the two-layer cache counters, cumulative over the
	// pool's lifetime (long-lived pools keep their cache warm).
	Cache CacheStats
	// Errors is index-aligned with Results: Errors[i] is non-nil when
	// utterance i failed (worker panic) or was cut short / skipped by
	// cancellation. Results[i] then holds whatever partial result exists,
	// possibly nil. A fully healthy batch has only nil entries.
	Errors []*DecodeError
	// Search aggregates the batch's search-health counters: rescues,
	// search failures, recovered panics, and cancellations.
	Search metrics.Search
}

// Failed reports how many utterances in the batch carry an error.
func (b *Batch) Failed() int {
	var n int
	for _, e := range b.Errors {
		if e != nil {
			n++
		}
	}
	return n
}

// Decode runs the batch: scores[i] is utterance i's acoustic score matrix
// (as produced by acoustic.Scorer.ScoreUtterance). Utterances are dealt to
// workers dynamically, so long and short utterances balance; the result
// order matches the input order regardless of which worker decoded what.
func (p *DecodePool) Decode(scores [][][]float32) (*Batch, error) {
	return p.DecodeContext(context.Background(), scores)
}

// DecodeContext is Decode with deadline/cancellation and per-utterance
// fault isolation:
//
//   - A worker panic mid-utterance (e.g. an out-of-range read caused by a
//     corrupted score row) is recovered and recorded as Batch.Errors[i]
//     without disturbing any other worker; every other utterance's result
//     stays byte-identical to a sequential decode.
//   - Cancellation is checked per frame inside each worker and between
//     utterances at the dealing loop, so the call returns promptly with
//     index-aligned partial results and ctx.Err(). Utterances cut short or
//     never started carry a StageCanceled error.
//
// The returned Batch is always non-nil; the error is ctx.Err() when the
// context ended the batch (including while waiting for a free worker), nil
// otherwise — per-utterance faults live in Batch.Errors.
func (p *DecodePool) DecodeContext(ctx context.Context, scores [][][]float32) (*Batch, error) {
	return p.DecodePresetContext(ctx, scores, nil)
}

// DecodePresetContext is DecodeContext with a search operating point: when
// preset is non-nil, every worker this batch checks out decodes at the
// degraded (Beam, MaxActive) point instead of its configured one — the
// load-shedding ladder a serving frontend steps through under pressure
// (decoder.Config.DegradedPreset). nil preset decodes at full quality; the
// preset applies only to this batch, never to concurrent or later ones.
func (p *DecodePool) DecodePresetContext(ctx context.Context, scores [][][]float32, preset *decoder.SearchPreset) (*Batch, error) {
	return p.DecodeBiasContext(ctx, scores, preset, nil)
}

// DecodeBiasContext is DecodePresetContext with a tenant assignment: when
// tb is non-nil, every worker this batch checks out decodes under the
// tenant's bias machine (nil tb.Machine decodes two-layer) and routes its
// shared-layer cache traffic through the tenant's private partition, so a
// hot tenant's churn cannot evict other tenants' entries. Like the preset,
// the assignment is installed only while the batch holds each worker
// exclusively and applies to this batch alone. A nil tb is byte-identical
// to DecodePresetContext — the tenantless invariant the bias differential
// tests pin down at the decoder layer and tenant_test.go pins here.
func (p *DecodePool) DecodeBiasContext(ctx context.Context, scores [][][]float32, preset *decoder.SearchPreset, tb *TenantBias) (*Batch, error) {
	start := time.Now()
	// Exact (mcache-flushing) sampling: a warm batch allocates so little
	// that the span-granular counters can round it down to zero.
	a0 := metrics.ReadAllocCountersExact()
	results := make([]*decoder.Result, len(scores))
	errs := make([]*DecodeError, len(scores))

	var ids []int
	if len(scores) > 0 {
		want := len(p.workers)
		if len(scores) < want {
			want = len(scores)
		}
		var cerr error
		ids, cerr = p.checkout(ctx, want)
		if cerr != nil {
			// No worker ever ran: the whole batch is canceled work.
			for j := range scores {
				errs[j] = &DecodeError{Utterance: j, Stage: StageCanceled, Cause: cerr}
			}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	// The busy gauge is extracted once: a nil pool telemetry leaves it nil,
	// and nil-gauge updates are free no-ops.
	var workersBusy *telemetry.Gauge
	if p.cfg.Telemetry != nil {
		workersBusy = p.cfg.Telemetry.WorkersBusy
	}
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := p.workers[id]
			// The caller holds the worker exclusively until it is returned
			// to the free list, so installing the batch's operating point
			// here cannot race with another batch.
			if preset != nil {
				w.dec.SetSearchPreset(*preset)
			} else {
				w.dec.ClearSearchPreset()
			}
			// Tenant assignment rides the same exclusivity: bias machine on
			// the decoder, tenant partition as the cache's L2. Both install
			// branches run every batch so a worker never carries a previous
			// batch's tenant state.
			var biasErr error
			if tb != nil {
				if biasErr = w.dec.SetBias(tb.Machine); biasErr != nil {
					w.dec.ClearBias()
				}
				if l2 := p.tenants.Partition(tb.Tenant); l2 != nil {
					w.cache.SetShared(l2)
				} else {
					w.cache.SetShared(p.shared)
				}
			} else {
				w.dec.ClearBias()
				w.cache.SetShared(p.shared)
			}
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					// Drain the remaining dealt jobs cheaply.
					errs[i] = &DecodeError{Utterance: i, Stage: StageCanceled, Cause: err}
					continue
				}
				if biasErr != nil {
					// The bias machine does not fit this model's graphs; the
					// whole batch asked for it, so every utterance fails the
					// same way rather than silently decoding unbiased.
					errs[i] = &DecodeError{Utterance: i, Stage: StageSearch, Cause: biasErr}
					continue
				}
				workersBusy.Inc()
				results[i], errs[i] = decodeOne(ctx, w.dec, i, scores[i])
				workersBusy.Dec()
			}
			p.idle <- id
		}(id)
	}
	if len(ids) > 0 {
	deal:
		for i := range scores {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Utterance i and everything after it were never dealt; mark
				// them canceled (workers only touch indices they received).
				for j := i; j < len(scores); j++ {
					errs[j] = &DecodeError{Utterance: j, Stage: StageCanceled, Cause: ctx.Err()}
				}
				break deal
			}
		}
	}
	close(jobs)
	wg.Wait()

	alloc := metrics.ReadAllocCountersExact().Delta(a0)
	b := &Batch{Results: results, Errors: errs}
	for _, r := range results {
		if r != nil {
			b.Decoder.Add(r.Stats)
		}
	}
	// Per-utterance allocation counters double-count under concurrency
	// (each worker's snapshot window sees the other workers' allocations),
	// so the batch aggregate is replaced by one batch-wide delta.
	b.Decoder.AllocBytes = int64(alloc.Bytes)
	b.Decoder.AllocObjects = int64(alloc.Objects)
	b.Decoder.GCCycles = int64(alloc.GCs)
	b.Search = metrics.Search{Rescues: b.Decoder.Rescues, Failures: b.Decoder.SearchFailures}
	for _, e := range errs {
		if e == nil {
			continue
		}
		if e.Stage == StageCanceled {
			b.Search.Canceled++
		} else {
			b.Search.Panics++
		}
	}
	b.Cache = p.CacheStats()
	if tel := p.cfg.Telemetry; tel != nil {
		var l1 CacheStats
		for i := range p.workers {
			l1.Add(p.workers[i].cache.Stats())
		}
		// The snapshot/advance pair is serialized across overlapping
		// batches, so each L1 increment is published exactly once even
		// when several batches finish together.
		p.telMu.Lock()
		delta := CacheStats{L1Hits: l1.L1Hits - p.lastL1.L1Hits, L1Misses: l1.L1Misses - p.lastL1.L1Misses}
		p.lastL1 = l1
		p.telMu.Unlock()
		tel.recordBatch(len(scores), time.Since(start),
			searchDelta{panics: b.Search.Panics, canceled: b.Search.Canceled}, delta)
	}
	b.Throughput = metrics.Throughput{
		Utterances:   len(scores),
		Frames:       b.Decoder.Frames,
		Wall:         time.Since(start),
		CacheHits:    b.Cache.L1Hits + b.Cache.L2Hits,
		CacheLookups: b.Cache.Lookups(),
		AllocBytes:   int64(alloc.Bytes),
		AllocObjects: int64(alloc.Objects),
		GCCycles:     int64(alloc.GCs),
	}
	return b, ctx.Err()
}

// decodeOne runs one utterance with panic isolation: a panic anywhere in
// the search (decoder, cache wrapper, corrupted input) becomes a typed
// DecodeError instead of tearing down the batch. The worker's decoder holds
// no cross-utterance mutable state beyond the offset cache, whose contents
// never affect results, so the worker safely continues with the next job.
//
// SetPanicOnFault extends the isolation to memory faults: a decode walking
// a memory-mapped v3 bundle whose backing file was truncated or whose
// device failed raises SIGBUS/SIGSEGV, which would otherwise kill the whole
// process. With the flag set for this goroutine the fault becomes a runtime
// panic, the recover below turns it into a StageSearch DecodeError, and the
// serving registry can quarantine the sick model while every other model
// keeps decoding.
func decodeOne(ctx context.Context, dec *decoder.OnTheFly, i int, scores [][]float32) (res *decoder.Result, derr *DecodeError) {
	old := debug.SetPanicOnFault(true)
	defer debug.SetPanicOnFault(old)
	defer func() {
		if r := recover(); r != nil {
			res = nil
			derr = &DecodeError{Utterance: i, Stage: StageSearch, Cause: fmt.Errorf("recovered panic: %v", r)}
		}
	}()
	r, err := dec.DecodeContext(ctx, scores)
	if err != nil {
		return r, &DecodeError{Utterance: i, Stage: StageCanceled, Cause: err}
	}
	return r, nil
}

// CacheStats merges the shared LRU's counters, every resident tenant
// partition's counters, and every worker's L1 counters. Safe to call at any
// time; a snapshot taken while batches are in flight includes their work so
// far.
func (p *DecodePool) CacheStats() CacheStats {
	st := p.shared.Stats()
	st.Add(p.tenants.Stats())
	for i := range p.workers {
		st.Add(p.workers[i].cache.Stats())
	}
	return st
}

// TenantCaches exposes the pool's tenant partition set — per-tenant cache
// statistics for /metrics and the fairness tests.
func (p *DecodePool) TenantCaches() *TenantCaches { return p.tenants }

// ResetCache empties both layers — the shared LRU (tenant partitions
// included) and every worker's L1 — for cold-cache measurements. Call
// between Decode calls.
func (p *DecodePool) ResetCache() {
	p.shared.Reset()
	p.tenants.Reset()
	for i := range p.workers {
		p.workers[i].cache.Reset()
	}
}
