package pool

import (
	"context"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestPoolTelemetry runs two instrumented batches and checks the pool
// instrument family end to end: batch/utterance counters, worker gauges,
// the per-batch L1 deltas, the live per-shard L2 callbacks, and the shared
// decoder counters aggregated across workers.
func TestPoolTelemetry(t *testing.T) {
	f := getFixture(t)
	reg := telemetry.NewRegistry()
	tel := NewTelemetry(reg, telemetry.NewTracer(16))
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 3, L2Shards: 4, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}

	if got := tel.Batches.Value(); got != 2 {
		t.Errorf("batches counter = %d, want 2", got)
	}
	if got := tel.Utterances.Value(); got != int64(2*len(f.scores)) {
		t.Errorf("utterances counter = %d, want %d", got, 2*len(f.scores))
	}
	if got := tel.WorkersTotal.Value(); got != 3 {
		t.Errorf("workers gauge = %g, want 3", got)
	}
	if got := tel.WorkersBusy.Value(); got != 0 {
		t.Errorf("busy gauge after quiesce = %g, want 0", got)
	}
	if got := tel.BatchSeconds.Count(); got != 2 {
		t.Errorf("batch seconds observations = %d, want 2", got)
	}

	// Decoder counters are shared across workers and must sum to the batch
	// aggregates.
	wantFrames := int64(b1.Decoder.Frames + b2.Decoder.Frames)
	if got := tel.Decoder.Frames.Value(); got != wantFrames {
		t.Errorf("decoder frames = %d, want %d", got, wantFrames)
	}
	if got := tel.Decoder.Decodes.Value(); got != int64(2*len(f.scores)) {
		t.Errorf("decoder decodes = %d, want %d", got, 2*len(f.scores))
	}

	// The L1 delta publication must reproduce the pool's cumulative view.
	cache := p.CacheStats()
	if got := tel.L1Hits.Value(); got != cache.L1Hits {
		t.Errorf("L1 hit counter = %d, want %d", got, cache.L1Hits)
	}
	if got := tel.L1Misses.Value(); got != cache.L1Misses {
		t.Errorf("L1 miss counter = %d, want %d", got, cache.L1Misses)
	}

	// Per-shard L2 callbacks: the exposition's shard series must sum to the
	// shared LRU's aggregate counters, live.
	var shardHits, shardMisses, shardEvictions int64
	for i := 0; i < p.shared.NumShards(); i++ {
		h, m, e := p.shared.ShardStats(i)
		shardHits += h
		shardMisses += m
		shardEvictions += e
	}
	l2 := p.shared.Stats()
	if shardHits != l2.L2Hits || shardMisses != l2.L2Misses || shardEvictions != l2.Evictions {
		t.Errorf("per-shard sums (%d/%d/%d) disagree with aggregate (%d/%d/%d)",
			shardHits, shardMisses, shardEvictions, l2.L2Hits, l2.L2Misses, l2.Evictions)
	}

	var sb strings.Builder
	reg.WriteTo(&sb)
	for _, name := range []string{
		"unfold_pool_batches_total 2",
		"unfold_pool_workers 3",
		`unfold_cache_l2_shard_hits_total{shard="0"}`,
		`unfold_cache_l2_shard_evictions_total{shard="3"}`,
		"unfold_cache_l2_entries",
		"unfold_decoder_frames_total",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition missing %q", name)
		}
	}
}

// TestPoolTelemetryCancellation checks the canceled-utterance counter: a
// pre-canceled context marks every utterance canceled and telemetry must
// agree with Batch.Search.
func TestPoolTelemetryCancellation(t *testing.T) {
	f := getFixture(t)
	tel := NewTelemetry(telemetry.NewRegistry(), nil)
	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := p.DecodeContext(ctx, f.scores)
	if err == nil {
		t.Fatal("expected ctx error")
	}
	if got := tel.Canceled.Value(); got != b.Search.Canceled {
		t.Errorf("canceled counter = %d, want %d", got, b.Search.Canceled)
	}
	if got := tel.Batches.Value(); got != 1 {
		t.Errorf("batches counter = %d, want 1 (canceled batches still record)", got)
	}
}

// TestPoolTelemetryNil pins that a nil-telemetry pool works and publishes
// nothing, and that results are identical to an instrumented pool — the
// observability layer must never change transcripts.
func TestPoolTelemetryNil(t *testing.T) {
	f := getFixture(t)
	plain, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 2, Telemetry: NewTelemetry(telemetry.NewRegistry(), nil)})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	b, err := instr.Decode(f.scores)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].Cost != b.Results[i].Cost {
			t.Fatalf("utt %d: telemetry changed the decode cost", i)
		}
		aw, bw := a.Results[i].Words, b.Results[i].Words
		if len(aw) != len(bw) {
			t.Fatalf("utt %d: word count differs", i)
		}
		for j := range aw {
			if aw[j] != bw[j] {
				t.Fatalf("utt %d word %d differs", i, j)
			}
		}
	}

	var nilTel *Telemetry
	nilTel.observePool(plain)
	nilTel.recordBatch(1, 0, searchDelta{}, CacheStats{})
	if nilTel.decoderTelemetry() != nil {
		t.Fatal("nil pool telemetry must thread a nil decoder telemetry")
	}
}
