package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/acoustic"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/wfst"
)

// LaneConfig sizes a LaneScheduler. The zero value selects serving-friendly
// defaults for every field.
type LaneConfig struct {
	// Lanes is the lockstep width: how many utterances advance together
	// through one batched scorer call per frame step. Default 4.
	Lanes int
	// L1Entries / L2Entries / L2Shards size the two-layer offset cache
	// exactly as in Config: each lane slot owns a direct-mapped L1 over one
	// shared LRU. Defaults 512 / 1<<16 / 16.
	L1Entries int
	L2Entries int
	L2Shards  int
	// Tenants sizes the per-tenant L2 partitions biased lanes route their
	// shared-layer traffic through, exactly as in Config.Tenants.
	Tenants TenantPartitionConfig
	// Decoder configures each slot's beam search. Its OffsetCache field is
	// overwritten with the slot's tiered cache; leave it nil.
	Decoder decoder.Config
	// Telemetry, when non-nil, publishes the lane instruments
	// (unfold_lane_active, unfold_lane_joins_total, unfold_lane_drains_total)
	// plus the shared batch/cache/decoder sets. nil disables all of it.
	Telemetry *Telemetry
	// WrapCache, when non-nil, wraps each slot's tiered cache before it is
	// handed to the decoder — the same fault-injection seam Config.WrapCache
	// exposes for the worker pool.
	WrapCache func(decoder.OffsetCache) decoder.OffsetCache
}

func (c LaneConfig) withDefaults() LaneConfig {
	if c.Lanes <= 0 {
		c.Lanes = 4
	}
	if c.L1Entries <= 0 {
		c.L1Entries = 512
	}
	if c.L2Entries <= 0 {
		c.L2Entries = 1 << 16
	}
	if c.L2Shards <= 0 {
		c.L2Shards = 16
	}
	c.Tenants = c.Tenants.withDefaults()
	return c
}

// ErrLaneSchedulerClosed is reported for work submitted to (or still inside)
// a scheduler that has been Closed.
var ErrLaneSchedulerClosed = errors.New("pool: lane scheduler closed")

// laneJob tracks one utterance through the scheduler: queued (waiting for a
// slot), admitted (holding a lane and a slot decoder), finished (result and
// error published, done closed).
type laneJob struct {
	ctx    context.Context
	preset *decoder.SearchPreset
	tb     *TenantBias // tenant assignment; nil decodes two-layer on the shared L2
	utt    int         // index in the submitting batch; -1 for streamed lanes

	queued    [][]float32 // frames submitted before admission
	inputDone bool        // no more frames are coming (batch jobs start true)
	canceled  bool        // explicit LaneHandle.Close

	lane *decoder.Lane
	di   int // slot decoder index while admitted

	finished bool
	res      *decoder.Result
	err      *DecodeError
	done     chan struct{}
	stop     func() bool // releases the ctx cancellation watch
}

// LaneScheduler runs continuous batching over one decoder.LaneGroup: up to
// Lanes utterances advance in frame-synchronous lockstep (one batched scorer
// call per step for all of them), and utterances join and leave the running
// group mid-flight — a freed slot is granted to the next queued utterance on
// the very next step, without waiting for the rest of the group to drain.
// This replaces the worker-pool shape (one goroutine and one scorer pass per
// utterance) with the batched-inference shape: dense matrix work amortized
// across concurrent requests, sparse search still per-utterance.
//
// One runner goroutine owns the group; submitters only enqueue and wait.
// Determinism carries over from the group: every utterance's result is
// byte-identical to a solo decode regardless of lane width, admission order,
// or what the other lanes are doing. Each slot owns its own decoder (its own
// L1 cache and search preset), so per-utterance degradation presets work
// exactly as in DecodePool: installed at admission, visible only to that
// lane.
//
// Fault isolation mirrors the worker pool: a panic inside one lane's
// frontier step fails only that utterance (StageSearch); a panic escaping
// the batched scorer itself fails the utterances active at that step
// (StageScore) and the scheduler keeps serving. Cancellation is checked
// every step, so a canceled utterance leaves its slot within one frame and
// returns its partial result with a StageCanceled error, decodeOne-style.
type LaneScheduler struct {
	cfg     LaneConfig
	shared  *ShardedLRU
	tenants *TenantCaches
	caches  []*TieredCache
	decs    []*decoder.OnTheFly

	mu         sync.Mutex
	cond       *sync.Cond
	group      *decoder.LaneGroup
	freeDecs   []int // slot decoders not bound to an utterance (LIFO)
	queue      []*laneJob
	active     []*laneJob
	closed     bool
	runnerDone chan struct{}

	// telMu serializes the telemetry L1 snapshot across overlapping batches,
	// as in DecodePool.
	telMu  sync.Mutex
	lastL1 CacheStats
}

// NewLaneScheduler builds a scheduler of cfg.Lanes slots over the AM and LM
// graphs and a batch-capable scorer (all repo scorers qualify). The scorer
// must not be shared with concurrent ScoreUtterance callers while the
// scheduler is live: batched scoring owns the lane states.
func NewLaneScheduler(amGraph, lmGraph *wfst.WFST, scorer acoustic.Scorer, cfg LaneConfig) (*LaneScheduler, error) {
	cfg = cfg.withDefaults()
	// cfg.Decoder.Lookahead > 0 puts the group in score-ahead mode: each
	// lane keeps a ring of that many pre-scored frames and one window-sized
	// scorer call refills it, amortizing scorer dispatch across frames on
	// top of the cross-lane batching. Results are byte-identical either way.
	group, err := decoder.NewLaneGroupLookahead(scorer, cfg.Lanes, cfg.Decoder.Lookahead)
	if err != nil {
		return nil, err
	}
	s := &LaneScheduler{
		cfg:        cfg,
		shared:     NewShardedLRU(cfg.L2Entries, cfg.L2Shards),
		tenants:    NewTenantCaches(cfg.Tenants),
		group:      group,
		runnerDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Lanes; i++ {
		tc := NewTieredCache(cfg.L1Entries, s.shared)
		dcfg := cfg.Decoder
		dcfg.OffsetCache = tc
		dcfg.Telemetry = cfg.Telemetry.decoderTelemetry()
		if cfg.WrapCache != nil {
			dcfg.OffsetCache = cfg.WrapCache(tc)
		}
		d, err := decoder.NewOnTheFly(amGraph, lmGraph, dcfg)
		if err != nil {
			return nil, fmt.Errorf("pool: lane %d: %w", i, err)
		}
		s.decs = append(s.decs, d)
		s.caches = append(s.caches, tc)
		s.freeDecs = append(s.freeDecs, i)
	}
	cfg.Telemetry.observeTenants(s.tenants, "lanes")
	go s.run()
	return s, nil
}

// Lanes reports the lockstep width.
func (s *LaneScheduler) Lanes() int { return len(s.decs) }

// Stats snapshots the underlying group's lifetime counters.
func (s *LaneScheduler) Stats() decoder.LaneStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.group.Stats()
}

// Quiesced reports whether no utterance holds or awaits a lane slot and
// every slot decoder is back in the free pool — the leak check invariant
// after all submitted work has drained.
func (s *LaneScheduler) Quiesced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) == 0 && len(s.active) == 0 &&
		len(s.freeDecs) == len(s.decs) && s.group.Active() == 0
}

// CacheStats merges the shared LRU's counters, every resident tenant
// partition's counters, and every slot's L1 counters.
func (s *LaneScheduler) CacheStats() CacheStats {
	st := s.shared.Stats()
	st.Add(s.tenants.Stats())
	for _, c := range s.caches {
		st.Add(c.Stats())
	}
	return st
}

// TenantCaches exposes the scheduler's tenant partition set — per-tenant
// cache statistics for /metrics and the fairness tests.
func (s *LaneScheduler) TenantCaches() *TenantCaches { return s.tenants }

// Close stops the runner, failing any queued or in-flight utterances with
// ErrLaneSchedulerClosed, and waits for it to exit. Further submissions fail
// with the same error. Idempotent.
func (s *LaneScheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.runnerDone
}

// wake is the ctx-cancellation watch body: grab the scheduler lock so the
// broadcast cannot fall between the runner's idle check and its Wait.
func (s *LaneScheduler) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// run is the scheduler's only goroutine: admit queued utterances into free
// slots, reap finished/failed/canceled lanes, step the group one frame, and
// sleep when nothing can move. The lock is released every iteration (one
// frame step), so submitters, Push backpressure and cancellation all get in
// within a frame's worth of work — that is the liveness contract.
func (s *LaneScheduler) run() {
	old := debug.SetPanicOnFault(true)
	defer debug.SetPanicOnFault(old)
	for {
		s.mu.Lock()
		if s.closed {
			s.drainLocked()
			s.cond.Broadcast()
			s.mu.Unlock()
			close(s.runnerDone)
			return
		}
		progress := s.admitLocked()
		if s.reapLocked() {
			progress = true
		}
		stepped := s.stepLocked()
		if s.reapLocked() {
			progress = true
		}
		s.cond.Broadcast()
		if stepped == 0 && !progress && !s.closed {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}
}

// admitLocked sweeps the queue: canceled jobs fail immediately (liveness for
// queued cancellations does not wait for a free slot), and the remaining
// jobs are admitted FIFO while slot decoders are free. Admission installs
// the job's search preset on the slot decoder — per-lane degradation — and
// flushes any frames queued before the slot was granted.
func (s *LaneScheduler) admitLocked() bool {
	if len(s.queue) == 0 {
		return false
	}
	progress := false
	keep := s.queue[:0]
	for _, j := range s.queue {
		switch {
		case j.canceled || j.ctx.Err() != nil:
			cause := j.ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			s.finishLocked(j, nil, &DecodeError{Utterance: j.utt, Stage: StageCanceled, Cause: cause})
			progress = true
		case len(s.freeDecs) > 0:
			di := s.freeDecs[len(s.freeDecs)-1]
			s.freeDecs = s.freeDecs[:len(s.freeDecs)-1]
			dec := s.decs[di]
			if j.preset != nil {
				dec.SetSearchPreset(*j.preset)
			} else {
				dec.ClearSearchPreset()
			}
			// Tenant assignment installs under the same exclusivity as the
			// preset — the slot is free, so no lane is mid-decode on it. It
			// must land before Join: Join reseeds the slot's stream from the
			// decoder's (possibly biased) start key. Both branches run every
			// admission so a slot never carries a previous lane's tenant.
			if j.tb != nil {
				if err := dec.SetBias(j.tb.Machine); err != nil {
					dec.ClearBias()
					s.freeDecs = append(s.freeDecs, di)
					s.finishLocked(j, nil, &DecodeError{Utterance: j.utt, Stage: StageSearch, Cause: err})
					progress = true
					continue
				}
				if l2 := s.tenants.Partition(j.tb.Tenant); l2 != nil {
					s.caches[di].SetShared(l2)
				} else {
					s.caches[di].SetShared(s.shared)
				}
			} else {
				dec.ClearBias()
				s.caches[di].SetShared(s.shared)
			}
			lane, err := s.group.Join(dec)
			if err != nil {
				// Unreachable: freeDecs mirrors the group's free slots.
				s.freeDecs = append(s.freeDecs, di)
				keep = append(keep, j)
				continue
			}
			j.lane, j.di = lane, di
			if len(j.queued) > 0 {
				lane.Push(j.queued)
				j.queued = nil
			}
			s.active = append(s.active, j)
			if tel := s.cfg.Telemetry; tel != nil {
				tel.LaneJoins.Inc()
				tel.LaneActive.Inc()
			}
			progress = true
		default:
			keep = append(keep, j)
		}
	}
	s.queue = keep
	return progress
}

// reapLocked retires active jobs that can no longer advance: failed lanes
// (StageSearch), canceled ones (partial result + StageCanceled, decodeOne
// parity), and drained ones whose input is complete (final result).
func (s *LaneScheduler) reapLocked() bool {
	if len(s.active) == 0 {
		return false
	}
	progress := false
	keep := s.active[:0]
	for _, j := range s.active {
		switch {
		case j.lane.Err() != nil:
			cause := j.lane.Err()
			j.lane.Leave()
			s.releaseDecLocked(j)
			s.finishLocked(j, nil, &DecodeError{Utterance: j.utt, Stage: StageSearch, Cause: cause})
			progress = true
		case j.canceled || j.ctx.Err() != nil:
			// Stop where the search stands: drop unstepped frames, finish the
			// utterance over the frames already consumed.
			j.lane.DropPending()
			res := j.lane.Finish()
			cause := j.ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			s.releaseDecLocked(j)
			s.finishLocked(j, res, &DecodeError{Utterance: j.utt, Stage: StageCanceled, Cause: cause})
			progress = true
		case j.inputDone && j.lane.Pending() == 0:
			res := j.lane.Finish()
			s.releaseDecLocked(j)
			s.finishLocked(j, res, nil)
			progress = true
		default:
			keep = append(keep, j)
		}
	}
	s.active = keep
	return progress
}

// stepLocked advances the group one frame with scorer-level panic recovery:
// the group already isolates per-lane frontier panics, so anything escaping
// Step faulted inside the batched scorer itself, where every active lane's
// state is suspect — fail them all, keep the scheduler serving.
func (s *LaneScheduler) stepLocked() (advanced int) {
	if len(s.active) == 0 {
		return 0
	}
	defer func() {
		if r := recover(); r != nil {
			for _, j := range s.active {
				j.lane.Leave()
				s.releaseDecLocked(j)
				s.finishLocked(j, nil, &DecodeError{
					Utterance: j.utt, Stage: StageScore,
					Cause: fmt.Errorf("recovered scorer panic: %v", r),
				})
			}
			s.active = s.active[:0]
			advanced = 0
		}
	}()
	return s.group.Step()
}

// drainLocked fails everything still inside a closing scheduler.
func (s *LaneScheduler) drainLocked() {
	for _, j := range s.queue {
		s.finishLocked(j, nil, &DecodeError{Utterance: j.utt, Stage: StageCanceled, Cause: ErrLaneSchedulerClosed})
	}
	s.queue = nil
	for _, j := range s.active {
		j.lane.Leave()
		s.releaseDecLocked(j)
		s.finishLocked(j, nil, &DecodeError{Utterance: j.utt, Stage: StageCanceled, Cause: ErrLaneSchedulerClosed})
	}
	s.active = nil
}

// releaseDecLocked returns the job's slot decoder to the free pool. The
// group slot itself is freed by the lane's Finish/Leave.
func (s *LaneScheduler) releaseDecLocked(j *laneJob) {
	s.freeDecs = append(s.freeDecs, j.di)
	if tel := s.cfg.Telemetry; tel != nil {
		tel.LaneActive.Dec()
		tel.LaneDrains.Inc()
	}
}

// finishLocked publishes the job's outcome and releases its watches.
func (s *LaneScheduler) finishLocked(j *laneJob, res *decoder.Result, derr *DecodeError) {
	j.res, j.err = res, derr
	j.finished = true
	if j.stop != nil {
		j.stop()
	}
	close(j.done)
}

// Decode runs a batch at full quality with no deadline.
func (s *LaneScheduler) Decode(featUtts [][][]float32) (*Batch, error) {
	return s.DecodeContext(context.Background(), featUtts, nil)
}

// DecodeContext decodes a batch of feature utterances (raw frames, not
// scores — scoring happens inside the lane group, batched across whatever
// mix of utterances occupies the slots at each step, including other
// callers' work). The returned Batch has the same shape and contracts as
// DecodePool's: index-aligned Results/Errors, per-utterance fault isolation,
// prompt cancellation with partial results, and a preset that applies to
// this batch's lanes only. Unlike DecodePool there is no whole-worker
// queueing: utterances from concurrent calls interleave in the same group,
// so a short request never waits behind a long one for anything more than a
// slot.
func (s *LaneScheduler) DecodeContext(ctx context.Context, featUtts [][][]float32, preset *decoder.SearchPreset) (*Batch, error) {
	return s.DecodeBiasContext(ctx, featUtts, preset, nil)
}

// DecodeBiasContext is DecodeContext with a tenant assignment: every lane
// this batch occupies decodes under the tenant's bias machine (nil
// tb.Machine decodes two-layer) and routes its shared-layer cache traffic
// through the tenant's private partition. The assignment installs at
// admission, per lane, so concurrently interleaved utterances from other
// tenants keep their own machines and partitions. A nil tb is
// byte-identical to DecodeContext.
func (s *LaneScheduler) DecodeBiasContext(ctx context.Context, featUtts [][][]float32, preset *decoder.SearchPreset, tb *TenantBias) (*Batch, error) {
	start := time.Now()
	// Exact (mcache-flushing) sampling, as in DecodePool: a warm batch
	// allocates so little that span-granular counters round it to zero.
	a0 := metrics.ReadAllocCountersExact()
	results := make([]*decoder.Result, len(featUtts))
	errs := make([]*DecodeError, len(featUtts))

	jobs := make([]*laneJob, len(featUtts))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		b := &Batch{Results: results, Errors: errs}
		for i := range errs {
			errs[i] = &DecodeError{Utterance: i, Stage: StageCanceled, Cause: ErrLaneSchedulerClosed}
			b.Search.Canceled++
		}
		return b, ErrLaneSchedulerClosed
	}
	for i := range featUtts {
		j := &laneJob{
			ctx: ctx, preset: preset, tb: tb, utt: i,
			queued: featUtts[i], inputDone: true,
			done: make(chan struct{}),
		}
		j.stop = context.AfterFunc(ctx, s.wake)
		jobs[i] = j
		s.queue = append(s.queue, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	for i, j := range jobs {
		<-j.done
		results[i], errs[i] = j.res, j.err
	}

	alloc := metrics.ReadAllocCountersExact().Delta(a0)
	b := &Batch{Results: results, Errors: errs}
	for _, r := range results {
		if r != nil {
			b.Decoder.Add(r.Stats)
		}
	}
	b.Decoder.AllocBytes = int64(alloc.Bytes)
	b.Decoder.AllocObjects = int64(alloc.Objects)
	b.Decoder.GCCycles = int64(alloc.GCs)
	b.Search = metrics.Search{Rescues: b.Decoder.Rescues, Failures: b.Decoder.SearchFailures}
	for _, e := range errs {
		if e == nil {
			continue
		}
		if e.Stage == StageCanceled {
			b.Search.Canceled++
		} else {
			b.Search.Panics++
		}
	}
	b.Cache = s.CacheStats()
	if tel := s.cfg.Telemetry; tel != nil {
		var l1 CacheStats
		for _, c := range s.caches {
			l1.Add(c.Stats())
		}
		s.telMu.Lock()
		delta := CacheStats{L1Hits: l1.L1Hits - s.lastL1.L1Hits, L1Misses: l1.L1Misses - s.lastL1.L1Misses}
		s.lastL1 = l1
		s.telMu.Unlock()
		tel.recordBatch(len(featUtts), time.Since(start),
			searchDelta{panics: b.Search.Panics, canceled: b.Search.Canceled}, delta)
	}
	b.Throughput = metrics.Throughput{
		Utterances:   len(featUtts),
		Frames:       b.Decoder.Frames,
		Wall:         time.Since(start),
		CacheHits:    b.Cache.L1Hits + b.Cache.L2Hits,
		CacheLookups: b.Cache.Lookups(),
		AllocBytes:   int64(alloc.Bytes),
		AllocObjects: int64(alloc.Objects),
		GCCycles:     int64(alloc.GCs),
	}
	return b, ctx.Err()
}

// LaneHandle is a streamed utterance's grip on its lane: push feature
// chunks as they arrive, read partials between chunks, Finish for the final
// result. Methods must not be called concurrently with each other.
type LaneHandle struct {
	s *LaneScheduler
	j *laneJob
}

// OpenLane blocks until the utterance is admitted into a slot (honouring
// ctx) and returns its handle. The preset, when non-nil, degrades this lane
// only. The caller must end the lane with Finish or Close, or its slot leaks
// until ctx is canceled.
func (s *LaneScheduler) OpenLane(ctx context.Context, preset *decoder.SearchPreset) (*LaneHandle, error) {
	return s.OpenLaneBias(ctx, preset, nil)
}

// OpenLaneBias is OpenLane with a tenant assignment (see DecodeBiasContext);
// the stream decodes under tb's bias machine and cache partition for its
// whole lifetime. A nil tb is byte-identical to OpenLane.
func (s *LaneScheduler) OpenLaneBias(ctx context.Context, preset *decoder.SearchPreset, tb *TenantBias) (*LaneHandle, error) {
	j := &laneJob{ctx: ctx, preset: preset, tb: tb, utt: -1, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrLaneSchedulerClosed
	}
	j.stop = context.AfterFunc(ctx, s.wake)
	s.queue = append(s.queue, j)
	s.cond.Broadcast()
	for j.lane == nil && !j.finished {
		s.cond.Wait()
	}
	s.mu.Unlock()
	if j.finished {
		if j.err != nil {
			return nil, j.err
		}
		return nil, ErrLaneSchedulerClosed
	}
	return &LaneHandle{s: s, j: j}, nil
}

// Push queues feature frames and blocks until the group has consumed them —
// backpressure at the lockstep rate. A lane that has already ended (failed,
// canceled, scheduler closed) reports its error; a healthy push returns nil
// even if the lane's search has died (the result then reports the failed
// search, exactly like a solo stream).
func (h *LaneHandle) Push(frames [][]float32) error {
	s, j := h.s, h.j
	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.finished {
		j.lane.Push(frames)
		s.cond.Broadcast()
		for !j.finished && j.lane.Pending() > 0 {
			s.cond.Wait()
		}
	}
	if j.finished && j.err != nil {
		return j.err
	}
	return nil
}

// Partial returns the current best hypothesis.
func (h *LaneHandle) Partial() []int32 {
	s, j := h.s, h.j
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.finished {
		if j.res != nil {
			return j.res.Words
		}
		return nil
	}
	return j.lane.Partial()
}

// Finish marks the input complete and blocks for the final result —
// byte-identical to a solo decode of everything pushed. The error carries
// the lane's fault (panic, cancellation, close) when there is one; the
// result may still hold the partial decode in the cancellation case.
func (h *LaneHandle) Finish() (*decoder.Result, error) {
	s, j := h.s, h.j
	s.mu.Lock()
	j.inputDone = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-j.done
	if j.err != nil {
		return j.res, j.err
	}
	return j.res, nil
}

// Close abandons the lane without waiting for a result — the caller-side
// cancellation path (connection dropped). Blocks until the slot is released;
// safe to call after Finish.
func (h *LaneHandle) Close() {
	s, j := h.s, h.j
	s.mu.Lock()
	if !j.finished {
		j.canceled = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-j.done
}
