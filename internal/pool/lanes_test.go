package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/decoder"
	"repro/internal/semiring"
	"repro/internal/telemetry"
)

// laneFrames returns the fixture's feature utterances — the lane scheduler
// takes raw frames (scoring is batched inside), unlike the worker pool's
// pre-scored matrices.
func laneFrames(f *poolFixture) [][][]float32 {
	out := make([][][]float32, len(f.tk.Test))
	for i, u := range f.tk.Test {
		out[i] = u.Frames
	}
	return out
}

// checkLaneBatch asserts a healthy lane batch against the sequential ground
// truth: index-aligned, error-free, and byte-identical transcripts/costs.
func checkLaneBatch(t *testing.T, b *Batch, want []*decoder.Result) {
	t.Helper()
	if n := b.Failed(); n != 0 {
		t.Fatalf("lane batch failed %d utterances: %v", n, b.Errors)
	}
	if len(b.Results) != len(want) {
		t.Fatalf("batch not index-aligned: %d results, want %d", len(b.Results), len(want))
	}
	for i, r := range b.Results {
		if r.Cost != want[i].Cost {
			t.Errorf("utt %d cost: lanes %v, sequential %v", i, r.Cost, want[i].Cost)
		}
		if fmt.Sprint(r.Words) != fmt.Sprint(want[i].Words) {
			t.Errorf("utt %d words: lanes %v, sequential %v", i, r.Words, want[i].Words)
		}
		if fmt.Sprint(r.WordEnds) != fmt.Sprint(want[i].WordEnds) {
			t.Errorf("utt %d word ends: lanes %v, sequential %v", i, r.WordEnds, want[i].WordEnds)
		}
		if r.ReachedFinal != want[i].ReachedFinal {
			t.Errorf("utt %d finality: lanes %v, sequential %v", i, r.ReachedFinal, want[i].ReachedFinal)
		}
	}
}

// TestLaneSchedulerMatchesSequential is the scheduler's core property: a
// batch through the continuous batcher — utterances sharing scorer calls,
// slots recycling mid-batch — produces byte-identical transcripts to a plain
// sequential decoder, and collapses scorer calls below one per lane-frame.
func TestLaneSchedulerMatchesSequential(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   3,
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	b, err := s.Decode(laneFrames(f))
	if err != nil {
		t.Fatal(err)
	}
	checkLaneBatch(t, b, want)
	if !s.Quiesced() {
		t.Error("scheduler not quiesced after batch")
	}
	st := s.Stats()
	if st.Joins != int64(len(f.tk.Test)) || st.Drains != st.Joins {
		t.Errorf("join/drain accounting: %+v", st)
	}
	if ratio := st.ScorerCallsPerFrame(); ratio >= 1 {
		t.Errorf("scorer calls/frame = %.3f, want < 1 with 3 lanes", ratio)
	}
	if b.Throughput.Frames == 0 || b.Cache.Lookups() == 0 {
		t.Errorf("throughput/cache accounting empty: %+v %+v", b.Throughput, b.Cache)
	}
}

// TestLaneSchedulerStreamJoinsMidBatch runs a streamed lane against a batch
// big enough to keep every slot busy: the stream is admitted mid-flight when
// a batch utterance drains (continuous batching, not batch barriers), its
// chunked pushes interleave with the batch's frames, and both the stream and
// every batch utterance stay byte-identical to sequential decodes.
func TestLaneSchedulerStreamJoinsMidBatch(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   2,
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var batch *Batch
	var batchErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch, batchErr = s.Decode(laneFrames(f))
	}()

	// The stream queues behind the batch's utterances and joins when a slot
	// frees mid-batch.
	h, err := s.OpenLane(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := f.tk.Test[0].Frames
	for off := 0; off < len(frames); off += 7 {
		end := off + 7
		if end > len(frames) {
			end = len(frames)
		}
		if err := h.Push(frames[off:end]); err != nil {
			t.Fatal(err)
		}
		_ = h.Partial() // exercised for races; value asserted via Finish
	}
	res, err := h.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Words) != fmt.Sprint(want[0].Words) || res.Cost != want[0].Cost {
		t.Errorf("stream diverged: (%v, %v), want (%v, %v)", res.Words, res.Cost, want[0].Words, want[0].Cost)
	}

	wg.Wait()
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	checkLaneBatch(t, batch, want)
	if !s.Quiesced() {
		t.Error("scheduler not quiesced")
	}
}

// TestLaneSchedulerPerLanePresets interleaves a full-quality batch with a
// degraded one in the same lane group and requires each to match its own
// solo operating point — the preset binds to the lane, not the group.
func TestLaneSchedulerPerLanePresets(t *testing.T) {
	f := getFixture(t)
	cfg := decoder.Config{PreemptivePruning: true}
	preset := decoder.SearchPreset{Beam: semiring.Weight(6), MaxActive: 96}

	full := sequentialResults(t, f)
	seq, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq.SetSearchPreset(preset)
	degraded := make([]*decoder.Result, len(f.scores))
	for i, sc := range f.scores {
		degraded[i] = seq.Decode(sc)
	}

	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{Lanes: 4, Decoder: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var bFull, bDeg *Batch
	wg.Add(2)
	go func() { defer wg.Done(); bFull, _ = s.DecodeContext(context.Background(), laneFrames(f), nil) }()
	go func() {
		defer wg.Done()
		p := preset
		bDeg, _ = s.DecodeContext(context.Background(), laneFrames(f), &p)
	}()
	wg.Wait()
	checkLaneBatch(t, bFull, full)
	checkLaneBatch(t, bDeg, degraded)
}

// TestLaneSchedulerIsolatesLanePanic injects a slot-local cache panic (the
// WrapCache seam): exactly one utterance fails with StageSearch, every other
// utterance matches sequential, and the scheduler keeps serving afterwards —
// DecodePool's fault contract, carried over to lanes.
func TestLaneSchedulerIsolatesLanePanic(t *testing.T) {
	f := getFixture(t)
	want := sequentialResults(t, f)
	armed := false
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   2,
		Decoder: decoder.Config{PreemptivePruning: true},
		WrapCache: func(c decoder.OffsetCache) decoder.OffsetCache {
			// Arm exactly one slot; the utterance that lands on it dies.
			if armed {
				return c
			}
			armed = true
			return &panicOnceCache{inner: c, at: 40}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	b, err := s.Decode(laneFrames(f))
	if err != nil {
		t.Fatal(err)
	}
	if b.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1; errors: %v", b.Failed(), b.Errors)
	}
	if b.Search.Panics != 1 {
		t.Errorf("Search.Panics = %d, want 1", b.Search.Panics)
	}
	for i, e := range b.Errors {
		if e != nil {
			if e.Stage != StageSearch {
				t.Errorf("utt %d stage %q, want %q", i, e.Stage, StageSearch)
			}
			continue
		}
		if fmt.Sprint(b.Results[i].Words) != fmt.Sprint(want[i].Words) {
			t.Errorf("utt %d diverged from sequential after a panic elsewhere", i)
		}
	}
	// The slot that hosted the panic serves the next batch normally.
	again, err := s.Decode(laneFrames(f))
	if err != nil || again.Failed() != 0 {
		t.Fatalf("scheduler poisoned after panic: err=%v failed=%d", err, again.Failed())
	}
	checkLaneBatch(t, again, want)
}

// panicOnceCache panics on its at'th lookup, once, then behaves. Only the
// scheduler's runner goroutine touches slot caches, so plain fields suffice.
type panicOnceCache struct {
	inner decoder.OffsetCache
	at    int
	ops   int
	fired bool
}

func (p *panicOnceCache) Get(key uint64) (int32, bool) {
	p.ops++
	if p.ops >= p.at && !p.fired {
		p.fired = true
		panic("injected lane cache panic")
	}
	return p.inner.Get(key)
}
func (p *panicOnceCache) Put(key uint64, idx int32) { p.inner.Put(key, idx) }
func (p *panicOnceCache) Reset()                    { p.inner.Reset() }

// TestLaneSchedulerClose: closing fails in-flight work with
// ErrLaneSchedulerClosed, releases every slot, and rejects new submissions.
func TestLaneSchedulerClose(t *testing.T) {
	f := getFixture(t)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.OpenLane(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Push(f.tk.Test[0].Frames[:3]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := h.Finish(); !errors.Is(err, ErrLaneSchedulerClosed) {
		t.Errorf("Finish after Close: %v, want ErrLaneSchedulerClosed", err)
	}
	if _, err := s.OpenLane(context.Background(), nil); !errors.Is(err, ErrLaneSchedulerClosed) {
		t.Errorf("OpenLane after Close: %v, want ErrLaneSchedulerClosed", err)
	}
	if b, err := s.Decode(laneFrames(f)); !errors.Is(err, ErrLaneSchedulerClosed) || b.Failed() != len(f.tk.Test) {
		t.Errorf("Decode after Close: err=%v failed=%d", err, b.Failed())
	}
	s.Close() // idempotent
}

// TestLaneSchedulerTelemetry checks the unfold_lane_* instruments: joins and
// drains count every admitted utterance, and the active gauge returns to
// zero once the work drains.
func TestLaneSchedulerTelemetry(t *testing.T) {
	f := getFixture(t)
	reg := telemetry.NewRegistry()
	tel := NewTelemetry(reg, nil)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:     2,
		Decoder:   decoder.Config{PreemptivePruning: true},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Decode(laneFrames(f)); err != nil {
		t.Fatal(err)
	}
	n := int64(len(f.tk.Test))
	if got := tel.LaneJoins.Value(); got != n {
		t.Errorf("unfold_lane_joins_total = %d, want %d", got, n)
	}
	if got := tel.LaneDrains.Value(); got != n {
		t.Errorf("unfold_lane_drains_total = %d, want %d", got, n)
	}
	if got := tel.LaneActive.Value(); got != 0 {
		t.Errorf("unfold_lane_active = %v, want 0 after drain", got)
	}
	if got := tel.Batches.Value(); got != 1 {
		t.Errorf("unfold_pool_batches_total = %d, want 1", got)
	}
}

// TestLaneSchedulerCancelBeforeStart: an already-canceled context fails the
// whole batch promptly with StageCanceled errors — no utterance ever holds a
// slot.
func TestLaneSchedulerCancelBeforeStart(t *testing.T) {
	f := getFixture(t)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	b, err := s.DecodeContext(ctx, laneFrames(f), nil)
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-canceled batch took %v", d)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, e := range b.Errors {
		if e == nil || e.Stage != StageCanceled || !errors.Is(e, context.Canceled) {
			t.Errorf("utt %d error = %v, want StageCanceled wrapping context.Canceled", i, e)
		}
	}
	if !s.Quiesced() {
		t.Error("scheduler not quiesced after canceled batch")
	}
}

// TestLaneSchedulerEmptyBatch: a zero-utterance batch returns an empty,
// healthy Batch.
func TestLaneSchedulerEmptyBatch(t *testing.T) {
	f := getFixture(t)
	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b, err := s.Decode(nil)
	if err != nil || len(b.Results) != 0 || b.Failed() != 0 {
		t.Fatalf("empty batch: err=%v %+v", err, b)
	}
}
