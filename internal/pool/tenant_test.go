package pool

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bias"
	"repro/internal/decoder"
)

// wordLookup maps the fixture's numeric word IDs (rendered as decimal
// strings) back to IDs — the pool-test stand-in for a lexicon's word table.
func wordLookup(word string) (int32, bool) {
	v, err := strconv.Atoi(word)
	if err != nil || v < 0 {
		return 0, false
	}
	return int32(v), true
}

// tenantMachine compiles a bias machine from utterance utt's reference
// words, one single-word phrase per word.
func tenantMachine(t testing.TB, f *poolFixture, utt int, bonus float32) *bias.Machine {
	t.Helper()
	var phrases []string
	for _, w := range f.tk.Test[utt%len(f.tk.Test)].Words {
		phrases = append(phrases, strconv.Itoa(int(w)))
	}
	m, err := bias.Compile(phrases, bonus, wordLookup)
	if err != nil {
		t.Fatal(err)
	}
	if m.Phrases() == 0 {
		t.Fatal("bias machine compiled with no phrases")
	}
	return m
}

// ---------------------------------------------------------------------------
// Tenant-fairness: the partition floor.

// TestTenantPartitionFairness is the eviction-fairness contract: a Zipf-hot
// tenant churning a key space far beyond its partition cannot push a cold
// tenant's hit rate below the partition floor. The cold tenant's working
// set fits its partition, so its floor is a 100% hit rate — which the
// partitioned run must hold even while the hot tenant misses and evicts
// millions of times. The same traffic through one shared (unpartitioned)
// LRU of equal total capacity collapses the cold tenant's hit rate, which
// is exactly the failure mode the partitions exist to rule out.
func TestTenantPartitionFairness(t *testing.T) {
	const (
		partEntries = 512
		coldSet     = 256  // cold tenant's whole working set; fits its partition
		rounds      = 50   // alternating hot-churn / cold-probe rounds
		hotPerRound = 2000 // distinct-heavy Zipf draws per round
	)
	tc := NewTenantCaches(TenantPartitionConfig{Entries: partEntries, Shards: 4, MaxTenants: 8})
	hot := tc.Partition("hot")
	cold := tc.Partition("cold")
	// Shared contrast cache: same total capacity as both partitions combined.
	shared := NewShardedLRU(2*partEntries, 4)

	// Prime the cold tenant's working set everywhere.
	for k := uint64(0); k < coldSet; k++ {
		cold.Put(k, int32(k))
		shared.Put(k, int32(k))
	}

	// Exponent near 1 keeps the Zipf head hot while drawing a long distinct
	// tail each round — the tail is what overflows the hot partition and,
	// in the unpartitioned contrast, evicts the cold tenant's entries.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.01, 1, 1<<20)
	var coldHits, coldProbes, sharedColdHits int
	for r := 0; r < rounds; r++ {
		for i := 0; i < hotPerRound; i++ {
			// Keys offset out of the cold range; a decoder Put follows every
			// miss, exactly as the offset cache is used in stepFrame.
			k := coldSet + zipf.Uint64()
			if _, ok := hot.Get(k); !ok {
				hot.Put(k, int32(k))
			}
			if _, ok := shared.Get(k); !ok {
				shared.Put(k, int32(k))
			}
		}
		for k := uint64(0); k < coldSet; k++ {
			coldProbes++
			if _, ok := cold.Get(k); ok {
				coldHits++
			} else {
				cold.Put(k, int32(k))
			}
			if _, ok := shared.Get(k); ok {
				sharedColdHits++
			} else {
				shared.Put(k, int32(k))
			}
		}
	}

	coldRate := float64(coldHits) / float64(coldProbes)
	sharedRate := float64(sharedColdHits) / float64(coldProbes)
	if coldRate < 1 {
		t.Errorf("partitioned cold tenant hit rate %.4f, want 1.0 (floor: working set fits the partition)", coldRate)
	}
	// The contrast must show real pressure: without partitions the hot
	// tenant's churn evicts the cold tenant's entries between its probes.
	if sharedRate > 0.5 {
		t.Errorf("shared-LRU contrast too healthy (cold hit rate %.4f) — hot churn is not exerting pressure, the fairness assertion above is vacuous", sharedRate)
	}

	// Per-tenant counters: the partition layer must expose exactly the
	// traffic each tenant generated.
	st := tc.TenantStats()
	cs, ok := st["cold"]
	if !ok {
		t.Fatal("no counters for tenant \"cold\"")
	}
	hs, ok := st["hot"]
	if !ok {
		t.Fatal("no counters for tenant \"hot\"")
	}
	if got, want := cs.L2Hits, int64(coldHits); got != want {
		t.Errorf("cold tenant L2Hits = %d, want %d", got, want)
	}
	if got, want := cs.L2Hits+cs.L2Misses, int64(coldProbes); got != want {
		t.Errorf("cold tenant lookups = %d, want %d", got, want)
	}
	if cs.Evictions != 0 {
		t.Errorf("cold tenant partition evicted %d entries; a fitting working set must never evict", cs.Evictions)
	}
	if hs.Evictions == 0 || hs.L2Misses == 0 {
		t.Errorf("hot tenant saw no pressure (evictions=%d misses=%d); Zipf churn should overflow its partition", hs.Evictions, hs.L2Misses)
	}
	// Aggregate view used by pool CacheStats.
	agg := tc.Stats()
	if got, want := agg.L2Hits, cs.L2Hits+hs.L2Hits; got != want {
		t.Errorf("aggregate L2Hits = %d, want %d", got, want)
	}
}

// TestTenantCachesDropAndRecreate pins the tenant-level LRU: beyond
// MaxTenants resident partitions the least recently used tenant is dropped,
// recently touched tenants survive, and a dropped tenant comes back cold.
func TestTenantCachesDropAndRecreate(t *testing.T) {
	tc := NewTenantCaches(TenantPartitionConfig{Entries: 64, Shards: 1, MaxTenants: 3})
	a := tc.Partition("a")
	a.Put(1, 1)
	tc.Partition("b")
	tc.Partition("c")
	tc.Partition("a") // touch a: now LRU order (a, c, b)
	tc.Partition("d") // drops b
	if got := tc.Tenants(); got != 3 {
		t.Fatalf("resident tenants = %d, want 3", got)
	}
	if got := tc.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	st := tc.TenantStats()
	if _, ok := st["b"]; ok {
		t.Error("tenant b should have been dropped (LRU)")
	}
	if _, ok := st["a"]; !ok {
		t.Error("tenant a was touched and must survive")
	}
	if v, ok := tc.Partition("a").Get(1); !ok || v != 1 {
		t.Error("surviving tenant a lost its entries")
	}
	tc.Partition("b") // recreate: drops c (a and d are newer)
	if got := tc.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if _, ok := tc.Partition("b").Get(1); ok {
		t.Error("recreated tenant b must come back cold")
	}
}

// ---------------------------------------------------------------------------
// Pool and lane integration: the tenant assignment changes search results
// exactly when a machine is installed, and never via the cache partition.

// TestPoolDecodeBiasNilAndTenantOnlyIdentical: a nil TenantBias and a
// tenant-only assignment (partitioned cache, no machine) both produce
// results byte-identical to the plain preset path — cache routing must
// never leak into search output — while the tenant-only run leaves its
// traffic in the tenant's partition counters.
func TestPoolDecodeBiasNilAndTenantOnlyIdentical(t *testing.T) {
	f := getFixture(t)
	mk := func() *DecodePool {
		p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 3, Decoder: decoder.Config{PreemptivePruning: true}})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base, err := mk().DecodePresetContext(context.Background(), f.scores, nil)
	if err != nil || base.Failed() != 0 {
		t.Fatalf("baseline: err=%v failed=%d", err, base.Failed())
	}
	ctx := context.Background()

	pNil := mk()
	bNil, err := pNil.DecodeBiasContext(ctx, f.scores, nil, nil)
	if err != nil || bNil.Failed() != 0 {
		t.Fatalf("nil tb: err=%v failed=%d", err, bNil.Failed())
	}
	pTen := mk()
	bTen, err := pTen.DecodeBiasContext(ctx, f.scores, nil, &TenantBias{Tenant: "acme"})
	if err != nil || bTen.Failed() != 0 {
		t.Fatalf("tenant-only: err=%v failed=%d", err, bTen.Failed())
	}
	for i := range base.Results {
		for tag, got := range map[string]*decoder.Result{"nil-tb": bNil.Results[i], "tenant-only": bTen.Results[i]} {
			w := base.Results[i]
			if fmt.Sprint(got.Words) != fmt.Sprint(w.Words) || got.Cost != w.Cost || got.ReachedFinal != w.ReachedFinal {
				t.Errorf("%s utt %d diverged from preset path: (%v, %v, %v) != (%v, %v, %v)",
					tag, i, got.Words, got.Cost, got.ReachedFinal, w.Words, w.Cost, w.ReachedFinal)
			}
		}
	}
	if pNil.TenantCaches().Tenants() != 0 {
		t.Error("nil-tb decode created a tenant partition")
	}
	st := pTen.TenantCaches().TenantStats()
	if s, ok := st["acme"]; !ok || s.L2Hits+s.L2Misses == 0 {
		t.Errorf("tenant-only decode left no traffic in the acme partition: %+v", st)
	}
	// All the tenant run's L2 traffic went to the partition, none to the
	// shared LRU (its lookups must be zero).
	if ss := pTen.shared.Stats(); ss.Lookups() != 0 {
		t.Errorf("tenant decode leaked %d lookups to the shared L2", ss.Lookups())
	}
}

// TestPoolDecodeBiasMatchesSolo: a biased pool batch is byte-identical to a
// solo biased decode, for any worker count, and a follow-up unbiased batch
// on the same pool is byte-identical to the unbiased baseline (workers
// shed the previous batch's tenant state at checkout).
func TestPoolDecodeBiasMatchesSolo(t *testing.T) {
	f := getFixture(t)
	m := tenantMachine(t, f, 0, 1.5)

	solo, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.SetBias(m); err != nil {
		t.Fatal(err)
	}
	want := make([]*decoder.Result, len(f.scores))
	for i, sc := range f.scores {
		want[i] = solo.Decode(sc)
	}
	solo.ClearBias()
	plain := make([]*decoder.Result, len(f.scores))
	for i, sc := range f.scores {
		plain[i] = solo.Decode(sc)
	}

	p, err := New(f.tk.AM.G, f.tk.LMGraph.G, Config{Workers: 3, Decoder: decoder.Config{PreemptivePruning: true}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.DecodeBiasContext(context.Background(), f.scores, nil, &TenantBias{Tenant: "acme", Machine: m})
	if err != nil || b.Failed() != 0 {
		t.Fatalf("biased batch: err=%v failed=%d", err, b.Failed())
	}
	for i, r := range b.Results {
		w := want[i]
		if fmt.Sprint(r.Words) != fmt.Sprint(w.Words) || r.Cost != w.Cost || r.ReachedFinal != w.ReachedFinal {
			t.Errorf("biased utt %d diverged from solo biased decode", i)
		}
	}
	// Same pool, next batch unbiased: must match the unbiased baseline.
	b2, err := p.DecodeContext(context.Background(), f.scores)
	if err != nil || b2.Failed() != 0 {
		t.Fatalf("follow-up batch: err=%v failed=%d", err, b2.Failed())
	}
	for i, r := range b2.Results {
		w := plain[i]
		if fmt.Sprint(r.Words) != fmt.Sprint(w.Words) || r.Cost != w.Cost {
			t.Errorf("follow-up utt %d still biased: worker kept stale tenant state", i)
		}
	}
}

// TestLaneBiasInterleavedTenants runs two tenants with different bias
// machines plus tenantless traffic concurrently through one lane scheduler:
// every utterance must match its own tenant's solo biased oracle — the
// per-lane assignment cannot bleed across interleaved lanes.
func TestLaneBiasInterleavedTenants(t *testing.T) {
	f := getFixture(t)
	machines := map[string]*bias.Machine{
		"t0": tenantMachine(t, f, 0, 1.0),
		"t1": tenantMachine(t, f, 1, 3.0),
	}
	oracle := map[string][]*decoder.Result{}
	solo, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"", "t0", "t1"} {
		if err := solo.SetBias(machines[tenant]); err != nil { // nil machine for ""
			t.Fatal(err)
		}
		res := make([]*decoder.Result, len(f.tk.Test))
		for i, u := range f.tk.Test {
			res[i] = solo.Decode(f.tk.Scorer.ScoreUtterance(u.Frames))
		}
		oracle[tenant] = res
	}

	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   3,
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type job struct {
		tenant string
		utt    int
	}
	var jobs []job
	for utt := range f.tk.Test {
		for _, tenant := range []string{"", "t0", "t1"} {
			jobs = append(jobs, job{tenant, utt})
		}
	}
	done := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j job) {
			var tb *TenantBias
			if j.tenant != "" {
				tb = &TenantBias{Tenant: j.tenant, Machine: machines[j.tenant]}
			}
			b, err := s.DecodeBiasContext(context.Background(), [][][]float32{f.tk.Test[j.utt].Frames}, nil, tb)
			if err != nil || b.Failed() != 0 {
				done <- fmt.Errorf("tenant %q utt %d: err=%v errors=%v", j.tenant, j.utt, err, b.Errors)
				return
			}
			r, w := b.Results[0], oracle[j.tenant][j.utt]
			if fmt.Sprint(r.Words) != fmt.Sprint(w.Words) || r.Cost != w.Cost || r.ReachedFinal != w.ReachedFinal {
				done <- fmt.Errorf("tenant %q utt %d diverged from its solo biased oracle", j.tenant, j.utt)
				return
			}
			done <- nil
		}(j)
	}
	for range jobs {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	if !s.Quiesced() {
		t.Error("scheduler did not quiesce after interleaved tenant traffic")
	}
	st := s.TenantCaches().TenantStats()
	for _, tenant := range []string{"t0", "t1"} {
		if s, ok := st[tenant]; !ok || s.L2Hits+s.L2Misses == 0 {
			t.Errorf("tenant %q left no partition traffic: %+v", tenant, st)
		}
	}
}

// TestOpenLaneBiasStream: a streamed biased lane finishes byte-identical to
// the solo biased decode of the same frames.
func TestOpenLaneBiasStream(t *testing.T) {
	f := getFixture(t)
	m := tenantMachine(t, f, 2, 2.0)
	solo, err := decoder.NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.SetBias(m); err != nil {
		t.Fatal(err)
	}
	want := solo.Decode(f.scores[2])

	s, err := NewLaneScheduler(f.tk.AM.G, f.tk.LMGraph.G, f.tk.Scorer, LaneConfig{
		Lanes:   2,
		Decoder: decoder.Config{PreemptivePruning: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.OpenLaneBias(context.Background(), nil, &TenantBias{Tenant: "acme", Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	frames := f.tk.Test[2].Frames
	for off := 0; off < len(frames); off += 3 {
		end := off + 3
		if end > len(frames) {
			end = len(frames)
		}
		if err := h.Push(frames[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Words) != fmt.Sprint(want.Words) || res.Cost != want.Cost || res.ReachedFinal != want.ReachedFinal {
		t.Errorf("streamed biased lane diverged: (%v, %v) want (%v, %v)", res.Words, res.Cost, want.Words, want.Cost)
	}
}
