package pool

import (
	"strconv"
	"time"

	"repro/internal/decoder"
	"repro/internal/telemetry"
)

// Telemetry is the pool's instrument set: worker utilization, batch
// throughput, per-utterance fault classes, and the two-layer offset cache.
// The embedded decoder set is shared by every worker, so search-work
// counters aggregate across the whole pool. A nil *Telemetry disables all
// of it — the pool then does no telemetry work at all.
//
// Cache visibility is split by layer to match the cache's locking story:
// the shared L2's per-shard hit/miss/eviction counters already live behind
// shard mutexes, so they are exported as scrape-time callbacks and are
// live even mid-batch; the per-worker L1 counters are lock-free worker
// fields, so their advance is published once per batch, after the workers
// have quiesced.
type Telemetry struct {
	// Decoder is the shared per-worker decoder instrument set.
	Decoder *decoder.Telemetry

	// Batches counts completed Decode calls; Utterances counts utterances
	// dealt to workers (including failed and canceled ones).
	Batches    *telemetry.Counter
	Utterances *telemetry.Counter
	// Panics and Canceled count the batch fault classes (see
	// metrics.Search); rescues and search failures are decoder counters.
	Panics   *telemetry.Counter
	Canceled *telemetry.Counter
	// BatchSeconds is the wall-time distribution of whole batches.
	BatchSeconds *telemetry.Histogram
	// WorkersBusy tracks how many workers are mid-utterance right now;
	// WorkersTotal is the pool size. Utilization = busy/total.
	WorkersBusy  *telemetry.Gauge
	WorkersTotal *telemetry.Gauge
	// L1Hits and L1Misses accumulate the per-worker direct-mapped cache
	// counters, published at batch boundaries.
	L1Hits   *telemetry.Counter
	L1Misses *telemetry.Counter

	// Lane-scheduler instruments (see lanes.go): utterances occupying lane
	// slots right now, and the lifetime join/drain churn of the continuous
	// batcher.
	LaneActive *telemetry.Gauge
	LaneJoins  *telemetry.Counter
	LaneDrains *telemetry.Counter

	reg *telemetry.Registry
}

// NewTelemetry registers the pool instrument family (and a shared decoder
// instrument set) in reg. The same Telemetry may size any number of pools;
// their counters aggregate. A nil registry yields an inert set.
func NewTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *Telemetry {
	return &Telemetry{
		Decoder:      decoder.NewTelemetry(reg, tracer),
		Batches:      reg.Counter("unfold_pool_batches_total", "Completed batch decode calls."),
		Utterances:   reg.Counter("unfold_pool_utterances_total", "Utterances dealt to pool workers."),
		Panics:       reg.Counter("unfold_pool_panics_total", "Worker panics converted to typed errors."),
		Canceled:     reg.Counter("unfold_pool_canceled_total", "Utterances cut short or skipped by cancellation."),
		BatchSeconds: reg.Histogram("unfold_pool_batch_seconds", "Wall time per batch decode.", telemetry.ExpBuckets(0.001, 4, 10)),
		WorkersBusy:  reg.Gauge("unfold_pool_workers_busy", "Workers decoding an utterance right now."),
		WorkersTotal: reg.Gauge("unfold_pool_workers", "Pool worker count."),
		L1Hits:       reg.Counter("unfold_cache_l1_hits_total", "Per-worker direct-mapped cache hits."),
		L1Misses:     reg.Counter("unfold_cache_l1_misses_total", "Per-worker cache misses that fell through to L2."),
		LaneActive:   reg.Gauge("unfold_lane_active", "Utterances occupying lane slots right now."),
		LaneJoins:    reg.Counter("unfold_lane_joins_total", "Utterances admitted into a lane slot."),
		LaneDrains:   reg.Counter("unfold_lane_drains_total", "Utterances that left a lane slot (finished, failed, or canceled)."),
		reg:          reg,
	}
}

// decoderTelemetry returns the decoder set to thread into worker configs
// (nil when the pool telemetry itself is nil).
func (t *Telemetry) decoderTelemetry() *decoder.Telemetry {
	if t == nil {
		return nil
	}
	return t.Decoder
}

// observePool wires pool-shaped callbacks: the worker-count gauge and the
// shared LRU's per-shard counters, each exported as a scrape-time callback
// under a shard label (the counters live behind the shard mutex, so the
// scrape is race-free and live even while a batch is in flight).
func (t *Telemetry) observePool(p *DecodePool) {
	if t == nil {
		return
	}
	t.WorkersTotal.Set(float64(len(p.workers)))
	c := p.shared
	t.reg.GaugeFunc("unfold_cache_l2_entries", "Resident entries in the shared LRU.",
		func() float64 { return float64(c.Len()) })
	t.reg.GaugeFunc("unfold_cache_l2_capacity", "Capacity of the shared LRU.",
		func() float64 { return float64(c.Capacity()) })
	for i := 0; i < c.NumShards(); i++ {
		shard := i
		label := telemetry.L("shard", strconv.Itoa(shard))
		t.reg.CounterFunc("unfold_cache_l2_shard_hits_total", "Shared-LRU hits by shard.",
			func() float64 { h, _, _ := c.ShardStats(shard); return float64(h) }, label)
		t.reg.CounterFunc("unfold_cache_l2_shard_misses_total", "Shared-LRU misses by shard.",
			func() float64 { _, m, _ := c.ShardStats(shard); return float64(m) }, label)
		t.reg.CounterFunc("unfold_cache_l2_shard_evictions_total", "Shared-LRU evictions by shard.",
			func() float64 { _, _, e := c.ShardStats(shard); return float64(e) }, label)
	}
}

// observeTenants wires tenant-partition visibility under a sched label
// ("pool" or "lanes", since a server may run both over one registry):
// resident partition count, tenant-level LRU drops, and — registered
// lazily as each tenant's partition is created, so cardinality is bounded
// by MaxTenants — the per-tenant L2 hit/miss/eviction counters behind the
// partition-fairness story. A dropped tenant's series freezes at its last
// values; re-creation re-binds the callbacks to the fresh partition.
func (t *Telemetry) observeTenants(tc *TenantCaches, sched string) {
	if t == nil {
		return
	}
	sl := telemetry.L("sched", sched)
	t.reg.GaugeFunc("unfold_bias_tenant_partitions", "Resident per-tenant L2 cache partitions.",
		func() float64 { return float64(tc.Tenants()) }, sl)
	t.reg.CounterFunc("unfold_bias_tenant_partitions_dropped_total", "Tenant partitions evicted by the tenant-level LRU.",
		func() float64 { return float64(tc.Dropped()) }, sl)
	tc.Observe(func(tenant string, lru *ShardedLRU) {
		tl := telemetry.L("tenant", tenant)
		t.reg.CounterFunc("unfold_bias_l2_tenant_hits_total", "Tenant-partition offset-cache hits.",
			func() float64 { return float64(lru.Stats().L2Hits) }, sl, tl)
		t.reg.CounterFunc("unfold_bias_l2_tenant_misses_total", "Tenant-partition offset-cache misses.",
			func() float64 { return float64(lru.Stats().L2Misses) }, sl, tl)
		t.reg.CounterFunc("unfold_bias_l2_tenant_evictions_total", "Tenant-partition offset-cache evictions.",
			func() float64 { return float64(lru.Stats().Evictions) }, sl, tl)
	})
}

// recordBatch publishes one completed batch: counts, wall time, fault
// classes, and the L1 cache advance since the previous batch (delta
// computed by the caller, which owns the cumulative snapshot).
func (t *Telemetry) recordBatch(utterances int, wall time.Duration, search searchDelta, l1 CacheStats) {
	if t == nil {
		return
	}
	t.Batches.Inc()
	t.Utterances.Add(int64(utterances))
	t.BatchSeconds.Observe(wall.Seconds())
	t.Panics.Add(search.panics)
	t.Canceled.Add(search.canceled)
	t.L1Hits.Add(l1.L1Hits)
	t.L1Misses.Add(l1.L1Misses)
}

// searchDelta carries the per-batch fault counts into recordBatch.
type searchDelta struct {
	panics, canceled int64
}
