package pool

import "sync/atomic"

// l1Entry is one slot of a worker's direct-mapped front cache.
type l1Entry struct {
	key   uint64
	val   int32
	valid bool
}

// TieredCache is the two-layer offset cache one pool worker plugs into its
// decoder (it implements decoder.OffsetCache): a small direct-mapped L1
// owned exclusively by the worker — no locks, no sharing — backed by the
// pool's shared ShardedLRU. L2 hits are promoted into the L1 slot they map
// to; inserts write through to both layers so other workers benefit from
// every binary search any worker performs.
//
// A TieredCache must be used by a single goroutine at a time (the shared
// layer does its own locking). Hit/miss counters are atomics so the pool
// can aggregate them while other workers are mid-decode — overlapping
// batches snapshot cache statistics without waiting for pool-wide
// quiescence.
type TieredCache struct {
	l1     []l1Entry
	mask   uint64
	shared *ShardedLRU

	l1Hits, l1Misses atomic.Int64
}

// NewTieredCache fronts shared with a direct-mapped table of l1Entries
// slots (rounded up to a power of two; <=0 selects the default 512).
// shared may be nil, leaving a bounded L1-only cache.
func NewTieredCache(l1Entries int, shared *ShardedLRU) *TieredCache {
	if l1Entries <= 0 {
		l1Entries = 512
	}
	n := 1
	for n < l1Entries {
		n <<= 1
	}
	return &TieredCache{l1: make([]l1Entry, n), mask: uint64(n - 1), shared: shared}
}

// slot maps a key to its direct-mapped L1 index.
func (c *TieredCache) slot(key uint64) *l1Entry {
	return &c.l1[(key*0x9E3779B97F4A7C15>>40)&c.mask]
}

// Get looks key up in the L1, then the shared layer, promoting shared hits
// into the L1.
func (c *TieredCache) Get(key uint64) (int32, bool) {
	e := c.slot(key)
	if e.valid && e.key == key {
		c.l1Hits.Add(1)
		return e.val, true
	}
	c.l1Misses.Add(1)
	if c.shared == nil {
		return 0, false
	}
	val, ok := c.shared.Get(key)
	if ok {
		*e = l1Entry{key: key, val: val, valid: true}
	}
	return val, ok
}

// Put writes key through both layers: into the worker's L1 slot and the
// shared LRU.
func (c *TieredCache) Put(key uint64, val int32) {
	*c.slot(key) = l1Entry{key: key, val: val, valid: true}
	if c.shared != nil {
		c.shared.Put(key, val)
	}
}

// SetShared redirects the L2 layer — the tenant-partition swap the pool
// performs while it holds the worker or lane slot exclusively (never
// mid-decode). The L1 keeps its contents across the swap: offset entries
// are a pure function of the LM graph, so an entry promoted out of one
// tenant's partition stays valid under every other tenant. nil detaches
// the L2, leaving a bounded L1-only cache.
func (c *TieredCache) SetShared(shared *ShardedLRU) { c.shared = shared }

// Reset clears the worker-private L1. The shared layer is left warm: a
// pool-wide cold start goes through ShardedLRU.Reset.
func (c *TieredCache) Reset() {
	for i := range c.l1 {
		c.l1[i] = l1Entry{}
	}
}

// Stats snapshots this worker's L1 counters (L2 columns are zero here; the
// shared layer reports them once, pool-wide). Safe to call at any time; the
// two counters are loaded independently, so a mid-decode snapshot can be
// off by the probe in flight.
func (c *TieredCache) Stats() CacheStats {
	return CacheStats{L1Hits: c.l1Hits.Load(), L1Misses: c.l1Misses.Load()}
}
