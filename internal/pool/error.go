package pool

import "fmt"

// Decode stages recorded in DecodeError.Stage. They name the pipeline
// phase at which the utterance failed, not the goroutine that ran it.
const (
	// StageFeatures: the utterance's input was rejected before scoring
	// (e.g. a feature-dimension mismatch caught by the public API).
	StageFeatures = "features"
	// StageScore: acoustic scoring failed or panicked.
	StageScore = "score"
	// StageSearch: the Viterbi search panicked (e.g. a corrupted offset led
	// to an out-of-range read) and was converted into this error.
	StageSearch = "search"
	// StageCanceled: the batch context was canceled or its deadline expired
	// before (or while) this utterance was decoded.
	StageCanceled = "canceled"
)

// DecodeError is a per-utterance decode failure. A DecodePool never lets
// one bad utterance poison a batch: a worker panic or cancellation becomes
// a DecodeError at that utterance's index while every other utterance's
// result stays byte-identical to a sequential decode.
type DecodeError struct {
	// Utterance is the index of the failed utterance within the batch
	// (index-aligned with the scores passed to Decode); -1 when the failure
	// is not attributable to a single utterance.
	Utterance int
	// Stage is one of the Stage* constants.
	Stage string
	// Cause is the underlying failure (a recovered panic, ctx.Err(), or a
	// validation error). Exposed via Unwrap for errors.Is/As chains.
	Cause error
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("decode: utterance %d: %s stage: %v", e.Utterance, e.Stage, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *DecodeError) Unwrap() error { return e.Cause }
