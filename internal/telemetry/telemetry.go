// Package telemetry is the repo's stdlib-only observability layer: a
// metrics registry (counters, gauges, histograms, and scrape-time callback
// variants) with Prometheus text exposition, plus a lightweight per-decode
// span tracer (span.go). It is the production companion to the evaluation
// arithmetic in internal/metrics — where that package computes a number
// once per experiment, this one keeps the same quantities continuously
// observable while a server decodes live traffic.
//
// Two properties shape the design:
//
//   - Nil safety. Every instrument method has a nil-receiver no-op, and a
//     nil *Registry hands out nil instruments. Hot paths (the decoder frame
//     loop, the pool workers) therefore thread telemetry unconditionally
//     and pay a single predictable branch when it is disabled — the
//     zero-allocation gates in internal/decoder/alloc_test.go run with a
//     nil registry and still see zero allocations.
//
//   - Lock-free updates. Counters, gauges and histogram buckets are
//     atomics; the registry mutex is touched only at registration and
//     exposition time, never on the update path, so instruments can be
//     shared by every pool worker at once.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to an instrument at
// registration time (e.g. the cache shard index). Instruments with the same
// metric name but different labels form one exposition family.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind is the Prometheus metric type of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value, safe for concurrent use.
// All methods are nil-receiver no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits and
// updated atomically. All methods are nil-receiver no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: observation counts per upper
// bound plus a running sum, all atomics. Buckets are chosen at registration
// and never reallocated, so Observe is allocation-free. All methods are
// nil-receiver no-ops.
type Histogram struct {
	upper  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~20); a linear scan beats binary search and stays
	// branch-predictable for the common small-value case.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// series is one labeled instrument within a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // CounterFunc/GaugeFunc callback
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Registry holds instrument families and renders them in Prometheus text
// exposition format. The zero value is not usable; construct with
// NewRegistry. A nil *Registry is a valid "telemetry disabled" registry:
// every constructor returns a nil instrument and exposition writes nothing.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// lookup finds or creates the family and returns the existing series for
// the exact label set, if any. It panics on a kind conflict — two call
// sites disagreeing about a metric's type is a programming error that would
// otherwise silently corrupt the exposition.
func (r *Registry) lookup(name, help string, k kind, labels []Label) (*family, *series) {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.fams[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.kind, k))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return f, s
		}
	}
	return f, nil
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or retrieves, if already registered with the same
// labels) a counter. A nil registry returns a nil counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindCounter, labels)
	if s != nil {
		return s.c
	}
	c := &Counter{}
	f.series = append(f.series, &series{labels: labels, c: c})
	return c
}

// Gauge registers (or retrieves) a gauge. A nil registry returns nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindGauge, labels)
	if s != nil {
		return s.g
	}
	g := &Gauge{}
	f.series = append(f.series, &series{labels: labels, g: g})
	return g
}

// Histogram registers (or retrieves) a histogram over the given ascending
// bucket upper bounds (the +Inf bucket is implicit). A nil registry returns
// nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, kindHistogram, labels)
	if s != nil {
		return s.h
	}
	h := &Histogram{upper: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Int64, len(h.upper)+1)
	f.series = append(f.series, &series{labels: labels, h: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — the shape used for counters that already live behind their own
// lock (the sharded LRU's per-shard counters). fn must be safe to call from
// the scrape goroutine. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, kindCounter, fn, labels)
}

// GaugeFunc registers a gauge read from fn at exposition time (heap size,
// goroutine counts, uptime). No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, kindGauge, fn, labels)
}

func (r *Registry) registerFunc(name, help string, k kind, fn func() float64, labels []Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, s := r.lookup(name, help, k, labels)
	if s != nil {
		s.fn = fn // re-registration replaces the callback
		return
	}
	f.series = append(f.series, &series{labels: labels, fn: fn})
}

// WriteTo renders the registry in Prometheus text exposition format 0.0.4:
// families sorted by name, series in registration order, histograms with
// cumulative le buckets plus _sum and _count. A nil registry writes
// nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			writeSeries(&b, f, s)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeSeries renders one instrument's sample lines.
func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels, "", 0), formatValue(s.fn()))
	case s.c != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels, "", 0), s.c.Value())
	case s.g != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels, "", 0), formatValue(s.g.Value()))
	case s.h != nil:
		var cum int64
		for i, ub := range s.h.upper {
			cum += s.h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", ub), cum)
		}
		cum += s.h.counts[len(s.h.upper)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", math.Inf(1)), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(s.labels, "", 0), formatValue(s.h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(s.labels, "", 0), s.h.Count())
	}
}

// labelString renders {k="v",...}; leKey non-empty appends the histogram
// le label. Returns "" for an unlabeled scalar series.
func labelString(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leKey, formatValue(le))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: +Inf/-Inf
// spelled out, integers without exponent noise.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q handles quote and backslash escaping; newlines are the only extra
	// case, and %q renders them as \n already.
	return s
}

// Handler returns an http.Handler serving the text exposition — the
// /metrics endpoint. A nil registry serves an empty (but valid) page.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
