package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistry asserts the disabled-telemetry contract: a nil registry
// hands out nil instruments, every instrument method is a no-op, and
// exposition writes nothing. This is the seam the decoder's zero-allocation
// gates rely on.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help", LinearBuckets(1, 1, 3))
	r.CounterFunc("cf", "help", func() float64 { return 1 })
	r.GaugeFunc("gf", "help", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.Inc()
	g.Dec()
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var sb strings.Builder
	if n, err := r.WriteTo(&sb); n != 0 || err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition wrote %d bytes, err %v", n, err)
	}
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("nil registry handler status %d", rr.Code)
	}
}

// TestExpositionGolden pins the Prometheus text format byte-for-byte:
// family ordering (sorted by name), HELP/TYPE lines, label rendering,
// cumulative histogram buckets with the implicit +Inf, and _sum/_count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("unfold_decodes_total", "Completed decodes.").Add(3)
	r.Gauge("unfold_workers_busy", "Workers mid-utterance.").Set(2)
	h := r.Histogram("unfold_frontier_tokens", "Active tokens per frame.", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	r.Counter("unfold_cache_hits_total", "Shard hits.", L("layer", "l2"), L("shard", "0")).Add(7)
	r.Counter("unfold_cache_hits_total", "Shard hits.", L("layer", "l2"), L("shard", "1")).Add(9)
	r.GaugeFunc("unfold_up", "Always one.", func() float64 { return 1 })

	const want = `# HELP unfold_cache_hits_total Shard hits.
# TYPE unfold_cache_hits_total counter
unfold_cache_hits_total{layer="l2",shard="0"} 7
unfold_cache_hits_total{layer="l2",shard="1"} 9
# HELP unfold_decodes_total Completed decodes.
# TYPE unfold_decodes_total counter
unfold_decodes_total 3
# HELP unfold_frontier_tokens Active tokens per frame.
# TYPE unfold_frontier_tokens histogram
unfold_frontier_tokens_bucket{le="10"} 1
unfold_frontier_tokens_bucket{le="100"} 2
unfold_frontier_tokens_bucket{le="+Inf"} 3
unfold_frontier_tokens_sum 555
unfold_frontier_tokens_count 3
# HELP unfold_up Always one.
# TYPE unfold_up gauge
unfold_up 1
# HELP unfold_workers_busy Workers mid-utterance.
# TYPE unfold_workers_busy gauge
unfold_workers_busy 2
`
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestIdempotentRegistration asserts that registering the same
// name+label set twice returns the same instrument — pool construction
// registers decoder metrics once per telemetry set, and re-registration
// must not fork the series.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help")
	b := r.Counter("c", "help")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	l1 := r.Counter("c", "help", L("k", "v"))
	if l1 == a {
		t.Fatal("distinct labels must return a distinct counter")
	}
	if g1, g2 := r.Gauge("g", "h"), r.Gauge("g", "h"); g1 != g2 {
		t.Fatal("gauge re-registration forked")
	}
	if h1, h2 := r.Histogram("h", "h", nil), r.Histogram("h", "h", nil); h1 != h2 {
		t.Fatal("histogram re-registration forked")
	}
}

// TestKindConflictPanics pins the fail-fast on type confusion.
func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds must panic")
		}
	}()
	r.Gauge("m", "help")
}

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines while a scraper renders the exposition — the -race gate for
// the lock-free update path against the locked exposition path.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help", ExpBuckets(1, 2, 8))

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				g.Dec() // +1 then -1: the gauge must settle at 0
				h.Observe(float64(i % 300))
				if i%100 == 0 {
					// Concurrent registration of the same series must be
					// safe and return the shared instrument.
					if got := r.Counter("c", "help"); got != c {
						panic("registration raced to a distinct counter")
					}
				}
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if want := int64(goroutines * iters * 3); c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %g, want 0", g.Value())
	}
	if h.Count() != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*iters)
	}
}

// TestHistogramBuckets checks bucket assignment edges: values equal to an
// upper bound land in that bucket (le semantics), values above every bound
// land in +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	for _, line := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 8`,
		`h_count 5`,
	} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

// TestCounterMonotonic pins that negative Add deltas are dropped rather
// than decreasing the counter.
func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "help")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter accepted a negative delta: %d", c.Value())
	}
}

// TestFormatValue covers the exposition float rendering special cases.
func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		1:           "1",
		0.5:         "0.5",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
