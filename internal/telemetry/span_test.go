package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestNilTracer pins the disabled-tracing contract mirrored from the
// registry: Start on a nil tracer returns an inert span whose End is free.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("decode")
	if sp.Active() {
		t.Fatal("nil tracer produced an active span")
	}
	sp.End(A("frames", 100)) // must not panic
	if tr.Total() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

// TestTracerRing checks capacity-bounded retention and newest-first
// snapshots.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		sp := tr.Start("decode")
		sp.End(A("i", int64(i)))
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot retained %d spans, want 3", len(snap))
	}
	// Newest first: i attrs should read 4, 3, 2.
	for j, want := range []int64{4, 3, 2} {
		if got := snap[j].Attrs[0].Value; got != want {
			t.Errorf("snap[%d] attr = %d, want %d", j, got, want)
		}
	}
	if snap[0].Duration < 0 {
		t.Error("negative span duration")
	}
}

// TestTracerPartialRing covers snapshots before the ring wraps.
func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("a").End()
	tr.Start("b").End()
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Name != "b" || snap[1].Name != "a" {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
}

// TestTracerConcurrent is the -race gate: spans ending from many
// goroutines while snapshots are taken.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Start("decode").End(A("i", int64(i)))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
			_ = tr.Total()
		}
	}()
	wg.Wait()
	<-done
	if tr.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500)
	}
}

// TestTracerHandler checks the /debug/spans JSON shape.
func TestTracerHandler(t *testing.T) {
	tr := NewTracer(4)
	tr.Start("decode").End(A("frames", 12))
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans", nil))
	var out struct {
		Total uint64       `json:"total"`
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 1 || len(out.Spans) != 1 || out.Spans[0].Name != "decode" {
		t.Fatalf("handler payload wrong: %+v", out)
	}
	if out.Spans[0].Attrs[0] != A("frames", 12) {
		t.Fatalf("attrs lost: %+v", out.Spans[0].Attrs)
	}
}
