package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Attr is one integer-valued span attribute (frame counts, token counts,
// rescue counts — everything a decode span wants to record is a counter).
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// A is shorthand for constructing an Attr.
func A(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is one completed span as stored in the tracer's ring.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer keeps the most recent completed spans in a fixed ring — enough to
// answer "what did the last N decodes look like" from a debug endpoint
// without unbounded memory or a tracing dependency. A nil *Tracer is a
// valid disabled tracer: Start returns a zero Span whose End is a no-op.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
}

// NewTracer returns a tracer retaining the last capacity spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// Span is an in-flight measurement handle. The zero value (from a nil
// tracer) is inert: End does nothing and costs nothing.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start begins a span. On a nil tracer it returns the inert zero Span
// without reading the clock.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// Active reports whether the span will record on End — callers can skip
// attribute preparation for inert spans.
func (s Span) Active() bool { return s.t != nil }

// End completes the span, recording its duration and attributes into the
// tracer's ring. No-op on an inert span.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	rec := SpanRecord{Name: s.name, Start: s.start, Duration: time.Since(s.start), Attrs: attrs}
	t := s.t
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Total reports how many spans have completed since construction
// (including those evicted from the ring). 0 on a nil tracer.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, most recent first. Nil tracers
// return nil.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	// The ring's logical order is oldest..newest starting at next (once
	// full); walk it backwards to emit newest first.
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*cap(t.ring)) % cap(t.ring)
		if idx < len(t.ring) {
			out = append(out, t.ring[idx])
		}
	}
	return out
}

// Handler serves the retained spans as JSON — the /debug/spans endpoint.
// A nil tracer serves an empty list.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := t.Snapshot()
		if snap == nil {
			snap = []SpanRecord{}
		}
		json.NewEncoder(w).Encode(struct {
			Total uint64       `json:"total"`
			Spans []SpanRecord `json:"spans"`
		}{t.Total(), snap})
	})
}
