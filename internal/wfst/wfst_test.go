package wfst

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

// buildFig3LM builds the toy 3-word back-off LM of the paper's Figure 3b:
// state 0 = empty history with one unigram arc per word, states 1..3 =
// one-word histories, states 4..6 = two-word histories, back-off arcs
// (epsilon input) pointing one level down.
func buildFig3LM(t testing.TB) *WFST {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 7; i++ {
		b.AddState()
	}
	b.SetStart(0)
	for s := StateID(0); s < 7; s++ {
		b.SetFinal(s, semiring.One)
	}
	// Words: 1=ONE, 2=TWO, 3=THREE.
	// Unigrams from state 0; dest = word's history state.
	b.AddArc(0, Arc{In: 1, Out: 1, W: 1.0, Next: 1})
	b.AddArc(0, Arc{In: 2, Out: 2, W: 1.2, Next: 2})
	b.AddArc(0, Arc{In: 3, Out: 3, W: 1.4, Next: 3})
	// Bigrams (sparse) + back-off arcs from one-word histories.
	b.AddArc(1, Arc{In: 3, Out: 3, W: 0.5, Next: 4}) // ONE THREE -> hist(ONE,THREE)
	b.AddArc(1, Arc{In: Epsilon, Out: Epsilon, W: 0.3, Next: 0})
	b.AddArc(2, Arc{In: 1, Out: 1, W: 0.6, Next: 5}) // TWO ONE
	b.AddArc(2, Arc{In: Epsilon, Out: Epsilon, W: 0.25, Next: 0})
	b.AddArc(3, Arc{In: 2, Out: 2, W: 0.7, Next: 6}) // THREE TWO
	b.AddArc(3, Arc{In: Epsilon, Out: Epsilon, W: 0.2, Next: 0})
	// Trigrams + back-off from two-word histories.
	b.AddArc(4, Arc{In: 2, Out: 2, W: 0.4, Next: 6}) // (ONE,THREE) TWO -> hist(THREE,TWO)
	b.AddArc(4, Arc{In: Epsilon, Out: Epsilon, W: 0.15, Next: 3})
	b.AddArc(5, Arc{In: 3, Out: 3, W: 0.45, Next: 4}) // (TWO,ONE) THREE
	b.AddArc(5, Arc{In: Epsilon, Out: Epsilon, W: 0.1, Next: 1})
	b.AddArc(6, Arc{In: 1, Out: 1, W: 0.35, Next: 5}) // (THREE,TWO) ONE
	b.AddArc(6, Arc{In: Epsilon, Out: Epsilon, W: 0.12, Next: 2})
	g := b.MustBuild()
	g.SortByInput()
	return g
}

// buildFig3AM builds a miniature acoustic transducer in the style of the
// paper's Figure 3a: one senone-labelled chain per word whose last arc emits
// the word ID, plus epsilon arcs looping back to the start state.
func buildFig3AM(t testing.TB) *WFST {
	t.Helper()
	b := NewBuilder()
	start := b.AddState() // 0
	b.SetStart(start)
	b.SetFinal(start, semiring.One)
	// Word 1 (ONE): senones 1,2,3. Word 2 (TWO): 4,5. Word 3 (THREE): 6,7,8.
	prons := map[int32][]int32{1: {1, 2, 3}, 2: {4, 5}, 3: {6, 7, 8}}
	for _, w := range []int32{1, 2, 3} {
		pron := prons[w]
		prev := start
		for i, senone := range pron {
			out := Epsilon
			if i == len(pron)-1 {
				out = w
			}
			next := b.AddState()
			b.AddArc(prev, Arc{In: senone, Out: out, W: 0.1, Next: next})
			b.AddArc(next, Arc{In: senone, Out: Epsilon, W: 0.05, Next: next}) // self-loop
			prev = next
		}
		b.AddArc(prev, Arc{In: Epsilon, Out: Epsilon, W: 0, Next: start}) // word-end loop
	}
	return b.MustBuild()
}

func TestBuilderAndAccessors(t *testing.T) {
	g := buildFig3LM(t)
	if g.NumStates() != 7 {
		t.Fatalf("NumStates = %d, want 7", g.NumStates())
	}
	if g.NumArcs() != 15 {
		t.Fatalf("NumArcs = %d, want 15", g.NumArcs())
	}
	if g.Start() != 0 {
		t.Fatalf("Start = %d, want 0", g.Start())
	}
	if !g.IsFinal(3) {
		t.Error("state 3 should be final")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if len(g.Arcs(0)) != 3 {
		t.Errorf("state 0 fan-out = %d, want 3", len(g.Arcs(0)))
	}
}

func TestSortAndFindArc(t *testing.T) {
	g := buildFig3LM(t)
	for _, tc := range []struct {
		state StateID
		word  int32
		found bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, true},
		{1, 3, true}, {1, 2, false}, // TWO pruned from bigram of ONE
		{6, 1, true}, {6, 3, false},
	} {
		idx, ok := g.FindArc(tc.state, tc.word, nil)
		if ok != tc.found {
			t.Errorf("FindArc(%d, %d) found=%v, want %v", tc.state, tc.word, ok, tc.found)
			continue
		}
		if ok && g.Arcs(tc.state)[idx].In != tc.word {
			t.Errorf("FindArc(%d, %d) returned arc with label %d", tc.state, tc.word, g.Arcs(tc.state)[idx].In)
		}
	}
}

func TestFindArcLinearAgreesWithBinary(t *testing.T) {
	g := buildFig3LM(t)
	for s := StateID(0); int(s) < g.NumStates(); s++ {
		for w := int32(1); w <= 3; w++ {
			i1, ok1 := g.FindArc(s, w, nil)
			i2, ok2 := g.FindArcLinear(s, w, nil)
			if ok1 != ok2 || (ok1 && i1 != i2) {
				t.Errorf("state %d word %d: binary (%d,%v) vs linear (%d,%v)", s, w, i1, ok1, i2, ok2)
			}
		}
	}
}

func TestBackoffArc(t *testing.T) {
	g := buildFig3LM(t)
	if _, ok := g.BackoffArc(0); ok {
		t.Error("unigram state must not have a back-off arc")
	}
	bo, ok := g.BackoffArc(4)
	if !ok {
		t.Fatal("state 4 should have a back-off arc")
	}
	if bo.Next != 3 {
		t.Errorf("state 4 backs off to %d, want 3", bo.Next)
	}
}

func TestResolveWordDirectAndBackoff(t *testing.T) {
	g := buildFig3LM(t)
	// Direct trigram hit: state 6 + word ONE.
	next, w, hops, ok := g.ResolveWord(6, 1)
	if !ok || next != 5 || hops != 0 {
		t.Errorf("ResolveWord(6,1) = (%d, %v, %d, %v), want (5, _, 0, true)", next, w, hops, ok)
	}
	if !semiring.ApproxEqual(w, 0.35, 1e-6) {
		t.Errorf("weight = %v, want 0.35", w)
	}
	// Paper's example: from (TWO,ONE)=state 5, word TWO backs off twice:
	// 5 -> 1 (bow 0.1), 1 -> 0 (bow 0.3), then unigram TWO (1.2) to state 2.
	next, w, hops, ok = g.ResolveWord(5, 2)
	if !ok || next != 2 || hops != 2 {
		t.Errorf("ResolveWord(5,2) = (%d, %v, %d, %v), want (2, _, 2, true)", next, w, hops, ok)
	}
	if !semiring.ApproxEqual(w, 0.1+0.3+1.2, 1e-5) {
		t.Errorf("backed-off weight = %v, want 1.6", w)
	}
}

func TestComposeFig3(t *testing.T) {
	am := buildFig3AM(t)
	lm := buildFig3LM(t)
	c, err := Compose(am, lm, ComposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumStates() == 0 || c.NumArcs() == 0 {
		t.Fatal("empty composition")
	}
	// The composed machine must be strictly larger than either component —
	// the blow-up the paper's Table 1 quantifies.
	if c.NumArcs() <= lm.NumArcs() {
		t.Errorf("composed arcs = %d, not larger than LM arcs %d", c.NumArcs(), lm.NumArcs())
	}
	// Every cross-word arc's weight must include an LM contribution: find the
	// arc emitting word 1 from the composed start and check its weight is the
	// AM arc weight (0.1) plus the unigram weight of ONE... cross-word arcs
	// emit at word end, so instead verify globally: total cross-word arcs > 0
	// and all weights finite.
	st := ComputeStats(c)
	if st.CrossWordArcs == 0 {
		t.Error("composition lost all cross-word arcs")
	}
	for s := StateID(0); int(s) < c.NumStates(); s++ {
		for _, a := range c.Arcs(s) {
			if semiring.IsZero(a.W) {
				t.Fatalf("composed arc with infinite weight at state %d", s)
			}
		}
	}
}

func TestComposeMaxStates(t *testing.T) {
	am := buildFig3AM(t)
	lm := buildFig3LM(t)
	if _, err := Compose(am, lm, ComposeOptions{MaxStates: 3}); err == nil {
		t.Error("expected MaxStates overflow error")
	}
}

func TestComposeRequiresSortedLM(t *testing.T) {
	am := buildFig3AM(t)
	b := NewBuilder()
	s := b.AddState()
	b.SetStart(s)
	b.SetFinal(s, semiring.One)
	unsorted := b.MustBuild()
	if _, err := Compose(am, unsorted, ComposeOptions{}); err == nil {
		t.Error("expected error composing with unsorted LM")
	}
}

func TestConnectRemovesDeadStates(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddState()
	s1 := b.AddState()
	s2 := b.AddState() // dead end: no path to final
	s3 := b.AddState() // unreachable
	b.SetStart(s0)
	b.AddArc(s0, Arc{In: 1, Next: s1})
	b.AddArc(s0, Arc{In: 2, Next: s2})
	b.AddArc(s3, Arc{In: 3, Next: s1})
	b.SetFinal(s1, semiring.One)
	g := b.MustBuild()
	c := Connect(g)
	if c.NumStates() != 2 {
		t.Fatalf("connected states = %d, want 2", c.NumStates())
	}
	if c.NumArcs() != 1 {
		t.Fatalf("connected arcs = %d, want 1", c.NumArcs())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectIdempotent(t *testing.T) {
	am := buildFig3AM(t)
	lm := buildFig3LM(t)
	c, err := Compose(am, lm, ComposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := Connect(c)
	if !Equal(c, c2) {
		t.Error("Connect is not idempotent on an already-connected machine")
	}
}

func TestIORoundTrip(t *testing.T) {
	for _, g := range []*WFST{buildFig3LM(t), buildFig3AM(t)} {
		var buf bytes.Buffer
		if err := Write(g, &buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(g, got) {
			t.Error("round-tripped WFST differs")
		}
		if got.InSorted() != g.InSorted() {
			t.Error("round trip lost inSorted flag")
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a wfst at all........"))); err == nil {
		t.Error("expected error on garbage input")
	}
}

func TestStats(t *testing.T) {
	g := buildFig3LM(t)
	st := ComputeStats(g)
	if st.States != 7 || st.Arcs != 15 {
		t.Errorf("stats = %+v", st)
	}
	if st.EpsInArcs != 6 {
		t.Errorf("EpsInArcs = %d, want 6 back-off arcs", st.EpsInArcs)
	}
	if st.SizeBytes != int64(15*ArcBytes+7*StateBytes) {
		t.Errorf("SizeBytes = %d", st.SizeBytes)
	}
	if st.MaxFanOut != 3 {
		t.Errorf("MaxFanOut = %d, want 3", st.MaxFanOut)
	}
}

// randomWFST builds a random transducer for property tests.
func randomWFST(rng *rand.Rand, nStates, maxArcs int) *WFST {
	b := NewBuilder()
	for i := 0; i < nStates; i++ {
		b.AddState()
	}
	b.SetStart(0)
	for s := 0; s < nStates; s++ {
		if rng.Intn(3) == 0 {
			b.SetFinal(StateID(s), semiring.Weight(rng.Float32()))
		}
		for a := rng.Intn(maxArcs + 1); a > 0; a-- {
			b.AddArc(StateID(s), Arc{
				In:   int32(rng.Intn(20)),
				Out:  int32(rng.Intn(5)),
				W:    semiring.Weight(rng.Float32() * 10),
				Next: StateID(rng.Intn(nStates)),
			})
		}
	}
	return b.MustBuild()
}

// Property: serialization round-trips arbitrary machines exactly.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomWFST(rng, rng.Intn(30)+1, 5)
		if rng.Intn(2) == 0 {
			g.SortByInput()
		}
		var buf bytes.Buffer
		if err := Write(g, &buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && Equal(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FindArc agrees with a straightforward scan on random sorted machines.
func TestFindArcProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomWFST(rng, rng.Intn(20)+1, 8)
		g.SortByInput()
		for s := StateID(0); int(s) < g.NumStates(); s++ {
			for in := int32(0); in < 20; in++ {
				if in == Epsilon {
					continue
				}
				idx, ok := g.FindArc(s, in, nil)
				// Reference: first occurrence by scan.
				ref, refOK := -1, false
				for i, a := range g.Arcs(s) {
					if a.In == in {
						ref, refOK = i, true
						break
					}
				}
				if ok != refOK || (ok && idx != ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Connect never grows the machine and always yields a valid one
// whose states are all useful.
func TestConnectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomWFST(rng, rng.Intn(40)+1, 4)
		c := Connect(g)
		if c.Validate() != nil {
			return false
		}
		if c.NumStates() > g.NumStates() || c.NumArcs() > g.NumArcs() {
			return false
		}
		return Equal(Connect(c), c) // idempotent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFormatBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	} {
		if got := FormatBytes(tc.n); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
