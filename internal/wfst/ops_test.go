package wfst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

// Property: Invert swaps the relation exactly (checked via enumeration).
func TestInvertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAcyclicTransducer(rng, rng.Intn(4)+3, 3)
		inv := Invert(g)
		if inv.Validate() != nil {
			return false
		}
		orig := enumerate(g, 8)
		got := enumerate(inv, 8)
		if len(orig) != len(got) {
			return false
		}
		for k, w := range orig {
			gw, ok := got[ioPair{k.out, k.in}]
			if !ok || !semiring.ApproxEqual(gw, w, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInvertInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomAcyclicTransducer(rng, 6, 3)
	if !Equal(Invert(Invert(g)), g) {
		t.Error("double inversion is not identity")
	}
}

// Property: projection keeps the chosen side's strings with min weights.
func TestProjectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAcyclicTransducer(rng, rng.Intn(4)+3, 3)
		orig := enumerate(g, 8)
		for _, side := range []ProjectSide{ProjectInput, ProjectOutput} {
			p := Project(g, side)
			got := enumerate(p, 8)
			// Reference: min over the other side.
			want := map[ioPair]semiring.Weight{}
			for k, w := range orig {
				s := k.in
				if side == ProjectOutput {
					s = k.out
				}
				kk := ioPair{s, s}
				if old, ok := want[kk]; !ok || w < old {
					want[kk] = w
				}
			}
			if len(got) != len(want) {
				return false
			}
			for k, w := range want {
				gw, ok := got[k]
				if !ok || !semiring.ApproxEqual(gw, w, 1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomEpsTransducer produces DAGs rich in ε/ε arcs to stress RmEpsilon.
func randomEpsTransducer(rng *rand.Rand, n int) *WFST {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddState()
	}
	b.SetStart(0)
	b.SetFinal(StateID(n-1), semiring.Weight(rng.Float32()))
	for s := 0; s < n-1; s++ {
		for a := rng.Intn(3) + 1; a > 0; a-- {
			in, out := int32(0), int32(0)
			if rng.Intn(2) == 0 { // half the arcs are ε/ε
				in, out = int32(rng.Intn(3)), int32(rng.Intn(3))
			}
			b.AddArc(StateID(s), Arc{
				In: in, Out: out,
				W:    semiring.Weight(rng.Float32()),
				Next: StateID(s + 1 + rng.Intn(n-s-1)),
			})
		}
	}
	return b.MustBuild()
}

// Property: RmEpsilon preserves the weighted relation and leaves no ε/ε arc.
func TestRmEpsilonProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEpsTransducer(rng, rng.Intn(5)+3)
		r := RmEpsilon(g)
		if r.Validate() != nil {
			return false
		}
		for s := StateID(0); int(s) < r.NumStates(); s++ {
			for _, a := range r.Arcs(s) {
				if a.In == Epsilon && a.Out == Epsilon {
					return false
				}
			}
		}
		orig := enumerate(g, 10)
		got := enumerate(r, 10)
		// The relation (label strings -> min weight) must match exactly.
		if len(orig) != len(got) {
			return false
		}
		for k, w := range orig {
			gw, ok := got[k]
			if !ok || !semiring.ApproxEqual(gw, w, 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRmEpsilonOnAMGraph(t *testing.T) {
	am := buildFig3AM(t)
	r := RmEpsilon(am)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(r)
	if st.EpsInArcs != 0 {
		t.Errorf("%d epsilon arcs remain", st.EpsInArcs)
	}
	// The word-loop closure means word-end states gain direct arcs to the
	// first phones of following words.
	if r.NumArcs() <= am.NumArcs()-3 {
		t.Logf("arcs %d -> %d", am.NumArcs(), r.NumArcs())
	}
}
