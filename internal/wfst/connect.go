package wfst

import "repro/internal/semiring"

// Connect returns a copy of f containing only useful states: those reachable
// from the start state and from which some final state is reachable.
// State IDs are renumbered in breadth-first discovery order from the start,
// which keeps related states close together in memory — the locality the
// accelerator's caches exploit.
func Connect(f *WFST) *WFST {
	n := f.NumStates()
	if n == 0 || f.Start() == NoState {
		nf, _ := NewBuilder().Build()
		return nf
	}

	// Forward reachability from start.
	reach := make([]bool, n)
	stack := []StateID{f.Start()}
	reach[f.Start()] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range f.Arcs(s) {
			if !reach[a.Next] {
				reach[a.Next] = true
				stack = append(stack, a.Next)
			}
		}
	}

	// Backward reachability to a final state over the reversed graph.
	rev := make([][]StateID, n)
	for s := StateID(0); int(s) < n; s++ {
		if !reach[s] {
			continue
		}
		for _, a := range f.Arcs(s) {
			rev[a.Next] = append(rev[a.Next], s)
		}
	}
	coreach := make([]bool, n)
	for s := StateID(0); int(s) < n; s++ {
		if reach[s] && f.IsFinal(s) {
			coreach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !coreach[p] {
				coreach[p] = true
				stack = append(stack, p)
			}
		}
	}

	keep := func(s StateID) bool { return reach[s] && coreach[s] }
	if !keep(f.Start()) {
		nf, _ := NewBuilder().Build()
		return nf
	}

	// Renumber in BFS order from start for memory locality.
	remap := make([]StateID, n)
	for i := range remap {
		remap[i] = NoState
	}
	b := NewBuilder()
	var order []StateID
	queue := []StateID{f.Start()}
	remap[f.Start()] = b.AddState()
	order = append(order, f.Start())
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, a := range f.Arcs(s) {
			if keep(a.Next) && remap[a.Next] == NoState {
				remap[a.Next] = b.AddState()
				order = append(order, a.Next)
				queue = append(queue, a.Next)
			}
		}
	}
	b.SetStart(remap[f.Start()])
	for _, old := range order {
		ns := remap[old]
		if fw := f.Final(old); !semiring.IsZero(fw) {
			b.SetFinal(ns, fw)
		}
		for _, a := range f.Arcs(old) {
			if keep(a.Next) {
				b.AddArc(ns, Arc{In: a.In, Out: a.Out, W: a.W, Next: remap[a.Next]})
			}
		}
	}
	nf := b.MustBuild()
	if f.InSorted() {
		nf.SortByInput()
	}
	return nf
}
