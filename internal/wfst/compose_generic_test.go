package wfst

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

// ioPair is an (input string, output string) relation element.
type ioPair struct{ in, out string }

// enumerate returns the minimal cost per (input, output) string pair over
// all accepting paths of at most maxArcs arcs — the brute-force semantics
// of a transducer. Epsilon labels are omitted from the strings.
func enumerate(g *WFST, maxArcs int) map[ioPair]semiring.Weight {
	out := map[ioPair]semiring.Weight{}
	if g.Start() == NoState {
		return out
	}
	type frame struct {
		s        StateID
		cost     semiring.Weight
		in, outl []int32
		depth    int
	}
	var rec func(f frame)
	rec = func(f frame) {
		if fw := g.Final(f.s); !semiring.IsZero(fw) {
			key := ioPair{fmt.Sprint(f.in), fmt.Sprint(f.outl)}
			total := semiring.Times(f.cost, fw)
			if old, ok := out[key]; !ok || total < old {
				out[key] = total
			}
		}
		if f.depth == maxArcs {
			return
		}
		for _, a := range g.Arcs(f.s) {
			nin, nout := f.in, f.outl
			if a.In != Epsilon {
				nin = append(append([]int32{}, f.in...), a.In)
			}
			if a.Out != Epsilon {
				nout = append(append([]int32{}, f.outl...), a.Out)
			}
			rec(frame{a.Next, semiring.Times(f.cost, a.W), nin, nout, f.depth + 1})
		}
	}
	rec(frame{g.Start(), semiring.One, nil, nil, 0})
	return out
}

// composeOracle computes the brute-force composition relation: for every
// (x,y) pair of A and (y,z) pair of B with matching y, min-combine into
// (x,z).
func composeOracle(a, b *WFST, maxArcs int) map[ioPair]semiring.Weight {
	pa := enumerate(a, maxArcs)
	pb := enumerate(b, maxArcs)
	out := map[ioPair]semiring.Weight{}
	for ka, wa := range pa {
		for kb, wb := range pb {
			if ka.out != kb.in {
				continue
			}
			key := ioPair{ka.in, kb.out}
			total := semiring.Times(wa, wb)
			if old, ok := out[key]; !ok || total < old {
				out[key] = total
			}
		}
	}
	return out
}

// randomAcyclicTransducer builds a small DAG transducer (arcs only go
// forward), so path enumeration terminates exactly.
func randomAcyclicTransducer(rng *rand.Rand, n, labels int) *WFST {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddState()
	}
	b.SetStart(0)
	b.SetFinal(StateID(n-1), semiring.Weight(rng.Float32()))
	for s := 0; s < n-1; s++ {
		arcs := rng.Intn(3) + 1
		for a := 0; a < arcs; a++ {
			b.AddArc(StateID(s), Arc{
				In:   int32(rng.Intn(labels + 1)), // 0 = epsilon
				Out:  int32(rng.Intn(labels + 1)),
				W:    semiring.Weight(rng.Float32()),
				Next: StateID(s + 1 + rng.Intn(n-s-1)),
			})
		}
	}
	return b.MustBuild()
}

// TestComposeGenericOracle is the brute-force correctness property: the
// composed machine's (input, output) -> min-cost relation equals the
// min-combination of the component relations.
func TestComposeGenericOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomAcyclicTransducer(rng, rng.Intn(3)+3, 2)
		b := randomAcyclicTransducer(rng, rng.Intn(3)+3, 2)
		c, err := ComposeGeneric(a, b, ComposeOptions{MaxStates: 10000, KeepUnconnected: true})
		if err != nil {
			return false
		}
		// DAG depth bound: paths have at most n-1 arcs per machine; the
		// composition interleaves them, so 2*(n-1) arcs suffice.
		got := enumerate(c, 12)
		want := composeOracle(a, b, 6)
		if len(got) != len(want) {
			return false
		}
		for k, w := range want {
			gw, ok := got[k]
			if !ok || !semiring.ApproxEqual(gw, w, 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComposeGenericEmptyOperand(t *testing.T) {
	empty := NewBuilder().MustBuild()
	rng := rand.New(rand.NewSource(1))
	a := randomAcyclicTransducer(rng, 4, 2)
	c, err := ComposeGeneric(a, empty, ComposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 0 {
		t.Error("composition with empty machine should be empty")
	}
}

func TestComposeGenericMaxStates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomAcyclicTransducer(rng, 8, 2)
	b := randomAcyclicTransducer(rng, 8, 2)
	if _, err := ComposeGeneric(a, b, ComposeOptions{MaxStates: 2}); err == nil {
		t.Error("expected MaxStates error")
	}
}
