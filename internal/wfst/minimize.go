package wfst

import (
	"encoding/binary"
	"math"

	"repro/internal/semiring"
)

// Minimize merges bisimulation-equivalent states: states with identical
// final weights whose outgoing arcs agree on (input, output, weight,
// destination class). For the deterministic machines our builders produce
// this is classic Moore minimization; for nondeterministic machines it is
// still language-preserving (bisimulation is sound), merely not guaranteed
// minimal.
//
// Kaldi's HCLG pipeline applies determinization and minimization after
// composition, which is why the paper's composed WFSTs blow up ~10x rather
// than the raw multiplicative factor; Minimize recovers part of that
// optimization and is used by the `minimize` ablation experiment.
func Minimize(f *WFST) *WFST {
	n := f.NumStates()
	if n == 0 {
		out, _ := NewBuilder().Build()
		return out
	}

	// Initial partition: by final weight (bit pattern; NaN-safe).
	class := make([]int32, n)
	{
		byFinal := map[uint32]int32{}
		for s := 0; s < n; s++ {
			bits := math.Float32bits(float32(f.Final(StateID(s))))
			id, ok := byFinal[bits]
			if !ok {
				id = int32(len(byFinal))
				byFinal[bits] = id
			}
			class[s] = id
		}
	}

	// Refine until stable: signature = own class + per-arc
	// (in, out, weight bits, destination class).
	next := make([]int32, n)
	buf := make([]byte, 0, 256)
	for {
		sig := map[string]int32{}
		for s := 0; s < n; s++ {
			buf = buf[:0]
			buf = binary.LittleEndian.AppendUint32(buf, uint32(class[s]))
			for _, a := range f.Arcs(StateID(s)) {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(a.In))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Out))
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(a.W)))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(class[a.Next]))
			}
			id, ok := sig[string(buf)]
			if !ok {
				id = int32(len(sig))
				sig[string(buf)] = id
			}
			next[s] = id
		}
		stable := len(sig) == numClasses(class)
		class, next = next, class
		if stable {
			break
		}
	}

	// Rebuild: one state per class, numbered by first occurrence so the
	// start lands on its class representative deterministically.
	k := numClasses(class)
	rep := make([]StateID, k)
	for i := range rep {
		rep[i] = NoState
	}
	b := NewBuilder()
	order := make([]StateID, 0, k)
	for s := 0; s < n; s++ {
		c := class[s]
		if rep[c] == NoState {
			rep[c] = StateID(s)
			b.AddState()
			order = append(order, StateID(s))
		}
	}
	remap := make([]StateID, k) // class -> new state ID
	for newID, old := range order {
		remap[class[old]] = StateID(newID)
	}
	b.SetStart(remap[class[f.Start()]])
	for newID, old := range order {
		if fw := f.Final(old); !semiring.IsZero(fw) {
			b.SetFinal(StateID(newID), fw)
		}
		for _, a := range f.Arcs(old) {
			b.AddArc(StateID(newID), Arc{In: a.In, Out: a.Out, W: a.W, Next: remap[class[a.Next]]})
		}
	}
	out := b.MustBuild()
	if f.InSorted() {
		out.SortByInput()
	}
	return out
}

func numClasses(class []int32) int {
	max := int32(-1)
	for _, c := range class {
		if c > max {
			max = c
		}
	}
	return int(max + 1)
}
