package wfst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/semiring"
)

// Binary format: little-endian throughout.
//
//	magic   uint32  'W','F','S','T'
//	version uint32
//	start   int32
//	states  uint32
//	arcs    uint32
//	flags   uint32  bit0: input-sorted
//	per state: arcCount uint32, final float32 (+Inf for non-final)
//	per arc:   in int32, out int32, next int32, weight float32
const (
	ioMagic   = uint32('W') | uint32('F')<<8 | uint32('S')<<16 | uint32('T')<<24
	ioVersion = 1
)

// Write serializes f to w in the package's binary format.
func Write(f *WFST, w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{ioMagic, ioVersion, uint32(f.start), uint32(f.NumStates()), uint32(f.NumArcs())}
	var flags uint32
	if f.inSorted {
		flags |= 1
	}
	hdr = append(hdr, flags)
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for s := StateID(0); int(s) < f.NumStates(); s++ {
		rec := [2]uint32{
			f.states[s+1].arcBegin - f.states[s].arcBegin,
			math.Float32bits(float32(f.states[s].final)),
		}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	for _, a := range f.arcs {
		rec := [4]uint32{uint32(a.In), uint32(a.Out), uint32(a.Next), math.Float32bits(float32(a.W))}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a WFST written by Write.
func Read(r io.Reader) (*WFST, error) {
	br := bufio.NewReader(r)
	var hdr [6]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("wfst: reading header: %w", err)
	}
	if hdr[0] != ioMagic {
		return nil, fmt.Errorf("wfst: bad magic %#x", hdr[0])
	}
	if hdr[1] != ioVersion {
		return nil, fmt.Errorf("wfst: unsupported version %d", hdr[1])
	}
	nStates, nArcs := int(hdr[3]), int(hdr[4])
	// Guard allocations against corrupted headers before trusting counts.
	const maxStates, maxArcs = 1 << 27, 1 << 29
	if nStates > maxStates || nArcs > maxArcs {
		return nil, fmt.Errorf("wfst: implausible header: %d states, %d arcs", nStates, nArcs)
	}
	f := &WFST{
		start:    StateID(int32(hdr[2])),
		states:   make([]stateRec, nStates+1),
		arcs:     make([]Arc, nArcs),
		inSorted: hdr[5]&1 != 0,
	}
	var begin uint32
	for s := 0; s < nStates; s++ {
		var rec [2]uint32
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("wfst: reading state %d: %w", s, err)
		}
		f.states[s] = stateRec{arcBegin: begin, final: semiring.Weight(math.Float32frombits(rec[1]))}
		begin += rec[0]
	}
	if int(begin) != nArcs {
		return nil, fmt.Errorf("wfst: state arc counts sum to %d, header says %d", begin, nArcs)
	}
	f.states[nStates] = stateRec{arcBegin: begin, final: semiring.Zero}
	for i := 0; i < nArcs; i++ {
		var rec [4]uint32
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("wfst: reading arc %d: %w", i, err)
		}
		f.arcs[i] = Arc{
			In:   int32(rec[0]),
			Out:  int32(rec[1]),
			Next: StateID(int32(rec[2])),
			W:    semiring.Weight(math.Float32frombits(rec[3])),
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
