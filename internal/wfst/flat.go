package wfst

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"repro/internal/semiring"
)

// Flat CSR layout — the zero-copy serialization of a WFST used by the v3
// model store (docs/MODEL_STORE.md). Unlike the record-oriented Write/Read
// format, the flat layout mirrors the in-memory compressed-sparse-row arrays
// byte for byte, so on a little-endian host a memory-mapped bundle section
// IS the state/arc table: no unmarshal step, no per-arc allocation, load
// time independent of arc count.
//
// State record (8 bytes, little-endian):
//
//	+0 arcBegin uint32  index of the state's first arc in the arc table
//	+4 final    float32 final weight bits (+Inf = non-final)
//
// The state table has NumStates()+1 records; the last is the sentinel whose
// arcBegin equals the arc count (and whose final is +Inf). Arc record
// (16 bytes, little-endian — the paper's 128-bit arc):
//
//	+0  in     int32   input label (senone, or word for an LM)
//	+4  out    int32   output label (word, or Epsilon)
//	+8  weight float32 arc weight bits
//	+12 next   int32   destination state
//
// Field order matches the Go Arc struct so the cast is layout-exact.
const (
	// FlatStateBytes is the flat per-state record width.
	FlatStateBytes = StateBytes // 8
	// FlatArcBytes is the flat per-arc record width.
	FlatArcBytes = ArcBytes // 16
)

// hostLittleEndian reports whether this machine stores multi-byte integers
// least-significant byte first — the precondition for aliasing flat bytes
// as record slices instead of decoding them.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// layoutMatchesFlat reports whether the in-memory record layouts equal the
// on-disk flat layout, which the zero-copy cast requires. True on every
// platform Go currently supports (the structs have no padding), but checked
// at runtime so an exotic ABI degrades to the copying path instead of
// corrupting reads.
func layoutMatchesFlat() bool {
	return unsafe.Sizeof(Arc{}) == FlatArcBytes &&
		unsafe.Offsetof(Arc{}.In) == 0 &&
		unsafe.Offsetof(Arc{}.Out) == 4 &&
		unsafe.Offsetof(Arc{}.W) == 8 &&
		unsafe.Offsetof(Arc{}.Next) == 12 &&
		unsafe.Sizeof(stateRec{}) == FlatStateBytes &&
		unsafe.Offsetof(stateRec{}.arcBegin) == 0 &&
		unsafe.Offsetof(stateRec{}.final) == 4
}

// FlatStatesSize returns the byte length of f's flat state table
// (including the sentinel record).
func FlatStatesSize(f *WFST) int { return (f.NumStates() + 1) * FlatStateBytes }

// FlatArcsSize returns the byte length of f's flat arc table.
func FlatArcsSize(f *WFST) int { return f.NumArcs() * FlatArcBytes }

// WriteFlatStates writes f's state table in the flat layout. The encode is
// explicit little-endian, so bundles written on any host read identically.
func WriteFlatStates(f *WFST, w io.Writer) error {
	var rec [FlatStateBytes]byte
	for _, s := range f.states {
		binary.LittleEndian.PutUint32(rec[0:4], s.arcBegin)
		binary.LittleEndian.PutUint32(rec[4:8], math.Float32bits(float32(s.final)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFlatArcs writes f's arc table in the flat layout.
func WriteFlatArcs(f *WFST, w io.Writer) error {
	// On a little-endian host the in-memory arc array already has the
	// on-disk representation; write it in one call instead of 16 bytes at
	// a time. (Large graphs make this the dominant cost of Save.)
	if hostLittleEndian && layoutMatchesFlat() && len(f.arcs) > 0 {
		buf := unsafe.Slice((*byte)(unsafe.Pointer(&f.arcs[0])), len(f.arcs)*FlatArcBytes)
		_, err := w.Write(buf)
		return err
	}
	var rec [FlatArcBytes]byte
	for _, a := range f.arcs {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(a.In))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(a.Out))
		binary.LittleEndian.PutUint32(rec[8:12], math.Float32bits(float32(a.W)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(a.Next))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// aligned4 reports whether p's backing array starts on a 4-byte boundary
// (the alignment of Arc and stateRec). Bundle sections are 16-byte aligned
// and mmap regions page-aligned, so this only fails for odd caller-built
// buffers, which then take the copying path.
func aligned4(p []byte) bool {
	return len(p) == 0 || uintptr(unsafe.Pointer(&p[0]))%4 == 0
}

// NewFromFlat constructs a WFST over flat state/arc tables. On a
// little-endian host with 4-byte-aligned input the returned transducer
// aliases the provided buffers directly — zero copies, zero per-arc work —
// so the buffers must stay valid and unmodified for the WFST's lifetime
// (a mapped bundle section satisfies both). Other hosts decode a private
// copy.
//
// Construction validates what slicing safety requires and nothing more:
// record sizes, a monotone arcBegin sequence ending exactly at the arc
// count, and the start state range. That is O(states), never O(arcs), which
// is what keeps bundle load time independent of model size. It does NOT
// check arc destinations; run (*WFST).Validate for full structural
// verification of untrusted input.
func NewFromFlat(start StateID, nStates int, states, arcs []byte, inSorted bool) (*WFST, error) {
	if nStates < 0 {
		return nil, fmt.Errorf("wfst: flat state count %d negative", nStates)
	}
	if want := (nStates + 1) * FlatStateBytes; len(states) != want {
		return nil, fmt.Errorf("wfst: flat state table is %d bytes, want %d for %d states", len(states), want, nStates)
	}
	if len(arcs)%FlatArcBytes != 0 {
		return nil, fmt.Errorf("wfst: flat arc table length %d not a multiple of %d", len(arcs), FlatArcBytes)
	}
	nArcs := len(arcs) / FlatArcBytes
	f := &WFST{start: start, inSorted: inSorted}
	if hostLittleEndian && layoutMatchesFlat() && aligned4(states) && aligned4(arcs) {
		f.states = unsafe.Slice((*stateRec)(unsafe.Pointer(&states[0])), nStates+1)
		if nArcs > 0 {
			f.arcs = unsafe.Slice((*Arc)(unsafe.Pointer(&arcs[0])), nArcs)
		}
		f.external = true
	} else {
		f.states = make([]stateRec, nStates+1)
		for i := range f.states {
			off := i * FlatStateBytes
			f.states[i] = stateRec{
				arcBegin: binary.LittleEndian.Uint32(states[off : off+4]),
				final:    semiring.Weight(math.Float32frombits(binary.LittleEndian.Uint32(states[off+4 : off+8]))),
			}
		}
		f.arcs = make([]Arc, nArcs)
		for i := range f.arcs {
			off := i * FlatArcBytes
			f.arcs[i] = Arc{
				In:   int32(binary.LittleEndian.Uint32(arcs[off : off+4])),
				Out:  int32(binary.LittleEndian.Uint32(arcs[off+4 : off+8])),
				W:    semiring.Weight(math.Float32frombits(binary.LittleEndian.Uint32(arcs[off+8 : off+12]))),
				Next: StateID(int32(binary.LittleEndian.Uint32(arcs[off+12 : off+16]))),
			}
		}
	}
	// The O(states) safety pass: every Arcs(s) slice the decoder takes must
	// be in bounds, which holds iff arcBegin is monotone and the sentinel
	// lands exactly on the arc count.
	var prev uint32
	for i, s := range f.states {
		if s.arcBegin < prev {
			return nil, fmt.Errorf("wfst: flat state %d arc offset %d precedes previous %d", i, s.arcBegin, prev)
		}
		prev = s.arcBegin
	}
	if int(prev) != nArcs {
		return nil, fmt.Errorf("wfst: flat sentinel offset %d, want arc count %d", prev, nArcs)
	}
	if nStates == 0 {
		if start != NoState {
			return nil, fmt.Errorf("wfst: flat empty transducer with start %d", start)
		}
	} else if start < 0 || int(start) >= nStates {
		return nil, fmt.Errorf("wfst: flat start state %d out of range [0,%d)", start, nStates)
	}
	return f, nil
}
