package wfst

import (
	"fmt"

	"repro/internal/semiring"
)

// maxBackoffChain bounds the number of back-off hops ResolveWord will take.
// A well-formed trigram LM needs at most 2 (trigram→bigram→unigram); the
// bound exists only to turn a malformed cyclic graph into an error.
const maxBackoffChain = 8

// BackoffArc returns s's back-off arc: the input-epsilon arc taken when a
// word has no explicit n-gram arc at s. Arc lists are input-sorted, so the
// back-off arc, when present, is the first arc. The unigram state has no
// back-off arc.
func (f *WFST) BackoffArc(s StateID) (Arc, bool) {
	arcs := f.Arcs(s)
	if len(arcs) > 0 && arcs[0].In == Epsilon {
		return arcs[0], true
	}
	return Arc{}, false
}

// ResolveWord finds the language-model transition for word out of state s,
// applying the back-off mechanism of Section 3.3: if s has no arc labelled
// word, the back-off arc's weight is accumulated and the search restarts at
// the back-off state, bottoming out at the unigram state where every word
// has an arc.
//
// It returns the destination state, the total weight (back-off penalties
// plus the matched arc's weight), and the number of back-off hops taken.
// ok is false only for a malformed model (no match and no back-off arc).
func (f *WFST) ResolveWord(s StateID, word int32) (next StateID, w semiring.Weight, hops int, ok bool) {
	w = semiring.One
	for hops = 0; hops <= maxBackoffChain; hops++ {
		if idx, found := f.FindArc(s, word, nil); found {
			a := f.Arcs(s)[idx]
			return a.Next, semiring.Times(w, a.W), hops, true
		}
		bo, has := f.BackoffArc(s)
		if !has {
			return NoState, semiring.Zero, hops, false
		}
		w = semiring.Times(w, bo.W)
		s = bo.Next
	}
	return NoState, semiring.Zero, hops, false
}

// ComposeOptions controls offline composition.
type ComposeOptions struct {
	// MaxStates aborts the composition when the result would exceed this
	// many states; 0 means no limit. Offline composition is exactly the
	// multiplicative blow-up the paper measures, so large tasks need a guard.
	MaxStates int
	// KeepUnconnected skips the final Connect pass (useful in tests).
	KeepUnconnected bool
}

// Compose performs the offline AM∘LM composition that produces the paper's
// "fully-composed" WFST (Section 2). The left operand is an acoustic model
// whose arc output labels are word IDs (Epsilon for word-internal arcs);
// the right operand is a back-off language model with input-sorted arcs.
//
// Word-internal AM arcs advance only the AM side. Cross-word AM arcs
// (non-epsilon output) additionally take the LM transition for that word,
// following back-off arcs exactly as the on-the-fly decoder would, so the
// two decoding strategies explore identical search spaces.
func Compose(am, lm *WFST, opts ComposeOptions) (*WFST, error) {
	if !lm.InSorted() {
		return nil, fmt.Errorf("wfst: Compose requires an input-sorted LM")
	}
	if am.Start() == NoState || lm.Start() == NoState {
		return NewBuilder().Build()
	}

	type pair = uint64
	key := func(a, l StateID) pair { return uint64(uint32(a))<<32 | uint64(uint32(l)) }

	b := NewBuilder()
	ids := make(map[pair]StateID)
	var queue []pair

	intern := func(a, l StateID) (StateID, error) {
		k := key(a, l)
		if id, seen := ids[k]; seen {
			return id, nil
		}
		if opts.MaxStates > 0 && len(ids) >= opts.MaxStates {
			return NoState, fmt.Errorf("wfst: composition exceeds %d states", opts.MaxStates)
		}
		id := b.AddState()
		ids[k] = id
		queue = append(queue, k)
		// Composed finality: both components must accept.
		fa, fl := am.Final(a), lm.Final(l)
		if !semiring.IsZero(fa) && !semiring.IsZero(fl) {
			b.SetFinal(id, semiring.Times(fa, fl))
		}
		return id, nil
	}

	startID, err := intern(am.Start(), lm.Start())
	if err != nil {
		return nil, err
	}
	b.SetStart(startID)

	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		a, l := StateID(k>>32), StateID(uint32(k))
		src := ids[k]
		for _, arc := range am.Arcs(a) {
			if arc.Out == Epsilon {
				dst, err := intern(arc.Next, l)
				if err != nil {
					return nil, err
				}
				b.AddArc(src, Arc{In: arc.In, Out: Epsilon, W: arc.W, Next: dst})
				continue
			}
			lmNext, lmW, _, ok := lm.ResolveWord(l, arc.Out)
			if !ok {
				return nil, fmt.Errorf("wfst: LM cannot resolve word %d from state %d", arc.Out, l)
			}
			dst, err := intern(arc.Next, lmNext)
			if err != nil {
				return nil, err
			}
			b.AddArc(src, Arc{In: arc.In, Out: arc.Out, W: semiring.Times(arc.W, lmW), Next: dst})
		}
	}

	f, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !opts.KeepUnconnected {
		f = Connect(f)
	}
	return f, nil
}
