package wfst

import (
	"bytes"
	"testing"

	"repro/internal/semiring"
)

// flatFixture builds a small transducer with every record feature the flat
// layout must carry: multiple finals, an epsilon arc, weight variety, and a
// state with no arcs.
func flatFixture(t *testing.T) *WFST {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddState()
	}
	b.SetStart(0)
	b.SetFinal(2, 0.25)
	b.SetFinal(3, 0)
	b.AddArc(0, Arc{In: 1, Out: 2, W: 0.5, Next: 1})
	b.AddArc(0, Arc{In: 3, Out: Epsilon, W: 1.5, Next: 2})
	b.AddArc(1, Arc{In: Epsilon, Out: Epsilon, W: 0, Next: 3})
	b.AddArc(3, Arc{In: 2, Out: 2, W: -0.75, Next: 2})
	return b.MustBuild()
}

func flatEncode(t *testing.T, f *WFST) (states, arcs []byte) {
	t.Helper()
	var sb, ab bytes.Buffer
	if err := WriteFlatStates(f, &sb); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlatArcs(f, &ab); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != FlatStatesSize(f) || ab.Len() != FlatArcsSize(f) {
		t.Fatalf("flat sizes %d/%d, want %d/%d", sb.Len(), ab.Len(), FlatStatesSize(f), FlatArcsSize(f))
	}
	return sb.Bytes(), arcsAligned(ab.Bytes())
}

// arcsAligned copies b into a fresh allocation, which Go aligns to at least
// 8 bytes — the test equivalent of a 16-byte-aligned bundle section.
func arcsAligned(b []byte) []byte { return append([]byte(nil), b...) }

func TestFlatRoundTrip(t *testing.T) {
	f := flatFixture(t)
	f.SortByInput()
	states, arcs := flatEncode(t, f)
	g, err := NewFromFlat(f.Start(), f.NumStates(), states, arcs, f.InSorted())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(f, g) {
		t.Fatal("flat round trip changed the transducer")
	}
	if !g.InSorted() {
		t.Fatal("inSorted flag lost")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if semiring.IsZero(g.Final(2)) || !g.IsFinal(3) {
		t.Fatal("final weights lost")
	}
}

func TestFlatRoundTripEmpty(t *testing.T) {
	f := NewBuilder().MustBuild()
	states, arcs := flatEncode(t, f)
	g, err := NewFromFlat(NoState, 0, states, arcs, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty round trip: %d states %d arcs", g.NumStates(), g.NumArcs())
	}
}

// TestFlatZeroCopyAliases proves the decode-on-access property: on a
// little-endian host the constructed WFST reads through the caller's
// buffer, so a byte change in the buffer is visible through Arcs without
// any reload.
func TestFlatZeroCopyAliases(t *testing.T) {
	if !hostLittleEndian || !layoutMatchesFlat() {
		t.Skip("zero-copy path needs a little-endian host with matching layout")
	}
	f := flatFixture(t)
	states, arcs := flatEncode(t, f)
	g, err := NewFromFlat(f.Start(), f.NumStates(), states, arcs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.external {
		t.Fatal("expected aliasing construction on this host")
	}
	before := g.Arcs(0)[0].In
	arcs[0] ^= 1 // flip the low bit of arc 0's input label in the raw bytes
	if after := g.Arcs(0)[0].In; after == before {
		t.Fatal("WFST did not alias the flat buffer")
	}
}

// TestFlatSortCopiesExternal verifies the copy-on-write guard: sorting a
// transducer that aliases external memory must not write through it.
func TestFlatSortCopiesExternal(t *testing.T) {
	f := flatFixture(t)
	states, arcs := flatEncode(t, f)
	orig := append([]byte(nil), arcs...)
	g, err := NewFromFlat(f.Start(), f.NumStates(), states, arcs, false)
	if err != nil {
		t.Fatal(err)
	}
	g.SortByInput()
	if !bytes.Equal(arcs, orig) {
		t.Fatal("SortByInput mutated the external buffer")
	}
	if _, ok := g.FindArc(0, 3, nil); !ok {
		t.Fatal("sorted copy lost arcs")
	}
}

func TestFlatRejectsCorruptTables(t *testing.T) {
	f := flatFixture(t)
	states, arcs := flatEncode(t, f)

	cases := []struct {
		name string
		run  func() error
	}{
		{"short state table", func() error {
			_, err := NewFromFlat(0, f.NumStates(), states[:len(states)-1], arcs, false)
			return err
		}},
		{"ragged arc table", func() error {
			_, err := NewFromFlat(0, f.NumStates(), states, arcs[:len(arcs)-3], false)
			return err
		}},
		{"non-monotone offsets", func() error {
			bad := append([]byte(nil), states...)
			bad[2*FlatStateBytes] = 0xFF // state 2's arcBegin jumps past the sentinel
			_, err := NewFromFlat(0, f.NumStates(), bad, arcs, false)
			return err
		}},
		{"sentinel mismatch", func() error {
			_, err := NewFromFlat(0, f.NumStates(), states, append(arcsAligned(arcs), make([]byte, FlatArcBytes)...), false)
			return err
		}},
		{"start out of range", func() error {
			_, err := NewFromFlat(StateID(f.NumStates()), f.NumStates(), states, arcs, false)
			return err
		}},
		{"negative state count", func() error {
			_, err := NewFromFlat(0, -1, nil, nil, false)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
