package wfst

import (
	"fmt"

	"repro/internal/semiring"
)

// Builder constructs a WFST incrementally. States are created with AddState
// and arcs appended with AddArc; Build freezes the result into CSR form.
// The zero value is an empty builder ready for use.
type Builder struct {
	start  StateID
	arcs   [][]Arc
	finals []semiring.Weight
	narcs  int
	init   bool
}

// NewBuilder returns an empty builder with no states.
func NewBuilder() *Builder {
	return &Builder{start: NoState}
}

// AddState appends a new non-final state and returns its ID.
func (b *Builder) AddState() StateID {
	if !b.init {
		b.start = NoState
		b.init = true
	}
	id := StateID(len(b.arcs))
	b.arcs = append(b.arcs, nil)
	b.finals = append(b.finals, semiring.Zero)
	return id
}

// NumStates returns the number of states added so far.
func (b *Builder) NumStates() int { return len(b.arcs) }

// SetStart marks s as the initial state.
func (b *Builder) SetStart(s StateID) { b.start = s; b.init = true }

// SetFinal marks s as accepting with exit weight w.
func (b *Builder) SetFinal(s StateID, w semiring.Weight) { b.finals[s] = w }

// AddArc appends an outgoing arc to state s.
func (b *Builder) AddArc(s StateID, a Arc) {
	b.arcs[s] = append(b.arcs[s], a)
	b.narcs++
}

// Build freezes the builder into an immutable WFST and validates it.
// The builder must not be reused afterwards.
func (b *Builder) Build() (*WFST, error) {
	f := &WFST{
		start:  b.start,
		states: make([]stateRec, len(b.arcs)+1),
		arcs:   make([]Arc, 0, b.narcs),
	}
	for s, arcs := range b.arcs {
		f.states[s] = stateRec{arcBegin: uint32(len(f.arcs)), final: b.finals[s]}
		f.arcs = append(f.arcs, arcs...)
	}
	f.states[len(b.arcs)] = stateRec{arcBegin: uint32(len(f.arcs)), final: semiring.Zero}
	if len(b.arcs) > 0 && (b.start < 0 || int(b.start) >= len(b.arcs)) {
		return nil, fmt.Errorf("wfst: builder has %d states but start is %d", len(b.arcs), b.start)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustBuild is Build for construction code where a failure is a programming
// error (e.g. tests and generators with known-valid inputs).
func (b *Builder) MustBuild() *WFST {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}
