package wfst

import "fmt"

// Stats summarizes a transducer's shape; the experiment harness prints these
// for Table 1 / Figure 8 style size reporting.
type Stats struct {
	States        int
	Arcs          int
	Finals        int
	EpsInArcs     int   // arcs consuming no input symbol (back-off / word-loop arcs)
	CrossWordArcs int   // arcs with a non-epsilon output label
	MaxFanOut     int   // largest outgoing arc count of any state
	SizeBytes     int64 // footprint under the paper's uncompressed layout
}

// ComputeStats scans f once and returns its summary statistics.
func ComputeStats(f *WFST) Stats {
	st := Stats{States: f.NumStates(), Arcs: f.NumArcs(), SizeBytes: f.SizeBytes()}
	for s := StateID(0); int(s) < f.NumStates(); s++ {
		arcs := f.Arcs(s)
		if len(arcs) > st.MaxFanOut {
			st.MaxFanOut = len(arcs)
		}
		if f.IsFinal(s) {
			st.Finals++
		}
		for _, a := range arcs {
			if a.In == Epsilon {
				st.EpsInArcs++
			}
			if a.Out != Epsilon {
				st.CrossWordArcs++
			}
		}
	}
	return st
}

// AvgFanOut returns the mean number of outgoing arcs per state.
func (s Stats) AvgFanOut() float64 {
	if s.States == 0 {
		return 0
	}
	return float64(s.Arcs) / float64(s.States)
}

// String renders the stats on one line for logs and CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("states=%d arcs=%d finals=%d epsIn=%d crossWord=%d maxFan=%d avgFan=%.2f size=%s",
		s.States, s.Arcs, s.Finals, s.EpsInArcs, s.CrossWordArcs, s.MaxFanOut, s.AvgFanOut(), FormatBytes(s.SizeBytes))
}

// FormatBytes renders n in human units (B, KB, MB, GB) with two decimals,
// using 1 MB = 2^20 bytes as the paper's tables do.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
