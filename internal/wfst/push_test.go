package wfst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

func TestShortestDistanceSimpleChain(t *testing.T) {
	b := NewBuilder()
	s0, s1, s2 := b.AddState(), b.AddState(), b.AddState()
	b.SetStart(s0)
	b.AddArc(s0, Arc{In: 1, W: 1.0, Next: s1})
	b.AddArc(s1, Arc{In: 2, W: 2.0, Next: s2})
	b.SetFinal(s2, 0.5)
	g := b.MustBuild()
	d := ShortestDistanceToFinal(g)
	for i, want := range []semiring.Weight{3.5, 2.5, 0.5} {
		if !semiring.ApproxEqual(d[i], want, 1e-6) {
			t.Errorf("dist[%d] = %v, want %v", i, d[i], want)
		}
	}
}

func TestShortestDistancePicksCheaperBranch(t *testing.T) {
	b := NewBuilder()
	s0, s1, s2, f := b.AddState(), b.AddState(), b.AddState(), b.AddState()
	b.SetStart(s0)
	b.AddArc(s0, Arc{In: 1, W: 5, Next: s1})
	b.AddArc(s0, Arc{In: 2, W: 1, Next: s2})
	b.AddArc(s1, Arc{In: 3, W: 1, Next: f})
	b.AddArc(s2, Arc{In: 3, W: 2, Next: f})
	b.SetFinal(f, semiring.One)
	g := b.MustBuild()
	d := ShortestDistanceToFinal(g)
	if !semiring.ApproxEqual(d[s0], 3, 1e-6) {
		t.Errorf("dist[start] = %v, want 3 (via the cheap branch)", d[s0])
	}
}

func TestShortestDistanceUnreachable(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddState()
	b.AddState() // no path to a final state
	b.SetStart(s0)
	b.SetFinal(s0, semiring.One)
	d := ShortestDistanceToFinal(b.MustBuild())
	if !semiring.IsZero(d[1]) {
		t.Errorf("unreachable state distance %v, want Zero", d[1])
	}
}

// Property: pushing preserves every complete path cost up to the returned
// residual constant.
func TestPushWeightsPreservesPathCosts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Connect(randomWFST(rng, rng.Intn(15)+3, 3))
		if g.NumStates() == 0 {
			return true
		}
		pushed, residual := PushWeights(g)
		if pushed.Validate() != nil {
			return false
		}
		// Compare min path costs over bounded-length paths.
		orig := enumerate(g, 8)
		got := enumerate(pushed, 8)
		if len(orig) != len(got) {
			return false
		}
		for k, w := range orig {
			gw, ok := got[k]
			if !ok || !semiring.ApproxEqual(semiring.Times(gw, residual), w, 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// After pushing, the best completion from any co-accessible state costs
// ~zero (all weight has moved forward) — the property that helps
// minimization merge suffixes.
func TestPushWeightsNormalizesCompletions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Connect(randomWFST(rng, 20, 3))
	if g.NumStates() == 0 {
		t.Skip("degenerate random machine")
	}
	pushed, _ := PushWeights(g)
	d := ShortestDistanceToFinal(pushed)
	for s, w := range d {
		if semiring.IsZero(w) {
			continue
		}
		if !semiring.ApproxEqual(w, semiring.One, 1e-4) {
			t.Fatalf("state %d completion cost %v after pushing", s, w)
		}
	}
}

// Pushing before minimization should never hurt and often helps merging.
func TestPushThenMinimize(t *testing.T) {
	b := NewBuilder()
	start := b.AddState()
	b.SetStart(start)
	final := b.AddState()
	b.SetFinal(final, semiring.One)
	// Two chains identical except where the weight sits: unpushed, they
	// cannot merge; pushed, they can.
	c1a, c1b := b.AddState(), b.AddState()
	b.AddArc(start, Arc{In: 1, W: 3, Next: c1a})
	b.AddArc(c1a, Arc{In: 5, W: 0, Next: c1b})
	b.AddArc(c1b, Arc{In: 6, W: 0, Next: final})
	c2a, c2b := b.AddState(), b.AddState()
	b.AddArc(start, Arc{In: 2, W: 0, Next: c2a})
	b.AddArc(c2a, Arc{In: 5, W: 0, Next: c2b})
	b.AddArc(c2b, Arc{In: 6, W: 3, Next: final})
	g := b.MustBuild()

	plain := Minimize(g)
	pushed, _ := PushWeights(g)
	both := Minimize(pushed)
	if both.NumStates() >= plain.NumStates() {
		t.Errorf("push+minimize %d states, minimize alone %d — pushing did not help",
			both.NumStates(), plain.NumStates())
	}
}
