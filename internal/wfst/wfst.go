// Package wfst implements Weighted Finite State Transducers for speech
// recognition: an immutable compressed-sparse-row container, a mutable
// builder, label-sorted arc lookup, connectivity trimming, the offline
// AM∘LM composition the paper's baseline decodes over, and a binary
// serialization whose record sizes match the paper's memory layout
// (128-bit arcs, 64-bit state records, per Section 3.4 and [3]).
package wfst

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// StateID identifies a state within one WFST.
type StateID int32

// NoState is the invalid state sentinel.
const NoState StateID = -1

// Epsilon is the reserved label meaning "no symbol": an epsilon input label
// consumes no acoustic frame, an epsilon output label emits no word.
const Epsilon int32 = 0

// Arc is one weighted transition. In an acoustic-model WFST In is a senone
// (HMM-state) index and Out is a word ID (or Epsilon); in a language-model
// WFST In and Out are the same word ID, and back-off arcs carry Epsilon.
type Arc struct {
	In   int32
	Out  int32
	W    semiring.Weight
	Next StateID
}

// stateRec is the per-state CSR record: the index of the state's first arc
// (arcs of one state are contiguous) plus its final weight.
type stateRec struct {
	arcBegin uint32
	final    semiring.Weight
}

// WFST is an immutable transducer in compressed-sparse-row form.
// Construct one with a Builder, Compose, or ReadFrom.
type WFST struct {
	start  StateID
	states []stateRec // len = NumStates()+1; last entry is the arc sentinel
	arcs   []Arc
	// inSorted records that every state's arcs are sorted by input label,
	// which FindArc relies on.
	inSorted bool
	// external marks a transducer whose states/arcs slices alias memory the
	// WFST does not own (a mapped model-store section, see NewFromFlat).
	// Such memory may be read-only, so mutating operations must copy first.
	external bool
}

// Start returns the initial state, or NoState for an empty transducer.
func (f *WFST) Start() StateID { return f.start }

// NumStates returns the number of states.
func (f *WFST) NumStates() int { return len(f.states) - 1 }

// NumArcs returns the total number of arcs.
func (f *WFST) NumArcs() int { return len(f.arcs) }

// Arcs returns the outgoing arcs of s as a read-only slice view.
func (f *WFST) Arcs(s StateID) []Arc {
	return f.arcs[f.states[s].arcBegin:f.states[s+1].arcBegin]
}

// ArcIndexBase returns the index of state s's first arc within the global
// arc array. The accelerator simulator uses it to derive memory addresses.
func (f *WFST) ArcIndexBase(s StateID) uint32 { return f.states[s].arcBegin }

// Final returns the final (exit) weight of s; semiring.Zero if s is not final.
func (f *WFST) Final(s StateID) semiring.Weight { return f.states[s].final }

// IsFinal reports whether s is an accepting state.
func (f *WFST) IsFinal(s StateID) bool { return !semiring.IsZero(f.states[s].final) }

// InSorted reports whether all arc lists are sorted by input label.
func (f *WFST) InSorted() bool { return f.inSorted }

// SortByInput sorts every state's arcs by input label (ties by output label,
// then destination). Epsilon (0) sorts first. Binary-search lookup and the
// packed LM encoding both require this ordering.
func (f *WFST) SortByInput() {
	if f.external {
		// Aliased (possibly read-only mapped) storage: writing through it
		// would fault or corrupt the shared bundle. Sort a private copy.
		f.states = append([]stateRec(nil), f.states...)
		f.arcs = append([]Arc(nil), f.arcs...)
		f.external = false
	}
	for s := StateID(0); int(s) < f.NumStates(); s++ {
		arcs := f.arcs[f.states[s].arcBegin:f.states[s+1].arcBegin]
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i].In != arcs[j].In {
				return arcs[i].In < arcs[j].In
			}
			if arcs[i].Out != arcs[j].Out {
				return arcs[i].Out < arcs[j].Out
			}
			return arcs[i].Next < arcs[j].Next
		})
	}
	f.inSorted = true
}

// FindArc locates the outgoing arc of s whose input label is in, using
// binary search over the input-sorted arc list. It returns the arc's index
// within Arcs(s) and true, or -1 and false when s has no such arc (the
// caller then follows the state's back-off arc, if any).
//
// Probes counts the number of binary-search probes performed, mirroring the
// memory fetches the hardware Arc Issuer would issue; pass nil to ignore it.
func (f *WFST) FindArc(s StateID, in int32, probes *int) (int, bool) {
	if !f.inSorted {
		panic("wfst: FindArc on transducer without SortByInput")
	}
	arcs := f.Arcs(s)
	lo, hi := 0, len(arcs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if probes != nil {
			*probes++
		}
		switch {
		case arcs[mid].In == in:
			// Rewind to the first arc with this label so multiple
			// pronunciations/alternatives are all visible to the caller.
			for mid > 0 && arcs[mid-1].In == in {
				mid--
				if probes != nil {
					*probes++
				}
			}
			return mid, true
		case arcs[mid].In < in:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1, false
}

// FindArcLinear is the linear-scan variant of FindArc, kept as the ablation
// baseline the paper reports as a 10x slowdown.
func (f *WFST) FindArcLinear(s StateID, in int32, probes *int) (int, bool) {
	arcs := f.Arcs(s)
	for i := range arcs {
		if probes != nil {
			*probes++
		}
		if arcs[i].In == in {
			return i, true
		}
		if f.inSorted && arcs[i].In > in {
			return -1, false
		}
	}
	return -1, false
}

// Paper memory-layout record sizes (Section 3.4 and [3]): each arc is a
// 128-bit structure (destination, input label, output label, weight — 32
// bits each); each state record packs the first-arc address and arc count
// into 64 bits using the bandwidth-reduction scheme of [34].
const (
	ArcBytes   = 16
	StateBytes = 8
)

// SizeBytes returns the storage footprint of the transducer under the
// paper's uncompressed memory layout. This is the quantity Table 1 and
// Figure 8 report, not Go's in-memory size.
func (f *WFST) SizeBytes() int64 {
	return int64(f.NumArcs())*ArcBytes + int64(f.NumStates())*StateBytes
}

// Validate checks structural invariants: a valid start state, in-range arc
// destinations and non-negative labels. It returns the first violation found.
func (f *WFST) Validate() error {
	n := StateID(f.NumStates())
	if n == 0 {
		if f.start != NoState {
			return fmt.Errorf("wfst: empty transducer with start %d", f.start)
		}
		return nil
	}
	if f.start < 0 || f.start >= n {
		return fmt.Errorf("wfst: start state %d out of range [0,%d)", f.start, n)
	}
	for s := StateID(0); s < n; s++ {
		if f.states[s].arcBegin > f.states[s+1].arcBegin {
			return fmt.Errorf("wfst: state %d has negative arc range", s)
		}
		for i, a := range f.Arcs(s) {
			if a.Next < 0 || a.Next >= n {
				return fmt.Errorf("wfst: state %d arc %d: destination %d out of range", s, i, a.Next)
			}
			if a.In < 0 || a.Out < 0 {
				return fmt.Errorf("wfst: state %d arc %d: negative label", s, i)
			}
		}
	}
	return nil
}

// Equal reports whether two transducers are structurally identical
// (same start, finals, and arc lists in the same order).
func Equal(a, b *WFST) bool {
	if a.start != b.start || a.NumStates() != b.NumStates() || a.NumArcs() != b.NumArcs() {
		return false
	}
	for s := StateID(0); int(s) < a.NumStates(); s++ {
		if a.states[s] != b.states[s] {
			return false
		}
	}
	for i := range a.arcs {
		if a.arcs[i] != b.arcs[i] {
			return false
		}
	}
	return true
}
