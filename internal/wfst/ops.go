package wfst

import "repro/internal/semiring"

// Invert swaps input and output labels: Invert(T) maps y to x with the same
// weight wherever T maps x to y. A standard transducer operation (the AM's
// inverse maps word sequences to senone sequences, useful for forced
// alignment).
func Invert(f *WFST) *WFST {
	b := NewBuilder()
	for i := 0; i < f.NumStates(); i++ {
		b.AddState()
	}
	if f.Start() == NoState {
		return b.MustBuild()
	}
	b.SetStart(f.Start())
	for s := StateID(0); int(s) < f.NumStates(); s++ {
		if fw := f.Final(s); !semiring.IsZero(fw) {
			b.SetFinal(s, fw)
		}
		for _, a := range f.Arcs(s) {
			b.AddArc(s, Arc{In: a.Out, Out: a.In, W: a.W, Next: a.Next})
		}
	}
	return b.MustBuild()
}

// ProjectSide selects which labels Project keeps.
type ProjectSide int

const (
	// ProjectInput keeps input labels on both sides (an acceptor of the
	// input language).
	ProjectInput ProjectSide = iota
	// ProjectOutput keeps output labels on both sides.
	ProjectOutput
)

// Project turns a transducer into an acceptor of its input or output
// language.
func Project(f *WFST, side ProjectSide) *WFST {
	b := NewBuilder()
	for i := 0; i < f.NumStates(); i++ {
		b.AddState()
	}
	if f.Start() == NoState {
		return b.MustBuild()
	}
	b.SetStart(f.Start())
	for s := StateID(0); int(s) < f.NumStates(); s++ {
		if fw := f.Final(s); !semiring.IsZero(fw) {
			b.SetFinal(s, fw)
		}
		for _, a := range f.Arcs(s) {
			l := a.In
			if side == ProjectOutput {
				l = a.Out
			}
			b.AddArc(s, Arc{In: l, Out: l, W: a.W, Next: a.Next})
		}
	}
	return b.MustBuild()
}

// RmEpsilon removes arcs whose input AND output are both epsilon by
// folding their tropical epsilon-closure into the remaining arcs and final
// weights. Arcs carrying a label on either side are kept. The result
// accepts the same weighted relation (minimum over paths) as the input.
//
// The closure is computed per state with a Dijkstra-style relaxation, so
// epsilon cycles (which cannot improve a tropical minimum when
// non-negative; negative epsilon cycles would diverge and are rejected by
// ASR graph construction) terminate correctly.
func RmEpsilon(f *WFST) *WFST {
	n := f.NumStates()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddState()
	}
	if f.Start() == NoState {
		return b.MustBuild()
	}
	b.SetStart(f.Start())

	for s := StateID(0); int(s) < n; s++ {
		// Epsilon-closure distances from s.
		dist := map[StateID]semiring.Weight{s: semiring.One}
		queue := []StateID{s}
		for len(queue) > 0 {
			q := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, a := range f.Arcs(q) {
				if a.In != Epsilon || a.Out != Epsilon {
					continue
				}
				nd := semiring.Times(dist[q], a.W)
				if old, ok := dist[a.Next]; !ok || nd < old {
					dist[a.Next] = nd
					queue = append(queue, a.Next)
				}
			}
		}
		final := f.Final(s)
		// Emit the non-epsilon arcs reachable through the closure, and fold
		// closure-reachable final weights.
		type emitted struct {
			in, out int32
			next    StateID
		}
		best := map[emitted]semiring.Weight{}
		for q, d := range dist {
			if fw := f.Final(q); !semiring.IsZero(fw) {
				if c := semiring.Times(d, fw); c < final {
					final = c
				}
			}
			for _, a := range f.Arcs(q) {
				if a.In == Epsilon && a.Out == Epsilon {
					continue
				}
				k := emitted{a.In, a.Out, a.Next}
				w := semiring.Times(d, a.W)
				if old, ok := best[k]; !ok || w < old {
					best[k] = w
				}
			}
		}
		for k, w := range best {
			b.AddArc(s, Arc{In: k.in, Out: k.out, W: w, Next: k.next})
		}
		if !semiring.IsZero(final) {
			b.SetFinal(s, final)
		}
	}
	out := b.MustBuild()
	return Connect(out)
}
