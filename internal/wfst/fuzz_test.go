package wfst

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzRead checks the binary parser never panics and either round-trips or
// errors on corrupted input.
func FuzzRead(f *testing.F) {
	// Seed with valid serializations and corruptions of them.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		g := randomWFST(rng, rng.Intn(8)+1, 3)
		var buf bytes.Buffer
		if err := Write(g, &buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A truncated and a bit-flipped variant.
		b := buf.Bytes()
		f.Add(b[:len(b)/2])
		if len(b) > 20 {
			c := append([]byte{}, b...)
			c[17] ^= 0xFF
			f.Add(c)
		}
	}
	f.Add([]byte("WFST garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be a structurally valid machine.
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid machine: %v", verr)
		}
	})
}
