package wfst

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzRead checks the binary parser never panics and either round-trips or
// errors on corrupted input.
func FuzzRead(f *testing.F) {
	// Seed with valid serializations and corruptions of them.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		g := randomWFST(rng, rng.Intn(8)+1, 3)
		var buf bytes.Buffer
		if err := Write(g, &buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A truncated and a bit-flipped variant.
		b := buf.Bytes()
		f.Add(b[:len(b)/2])
		if len(b) > 20 {
			c := append([]byte{}, b...)
			c[17] ^= 0xFF
			f.Add(c)
		}
	}
	// Systematic truncations of one serialization: every prefix around the
	// header, plus cuts landing inside the state table and the arc records —
	// the boundaries where a length-prefixed reader is most likely to trust a
	// count it has not yet verified against the remaining bytes.
	g := randomWFST(rng, 12, 4)
	var buf bytes.Buffer
	if err := Write(g, &buf); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut <= 32 && cut < len(full); cut++ {
		f.Add(full[:cut])
	}
	for _, frac := range []int{3, 4, 5, 8} {
		f.Add(full[:len(full)-len(full)/frac])
		f.Add(full[:len(full)-1])
	}
	f.Add([]byte("WFST garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be a structurally valid machine.
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid machine: %v", verr)
		}
	})
}
