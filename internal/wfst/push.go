package wfst

import (
	"container/heap"

	"repro/internal/semiring"
)

// ShortestDistanceToFinal returns, per state, the tropical shortest
// distance to any final state (including the final weight); unreachable
// states get semiring.Zero. Dijkstra over the reversed graph — weights are
// non-negative in ASR graphs, but negative arcs (which normalized back-off
// models can produce) are handled by allowing re-expansion.
func ShortestDistanceToFinal(f *WFST) []semiring.Weight {
	n := f.NumStates()
	dist := make([]semiring.Weight, n)
	for i := range dist {
		dist[i] = semiring.Zero
	}
	// Reverse adjacency.
	type rarc struct {
		src StateID
		w   semiring.Weight
	}
	rev := make([][]rarc, n)
	for s := StateID(0); int(s) < n; s++ {
		for _, a := range f.Arcs(s) {
			rev[a.Next] = append(rev[a.Next], rarc{s, a.W})
		}
	}
	pq := &weightHeap{}
	for s := StateID(0); int(s) < n; s++ {
		if fw := f.Final(s); !semiring.IsZero(fw) {
			dist[s] = fw
			heap.Push(pq, weightItem{s, fw})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(weightItem)
		if it.w > dist[it.s] {
			continue // stale entry
		}
		for _, ra := range rev[it.s] {
			nd := semiring.Times(ra.w, it.w)
			if nd < dist[ra.src] {
				dist[ra.src] = nd
				heap.Push(pq, weightItem{ra.src, nd})
			}
		}
	}
	return dist
}

type weightItem struct {
	s StateID
	w semiring.Weight
}

// weightHeap is the min-heap of (state, distance) items driving the
// Dijkstra-style shortest-distance pass; the exported methods below are the
// container/heap.Interface contract.
type weightHeap []weightItem

// Len reports the heap size (heap.Interface).
func (h weightHeap) Len() int { return len(h) }

// Less orders items by ascending weight (heap.Interface).
func (h weightHeap) Less(i, j int) bool { return h[i].w < h[j].w }

// Swap exchanges two items (heap.Interface).
func (h weightHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push appends an item (heap.Interface; use heap.Push).
func (h *weightHeap) Push(x interface{}) { *h = append(*h, x.(weightItem)) }

// Pop removes and returns the last item (heap.Interface; use heap.Pop).
func (h *weightHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PushWeights reweights the machine toward the initial state: every arc
// gets w' = w ⊗ d(next) ⊘ d(state), finals get f' = f ⊘ d(state), and the
// residual d(start) is returned separately (callers add it to any total
// path cost; it is a constant for all paths, so Viterbi comparisons are
// unaffected). Path costs are preserved exactly up to that constant —
// the precondition that makes pushed machines minimize better, which is
// one of the two optimizations (with determinization) behind Kaldi's
// compact HCLG graphs.
//
// States unreachable from a final state keep their arcs unchanged.
func PushWeights(f *WFST) (*WFST, semiring.Weight) {
	dist := ShortestDistanceToFinal(f)
	n := f.NumStates()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddState()
	}
	if n == 0 {
		out, _ := b.Build()
		return out, semiring.One
	}
	b.SetStart(f.Start())
	for s := StateID(0); int(s) < n; s++ {
		ds := dist[s]
		for _, a := range f.Arcs(s) {
			w := a.W
			if !semiring.IsZero(ds) && !semiring.IsZero(dist[a.Next]) {
				w = a.W + dist[a.Next] - ds
			}
			b.AddArc(s, Arc{In: a.In, Out: a.Out, W: w, Next: a.Next})
		}
		if fw := f.Final(s); !semiring.IsZero(fw) {
			nf := fw
			if !semiring.IsZero(ds) {
				nf = fw - ds
			}
			b.SetFinal(s, nf)
		}
	}
	out := b.MustBuild()
	if f.InSorted() {
		out.SortByInput()
	}
	residual := dist[f.Start()]
	if semiring.IsZero(residual) {
		residual = semiring.One
	}
	return out, residual
}
