package wfst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

// buildDuplicateChains makes a machine with two structurally identical
// branches that Minimize must fold together.
func buildDuplicateChains(t testing.TB) *WFST {
	t.Helper()
	b := NewBuilder()
	start := b.AddState()
	b.SetStart(start)
	final := b.AddState()
	b.SetFinal(final, semiring.One)
	// Two identical chains 1->2->final reachable via different first labels.
	for _, first := range []int32{1, 2} {
		s1 := b.AddState()
		s2 := b.AddState()
		b.AddArc(start, Arc{In: first, Out: 0, W: 0.5, Next: s1})
		b.AddArc(s1, Arc{In: 7, Out: 0, W: 0.25, Next: s2})
		b.AddArc(s2, Arc{In: 8, Out: 3, W: 0.125, Next: final})
	}
	return b.MustBuild()
}

func TestMinimizeFoldsDuplicates(t *testing.T) {
	g := buildDuplicateChains(t)
	m := Minimize(g)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 6 states fold to 4: start, shared s1, shared s2, final.
	if m.NumStates() != 4 {
		t.Fatalf("minimized to %d states, want 4", m.NumStates())
	}
	if m.NumArcs() != 4 {
		t.Fatalf("minimized to %d arcs, want 4", m.NumArcs())
	}
}

// pathCost walks a deterministic machine on an input string.
func pathCost(g *WFST, input []int32) (semiring.Weight, bool) {
	s := g.Start()
	cost := semiring.One
	for _, in := range input {
		found := false
		for _, a := range g.Arcs(s) {
			if a.In == in {
				cost = semiring.Times(cost, a.W)
				s = a.Next
				found = true
				break
			}
		}
		if !found {
			return semiring.Zero, false
		}
	}
	if !g.IsFinal(s) {
		return semiring.Zero, false
	}
	return semiring.Times(cost, g.Final(s)), true
}

func TestMinimizePreservesLanguage(t *testing.T) {
	g := buildDuplicateChains(t)
	m := Minimize(g)
	for _, input := range [][]int32{{1, 7, 8}, {2, 7, 8}, {1, 8, 7}, {1, 7}, {}} {
		cg, okG := pathCost(g, input)
		cm, okM := pathCost(m, input)
		if okG != okM || (okG && !semiring.ApproxEqual(cg, cm, 1e-6)) {
			t.Errorf("input %v: original (%v,%v) vs minimized (%v,%v)", input, cg, okG, cm, okM)
		}
	}
}

func TestMinimizeIdempotentAndNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Connect(randomWFST(rng, rng.Intn(40)+2, 4))
		if g.NumStates() == 0 {
			return true
		}
		m := Minimize(g)
		if m.Validate() != nil || m.NumStates() > g.NumStates() || m.NumArcs() > g.NumArcs() {
			return false
		}
		m2 := Minimize(m)
		return m2.NumStates() == m.NumStates() && m2.NumArcs() == m.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeEmpty(t *testing.T) {
	empty := NewBuilder().MustBuild()
	m := Minimize(empty)
	if m.NumStates() != 0 {
		t.Error("minimized empty machine is not empty")
	}
}

func TestMinimizeKeepsSortFlag(t *testing.T) {
	g := buildDuplicateChains(t)
	g.SortByInput()
	m := Minimize(g)
	if !m.InSorted() {
		t.Error("minimize dropped input-sorted flag")
	}
}
