package wfst

import (
	"fmt"

	"repro/internal/semiring"
)

// ComposeGeneric is standard transducer composition A∘B: the result maps
// input string x to output string z with the minimal cost of A mapping x to
// some y and B mapping y to z. Epsilon output labels in A and epsilon input
// labels in B are handled with the naive (filterless) construction, which
// may duplicate epsilon paths; under the tropical semiring duplicates do
// not change path minima, so weights are exact.
//
// This is the general-purpose operation; Compose is the ASR-specialized
// variant that interprets the right operand's epsilon arcs as n-gram
// back-off (failure) arcs instead.
func ComposeGeneric(a, b *WFST, opts ComposeOptions) (*WFST, error) {
	if a.Start() == NoState || b.Start() == NoState {
		return NewBuilder().Build()
	}
	key := func(sa, sb StateID) uint64 { return uint64(uint32(sa))<<32 | uint64(uint32(sb)) }

	bld := NewBuilder()
	ids := make(map[uint64]StateID)
	var queue []uint64
	intern := func(sa, sb StateID) (StateID, error) {
		k := key(sa, sb)
		if id, ok := ids[k]; ok {
			return id, nil
		}
		if opts.MaxStates > 0 && len(ids) >= opts.MaxStates {
			return NoState, fmt.Errorf("wfst: generic composition exceeds %d states", opts.MaxStates)
		}
		id := bld.AddState()
		ids[k] = id
		queue = append(queue, k)
		fa, fb := a.Final(sa), b.Final(sb)
		if !semiring.IsZero(fa) && !semiring.IsZero(fb) {
			bld.SetFinal(id, semiring.Times(fa, fb))
		}
		return id, nil
	}

	startID, err := intern(a.Start(), b.Start())
	if err != nil {
		return nil, err
	}
	bld.SetStart(startID)

	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		sa, sb := StateID(k>>32), StateID(uint32(k))
		src := ids[k]
		for _, x := range a.Arcs(sa) {
			if x.Out == Epsilon {
				// A moves alone.
				dst, err := intern(x.Next, sb)
				if err != nil {
					return nil, err
				}
				bld.AddArc(src, Arc{In: x.In, Out: Epsilon, W: x.W, Next: dst})
				continue
			}
			for _, y := range b.Arcs(sb) {
				if y.In != x.Out {
					continue
				}
				dst, err := intern(x.Next, y.Next)
				if err != nil {
					return nil, err
				}
				bld.AddArc(src, Arc{In: x.In, Out: y.Out, W: semiring.Times(x.W, y.W), Next: dst})
			}
		}
		for _, y := range b.Arcs(sb) {
			if y.In == Epsilon {
				// B moves alone.
				dst, err := intern(sa, y.Next)
				if err != nil {
					return nil, err
				}
				bld.AddArc(src, Arc{In: Epsilon, Out: y.Out, W: y.W, Next: dst})
			}
		}
	}

	f, err := bld.Build()
	if err != nil {
		return nil, err
	}
	if !opts.KeepUnconnected {
		f = Connect(f)
	}
	return f, nil
}
