package lm

import (
	"math"
	"testing"

	"repro/internal/semiring"
)

func TestPruneEntropyShrinksModel(t *testing.T) {
	m, corpus := trainSmall(t, 31, 20, 300, TrainOptions{})
	before := m.NumTrigrams() + m.NumBigrams()
	tri, bi := m.PruneEntropy(1e-4)
	if tri == 0 {
		t.Fatal("no trigrams pruned at a coarse threshold")
	}
	after := m.NumTrigrams() + m.NumBigrams()
	if after+tri+bi != before {
		t.Errorf("accounting broken: %d + %d + %d != %d", after, tri, bi, before)
	}
	// Distributions must remain normalized after mass re-absorption.
	for _, ctx := range [][]int32{nil, {1}, {3, 5}, {7, 7}} {
		var sum float64
		for w := int32(1); w <= m.EOSToken(); w++ {
			sum += semiring.ToProb(m.CondCost(ctx, w))
		}
		if math.Abs(sum-1) > 5e-3 {
			t.Errorf("P(.|%v) sums to %v after pruning", ctx, sum)
		}
	}
	// The pruned model must still score the training corpus sanely.
	if ppl := m.Perplexity(corpus); math.IsInf(ppl, 0) || math.IsNaN(ppl) {
		t.Errorf("pruned model perplexity %v", ppl)
	}
}

func TestPruneEntropyThresholdMonotone(t *testing.T) {
	m1, _ := trainSmall(t, 33, 20, 300, TrainOptions{})
	m2, _ := trainSmall(t, 33, 20, 300, TrainOptions{})
	t1, b1 := m1.PruneEntropy(1e-6)
	t2, b2 := m2.PruneEntropy(1e-3)
	if t2+b2 < t1+b1 {
		t.Errorf("coarser threshold pruned less: %d vs %d", t2+b2, t1+b1)
	}
}

func TestPruneEntropyPerplexityTradeoff(t *testing.T) {
	m, corpus := trainSmall(t, 35, 20, 300, TrainOptions{})
	base := m.Perplexity(corpus)
	m.PruneEntropy(1e-4)
	pruned := m.Perplexity(corpus)
	// Pruning loses information: training perplexity should not improve,
	// but a sane threshold must not blow it up either.
	if pruned < base-0.5 {
		t.Errorf("pruning improved train PPL %v -> %v (suspicious)", base, pruned)
	}
	if pruned > 4*base {
		t.Errorf("pruning destroyed the model: PPL %v -> %v", base, pruned)
	}
}

func TestPrunedModelStillBuildsGraph(t *testing.T) {
	m, _ := trainSmall(t, 37, 15, 250, TrainOptions{})
	m.PruneEntropy(1e-4)
	gr, err := m.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Path costs must still match the (pruned) model.
	for _, sent := range [][]int32{{1, 2, 3}, {5, 5, 5}, {14}} {
		want := m.SequenceCost(sent)
		got := gr.PathCost(sent)
		if !semiring.ApproxEqual(got, want, 1e-3) {
			t.Errorf("sent %v: graph %v vs model %v", sent, got, want)
		}
	}
}
