package lm

import (
	"sort"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Graph is the LM WFST plus the state-numbering metadata the compressed
// encoder relies on.
//
// State-numbering convention (exactly the paper's Figure 3b, which the
// compressed LM format of Section 3.4 assumes):
//
//	state 0            — empty history; its i-th arc carries word ID i and
//	                     its destination is state i, so unigram arcs need
//	                     only store a weight.
//	states 1..V        — one-word histories, one per vocabulary word.
//	states V+1..       — two-word histories, one per bigram context that
//	                     retained trigram continuations.
//
// Every non-zero state's last conceptual arc is its back-off arc (stored
// input-sorted in the WFST, where epsilon sorts first; the compressed layout
// re-orders it to the end as the paper describes).
type Graph struct {
	G *wfst.WFST
	// TriContextKeys[i] is the packed (w1,w2) context of state V+1+i,
	// sorted ascending for determinism.
	TriContextKeys []uint64
	// V is the vocabulary size (states 1..V are the one-word histories).
	V int
}

// BuildGraph converts the model into its WFST form.
func (m *Model) BuildGraph() (*Graph, error) {
	triKeys := make([]uint64, 0, len(m.TriContexts))
	for k := range m.TriContexts {
		triKeys = append(triKeys, k)
	}
	sort.Slice(triKeys, func(i, j int) bool { return triKeys[i] < triKeys[j] })
	triState := make(map[uint64]wfst.StateID, len(triKeys))
	for i, k := range triKeys {
		triState[k] = wfst.StateID(m.V + 1 + i)
	}

	b := wfst.NewBuilder()
	total := 1 + m.V + len(triKeys)
	for i := 0; i < total; i++ {
		b.AddState()
	}
	b.SetStart(0)
	eos := m.eos()

	// State 0: one unigram arc per word, destination = word ID.
	for w := int32(1); w <= int32(m.V); w++ {
		b.AddArc(0, wfst.Arc{In: w, Out: w, W: m.Uni[w].Cost, Next: wfst.StateID(w)})
	}
	b.SetFinal(0, m.Uni[eos].Cost)

	// One-word history states.
	for w1 := int32(1); w1 <= int32(m.V); w1++ {
		s := wfst.StateID(w1)
		b.AddArc(s, wfst.Arc{In: wfst.Epsilon, Out: wfst.Epsilon, W: m.Uni[w1].Bow, Next: 0})
		for _, w2 := range m.BiContexts[w1] {
			dst := wfst.StateID(w2)
			if ts, ok := triState[key2(w1, w2)]; ok {
				dst = ts
			}
			b.AddArc(s, wfst.Arc{In: w2, Out: w2, W: m.Bi[key2(w1, w2)].Cost, Next: dst})
		}
		b.SetFinal(s, m.CondCost([]int32{w1}, eos))
	}

	// Two-word history states.
	for i, ctx := range triKeys {
		s := wfst.StateID(m.V + 1 + i)
		w1, w2 := int32(ctx>>20), int32(ctx&0xFFFFF)
		b.AddArc(s, wfst.Arc{In: wfst.Epsilon, Out: wfst.Epsilon, W: m.Bi[ctx].Bow, Next: wfst.StateID(w2)})
		for _, w3 := range m.TriContexts[ctx] {
			dst := wfst.StateID(w3)
			if ts, ok := triState[key2(w2, w3)]; ok {
				dst = ts
			}
			b.AddArc(s, wfst.Arc{In: w3, Out: w3, W: m.Tri[key3(w1, w2, w3)], Next: dst})
		}
		b.SetFinal(s, m.CondCost([]int32{w1, w2}, eos))
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.SortByInput()
	return &Graph{G: g, TriContextKeys: triKeys, V: m.V}, nil
}

// PathCost walks the graph for a word sequence from the start state using
// back-off resolution and returns the total cost including the final weight.
// It must equal Model.SequenceCost up to float rounding — the invariant the
// graph builder is tested against.
func (gr *Graph) PathCost(sent []int32) semiring.Weight {
	s := gr.G.Start()
	cost := semiring.One
	for _, w := range sent {
		next, aw, _, ok := gr.G.ResolveWord(s, w)
		if !ok {
			return semiring.Zero
		}
		cost = semiring.Times(cost, aw)
		s = next
	}
	return semiring.Times(cost, gr.G.Final(s))
}
