package lm

import (
	"bytes"
	"testing"
)

// FuzzReadARPA checks the text parser never panics on malformed input and
// only returns models or errors.
func FuzzReadARPA(f *testing.F) {
	// Seed with a real model plus broken variants.
	m, _ := Train([][]int32{{1, 2, 3}, {2, 3, 1}, {3, 1}}, 3, TrainOptions{})
	var buf bytes.Buffer
	if m != nil {
		_ = m.WriteARPA(&buf)
	}
	f.Add(buf.String(), 3)
	f.Add("\\1-grams:\n-0.5\t1\t-0.1\n\\end\\\n", 3)
	f.Add("\\1-grams:\nnot-a-number 1 0\n", 3)
	f.Add("\\3-grams:\n-0.5\t1 2\n", 3)
	f.Add("", 5)
	f.Fuzz(func(t *testing.T, text string, vocab int) {
		if vocab < 1 || vocab > 1000 {
			return
		}
		model, err := ReadARPA(bytes.NewReader([]byte(text)), vocab)
		if err == nil && model == nil {
			t.Fatal("nil model without error")
		}
		if model != nil && err == nil {
			// A returned model must at least not crash basic queries.
			_ = model.CondCost([]int32{1}, 1)
		}
	})
}
