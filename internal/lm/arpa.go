package lm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/semiring"
)

// ARPA-style text serialization. Probabilities are written as log10 values,
// as the ARPA convention requires; words are written as their decimal IDs
// and the end-of-sentence token as "</s>". This is a faithful structural
// analogue of the files Kaldi's arpa2fst consumes.

const eosWord = "</s>"

func toLog10(w semiring.Weight) float64 {
	if semiring.IsZero(w) {
		return -99
	}
	return -float64(w) / math.Ln10
}

func fromLog10(l float64) semiring.Weight {
	return semiring.Weight(-l * math.Ln10)
}

func (m *Model) wordStr(w int32) string {
	if w == m.eos() {
		return eosWord
	}
	return strconv.Itoa(int(w))
}

// WriteARPA writes the model in ARPA text format.
func (m *Model) WriteARPA(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "\\data\\\n")
	fmt.Fprintf(bw, "ngram 1=%d\n", m.V+1)
	if m.Order >= 2 {
		fmt.Fprintf(bw, "ngram 2=%d\n", len(m.Bi))
	}
	if m.Order >= 3 {
		fmt.Fprintf(bw, "ngram 3=%d\n", len(m.Tri))
	}

	fmt.Fprintf(bw, "\n\\1-grams:\n")
	for wd := int32(1); wd <= m.eos(); wd++ {
		g := m.Uni[wd]
		if wd == m.eos() {
			fmt.Fprintf(bw, "%.6f\t%s\n", toLog10(g.Cost), m.wordStr(wd))
		} else {
			fmt.Fprintf(bw, "%.6f\t%s\t%.6f\n", toLog10(g.Cost), m.wordStr(wd), toLog10(g.Bow))
		}
	}

	if m.Order >= 2 {
		fmt.Fprintf(bw, "\n\\2-grams:\n")
		keys := make([]uint64, 0, len(m.Bi))
		for k := range m.Bi {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			g := m.Bi[k]
			w1, w2 := int32(k>>20), int32(k&0xFFFFF)
			if w2 == m.eos() || m.Order == 2 {
				fmt.Fprintf(bw, "%.6f\t%s %s\n", toLog10(g.Cost), m.wordStr(w1), m.wordStr(w2))
			} else {
				fmt.Fprintf(bw, "%.6f\t%s %s\t%.6f\n", toLog10(g.Cost), m.wordStr(w1), m.wordStr(w2), toLog10(g.Bow))
			}
		}
	}

	if m.Order >= 3 {
		fmt.Fprintf(bw, "\n\\3-grams:\n")
		keys := make([]uint64, 0, len(m.Tri))
		for k := range m.Tri {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			w1, w2, w3 := int32(k>>40), int32((k>>20)&0xFFFFF), int32(k&0xFFFFF)
			fmt.Fprintf(bw, "%.6f\t%s %s %s\n", toLog10(m.Tri[k]), m.wordStr(w1), m.wordStr(w2), m.wordStr(w3))
		}
	}

	fmt.Fprintf(bw, "\n\\end\\\n")
	return bw.Flush()
}

// ReadARPA parses a model written by WriteARPA. vocab must match the
// original vocabulary size (ARPA files do not record it separately when
// words are bare IDs).
func ReadARPA(r io.Reader, vocab int) (*Model, error) {
	m := &Model{
		V:           vocab,
		Order:       1,
		Uni:         make([]Gram, vocab+2),
		Bi:          make(map[uint64]Gram),
		Tri:         make(map[uint64]semiring.Weight),
		BiContexts:  make(map[int32][]int32),
		TriContexts: make(map[uint64][]int32),
	}
	parseWord := func(s string) (int32, error) {
		if s == eosWord {
			return m.eos(), nil
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > vocab {
			return 0, fmt.Errorf("lm: bad word %q", s)
		}
		return int32(n), nil
	}

	section := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "\\data\\" || strings.HasPrefix(line, "ngram "):
			continue
		case line == "\\1-grams:":
			section = 1
			continue
		case line == "\\2-grams:":
			section, m.Order = 2, 2
			continue
		case line == "\\3-grams:":
			section, m.Order = 3, 3
			continue
		case line == "\\end\\":
			section = -1
			continue
		}
		if section <= 0 {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < section+1 {
			return nil, fmt.Errorf("lm: malformed %d-gram line %q", section, line)
		}
		logp, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("lm: bad probability in %q: %w", line, err)
		}
		words := make([]int32, section)
		for i := 0; i < section; i++ {
			words[i], err = parseWord(fields[1+i])
			if err != nil {
				return nil, err
			}
		}
		bow := semiring.One
		if len(fields) > section+1 {
			b, err := strconv.ParseFloat(fields[section+1], 64)
			if err != nil {
				return nil, fmt.Errorf("lm: bad back-off in %q: %w", line, err)
			}
			bow = fromLog10(b)
		}
		cost := fromLog10(logp)
		switch section {
		case 1:
			m.Uni[words[0]] = Gram{Cost: cost, Bow: bow}
		case 2:
			m.Bi[key2(words[0], words[1])] = Gram{Cost: cost, Bow: bow}
			if words[1] != m.eos() {
				m.BiContexts[words[0]] = append(m.BiContexts[words[0]], words[1])
			}
		case 3:
			k := key3(words[0], words[1], words[2])
			m.Tri[k] = cost
			if words[2] != m.eos() {
				ctx := k >> 20
				m.TriContexts[ctx] = append(m.TriContexts[ctx], words[2])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m.sortContexts()
	return m, nil
}
