package lm

import (
	"math"

	"repro/internal/semiring"
)

// PruneEntropy removes higher-order n-grams whose removal costs the model
// the least, in the spirit of Stolcke (1998) relative-entropy pruning —
// the principled form of the paper's "combinations whose likelihood is
// smaller than a threshold are pruned to keep the size of the LM
// manageable" (Section 2). Pruned mass is re-absorbed into the back-off
// weights, so distributions stay normalized.
//
// threshold is the maximum acceptable weighted log-probability change per
// n-gram (typical values 1e-7 .. 1e-4; larger prunes more). It returns the
// number of trigrams and bigrams removed.
func (m *Model) PruneEntropy(threshold float64) (trigrams, bigrams int) {
	// Trigrams first: removing w3 from context (w1,w2) changes its
	// probability from P(w3|w1,w2) to bow(w1,w2)*P(w3|w2). The weighted
	// cost is approximated as P(ctx)*P(w3|ctx)*|log P_new - log P_old|,
	// with P(ctx) estimated from the chain of lower-order probabilities.
	type victim struct {
		key uint64
		w3  int32
	}
	var drop []victim
	for k := range m.Tri {
		w1, w2, w3 := int32(k>>40), int32((k>>20)&0xFFFFF), int32(k&0xFFFFF)
		ctx := k >> 20
		g, ok := m.Bi[ctx]
		if !ok {
			continue
		}
		pCtx := semiring.ToProb(m.Uni[w1].Cost) * semiring.ToProb(m.CondCost([]int32{w1}, w2))
		pOld := semiring.ToProb(m.Tri[k])
		pNew := semiring.ToProb(g.Bow) * semiring.ToProb(m.CondCost([]int32{w2}, w3))
		if pNew <= 0 {
			continue
		}
		cost := pCtx * pOld * math.Abs(math.Log(pOld)-math.Log(pNew))
		if cost < threshold {
			drop = append(drop, victim{k, w3})
		}
	}
	for _, v := range drop {
		delete(m.Tri, v.key)
		trigrams++
	}
	if trigrams > 0 {
		m.rebuildTriContexts()
		m.renormalizeTrigramBows()
	}

	// Bigrams: same estimate one level down. Bigrams whose context still
	// has trigram continuations are kept (their history state is needed).
	var dropBi []uint64
	for k := range m.Bi {
		if _, needed := m.TriContexts[k]; needed {
			continue
		}
		w1, w2 := int32(k>>20), int32(k&0xFFFFF)
		pCtx := semiring.ToProb(m.Uni[w1].Cost)
		pOld := semiring.ToProb(m.Bi[k].Cost)
		pNew := semiring.ToProb(m.Uni[w1].Bow) * semiring.ToProb(m.Uni[w2].Cost)
		if pNew <= 0 {
			continue
		}
		cost := pCtx * pOld * math.Abs(math.Log(pOld)-math.Log(pNew))
		if cost < threshold {
			dropBi = append(dropBi, k)
		}
	}
	for _, k := range dropBi {
		delete(m.Bi, k)
		bigrams++
	}
	if bigrams > 0 {
		m.rebuildBiContexts()
		m.renormalizeBigramBows()
	}
	return trigrams, bigrams
}

func (m *Model) rebuildTriContexts() {
	m.TriContexts = make(map[uint64][]int32)
	for k := range m.Tri {
		ctx := k >> 20
		w3 := int32(k & 0xFFFFF)
		if w3 != m.eos() {
			m.TriContexts[ctx] = append(m.TriContexts[ctx], w3)
		} else if _, ok := m.TriContexts[ctx]; !ok {
			m.TriContexts[ctx] = []int32{}
		}
	}
	m.sortContexts()
}

func (m *Model) rebuildBiContexts() {
	m.BiContexts = make(map[int32][]int32)
	for k := range m.Bi {
		w1, w2 := int32(k>>20), int32(k&0xFFFFF)
		if w2 != m.eos() {
			m.BiContexts[w1] = append(m.BiContexts[w1], w2)
		}
	}
	m.sortContexts()
}

// renormalizeTrigramBows recomputes each surviving trigram context's
// back-off weight so P(.|w1,w2) sums to one after pruning.
func (m *Model) renormalizeTrigramBows() {
	kept := make(map[uint64]float64) // ctx -> sum of surviving trigram probs
	lower := make(map[uint64]float64)
	for k, c := range m.Tri {
		ctx := k >> 20
		w2, w3 := int32((k>>20)&0xFFFFF), int32(k&0xFFFFF)
		kept[ctx] += semiring.ToProb(c)
		lower[ctx] += semiring.ToProb(m.CondCost([]int32{w2}, w3))
	}
	for ctx, g := range m.Bi {
		if _, isCtx := m.TriContexts[ctx]; !isCtx {
			g.Bow = semiring.One
			m.Bi[ctx] = g
			continue
		}
		freed := 1 - kept[ctx]
		unseen := 1 - lower[ctx]
		if freed < 1e-12 {
			freed = 1e-12
		}
		if unseen < 1e-12 {
			unseen = 1e-12
		}
		g.Bow = semiring.FromProb(freed / unseen)
		m.Bi[ctx] = g
	}
}

// renormalizeBigramBows recomputes unigram-level back-off weights after
// bigram pruning.
func (m *Model) renormalizeBigramBows() {
	kept := make([]float64, m.V+2)
	lower := make([]float64, m.V+2)
	seen := make([]bool, m.V+2)
	for k, g := range m.Bi {
		w1, w2 := int32(k>>20), int32(k&0xFFFFF)
		kept[w1] += semiring.ToProb(g.Cost)
		lower[w1] += semiring.ToProb(m.Uni[w2].Cost)
		seen[w1] = true
	}
	for w1 := int32(1); w1 <= int32(m.V); w1++ {
		g := m.Uni[w1]
		if !seen[w1] {
			g.Bow = semiring.One
			m.Uni[w1] = g
			continue
		}
		freed := 1 - kept[w1]
		unseen := 1 - lower[w1]
		if freed < 1e-12 {
			freed = 1e-12
		}
		if unseen < 1e-12 {
			unseen = 1e-12
		}
		g.Bow = semiring.FromProb(freed / unseen)
		m.Uni[w1] = g
	}
}
