package lm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// genCorpus samples sentences from a hidden Markov chain over the vocabulary
// so the trained model has genuine structure (skewed successors).
func genCorpus(rng *rand.Rand, vocab, sentences, maxLen int) [][]int32 {
	succ := make([][]int32, vocab+1)
	for w := 1; w <= vocab; w++ {
		n := rng.Intn(4) + 2
		succ[w] = make([]int32, n)
		for i := range succ[w] {
			succ[w][i] = int32(rng.Intn(vocab) + 1)
		}
	}
	corpus := make([][]int32, sentences)
	for i := range corpus {
		length := rng.Intn(maxLen) + 1
		sent := make([]int32, length)
		w := int32(rng.Intn(vocab) + 1)
		for j := 0; j < length; j++ {
			sent[j] = w
			if rng.Float64() < 0.8 {
				w = succ[w][rng.Intn(len(succ[w]))]
			} else {
				w = int32(rng.Intn(vocab) + 1)
			}
		}
		corpus[i] = sent
	}
	return corpus
}

func trainSmall(t testing.TB, seed int64, vocab, sentences int, opts TrainOptions) (*Model, [][]int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	corpus := genCorpus(rng, vocab, sentences, 12)
	m, err := Train(corpus, vocab, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, corpus
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 10, TrainOptions{}); err == nil {
		t.Error("expected error for empty corpus")
	}
	if _, err := Train([][]int32{{1, 99}}, 10, TrainOptions{}); err == nil {
		t.Error("expected error for out-of-range word")
	}
	if _, err := Train([][]int32{{1}}, 1<<20, TrainOptions{}); err == nil {
		t.Error("expected error for oversized vocabulary")
	}
	if _, err := Train([][]int32{{1}}, 2, TrainOptions{Order: 5}); err == nil {
		t.Error("expected error for unsupported order")
	}
}

// Core LM invariant: P(w | context) sums to 1 over the vocabulary + EOS,
// from any context, at every order.
func TestDistributionsNormalized(t *testing.T) {
	for _, order := range []int{1, 2, 3} {
		m, corpus := trainSmall(t, 7, 20, 60, TrainOptions{Order: order})
		contexts := [][]int32{nil}
		for _, sent := range corpus[:5] {
			for i := range sent {
				if i >= 1 {
					contexts = append(contexts, sent[i-1:i+1])
				}
				contexts = append(contexts, sent[i:i+1])
			}
		}
		for _, ctx := range contexts {
			var sum float64
			for w := int32(1); w <= m.EOSToken(); w++ {
				sum += semiring.ToProb(m.CondCost(ctx, w))
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("order %d: P(.|%v) sums to %v", order, ctx, sum)
			}
		}
	}
}

func TestSeenNGramsCheaperThanBackoff(t *testing.T) {
	m, _ := trainSmall(t, 3, 15, 80, TrainOptions{})
	// A trained model must give seen bigrams lower cost than the model with
	// those bigrams pruned away would.
	found := false
	for k := range m.Bi {
		w1, w2 := int32(k>>20), int32(k&0xFFFFF)
		if w2 == m.EOSToken() {
			continue
		}
		direct := m.Bi[k].Cost
		backed := semiring.Times(m.Uni[w1].Bow, m.Uni[w2].Cost)
		if direct < backed {
			found = true
			break
		}
	}
	if !found {
		t.Error("no seen bigram is cheaper than its backed-off estimate")
	}
}

func TestGraphStructure(t *testing.T) {
	m, _ := trainSmall(t, 11, 12, 50, TrainOptions{})
	gr, err := m.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	g := gr.G
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 1+m.V+len(gr.TriContextKeys) {
		t.Fatalf("states = %d, want %d", g.NumStates(), 1+m.V+len(gr.TriContextKeys))
	}
	// State 0: exactly V arcs, i-th arc = word i, destination i (the
	// invariant the 6-bit unigram encoding relies on).
	arcs := g.Arcs(0)
	if len(arcs) != m.V {
		t.Fatalf("state 0 has %d arcs, want %d", len(arcs), m.V)
	}
	for i, a := range arcs {
		if a.In != int32(i+1) || a.Next != wfst.StateID(i+1) || a.In != a.Out {
			t.Fatalf("state 0 arc %d = %+v violates unigram layout", i, a)
		}
	}
	if _, ok := g.BackoffArc(0); ok {
		t.Error("state 0 must not have a back-off arc")
	}
	// Every other state has a back-off arc.
	for s := wfst.StateID(1); int(s) < g.NumStates(); s++ {
		if _, ok := g.BackoffArc(s); !ok {
			t.Fatalf("state %d lacks a back-off arc", s)
		}
	}
	// All states final with finite weight (EOS is always possible).
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		if !g.IsFinal(s) {
			t.Fatalf("state %d is not final", s)
		}
	}
}

// The graph must score any sentence identically to the model it was built
// from — this is the invariant that makes offline and on-the-fly composition
// interchangeable.
func TestGraphPathCostMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := rng.Intn(15) + 3
		corpus := genCorpus(rng, vocab, 30, 10)
		m, err := Train(corpus, vocab, TrainOptions{})
		if err != nil {
			return false
		}
		gr, err := m.BuildGraph()
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			n := rng.Intn(8) + 1
			sent := make([]int32, n)
			for i := range sent {
				sent[i] = int32(rng.Intn(vocab) + 1)
			}
			want := m.SequenceCost(sent)
			got := gr.PathCost(sent)
			if !semiring.ApproxEqual(got, want, 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinCountPruningForcesBackoff(t *testing.T) {
	m1, corpus := trainSmall(t, 5, 18, 100, TrainOptions{MinCount: 1})
	m2, err := Train(corpus, 18, TrainOptions{MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumBigrams() >= m1.NumBigrams() {
		t.Errorf("pruned model has %d bigrams, unpruned %d", m2.NumBigrams(), m1.NumBigrams())
	}
	if m2.NumTrigrams() >= m1.NumTrigrams() {
		t.Errorf("pruned model has %d trigrams, unpruned %d", m2.NumTrigrams(), m1.NumTrigrams())
	}
	// Pruned distributions must still normalize.
	var sum float64
	for w := int32(1); w <= m2.EOSToken(); w++ {
		sum += semiring.ToProb(m2.CondCost([]int32{1}, w))
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("pruned P(.|1) sums to %v", sum)
	}
}

func TestPerplexityOrdering(t *testing.T) {
	m, corpus := trainSmall(t, 9, 15, 200, TrainOptions{})
	trainPPL := m.Perplexity(corpus)
	// Uniform-random corpus over the same vocabulary must score worse.
	rng := rand.New(rand.NewSource(99))
	random := make([][]int32, 50)
	for i := range random {
		sent := make([]int32, rng.Intn(10)+1)
		for j := range sent {
			sent[j] = int32(rng.Intn(15) + 1)
		}
		random[i] = sent
	}
	randPPL := m.Perplexity(random)
	if trainPPL >= randPPL {
		t.Errorf("train PPL %.2f >= random PPL %.2f", trainPPL, randPPL)
	}
	// Higher order should not hurt on training data.
	m1, err := Train(corpus, 15, TrainOptions{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Perplexity(corpus) >= m1.Perplexity(corpus) {
		t.Errorf("trigram PPL %.2f >= unigram PPL %.2f on train data",
			m.Perplexity(corpus), m1.Perplexity(corpus))
	}
}

func TestARPARoundTrip(t *testing.T) {
	m, _ := trainSmall(t, 13, 12, 80, TrainOptions{})
	var buf bytes.Buffer
	if err := m.WriteARPA(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadARPA(bytes.NewReader(buf.Bytes()), m.V)
	if err != nil {
		t.Fatal(err)
	}
	if m2.V != m.V || m2.Order != m.Order {
		t.Fatalf("header mismatch: V %d/%d order %d/%d", m2.V, m.V, m2.Order, m.Order)
	}
	if m2.NumBigrams() != m.NumBigrams() || m2.NumTrigrams() != m.NumTrigrams() {
		t.Fatalf("ngram counts differ: bi %d/%d tri %d/%d",
			m2.NumBigrams(), m.NumBigrams(), m2.NumTrigrams(), m.NumTrigrams())
	}
	// Conditional costs must survive the text round trip (ARPA stores 6
	// decimals of log10, so tolerate small error).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ctx := []int32{int32(rng.Intn(m.V) + 1), int32(rng.Intn(m.V) + 1)}[:rng.Intn(3)]
		w := int32(rng.Intn(m.V) + 1)
		a, b := m.CondCost(ctx, w), m2.CondCost(ctx, w)
		if !semiring.ApproxEqual(a, b, 1e-3) {
			t.Fatalf("CondCost(%v, %d): %v vs %v", ctx, w, a, b)
		}
	}
}

func TestReadARPARejectsGarbage(t *testing.T) {
	bad := "\\1-grams:\nnot-a-number 1 0\n"
	if _, err := ReadARPA(bytes.NewReader([]byte(bad)), 5); err == nil {
		t.Error("expected parse error")
	}
}

func TestBigramOrderModel(t *testing.T) {
	m, corpus := trainSmall(t, 21, 10, 60, TrainOptions{Order: 2})
	if m.NumTrigrams() != 0 {
		t.Errorf("order-2 model has %d trigrams", m.NumTrigrams())
	}
	gr, err := m.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g, want := gr.G.NumStates(), 1+m.V; g != want {
		t.Errorf("bigram graph states = %d, want %d", g, want)
	}
	for _, sent := range corpus[:3] {
		if !semiring.ApproxEqual(gr.PathCost(sent), m.SequenceCost(sent), 1e-3) {
			t.Errorf("bigram path cost mismatch")
		}
	}
}
