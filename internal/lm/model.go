// Package lm implements the language-model substrate: a back-off trigram
// estimator trained on word-ID sequences, conversion to the LM WFST of the
// paper's Figure 3b (unigram state 0, one-word history states 1..V, two-word
// history states, epsilon back-off arcs), and an ARPA-style text format.
//
// Word IDs are 1-based; 0 is the WFST epsilon label. The end-of-sentence
// event is modelled as final weights on history states rather than as an
// explicit </s> arc, matching the paper's graph.
package lm

import (
	"fmt"
	"math"

	"repro/internal/semiring"
)

// eosOffset derives the internal end-of-sentence token ID from the
// vocabulary size; it never appears on an arc.
const maxWordBits = 18 // the compressed LM format stores 18-bit word IDs

// Gram holds a conditional probability and, for entries that are also
// contexts, a back-off weight. Both are costs (negative natural logs).
type Gram struct {
	Cost semiring.Weight // -ln P(w | context)
	Bow  semiring.Weight // -ln back-off weight of the extended context
}

// Model is a back-off trigram language model.
type Model struct {
	// V is the vocabulary size; word IDs are 1..V.
	V int
	// Order is 1, 2 or 3.
	Order int
	// Uni[w] for w in 1..V+1 (V+1 is the internal end-of-sentence token).
	Uni []Gram
	// Bi maps key2(w1,w2) to the bigram entry. w2 may be the EOS token.
	Bi map[uint64]Gram
	// Tri maps key3(w1,w2,w3) to the trigram cost. w3 may be the EOS token.
	Tri map[uint64]semiring.Weight
	// BiContexts lists, per w1, the seen successors w2 (sorted), used to
	// enumerate arcs when building the WFST.
	BiContexts map[int32][]int32
	// TriContexts lists, per key2(w1,w2) that has trigram continuations,
	// the seen successors w3 (sorted).
	TriContexts map[uint64][]int32
}

func (m *Model) eos() int32 { return int32(m.V + 1) }

// key2 and key3 pack n-gram word tuples into map keys. Words fit in 18 bits
// (the compressed format's width); 20 bits of room keeps packing simple.
func key2(w1, w2 int32) uint64 { return uint64(uint32(w1))<<20 | uint64(uint32(w2)) }
func key3(w1, w2, w3 int32) uint64 {
	return uint64(uint32(w1))<<40 | uint64(uint32(w2))<<20 | uint64(uint32(w3))
}

// TrainOptions controls estimation.
type TrainOptions struct {
	// Order of the model: 1, 2 or 3 (default 3).
	Order int
	// Discount is the absolute-discount mass D in (0, 1); default 0.5.
	Discount float64
	// MinCount prunes n-grams (n >= 2) seen fewer than this many times;
	// default 1 (keep all). Pruning is what makes back-off arcs necessary,
	// the effect Section 3.3's preemptive pruning targets.
	MinCount int
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Order == 0 {
		o.Order = 3
	}
	if o.Discount == 0 {
		o.Discount = 0.5
	}
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	return o
}

// Train estimates a back-off model from a corpus of sentences. Each sentence
// is a sequence of word IDs in 1..vocab. Unigrams are add-one smoothed so
// every vocabulary word has a unigram arc (required by the compressed LM
// layout, where state 0 has exactly one arc per word); higher orders use
// absolute discounting with the freed mass assigned to the back-off weight.
func Train(corpus [][]int32, vocab int, opts TrainOptions) (*Model, error) {
	opts = opts.withDefaults()
	if opts.Order < 1 || opts.Order > 3 {
		return nil, fmt.Errorf("lm: unsupported order %d", opts.Order)
	}
	if vocab < 1 || vocab >= 1<<maxWordBits {
		return nil, fmt.Errorf("lm: vocabulary size %d out of range [1, 2^18)", vocab)
	}
	m := &Model{
		V:           vocab,
		Order:       opts.Order,
		Uni:         make([]Gram, vocab+2),
		Bi:          make(map[uint64]Gram),
		Tri:         make(map[uint64]semiring.Weight),
		BiContexts:  make(map[int32][]int32),
		TriContexts: make(map[uint64][]int32),
	}
	eos := m.eos()

	c1 := make([]int, vocab+2)
	c2 := make(map[uint64]int)
	c3 := make(map[uint64]int)
	total := 0
	for _, sent := range corpus {
		ext := make([]int32, 0, len(sent)+1)
		for _, w := range sent {
			if w < 1 || int(w) > vocab {
				return nil, fmt.Errorf("lm: word ID %d out of range [1,%d]", w, vocab)
			}
			ext = append(ext, w)
		}
		ext = append(ext, eos)
		for i, w := range ext {
			c1[w]++
			total++
			if opts.Order >= 2 && i >= 1 {
				c2[key2(ext[i-1], w)]++
			}
			if opts.Order >= 3 && i >= 2 {
				c3[key3(ext[i-2], ext[i-1], w)]++
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("lm: empty training corpus")
	}

	// Unigrams: add-one over V words + EOS.
	denom := float64(total + vocab + 1)
	for w := int32(1); w <= eos; w++ {
		m.Uni[w] = Gram{Cost: semiring.FromProb(float64(c1[w]+1) / denom), Bow: semiring.One}
	}

	D := opts.Discount
	if opts.Order >= 2 {
		// Per-context totals and distinct-successor counts for bigrams.
		ctxTotal := make([]int, vocab+2)
		ctxTypes := make([]int, vocab+2)
		for k, c := range c2 {
			if c < opts.MinCount {
				continue
			}
			w1 := int32(k >> 20)
			ctxTotal[w1] += c
			ctxTypes[w1]++
		}
		for k, c := range c2 {
			if c < opts.MinCount {
				continue
			}
			w1, w2 := int32(k>>20), int32(k&0xFFFFF)
			p := (float64(c) - D) / float64(ctxTotal[w1])
			if p <= 0 {
				continue
			}
			m.Bi[k] = Gram{Cost: semiring.FromProb(p), Bow: semiring.One}
			if w2 != eos {
				m.BiContexts[w1] = append(m.BiContexts[w1], w2)
			}
		}
		// Normalize back-off weights so each conditional distribution sums
		// to exactly 1: bow = freed mass / unigram mass of unseen words.
		sumLower := make([]float64, vocab+2)
		for k := range m.Bi {
			w1, w2 := int32(k>>20), int32(k&0xFFFFF)
			sumLower[w1] += semiring.ToProb(m.Uni[w2].Cost)
		}
		for w1 := int32(1); w1 <= int32(vocab); w1++ {
			if ctxTotal[w1] == 0 {
				continue
			}
			freed := D * float64(ctxTypes[w1]) / float64(ctxTotal[w1])
			unseen := 1 - sumLower[w1]
			if unseen < 1e-9 {
				unseen = 1e-9
			}
			g := m.Uni[w1]
			g.Bow = semiring.FromProb(freed / unseen)
			m.Uni[w1] = g
		}
	}

	if opts.Order >= 3 {
		ctxTotal := make(map[uint64]int)
		ctxTypes := make(map[uint64]int)
		for k, c := range c3 {
			if c < opts.MinCount {
				continue
			}
			ctx := k >> 20 // key2(w1,w2)
			// A trigram is only usable if its bigram context survived pruning.
			if _, ok := m.Bi[ctx]; !ok {
				continue
			}
			ctxTotal[ctx] += c
			ctxTypes[ctx]++
		}
		for k, c := range c3 {
			if c < opts.MinCount {
				continue
			}
			ctx := k >> 20
			tot, ok := ctxTotal[ctx]
			if !ok {
				continue
			}
			p := (float64(c) - D) / float64(tot)
			if p <= 0 {
				continue
			}
			w3 := int32(k & 0xFFFFF)
			m.Tri[k] = semiring.FromProb(p)
			if w3 != eos {
				m.TriContexts[ctx] = append(m.TriContexts[ctx], w3)
			} else if _, seen := m.TriContexts[ctx]; !seen {
				// A context whose only retained trigram predicts EOS still
				// needs a history state, or the graph would lose that
				// trigram's final weight and the back-off penalty.
				m.TriContexts[ctx] = []int32{}
			}
		}
		// Normalized back-off: freed mass / bigram-level mass of unseen words.
		sumLower := make(map[uint64]float64, len(ctxTotal))
		for k := range m.Tri {
			ctx := k >> 20
			w2, w3 := int32((k>>20)&0xFFFFF), int32(k&0xFFFFF)
			sumLower[ctx] += semiring.ToProb(m.CondCost([]int32{w2}, w3))
		}
		for ctx, tot := range ctxTotal {
			freed := D * float64(ctxTypes[ctx]) / float64(tot)
			unseen := 1 - sumLower[ctx]
			if unseen < 1e-9 {
				unseen = 1e-9
			}
			g := m.Bi[ctx]
			g.Bow = semiring.FromProb(freed / unseen)
			m.Bi[ctx] = g
		}
	}

	m.sortContexts()
	return m, nil
}

func (m *Model) sortContexts() {
	for _, succ := range m.BiContexts {
		sortInt32(succ)
	}
	for _, succ := range m.TriContexts {
		sortInt32(succ)
	}
}

func sortInt32(s []int32) {
	// Insertion sort: successor lists are short and this avoids an
	// interface-based sort in a hot build loop.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CondCost returns -ln P(w | context) with back-off, where context holds the
// up to two most recent words (oldest first) and w may be EOSToken.
// This is the reference the WFST path weights are checked against.
func (m *Model) CondCost(context []int32, w int32) semiring.Weight {
	if len(context) > 2 {
		context = context[len(context)-2:]
	}
	if m.Order >= 3 && len(context) == 2 {
		ctx := key2(context[0], context[1])
		if c, ok := m.Tri[key3(context[0], context[1], w)]; ok {
			return c
		}
		if g, ok := m.Bi[ctx]; ok {
			return semiring.Times(g.Bow, m.CondCost(context[1:], w))
		}
		return m.CondCost(context[1:], w)
	}
	if m.Order >= 2 && len(context) >= 1 {
		w1 := context[len(context)-1]
		if g, ok := m.Bi[key2(w1, w)]; ok {
			return g.Cost
		}
		return semiring.Times(m.Uni[w1].Bow, m.CondCost(nil, w))
	}
	return m.Uni[w].Cost
}

// EOSToken returns the internal end-of-sentence token ID for use with
// CondCost and SequenceCost.
func (m *Model) EOSToken() int32 { return m.eos() }

// SequenceCost returns the total cost -ln P(sentence) including the
// end-of-sentence event.
func (m *Model) SequenceCost(sent []int32) semiring.Weight {
	var ctx []int32
	cost := semiring.One
	for _, w := range sent {
		cost = semiring.Times(cost, m.CondCost(ctx, w))
		ctx = append(ctx, w)
	}
	return semiring.Times(cost, m.CondCost(ctx, m.eos()))
}

// Perplexity returns the per-event perplexity of the model on a corpus
// (events = words + one EOS per sentence).
func (m *Model) Perplexity(corpus [][]int32) float64 {
	var total float64
	var events int
	for _, sent := range corpus {
		total += float64(m.SequenceCost(sent))
		events += len(sent) + 1
	}
	if events == 0 {
		return math.Inf(1)
	}
	return math.Exp(total / float64(events))
}

// NumBigrams reports the retained bigram count (including EOS-final
// entries).
func (m *Model) NumBigrams() int { return len(m.Bi) }

// NumTrigrams reports the retained trigram count (including EOS-final
// entries).
func (m *Model) NumTrigrams() int { return len(m.Tri) }
