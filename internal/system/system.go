// Package system models the integrated ASR pipeline of Section 5.2: the
// input speech is split into batches of N frames; the GPU computes acoustic
// scores for the current batch while the accelerator decodes the previous
// one, communicating through a shared main-memory buffer. The overall
// latency is therefore a two-stage pipeline makespan, not a sum of stage
// times — the structure behind Figures 12 and 13.
package system

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/energy"
)

// GPUModel is the mobile-GPU performance/power model used for the acoustic
// scorer (and for the GPU-only Viterbi baseline via a separate measured
// software time).
type GPUModel struct {
	// EffectiveFLOPS is the sustained throughput on dense scorer kernels.
	// Default 50 GFLOP/s, a mobile-class sustained figure.
	EffectiveFLOPS float64
	// PowerW is the average power while busy; default energy.GPUAvgPowerW.
	PowerW float64
}

func (g GPUModel) withDefaults() GPUModel {
	if g.EffectiveFLOPS == 0 {
		g.EffectiveFLOPS = 50e9
	}
	if g.PowerW == 0 {
		g.PowerW = energy.GPUAvgPowerW
	}
	return g
}

// ScoreSeconds returns the modelled GPU time to score n frames.
func (g GPUModel) ScoreSeconds(sc acoustic.Scorer, frames int) float64 {
	g = g.withDefaults()
	return float64(frames) * sc.FLOPsPerFrame() / g.EffectiveFLOPS
}

// ScoreEnergyJ returns the modelled GPU energy to score n frames.
func (g GPUModel) ScoreEnergyJ(sc acoustic.Scorer, frames int) float64 {
	g = g.withDefaults()
	return g.ScoreSeconds(sc, frames) * g.PowerW
}

// Report summarizes one utterance through the batched pipeline.
type Report struct {
	Batches int
	// GPUSeconds and SearchSeconds are the stage busy times.
	GPUSeconds    float64
	SearchSeconds float64
	// PipelineSeconds is the overlapped makespan.
	PipelineSeconds float64
	// EnergyJ sums GPU busy energy and the search energy.
	EnergyJ float64
}

// Pipeline computes the two-stage pipeline makespan for an utterance of
// `frames` frames split into batches of batchFrames, where the GPU needs
// gpuSeconds total for scoring and the accelerator searchSeconds total for
// decoding, both assumed uniform per batch (the scorers and the search are
// frame-streaming). searchEnergyJ is the accelerator's energy from its own
// simulation.
//
// Makespan of a 2-stage pipeline with per-batch times g and a over B
// batches: B*g + a when g >= a (GPU-bound), g + B*a when a > g
// (search-bound) — the standard pipeline formula with uniform stages.
func Pipeline(gm GPUModel, sc acoustic.Scorer, frames, batchFrames int,
	searchSeconds, searchEnergyJ float64) (Report, error) {
	if frames <= 0 {
		return Report{}, fmt.Errorf("system: no frames")
	}
	if batchFrames <= 0 {
		batchFrames = 100 // 1 s of speech, a typical interactive batch
	}
	batches := (frames + batchFrames - 1) / batchFrames
	gpu := gm.ScoreSeconds(sc, frames)
	g := gpu / float64(batches)
	a := searchSeconds / float64(batches)
	var makespan float64
	if g >= a {
		makespan = float64(batches)*g + a
	} else {
		makespan = g + float64(batches)*a
	}
	return Report{
		Batches:         batches,
		GPUSeconds:      gpu,
		SearchSeconds:   searchSeconds,
		PipelineSeconds: makespan,
		EnergyJ:         gm.withDefaults().ScoreEnergyJ(sc, frames) + searchEnergyJ,
	}, nil
}
