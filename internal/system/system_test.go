package system

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/acoustic"
)

func testScorer(t testing.TB) acoustic.Scorer {
	t.Helper()
	m, err := acoustic.NewSenoneModel(rand.New(rand.NewSource(1)), 20, 8, 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return acoustic.NewGMMScorer(m)
}

func TestGPUModelScaling(t *testing.T) {
	sc := testScorer(t)
	g := GPUModel{}
	t1 := g.ScoreSeconds(sc, 100)
	t2 := g.ScoreSeconds(sc, 200)
	if math.Abs(t2-2*t1) > 1e-12 {
		t.Errorf("score time not linear in frames: %v vs %v", t1, t2)
	}
	fast := GPUModel{EffectiveFLOPS: 100e9}
	if fast.ScoreSeconds(sc, 100) >= t1 {
		t.Error("faster GPU not faster")
	}
	if g.ScoreEnergyJ(sc, 100) <= 0 {
		t.Error("no energy")
	}
}

func TestPipelineBounds(t *testing.T) {
	sc := testScorer(t)
	r, err := Pipeline(GPUModel{}, sc, 1000, 100, 0.002, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Batches != 10 {
		t.Errorf("batches = %d, want 10", r.Batches)
	}
	// The makespan is bounded below by each stage's busy time and above by
	// the serial sum.
	if r.PipelineSeconds < r.GPUSeconds || r.PipelineSeconds < r.SearchSeconds {
		t.Errorf("makespan %v below a stage time (%v, %v)", r.PipelineSeconds, r.GPUSeconds, r.SearchSeconds)
	}
	if r.PipelineSeconds > r.GPUSeconds+r.SearchSeconds+1e-12 {
		t.Errorf("makespan %v exceeds serial sum", r.PipelineSeconds)
	}
}

func TestPipelineOverlapHelps(t *testing.T) {
	sc := testScorer(t)
	// Balanced stages: pipelining should approach max(g, a), far below sum.
	gpu := GPUModel{}.withDefaults()
	gpuTime := gpu.ScoreSeconds(sc, 2000)
	r, err := Pipeline(GPUModel{}, sc, 2000, 100, gpuTime, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := r.GPUSeconds + r.SearchSeconds
	if r.PipelineSeconds > 0.6*serial {
		t.Errorf("pipelining saved too little: %v of serial %v", r.PipelineSeconds, serial)
	}
}

func TestPipelineErrors(t *testing.T) {
	sc := testScorer(t)
	if _, err := Pipeline(GPUModel{}, sc, 0, 100, 1, 1); err == nil {
		t.Error("expected error for zero frames")
	}
}

// Property: makespan is monotone in both stage times and within
// [max(stages), sum(stages)].
func TestPipelineProperty(t *testing.T) {
	sc := testScorer(t)
	f := func(rawFrames uint16, rawSearch uint32) bool {
		frames := int(rawFrames%5000) + 1
		search := float64(rawSearch%1000000) / 1e7 // up to 0.1 s
		r, err := Pipeline(GPUModel{}, sc, frames, 100, search, 0)
		if err != nil {
			return false
		}
		lo := math.Max(r.GPUSeconds, r.SearchSeconds)
		hi := r.GPUSeconds + r.SearchSeconds
		return r.PipelineSeconds >= lo-1e-12 && r.PipelineSeconds <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
