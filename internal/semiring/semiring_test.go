package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdentities(t *testing.T) {
	if Plus(Zero, 3) != 3 {
		t.Errorf("Plus(Zero, 3) = %v, want 3", Plus(Zero, 3))
	}
	if Times(One, 3) != 3 {
		t.Errorf("Times(One, 3) = %v, want 3", Times(One, 3))
	}
	if !IsZero(Zero) {
		t.Error("IsZero(Zero) = false")
	}
	if IsZero(One) {
		t.Error("IsZero(One) = true")
	}
}

func TestPlusPicksMin(t *testing.T) {
	if got := Plus(2, 5); got != 2 {
		t.Errorf("Plus(2,5) = %v, want 2", got)
	}
	if got := Plus(5, 2); got != 2 {
		t.Errorf("Plus(5,2) = %v, want 2", got)
	}
}

func TestLogAdd(t *testing.T) {
	// -log(exp(-1) + exp(-1)) = 1 - log 2
	got := LogAdd(1, 1)
	want := Weight(1 - math.Log(2))
	if !ApproxEqual(got, want, 1e-6) {
		t.Errorf("LogAdd(1,1) = %v, want %v", got, want)
	}
	if LogAdd(Zero, 2) != 2 {
		t.Errorf("LogAdd(Zero,2) = %v, want 2", LogAdd(Zero, 2))
	}
	if LogAdd(2, Zero) != 2 {
		t.Errorf("LogAdd(2,Zero) = %v, want 2", LogAdd(2, Zero))
	}
}

func TestProbRoundTrip(t *testing.T) {
	for _, p := range []float64{1, 0.5, 0.01, 1e-10} {
		got := ToProb(FromProb(p))
		if math.Abs(got-p) > p*1e-5 {
			t.Errorf("ToProb(FromProb(%v)) = %v", p, got)
		}
	}
	if !IsZero(FromProb(0)) {
		t.Error("FromProb(0) is not Zero")
	}
	if ToProb(Zero) != 0 {
		t.Error("ToProb(Zero) != 0")
	}
}

// Tropical-semiring laws, checked property-style on finite weights.
func TestSemiringLaws(t *testing.T) {
	clamp := func(x float32) Weight {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return 1
		}
		// Keep magnitudes small so Times never overflows float32.
		return Weight(math.Mod(float64(x), 1e3))
	}
	assoc := func(a, b, c float32) bool {
		x, y, z := clamp(a), clamp(b), clamp(c)
		return Plus(Plus(x, y), z) == Plus(x, Plus(y, z)) &&
			Times(Times(x, y), z) == Times(x, Times(y, z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	commut := func(a, b float32) bool {
		x, y := clamp(a), clamp(b)
		return Plus(x, y) == Plus(y, x) && Times(x, y) == Times(y, x)
	}
	if err := quick.Check(commut, nil); err != nil {
		t.Error(err)
	}
	distrib := func(a, b, c float32) bool {
		x, y, z := clamp(a), clamp(b), clamp(c)
		return Times(x, Plus(y, z)) == Plus(Times(x, y), Times(x, z))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error(err)
	}
	annihil := func(a float32) bool {
		x := clamp(a)
		return IsZero(Times(x, Zero)) && Plus(x, Zero) == x
	}
	if err := quick.Check(annihil, nil); err != nil {
		t.Error(err)
	}
}

func TestLogAddCommutativeMonotone(t *testing.T) {
	f := func(a, b float32) bool {
		x := Weight(math.Mod(math.Abs(float64(a)), 50))
		y := Weight(math.Mod(math.Abs(float64(b)), 50))
		s := LogAdd(x, y)
		// Commutative and never worse than the best input.
		return ApproxEqual(s, LogAdd(y, x), 1e-5) && s <= Plus(x, y)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
