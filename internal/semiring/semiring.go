// Package semiring provides the weight algebra used by the WFST machinery.
//
// Speech decoders work with negative log probabilities in the tropical
// semiring: weights combine along a path by addition (Times) and alternative
// paths combine by taking the minimum (Plus). Zero is the annihilator
// (+Inf, an impossible path) and One is the identity (0, a free transition).
package semiring

import "math"

// Weight is a cost in negative natural-log space. Lower is better.
// float32 matches the 32-bit weight field of the paper's 128-bit arc record.
type Weight float32

// Zero is the tropical additive identity: an impossible (infinite-cost) path.
var Zero = Weight(math.Inf(1))

// One is the tropical multiplicative identity: a free transition.
const One Weight = 0

// Plus combines two alternative paths: the better (smaller) cost wins.
func Plus(a, b Weight) Weight {
	if a < b {
		return a
	}
	return b
}

// Times extends a path with an additional cost.
func Times(a, b Weight) Weight { return a + b }

// Less reports whether a is a strictly better (smaller) cost than b.
func Less(a, b Weight) bool { return a < b }

// IsZero reports whether w is the impossible cost (+Inf).
func IsZero(w Weight) bool { return math.IsInf(float64(w), 1) }

// ApproxEqual reports whether two weights are equal within tol. Infinite
// weights compare equal to each other.
func ApproxEqual(a, b, tol Weight) bool {
	if IsZero(a) && IsZero(b) {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// LogAdd returns -log(exp(-a) + exp(-b)), the log-semiring Plus.
// It is used when summing probabilities, e.g. during language-model
// estimation, and is numerically stable for large magnitudes.
func LogAdd(a, b Weight) Weight {
	if IsZero(a) {
		return b
	}
	if IsZero(b) {
		return a
	}
	if b < a {
		a, b = b, a
	}
	// a <= b, result = a - log(1 + exp(a-b)) in negated space.
	return a - Weight(math.Log1p(math.Exp(float64(a-b))))
}

// FromProb converts a probability in (0, 1] to a tropical weight.
// Probabilities <= 0 map to Zero.
func FromProb(p float64) Weight {
	if p <= 0 {
		return Zero
	}
	return Weight(-math.Log(p))
}

// ToProb converts a tropical weight back to a probability.
func ToProb(w Weight) float64 {
	if IsZero(w) {
		return 0
	}
	return math.Exp(-float64(w))
}
