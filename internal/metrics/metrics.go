// Package metrics provides the evaluation arithmetic of the paper's
// Section 5: word error rate (Levenshtein alignment), real-time factors,
// and small aggregate helpers used by the experiment harness.
package metrics

import (
	"fmt"
	"runtime"
	runtimemetrics "runtime/metrics"
	"time"
)

// EditOps is the breakdown of a minimum-edit-distance alignment.
type EditOps struct {
	Sub, Ins, Del int
	RefLen        int
}

// Errors returns the total error count.
func (e EditOps) Errors() int { return e.Sub + e.Ins + e.Del }

// Align computes the minimum-edit-distance operations turning ref into hyp.
func Align(ref, hyp []int32) EditOps {
	n, m := len(ref), len(hyp)
	// dp[i][j]: cost of aligning ref[:i] to hyp[:j], with backtraces.
	type cell struct {
		cost          int
		sub, ins, del int
	}
	prev := make([]cell, m+1)
	cur := make([]cell, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = cell{cost: j, ins: j}
	}
	for i := 1; i <= n; i++ {
		cur[0] = cell{cost: i, del: i}
		for j := 1; j <= m; j++ {
			if ref[i-1] == hyp[j-1] {
				cur[j] = prev[j-1]
				continue
			}
			sub, del, ins := prev[j-1], prev[j], cur[j-1]
			best := sub
			best.sub++
			if del.cost < best.cost {
				best = del
				best.del++
			}
			if ins.cost < best.cost {
				best = ins
				best.ins++
			}
			best.cost++
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	c := prev[m]
	return EditOps{Sub: c.sub, Ins: c.ins, Del: c.del, RefLen: n}
}

// WERAccumulator aggregates edit operations over a test set.
type WERAccumulator struct {
	ops EditOps
	utt int
}

// Add accumulates one utterance's alignment.
func (a *WERAccumulator) Add(ref, hyp []int32) {
	o := Align(ref, hyp)
	a.ops.Sub += o.Sub
	a.ops.Ins += o.Ins
	a.ops.Del += o.Del
	a.ops.RefLen += o.RefLen
	a.utt++
}

// WER returns the aggregate word error rate in percent.
func (a *WERAccumulator) WER() float64 {
	if a.ops.RefLen == 0 {
		return 0
	}
	return 100 * float64(a.ops.Errors()) / float64(a.ops.RefLen)
}

// Ops returns the aggregated operations.
func (a *WERAccumulator) Ops() EditOps { return a.ops }

// Utterances returns how many utterances were accumulated.
func (a *WERAccumulator) Utterances() int { return a.utt }

// String renders the accumulator like the paper's Table 6 rows.
func (a *WERAccumulator) String() string {
	return fmt.Sprintf("WER %.2f%% (%d sub, %d ins, %d del / %d ref words, %d utts)",
		a.WER(), a.ops.Sub, a.ops.Ins, a.ops.Del, a.ops.RefLen, a.utt)
}

// FrameDuration is the audio time represented by one feature frame
// (Section 2: decoders split speech into 10 ms frames).
const FrameDuration = 10 * time.Millisecond

// AudioDuration returns the audio time covered by a frame count.
func AudioDuration(frames int) time.Duration {
	return time.Duration(frames) * FrameDuration
}

// RTF returns the real-time factor: how many seconds of audio are decoded
// per second of processing. Larger is faster; 1.0 is exactly real time.
func RTF(audio, processing time.Duration) float64 {
	if processing <= 0 {
		return 0
	}
	return float64(audio) / float64(processing)
}

// MeanMax summarizes a sample of durations (Table 5 reports per-utterance
// average and maximum decode times).
func MeanMax(ds []time.Duration) (mean, max time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
		if d > max {
			max = d
		}
	}
	return sum / time.Duration(len(ds)), max
}

// AllocCounters is a point-in-time snapshot of the process's cumulative
// heap-allocation and GC counters, read cheaply (no stop-the-world) via
// runtime/metrics. Decoders sample a snapshot before and after a decode and
// report the Delta, which is how the token-store recycling of the Viterbi
// hot path stays observable instead of merely asserted.
type AllocCounters struct {
	// Bytes is the cumulative heap bytes allocated since process start.
	Bytes uint64
	// Objects is the cumulative heap objects allocated since process start.
	Objects uint64
	// GCs is the number of completed GC cycles since process start.
	GCs uint64
}

// allocSampleNames are the runtime/metrics series backing AllocCounters.
var allocSampleNames = [3]string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
}

// ReadAllocCounters samples the current process-wide allocation counters.
//
// The sample is cheap but span-granular: the runtime accounts small
// allocations only when their span fills (or a GC flushes per-P caches), so
// a window that allocates less than a span per size class can read a zero
// delta. Use it on per-utterance paths where a stop-the-world sample would
// stall concurrent workers; batch boundaries should prefer
// ReadAllocCountersExact.
func ReadAllocCounters() AllocCounters {
	var samples [3]runtimemetrics.Sample
	for i := range samples {
		samples[i].Name = allocSampleNames[i]
	}
	runtimemetrics.Read(samples[:])
	return AllocCounters{
		Bytes:   samples[0].Value.Uint64(),
		Objects: samples[1].Value.Uint64(),
		GCs:     samples[2].Value.Uint64(),
	}
}

// AllocSampler is ReadAllocCounters without the per-call allocation: the
// sample buffer handed to runtime/metrics escapes, so a stack-local one
// costs one heap object per read. A sampler owns the buffer instead and is
// reused across reads — the shape a lane slot needs, where a counter sample
// per recycled utterance must not break the 0-allocs/frame contract. Not
// safe for concurrent use; give each reader its own.
type AllocSampler struct {
	samples [3]runtimemetrics.Sample
}

// NewAllocSampler builds a reusable allocation-counter sampler.
func NewAllocSampler() *AllocSampler {
	s := &AllocSampler{}
	for i := range s.samples {
		s.samples[i].Name = allocSampleNames[i]
	}
	return s
}

// Read samples the current counters, allocating nothing.
func (s *AllocSampler) Read() AllocCounters {
	runtimemetrics.Read(s.samples[:])
	return AllocCounters{
		Bytes:   s.samples[0].Value.Uint64(),
		Objects: s.samples[1].Value.Uint64(),
		GCs:     s.samples[2].Value.Uint64(),
	}
}

// ReadAllocCountersExact samples the same counters precisely: it uses
// runtime.ReadMemStats, which briefly stops the world to flush every P's
// allocation cache, so even a handful of small allocations show up in the
// delta. Call it at batch boundaries, not inside per-utterance hot paths.
func ReadAllocCountersExact() AllocCounters {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return AllocCounters{Bytes: ms.TotalAlloc, Objects: ms.Mallocs, GCs: uint64(ms.NumGC)}
}

// MemoryFootprint is a point-in-time view of the process's memory and
// scheduler state, read cheaply via runtime/metrics (no stop-the-world).
// It is the serving-side counterpart of the paper's Figure 8 footprint
// comparison: a production decoder's claim to memory efficiency should be
// continuously observable, not only measured once per experiment.
type MemoryFootprint struct {
	// HeapLiveBytes is the memory occupied by live objects plus dead
	// objects not yet swept — the working-set figure a dashboard wants.
	HeapLiveBytes uint64
	// HeapGoalBytes is the GC's current heap-size target.
	HeapGoalBytes uint64
	// Goroutines is the live goroutine count (worker liveness at a glance).
	Goroutines uint64
}

// footprintSampleNames are the runtime/metrics series backing
// MemoryFootprint.
var footprintSampleNames = [3]string{
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/sched/goroutines:goroutines",
}

// ReadMemoryFootprint samples the current process memory footprint. Cheap
// enough to call from a metrics scrape handler.
func ReadMemoryFootprint() MemoryFootprint {
	var samples [3]runtimemetrics.Sample
	for i := range samples {
		samples[i].Name = footprintSampleNames[i]
	}
	runtimemetrics.Read(samples[:])
	return MemoryFootprint{
		HeapLiveBytes: samples[0].Value.Uint64(),
		HeapGoalBytes: samples[1].Value.Uint64(),
		Goroutines:    samples[2].Value.Uint64(),
	}
}

// Delta returns the counter advance from start to a (a must be the later
// snapshot; the runtime counters are monotonic).
func (a AllocCounters) Delta(start AllocCounters) AllocCounters {
	return AllocCounters{
		Bytes:   a.Bytes - start.Bytes,
		Objects: a.Objects - start.Objects,
		GCs:     a.GCs - start.GCs,
	}
}

// Throughput aggregates a batch-decoding run for serving-style reporting:
// how many utterances and frames were decoded in how much wall time, and
// how well the offset cache performed. The zero value is ready for Add.
type Throughput struct {
	// Utterances decoded in the batch.
	Utterances int
	// Frames decoded across all utterances.
	Frames int
	// Wall is the elapsed wall-clock time for the whole batch (not the sum
	// of per-utterance times: with N workers it is roughly that sum / N).
	Wall time.Duration
	// CacheHits and CacheLookups summarize the offset-lookup cache; both
	// zero when the decode path does not use one.
	CacheHits    int64
	CacheLookups int64
	// AllocBytes, AllocObjects and GCCycles are the process-wide heap
	// activity observed over the batch's wall time (AllocCounters deltas).
	// With the pooled token-store frontier they stay near-constant per
	// frame; a regression shows up here before it shows up in ns/frame.
	AllocBytes   int64
	AllocObjects int64
	GCCycles     int64
}

// Add merges another batch into t (Wall adds; for concurrent batches keep
// the outer wall time yourself).
func (t *Throughput) Add(o Throughput) {
	t.Utterances += o.Utterances
	t.Frames += o.Frames
	t.Wall += o.Wall
	t.CacheHits += o.CacheHits
	t.CacheLookups += o.CacheLookups
	t.AllocBytes += o.AllocBytes
	t.AllocObjects += o.AllocObjects
	t.GCCycles += o.GCCycles
}

// UtterancesPerSec is the batch decode rate in utterances per second.
func (t Throughput) UtterancesPerSec() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Utterances) / t.Wall.Seconds()
}

// FramesPerSec is the batch decode rate in frames per second.
func (t Throughput) FramesPerSec() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.Frames) / t.Wall.Seconds()
}

// RTF is the aggregate real-time factor of the batch: audio seconds decoded
// per wall-clock second, summed over workers (4 workers at 2x each ≈ 8x).
func (t Throughput) RTF() float64 {
	return RTF(AudioDuration(t.Frames), t.Wall)
}

// CacheHitRate is the offset-cache hit fraction in [0,1] (0 if unused).
func (t Throughput) CacheHitRate() float64 {
	if t.CacheLookups == 0 {
		return 0
	}
	return float64(t.CacheHits) / float64(t.CacheLookups)
}

// AllocsPerFrame is the average heap objects allocated per decoded frame
// over the batch (0 when no frames or no measurement).
func (t Throughput) AllocsPerFrame() float64 {
	if t.Frames == 0 {
		return 0
	}
	return float64(t.AllocObjects) / float64(t.Frames)
}

// BytesPerFrame is the average heap bytes allocated per decoded frame over
// the batch (0 when no frames or no measurement).
func (t Throughput) BytesPerFrame() float64 {
	if t.Frames == 0 {
		return 0
	}
	return float64(t.AllocBytes) / float64(t.Frames)
}

// String renders the aggregates as the one-line report unfold-decode prints
// after a parallel run.
func (t Throughput) String() string {
	s := fmt.Sprintf("%d utts (%.1f s audio) in %v: %.1f utt/s, %.0f frames/s, %.1fx real time",
		t.Utterances, AudioDuration(t.Frames).Seconds(), t.Wall.Round(time.Millisecond),
		t.UtterancesPerSec(), t.FramesPerSec(), t.RTF())
	if t.CacheLookups > 0 {
		s += fmt.Sprintf(", %.1f%% cache hit", 100*t.CacheHitRate())
	}
	if t.AllocObjects > 0 {
		s += fmt.Sprintf(", %.1f allocs/frame (%.0f B/frame, %d GCs)",
			t.AllocsPerFrame(), t.BytesPerFrame(), t.GCCycles)
	}
	return s
}

// Search aggregates search-health counters for a batch decode — the
// fault-tolerance companion to Throughput. It answers "did every utterance
// complete cleanly, and how hard did the engine have to fight for it":
// rescues are recoveries (a widened beam saved a dying search), failures
// are graceful degradations (partial hypothesis returned), panics and
// cancellations are per-utterance faults converted into typed errors.
// The zero value is ready for Add.
type Search struct {
	// Rescues counts beam widenings performed by search-failure rescue.
	Rescues int64
	// Failures counts utterances whose active-token set emptied and stayed
	// empty after any rescue attempts (a partial hypothesis was returned).
	Failures int64
	// Panics counts per-utterance decodes that panicked and were converted
	// into typed errors without poisoning the rest of the batch.
	Panics int64
	// Canceled counts utterances cut short or skipped because the batch
	// context was canceled or its deadline expired.
	Canceled int64
}

// Add merges another batch's search-health counters into s.
func (s *Search) Add(o Search) {
	s.Rescues += o.Rescues
	s.Failures += o.Failures
	s.Panics += o.Panics
	s.Canceled += o.Canceled
}

// Healthy reports whether the batch completed with no faults of any class.
func (s Search) Healthy() bool {
	return s.Rescues == 0 && s.Failures == 0 && s.Panics == 0 && s.Canceled == 0
}

// String renders the counters as the one-line health report unfold-decode
// prints after a batch with faults.
func (s Search) String() string {
	return fmt.Sprintf("search health: %d rescues, %d failures, %d panics, %d canceled",
		s.Rescues, s.Failures, s.Panics, s.Canceled)
}

// OracleWER returns the lowest WER achievable by picking the best
// hypothesis per utterance from an N-best list — the standard measure of
// how much headroom a rescoring pass (e.g. the two-pass decoder) has.
func OracleWER(refs [][]int32, nbest [][][]int32) float64 {
	var errs, words int
	for i, ref := range refs {
		words += len(ref)
		best := -1
		for _, hyp := range nbest[i] {
			if e := Align(ref, hyp).Errors(); best < 0 || e < best {
				best = e
			}
		}
		if best < 0 {
			best = len(ref) // no hypothesis: all deletions
		}
		errs += best
	}
	if words == 0 {
		return 0
	}
	return 100 * float64(errs) / float64(words)
}
