package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAlignBasics(t *testing.T) {
	for _, tc := range []struct {
		name     string
		ref, hyp []int32
		want     EditOps
	}{
		{"exact", []int32{1, 2, 3}, []int32{1, 2, 3}, EditOps{RefLen: 3}},
		{"one sub", []int32{1, 2, 3}, []int32{1, 9, 3}, EditOps{Sub: 1, RefLen: 3}},
		{"one del", []int32{1, 2, 3}, []int32{1, 3}, EditOps{Del: 1, RefLen: 3}},
		{"one ins", []int32{1, 3}, []int32{1, 2, 3}, EditOps{Ins: 1, RefLen: 2}},
		{"empty hyp", []int32{1, 2}, nil, EditOps{Del: 2, RefLen: 2}},
		{"empty ref", nil, []int32{1, 2}, EditOps{Ins: 2, RefLen: 0}},
		{"both empty", nil, nil, EditOps{}},
		{"total mismatch", []int32{1, 2}, []int32{3, 4}, EditOps{Sub: 2, RefLen: 2}},
	} {
		got := Align(tc.ref, tc.hyp)
		if got != tc.want {
			t.Errorf("%s: Align = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// Properties of edit distance: identity, bounded by max length, symmetry of
// error count under swapping ins/del, triangle-ish sanity.
func TestAlignProperties(t *testing.T) {
	gen := func(rng *rand.Rand) []int32 {
		s := make([]int32, rng.Intn(12))
		for i := range s {
			s[i] = int32(rng.Intn(5))
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		ab := Align(a, b)
		ba := Align(b, a)
		if Align(a, a).Errors() != 0 {
			return false
		}
		// Edit distance is symmetric. (The op decomposition is not unique
		// among equal-cost alignments, so Ins/Del need not swap exactly.)
		if ab.Errors() != ba.Errors() {
			return false
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		if ab.Errors() > maxLen {
			return false
		}
		// Consistency: ops counts sum to the cost implied by length algebra:
		// len(hyp) = RefLen - Del + Ins.
		return len(b) == ab.RefLen-ab.Del+ab.Ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWERAccumulator(t *testing.T) {
	var acc WERAccumulator
	acc.Add([]int32{1, 2, 3, 4}, []int32{1, 2, 3, 4})
	acc.Add([]int32{1, 2, 3, 4}, []int32{1, 9, 3})
	if acc.Utterances() != 2 {
		t.Errorf("utterances = %d", acc.Utterances())
	}
	// 2 errors over 8 ref words = 25%.
	if got := acc.WER(); got != 25 {
		t.Errorf("WER = %v, want 25", got)
	}
	if acc.String() == "" {
		t.Error("empty String()")
	}
}

func TestWEREmptyIsZero(t *testing.T) {
	var acc WERAccumulator
	if acc.WER() != 0 {
		t.Error("empty accumulator WER != 0")
	}
}

func TestRTFAndAudioDuration(t *testing.T) {
	if d := AudioDuration(100); d != time.Second {
		t.Errorf("AudioDuration(100) = %v", d)
	}
	if r := RTF(time.Second, 10*time.Millisecond); r != 100 {
		t.Errorf("RTF = %v, want 100", r)
	}
	if r := RTF(time.Second, 0); r != 0 {
		t.Errorf("RTF with zero processing = %v", r)
	}
}

func TestMeanMax(t *testing.T) {
	mean, max := MeanMax([]time.Duration{time.Second, 3 * time.Second})
	if mean != 2*time.Second || max != 3*time.Second {
		t.Errorf("MeanMax = %v, %v", mean, max)
	}
	mean, max = MeanMax(nil)
	if mean != 0 || max != 0 {
		t.Error("MeanMax(nil) should be zero")
	}
}

func TestOracleWER(t *testing.T) {
	refs := [][]int32{{1, 2, 3}, {4, 5}}
	nbest := [][][]int32{
		{{1, 9, 3}, {1, 2, 3}}, // second hypothesis is exact
		{{4, 9}},               // best available has one substitution
	}
	if got := OracleWER(refs, nbest); got != 20 {
		t.Errorf("OracleWER = %v, want 20 (1 err / 5 words)", got)
	}
	// Empty N-best list counts as full deletion.
	if got := OracleWER([][]int32{{1, 2}}, [][][]int32{{}}); got != 100 {
		t.Errorf("OracleWER with no hypotheses = %v, want 100", got)
	}
	// Oracle can never exceed the 1-best WER.
	var acc WERAccumulator
	for i := range refs {
		acc.Add(refs[i], nbest[i][0])
	}
	if OracleWER(refs, nbest) > acc.WER() {
		t.Error("oracle WER exceeds 1-best WER")
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{
		Utterances:   8,
		Frames:       4000, // 40 s of audio at 10 ms/frame
		Wall:         2 * time.Second,
		CacheHits:    75,
		CacheLookups: 100,
	}
	if got := tp.UtterancesPerSec(); got != 4 {
		t.Errorf("UtterancesPerSec = %v, want 4", got)
	}
	if got := tp.FramesPerSec(); got != 2000 {
		t.Errorf("FramesPerSec = %v, want 2000", got)
	}
	if got := tp.RTF(); got != 20 {
		t.Errorf("RTF = %v, want 20 (40s audio / 2s wall)", got)
	}
	if got := tp.CacheHitRate(); got != 0.75 {
		t.Errorf("CacheHitRate = %v, want 0.75", got)
	}
	s := tp.String()
	for _, want := range []string{"8 utts", "4.0 utt/s", "20.0x real time", "75.0% cache hit"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q; missing %q", s, want)
		}
	}

	// Zero value: no division blow-ups, no cache clause.
	var zero Throughput
	if zero.UtterancesPerSec() != 0 || zero.FramesPerSec() != 0 || zero.RTF() != 0 || zero.CacheHitRate() != 0 {
		t.Error("zero Throughput rates should all be 0")
	}
	if strings.Contains(zero.String(), "cache") {
		t.Errorf("zero String() mentions cache: %q", zero.String())
	}

	// Add accumulates every field.
	sum := zero
	sum.Add(tp)
	sum.Add(tp)
	if sum.Utterances != 16 || sum.Frames != 8000 || sum.Wall != 4*time.Second ||
		sum.CacheHits != 150 || sum.CacheLookups != 200 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestSearchHealth(t *testing.T) {
	var s Search
	if !s.Healthy() {
		t.Error("zero Search should be healthy")
	}
	s.Add(Search{Rescues: 2, Failures: 1})
	s.Add(Search{Panics: 3, Canceled: 4, Rescues: 1})
	if s.Rescues != 3 || s.Failures != 1 || s.Panics != 3 || s.Canceled != 4 {
		t.Errorf("Add: %+v", s)
	}
	if s.Healthy() {
		t.Error("faulted Search reported healthy")
	}
	want := "search health: 3 rescues, 1 failures, 3 panics, 4 canceled"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
	for _, one := range []Search{{Rescues: 1}, {Failures: 1}, {Panics: 1}, {Canceled: 1}} {
		if one.Healthy() {
			t.Errorf("%+v reported healthy", one)
		}
	}
}

// sink keeps test allocations from being optimized away.
var sink []*[64]byte

func TestAllocCountersExactSeesSmallAllocations(t *testing.T) {
	a0 := ReadAllocCountersExact()
	sink = make([]*[64]byte, 16)
	for i := range sink {
		sink[i] = new([64]byte)
	}
	d := ReadAllocCountersExact().Delta(a0)
	if d.Objects < 16 {
		t.Errorf("exact delta saw %d objects, want >= 16", d.Objects)
	}
	if d.Bytes < 16*64 {
		t.Errorf("exact delta saw %d bytes, want >= %d", d.Bytes, 16*64)
	}
}

func TestAllocCountersDelta(t *testing.T) {
	a := AllocCounters{Bytes: 100, Objects: 10, GCs: 3}
	b := AllocCounters{Bytes: 250, Objects: 14, GCs: 3}
	d := b.Delta(a)
	if d.Bytes != 150 || d.Objects != 4 || d.GCs != 0 {
		t.Errorf("Delta = %+v", d)
	}
}

// TestReadMemoryFootprint sanity-checks the runtime/metrics-backed
// footprint snapshot: a running test binary has a live heap, a GC goal,
// and at least one goroutine.
func TestReadMemoryFootprint(t *testing.T) {
	fp := ReadMemoryFootprint()
	if fp.HeapLiveBytes == 0 {
		t.Error("HeapLiveBytes = 0")
	}
	if fp.HeapGoalBytes == 0 {
		t.Error("HeapGoalBytes = 0")
	}
	if fp.Goroutines == 0 {
		t.Error("Goroutines = 0")
	}
}
