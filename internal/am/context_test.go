package am

import (
	"testing"

	"repro/internal/wfst"
)

func TestBuildGraphCDValid(t *testing.T) {
	lex := genLex(t, 41, 30, 12)
	tying := CDTying{NumSenones: 300, Seed: 5}
	gr, err := BuildGraphCD(lex, Topology{}, tying)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if gr.NumSenones != 300 {
		t.Errorf("NumSenones = %d, want 300", gr.NumSenones)
	}
	// The CI and CD graphs must have identical topology (only labels
	// differ).
	ci, err := BuildGraph(lex, Topology{})
	if err != nil {
		t.Fatal(err)
	}
	if ci.G.NumStates() != gr.G.NumStates() || ci.G.NumArcs() != gr.G.NumArcs() {
		t.Errorf("CD topology differs: %d/%d states, %d/%d arcs",
			gr.G.NumStates(), ci.G.NumStates(), gr.G.NumArcs(), ci.G.NumArcs())
	}
	// Senone labels must stay within the tied inventory.
	for s := wfst.StateID(0); int(s) < gr.G.NumStates(); s++ {
		for _, a := range gr.G.Arcs(s) {
			if a.In < 0 || a.In > 300 {
				t.Fatalf("senone %d outside tied inventory", a.In)
			}
		}
	}
}

func TestCDContextChangesSenones(t *testing.T) {
	tying := CDTying{NumSenones: 500, Seed: 9}
	// With a 500-class inventory, the same phone in different contexts
	// should usually map to different senones.
	diff := 0
	for ph := int32(1); ph <= 20; ph++ {
		if tying.Senone(0, ph, 0) != tying.Senone(3, ph, 0) {
			diff++
		}
	}
	if diff < 15 {
		t.Errorf("only %d/20 phones got context-distinct senones", diff)
	}
	// Deterministic.
	if tying.Senone(2, 7, 1) != tying.Senone(2, 7, 1) {
		t.Error("tying is not deterministic")
	}
}

// Every word must remain traversable using the CD senone sequence.
func TestCDWordsTraversable(t *testing.T) {
	lex := genLex(t, 43, 25, 10)
	topo := Topology{StatesPerPhone: 3}
	tying := CDTying{NumSenones: 400, Seed: 1}
	gr, err := BuildGraphCD(lex, topo, tying)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.G
	for w := int32(1); w <= int32(lex.V()); w++ {
		seq := SenoneSeqCD(lex, topo, tying, []int32{w})
		s := g.Start()
		var emitted int32
		for _, sen := range seq {
			next := wfst.NoState
			for _, a := range g.Arcs(s) {
				if a.In == sen && a.Next != s {
					next = a.Next
					if a.Out != wfst.Epsilon {
						emitted = a.Out
					}
					break
				}
			}
			if next == wfst.NoState {
				t.Fatalf("word %d: no arc for CD senone %d at state %d", w, sen, s)
			}
			s = next
		}
		if emitted != w {
			t.Fatalf("word %d: CD traversal emitted %d", w, emitted)
		}
	}
}

func TestBuildGraphCDErrors(t *testing.T) {
	lex := genLex(t, 45, 5, 5)
	if _, err := BuildGraphCD(lex, Topology{}, CDTying{NumSenones: 0}); err == nil {
		t.Error("expected error for empty inventory")
	}
	if _, err := BuildGraphCD(lex, Topology{}, CDTying{NumSenones: 1 << 13}); err == nil {
		t.Error("expected error for inventory exceeding the 12-bit format")
	}
}

// End-to-end: a CD graph compresses and decodes like a CI graph (format
// compatibility), with a richer senone space.
func TestCDDistinctSenonesGrow(t *testing.T) {
	lex := genLex(t, 47, 40, 12)
	ci, err := BuildGraph(lex, Topology{})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := BuildGraphCD(lex, Topology{}, CDTying{NumSenones: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cd.NumDistinctSenones() <= ci.NumDistinctSenones() {
		t.Errorf("CD senones %d not richer than CI %d",
			cd.NumDistinctSenones(), ci.NumDistinctSenones())
	}
}
