package am

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLexiconRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	lex, err := GenerateLexicon(rng, GenerateOptions{Vocab: 30, Phones: 12, AltPronProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLexicon(lex, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLexicon(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.V() != lex.V() || got.NumPhones != lex.NumPhones {
		t.Fatalf("header mismatch: V %d/%d phones %d/%d", got.V(), lex.V(), got.NumPhones, lex.NumPhones)
	}
	for w := 1; w <= lex.V(); w++ {
		if got.Words[w] != lex.Words[w] {
			t.Fatalf("word %d: %q vs %q", w, got.Words[w], lex.Words[w])
		}
		if len(got.Prons[w]) != len(lex.Prons[w]) {
			t.Fatalf("word %d: %d vs %d pronunciations", w, len(got.Prons[w]), len(lex.Prons[w]))
		}
		for p := range lex.Prons[w] {
			if len(got.Prons[w][p]) != len(lex.Prons[w][p]) {
				t.Fatalf("word %d pron %d length differs", w, p)
			}
			for i := range lex.Prons[w][p] {
				if got.Prons[w][p][i] != lex.Prons[w][p][i] {
					t.Fatalf("word %d pron %d phone %d differs", w, p, i)
				}
			}
		}
	}
}

func TestReadLexiconErrors(t *testing.T) {
	for name, text := range map[string]string{
		"missing header": "word 1 2 3\n",
		"bad header":     "#phones abc\nword 1 2\n",
		"bad phone":      "#phones 5\nword 1 x\n",
		"no pron":        "#phones 5\nword\n",
		"zero phone":     "#phones 5\nword 0\n",
	} {
		if _, err := ReadLexicon(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadLexiconSkipsBlanks(t *testing.T) {
	text := "#phones 4\n\nalpha 1 2\n\nbeta 3\n"
	lex, err := ReadLexicon(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if lex.V() != 2 || lex.Words[1] != "alpha" || lex.Words[2] != "beta" {
		t.Fatalf("parsed %v", lex.Words)
	}
}
