package am

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteLexicon writes the lexicon in the classic text format, one
// pronunciation per line: "<word> <phone> <phone> ...". A header line
// records the phone-inventory size.
func WriteLexicon(l *Lexicon, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#phones %d\n", l.NumPhones)
	for word := 1; word <= l.V(); word++ {
		for _, pron := range l.Prons[word] {
			fmt.Fprintf(bw, "%s", l.Words[word])
			for _, ph := range pron {
				fmt.Fprintf(bw, " %d", ph)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// ReadLexicon parses the text format written by WriteLexicon. Word IDs are
// assigned in first-appearance order, so a round trip preserves them.
func ReadLexicon(r io.Reader) (*Lexicon, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lex := &Lexicon{Words: []string{"<eps>"}, Prons: [][][]int32{nil}}
	ids := map[string]int32{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#phones ") {
			n, err := strconv.Atoi(strings.TrimPrefix(line, "#phones "))
			if err != nil {
				return nil, fmt.Errorf("am: bad phone header %q", line)
			}
			lex.NumPhones = n
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("am: malformed lexicon line %q", line)
		}
		id, ok := ids[fields[0]]
		if !ok {
			id = int32(len(lex.Words))
			ids[fields[0]] = id
			lex.Words = append(lex.Words, fields[0])
			lex.Prons = append(lex.Prons, nil)
		}
		pron := make([]int32, len(fields)-1)
		for i, f := range fields[1:] {
			ph, err := strconv.Atoi(f)
			if err != nil || ph < 1 {
				return nil, fmt.Errorf("am: bad phone %q in %q", f, line)
			}
			pron[i] = int32(ph)
		}
		lex.Prons[id] = append(lex.Prons[id], pron)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lex.NumPhones == 0 {
		return nil, fmt.Errorf("am: lexicon missing #phones header")
	}
	for w := 1; w <= lex.V(); w++ {
		if len(lex.Prons[w]) == 0 {
			return nil, fmt.Errorf("am: word %q has no pronunciation", lex.Words[w])
		}
	}
	return lex, nil
}
