package am

import (
	"fmt"

	"repro/internal/wfst"
)

// CDTying describes left-biphone context dependency with state tying: the
// acoustic unit of an HMM state is (left-context phone, phone, substate),
// hashed into NumSenones tied classes. Real systems tie with phonetic
// decision trees; a seeded hash is the synthetic stand-in that preserves
// the property that matters for the decoder and the compressed format —
// the same phone gets different senones in different contexts, multiplying
// the acoustic-score space the way triphone models do (Section 5.3:
// "supporting any acoustic model (basephones, triphones...)").
type CDTying struct {
	// NumSenones is the tied-state inventory size (e.g. 2000 for a real
	// system; a few hundred at our scale).
	NumSenones int
	Seed       uint64
}

// Senone maps (left-context phone, phone, substate) to a tied senone in
// 1..NumSenones. Context 0 is the word-boundary context.
func (t CDTying) Senone(prev, ph int32, sub int) int32 {
	h := t.Seed ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(uint32(prev)), uint64(uint32(ph)), uint64(sub)} {
		h ^= v
		h *= 1099511628211
	}
	return int32(h%uint64(t.NumSenones)) + 1
}

// BuildGraphCD constructs the lexicon-tree transducer with left-biphone
// tied-state labels. The graph topology is identical to the
// context-independent BuildGraph — only the input (senone) labels change,
// so every decoder and the compressed AM format work unchanged; the
// acoustic-score vector simply grows to the tied-state inventory.
//
// Within the pronunciation trie the left context of a phone is the parent
// edge's phone; word-initial phones (and the silence loop) use the
// word-boundary context 0. Cross-word context dependency — the source of
// the biphone blow-up in real static graphs — is intentionally not
// modelled, matching the word-boundary approximation common in embedded
// recognizers.
func BuildGraphCD(lex *Lexicon, topo Topology, tying CDTying) (*Graph, error) {
	if tying.NumSenones < 1 {
		return nil, fmt.Errorf("am: CD tying needs a positive senone inventory")
	}
	if tying.NumSenones >= 1<<12 {
		return nil, fmt.Errorf("am: %d tied senones exceeds the 12-bit compressed format", tying.NumSenones)
	}
	topo = topo.withDefaults()
	return buildGraph(lex, topo, tying.Senone, tying.NumSenones)
}

// SenoneSeqCD expands a word sequence into the tied-senone occupancy
// sequence consistent with BuildGraphCD's labelling (for synthesis and
// forced alignment). Silence is not inserted; the caller interleaves it
// with context 0 boundaries if needed.
func SenoneSeqCD(lex *Lexicon, topo Topology, tying CDTying, words []int32) []int32 {
	topo = topo.withDefaults()
	var seq []int32
	for _, w := range words {
		ctx := int32(0) // each word starts at the tree root: boundary context
		for _, ph := range lex.Pron(w) {
			for sub := 0; sub < topo.StatesPerPhone; sub++ {
				seq = append(seq, tying.Senone(ctx, ph, sub))
			}
			ctx = ph
		}
	}
	return seq
}

// NumDistinctSenones reports how many distinct senone labels a graph
// actually uses (≤ the tied inventory).
func (gr *Graph) NumDistinctSenones() int {
	seen := map[int32]bool{}
	g := gr.G
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		for _, a := range g.Arcs(s) {
			if a.In != wfst.Epsilon {
				seen[a.In] = true
			}
		}
	}
	return len(seen)
}
