package am

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Topology describes the HMM structure used per phone.
type Topology struct {
	// StatesPerPhone is 3 for the Kaldi-style tasks and 1 for the
	// EESEN-style (CTC phone posterior) tasks.
	StatesPerPhone int
	// SelfLoopProb is the per-state self-transition probability; the
	// forward transition carries the complement. Default 0.6.
	SelfLoopProb float64
}

func (t Topology) withDefaults() Topology {
	if t.StatesPerPhone == 0 {
		t.StatesPerPhone = 3
	}
	if t.SelfLoopProb == 0 {
		t.SelfLoopProb = 0.6
	}
	return t
}

// Senone returns the 1-based acoustic-score index of (phone, substate).
// Index 0 is the WFST epsilon label, so senones start at 1.
func (t Topology) Senone(phone int32, substate int) int32 {
	return (phone-1)*int32(t.StatesPerPhone) + int32(substate) + 1
}

// NumSenones returns the acoustic-score vector length for a phone inventory.
func (t Topology) NumSenones(numPhones int) int { return numPhones * t.StatesPerPhone }

// Graph bundles the AM transducer with the metadata decoding needs.
type Graph struct {
	G          *wfst.WFST
	Lex        *Lexicon
	Topo       Topology
	NumSenones int
}

// BuildGraph constructs the lexicon-tree acoustic transducer of Figure 3a:
//
//   - A pronunciation trie over phones, each trie edge expanded into
//     StatesPerPhone emitting HMM states with self-loops.
//   - The arc entering the final HMM state of a word's last phone carries
//     the word ID as output label (the cross-word transition the on-the-fly
//     composer reacts to).
//   - Each word leaf closes back to the start state with an ε/ε arc.
//   - An optional silence-phone loop at the start state.
//
// State numbering follows chain order, so the overwhelming majority of arcs
// are self-loops or +1 hops — the property the 2-bit destination tag of the
// compressed AM format (Figure 5) exploits.
func BuildGraph(lex *Lexicon, topo Topology) (*Graph, error) {
	topo = topo.withDefaults()
	ci := func(_ int32, ph int32, sub int) int32 { return topo.Senone(ph, sub) }
	return buildGraph(lex, topo, ci, topo.NumSenones(lex.NumPhones))
}

// buildGraph is the shared lexicon-tree constructor; senoneOf maps
// (left-context phone, phone, substate) to an acoustic-score index, which
// is how the context-dependent variant plugs in.
func buildGraph(lex *Lexicon, topo Topology, senoneOf func(prev, ph int32, sub int) int32, numSenones int) (*Graph, error) {
	if topo.StatesPerPhone < 1 || topo.StatesPerPhone > 8 {
		return nil, fmt.Errorf("am: unsupported states-per-phone %d", topo.StatesPerPhone)
	}
	if topo.SelfLoopProb <= 0 || topo.SelfLoopProb >= 1 {
		return nil, fmt.Errorf("am: self-loop probability %v out of (0,1)", topo.SelfLoopProb)
	}

	selfW := semiring.Weight(-math.Log(topo.SelfLoopProb))
	fwdW := semiring.Weight(-math.Log(1 - topo.SelfLoopProb))

	b := wfst.NewBuilder()
	start := b.AddState()
	b.SetStart(start)
	b.SetFinal(start, semiring.One)

	// expandPhone appends the HMM chain for one phone after state prev,
	// labelling senones with the left-context phone ctx. word, if non-zero,
	// is emitted on the arc entering the chain's last state. It returns the
	// last chain state.
	expandPhone := func(prev wfst.StateID, ctx, phone int32, word int32) wfst.StateID {
		for i := 0; i < topo.StatesPerPhone; i++ {
			out := wfst.Epsilon
			if i == topo.StatesPerPhone-1 {
				out = word
			}
			sen := senoneOf(ctx, phone, i)
			next := b.AddState()
			b.AddArc(prev, wfst.Arc{In: sen, Out: out, W: fwdW, Next: next})
			b.AddArc(next, wfst.Arc{In: sen, Out: wfst.Epsilon, W: selfW, Next: next})
			prev = next
		}
		return prev
	}

	// Pronunciation trie: nodes keyed by path; expand depth-first in sorted
	// phone order for determinism.
	type trieNode struct {
		children map[int32]*trieNode
		word     int32 // non-zero at a leaf: the word ending here
	}
	root := &trieNode{children: map[int32]*trieNode{}}
	for w := 1; w <= lex.V(); w++ {
		for _, pron := range lex.Prons[w] {
			node := root
			for i, ph := range pron {
				next, ok := node.children[ph]
				if !ok {
					next = &trieNode{children: map[int32]*trieNode{}}
					node.children[ph] = next
				}
				node = next
				if node.word != 0 && i < len(pron)-1 {
					return nil, fmt.Errorf("am: lexicon is not prefix-free at word %d", w)
				}
			}
			if node.word != 0 || len(node.children) > 0 {
				return nil, fmt.Errorf("am: lexicon is not prefix-free at word %d", w)
			}
			node.word = int32(w)
		}
	}

	var expand func(node *trieNode, state wfst.StateID, ctx int32)
	expand = func(node *trieNode, state wfst.StateID, ctx int32) {
		phones := make([]int32, 0, len(node.children))
		for ph := range node.children {
			phones = append(phones, ph)
		}
		sort.Slice(phones, func(i, j int) bool { return phones[i] < phones[j] })
		for _, ph := range phones {
			child := node.children[ph]
			last := expandPhone(state, ctx, ph, child.word)
			if child.word != 0 {
				// Word end: close the loop back to the start state.
				b.AddArc(last, wfst.Arc{In: wfst.Epsilon, Out: wfst.Epsilon, W: semiring.One, Next: start})
			} else {
				expand(child, last, ph)
			}
		}
	}
	expand(root, start, 0)

	// Silence loop at the start state (word-boundary context).
	silEnd := expandPhone(start, 0, lex.SilencePhone(), wfst.Epsilon)
	b.AddArc(silEnd, wfst.Arc{In: wfst.Epsilon, Out: wfst.Epsilon, W: semiring.One, Next: start})

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{
		G:          g,
		Lex:        lex,
		Topo:       topo,
		NumSenones: numSenones,
	}, nil
}

// SenoneSeqStats classifies the graph's arcs the way the compressed AM
// format does; used by tests and the compressor.
type ArcClassCounts struct {
	SelfLoop, Forward, Backward, Far int
	CrossWord                        int
}

// ClassifyArcs counts arcs by destination class (self, +1, -1, far) and
// cross-word arcs.
func (gr *Graph) ClassifyArcs() ArcClassCounts {
	var c ArcClassCounts
	g := gr.G
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		for _, a := range g.Arcs(s) {
			switch a.Next {
			case s:
				c.SelfLoop++
			case s + 1:
				c.Forward++
			case s - 1:
				c.Backward++
			default:
				c.Far++
			}
			if a.Out != wfst.Epsilon {
				c.CrossWord++
			}
		}
	}
	return c
}
