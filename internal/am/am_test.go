package am

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

func genLex(t testing.TB, seed int64, vocab, phones int) *Lexicon {
	t.Helper()
	lex, err := GenerateLexicon(rand.New(rand.NewSource(seed)), GenerateOptions{Vocab: vocab, Phones: phones})
	if err != nil {
		t.Fatal(err)
	}
	return lex
}

func TestGenerateLexiconBasics(t *testing.T) {
	lex := genLex(t, 1, 50, 20)
	if lex.V() != 50 {
		t.Fatalf("V = %d, want 50", lex.V())
	}
	if lex.NumPhones != 21 {
		t.Fatalf("NumPhones = %d, want 21 (20 + silence)", lex.NumPhones)
	}
	for w := int32(1); w <= 50; w++ {
		pron := lex.Pron(w)
		if len(pron) < 2 || len(pron) > 8 {
			t.Errorf("word %d pron length %d outside [2,8]", w, len(pron))
		}
		for _, ph := range pron {
			if ph < 1 || ph >= lex.SilencePhone() {
				t.Errorf("word %d uses phone %d (silence is %d)", w, ph, lex.SilencePhone())
			}
		}
	}
}

func TestGenerateLexiconErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateLexicon(rng, GenerateOptions{Vocab: 0, Phones: 5}); err == nil {
		t.Error("expected error for zero vocab")
	}
	if _, err := GenerateLexicon(rng, GenerateOptions{Vocab: 5, Phones: 1}); err == nil {
		t.Error("expected error for tiny phone set")
	}
	if _, err := GenerateLexicon(rng, GenerateOptions{Vocab: 5, Phones: 5, MinLen: 4, MaxLen: 2}); err == nil {
		t.Error("expected error for inverted length range")
	}
}

// Property: generated pronunciation sets are prefix-free — the invariant
// that gives every word a unique cross-word arc in the lexicon tree.
func TestLexiconPrefixFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lex, err := GenerateLexicon(rng, GenerateOptions{Vocab: 40, Phones: 8, AltPronProb: 0.2})
		if err != nil {
			return false
		}
		var all [][]int32
		for w := 1; w <= lex.V(); w++ {
			all = append(all, lex.Prons[w]...)
		}
		isPrefix := func(a, b []int32) bool {
			if len(a) > len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		for i := range all {
			for j := range all {
				if i != j && isPrefix(all[i], all[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTopologySenoneNumbering(t *testing.T) {
	topo := Topology{StatesPerPhone: 3, SelfLoopProb: 0.6}
	if topo.Senone(1, 0) != 1 {
		t.Errorf("Senone(1,0) = %d, want 1", topo.Senone(1, 0))
	}
	if topo.Senone(1, 2) != 3 {
		t.Errorf("Senone(1,2) = %d, want 3", topo.Senone(1, 2))
	}
	if topo.Senone(2, 0) != 4 {
		t.Errorf("Senone(2,0) = %d, want 4", topo.Senone(2, 0))
	}
	if topo.NumSenones(10) != 30 {
		t.Errorf("NumSenones(10) = %d, want 30", topo.NumSenones(10))
	}
}

func TestBuildGraphStructure(t *testing.T) {
	lex := genLex(t, 2, 30, 12)
	gr, err := BuildGraph(lex, Topology{})
	if err != nil {
		t.Fatal(err)
	}
	g := gr.G
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Start() != 0 || !g.IsFinal(0) {
		t.Fatal("start state must be 0 and final")
	}
	st := wfst.ComputeStats(g)
	// Exactly one cross-word arc per pronunciation.
	wantCross := 0
	for w := 1; w <= lex.V(); w++ {
		wantCross += len(lex.Prons[w])
	}
	if st.CrossWordArcs != wantCross {
		t.Errorf("cross-word arcs = %d, want %d", st.CrossWordArcs, wantCross)
	}
	// Each cross-word arc has a distinct word... collect them.
	seen := map[int32]int{}
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		for _, a := range g.Arcs(s) {
			if a.Out != wfst.Epsilon {
				seen[a.Out]++
			}
		}
	}
	for w := int32(1); w <= int32(lex.V()); w++ {
		if seen[w] != len(lex.Prons[w]) {
			t.Errorf("word %d appears on %d arcs, want %d", w, seen[w], len(lex.Prons[w]))
		}
	}
}

// Property: every word is decodable in isolation — following its
// pronunciation's senones from the start state reaches a cross-word arc
// emitting exactly that word and returns to the start state.
func TestEveryWordTraversable(t *testing.T) {
	lex := genLex(t, 3, 40, 10)
	for _, spp := range []int{1, 3} {
		gr, err := BuildGraph(lex, Topology{StatesPerPhone: spp})
		if err != nil {
			t.Fatal(err)
		}
		g := gr.G
		for w := int32(1); w <= int32(lex.V()); w++ {
			s := g.Start()
			var emitted int32
			for _, ph := range lex.Pron(w) {
				for sub := 0; sub < spp; sub++ {
					senone := gr.Topo.Senone(ph, sub)
					// Find the non-self-loop arc with this senone.
					next := wfst.NoState
					for _, a := range g.Arcs(s) {
						if a.In == senone && a.Next != s {
							next = a.Next
							if a.Out != wfst.Epsilon {
								emitted = a.Out
							}
							break
						}
					}
					if next == wfst.NoState {
						t.Fatalf("spp=%d word %d: no arc for senone %d at state %d", spp, w, senone, s)
					}
					s = next
				}
			}
			if emitted != w {
				t.Fatalf("spp=%d: traversing word %d emitted %d", spp, w, emitted)
			}
			// The leaf must close back to start with an epsilon arc.
			arcs := g.Arcs(s)
			foundLoop := false
			for _, a := range arcs {
				if a.In == wfst.Epsilon && a.Next == g.Start() {
					foundLoop = true
				}
			}
			if !foundLoop {
				t.Fatalf("spp=%d word %d: leaf state %d has no loop-back arc", spp, w, s)
			}
		}
	}
}

func TestSelfLoopsPresent(t *testing.T) {
	lex := genLex(t, 4, 10, 8)
	gr, err := BuildGraph(lex, Topology{})
	if err != nil {
		t.Fatal(err)
	}
	c := gr.ClassifyArcs()
	// Every emitting state has a self-loop; chains make forward arcs +1.
	if c.SelfLoop == 0 || c.Forward == 0 {
		t.Fatalf("arc classes: %+v", c)
	}
	// The compressed format's premise: short-format arcs dominate.
	short := c.SelfLoop + c.Forward + c.Backward - c.CrossWord
	total := c.SelfLoop + c.Forward + c.Backward + c.Far
	if float64(short) < 0.7*float64(total) {
		t.Errorf("short-format arcs only %d of %d", short, total)
	}
}

func TestGraphWeightsAreStochastic(t *testing.T) {
	lex := genLex(t, 5, 8, 6)
	gr, err := BuildGraph(lex, Topology{SelfLoopProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g := gr.G
	// Self-loop and forward weight must both be -ln(0.5).
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		for _, a := range g.Arcs(s) {
			if a.In == wfst.Epsilon {
				continue
			}
			if !semiring.ApproxEqual(a.W, 0.6931472, 1e-5) {
				t.Fatalf("arc weight %v, want ln 2", a.W)
			}
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	lex := genLex(t, 6, 5, 5)
	if _, err := BuildGraph(lex, Topology{StatesPerPhone: 99}); err == nil {
		t.Error("expected error for absurd topology")
	}
	if _, err := BuildGraph(lex, Topology{StatesPerPhone: 3, SelfLoopProb: 1.5}); err == nil {
		t.Error("expected error for bad self-loop probability")
	}
	// Non-prefix-free lexicon must be rejected.
	bad := &Lexicon{
		Words:     []string{"<eps>", "a", "b"},
		Prons:     [][][]int32{nil, {{1, 2}}, {{1, 2, 3}}},
		NumPhones: 5,
	}
	if _, err := BuildGraph(bad, Topology{}); err == nil {
		t.Error("expected error for non-prefix-free lexicon")
	}
}

func TestPhonesOf(t *testing.T) {
	lex := genLex(t, 7, 5, 5)
	seq := lex.PhonesOf([]int32{1, 2})
	want := len(lex.Pron(1)) + len(lex.Pron(2))
	if len(seq) != want {
		t.Errorf("PhonesOf length = %d, want %d", len(seq), want)
	}
}
