// Package am implements the acoustic-model substrate: a synthetic
// pronunciation lexicon, HMM phone topologies, and the lexicon-tree AM
// transducer of the paper's Figure 3a, whose input labels are senone
// (HMM-state) indices and whose cross-word arcs emit word IDs.
package am

import (
	"fmt"
	"math/rand"
)

// Lexicon maps word IDs to pronunciations (phone ID sequences).
// Word IDs are 1-based to match the WFST label space; phone IDs are 1-based
// too, with phone NumPhones reserved for silence.
type Lexicon struct {
	// Words[w] is the surface form of word w; Words[0] is "<eps>".
	Words []string
	// Prons[w] lists the pronunciations of word w; Prons[0] is nil.
	// The union of all pronunciations is prefix-free, so every word ends at
	// a leaf of the pronunciation trie and carries a unique cross-word arc.
	Prons [][][]int32
	// NumPhones is the phone-inventory size including the silence phone,
	// which is phone ID NumPhones and never appears in a pronunciation.
	NumPhones int
}

// V returns the vocabulary size.
func (l *Lexicon) V() int { return len(l.Words) - 1 }

// SilencePhone returns the reserved silence phone ID.
func (l *Lexicon) SilencePhone() int32 { return int32(l.NumPhones) }

// Pron returns the primary pronunciation of word w.
func (l *Lexicon) Pron(w int32) []int32 { return l.Prons[w][0] }

// PhonesOf concatenates the primary pronunciations of a word sequence.
func (l *Lexicon) PhonesOf(words []int32) []int32 {
	var out []int32
	for _, w := range words {
		out = append(out, l.Pron(w)...)
	}
	return out
}

// GenerateOptions controls synthetic lexicon generation.
type GenerateOptions struct {
	Vocab  int // number of words (>= 1)
	Phones int // phone inventory size excluding silence (>= 2)
	// MinLen/MaxLen bound pronunciation lengths; defaults 2 and 8.
	MinLen, MaxLen int
	// AltPronProb is the probability a word receives a second
	// pronunciation; default 0 (Kaldi-style tasks use ~0.05).
	AltPronProb float64
	// PrefixShareProb is the probability a new pronunciation reuses a
	// prefix of an existing one, producing the shared-prefix tree shape
	// real lexica have; default 0.5.
	PrefixShareProb float64
}

func (o GenerateOptions) withDefaults() GenerateOptions {
	if o.MinLen == 0 {
		o.MinLen = 2
	}
	if o.MaxLen == 0 {
		o.MaxLen = 8
	}
	if o.PrefixShareProb == 0 {
		o.PrefixShareProb = 0.5
	}
	return o
}

// GenerateLexicon builds a synthetic lexicon with realistic prefix sharing.
// The result is deterministic for a given rng state. The pronunciation set
// is guaranteed prefix-free.
func GenerateLexicon(rng *rand.Rand, opts GenerateOptions) (*Lexicon, error) {
	opts = opts.withDefaults()
	if opts.Vocab < 1 {
		return nil, fmt.Errorf("am: vocabulary size %d < 1", opts.Vocab)
	}
	if opts.Phones < 2 {
		return nil, fmt.Errorf("am: phone inventory %d < 2", opts.Phones)
	}
	if opts.MinLen < 1 || opts.MaxLen < opts.MinLen {
		return nil, fmt.Errorf("am: bad pronunciation length range [%d,%d]", opts.MinLen, opts.MaxLen)
	}
	lex := &Lexicon{
		Words:     make([]string, opts.Vocab+1),
		Prons:     make([][][]int32, opts.Vocab+1),
		NumPhones: opts.Phones + 1, // + silence
	}
	lex.Words[0] = "<eps>"

	var all [][]int32 // every pronunciation so far, for prefix checks
	trie := newPronSet()
	newPron := func() []int32 {
		for attempt := 0; ; attempt++ {
			var p []int32
			if len(all) > 0 && rng.Float64() < opts.PrefixShareProb {
				base := all[rng.Intn(len(all))]
				cut := rng.Intn(len(base)) // strict prefix, may be empty
				p = append(p, base[:cut]...)
			}
			tail := rng.Intn(opts.MaxLen-opts.MinLen+1) + opts.MinLen
			for len(p) < tail {
				p = append(p, int32(rng.Intn(opts.Phones)+1))
			}
			// After too many collisions, extend with fresh phones until the
			// pronunciation is unique; this always terminates.
			for attempt > 10 && !trie.prefixFree(p) {
				p = append(p, int32(rng.Intn(opts.Phones)+1))
			}
			if trie.prefixFree(p) {
				trie.insert(p)
				all = append(all, p)
				return p
			}
		}
	}

	for w := 1; w <= opts.Vocab; w++ {
		lex.Words[w] = fmt.Sprintf("wd%04d", w)
		lex.Prons[w] = [][]int32{newPron()}
		if rng.Float64() < opts.AltPronProb {
			lex.Prons[w] = append(lex.Prons[w], newPron())
		}
	}
	return lex, nil
}

// pronSet is a phone trie used to maintain the prefix-free invariant.
type pronSet struct {
	children map[int32]*pronSet
	terminal bool
}

func newPronSet() *pronSet { return &pronSet{children: map[int32]*pronSet{}} }

// prefixFree reports whether p can be added without violating
// prefix-freeness: no existing pronunciation is a prefix of p and p is not a
// prefix of (or equal to) an existing pronunciation.
func (t *pronSet) prefixFree(p []int32) bool {
	node := t
	for _, ph := range p {
		if node.terminal {
			return false // an existing pron is a strict prefix of p
		}
		next, ok := node.children[ph]
		if !ok {
			return true // p diverges from everything
		}
		node = next
	}
	// p ran out inside the trie: it is a prefix of something (or duplicates
	// an existing pron).
	return false
}

func (t *pronSet) insert(p []int32) {
	node := t
	for _, ph := range p {
		next, ok := node.children[ph]
		if !ok {
			next = newPronSet()
			node.children[ph] = next
		}
		node = next
	}
	node.terminal = true
}
