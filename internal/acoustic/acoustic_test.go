package acoustic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newModel(t testing.TB, seed int64, senones, dim int) *SenoneModel {
	t.Helper()
	m, err := NewSenoneModel(rand.New(rand.NewSource(seed)), senones, dim, 1.0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewSenoneModelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSenoneModel(rng, 0, 8, 1, 0.4); err == nil {
		t.Error("expected error for zero senones")
	}
	if _, err := NewSenoneModel(rng, 4, 8, 1, 0); err == nil {
		t.Error("expected error for zero sigma")
	}
}

func TestSynthesizeShapeAndAlignment(t *testing.T) {
	m := newModel(t, 2, 12, 8)
	rng := rand.New(rand.NewSource(3))
	seq := []int32{1, 5, 9, 2}
	frames, align := m.Synthesize(rng, seq, SynthesisOptions{})
	if len(frames) != len(align) {
		t.Fatalf("frames %d != align %d", len(frames), len(align))
	}
	if len(frames) < len(seq) {
		t.Fatalf("only %d frames for %d senones (min 1 each)", len(frames), len(seq))
	}
	// Alignment must be seq with runs.
	var collapsed []int32
	for i, s := range align {
		if i == 0 || align[i-1] != s {
			collapsed = append(collapsed, s)
		}
	}
	// Adjacent identical senones in seq merge in the collapsed view, so
	// compare against the run-collapsed input as well.
	var seqCollapsed []int32
	for i, s := range seq {
		if i == 0 || seq[i-1] != s {
			seqCollapsed = append(seqCollapsed, s)
		}
	}
	if len(collapsed) != len(seqCollapsed) {
		t.Fatalf("collapsed alignment %v vs %v", collapsed, seqCollapsed)
	}
	for i := range collapsed {
		if collapsed[i] != seqCollapsed[i] {
			t.Fatalf("alignment mismatch at %d: %v vs %v", i, collapsed, seqCollapsed)
		}
	}
}

func TestSynthesizeMeanDuration(t *testing.T) {
	m := newModel(t, 4, 4, 6)
	rng := rand.New(rand.NewSource(5))
	seq := make([]int32, 2000)
	for i := range seq {
		seq[i] = int32(i%4 + 1)
	}
	frames, _ := m.Synthesize(rng, seq, SynthesisOptions{MeanFrames: 3})
	mean := float64(len(frames)) / float64(len(seq))
	if mean < 2.5 || mean > 3.5 {
		t.Errorf("mean duration %.2f, want ~3", mean)
	}
}

// Core discriminability invariant: with moderate noise, the true senone is
// the argmax score on a large majority of frames, for every scorer. Without
// this, WER would be meaningless.
func TestScorersDiscriminative(t *testing.T) {
	m := newModel(t, 6, 20, 12)
	rng := rand.New(rand.NewSource(7))
	seq := make([]int32, 300)
	for i := range seq {
		seq[i] = int32(rng.Intn(20) + 1)
	}
	frames, align := m.Synthesize(rng, seq, SynthesisOptions{NoiseStd: 1.0})
	for _, sc := range []Scorer{
		NewGMMScorer(m),
		NewDNNScorer(m, rand.New(rand.NewSource(8)), 64, 2),
		NewRNNScorer(m, rand.New(rand.NewSource(9)), 64),
	} {
		scores := sc.ScoreUtterance(frames)
		if err := Validate(m, scores); err != nil {
			t.Fatal(err)
		}
		correct := 0
		for f, row := range scores {
			best, bestS := float32(math.Inf(-1)), 0
			for s := 1; s <= m.NumSenones; s++ {
				if row[s] > best {
					best, bestS = row[s], s
				}
			}
			if int32(bestS) == align[f] {
				correct++
			}
		}
		acc := float64(correct) / float64(len(frames))
		if acc < 0.6 {
			t.Errorf("%s: frame accuracy %.2f < 0.6", sc.Name(), acc)
		}
		if acc == 1.0 {
			t.Errorf("%s: frame accuracy exactly 1.0 — no confusability, WER would be 0", sc.Name())
		}
	}
}

// Property: GMM scores are proper log-densities — finite and bounded above
// by the maximum of a Gaussian density at the frame dimensionality.
func TestGMMScoreBounds(t *testing.T) {
	m := newModel(t, 10, 8, 6)
	g := NewGMMScorer(m)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frames, _ := m.Synthesize(rng, []int32{int32(rng.Intn(8) + 1)}, SynthesisOptions{})
		scores := g.ScoreUtterance(frames)
		maxLog := -0.5 * float64(m.Dim) * math.Log(2*math.Pi*float64(m.Sigma)*float64(m.Sigma))
		for _, row := range scores {
			for s := 1; s <= m.NumSenones; s++ {
				v := float64(row[s])
				if math.IsNaN(v) || math.IsInf(v, 0) || v > maxLog+1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRNNSmoothing(t *testing.T) {
	m := newModel(t, 12, 6, 6)
	r := NewRNNScorer(m, rand.New(rand.NewSource(13)), 32)
	rng := rand.New(rand.NewSource(14))
	// Hold one senone, then switch: the RNN's score for the new senone must
	// climb over a couple of frames (temporal integration), not jump.
	seq := []int32{1, 1, 1, 1, 2, 2, 2, 2}
	frames := make([][]float32, 0)
	for _, s := range seq {
		fr, _ := m.Synthesize(rng, []int32{s}, SynthesisOptions{MeanFrames: 1.01, NoiseStd: 0.1})
		frames = append(frames, fr[0])
	}
	scores := r.ScoreUtterance(frames)
	// At the switch frame (index 4), senone 2's smoothed score should be
	// below its steady-state value a few frames later.
	if scores[4][2] >= scores[7][2] {
		t.Errorf("no temporal smoothing: switch score %.3f >= settled score %.3f",
			scores[4][2], scores[7][2])
	}
}

func TestFLOPsAndSize(t *testing.T) {
	m := newModel(t, 16, 30, 16)
	rng := rand.New(rand.NewSource(17))
	g := NewGMMScorer(m)
	d := NewDNNScorer(m, rng, 256, 3)
	r := NewRNNScorer(m, rng, 256)
	if g.FLOPsPerFrame() <= 0 || d.FLOPsPerFrame() <= 0 || r.FLOPsPerFrame() <= 0 {
		t.Error("non-positive FLOPs")
	}
	if d.FLOPsPerFrame() <= g.FLOPsPerFrame() {
		t.Error("DNN should cost more FLOPs than the miniature GMM")
	}
	for _, sc := range []Scorer{g, d, r} {
		if SizeBytes(sc) <= 0 {
			t.Errorf("%s: non-positive size", sc.Name())
		}
	}
}

func TestScorerDeterminism(t *testing.T) {
	m := newModel(t, 20, 10, 8)
	rng := rand.New(rand.NewSource(21))
	frames, _ := m.Synthesize(rng, []int32{1, 2, 3}, SynthesisOptions{})
	d1 := NewDNNScorer(m, rand.New(rand.NewSource(5)), 32, 2)
	d2 := NewDNNScorer(m, rand.New(rand.NewSource(5)), 32, 2)
	s1 := d1.ScoreUtterance(frames)
	s2 := d2.ScoreUtterance(frames)
	for f := range s1 {
		for s := range s1[f] {
			if s1[f][s] != s2[f][s] {
				t.Fatal("same-seed scorers disagree")
			}
		}
	}
}
