package acoustic

import (
	"bytes"
	"testing"
)

func TestSenoneModelRoundTrip(t *testing.T) {
	m := newModel(t, 71, 15, 9)
	var buf bytes.Buffer
	if err := WriteSenoneModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSenoneModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != m.Dim || got.NumSenones != m.NumSenones || got.Sigma != m.Sigma {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	for s := 1; s <= m.NumSenones; s++ {
		for d := 0; d < m.Dim; d++ {
			if got.Means[s][d] != m.Means[s][d] {
				t.Fatalf("senone %d dim %d: %v vs %v", s, d, got.Means[s][d], m.Means[s][d])
			}
		}
	}
}

func TestReadSenoneModelErrors(t *testing.T) {
	if _, err := ReadSenoneModel(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected error for garbage")
	}
	// Truncated stream.
	m := newModel(t, 72, 6, 4)
	var buf bytes.Buffer
	if err := WriteSenoneModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadSenoneModel(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("expected error for truncated stream")
	}
	// Implausible header (corrupt the senone count field).
	c := append([]byte{}, b...)
	c[12], c[13], c[14], c[15] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadSenoneModel(bytes.NewReader(c)); err == nil {
		t.Error("expected error for implausible header")
	}
}
