package acoustic

// Batched frame-synchronous scoring: the dense half of the lane-group
// decoder (see internal/decoder/lane.go). Where ScoreUtterance walks one
// utterance front to back, ScoreStep advances N utterances by ONE frame in
// a single call, looping weight-row-outer / lane-inner so every weight row
// (GMM component means, DNN/RNN matrices, template rows) is read once per
// step and applied to all active lanes — dense matrix work instead of N
// independent vector passes.
//
// The contract that makes lanes safe to ship is bitwise equality: for every
// lane, the sequence of rows produced by repeated ScoreStep calls is
// float32-identical to the rows ScoreUtterance produces for that lane's
// frames alone. The loop interchange preserves the per-(lane,row) dot
// products exactly — same operands, same order — so batching changes memory
// traffic and instruction-level parallelism (dot4 runs four lanes'
// accumulator chains in parallel registers), never the per-lane arithmetic.
// TestScoreStepMatchesUtterance locks this down for all three scorers.

// LaneState holds one lane's recurrent scorer state (and any per-lane
// scratch). A state belongs to exactly one lane slot; Reset reinitializes it
// when a new utterance joins the slot. States are confined to the goroutine
// driving ScoreStep, so none of this needs locking.
type LaneState interface {
	Reset()
}

// BatchScorer is a Scorer that can additionally advance many utterances in
// lockstep, one frame per call.
type BatchScorer interface {
	Scorer
	// ScoreDim is the per-frame score-row length (NumSenones+1; index 0 is
	// the unused -1e30 slot). Callers size the out rows with it.
	ScoreDim() int
	// NewLaneState allocates one lane's state. Stateless scorers (GMM)
	// return a shared no-op; recurrent scorers return private buffers.
	NewLaneState() LaneState
	// ScoreStep scores one frame per lane: frames[i] is lane i's next
	// feature vector, or nil for an idle lane (skipped entirely — its state
	// does not advance). The scores for lane i are written into out[i],
	// which must have length ScoreDim. states, frames and out are
	// index-aligned and must all have the same length.
	//
	// ScoreStep allocates nothing and touches only the per-lane states and
	// out rows, so it may run concurrently with ScoreUtterance calls on the
	// same scorer (model weights are read-only after construction).
	ScoreStep(states []LaneState, frames [][]float32, out [][]float32)
}

// ---------------------------------------------------------------------------
// GMM

// gmmLaneState is the shared no-op state: the GMM has no temporal state and
// needs no per-lane scratch.
type gmmLaneState struct{}

func (gmmLaneState) Reset() {}

var sharedGMMLane gmmLaneState

// ScoreDim implements BatchScorer.
func (g *GMMScorer) ScoreDim() int { return g.m.NumSenones + 1 }

// NewLaneState implements BatchScorer.
func (g *GMMScorer) NewLaneState() LaneState { return sharedGMMLane }

// ScoreStep implements BatchScorer: senone-outer, lane-inner, so each
// senone's two component-mean rows are loaded once and scored against every
// active lane's frame. Per (lane, senone) the arithmetic is exactly
// ScoreUtterance's.
func (g *GMMScorer) ScoreStep(states []LaneState, frames [][]float32, out [][]float32) {
	for lane, x := range frames {
		if x != nil {
			out[lane][0] = unusedScore
		}
	}
	for s := 1; s <= g.m.NumSenones; s++ {
		c := g.comps[s]
		for lane, x := range frames {
			if x == nil {
				continue
			}
			l1 := logGauss(x, c[:g.m.Dim], g.m.Sigma) + g.lw
			l2 := logGauss(x, c[g.m.Dim:], g.m.Sigma) + g.lw
			out[lane][s] = logSumExp2(l1, l2)
		}
	}
}

// ---------------------------------------------------------------------------
// DNN

// laneChunk bounds how many active lanes one dense pass gathers. Active
// lanes are compacted into stack arrays of this size, so the hot row loops
// run over dense slices with no per-(row,lane) interface dispatch or nil
// checks; groups wider than this re-read the weight rows once per chunk.
const laneChunk = 32

// dnnLaneState carries one lane's hidden-stack scratch. The DNN has no
// cross-frame state, but the hidden activations feed the perturbation term
// within a frame, so each lane needs its own buffers.
type dnnLaneState struct {
	h, h2 []float32
}

func (l *dnnLaneState) Reset() {}

// ScoreDim implements BatchScorer.
func (d *DNNScorer) ScoreDim() int { return d.m.NumSenones + 1 }

// NewLaneState implements BatchScorer.
func (d *DNNScorer) NewLaneState() LaneState {
	return &dnnLaneState{h: make([]float32, d.hidden), h2: make([]float32, d.hidden)}
}

// ScoreStep implements BatchScorer. Active lanes are compacted, then each
// layer runs row-outer / lane-inner: one pass over w1 (then wh, then the
// template + projection rows) serves every active lane, with four lanes'
// dot products interleaved per row (dot4) so four independent accumulator
// chains hide the floating-point add latency a solo matvec is bound by —
// dense matrix work instead of N vector passes. Per lane the operations and
// their order match ScoreUtterance exactly.
func (d *DNNScorer) ScoreStep(states []LaneState, frames [][]float32, out [][]float32) {
	var xs, hs, h2s, outs [laneChunk][]float32
	for base := 0; base < len(frames); base += laneChunk {
		end := base + laneChunk
		if end > len(frames) {
			end = len(frames)
		}
		n := 0
		for lane := base; lane < end; lane++ {
			x := frames[lane]
			if x == nil {
				continue
			}
			st := states[lane].(*dnnLaneState)
			xs[n], hs[n], h2s[n], outs[n] = x, st.h, st.h2, out[lane]
			n++
		}
		if n > 0 {
			d.stepLanes(xs[:n], hs[:n], h2s[:n], outs[:n])
		}
	}
}

// stepLanes scores one frame for n compacted lanes. hs/h2s are the lanes'
// scratch buffers; the layer swap happens on the local slice headers (the
// DNN keeps no state across frames, so which buffer ends up as h in the
// lane state does not matter).
func (d *DNNScorer) stepLanes(xs, hs, h2s, outs [][]float32) {
	dim := d.m.Dim
	for i := 0; i < d.hidden; i++ {
		rowDotLanes(d.w1[i*dim:(i+1)*dim], xs, hs, i)
	}
	for _, h := range hs {
		reluInPlace(h)
	}
	for l := 1; l < d.layers; l++ {
		for i := 0; i < d.hidden; i++ {
			rowDotLanes(d.wh[i*d.hidden:(i+1)*d.hidden], hs, h2s, i)
		}
		for k, h2 := range h2s {
			reluInPlace(h2)
			hs[k], h2s[k] = h2, hs[k]
		}
	}
	var ts, ps [4]float32
	for _, o := range outs {
		o[0] = unusedScore
	}
	for s := 1; s <= d.m.NumSenones; s++ {
		tw := d.tmplW[s]
		tb := d.tmplB[s]
		pr := d.proj[s*d.hidden : (s+1)*d.hidden]
		k := 0
		for ; k+4 <= len(xs); k += 4 {
			ts[0], ts[1], ts[2], ts[3] = dot4(tw, xs[k], xs[k+1], xs[k+2], xs[k+3])
			ps[0], ps[1], ps[2], ps[3] = dot4(pr, hs[k], hs[k+1], hs[k+2], hs[k+3])
			for j := 0; j < 4; j++ {
				outs[k+j][s] = (tb + ts[j]) + d.perturb*ps[j]
			}
		}
		for ; k < len(xs); k++ {
			t := tb + dot(tw, xs[k])
			p := dot(pr, hs[k])
			outs[k][s] = t + d.perturb*p
		}
	}
}

// dot4 computes four dot products against one shared weight row:
// s_k = Σ_j w[j]·v_k[j]. Each lane's sum accumulates in its own register in
// the same element order as dot, so the results are bitwise-identical to
// four scalar dot calls — but the four independent add chains fill the FPU
// pipeline where a single chain stalls on floating-point add latency, and
// the weight row streams through the cache once instead of four times. This
// is where the lane group's dense-scoring speedup comes from: a solo matvec
// is latency-bound, the batched version is throughput-bound.
func dot4(w, a, b, c, d []float32) (s0, s1, s2, s3 float32) {
	a = a[:len(w)]
	b = b[:len(w)]
	c = c[:len(w)]
	d = d[:len(w)]
	for j, wj := range w {
		s0 += wj * a[j]
		s1 += wj * b[j]
		s2 += wj * c[j]
		s3 += wj * d[j]
	}
	return
}

// rowDotLanes writes dst[k][i] = dot(w, src[k]) for every compacted lane,
// four lanes at a time, falling back to scalar dot for the remainder.
func rowDotLanes(w []float32, src, dst [][]float32, i int) {
	k := 0
	for ; k+4 <= len(src); k += 4 {
		s0, s1, s2, s3 := dot4(w, src[k], src[k+1], src[k+2], src[k+3])
		dst[k][i], dst[k+1][i], dst[k+2][i], dst[k+3][i] = s0, s1, s2, s3
	}
	for ; k < len(src); k++ {
		dst[k][i] = dot(w, src[k])
	}
}

// ---------------------------------------------------------------------------
// RNN

// rnnLaneState is one lane's Elman recurrence state plus the exponential
// score smoother — exactly the per-utterance locals of
// RNNScorer.ScoreUtterance, lifted into a slot so the recurrence survives
// across ScoreStep calls.
type rnnLaneState struct {
	h, hNew []float32
	smooth  []float32
	first   bool
}

func (l *rnnLaneState) Reset() {
	clear(l.h)
	l.first = true
}

// ScoreDim implements BatchScorer.
func (r *RNNScorer) ScoreDim() int { return r.m.NumSenones + 1 }

// NewLaneState implements BatchScorer.
func (r *RNNScorer) NewLaneState() LaneState {
	return &rnnLaneState{
		h:      make([]float32, r.hidden),
		hNew:   make([]float32, r.hidden),
		smooth: make([]float32, r.m.NumSenones+1),
		first:  true,
	}
}

// ScoreStep implements BatchScorer: active lanes are compacted, then the
// recurrence and the output layer run row-outer / lane-inner over wx, wr,
// the template rows and proj, four lanes' dot products interleaved per row
// (dot4). Per lane and per element the operand order matches ScoreUtterance
// (each hNew[i] is the wx-row dot completed first, then the wr-row dot
// added), so the smoothed rows are bitwise-identical to a solo pass over
// the same frames.
func (r *RNNScorer) ScoreStep(states []LaneState, frames [][]float32, out [][]float32) {
	var sts [laneChunk]*rnnLaneState
	var xs, outs [laneChunk][]float32
	for base := 0; base < len(frames); base += laneChunk {
		end := base + laneChunk
		if end > len(frames) {
			end = len(frames)
		}
		n := 0
		for lane := base; lane < end; lane++ {
			x := frames[lane]
			if x == nil {
				continue
			}
			sts[n], xs[n], outs[n] = states[lane].(*rnnLaneState), x, out[lane]
			n++
		}
		if n > 0 {
			r.stepLanes(sts[:n], xs[:n], outs[:n])
		}
	}
}

// stepLanes advances the recurrence one frame for n compacted lanes.
func (r *RNNScorer) stepLanes(sts []*rnnLaneState, xs, outs [][]float32) {
	dim := r.m.Dim
	var hs, hNews [laneChunk][]float32
	for k, st := range sts {
		hs[k], hNews[k] = st.h, st.hNew
	}
	var as, bs [4]float32
	for i := 0; i < r.hidden; i++ {
		wx := r.wx[i*dim : (i+1)*dim]
		wr := r.wr[i*r.hidden : (i+1)*r.hidden]
		k := 0
		for ; k+4 <= len(sts); k += 4 {
			as[0], as[1], as[2], as[3] = dot4(wx, xs[k], xs[k+1], xs[k+2], xs[k+3])
			bs[0], bs[1], bs[2], bs[3] = dot4(wr, hs[k], hs[k+1], hs[k+2], hs[k+3])
			hNews[k][i] = as[0] + bs[0]
			hNews[k+1][i] = as[1] + bs[1]
			hNews[k+2][i] = as[2] + bs[2]
			hNews[k+3][i] = as[3] + bs[3]
		}
		for ; k < len(sts); k++ {
			hNews[k][i] = dot(wx, xs[k]) + dot(wr, hs[k])
		}
	}
	for k, st := range sts {
		tanhInPlace(st.hNew)
		st.h, st.hNew = st.hNew, st.h
		hs[k] = st.h
		outs[k][0] = unusedScore
	}
	for s := 1; s <= r.m.NumSenones; s++ {
		tw := r.tmpl.tmplW[s]
		tb := r.tmpl.tmplB[s]
		pr := r.proj[s*r.hidden : (s+1)*r.hidden]
		k := 0
		for ; k+4 <= len(sts); k += 4 {
			as[0], as[1], as[2], as[3] = dot4(tw, xs[k], xs[k+1], xs[k+2], xs[k+3])
			bs[0], bs[1], bs[2], bs[3] = dot4(pr, hs[k], hs[k+1], hs[k+2], hs[k+3])
			for j := 0; j < 4; j++ {
				st := sts[k+j]
				raw := (tb + as[j]) + 0.02*bs[j]
				if st.first {
					st.smooth[s] = raw
				} else {
					st.smooth[s] = (1-r.alpha)*st.smooth[s] + r.alpha*raw
				}
				outs[k+j][s] = st.smooth[s]
			}
		}
		for ; k < len(sts); k++ {
			st := sts[k]
			t := tb + dot(tw, xs[k])
			p := dot(pr, hs[k])
			raw := t + 0.02*p
			if st.first {
				st.smooth[s] = raw
			} else {
				st.smooth[s] = (1-r.alpha)*st.smooth[s] + r.alpha*raw
			}
			outs[k][s] = st.smooth[s]
		}
	}
	for _, st := range sts {
		st.first = false
	}
}
