package acoustic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary senone-model serialization: little-endian
// magic, version, dim, numSenones, sigma, then means row-major (senone 1..N).
const (
	senoneMagic   = uint32('S') | uint32('E')<<8 | uint32('N')<<16 | uint32('1')<<24
	senoneVersion = 1
)

// WriteSenoneModel serializes the model.
func WriteSenoneModel(m *SenoneModel, w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{senoneMagic, senoneVersion, uint32(m.Dim), uint32(m.NumSenones), math.Float32bits(m.Sigma)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for s := 1; s <= m.NumSenones; s++ {
		if len(m.Means[s]) != m.Dim {
			return fmt.Errorf("acoustic: senone %d has %d dims, want %d", s, len(m.Means[s]), m.Dim)
		}
		if err := binary.Write(bw, binary.LittleEndian, m.Means[s]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSenoneModel deserializes a model written by WriteSenoneModel.
func ReadSenoneModel(r io.Reader) (*SenoneModel, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("acoustic: reading header: %w", err)
	}
	if hdr[0] != senoneMagic {
		return nil, fmt.Errorf("acoustic: bad magic %#x", hdr[0])
	}
	if hdr[1] != senoneVersion {
		return nil, fmt.Errorf("acoustic: unsupported version %d", hdr[1])
	}
	m := &SenoneModel{
		Dim:        int(hdr[2]),
		NumSenones: int(hdr[3]),
		Sigma:      math.Float32frombits(hdr[4]),
	}
	if m.Dim < 1 || m.Dim > 1<<16 || m.NumSenones < 1 || m.NumSenones > 1<<24 {
		return nil, fmt.Errorf("acoustic: implausible model shape %dx%d", m.NumSenones, m.Dim)
	}
	m.Means = make([][]float32, m.NumSenones+1)
	for s := 1; s <= m.NumSenones; s++ {
		row := make([]float32, m.Dim)
		if err := binary.Read(br, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("acoustic: reading senone %d: %w", s, err)
		}
		m.Means[s] = row
	}
	return m, nil
}
