package acoustic

import (
	"fmt"
	"math/rand"
)

// Scorer turns an utterance's feature frames into per-frame senone
// log-likelihood vectors — the contents of the paper's Acoustic Likelihood
// Buffer. Row f of the result is indexed by senone ID (1-based; index 0 is
// unused and holds -Inf semantics via a very negative value).
type Scorer interface {
	// ScoreUtterance scores all frames at once, mirroring the batch
	// interface between the GPU and the accelerator (Section 5.2).
	ScoreUtterance(frames [][]float32) [][]float32
	// FLOPsPerFrame reports the arithmetic cost per frame, used by the
	// GPU time/energy model.
	FLOPsPerFrame() float64
	Name() string
}

const unusedScore = float32(-1e30)

// ---------------------------------------------------------------------------
// GMM scorer

// GMMScorer models each senone as a two-component diagonal-covariance
// mixture straddling the senone template (the classic Kaldi GMM decoder's
// acoustic model, at miniature scale).
type GMMScorer struct {
	m      *SenoneModel
	comps  [][]float32 // per senone: two mixture means, concatenated
	lw     float32     // log mixture weight (uniform: log 0.5)
	offset float32     // mixture mean offset relative to sigma
}

// NewGMMScorer derives a GMM from the senone model. The two component means
// sit at mu ± 0.25·sigma, so the mixture is centred on the template.
func NewGMMScorer(m *SenoneModel) *GMMScorer {
	g := &GMMScorer{m: m, lw: float32(-0.6931472), offset: 0.25 * m.Sigma}
	g.comps = make([][]float32, m.NumSenones+1)
	for s := 1; s <= m.NumSenones; s++ {
		c := make([]float32, 2*m.Dim)
		for d := 0; d < m.Dim; d++ {
			c[d] = m.Means[s][d] - g.offset
			c[m.Dim+d] = m.Means[s][d] + g.offset
		}
		g.comps[s] = c
	}
	return g
}

// Name identifies the scorer in reports (Scorer interface).
func (g *GMMScorer) Name() string { return "GMM" }

// FLOPsPerFrame: per senone, two components, each ~4 ops per dimension.
func (g *GMMScorer) FLOPsPerFrame() float64 {
	return float64(g.m.NumSenones) * 2 * 4 * float64(g.m.Dim)
}

// ScoreUtterance evaluates the two-component mixture for every senone on
// every frame (Scorer interface).
func (g *GMMScorer) ScoreUtterance(frames [][]float32) [][]float32 {
	out := make([][]float32, len(frames))
	for f, x := range frames {
		row := make([]float32, g.m.NumSenones+1)
		row[0] = unusedScore
		for s := 1; s <= g.m.NumSenones; s++ {
			c := g.comps[s]
			l1 := logGauss(x, c[:g.m.Dim], g.m.Sigma) + g.lw
			l2 := logGauss(x, c[g.m.Dim:], g.m.Sigma) + g.lw
			row[s] = logSumExp2(l1, l2)
		}
		out[f] = row
	}
	return out
}

// ---------------------------------------------------------------------------
// DNN scorer

// DNNScorer emulates a feed-forward acoustic network. Discrimination comes
// from an output layer whose weights are analytically derived from the
// senone templates (an affine layer computing 2⟨x,μ⟩−‖μ‖², i.e. the Gaussian
// score up to a per-frame constant that cancels in Viterbi comparisons).
// Hidden layers with random weights are genuinely computed and contribute a
// small perturbation, standing in for the idiosyncrasies of a trained
// network; their main role is a realistic per-frame arithmetic cost.
type DNNScorer struct {
	m       *SenoneModel
	hidden  int
	layers  int
	w1      []float32 // hidden x dim
	wh      []float32 // hidden x hidden, shared across deep layers
	proj    []float32 // (senones+1) x hidden perturbation projection
	tmplW   [][]float32
	tmplB   []float32
	perturb float32
}

// NewDNNScorer builds the emulated network. hidden is the hidden width
// (default 256), layers the number of hidden layers (default 3).
func NewDNNScorer(m *SenoneModel, rng *rand.Rand, hidden, layers int) *DNNScorer {
	if hidden == 0 {
		hidden = 256
	}
	if layers == 0 {
		layers = 3
	}
	d := &DNNScorer{m: m, hidden: hidden, layers: layers, perturb: 0.02}
	scale := float32(1.0 / float32(m.Dim))
	d.w1 = randMat(rng, hidden*m.Dim, scale)
	d.wh = randMat(rng, hidden*hidden, 1.0/float32(hidden))
	d.proj = randMat(rng, (m.NumSenones+1)*hidden, 1.0/float32(hidden))
	// Template output layer: score_s = (2<x,mu_s> - |mu_s|^2) / (2 sigma^2).
	inv := 1 / (2 * m.Sigma * m.Sigma)
	d.tmplW = make([][]float32, m.NumSenones+1)
	d.tmplB = make([]float32, m.NumSenones+1)
	for s := 1; s <= m.NumSenones; s++ {
		w := make([]float32, m.Dim)
		var sq float32
		for j, mu := range m.Means[s] {
			w[j] = 2 * mu * inv
			sq += mu * mu
		}
		d.tmplW[s] = w
		d.tmplB[s] = -sq * inv
	}
	return d
}

func randMat(rng *rand.Rand, n int, scale float32) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
	return v
}

// Name identifies the scorer in reports (Scorer interface).
func (d *DNNScorer) Name() string { return "DNN" }

// FLOPsPerFrame counts the network's per-frame multiply-adds (Scorer
// interface; drives the GPU time/energy model).
func (d *DNNScorer) FLOPsPerFrame() float64 {
	return 2 * (float64(d.hidden)*float64(d.m.Dim) +
		float64(d.layers-1)*float64(d.hidden)*float64(d.hidden) +
		float64(d.m.NumSenones+1)*float64(d.hidden) +
		float64(d.m.NumSenones)*float64(d.m.Dim))
}

// ScoreUtterance runs the hidden stack and template output layer over the
// utterance (Scorer interface). Scratch buffers are reused across frames,
// so a DNNScorer must not score two utterances concurrently.
func (d *DNNScorer) ScoreUtterance(frames [][]float32) [][]float32 {
	out := make([][]float32, len(frames))
	h := make([]float32, d.hidden)
	h2 := make([]float32, d.hidden)
	for f, x := range frames {
		// Hidden stack (computed for cost and perturbation).
		matVec(h, d.w1, x)
		reluInPlace(h)
		for l := 1; l < d.layers; l++ {
			matVec(h2, d.wh, h)
			reluInPlace(h2)
			h, h2 = h2, h
		}
		row := make([]float32, d.m.NumSenones+1)
		row[0] = unusedScore
		for s := 1; s <= d.m.NumSenones; s++ {
			t := d.tmplB[s] + dot(d.tmplW[s], x)
			p := dot(d.proj[s*d.hidden:(s+1)*d.hidden], h)
			row[s] = t + d.perturb*p
		}
		out[f] = row
	}
	return out
}

// ---------------------------------------------------------------------------
// RNN scorer

// RNNScorer emulates the EESEN-style recurrent network: a genuinely
// recurrent hidden state (Elman update) plus exponential smoothing of the
// template scores, modelling the temporal integration a trained LSTM
// performs over CTC phone posteriors.
type RNNScorer struct {
	m      *SenoneModel
	hidden int
	wx     []float32
	wr     []float32
	proj   []float32
	tmpl   *DNNScorer // reuse the template output layer
	alpha  float32
}

// NewRNNScorer builds the emulated recurrent scorer; hidden defaults to 256.
func NewRNNScorer(m *SenoneModel, rng *rand.Rand, hidden int) *RNNScorer {
	if hidden == 0 {
		hidden = 256
	}
	return &RNNScorer{
		m:      m,
		hidden: hidden,
		wx:     randMat(rng, hidden*m.Dim, 1.0/float32(m.Dim)),
		wr:     randMat(rng, hidden*hidden, 1.0/float32(hidden)),
		proj:   randMat(rng, (m.NumSenones+1)*hidden, 1.0/float32(hidden)),
		tmpl:   NewDNNScorer(m, rng, 8, 1), // tiny stack; we use only its template layer
		alpha:  0.7,
	}
}

// Name identifies the scorer in reports (Scorer interface).
func (r *RNNScorer) Name() string { return "RNN" }

// FLOPsPerFrame counts the recurrence's per-frame multiply-adds (Scorer
// interface; drives the GPU time/energy model).
func (r *RNNScorer) FLOPsPerFrame() float64 {
	return 2 * (float64(r.hidden)*float64(r.m.Dim) +
		float64(r.hidden)*float64(r.hidden) +
		float64(r.m.NumSenones+1)*float64(r.hidden) +
		float64(r.m.NumSenones)*float64(r.m.Dim))
}

// ScoreUtterance runs the Elman recurrence with score smoothing over the
// utterance (Scorer interface). The recurrent state is reused across
// frames, so an RNNScorer must not score two utterances concurrently.
func (r *RNNScorer) ScoreUtterance(frames [][]float32) [][]float32 {
	out := make([][]float32, len(frames))
	h := make([]float32, r.hidden)
	hNew := make([]float32, r.hidden)
	smooth := make([]float32, r.m.NumSenones+1)
	first := true
	for f, x := range frames {
		// Elman recurrence: h = tanh(Wx x + Wr h).
		matVec(hNew, r.wx, x)
		addMatVec(hNew, r.wr, h)
		tanhInPlace(hNew)
		h, hNew = hNew, h

		row := make([]float32, r.m.NumSenones+1)
		row[0] = unusedScore
		for s := 1; s <= r.m.NumSenones; s++ {
			t := r.tmpl.tmplB[s] + dot(r.tmpl.tmplW[s], x)
			p := dot(r.proj[s*r.hidden:(s+1)*r.hidden], h)
			raw := t + 0.02*p
			if first {
				smooth[s] = raw
			} else {
				smooth[s] = (1-r.alpha)*smooth[s] + r.alpha*raw
			}
			row[s] = smooth[s]
		}
		first = false
		out[f] = row
	}
	return out
}

// ---------------------------------------------------------------------------
// Helpers

func matVec(dst, m, x []float32) {
	n := len(x)
	rows := len(dst)
	for i := 0; i < rows; i++ {
		dst[i] = dot(m[i*n:(i+1)*n], x)
	}
}

func addMatVec(dst, m, x []float32) {
	n := len(x)
	rows := len(dst)
	for i := 0; i < rows; i++ {
		dst[i] += dot(m[i*n:(i+1)*n], x)
	}
}

func dot(a, b []float32) float32 {
	var s float32
	for i := range b {
		s += a[i] * b[i]
	}
	return s
}

func reluInPlace(v []float32) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

func tanhInPlace(v []float32) {
	for i, x := range v {
		// Rational tanh approximation: cheap and monotone, adequate for an
		// emulated network.
		x2 := x * x
		v[i] = x * (27 + x2) / (27 + 9*x2)
	}
}

// SizeBytes reports the model's storage footprint (float32 parameters) for
// the Figure 2 / Section 5.2 dataset-size accounting.
func SizeBytes(s Scorer) int64 {
	switch sc := s.(type) {
	case *GMMScorer:
		return int64(sc.m.NumSenones) * int64(2*sc.m.Dim+2) * 4
	case *DNNScorer:
		return int64(len(sc.w1)+len(sc.wh)*(sc.layers-1)+len(sc.proj)+
			(sc.m.NumSenones+1)*(sc.m.Dim+1)) * 4
	case *RNNScorer:
		return int64(len(sc.wx)+len(sc.wr)+len(sc.proj)+
			(sc.m.NumSenones+1)*(sc.m.Dim+1)) * 4
	default:
		return 0
	}
}

// Validate sanity-checks a score matrix shape against a senone model.
func Validate(m *SenoneModel, scores [][]float32) error {
	for f, row := range scores {
		if len(row) != m.NumSenones+1 {
			return fmt.Errorf("acoustic: frame %d has %d scores, want %d", f, len(row), m.NumSenones+1)
		}
	}
	return nil
}
