package acoustic

import (
	"math/rand"
	"testing"
)

// batchScorers builds one scorer of each kind over a shared senone model.
func batchScorers(t *testing.T) (*SenoneModel, []BatchScorer) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m, err := NewSenoneModel(rng, 23, 12, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return m, []BatchScorer{
		NewGMMScorer(m),
		NewDNNScorer(m, rand.New(rand.NewSource(8)), 64, 3),
		NewRNNScorer(m, rand.New(rand.NewSource(9)), 64),
	}
}

// randUtt synthesizes a random utterance of n frames.
func randUtt(rng *rand.Rand, n, dim int) [][]float32 {
	u := make([][]float32, n)
	for f := range u {
		row := make([]float32, dim)
		for d := range row {
			row[d] = rng.Float32()*4 - 2
		}
		u[f] = row
	}
	return u
}

// TestScoreStepMatchesUtterance is the batched-scoring determinism contract:
// for every scorer kind, rows produced by lockstep ScoreStep calls over
// several lanes are float32-bitwise-identical to the rows ScoreUtterance
// produces for each lane's frames alone — including the recurrent RNN state
// and lanes of different lengths (idle lanes are skipped, not advanced).
func TestScoreStepMatchesUtterance(t *testing.T) {
	m, scorers := batchScorers(t)
	rng := rand.New(rand.NewSource(10))
	lens := []int{17, 5, 11, 1}
	utts := make([][][]float32, len(lens))
	for i, n := range lens {
		utts[i] = randUtt(rng, n, m.Dim)
	}
	for _, sc := range scorers {
		t.Run(sc.Name(), func(t *testing.T) {
			// Solo reference, one utterance at a time.
			want := make([][][]float32, len(utts))
			for i, u := range utts {
				want[i] = sc.ScoreUtterance(u)
			}
			// Batched: all lanes in lockstep; shorter lanes go idle (nil).
			states := make([]LaneState, len(utts))
			frames := make([][]float32, len(utts))
			out := make([][]float32, len(utts))
			for i := range utts {
				states[i] = sc.NewLaneState()
				states[i].Reset()
				out[i] = make([]float32, sc.ScoreDim())
			}
			maxLen := 0
			for _, u := range utts {
				if len(u) > maxLen {
					maxLen = len(u)
				}
			}
			for f := 0; f < maxLen; f++ {
				for i, u := range utts {
					frames[i] = nil
					if f < len(u) {
						frames[i] = u[f]
					}
				}
				sc.ScoreStep(states, frames, out)
				for i := range utts {
					if frames[i] == nil {
						continue
					}
					ref := want[i][f]
					if len(out[i]) != len(ref) {
						t.Fatalf("lane %d frame %d: row len %d, want %d", i, f, len(out[i]), len(ref))
					}
					for s := range ref {
						if out[i][s] != ref[s] {
							t.Fatalf("%s lane %d frame %d senone %d: batched %g != solo %g",
								sc.Name(), i, f, s, out[i][s], ref[s])
						}
					}
				}
			}
		})
	}
}

// TestLaneStateReset proves a recycled lane slot behaves like a fresh one:
// scoring utterance A, resetting, then scoring utterance B yields B's solo
// rows exactly (no state bleed across utterances sharing a slot).
func TestLaneStateReset(t *testing.T) {
	m, scorers := batchScorers(t)
	rng := rand.New(rand.NewSource(11))
	a := randUtt(rng, 9, m.Dim)
	b := randUtt(rng, 7, m.Dim)
	for _, sc := range scorers {
		t.Run(sc.Name(), func(t *testing.T) {
			want := sc.ScoreUtterance(b)
			st := []LaneState{sc.NewLaneState()}
			st[0].Reset()
			out := [][]float32{make([]float32, sc.ScoreDim())}
			for _, x := range a {
				sc.ScoreStep(st, [][]float32{x}, out)
			}
			st[0].Reset()
			for f, x := range b {
				sc.ScoreStep(st, [][]float32{x}, out)
				for s := range want[f] {
					if out[0][s] != want[f][s] {
						t.Fatalf("%s frame %d senone %d after reset: %v != %v",
							sc.Name(), f, s, out[0][s], want[f][s])
					}
				}
			}
		})
	}
}

// TestScoreStepAllocs: the dense step must not allocate — it is the inner
// loop of the lane group's 0-allocs/frame contract.
func TestScoreStepAllocs(t *testing.T) {
	m, scorers := batchScorers(t)
	rng := rand.New(rand.NewSource(12))
	utt := randUtt(rng, 4, m.Dim)
	for _, sc := range scorers {
		t.Run(sc.Name(), func(t *testing.T) {
			states := []LaneState{sc.NewLaneState(), sc.NewLaneState()}
			frames := [][]float32{utt[0], utt[1]}
			out := [][]float32{make([]float32, sc.ScoreDim()), make([]float32, sc.ScoreDim())}
			allocs := testing.AllocsPerRun(50, func() {
				sc.ScoreStep(states, frames, out)
			})
			if allocs != 0 {
				t.Fatalf("%s ScoreStep allocates %.1f objects/call, want 0", sc.Name(), allocs)
			}
		})
	}
}
