package acoustic

import (
	"math/rand"
	"testing"
)

// windowScorers asserts every repo scorer supports window scoring and
// returns them typed.
func windowScorers(t *testing.T) (*SenoneModel, []WindowScorer) {
	t.Helper()
	m, batch := batchScorers(t)
	ws := make([]WindowScorer, len(batch))
	for i, sc := range batch {
		w, ok := sc.(WindowScorer)
		if !ok {
			t.Fatalf("%s does not implement WindowScorer", sc.Name())
		}
		ws[i] = w
	}
	return m, ws
}

// TestScoreWindowMatchesUtterance is the score-ahead determinism contract:
// for every scorer kind and a sweep of window widths — including widths that
// split the utterance unevenly and a width larger than the utterance — the
// rows produced by consecutive ScoreWindow calls are float32-bitwise-
// identical to ScoreUtterance over the same frames. The RNN case proves the
// recurrence carries across window boundaries exactly.
func TestScoreWindowMatchesUtterance(t *testing.T) {
	m, scorers := windowScorers(t)
	rng := rand.New(rand.NewSource(20))
	utt := randUtt(rng, 19, m.Dim)
	for _, sc := range scorers {
		want := sc.ScoreUtterance(utt)
		for _, width := range []int{1, 3, 4, 8, 32} {
			st := sc.NewWindowState(width)
			st.Reset()
			out := make([][]float32, len(utt))
			for f := range out {
				out[f] = make([]float32, sc.ScoreDim())
			}
			for base := 0; base < len(utt); base += width {
				end := base + width
				if end > len(utt) {
					end = len(utt)
				}
				sc.ScoreWindow(st, utt[base:end], out[base:end])
			}
			for f := range want {
				for s := range want[f] {
					if out[f][s] != want[f][s] {
						t.Fatalf("%s width %d frame %d senone %d: window %g != solo %g",
							sc.Name(), width, f, s, out[f][s], want[f][s])
					}
				}
			}
		}
	}
}

// TestWindowStateReset proves a recycled window state behaves like a fresh
// one: scoring utterance A through windows, resetting, then scoring
// utterance B yields B's solo rows exactly.
func TestWindowStateReset(t *testing.T) {
	m, scorers := windowScorers(t)
	rng := rand.New(rand.NewSource(21))
	a := randUtt(rng, 9, m.Dim)
	b := randUtt(rng, 7, m.Dim)
	for _, sc := range scorers {
		want := sc.ScoreUtterance(b)
		st := sc.NewWindowState(4)
		st.Reset()
		out := make([][]float32, 4)
		for f := range out {
			out[f] = make([]float32, sc.ScoreDim())
		}
		for base := 0; base < len(a); base += 4 {
			end := base + 4
			if end > len(a) {
				end = len(a)
			}
			sc.ScoreWindow(st, a[base:end], out[:end-base])
		}
		st.Reset()
		for base := 0; base < len(b); base += 4 {
			end := base + 4
			if end > len(b) {
				end = len(b)
			}
			sc.ScoreWindow(st, b[base:end], out[:end-base])
			for f := base; f < end; f++ {
				for s := range want[f] {
					if out[f-base][s] != want[f][s] {
						t.Fatalf("%s frame %d senone %d after reset: %v != %v",
							sc.Name(), f, s, out[f-base][s], want[f][s])
					}
				}
			}
		}
	}
}

// TestScoreWindowAllocs: window scoring must not allocate — it runs on the
// pipeline's producer goroutine inside the 0-allocs/frame contract.
func TestScoreWindowAllocs(t *testing.T) {
	m, scorers := windowScorers(t)
	rng := rand.New(rand.NewSource(22))
	utt := randUtt(rng, 8, m.Dim)
	for _, sc := range scorers {
		st := sc.NewWindowState(len(utt))
		out := make([][]float32, len(utt))
		for f := range out {
			out[f] = make([]float32, sc.ScoreDim())
		}
		allocs := testing.AllocsPerRun(50, func() {
			st.Reset()
			sc.ScoreWindow(st, utt, out)
		})
		if allocs != 0 {
			t.Fatalf("%s ScoreWindow allocates %.1f objects/call, want 0", sc.Name(), allocs)
		}
	}
}
