// Package acoustic provides the acoustic substrate the paper runs on a GPU:
// synthetic feature-frame generation and GMM / DNN / RNN scorers that turn
// frames into per-senone log-likelihoods ("acoustic scores"). The real
// models are trained on hundreds of hours of audio; here frames are emitted
// from per-senone Gaussian templates so that scores are discriminative, the
// word error rate is non-trivial, and every decoder code path (including
// pruning of confusable hypotheses) is exercised.
package acoustic

import (
	"fmt"
	"math"
	"math/rand"
)

// SenoneModel holds one feature-space template per senone. Senone IDs are
// 1-based (0 is the WFST epsilon label), so Means[0] is unused.
type SenoneModel struct {
	Dim        int
	NumSenones int
	// Means[s] is the feature-space centre of senone s, s in 1..NumSenones.
	Means [][]float32
	// Sigma is the isotropic standard deviation used both for synthesis
	// and as the scorers' model variance.
	Sigma float32
}

// NewSenoneModel samples senone templates. spread controls how far apart
// the templates sit relative to Sigma: smaller spread means more confusable
// senones and a higher WER.
func NewSenoneModel(rng *rand.Rand, numSenones, dim int, spread, sigma float32) (*SenoneModel, error) {
	if numSenones < 1 || dim < 1 {
		return nil, fmt.Errorf("acoustic: bad model shape senones=%d dim=%d", numSenones, dim)
	}
	if sigma <= 0 || spread <= 0 {
		return nil, fmt.Errorf("acoustic: sigma and spread must be positive")
	}
	m := &SenoneModel{Dim: dim, NumSenones: numSenones, Sigma: sigma}
	m.Means = make([][]float32, numSenones+1)
	for s := 1; s <= numSenones; s++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = (rng.Float32()*2 - 1) * spread
		}
		m.Means[s] = v
	}
	return m, nil
}

// SynthesisOptions controls frame generation.
type SynthesisOptions struct {
	// MeanFrames is the expected number of frames emitted per senone
	// occupancy (geometric duration model, minimum 1). Default 2.5.
	MeanFrames float64
	// NoiseStd scales the additive Gaussian noise relative to the model's
	// Sigma. 1.0 means frames are exactly model-distributed; larger values
	// raise the WER. Default 1.0.
	NoiseStd float64
}

func (o SynthesisOptions) withDefaults() SynthesisOptions {
	if o.MeanFrames == 0 {
		o.MeanFrames = 2.5
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = 1.0
	}
	return o
}

// Synthesize emits a frame sequence for a senone occupancy sequence: each
// senone holds for a geometric number of frames (mean MeanFrames), emitting
// its template plus Gaussian noise. It returns the frames and the aligned
// senone label per frame.
func (m *SenoneModel) Synthesize(rng *rand.Rand, senones []int32, opts SynthesisOptions) ([][]float32, []int32) {
	opts = opts.withDefaults()
	pStay := 1 - 1/opts.MeanFrames
	if pStay < 0 {
		pStay = 0
	}
	var frames [][]float32
	var align []int32
	std := float64(m.Sigma) * opts.NoiseStd
	for _, s := range senones {
		n := 1
		for rng.Float64() < pStay {
			n++
		}
		for i := 0; i < n; i++ {
			f := make([]float32, m.Dim)
			mu := m.Means[s]
			for d := 0; d < m.Dim; d++ {
				f[d] = mu[d] + float32(rng.NormFloat64()*std)
			}
			frames = append(frames, f)
			align = append(align, s)
		}
	}
	return frames, align
}

// logGauss returns the log-density of frame x under an isotropic Gaussian
// centred at mu with standard deviation sigma.
func logGauss(x, mu []float32, sigma float32) float32 {
	var sq float64
	for d := range x {
		diff := float64(x[d] - mu[d])
		sq += diff * diff
	}
	v := float64(sigma) * float64(sigma)
	return float32(-0.5*sq/v - 0.5*float64(len(x))*math.Log(2*math.Pi*v))
}

// logSumExp2 returns log(exp(a)+exp(b)) stably.
func logSumExp2(a, b float32) float32 {
	if a < b {
		a, b = b, a
	}
	return a + float32(math.Log1p(math.Exp(float64(b-a))))
}
