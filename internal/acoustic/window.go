package acoustic

// Window scoring: the dense half of the decoder's score-ahead pipeline
// (see internal/decoder/pipeline.go). Where ScoreStep advances N different
// utterances by one frame, ScoreWindow advances ONE utterance by up to
// `width` consecutive frames in a single call, so the pipeline's producer
// stage scores a whole lookahead window per scorer invocation instead of a
// frame at a time.
//
// The batching trick is the same loop interchange as batch.go, rotated 90°:
// frames of one utterance take the place of lanes. For the stateless
// scorers (GMM, DNN) consecutive frames are fully independent, so a window
// IS a lane batch — ScoreWindow feeds the window's frames through ScoreStep
// against per-frame scratch states and inherits its dot4 kernels and its
// bitwise-equality proof for free. The RNN's recurrence is sequential
// across frames, but its input-side work is not: the wx·x rows and the
// template tw·x rows depend only on the frame's features, so ScoreWindow
// precomputes both across the whole window with rowDotLanes/dot4, then runs
// the cheap sequential part (wr·h recurrence, projection, smoothing) frame
// by frame.
//
// The contract is the same bitwise equality that makes lanes safe: the rows
// produced by consecutive ScoreWindow calls over an utterance's frames are
// float32-identical to the rows ScoreUtterance produces for the whole
// utterance — same operands, same order, per (frame, element).
// TestScoreWindowMatchesUtterance locks this down for all three scorers.

// WindowScorer is a BatchScorer that can additionally score a window of
// consecutive frames of one utterance in a single call.
type WindowScorer interface {
	BatchScorer
	// NewWindowState allocates the state for scoring one utterance through
	// windows of at most width frames: the recurrent state (RNN) plus all
	// per-window scratch, so ScoreWindow itself allocates nothing. Reset
	// reinitializes it for a new utterance.
	NewWindowState(width int) LaneState
	// ScoreWindow scores len(frames) consecutive frames of one utterance,
	// writing frame i's scores into out[i] (length ScoreDim, 1-based senone
	// indexing). frames and out are index-aligned; len(frames) must be at
	// most the width the state was built for. Successive calls continue the
	// same utterance (the recurrence carries across calls), exactly as if
	// ScoreUtterance had been called on the concatenated frames.
	//
	// Like ScoreStep, ScoreWindow touches only the state and the out rows,
	// so it may run concurrently with ScoreUtterance/ScoreStep calls on the
	// same scorer (model weights are read-only after construction). This is
	// what lets the pipeline's producer goroutine score ahead while other
	// decoders share the scorer.
	ScoreWindow(state LaneState, frames, out [][]float32)
}

// ---------------------------------------------------------------------------
// GMM

// gmmWindowState satisfies NewWindowState for the stateless GMM: ScoreStep
// wants an index-aligned states slice, so the window state is just width
// copies of the shared no-op lane state.
type gmmWindowState struct {
	states []LaneState
}

func (*gmmWindowState) Reset() {}

// NewWindowState implements WindowScorer.
func (g *GMMScorer) NewWindowState(width int) LaneState {
	ws := &gmmWindowState{states: make([]LaneState, width)}
	for i := range ws.states {
		ws.states[i] = sharedGMMLane
	}
	return ws
}

// ScoreWindow implements WindowScorer: the GMM has no cross-frame state, so
// the window's frames are scored as a lane batch through ScoreStep —
// senone-outer, frame-inner, each component-mean row read once per window.
func (g *GMMScorer) ScoreWindow(state LaneState, frames, out [][]float32) {
	ws := state.(*gmmWindowState)
	g.ScoreStep(ws.states[:len(frames)], frames, out)
}

// ---------------------------------------------------------------------------
// DNN

// dnnWindowState holds one hidden-stack scratch pair per window frame; the
// DNN keeps no state across frames, but each frame's hidden activations feed
// its own perturbation term, so the "lanes" need separate buffers.
type dnnWindowState struct {
	states []LaneState
}

func (*dnnWindowState) Reset() {}

// NewWindowState implements WindowScorer.
func (d *DNNScorer) NewWindowState(width int) LaneState {
	ws := &dnnWindowState{states: make([]LaneState, width)}
	for i := range ws.states {
		ws.states[i] = d.NewLaneState()
	}
	return ws
}

// ScoreWindow implements WindowScorer: frames are independent, so the window
// runs as a lane batch through ScoreStep — every weight row of w1/wh and
// every template/projection row streams through the cache once per window,
// with four frames' dot products interleaved per row (dot4). Per frame the
// arithmetic is exactly ScoreUtterance's.
func (d *DNNScorer) ScoreWindow(state LaneState, frames, out [][]float32) {
	ws := state.(*dnnWindowState)
	d.ScoreStep(ws.states[:len(frames)], frames, out)
}

// ---------------------------------------------------------------------------
// RNN

// rnnWindowState is the recurrence state plus the window-wide precompute
// buffers: ax[f][i] collects the input-projection dots (wx row i · frame f)
// and tx[f][s] the template dots (tmplW row s · frame f) for every frame of
// the current window before the sequential pass consumes them.
type rnnWindowState struct {
	rnnLaneState
	ax []float32 // width x hidden, row-major per frame
	tx []float32 // width x (senones+1), row-major per frame
	// Row views over ax/tx, shaped for rowDotLanes.
	axRows [][]float32
	txRows [][]float32
}

// NewWindowState implements WindowScorer.
func (r *RNNScorer) NewWindowState(width int) LaneState {
	dim := r.m.NumSenones + 1
	ws := &rnnWindowState{
		rnnLaneState: rnnLaneState{
			h:      make([]float32, r.hidden),
			hNew:   make([]float32, r.hidden),
			smooth: make([]float32, dim),
			first:  true,
		},
		ax:     make([]float32, width*r.hidden),
		tx:     make([]float32, width*dim),
		axRows: make([][]float32, width),
		txRows: make([][]float32, width),
	}
	for f := 0; f < width; f++ {
		ws.axRows[f] = ws.ax[f*r.hidden : (f+1)*r.hidden]
		ws.txRows[f] = ws.tx[f*dim : (f+1)*dim]
	}
	return ws
}

// ScoreWindow implements WindowScorer. Phase one batches everything that
// does not depend on the recurrence: each wx row and each template row is
// dotted against all window frames with rowDotLanes (four frames' chains
// interleaved per row — the dot4 ILP batch.go documents). Phase two is the
// inherently sequential remainder, frame by frame: finish the Elman update
// with the wr·h dot (same operand order as ScoreUtterance's matVec-then-
// addMatVec: the wx dot completes first, then the wr dot is added), tanh,
// projection, and exponential smoothing. Per (frame, element) the arithmetic
// matches ScoreUtterance exactly, so the rows are bitwise-identical.
func (r *RNNScorer) ScoreWindow(state LaneState, frames, out [][]float32) {
	ws := state.(*rnnWindowState)
	n := len(frames)
	ax, tx := ws.axRows[:n], ws.txRows[:n]
	dim := r.m.Dim
	for i := 0; i < r.hidden; i++ {
		rowDotLanes(r.wx[i*dim:(i+1)*dim], frames, ax, i)
	}
	for s := 1; s <= r.m.NumSenones; s++ {
		rowDotLanes(r.tmpl.tmplW[s], frames, tx, s)
	}
	// The sequential pass runs through the two noinline helpers below rather
	// than inline. That is a register-pressure fix, not style: this function
	// carries ~7 live slice headers (state views, precompute rows, out), and
	// with the dot loops inlined here the register allocator spills the hot
	// loops' induction variables to the stack — a store added to a 6-instr
	// inner loop, measured at ~2x the whole RNN scoring cost. Inside the
	// helpers only a handful of values are live, so the dots get clean
	// register-only loops, same codegen as ScoreUtterance's.
	h, hNew := ws.h, ws.hNew
	for f := 0; f < n; f++ {
		// hNew = tanh((wx·x) + wr·h), the wx half precomputed: seeding with
		// the batched rows and adding the recurrence dots keeps
		// ScoreUtterance's operand order (per element, the wx dot completes
		// first).
		copy(hNew, ax[f])
		recurrenceStep(hNew, r.wr, h)
		h, hNew = hNew, h
		r.projectSmooth(tx[f], h, out[f], ws.smooth, ws.first)
		ws.first = false
	}
	ws.h, ws.hNew = h, hNew
}

// recurrenceStep finishes one Elman update in place: hNew += wr·h, then
// tanh. noinline so the wr·h dots run with only three slice headers live
// (see ScoreWindow).
//
//go:noinline
func recurrenceStep(hNew, wr, h []float32) {
	addMatVec(hNew, wr, h)
	tanhInPlace(hNew)
}

// projectSmooth turns one frame's hidden state into its output row: the
// projection dot against each senone's proj row (the template dot t[s] is
// precomputed), then the exponential smoothing, exactly ScoreUtterance's
// arithmetic and order. noinline for the same register-pressure reason as
// recurrenceStep.
//
//go:noinline
func (r *RNNScorer) projectSmooth(t, h, row, smooth []float32, first bool) {
	row[0] = unusedScore
	hn := len(h)
	for s := 1; s <= r.m.NumSenones; s++ {
		raw := (r.tmpl.tmplB[s] + t[s]) + 0.02*dot(r.proj[s*hn:(s+1)*hn], h)
		if first {
			smooth[s] = raw
		} else {
			smooth[s] = (1-r.alpha)*smooth[s] + r.alpha*raw
		}
		row[s] = smooth[s]
	}
}
