// Package decoder implements the software reference Viterbi beam-search
// decoders: the fully-composed baseline (searching one offline-composed
// WFST, as in Yazdani et al. MICRO-49) and the paper's on-the-fly
// composition decoder (tokens are (AM state, LM state) pairs; cross-word
// arcs trigger LM look-ups with back-off, an offset memo table, and
// preemptive back-off pruning).
//
// The two decoders explore exactly the same search space, so — given the
// same beam — they produce the same hypothesis. That equivalence is the
// package's central test oracle, mirroring the paper's claim that on-the-fly
// composition changes memory behaviour, not results.
package decoder

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/semiring"
)

// LookupKind selects how the on-the-fly decoder locates LM arcs
// (Section 5.1 discusses all three: linear search is a 10x slowdown,
// binary search 3x, and the Offset Lookup Table brings it to 18%).
type LookupKind int

const (
	// LookupMemo is binary search backed by an offset memo table (the
	// software analogue of the paper's Offset Lookup Table). Default.
	LookupMemo LookupKind = iota
	// LookupBinary is plain binary search over input-sorted arcs.
	LookupBinary
	// LookupLinear scans arcs in order; the paper's worst-case baseline.
	LookupLinear
)

// String names the lookup strategy as used in benchmark and CLI labels.
func (k LookupKind) String() string {
	switch k {
	case LookupMemo:
		return "memo"
	case LookupBinary:
		return "binary"
	case LookupLinear:
		return "linear"
	default:
		return "unknown"
	}
}

// Config holds beam-search parameters shared by both decoders.
type Config struct {
	// Beam is the pruning beam in cost units; hypotheses worse than the
	// frame's best by more than Beam are discarded. Default 24, wide enough
	// that decoding is model-limited rather than search-limited on the
	// benchmark tasks (the paper's operating regime).
	Beam semiring.Weight
	// MaxActive caps the live tokens per frame (histogram pruning).
	// Default 3000; 0 means unlimited.
	MaxActive int
	// AcousticScale multiplies acoustic log-likelihoods before they enter
	// the search, balancing AM and LM dynamic ranges. Default 0.8.
	AcousticScale float32
	// PreemptivePruning enables the paper's Section 3.3 scheme: hypotheses
	// are threshold-checked at every back-off hop and abandoned early.
	// On-the-fly decoder only.
	PreemptivePruning bool
	// Lookup selects the LM arc-fetch strategy. On-the-fly decoder only.
	Lookup LookupKind
	// OffsetCache replaces the decoder's private unbounded memo map for the
	// LookupMemo strategy. nil (the default) preserves the seed behaviour:
	// a per-decoder map that grows without bound. A worker pool installs a
	// bounded per-worker cache backed by shared storage here. On-the-fly
	// decoder only; cache contents never change results, only probe counts.
	OffsetCache OffsetCache
	// Telemetry, when non-nil, publishes continuous observability for this
	// decoder — per-frame frontier sizes, per-decode search-work counters
	// (LM fetches, back-off hops, memo hits, prune and rescue events), and
	// optional per-decode spans — into a telemetry registry shared with
	// other decoders. nil (the default) disables publication: the hot path
	// pays one branch per frame and allocates nothing, preserving the
	// zero-allocation steady state and byte-identical results. Telemetry
	// never changes search behaviour; it only observes Stats the search
	// already counts.
	Telemetry *Telemetry
	// Lookahead is the score-ahead pipeline depth in frames, consumed by
	// NewPipeline (and by lane groups built over it): acoustic scoring runs
	// up to Lookahead frames ahead of the Viterbi search over a bounded
	// ring of preallocated score rows, and each scorer call covers a whole
	// lookahead window instead of a single frame. 0, the default, is the
	// synchronous path — scoring and search in lockstep, byte-identical to
	// the pre-pipeline decoder. Lookahead > 0 requires a scorer that
	// implements acoustic.WindowScorer; results are byte-identical to the
	// synchronous path at any depth (the differential oracle in
	// pipeline_test.go locks this down). The decoder core ignores this
	// field — it decodes whatever score rows it is handed.
	Lookahead int
	// RescueWidenings enables search-failure rescue on the on-the-fly
	// decoder: when a frame empties the active-token set mid-utterance, the
	// frame is retried from a pre-pruning snapshot with the beam and
	// MaxActive doubled, escalating up to this many times (each widening is
	// counted in Stats.Rescues). A frame no widening can save — e.g. one
	// whose scores are entirely NaN — is skipped and the search continues
	// from the snapshot (counted in Stats.SearchFailures). 0, the default,
	// preserves the non-rescued behaviour: the best partial hypothesis is
	// returned the moment the search dies.
	RescueWidenings int
}

func (c Config) withDefaults() Config {
	if c.Beam == 0 {
		c.Beam = 24
	}
	if c.MaxActive == 0 {
		c.MaxActive = 3000
	}
	if c.AcousticScale == 0 {
		c.AcousticScale = 0.8
	}
	return c
}

// Stats counts decoder work; the accelerator simulator consumes these to
// charge cycles and memory traffic.
type Stats struct {
	Frames         int
	TokensExpanded int64 // tokens alive at the start of a frame
	TokensCreated  int64 // distinct (state) tokens materialized
	TokensBeamCut  int64 // tokens dropped by beam/histogram pruning
	ArcsTraversed  int64 // emitting arcs evaluated
	EpsTraversed   int64 // non-emitting arcs evaluated

	// On-the-fly specifics.
	LMFetches        int64 // word resolutions triggered by cross-word arcs
	LMProbes         int64 // arc-search probes (binary or linear steps)
	BackoffHops      int64 // back-off arcs taken
	MemoHits         int64
	MemoMisses       int64
	PreemptivePruned int64 // hypotheses abandoned mid back-off walk

	// Rescues counts beam widenings performed by search-failure rescue
	// (Config.RescueWidenings); SearchFailures counts frames whose active
	// set emptied and stayed empty after any rescue attempts (at most one
	// per utterance when rescue is off — the search stops there).
	Rescues        int64
	SearchFailures int64

	// LatticeEntries is the number of word-lattice records written.
	LatticeEntries int64

	// AllocBytes, AllocObjects and GCCycles are allocation/GC observability
	// counters: process-wide heap deltas sampled (via runtime/metrics)
	// around the decode. They make the token-store recycling measurable —
	// a warm steady-state decode should report near-zero objects per frame
	// — but they are properties of the process, not of the search:
	// concurrent decoders attribute each other's allocations, and pool/GC
	// state changes them run to run. Equality comparisons of search work
	// must use the Search view, which excludes them.
	AllocBytes   int64
	AllocObjects int64
	GCCycles     int64
}

// Search returns s with the allocation/GC observability counters zeroed:
// the deterministic search-work view. Two decodes of the same utterance by
// the same configuration are byte-identical under this view (the property
// the differential harness asserts), while the raw struct also carries the
// nondeterministic heap counters.
func (s Stats) Search() Stats {
	s.AllocBytes, s.AllocObjects, s.GCCycles = 0, 0, 0
	return s
}

// Add accumulates another utterance's counters into s — the batch-level
// aggregation a worker pool reports after fanning a test set out.
func (s *Stats) Add(o Stats) {
	s.Frames += o.Frames
	s.TokensExpanded += o.TokensExpanded
	s.TokensCreated += o.TokensCreated
	s.TokensBeamCut += o.TokensBeamCut
	s.ArcsTraversed += o.ArcsTraversed
	s.EpsTraversed += o.EpsTraversed
	s.LMFetches += o.LMFetches
	s.LMProbes += o.LMProbes
	s.BackoffHops += o.BackoffHops
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.PreemptivePruned += o.PreemptivePruned
	s.Rescues += o.Rescues
	s.SearchFailures += o.SearchFailures
	s.LatticeEntries += o.LatticeEntries
	s.AllocBytes += o.AllocBytes
	s.AllocObjects += o.AllocObjects
	s.GCCycles += o.GCCycles
}

// recordAlloc fills the allocation/GC counters with the process-wide heap
// advance since the snapshot start (taken at decode entry).
func (s *Stats) recordAlloc(start metrics.AllocCounters) {
	d := metrics.ReadAllocCounters().Delta(start)
	s.AllocBytes = int64(d.Bytes)
	s.AllocObjects = int64(d.Objects)
	s.GCCycles = int64(d.GCs)
}

// Result is the decoder output for one utterance.
type Result struct {
	// Words is the best hypothesis word sequence.
	Words []int32
	// WordEnds[i] is the frame index at which Words[i]'s cross-word
	// transition was taken (its end time, in frames); -1 for words emitted
	// by non-emitting arcs.
	WordEnds []int32
	// Cost is the total path cost including the final weight.
	Cost semiring.Weight
	// ReachedFinal reports whether the best token was in a final state; if
	// false the best partial hypothesis is returned.
	ReachedFinal bool
	Stats        Stats
}

// token is one live hypothesis: a path cost and a backpointer into the
// word lattice.
type token struct {
	cost semiring.Weight
	lat  int32
}

// lattice is an arena of word backpointers; index -1 is the empty history.
// This is the compact word-lattice representation the Token Issuer writes
// (the paper adopts the compact format of Price [22]).
type lattice struct {
	words  []int32
	prev   []int32
	frames []int32
}

// reset empties the arena for reuse, retaining capacity — lattices are part
// of the pooled per-decode scratch set.
func (l *lattice) reset() {
	l.words = l.words[:0]
	l.prev = l.prev[:0]
	l.frames = l.frames[:0]
}

func (l *lattice) add(word, prev, frame int32) int32 {
	l.words = append(l.words, word)
	l.prev = append(l.prev, prev)
	l.frames = append(l.frames, frame)
	return int32(len(l.words) - 1)
}

// backtrace returns the word sequence ending at entry idx along with the
// frame at which each word completed.
func (l *lattice) backtrace(idx int32) (words, ends []int32) {
	for i := idx; i >= 0; i = l.prev[i] {
		words = append(words, l.words[i])
		ends = append(ends, l.frames[i])
	}
	for i, j := 0, len(words)-1; i < j; i, j = i+1, j-1 {
		words[i], words[j] = words[j], words[i]
		ends[i], ends[j] = ends[j], ends[i]
	}
	return words, ends
}

// Entries reports the number of lattice entries written (token-cache
// traffic in the accelerator model).
func (l *lattice) Entries() int { return len(l.words) }

// beamPrune removes tokens worse than best+beam, then applies the
// MaxActive histogram cap. It returns the surviving-token threshold used by
// preemptive pruning and the number of removed tokens. Deterministic: ties
// are broken by key.
func beamPrune(active map[uint64]token, beam semiring.Weight, maxActive int) (semiring.Weight, int64) {
	if len(active) == 0 {
		return semiring.Zero, 0
	}
	best := semiring.Zero
	for _, t := range active {
		if t.cost < best {
			best = t.cost
		}
	}
	thr := best + beam
	var cut int64
	for k, t := range active {
		if t.cost > thr {
			delete(active, k)
			cut++
		}
	}
	if maxActive > 0 && len(active) > maxActive {
		type kt struct {
			k uint64
			c semiring.Weight
		}
		all := make([]kt, 0, len(active))
		for k, t := range active {
			all = append(all, kt{k, t.cost})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c < all[j].c
			}
			return all[i].k < all[j].k
		})
		for _, e := range all[maxActive:] {
			delete(active, e.k)
			cut++
		}
		thr = all[maxActive-1].c
	}
	return thr, cut
}

// relax performs the tropical-semiring token update: keep the better cost.
// It reports whether the destination token was created or improved.
func relax(m map[uint64]token, key uint64, cost semiring.Weight, lat int32) (created, improved bool) {
	old, ok := m[key]
	if !ok {
		m[key] = token{cost, lat}
		return true, true
	}
	if cost < old.cost {
		m[key] = token{cost, lat}
		return false, true
	}
	return false, false
}
