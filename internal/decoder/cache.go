package decoder

// OffsetCache is the pluggable offset-lookup table behind LookupMemo: it
// memoizes (LM state, word) → resolved arc index so repeated cross-word
// fetches skip the binary search. It is the software seam where the paper's
// hardware Offset Lookup Table plugs in, and where a serving deployment
// substitutes a bounded shared cache (see internal/pool) for the default
// unbounded private map.
//
// Implementations are only required to be safe for use by one decoder
// goroutine at a time; a cache shared between decoders must do its own
// locking internally (internal/pool's sharded LRU does).
//
// Correctness does not depend on cache contents: a lookup result is a pure
// function of the LM graph, so stale entries are impossible and evictions
// cost only repeated probes, never wrong answers.
type OffsetCache interface {
	// Get returns the memoized arc index for key and whether it was present.
	Get(key uint64) (int32, bool)
	// Put memoizes the arc index for key, possibly evicting other entries.
	Put(key uint64, idx int32)
	// Reset drops the caller-visible cached state (used by cold-table
	// ablations). Implementations backed by shared storage may retain the
	// shared layer.
	Reset()
}

// mapOffsetCache is the default OffsetCache: the seed decoder's unbounded
// private map, preserved bit-for-bit so single-decoder behaviour (and the
// baseline-vs-OTF equivalence oracle) is unchanged.
type mapOffsetCache struct {
	m map[uint64]int32
}

func newMapOffsetCache() *mapOffsetCache {
	return &mapOffsetCache{m: make(map[uint64]int32)}
}

// Get implements OffsetCache by direct map lookup.
func (c *mapOffsetCache) Get(key uint64) (int32, bool) {
	idx, ok := c.m[key]
	return idx, ok
}

// Put implements OffsetCache; the map grows without bound, as the seed did.
func (c *mapOffsetCache) Put(key uint64, idx int32) { c.m[key] = idx }

// Reset implements OffsetCache by dropping the whole map.
func (c *mapOffsetCache) Reset() { c.m = make(map[uint64]int32) }
