package decoder

import (
	"bytes"
	"testing"

	"repro/internal/wfst"
)

// flatten round-trips a graph through the flat CSR encoding — the same view
// a mapped v3 bundle presents — so these tests drive the decoder over
// exactly what serving from a flat model store executes.
func flatten(t *testing.T, g *wfst.WFST) *wfst.WFST {
	t.Helper()
	var sb, ab bytes.Buffer
	if err := wfst.WriteFlatStates(g, &sb); err != nil {
		t.Fatal(err)
	}
	if err := wfst.WriteFlatArcs(g, &ab); err != nil {
		t.Fatal(err)
	}
	// Fresh allocations stand in for a 16-byte-aligned bundle section.
	states := append([]byte(nil), sb.Bytes()...)
	arcs := append([]byte(nil), ab.Bytes()...)
	flat, err := wfst.NewFromFlat(g.Start(), g.NumStates(), states, arcs, g.InSorted())
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

// TestDifferentialFlatVsPointerGraphs extends the differential gate across
// the model-store seam: decoding over flat-constructed (zero-copy) graphs
// must be byte-identical to the pointer-graph path — words, costs, stats,
// and every per-frame frontier — under every search configuration.
func TestDifferentialFlatVsPointerGraphs(t *testing.T) {
	f := getFixture(t, 42)
	amFlat := flatten(t, f.tk.AM.G)
	lmFlat := flatten(t, f.tk.LMGraph.G)
	for _, tc := range diffConfigs {
		t.Run(tc.name, func(t *testing.T) {
			in := f.scores[0]
			if tc.cfg.RescueWidenings > 0 && len(in) > 2 {
				in = poisonFrame(in, len(in)/2)
			}
			dFlat, err := NewOnTheFly(amFlat, lmFlat, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			dPtr, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			flatSnaps := captureFrames(dFlat)
			ptrSnaps := captureFrames(dPtr)

			got := dFlat.Decode(in)
			want := dPtr.Decode(in)

			if got.Cost != want.Cost || got.ReachedFinal != want.ReachedFinal {
				t.Errorf("flat (%v, %v) vs pointer (%v, %v)", got.Cost, got.ReachedFinal, want.Cost, want.ReachedFinal)
			}
			if !equalInt32s(got.Words, want.Words) || !equalInt32s(got.WordEnds, want.WordEnds) {
				t.Errorf("words: flat %v/%v vs pointer %v/%v", got.Words, got.WordEnds, want.Words, want.WordEnds)
			}
			if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
				t.Errorf("stats: flat %+v vs pointer %+v", gs, ws)
			}
			compareSnaps(t, *flatSnaps, *ptrSnaps)
		})
	}
}

// TestAllocsStepFrameFlatGraphs is the 0-allocs/frame gate over the
// zero-copy path: the steady-state frame loop on flat-constructed graphs
// must allocate nothing, proving arc iteration from a flat section needs no
// unmarshal step or per-arc allocation.
func TestAllocsStepFrameFlatGraphs(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(flatten(t, f.tk.AM.G), flatten(t, f.tk.LMGraph.G), Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := getScratch()
	defer putScratch(sc)
	decodeInPlace(d, f.scores[0], sc) // warm buffers and the offset memo

	allocs := testing.AllocsPerRun(10, func() {
		decodeInPlace(d, f.scores[0], sc)
	})
	if allocs > 0 {
		t.Errorf("flat-graph stepFrame loop allocates %.1f objects per utterance, want 0", allocs)
	}
}
