package decoder

import (
	"fmt"

	"repro/internal/bias"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Three-way composed search keys. Without a bias machine a token is the
// (AM state, LM state) pair packed 32/32 by otfKey — bit-for-bit the
// two-layer layout, so the nil-bias decode is byte-identical to the
// pre-bias decoder (the invariant bias_differential_test.go pins down).
// With a bias machine installed the key packs (AM, LM, bias) as 26/26/12
// bits. Both layouts order keys identically for a fixed bias state: the
// packing is strictly monotone in the lexicographic (AM, LM) order, so the
// beam-prune cost-tie key comparison makes the same choices either way —
// which is what keeps the EMPTY bias machine (one root state, weight zero
// everywhere) byte-identical to nil as well.
const (
	biasStateBits = 12
	biasLMBits    = 26
	biasLMMask    = 1<<biasLMBits - 1
	biasStateMask = 1<<biasStateBits - 1
)

// SetBias installs a compiled per-tenant bias machine: subsequent decodes
// (and newly created or reset Streams) search the AM ∘ LM ∘ Bias
// composition, crediting the machine's bonuses on cross-word arcs. Like
// SetSearchPreset, it must not be called while a decode is in flight on
// this decoder — the pool and lane scheduler install it only while they
// hold the worker or slot exclusively. Passing nil is ClearBias.
//
// The 26/26/12 composed key bounds the graphs: AM and LM must each have
// fewer than 2^26 states and the machine at most 2^12 (bias.MaxStates
// already guarantees the latter for compiled machines).
func (d *OnTheFly) SetBias(m *bias.Machine) error {
	if m == nil {
		d.ClearBias()
		return nil
	}
	if d.am.NumStates() > 1<<biasLMBits || d.lm.NumStates() > 1<<biasLMBits {
		return fmt.Errorf("decoder: biased decode needs AM and LM under %d states (AM %d, LM %d)",
			1<<biasLMBits, d.am.NumStates(), d.lm.NumStates())
	}
	if m.NumStates() > 1<<biasStateBits {
		return fmt.Errorf("decoder: bias machine has %d states, max %d", m.NumStates(), 1<<biasStateBits)
	}
	d.bias = m
	d.biasSlack = m.MaxBonus()
	return nil
}

// ClearBias restores the plain two-layer AM ∘ LM search.
func (d *OnTheFly) ClearBias() { d.bias, d.biasSlack = nil, 0 }

// Bias returns the installed bias machine, nil when decoding two-layer.
func (d *OnTheFly) Bias() *bias.Machine { return d.bias }

// key packs a composed search state in the layout the installed bias mode
// selects. The nil branch computes exactly otfKey.
func (d *OnTheFly) key(am, lm, bs wfst.StateID) uint64 {
	if d.bias == nil {
		return otfKey(am, lm)
	}
	return uint64(uint32(am))<<(biasLMBits+biasStateBits) |
		uint64(uint32(lm)&biasLMMask)<<biasStateBits |
		uint64(uint32(bs)&biasStateMask)
}

// unpack splits a composed key back into its component states; the bias
// state is 0 in two-layer mode.
func (d *OnTheFly) unpack(key uint64) (am, lm, bs wfst.StateID) {
	if d.bias == nil {
		return wfst.StateID(key >> 32), wfst.StateID(uint32(key)), 0
	}
	return wfst.StateID(key >> (biasLMBits + biasStateBits)),
		wfst.StateID((key >> biasStateBits) & biasLMMask),
		wfst.StateID(key & biasStateMask)
}

// startKey is the composed start state all decode paths (batch, stream,
// pipeline) seed their first frontier with.
func (d *OnTheFly) startKey() uint64 {
	if d.bias == nil {
		return otfKey(d.am.Start(), d.lm.Start())
	}
	return d.key(d.am.Start(), d.lm.Start(), d.bias.Start())
}

// biasFinal returns the bias machine's exit weight for token key — the
// repayment of any unfinished phrase match — and semiring.One two-layer.
func (d *OnTheFly) biasFinal(bs wfst.StateID) semiring.Weight {
	if d.bias == nil {
		return semiring.One
	}
	return d.bias.Final(bs)
}
