package decoder

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// TwoPass implements the alternative on-the-fly strategy the paper's
// related-work section contrasts with its one-pass design (Ljolje et al.
// [17]): a first Viterbi pass over the acoustic model with only unigram
// look-ahead scores produces multiple hypotheses (an N-best word lattice),
// and a second pass rescores them with the full back-off LM. The paper
// rejects this scheme for hardware because the rescoring pass cannot start
// until the utterance ends, inflating latency — the comparison the
// `twopass` experiment quantifies.
type TwoPass struct {
	am  *wfst.WFST
	lm  *wfst.WFST
	cfg Config
	// K is the number of distinct word histories kept per AM state during
	// the first pass (the lattice beam). Default 4.
	K int
}

// NewTwoPass builds the two-pass decoder. The LM must be input-sorted.
func NewTwoPass(amGraph, lmGraph *wfst.WFST, cfg Config, k int) (*TwoPass, error) {
	if amGraph.Start() == wfst.NoState || lmGraph.Start() == wfst.NoState {
		return nil, fmt.Errorf("decoder: two-pass graphs need start states")
	}
	if !lmGraph.InSorted() {
		return nil, fmt.Errorf("decoder: LM graph must be input-sorted")
	}
	if k <= 0 {
		k = 4
	}
	return &TwoPass{am: amGraph, lm: lmGraph, cfg: cfg.withDefaults(), K: k}, nil
}

// TwoPassResult extends Result with pass-level accounting.
type TwoPassResult struct {
	Result
	// Candidates is the number of distinct word sequences rescored.
	Candidates int
	// PassOneCost is the best first-pass (AM + unigram) cost.
	PassOneCost semiring.Weight
}

// ktoken is a first-pass hypothesis: cost so far, lattice backpointer, and
// a rolling hash of the word history used to keep the K alternatives
// distinct in *words*, not just in cost.
type ktoken struct {
	cost semiring.Weight
	lat  int32
	hist uint64
}

func extendHist(h uint64, word int32) uint64 {
	return h*1315423911 + uint64(uint32(word)) + 0x9e3779b97f4a7c15
}

// kfrontier is the first-pass active set: K-best token lists keyed by AM
// state, plus the states in insertion order. Like the one-pass tokenStore,
// iteration follows insertion order rather than Go's randomized map order,
// so candidate collection, pruning statistics and N-best tie-breaking are
// deterministic run to run.
type kfrontier struct {
	m     map[wfst.StateID][]ktoken
	order []wfst.StateID
}

func newKFrontier(capHint int) *kfrontier {
	return &kfrontier{m: make(map[wfst.StateID][]ktoken, capHint)}
}

// Decode runs both passes and returns the rescored best hypothesis.
func (d *TwoPass) Decode(scores [][]float32) *TwoPassResult {
	list := d.NBest(scores, 1)
	if len(list) == 0 {
		return &TwoPassResult{Result: Result{Cost: semiring.Zero}}
	}
	return list[0]
}

// NBest runs both passes and returns up to n rescored hypotheses ranked by
// total cost — the N-best list applications such as confidence estimation
// and downstream reranking consume.
func (d *TwoPass) NBest(scores [][]float32, n int) []*TwoPassResult {
	cand, passOneBest, st := d.passOne(scores)
	if n <= 0 {
		n = 1
	}
	results := make([]*TwoPassResult, 0, len(cand))
	for _, c := range cand {
		var st2 Stats
		rescored := semiring.Times(c.acCost, d.lmSequenceCost(c.words, &st2))
		if semiring.IsZero(rescored) {
			continue
		}
		results = append(results, &TwoPassResult{
			Result: Result{
				Words:        c.words,
				Cost:         rescored,
				ReachedFinal: true,
			},
			Candidates:  len(cand),
			PassOneCost: passOneBest,
		})
	}
	// Stable so equal-cost hypotheses rank in their (deterministic)
	// collection order.
	slices.SortStableFunc(results, func(a, b *TwoPassResult) int {
		switch {
		case a.Cost < b.Cost:
			return -1
		case a.Cost > b.Cost:
			return 1
		default:
			return 0
		}
	})
	if len(results) > n {
		results = results[:n]
	}
	// Attach the shared pass-one stats to the head of the list.
	if len(results) > 0 {
		results[0].Stats = st
	} else {
		results = append(results, &TwoPassResult{
			Result: Result{Cost: semiring.Zero, Stats: st}, Candidates: len(cand), PassOneCost: passOneBest,
		})
	}
	return results
}

// candidate is one distinct first-pass word sequence with its acoustic+AM
// cost (unigram look-ahead scores removed, so pass two rescoring is exact).
type candidate struct {
	words  []int32
	acCost semiring.Weight
}

// passOne is a K-best Viterbi search over the AM with unigram look-ahead:
// tokens are keyed by AM state alone, each state keeping up to K
// alternatives with distinct word histories.
func (d *TwoPass) passOne(scores [][]float32) ([]candidate, semiring.Weight, Stats) {
	cfg := d.cfg
	st := Stats{Frames: len(scores)}
	lat := &lattice{}

	uniCost := func(word int32) semiring.Weight {
		idx, ok := d.lm.FindArc(d.lm.Start(), word, nil)
		st.LMFetches++
		if !ok {
			return semiring.Zero
		}
		return d.lm.Arcs(d.lm.Start())[idx].W
	}

	cur := newKFrontier(1)
	cur.m[d.am.Start()] = []ktoken{{cost: semiring.One, lat: -1, hist: 14695981039346656037}}
	cur.order = append(cur.order, d.am.Start())
	d.epsClosure(cur, lat, uniCost, &st)

	for f := range scores {
		d.prune(cur, &st)
		next := newKFrontier(2 * len(cur.order))
		frame := scores[f]
		for _, s := range cur.order {
			toks := cur.m[s]
			st.TokensExpanded += int64(len(toks))
			for _, a := range d.am.Arcs(s) {
				if a.In == wfst.Epsilon {
					continue
				}
				st.ArcsTraversed++
				base := a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
				for _, t := range toks {
					c := t.cost + base
					nt := ktoken{cost: c, lat: t.lat, hist: t.hist}
					if a.Out != wfst.Epsilon {
						u := uniCost(a.Out)
						if semiring.IsZero(u) {
							continue
						}
						nt.cost += u
						nt.lat = lat.add(a.Out, t.lat, int32(f))
						nt.hist = extendHist(t.hist, a.Out)
						st.LatticeEntries++
					}
					d.relaxK(next, a.Next, nt, &st)
				}
			}
		}
		d.epsClosure(next, lat, uniCost, &st)
		if len(next.order) == 0 {
			break
		}
		cur = next
	}

	// Collect final candidates; strip the unigram look-ahead so pass two
	// scores are exact: acCost = cost - sum(unigram(word)). If no token
	// reached a word boundary (final AM state), fall back to the best
	// partial hypotheses, as the one-pass decoder does.
	collect := func(finalsOnly bool) ([]candidate, semiring.Weight) {
		seen := map[uint64]bool{}
		var out []candidate
		best := semiring.Zero
		for _, s := range cur.order {
			toks := cur.m[s]
			fw := d.am.Final(s)
			if finalsOnly && semiring.IsZero(fw) {
				continue
			}
			if !finalsOnly {
				fw = semiring.One
			}
			for _, t := range toks {
				c := t.cost + fw
				if c < best {
					best = c
				}
				if seen[t.hist] {
					continue
				}
				seen[t.hist] = true
				words, _ := lat.backtrace(t.lat)
				ac := c
				for _, w := range words {
					idx, ok := d.lm.FindArc(d.lm.Start(), w, nil)
					if ok {
						ac -= d.lm.Arcs(d.lm.Start())[idx].W
					}
				}
				out = append(out, candidate{words: words, acCost: ac})
			}
		}
		return out, best
	}
	out, best := collect(true)
	if len(out) == 0 {
		out, best = collect(false)
	}
	return out, best, st
}

// relaxK inserts a token into a state's K-best list, deduplicating by word
// history (keep the cheaper) and keeping the K best by cost. The sort is
// stable so equal-cost alternatives keep their arrival order — part of the
// two-pass determinism contract.
func (d *TwoPass) relaxK(f *kfrontier, s wfst.StateID, nt ktoken, st *Stats) bool {
	toks, ok := f.m[s]
	for i := range toks {
		if toks[i].hist == nt.hist {
			if nt.cost < toks[i].cost {
				toks[i] = nt
				return true
			}
			return false
		}
	}
	toks = append(toks, nt)
	slices.SortStableFunc(toks, func(a, b ktoken) int {
		switch {
		case a.cost < b.cost:
			return -1
		case a.cost > b.cost:
			return 1
		default:
			return 0
		}
	})
	if len(toks) > d.K {
		toks = toks[:d.K]
	}
	f.m[s] = toks
	if !ok {
		f.order = append(f.order, s)
	}
	st.TokensCreated++
	return true
}

// prune applies the beam over all states' best tokens, dropping emptied
// states from the insertion-order list (survivors keep their order).
func (d *TwoPass) prune(cur *kfrontier, st *Stats) {
	best := semiring.Zero
	for _, s := range cur.order {
		if toks := cur.m[s]; len(toks) > 0 && toks[0].cost < best {
			best = toks[0].cost
		}
	}
	thr := best + d.cfg.Beam
	n := 0
	for _, s := range cur.order {
		toks := cur.m[s]
		keep := toks[:0]
		for _, t := range toks {
			if t.cost <= thr {
				keep = append(keep, t)
			} else {
				st.TokensBeamCut++
			}
		}
		if len(keep) == 0 {
			delete(cur.m, s)
			continue
		}
		cur.m[s] = keep
		cur.order[n] = s
		n++
	}
	cur.order = cur.order[:n]
}

// epsClosure relaxes non-emitting AM arcs for K-best token lists.
func (d *TwoPass) epsClosure(active *kfrontier, lat *lattice, uniCost func(int32) semiring.Weight, st *Stats) {
	queue := make([]wfst.StateID, 0, len(active.order))
	queue = append(queue, active.order...)
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		toks := active.m[s]
		for _, a := range d.am.Arcs(s) {
			if a.In != wfst.Epsilon {
				continue
			}
			st.EpsTraversed++
			for _, t := range toks {
				nt := ktoken{cost: t.cost + a.W, lat: t.lat, hist: t.hist}
				if a.Out != wfst.Epsilon {
					u := uniCost(a.Out)
					if semiring.IsZero(u) {
						continue
					}
					nt.cost += u
					nt.lat = lat.add(a.Out, t.lat, -1)
					nt.hist = extendHist(t.hist, a.Out)
					st.LatticeEntries++
				}
				if d.relaxK(active, a.Next, nt, st) {
					queue = append(queue, a.Next)
				}
			}
		}
	}
}

// lmSequenceCost walks the full LM for a word sequence (with back-off) and
// returns its total cost including the final weight.
func (d *TwoPass) lmSequenceCost(words []int32, st *Stats) semiring.Weight {
	s := d.lm.Start()
	cost := semiring.One
	for _, w := range words {
		next, aw, hops, ok := d.lm.ResolveWord(s, w)
		st.LMFetches++
		st.BackoffHops += int64(hops)
		if !ok {
			return semiring.Zero
		}
		cost = semiring.Times(cost, aw)
		s = next
	}
	return semiring.Times(cost, d.lm.Final(s))
}

// Confidences converts an N-best list into per-hypothesis posterior-style
// confidence scores: softmax of negated costs over the list. The list is
// the whole probability mass considered, so scores sum to 1 across it —
// the usual N-best approximation of hypothesis posteriors.
func Confidences(list []*TwoPassResult) []float64 {
	out := make([]float64, len(list))
	if len(list) == 0 {
		return out
	}
	best := list[0].Cost
	for _, r := range list {
		if r.Cost < best {
			best = r.Cost
		}
	}
	var sum float64
	for i, r := range list {
		if semiring.IsZero(r.Cost) {
			out[i] = 0
			continue
		}
		out[i] = math.Exp(-float64(r.Cost - best))
		sum += out[i]
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}
