package decoder

import (
	"fmt"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Alignment is the result of forced alignment: for each frame, the senone
// the reference transcript occupies, plus per-word end frames.
type Alignment struct {
	// Senones[f] is the senone aligned to frame f.
	Senones []int32
	// WordEnds[i] is the last frame of words[i].
	WordEnds []int32
	// Cost is the total alignment cost (acoustic + transition).
	Cost semiring.Weight
}

// ForceAlign computes the Viterbi alignment of an utterance's acoustic
// scores against a known word sequence over the AM graph: the standard
// training-time operation that produces senone occupancies and word
// boundaries (our synthesizer's ground truth is exactly such an alignment).
// It searches the AM constrained to emit exactly `words`, tracking
// (AM state, words emitted) pairs.
func ForceAlign(am *wfst.WFST, cfg Config, scores [][]float32, words []int32) (*Alignment, error) {
	if am.Start() == wfst.NoState {
		return nil, fmt.Errorf("decoder: AM has no start state")
	}
	cfg = cfg.withDefaults()
	nw := len(words)

	// token per (amState, wordsEmitted); backpointers record (frame, senone,
	// word-end) so the full frame alignment is recoverable.
	type bp struct {
		prev   int32
		senone int32
		word   bool
	}
	type atok struct {
		cost semiring.Weight
		bp   int32
	}
	arena := []bp{}
	key := func(s wfst.StateID, emitted int) uint64 {
		return uint64(uint32(s))<<32 | uint64(uint32(emitted))
	}

	cur := map[uint64]atok{key(am.Start(), 0): {semiring.One, -1}}
	// Epsilon closure respecting word constraints (loop-back arcs).
	closure := func(active map[uint64]atok) {
		queue := make([]uint64, 0, len(active))
		for k := range active {
			queue = append(queue, k)
		}
		for len(queue) > 0 {
			k := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			t, ok := active[k]
			if !ok {
				continue
			}
			s := wfst.StateID(k >> 32)
			emitted := int(uint32(k))
			for _, a := range am.Arcs(s) {
				if a.In != wfst.Epsilon {
					continue
				}
				ne := emitted
				if a.Out != wfst.Epsilon {
					if ne >= nw || a.Out != words[ne] {
						continue
					}
					ne++
				}
				nk := key(a.Next, ne)
				c := t.cost + a.W
				if old, ok := active[nk]; !ok || c < old.cost {
					active[nk] = atok{c, t.bp}
					queue = append(queue, nk)
				}
			}
		}
	}
	closure(cur)

	for f := range scores {
		frame := scores[f]
		next := make(map[uint64]atok, len(cur)*2)
		for k, t := range cur {
			s := wfst.StateID(k >> 32)
			emitted := int(uint32(k))
			for _, a := range am.Arcs(s) {
				if a.In == wfst.Epsilon {
					continue
				}
				ne := emitted
				isWord := a.Out != wfst.Epsilon
				if isWord {
					if ne >= nw || a.Out != words[ne] {
						continue
					}
					ne++
				}
				c := t.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
				nk := key(a.Next, ne)
				if old, ok := next[nk]; !ok || c < old.cost {
					arena = append(arena, bp{prev: t.bp, senone: a.In, word: isWord})
					next[nk] = atok{c, int32(len(arena) - 1)}
				}
			}
		}
		closure(next)
		if len(next) == 0 {
			return nil, fmt.Errorf("decoder: alignment died at frame %d (transcript impossible?)", f)
		}
		cur = next
	}

	// Best final token that emitted every word and sits in a final AM state.
	best := semiring.Zero
	bestBP := int32(-1)
	for k, t := range cur {
		s := wfst.StateID(k >> 32)
		if int(uint32(k)) != nw {
			continue
		}
		fw := am.Final(s)
		if semiring.IsZero(fw) {
			continue
		}
		if c := t.cost + fw; c < best {
			best, bestBP = c, t.bp
		}
	}
	if semiring.IsZero(best) {
		return nil, fmt.Errorf("decoder: no complete alignment for %d words over %d frames", nw, len(scores))
	}

	al := &Alignment{Cost: best, Senones: make([]int32, len(scores))}
	f := len(scores) - 1
	var wordEndsRev []int32
	for i := bestBP; i >= 0; i = arena[i].prev {
		al.Senones[f] = arena[i].senone
		if arena[i].word {
			wordEndsRev = append(wordEndsRev, int32(f))
		}
		f--
	}
	if f != -1 {
		return nil, fmt.Errorf("decoder: alignment backtrace covered %d frames, want %d", len(scores)-1-f, len(scores))
	}
	al.WordEnds = make([]int32, len(wordEndsRev))
	for i, e := range wordEndsRev {
		al.WordEnds[len(wordEndsRev)-1-i] = e
	}
	if len(al.WordEnds) != nw {
		return nil, fmt.Errorf("decoder: alignment found %d word ends, want %d", len(al.WordEnds), nw)
	}
	return al, nil
}
