package decoder

import (
	"context"
	"fmt"

	"repro/internal/bias"
	"repro/internal/metrics"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// OnTheFly is the paper's decoder: a one-pass Viterbi beam search that
// composes the AM and LM transducers on demand. Tokens are (AM state,
// LM state) pairs; word-internal AM arcs advance only the AM side, and
// cross-word arcs additionally fetch the LM arc for the emitted word,
// walking back-off arcs as needed (Section 2, Figure 3c).
type OnTheFly struct {
	am  *wfst.WFST
	lm  *wfst.WFST
	cfg Config
	// memo is the software analogue of the Offset Lookup Table: it maps
	// (LM state, word) to the resolved arc index from a previous binary
	// search. It persists across utterances, as the hardware table does,
	// because word recurrence is exactly the locality it exploits. The
	// default is an unbounded private map; Config.OffsetCache substitutes a
	// bounded or shared implementation (internal/pool's tiered cache).
	memo OffsetCache
	// frameHook, when non-nil, receives the post-closure frontier after the
	// initial epsilon closure (frame == -1) and after every decoded frame,
	// in frontier iteration order. It is the seam the differential test
	// harness uses to compare per-frame token sets between the tokenStore
	// path and the retained map reference; production decodes leave it nil.
	frameHook func(frame int, keys []uint64, toks []token)
	// preset, when non-nil, overrides the configured Beam/MaxActive — the
	// degraded operating point a loaded server installs between decodes
	// (SetSearchPreset). nil preserves Config exactly.
	preset *SearchPreset
	// bias, when non-nil, is the third on-the-fly machine: search runs over
	// AM ∘ LM ∘ Bias with the per-tenant machine advanced on every emitted
	// word (SetBias). nil keeps the two-layer search byte-identical to the
	// pre-bias decoder, including key packing (see bias.go). biasSlack is
	// the machine's MaxBonus, added to the preemptive-pruning threshold so
	// a hypothesis about to earn a bonus is never pre-pruned for cost the
	// bonus would repay; it is exactly 0 with no machine installed.
	bias      *bias.Machine
	biasSlack semiring.Weight
}

// NewOnTheFly builds the on-the-fly decoder over separate AM and LM graphs.
// The LM must be input-sorted (binary search requirement).
func NewOnTheFly(amGraph, lmGraph *wfst.WFST, cfg Config) (*OnTheFly, error) {
	if amGraph.Start() == wfst.NoState || lmGraph.Start() == wfst.NoState {
		return nil, fmt.Errorf("decoder: on-the-fly graphs need start states")
	}
	if !lmGraph.InSorted() {
		return nil, fmt.Errorf("decoder: LM graph must be input-sorted")
	}
	cfg = cfg.withDefaults()
	memo := cfg.OffsetCache
	if memo == nil {
		memo = newMapOffsetCache()
	}
	return &OnTheFly{am: amGraph, lm: lmGraph, cfg: cfg, memo: memo}, nil
}

// ResetMemo clears the offset memo table (for ablations that model a cold
// table per utterance). With a shared OffsetCache installed, only the
// decoder-local layer is guaranteed to cool.
func (d *OnTheFly) ResetMemo() { d.memo.Reset() }

func otfKey(am, lm wfst.StateID) uint64 {
	return uint64(uint32(am))<<32 | uint64(uint32(lm))
}

// hook invokes the differential-test frame hook, if installed.
func (d *OnTheFly) hook(frame int, s *tokenStore) {
	if d.frameHook != nil {
		d.frameHook(frame, s.keys, s.toks)
	}
}

// Decode runs the one-pass on-the-fly Viterbi search over acoustic scores.
func (d *OnTheFly) Decode(scores [][]float32) *Result {
	res, _ := d.DecodeContext(context.Background(), scores)
	return res
}

// DecodeContext is Decode with deadline/cancellation semantics: the context
// is checked once per frame, and on cancellation the best partial hypothesis
// decoded so far is returned together with ctx.Err(). The returned Result is
// never nil.
//
// When Config.RescueWidenings is positive, a frame that empties the
// active-token set is retried from a pre-pruning snapshot with the beam and
// MaxActive doubled per attempt; if every widening fails (e.g. a fully
// poisoned score frame, which no beam can cure), the frame is skipped and
// the search continues from the snapshot — graceful degradation instead of
// a truncated hypothesis when one frame is unsearchable.
//
// The search runs over pooled tokenStore frontiers (see tokenstore.go), so
// a steady-state decode performs no per-frame heap allocation; the observed
// allocation and GC activity is reported in Result.Stats.
func (d *OnTheFly) DecodeContext(ctx context.Context, scores [][]float32) (*Result, error) {
	tel := d.cfg.Telemetry
	start := tel.now()
	sp := tel.startSpan("decode")
	a0 := metrics.ReadAllocCounters()
	res, err := d.decode(ctx, scores)
	res.Stats.recordAlloc(a0)
	tel.recordDecode(res.Stats, start, sp)
	return res, err
}

// decode is the DecodeContext body; DecodeContext wraps it with the
// allocation-counter sampling so every return path is covered.
func (d *OnTheFly) decode(ctx context.Context, scores [][]float32) (*Result, error) {
	cfg := d.cfg
	tel := cfg.Telemetry
	sc := getScratch()
	defer putScratch(sc)
	lat := &sc.lat
	lat.reset()
	st := Stats{Frames: len(scores)}

	cur, next, snap := sc.cur, sc.next, sc.snap
	cur.reset()
	cur.relax(d.startKey(), semiring.One, -1)
	d.epsClosure(cur, lat, &st, semiring.Zero, -1, sc)
	d.hook(-1, cur)

	for f := range scores {
		if err := ctx.Err(); err != nil {
			st.Frames = f // frames actually searched
			return d.finish(cur, lat, st), err
		}
		if cfg.RescueWidenings > 0 {
			snap.copyFrom(cur)
		}
		beam, maxActive := d.searchParams()
		d.stepFrame(cur, next, scores[f], beam, maxActive, lat, &st, f, sc)
		for attempt := 0; next.len() == 0 && attempt < cfg.RescueWidenings; attempt++ {
			// Bounded escalation: restore the pre-pruning frontier and retry
			// the frame with double the beam and double the histogram cap.
			st.Rescues++
			beam *= 2
			if maxActive > 0 {
				maxActive *= 2
			}
			cur.copyFrom(snap)
			d.stepFrame(cur, next, scores[f], beam, maxActive, lat, &st, f, sc)
		}
		if next.len() == 0 {
			st.SearchFailures++
			if cfg.RescueWidenings > 0 {
				// Unsearchable frame (no widening helped): skip it and keep
				// the pre-frame frontier alive instead of truncating.
				cur.copyFrom(snap)
				d.hook(f, cur)
				tel.observeFrontier(cur.len())
				continue
			}
			return d.finish(cur, lat, st), nil
		}
		cur, next = next, cur
		d.hook(f, cur)
		tel.observeFrontier(cur.len())
	}
	return d.finish(cur, lat, st), nil
}

// stepFrame advances the search by one frame: beam/histogram pruning of cur
// (in place), emission of every non-epsilon arc, and the epsilon closure of
// the resulting frontier, written into next (which is reset first). Tokens
// are expanded in frontier insertion order, which is deterministic by
// construction, so the running-best threshold (and hence preemptive-pruning
// statistics) are reproducible without the sorted key pass the map frontier
// needed.
func (d *OnTheFly) stepFrame(cur, next *tokenStore, frame []float32, beam semiring.Weight, maxActive int, lat *lattice, st *Stats, f int, sc *scratch) {
	cfg := d.cfg
	_, cut := sc.beamPrune(cur, beam, maxActive)
	st.TokensBeamCut += cut
	st.TokensExpanded += int64(cur.len())
	next.reset()

	// Preemptive pruning compares against the best hypothesis created
	// so far in this frame plus the beam. The frame's final threshold
	// can only be tighter, so anything pruned here was doomed anyway —
	// the safety argument of Section 3.3.
	runningBest := semiring.Zero
	for i := 0; i < len(cur.keys); i++ {
		key := cur.keys[i]
		tok := cur.toks[i]
		amS, lmS, bS := d.unpack(key)
		for _, a := range d.am.Arcs(amS) {
			if a.In == wfst.Epsilon {
				continue
			}
			st.ArcsTraversed++
			c := tok.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
			lmNext, bNext, latIdx := lmS, bS, tok.lat
			if a.Out != wfst.Epsilon {
				thr := semiring.Zero // +Inf: nothing to compare against yet
				if !semiring.IsZero(runningBest) {
					// biasSlack loosens the preemptive threshold by the bias
					// machine's largest pending bonus (0 with none installed):
					// a word that completes a phrase repays up to that much,
					// so pruning before the bias advance must leave room.
					thr = runningBest + beam + d.biasSlack
				}
				var ok bool
				var lmW semiring.Weight
				lmNext, lmW, ok = d.resolve(lmS, a.Out, c, thr, st)
				if !ok {
					continue // preemptively pruned (or unresolvable word)
				}
				c += lmW
				if d.bias != nil {
					var bW semiring.Weight
					bNext, bW = d.bias.Advance(bS, a.Out)
					c += bW
				}
				latIdx = lat.add(a.Out, tok.lat, int32(f))
			}
			if !finiteWeight(c) {
				// NaN/Inf acoustic scores (a misbehaving scorer) would
				// otherwise poison every downstream token; drop the
				// hypothesis and let healthy arcs carry the frame.
				continue
			}
			if _, created, _ := next.relax(d.key(a.Next, lmNext, bNext), c, latIdx); created {
				st.TokensCreated++
			}
			if c < runningBest {
				runningBest = c
			}
		}
	}
	d.epsClosure(next, lat, st, semiring.Zero, int32(f), sc)
}

// finiteWeight reports whether w is neither NaN nor ±Inf (w-w is 0 only for
// finite w).
func finiteWeight(w semiring.Weight) bool { return w-w == 0 }

// resolve locates the LM transition for word out of state s, walking the
// back-off chain. base is the hypothesis cost before LM weights; with
// preemptive pruning enabled, the walk aborts as soon as base plus the
// accumulated back-off penalties crosses thr (Section 3.3: the Arc Issuer
// re-checks the threshold after applying each back-off weight).
func (d *OnTheFly) resolve(s wfst.StateID, word int32, base, thr semiring.Weight, st *Stats) (wfst.StateID, semiring.Weight, bool) {
	st.LMFetches++
	acc := semiring.One
	for hops := 0; hops < 16; hops++ {
		if idx, ok := d.find(s, word, st); ok {
			a := d.lm.Arcs(s)[idx]
			return a.Next, acc + a.W, true
		}
		bo, ok := d.lm.BackoffArc(s)
		if !ok {
			return wfst.NoState, semiring.Zero, false
		}
		st.BackoffHops++
		acc += bo.W
		s = bo.Next
		if d.cfg.PreemptivePruning && base+acc > thr {
			st.PreemptivePruned++
			return wfst.NoState, semiring.Zero, false
		}
	}
	return wfst.NoState, semiring.Zero, false
}

// find locates the arc for word at LM state s according to the configured
// lookup strategy, counting probes and memo hits.
func (d *OnTheFly) find(s wfst.StateID, word int32, st *Stats) (int, bool) {
	switch d.cfg.Lookup {
	case LookupLinear:
		var probes int
		idx, ok := d.lm.FindArcLinear(s, word, &probes)
		st.LMProbes += int64(probes)
		return idx, ok
	case LookupBinary:
		var probes int
		idx, ok := d.lm.FindArc(s, word, &probes)
		st.LMProbes += int64(probes)
		return idx, ok
	default: // LookupMemo
		mk := uint64(uint32(s))<<20 | uint64(uint32(word))
		if idx, hit := d.memo.Get(mk); hit {
			st.MemoHits++
			return int(idx), true
		}
		var probes int
		idx, ok := d.lm.FindArc(s, word, &probes)
		st.LMProbes += int64(probes)
		st.MemoMisses++
		if ok {
			d.memo.Put(mk, int32(idx))
		}
		return idx, ok
	}
}

// epsClosure relaxes non-emitting AM arcs within a frame. A non-emitting
// arc with a word output (possible in general transducers, though not
// produced by our AM builder) still performs the LM transition. The worklist
// holds store entry indices (entries are never removed during a closure, so
// indices are stable) and is recycled through the scratch set.
func (d *OnTheFly) epsClosure(active *tokenStore, lat *lattice, st *Stats, thr semiring.Weight, frame int32, sc *scratch) {
	queue := sc.queue[:0]
	for i := range active.keys {
		queue = append(queue, int32(i))
	}
	for len(queue) > 0 {
		idx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		key := active.keys[idx]
		tok := active.toks[idx]
		amS, lmS, bS := d.unpack(key)
		for _, a := range d.am.Arcs(amS) {
			if a.In != wfst.Epsilon {
				continue
			}
			st.EpsTraversed++
			c := tok.cost + a.W
			lmNext, bNext, latIdx := lmS, bS, tok.lat
			if a.Out != wfst.Epsilon {
				var okRes bool
				var lmW semiring.Weight
				lmNext, lmW, okRes = d.resolve(lmS, a.Out, c, thr, st)
				if !okRes {
					continue
				}
				c += lmW
				if d.bias != nil {
					var bW semiring.Weight
					bNext, bW = d.bias.Advance(bS, a.Out)
					c += bW
				}
				latIdx = lat.add(a.Out, tok.lat, frame)
			}
			nIdx, created, improved := active.relax(d.key(a.Next, lmNext, bNext), c, latIdx)
			if created {
				st.TokensCreated++
			}
			if improved {
				queue = append(queue, nIdx)
			}
		}
	}
	sc.queue = queue // retain any grown capacity for the next closure
}

// finish mirrors the composed decoder: a token is final when both component
// states accept, with the product final weight. The frontier is scanned in
// its deterministic insertion order, so cost ties resolve reproducibly.
// Every bias state is final, so an installed bias machine never changes
// which tokens accept — only their exit weight (repaying unfinished phrase
// matches).
func (d *OnTheFly) finish(active *tokenStore, lat *lattice, st Stats) *Result {
	res := &Result{Cost: semiring.Zero, Stats: st}
	bestAny, bestAnyLat := semiring.Zero, int32(-1)
	for i := range active.keys {
		key := active.keys[i]
		tok := active.toks[i]
		amS, lmS, bS := d.unpack(key)
		fa, fl := d.am.Final(amS), d.lm.Final(lmS)
		if !semiring.IsZero(fa) && !semiring.IsZero(fl) {
			c := tok.cost + fa + fl + d.biasFinal(bS)
			if c < res.Cost {
				res.Cost = c
				res.Words, res.WordEnds = lat.backtrace(tok.lat)
				res.ReachedFinal = true
			}
		}
		if tok.cost < bestAny {
			bestAny, bestAnyLat = tok.cost, tok.lat
		}
	}
	if !res.ReachedFinal && !semiring.IsZero(bestAny) {
		res.Cost = bestAny
		res.Words, res.WordEnds = lat.backtrace(bestAnyLat)
	}
	res.Stats.LatticeEntries = int64(lat.Entries())
	return res
}
