package decoder

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/semiring"
	"repro/internal/telemetry"
)

// Stream is an incremental (frame-at-a-time) interface over the on-the-fly
// decoder — the shape a real-time recognizer exposes: acoustic score rows
// are pushed as the GPU produces each batch, and the current-best partial
// hypothesis is available at any time. A Stream fed the same rows as a
// batch Decode call produces exactly the same result.
//
// A Stream borrows one scratch set (token stores, lattice arena, closure
// worklist) from the shared pool at creation and owns it for its lifetime,
// so a steady-state Push performs no per-frame heap allocation beyond the
// amortized growth of the word lattice.
type Stream struct {
	d       *OnTheFly
	sc      *scratch
	sampler *metrics.AllocSampler
	cur     *tokenStore
	next    *tokenStore
	st      Stats
	a0      metrics.AllocCounters
	dead    bool
	frozen  *tokenStore // last non-empty frontier if the search dies

	// Telemetry state: counters are published incrementally (every Push
	// adds the frame's Stats delta) so a /metrics scrape mid-utterance sees
	// the live search, not just completed streams. published is the
	// high-water mark of what has been pushed to the registry so far.
	published Stats
	start     time.Time
	span      telemetry.Span
}

// NewStream starts an incremental decode on d.
func (d *OnTheFly) NewStream() *Stream {
	s := &Stream{sc: getScratch(), sampler: metrics.NewAllocSampler()}
	s.reset(d)
	return s
}

// reset re-arms the stream for a fresh utterance on decoder d, reusing its
// scratch set (token stores, lattice arena, worklist) in place. This is how
// a lane slot recycles its stream across utterances without per-join heap
// work: after reset the stream is indistinguishable from a NewStream on d.
// The previous utterance must be finished or abandoned first.
func (s *Stream) reset(d *OnTheFly) {
	tel := d.cfg.Telemetry
	s.d = d
	s.cur, s.next = s.sc.cur, s.sc.next
	s.st = Stats{}
	s.published = Stats{}
	s.dead = false
	s.frozen = nil
	s.a0 = s.sampler.Read()
	s.start = tel.now()
	s.span = tel.startSpan("stream")
	s.sc.lat.reset()
	s.cur.reset()
	s.cur.relax(d.startKey(), semiring.One, -1)
	d.epsClosure(s.cur, &s.sc.lat, &s.st, semiring.Zero, -1, s.sc)
	d.hook(-1, s.cur)
}

// Push consumes one frame of acoustic scores (1-based senone indexing).
func (s *Stream) Push(frame []float32) error {
	if s.dead {
		return nil // search died earlier; Finish reports the best partial
	}
	if len(frame) == 0 {
		return fmt.Errorf("decoder: empty frame")
	}
	beam, maxActive := s.d.searchParams()
	f := s.st.Frames
	s.st.Frames++
	s.d.stepFrame(s.cur, s.next, frame, beam, maxActive, &s.sc.lat, &s.st, f, s.sc)
	if s.next.len() == 0 {
		s.dead = true
		s.st.SearchFailures++
		s.frozen = s.cur
		s.publish()
		return nil
	}
	s.cur, s.next = s.next, s.cur
	s.d.hook(f, s.cur)
	s.publish()
	return nil
}

// publish pushes the Stats advance since the last publication into the
// decoder's telemetry set, plus this frame's frontier size. One branch and
// no work when telemetry is disabled.
func (s *Stream) publish() {
	tel := s.d.cfg.Telemetry
	if tel == nil {
		return
	}
	tel.publishDelta(s.st, s.published)
	s.published = s.st
	tel.observeFrontier(s.frontier().len())
}

// frontier returns the live active set (or the frozen one after a search
// death).
func (s *Stream) frontier() *tokenStore {
	if s.dead {
		return s.frozen
	}
	return s.cur
}

// Partial returns the current best hypothesis without ending the stream —
// what a UI would display while the user is still speaking. Finality is
// ignored: the utterance is not over.
func (s *Stream) Partial() []int32 {
	frontier := s.frontier()
	best := semiring.Zero
	lat := int32(-1)
	for i := range frontier.toks {
		if frontier.toks[i].cost < best {
			best, lat = frontier.toks[i].cost, frontier.toks[i].lat
		}
	}
	if semiring.IsZero(best) {
		return nil
	}
	words, _ := s.sc.lat.backtrace(lat)
	return words
}

// Finish ends the utterance and returns the final result, identical to a
// batch Decode over the same frames. The result carries the allocation/GC
// counters accumulated since NewStream.
func (s *Stream) Finish() *Result {
	res := s.d.finish(s.frontier(), &s.sc.lat, s.st)
	res.Stats.recordAlloc(s.a0)
	s.d.cfg.Telemetry.recordStream(s.st, s.published, s.start, s.span)
	s.published = s.st
	return res
}
