package decoder

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Stream is an incremental (frame-at-a-time) interface over the on-the-fly
// decoder — the shape a real-time recognizer exposes: acoustic score rows
// are pushed as the GPU produces each batch, and the current-best partial
// hypothesis is available at any time. A Stream fed the same rows as a
// batch Decode call produces exactly the same result.
type Stream struct {
	d      *OnTheFly
	lat    *lattice
	cur    map[uint64]token
	st     Stats
	dead   bool
	frozen map[uint64]token // last non-empty frontier if the search dies
}

// NewStream starts an incremental decode on d.
func (d *OnTheFly) NewStream() *Stream {
	s := &Stream{
		d:   d,
		lat: &lattice{},
		cur: map[uint64]token{otfKey(d.am.Start(), d.lm.Start()): {semiring.One, -1}},
	}
	d.epsClosure(s.cur, s.lat, &s.st, semiring.Zero, -1)
	return s
}

// Push consumes one frame of acoustic scores (1-based senone indexing).
func (s *Stream) Push(frame []float32) error {
	if s.dead {
		return nil // search died earlier; Finish reports the best partial
	}
	if len(frame) == 0 {
		return fmt.Errorf("decoder: empty frame")
	}
	cfg := s.d.cfg
	f := int32(s.st.Frames)
	s.st.Frames++
	_, cut := beamPrune(s.cur, cfg.Beam, cfg.MaxActive)
	s.st.TokensBeamCut += cut
	s.st.TokensExpanded += int64(len(s.cur))
	next := make(map[uint64]token, 2*len(s.cur))

	keys := make([]uint64, 0, len(s.cur))
	for k := range s.cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	runningBest := semiring.Zero
	thr := func() semiring.Weight {
		if semiring.IsZero(runningBest) {
			return semiring.Zero
		}
		return runningBest + cfg.Beam
	}
	for _, key := range keys {
		tok := s.cur[key]
		amS := wfst.StateID(key >> 32)
		lmS := wfst.StateID(uint32(key))
		for _, a := range s.d.am.Arcs(amS) {
			if a.In == wfst.Epsilon {
				continue
			}
			s.st.ArcsTraversed++
			c := tok.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
			lmNext, latIdx := lmS, tok.lat
			if a.Out != wfst.Epsilon {
				var ok bool
				var lmW semiring.Weight
				lmNext, lmW, ok = s.d.resolve(lmS, a.Out, c, thr(), &s.st)
				if !ok {
					continue
				}
				c += lmW
				latIdx = s.lat.add(a.Out, tok.lat, f)
			}
			if !finiteWeight(c) {
				continue // poisoned score; same guard as the batch decoder
			}
			if created, _ := relax(next, otfKey(a.Next, lmNext), c, latIdx); created {
				s.st.TokensCreated++
			}
			if c < runningBest {
				runningBest = c
			}
		}
	}
	s.d.epsClosure(next, s.lat, &s.st, semiring.Zero, f)
	if len(next) == 0 {
		s.dead = true
		s.st.SearchFailures++
		s.frozen = s.cur
		return nil
	}
	s.cur = next
	return nil
}

// Partial returns the current best hypothesis without ending the stream —
// what a UI would display while the user is still speaking. Finality is
// ignored: the utterance is not over.
func (s *Stream) Partial() []int32 {
	frontier := s.cur
	if s.dead {
		frontier = s.frozen
	}
	best := semiring.Zero
	lat := int32(-1)
	for _, t := range frontier {
		if t.cost < best {
			best, lat = t.cost, t.lat
		}
	}
	if semiring.IsZero(best) {
		return nil
	}
	words, _ := s.lat.backtrace(lat)
	return words
}

// Finish ends the utterance and returns the final result, identical to a
// batch Decode over the same frames.
func (s *Stream) Finish() *Result {
	frontier := s.cur
	if s.dead {
		frontier = s.frozen
	}
	return s.d.finish(frontier, s.lat, s.st)
}
